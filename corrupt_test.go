package altindex

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildV2Snapshot saves a sharded index (the ALTIX002 layout, with shard
// boundaries prepended to the pair payload) and returns its bytes.
func buildV2Snapshot(t *testing.T) []byte {
	t.Helper()
	idx := New(Options{Shards: 4})
	defer func() {
		if c, ok := idx.(interface{ Close() error }); ok {
			c.Close()
		}
	}()
	for k := uint64(0); k < 300; k++ {
		if err := idx.Insert(k*97, k); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "v2.snap")
	if err := Save(idx, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:8]) != "ALTIX002" {
		t.Fatalf("sharded snapshot wrote magic %q, want ALTIX002", raw[:8])
	}
	return raw
}

// loadMutatedV2 writes a mutated snapshot and asserts Load rejects it
// with ErrBadSnapshot, never a partially loaded index.
func loadMutatedV2(t *testing.T, path string, raw []byte, what string) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := Load(path, Options{Shards: 4})
	if err == nil {
		t.Fatalf("%s: corrupt v2 snapshot loaded without error", what)
	}
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("%s: got %v, want an error wrapping ErrBadSnapshot", what, err)
	}
	if idx != nil {
		t.Fatalf("%s: Load returned a partially loaded index alongside its error", what)
	}
}

// TestV2SnapshotTruncatedTailFuzz cuts the ALTIX002 file at every byte
// offset and requires a clean ErrBadSnapshot each time.
func TestV2SnapshotTruncatedTailFuzz(t *testing.T) {
	raw := buildV2Snapshot(t)
	path := filepath.Join(t.TempDir(), "cut.snap")
	for n := 0; n < len(raw); n++ {
		loadMutatedV2(t, path, raw[:n], "truncated")
	}
}

// TestV2SnapshotBitFlipFuzz flips one bit in every byte — magic, shard
// boundaries, pair payload, CRC footer — and requires each mutation to be
// rejected rather than remapped into a silently different index.
func TestV2SnapshotBitFlipFuzz(t *testing.T) {
	raw := buildV2Snapshot(t)
	path := filepath.Join(t.TempDir(), "flip.snap")
	mut := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		copy(mut, raw)
		mut[i] ^= 1 << (i % 8)
		loadMutatedV2(t, path, mut, "bit-flipped")
	}
}
