package altindex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"altindex/internal/index"
	"altindex/internal/shard"
	"altindex/internal/snapio"
)

// Index snapshot formats, little-endian, framed by snapio's CRC32 footer
// and written via its temp-file + fsync + atomic-rename sequence.
//
// v1 — single-instance layout (written whenever the index has no shard
// boundaries, so unsharded snapshots are byte-identical to earlier
// releases):
//
//	magic "ALTIX001"
//	u64 pairCount
//	pairCount × (u64 key, u64 value), ascending by key
//
// v2 — sharded layout; identical pair payload with the shard boundaries
// prepended so Load can reproduce the partitioning exactly:
//
//	magic "ALTIX002"
//	u32 shardCount (2..64)
//	(shardCount-1) × u64 boundary key, non-decreasing
//	u64 pairCount
//	pairCount × (u64 key, u64 value), ascending by key
//
// Save requires the index to be quiescent for an exact snapshot (it is a
// checkpoint operation); Load bulkloads a fresh index from the file.

var (
	indexSnapMagic   = [8]byte{'A', 'L', 'T', 'I', 'X', '0', '0', '1'}
	indexSnapMagicV2 = [8]byte{'A', 'L', 'T', 'I', 'X', '0', '0', '2'}
)

// bounded is the surface a sharded index exposes for snapshotting: the
// boundary keys that define its partitioning.
type bounded interface{ Bounds() []uint64 }

// ErrBadSnapshot reports a corrupt, truncated or incompatible index
// snapshot file. Save's atomic write sequence guarantees a crash mid-save
// leaves either the previous complete snapshot or a file Load rejects with
// this error — never a torn or silently-stale one.
var ErrBadSnapshot = errors.New("altindex: bad snapshot")

// Save writes a point-in-time snapshot of idx to path, atomically: the
// previous snapshot at path survives any failure or crash mid-save.
// Sharded indexes persist their boundary keys (format v2); everything else
// writes the original v1 format byte-for-byte.
func Save(idx Index, path string) error {
	var bounds []uint64
	if b, ok := idx.(bounded); ok {
		bounds = b.Bounds()
	}
	return snapio.WriteFile(path, func(w io.Writer) error {
		count := uint64(idx.Len())
		if err := writeIndexHeader(w, bounds, count); err != nil {
			return err
		}
		var werr error
		written := uint64(0)
		start := uint64(0)
		for {
			const batch = 4096
			var last uint64
			n := 0
			idx.Scan(start, batch, func(k, v uint64) bool {
				last = k
				n++
				var kv [16]byte
				binary.LittleEndian.PutUint64(kv[0:], k)
				binary.LittleEndian.PutUint64(kv[8:], v)
				_, werr = w.Write(kv[:])
				written++
				return werr == nil
			})
			if werr != nil {
				return werr
			}
			if n < batch || last == ^uint64(0) {
				break
			}
			start = last + 1
		}
		if written != count {
			return fmt.Errorf("%w: index changed during save (%d pairs walked, Len %d)",
				ErrBadSnapshot, written, count)
		}
		return nil
	})
}

func writeIndexHeader(w io.Writer, bounds []uint64, count uint64) error {
	if len(bounds) == 0 {
		if _, err := w.Write(indexSnapMagic[:]); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, count)
	}
	if _, err := w.Write(indexSnapMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(bounds)+1)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, bounds); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, count)
}

// Load reads a snapshot written by Save into a fresh index built with
// opts. Corrupt or truncated files return an error wrapping ErrBadSnapshot.
//
// A sharded (v2) snapshot loaded into a sharded config (opts.Shards > 1)
// is restored with its exact saved boundaries — the saved layout wins
// over opts.Shards, because a rebalanced index's shard count legitimately
// drifts from the configured one (the adaptive controller splits and
// merges at runtime) and recovery must reproduce the layout it actually
// converged to, not re-quantile it. Loading a sharded file into an
// unsharded config, or an unsharded file into any config, remaps by
// bulkloading the pairs into a fresh index built from opts. Data always
// round-trips; only the partitioning is recomputed when the layouts
// fundamentally disagree.
func Load(path string, opts Options) (Index, error) {
	payload, err := snapio.ReadFile(path)
	if err != nil {
		if errors.Is(err, snapio.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return nil, err
	}
	r := bytes.NewReader(payload)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadSnapshot)
	}
	var bounds []uint64
	switch magic {
	case indexSnapMagic:
	case indexSnapMagicV2:
		var shards uint32
		if err := binary.Read(r, binary.LittleEndian, &shards); err != nil {
			return nil, fmt.Errorf("%w: missing shard count", ErrBadSnapshot)
		}
		if shards < 2 || shards > shard.MaxShards {
			return nil, fmt.Errorf("%w: shard count %d out of range", ErrBadSnapshot, shards)
		}
		bounds = make([]uint64, shards-1)
		if err := binary.Read(r, binary.LittleEndian, bounds); err != nil {
			return nil, fmt.Errorf("%w: truncated shard boundaries", ErrBadSnapshot)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				return nil, fmt.Errorf("%w: shard boundaries decrease", ErrBadSnapshot)
			}
		}
	default:
		return nil, fmt.Errorf("%w: magic mismatch", ErrBadSnapshot)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: missing pair count", ErrBadSnapshot)
	}
	if count != uint64(r.Len())/16 || uint64(r.Len())%16 != 0 {
		return nil, fmt.Errorf("%w: %d pairs declared, payload holds %d bytes",
			ErrBadSnapshot, count, r.Len())
	}
	pairs := make([]index.KV, count)
	var prev uint64
	for i := range pairs {
		var kv [16]byte
		if _, err := io.ReadFull(r, kv[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated pair %d", ErrBadSnapshot, i)
		}
		k := binary.LittleEndian.Uint64(kv[0:])
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("%w: pairs out of order", ErrBadSnapshot)
		}
		prev = k
		pairs[i] = index.KV{Key: k, Value: binary.LittleEndian.Uint64(kv[8:])}
	}
	var idx Index
	if len(bounds) > 0 && opts.Shards > 1 {
		// Sharded file into sharded config: pin the stored boundaries so
		// the restored partitioning is exact — even when the saved shard
		// count differs from opts.Shards, as it will after adaptive
		// rebalancing changed the layout at runtime.
		sh, err := shard.NewWithBounds(opts, bounds)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		idx = sh
	} else {
		idx = New(opts)
	}
	if err := idx.Bulkload(pairs); err != nil {
		return nil, err
	}
	return idx, nil
}
