module altindex

go 1.23
