// Package altindex is a hybrid learned index for concurrent in-memory
// database workloads, implementing the ALT-index design (Yang et al., ICDE
// 2025): a flattened learned-index layer of Greedy Pessimistic Linear (GPL)
// models whose predictions are exact by construction, backed by an
// optimized Adaptive Radix Tree (ART-OPT) that hosts conflict data, with a
// fast pointer buffer linking each model to its ART subtree.
//
// The index maps uint64 keys to uint64 values, supports concurrent Get /
// Insert / Update / Remove / Scan, and retrains crowded models dynamically.
//
// Quick start:
//
//	idx := altindex.New(altindex.Options{})
//	if err := idx.Bulkload(pairs); err != nil { ... } // pairs sorted by key
//	v, ok := idx.Get(42)
//	_ = idx.Insert(43, 430)
//	idx.Scan(40, 10, func(k, v uint64) bool { return true })
//
// The zero Options value selects the paper's recommendations (error bound
// = bulkload/1000, fast pointers and retraining enabled).
package altindex

import (
	"altindex/internal/core"
	"altindex/internal/index"
	"altindex/internal/shard"
)

// Index is the concurrent ordered-map surface of the hybrid ALT-index.
// Create with New; safe for concurrent use. It is an interface because New
// returns one of two layouts sharing the same protocol: a single core
// instance (Options.Shards == 0, the paper's layout, unchanged) or a
// range-partitioned front-end of independent core instances behind a
// learned boundary router (Options.Shards > 1, internal/shard).
type Index interface {
	index.Concurrent
	index.Batcher
	index.Stats
	index.RangeAppender

	// Quiesce blocks until background retraining triggered so far has
	// drained, giving deterministic checkpoints (Save requires one).
	Quiesce()
	// Close stops background retraining machinery. The index stays usable;
	// Close exists so long-lived processes can release the worker
	// goroutines.
	Close() error
}

var (
	_ Index = (*core.ALT)(nil)
	_ Index = (*shard.ALT)(nil)
)

// Options configure an Index; the zero value is the paper-recommended
// default.
type Options = core.Options

// KV is a key/value pair for Bulkload.
type KV = index.KV

// Key and Value are the 8-byte record types.
type (
	Key   = index.Key
	Value = index.Value
)

// Concurrent is the ordered-index interface Index satisfies; the baselines
// in internal/ implement it too, which is how the benchmark harness
// compares them.
type Concurrent = index.Concurrent

// ErrUnsortedBulk is returned by Bulkload for unsorted input.
var ErrUnsortedBulk = index.ErrUnsortedBulk

// New returns an empty ALT-index with the given options. Options.Shards
// selects the layout: zero (or one) is a single instance, higher values
// range-partition the keyspace into that many independent shards at
// CDF-balanced boundaries (see internal/shard).
func New(opts Options) Index {
	if opts.Shards > 1 {
		return shard.New(opts)
	}
	return core.New(opts)
}

// NewDefault returns an empty ALT-index with the paper-recommended
// defaults.
func NewDefault() Index { return core.New(Options{}) }
