#!/usr/bin/env python3
"""Summarise benchmark artifacts. Stdlib only; rerun after regenerating.

Two input modes, chosen by file extension:

- results/experiments_raw.txt (default): per Fig-7 mix, print each
  dataset's ALT throughput, the best baseline, and the ratio — the
  numbers EXPERIMENTS.md quotes.
- results/BENCH_4.json (any .json): the shard-scaling sweep. Prints, per
  dataset, a threads x shard-count throughput grid plus the speedup of
  every shard count over the unsharded (S0) run at the same thread
  count, and flags the max-thread speedups the acceptance gate reads.
"""
import json
import re
import sys
from collections import defaultdict


def summarize_raw(path):
    text = open(path).read()
    sections = re.split(r"\n== ", text)
    for sec in sections:
        if not sec.startswith("Fig 7:"):
            continue
        title = sec.splitlines()[0]
        rows = defaultdict(dict)  # dataset -> index -> mops
        for line in sec.splitlines():
            m = re.match(
                r"(ALT-index|ALEX\+|LIPP\+|FINEdex|XIndex|ART)\s+(\w+)\s+([\d.]+)",
                line,
            )
            if m:
                rows[m.group(2)][m.group(1)] = float(m.group(3))
        print(f"\n{title}")
        for ds, byidx in rows.items():
            alt = byidx.get("ALT-index", 0)
            base = {k: v for k, v in byidx.items() if k != "ALT-index"}
            if not base or alt == 0:
                continue
            bname, bval = max(base.items(), key=lambda kv: kv[1])
            print(f"  {ds:8s} ALT={alt:5.2f}  best-baseline={bname}={bval:5.2f}  ratio={alt/bval:4.2f}x")


def summarize_shards(path):
    doc = json.load(open(path))
    # dataset -> threads -> shard count -> mops
    grid = defaultdict(lambda: defaultdict(dict))
    for run in doc.get("Runs", []):
        if run.get("Experiment") != "shard-scaling":
            continue
        m = re.match(r"ALT-S(\d+)$", run["Index"])
        if not m:
            continue
        grid[run["Dataset"]][run["Threads"]][int(m.group(1))] = run["Mops"]
    if not grid:
        print(f"{path}: no shard-scaling rows found")
        return
    for ds in sorted(grid):
        bythr = grid[ds]
        counts = sorted({s for thr in bythr.values() for s in thr})
        print(f"\n== shard scaling: {ds} (Mops, speedup vs unsharded) ==")
        header = "threads " + "".join(f"{'S'+str(s):>16s}" for s in counts)
        print(header)
        for thr in sorted(bythr):
            base = bythr[thr].get(0, 0.0)
            cells = []
            for s in counts:
                mops = bythr[thr].get(s)
                if mops is None:
                    cells.append(f"{'-':>16s}")
                elif s == 0 or base == 0:
                    cells.append(f"{mops:10.2f}      ")
                else:
                    cells.append(f"{mops:10.2f} {mops/base:4.2f}x")
            print(f"{thr:<8d}" + "".join(cells))
        top = max(bythr)
        base = bythr[top].get(0, 0.0)
        if base > 0:
            best_s, best = max(
                ((s, v) for s, v in bythr[top].items() if s > 0),
                key=lambda kv: kv[1],
                default=(None, 0.0),
            )
            if best_s is not None:
                print(
                    f"  max-thread ({top}) best: S{best_s} at "
                    f"{best:.2f} Mops = {best/base:.2f}x unsharded"
                )


def main(path="results/experiments_raw.txt"):
    if path.endswith(".json"):
        summarize_shards(path)
    else:
        summarize_raw(path)


if __name__ == "__main__":
    main(*sys.argv[1:])
