#!/usr/bin/env python3
"""Summarise benchmark artifacts. Stdlib only; rerun after regenerating.

Three modes:

- summarize.py [results/experiments_raw.txt]: per Fig-7 mix, print each
  dataset's ALT throughput, the best baseline, and the ratio — the
  numbers EXPERIMENTS.md quotes.
- summarize.py results/BENCH_4.json (any .json): renders whichever
  grids the artifact carries — the shard-scaling threads x shard-count
  grid with speedups over unsharded (S0), the net-path legacy vs
  pipelined table, and the scan-path kernel vs per-slot table with the
  1k-length acceptance ratios.
- summarize.py compare [--threshold N] OLD.json NEW.json: diff two
  altbench -json artifacts row by row — rows are keyed on (Experiment,
  Index, Dataset, Mix, Threads) — printing ns/op and Mops for both
  sides, the Mops delta percentage, and a REGRESSION flag on any row
  that slowed down by more than the threshold (default 3%; set with
  --threshold, or the legacy trailing percentage argument). Rows
  carrying GC telemetry (altbench -json always embeds it now) also get
  pause-p99 and pause-time-per-second columns, so a GC win or loss is
  visible in the same diff as the throughput. Exits 1 if any row
  regressed, so CI can gate on it.
"""
import json
import re
import sys
from collections import defaultdict


def summarize_raw(path):
    text = open(path).read()
    sections = re.split(r"\n== ", text)
    for sec in sections:
        if not sec.startswith("Fig 7:"):
            continue
        title = sec.splitlines()[0]
        rows = defaultdict(dict)  # dataset -> index -> mops
        for line in sec.splitlines():
            m = re.match(
                r"(ALT-index|ALEX\+|LIPP\+|FINEdex|XIndex|ART)\s+(\w+)\s+([\d.]+)",
                line,
            )
            if m:
                rows[m.group(2)][m.group(1)] = float(m.group(3))
        print(f"\n{title}")
        for ds, byidx in rows.items():
            alt = byidx.get("ALT-index", 0)
            base = {k: v for k, v in byidx.items() if k != "ALT-index"}
            if not base or alt == 0:
                continue
            bname, bval = max(base.items(), key=lambda kv: kv[1])
            print(f"  {ds:8s} ALT={alt:5.2f}  best-baseline={bname}={bval:5.2f}  ratio={alt/bval:4.2f}x")


def summarize_shards(path):
    doc = json.load(open(path))
    # dataset -> threads -> shard count -> mops
    grid = defaultdict(lambda: defaultdict(dict))
    for run in doc.get("Runs", []):
        if run.get("Experiment") != "shard-scaling":
            continue
        m = re.match(r"ALT-S(\d+)$", run["Index"])
        if not m:
            continue
        grid[run["Dataset"]][run["Threads"]][int(m.group(1))] = run["Mops"]
    if not grid:
        print(f"{path}: no shard-scaling rows found")
        return
    for ds in sorted(grid):
        bythr = grid[ds]
        counts = sorted({s for thr in bythr.values() for s in thr})
        print(f"\n== shard scaling: {ds} (Mops, speedup vs unsharded) ==")
        header = "threads " + "".join(f"{'S'+str(s):>16s}" for s in counts)
        print(header)
        for thr in sorted(bythr):
            base = bythr[thr].get(0, 0.0)
            cells = []
            for s in counts:
                mops = bythr[thr].get(s)
                if mops is None:
                    cells.append(f"{'-':>16s}")
                elif s == 0 or base == 0:
                    cells.append(f"{mops:10.2f}      ")
                else:
                    cells.append(f"{mops:10.2f} {mops/base:4.2f}x")
            print(f"{thr:<8d}" + "".join(cells))
        top = max(bythr)
        base = bythr[top].get(0, 0.0)
        if base > 0:
            best_s, best = max(
                ((s, v) for s, v in bythr[top].items() if s > 0),
                key=lambda kv: kv[1],
                default=(None, 0.0),
            )
            if best_s is not None:
                print(
                    f"  max-thread ({top}) best: S{best_s} at "
                    f"{best:.2f} Mops = {best/base:.2f}x unsharded"
                )


def summarize_net(path):
    """Net-path grid: per (conns, depth), legacy vs pipelined Kops, the
    pipelined/legacy speedup, flushes per command, and the coalescing
    counters. Rows come from altbench -net (Experiment == net-path)."""
    doc = json.load(open(path))
    cells = {}  # (conns, depth) -> mode -> run
    for run in doc.get("Runs", []):
        if run.get("Experiment") != "net-path":
            continue
        m = re.match(r"net-balanced c(\d+) d(\d+)", run.get("Mix", ""))
        if not m:
            continue
        mode = "legacy" if run["Index"] == "net-legacy" else "pipelined"
        cells.setdefault((int(m.group(1)), int(m.group(2))), {})[mode] = run
    if not cells:
        print(f"{path}: no net-path rows found")
        return
    print("\n== net path: served throughput (Kops), legacy vs pipelined ==")
    print(
        f"{'conns':>5s} {'depth':>5s} {'legacy':>9s} {'pipelined':>9s} {'speedup':>8s}"
        f" {'fl/op':>6s} {'corounds':>8s} {'comean':>7s}"
    )
    for (conns, depth) in sorted(cells):
        bymode = cells[(conns, depth)]
        leg = bymode.get("legacy", {}).get("Mops", 0.0) * 1e3
        pip = bymode.get("pipelined", {}).get("Mops", 0.0) * 1e3
        speed = f"{pip/leg:7.2f}x" if leg and pip else f"{'-':>8s}"
        st = (bymode.get("pipelined") or bymode.get("legacy") or {}).get("Stats") or {}
        flop = st.get("net_flushes", 0) / max(st.get("net_cmds", 1), 1)
        rounds = st.get("coalesce_batches", 0)
        comean = st.get("coalesce_ops", 0) / rounds if rounds else 0.0
        leg_s = f"{leg:9.1f}" if leg else f"{'-':>9s}"
        pip_s = f"{pip:9.1f}" if pip else f"{'-':>9s}"
        print(
            f"{conns:>5d} {depth:>5d} {leg_s} {pip_s} {speed}"
            f" {flop:>6.3f} {rounds:>8d} {comean:>7.1f}"
        )


def summarize_scan(path):
    """Scan-path grid: per dataset x scan length x mode, the block-run
    kernel vs the preserved per-slot baseline in Mkeys/s, plus the kernel
    speedup. The 1k-length rows are the acceptance cells (the PR gate
    wants kernel >= 1.4x per-slot on at least one dataset, and no
    regression at length 10). Rows come from altbench -exp scan-path."""
    doc = json.load(open(path))
    cells = {}  # (dataset, length, mode) -> engine -> run
    for run in doc.get("Runs", []):
        if run.get("Experiment") != "scan-path":
            continue
        m = re.match(r"scan(\d+)-(idle|writer)$", run.get("Mix", ""))
        if not m:
            continue
        engine = "kernel" if run["Index"] == "ALT-scan-kernel" else "perslot"
        key = (run["Dataset"], int(m.group(1)), m.group(2))
        cells.setdefault(key, {})[engine] = run
    if not cells:
        print(f"{path}: no scan-path rows found")
        return
    print("\n== scan path: emitted Mkeys/s, block-run kernel vs per-slot ==")
    print(
        f"{'dataset':>8s} {'len':>6s} {'mode':>6s} {'perslot':>9s} {'kernel':>9s}"
        f" {'speedup':>8s}"
    )
    gate = []
    for (ds, length, mode) in sorted(cells):
        bye = cells[(ds, length, mode)]
        slot = bye.get("perslot", {}).get("Mops", 0.0)
        kern = bye.get("kernel", {}).get("Mops", 0.0)
        speed = f"{kern/slot:7.2f}x" if slot and kern else f"{'-':>8s}"
        print(
            f"{ds:>8s} {length:>6d} {mode:>6s} {slot:>9.2f} {kern:>9.2f} {speed}"
        )
        if length == 1000 and slot and kern:
            gate.append((ds, mode, kern / slot))
    for ds, mode, ratio in gate:
        mark = "PASS" if ratio >= 1.4 else "    "
        print(f"  1k gate {ds}/{mode}: kernel = {ratio:.2f}x per-slot {mark}")


def load_rows(path):
    """Index an altbench -json artifact by (Experiment, Index, Dataset, Mix, Threads)."""
    doc = json.load(open(path))
    rows = {}
    for run in doc.get("Runs", []):
        key = (
            run.get("Experiment", ""),
            run.get("Index", ""),
            run.get("Dataset", ""),
            run.get("Mix", ""),
            run.get("Threads", 0),
        )
        rows[key] = run
    return rows


def ns_per_op(run):
    ops = run.get("Ops", 0)
    if not ops:
        return 0.0
    return run.get("Elapsed", 0) / ops  # Elapsed is serialized in ns


def gc_cols(run):
    """Format a run's GC telemetry as (pause-p99 µs, pause ns per second)."""
    gc = run.get("GC") or {}
    p99 = gc.get("PauseP99Ns", 0) / 1e3
    per_sec = gc.get("PausePerSecNs", 0.0)
    return f"{p99:>8.1f} {per_sec:>9.0f}"


def compare(old_path, new_path, threshold_pct=3.0):
    """Diff two BENCH_*.json artifacts; return the number of regressions.

    A row regresses when its throughput drops by more than threshold_pct.
    Rows present on only one side are listed but never flagged (a new
    experiment is not a regression). GC pause columns are informational —
    pauses on a quiet run are noisy enough that flagging them would cry
    wolf; the gate stays on throughput.
    """
    old, new = load_rows(old_path), load_rows(new_path)
    shared = [k for k in old if k in new]
    if not shared:
        print(f"compare: no shared rows between {old_path} and {new_path}")
        return 0
    has_gc = any(old[k].get("GC") or new[k].get("GC") for k in shared)
    width = max(len(" ".join(str(p) for p in k[:4])) for k in shared)
    print(f"== compare: {old_path} -> {new_path} (threshold {threshold_pct:.1f}%) ==")
    gc_header = ""
    if has_gc:
        gc_header = (
            f" {'o-p99us':>8s} {'o-gcns/s':>9s} {'n-p99us':>8s} {'n-gcns/s':>9s}"
        )
    print(
        f"{'experiment index dataset mix':<{width}s} thr "
        f"{'old ns/op':>10s} {'new ns/op':>10s} {'old Mops':>9s} {'new Mops':>9s} {'delta':>8s}"
        + gc_header
    )
    regressions = 0
    for k in sorted(shared):
        o, n = old[k], new[k]
        label = " ".join(str(p) for p in k[:4])
        delta = 0.0
        if o.get("Mops"):
            delta = 100.0 * (n.get("Mops", 0.0) - o["Mops"]) / o["Mops"]
        flag = ""
        if delta < -threshold_pct:
            flag = "  REGRESSION"
            regressions += 1
        gc_part = f" {gc_cols(o)} {gc_cols(n)}" if has_gc else ""
        print(
            f"{label:<{width}s} {k[4]:>3d} "
            f"{ns_per_op(o):>10.1f} {ns_per_op(n):>10.1f} "
            f"{o.get('Mops', 0.0):>9.2f} {n.get('Mops', 0.0):>9.2f} {delta:>+7.1f}%"
            f"{gc_part}{flag}"
        )
    for k in sorted(set(old) - set(new)):
        print(f"  only in {old_path}: {' '.join(str(p) for p in k)}")
    for k in sorted(set(new) - set(old)):
        print(f"  only in {new_path}: {' '.join(str(p) for p in k)}")
    if regressions:
        print(f"compare: {regressions} regression(s) beyond {threshold_pct:.1f}%")
    return regressions


def main(*argv):
    if argv and argv[0] == "compare":
        rest = list(argv[1:])
        threshold = 3.0
        if "--threshold" in rest:
            i = rest.index("--threshold")
            try:
                threshold = float(rest[i + 1])
            except (IndexError, ValueError):
                sys.exit("summarize.py: --threshold needs a numeric percentage")
            del rest[i : i + 2]
        if len(rest) < 2:
            sys.exit(
                "usage: summarize.py compare [--threshold N] OLD.json NEW.json [threshold%]"
            )
        if len(rest) > 2:  # legacy trailing-positional threshold
            threshold = float(rest[2])
        sys.exit(1 if compare(rest[0], rest[1], threshold) else 0)
    path = argv[0] if argv else "results/experiments_raw.txt"
    if path.endswith(".json"):
        doc = json.load(open(path))
        experiments = {r.get("Experiment") for r in doc.get("Runs", [])}
        if "net-path" in experiments:
            summarize_net(path)
        if "scan-path" in experiments:
            summarize_scan(path)
        if experiments - {"net-path", "scan-path"}:
            summarize_shards(path)
    else:
        summarize_raw(path)


if __name__ == "__main__":
    main(*sys.argv[1:])
