#!/usr/bin/env python3
"""Summarise results/experiments_raw.txt: per Fig-7 mix, print each
dataset's ALT throughput, the best baseline, and the ratio — the numbers
EXPERIMENTS.md quotes. Stdlib only; rerun after regenerating the raw file.
"""
import re
import sys
from collections import defaultdict


def main(path="results/experiments_raw.txt"):
    text = open(path).read()
    sections = re.split(r"\n== ", text)
    for sec in sections:
        if not sec.startswith("Fig 7:"):
            continue
        title = sec.splitlines()[0]
        rows = defaultdict(dict)  # dataset -> index -> mops
        for line in sec.splitlines():
            m = re.match(
                r"(ALT-index|ALEX\+|LIPP\+|FINEdex|XIndex|ART)\s+(\w+)\s+([\d.]+)",
                line,
            )
            if m:
                rows[m.group(2)][m.group(1)] = float(m.group(3))
        print(f"\n{title}")
        for ds, byidx in rows.items():
            alt = byidx.get("ALT-index", 0)
            base = {k: v for k, v in byidx.items() if k != "ALT-index"}
            if not base or alt == 0:
                continue
            bname, bval = max(base.items(), key=lambda kv: kv[1])
            print(f"  {ds:8s} ALT={alt:5.2f}  best-baseline={bname}={bval:5.2f}  ratio={alt/bval:4.2f}x")


if __name__ == "__main__":
    main(*sys.argv[1:])
