package bench

import (
	"fmt"
	"sync"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/workload"
)

// Prepared is a reusable benchmark scenario: a bulkloaded index plus the
// per-thread operation streams of a workload. It lets testing.B benchmarks
// exclude the build from the timed region.
type Prepared struct {
	Ix      index.Concurrent
	cfg     Config
	w       *workload.Workload
	streams []*workload.Stream
}

// Prepare generates the dataset, bulkloads a fresh index and sets up one
// operation stream per thread.
func Prepare(factory func() index.Concurrent, cfg Config) *Prepared {
	cfg = cfg.withDefaults()
	keys := dataset.Generate(cfg.Dataset, cfg.Keys, cfg.Seed)
	var loaded, pending []uint64
	if cfg.Hot {
		loaded, pending = workload.HotSplit(keys, cfg.HotFrac, cfg.Seed)
	} else {
		loaded, pending = workload.SplitLoad(keys, cfg.InitRatio, cfg.Seed)
	}
	ix := factory()
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		panic(fmt.Sprintf("bench: bulkload %s: %v", ix.Name(), err))
	}
	p := &Prepared{Ix: ix, cfg: cfg}
	p.w = workload.New(workload.Config{
		Mix: cfg.Mix, Theta: cfg.Theta, Threads: cfg.Threads, Seed: cfg.Seed + 1,
	}, loaded, pending)
	for tid := 0; tid < cfg.Threads; tid++ {
		p.streams = append(p.streams, p.w.Stream(tid))
	}
	return p
}

// Exec runs ops operations split across the prepared threads (no latency
// sampling). Streams continue where the previous Exec stopped.
func (p *Prepared) Exec(ops int) {
	per := ops / len(p.streams)
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	for tid := range p.streams {
		wg.Add(1)
		go func(s *workload.Stream) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := s.Next()
				switch op.Kind {
				case workload.Get:
					p.Ix.Get(op.Key)
				case workload.Insert:
					_ = p.Ix.Insert(op.Key, op.Value)
				case workload.Update:
					p.Ix.Update(op.Key, op.Value)
				case workload.Remove:
					p.Ix.Remove(op.Key)
				case workload.Scan:
					p.Ix.Scan(op.Key, op.N, func(uint64, uint64) bool { return true })
				}
			}
		}(p.streams[tid])
	}
	wg.Wait()
}

// Close releases background machinery owned by the index.
func (p *Prepared) Close() { closeIfCloser(p.Ix) }
