package bench

import (
	"altindex/internal/alex"
	"altindex/internal/art"
	"altindex/internal/core"
	"altindex/internal/finedex"
	"altindex/internal/index"
	"altindex/internal/lipp"
	"altindex/internal/shard"
	"altindex/internal/xindex"
)

// NamedFactory pairs an index constructor with the display name the paper
// uses for it.
type NamedFactory struct {
	Name string
	New  func() index.Concurrent
}

// ALT returns the ALT-index factory with default (paper-recommended)
// options.
func ALT() NamedFactory {
	return NamedFactory{"ALT-index", func() index.Concurrent { return core.New(core.Options{}) }}
}

// ALTWith returns an ALT-index factory with explicit options, used by the
// ablation experiments.
func ALTWith(name string, opts core.Options) NamedFactory {
	return NamedFactory{name, func() index.Concurrent { return core.New(opts) }}
}

// ALTSharded returns a factory for the range-partitioned front-end with
// the given shard count (the shard-scaling experiment's variable).
func ALTSharded(name string, shards int, opts core.Options) NamedFactory {
	opts.Shards = shards
	return NamedFactory{name, func() index.Concurrent { return shard.New(opts) }}
}

// Competitors returns the five baseline factories in the paper's order.
func Competitors() []NamedFactory {
	return []NamedFactory{
		{"ALEX+", func() index.Concurrent { return alex.New() }},
		{"LIPP+", func() index.Concurrent { return lipp.New() }},
		{"FINEdex", func() index.Concurrent { return finedex.New() }},
		{"XIndex", func() index.Concurrent { return xindex.New() }},
		{"ART", func() index.Concurrent { return art.New(nil) }},
	}
}

// All returns ALT-index followed by every competitor (the full Fig 7/8/9
// line-up).
func All() []NamedFactory {
	return append([]NamedFactory{ALT()}, Competitors()...)
}

// ByName returns the factory with the given display name, or ok=false.
func ByName(name string) (NamedFactory, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	return NamedFactory{}, false
}

// FINEdexWith returns a FINEdex factory with an explicit error bound (the
// Fig 3b sweep).
func FINEdexWith(errBound int) NamedFactory {
	return NamedFactory{"FINEdex", func() index.Concurrent {
		ix := finedex.New()
		ix.ErrBound = errBound
		return ix
	}}
}

// XIndexWith returns an XIndex factory with an explicit error bound (the
// Fig 3b sweep).
func XIndexWith(errBound int) NamedFactory {
	return NamedFactory{"XIndex", func() index.Concurrent {
		ix := xindex.New()
		ix.ErrBound = errBound
		return ix
	}}
}
