package bench

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/dataset"
	"altindex/internal/histogram"
	"altindex/internal/server"
	"altindex/internal/workload"
)

// netKeysCap bounds the preloaded keyspace of the net-path experiment: the
// experiment measures the network hot path (syscalls, parsing, flush
// amortization, cross-connection coalescing), not index scaling, and a
// compact resident set keeps row-to-row variance in the protocol loop.
const netKeysCap = 200_000

// NetPath measures the served (TCP) hot path end to end: a closed-loop
// multi-connection load generator drives the balanced workload over the
// line protocol against an in-process altdb server, one fresh server per
// row. Two sweeps:
//
//   - depth sweep at -net-conns connections: the legacy loop (one flush
//     per command, batch-of-1 index calls, coalescing off — the pre-
//     pipelining baseline) against the pipelined loop, at pipeline depths
//     1..64. The pipelined rows amortize reply flushes (Fl/op ~ 1/depth)
//     and ride the batched index fast path, so the gap widens with depth.
//   - connection sweep at -net-depth depth, pipelined loop: shows the
//     adaptive coalescing gate engaging at >= 8 connections (CoRounds > 0,
//     CoMean > 1) while a single connection stays on the direct path.
//
// Latency percentiles are per-burst round trips (one burst = depth
// commands written in one syscall, depth replies read back); flushes/op
// and the coalescing counters come from the server's own STATS reply over
// the wire.
func NetPath(p Params) {
	p = p.withDefaults()
	nkeys := p.Keys
	if nkeys > netKeysCap {
		nkeys = netKeysCap
	}
	header(p, "Net path: pipelined protocol loop + cross-connection coalescing over TCP")
	fmt.Fprintf(p.Out, "(balanced mix, %d preloaded keys, burst-RTT percentiles; legacy = per-command flush, no coalescing)\n", nkeys)
	keys := dataset.Generate(dataset.OSM, nkeys, p.Seed)

	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Mode\tConns\tDepth\tKops\tP50us\tP99us\tP99.9us\tFl/op\tCoRounds\tCoMean\tCoP50")
	row := func(legacy bool, conns, depth int) {
		// Scheduling noise on shared hosts swings single closed-loop TCP
		// runs wildly; report the median of three (same convention as the
		// shard-scaling sweep).
		const reps = 3
		runs := make([]Result, 0, reps)
		for rep := 0; rep < reps; rep++ {
			runs = append(runs, runNet(p, keys, legacy, conns, depth))
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Mops < runs[j].Mops })
		r := runs[reps/2]
		p.record(r)
		mode := "pipelined"
		if legacy {
			mode = "legacy"
		}
		flop := float64(r.Stats["net_flushes"]) / float64(max64(r.Stats["net_cmds"], 1))
		comean := 0.0
		if b := r.Stats["coalesce_batches"]; b > 0 {
			comean = float64(r.Stats["coalesce_ops"]) / float64(b)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%s\t%s\t%s\t%.3f\t%d\t%.1f\t%d\n",
			mode, conns, depth, r.Mops*1e3, us(r.P50), us(r.P99), us(r.P999),
			flop, r.Stats["coalesce_batches"], comean, r.Stats["coalesce_p50_batch"])
	}

	depths := dedupInts([]int{1, 4, 16, 64, p.NetDepth})
	for _, legacy := range []bool{true, false} {
		for _, d := range depths {
			row(legacy, p.NetConns, d)
		}
	}
	tw.Flush()

	fmt.Fprintf(p.Out, "\n-- connection sweep at depth %d (pipelined, coalescing gate 8) --\n", p.NetDepth)
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Mode\tConns\tDepth\tKops\tP50us\tP99us\tP99.9us\tFl/op\tCoRounds\tCoMean\tCoP50")
	for _, c := range dedupInts([]int{1, 2, 4, 8, 16, p.NetConns}) {
		row(false, c, p.NetDepth)
	}
	tw.Flush()
}

// runNet runs one grid cell: fresh server, preload, closed-loop drive,
// STATS scrape, shutdown.
func runNet(p Params, keys []uint64, legacy bool, conns, depth int) Result {
	cfg := server.Config{
		LegacyLoop:   legacy,
		ReadTimeout:  time.Minute,
		WriteTimeout: time.Minute,
	}
	if legacy {
		// The legacy rows are the pre-pipelining baseline; the op scheduler
		// would otherwise still coalesce their batch-of-1 groups across
		// connections and flatter the old loop.
		cfg.CoalesceConns = -1
	}
	srv, err := server.NewServerWith(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: net server: %v", err))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: net listen: %v", err))
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	if err := srv.Preload(dataset.Pairs(keys)); err != nil {
		panic(fmt.Sprintf("bench: net preload: %v", err))
	}

	wl := workload.New(workload.Config{Mix: workload.Balanced, Threads: conns, Seed: p.Seed}, keys, nil)
	target := p.Ops / 5
	if target < 10_000 {
		target = 10_000
	}
	perConn := (target + conns - 1) / conns
	var hist histogram.Histogram
	var done atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	t0 := time.Now()
	var dl time.Time
	if p.Duration > 0 {
		dl = t0.Add(p.Duration)
	}
	for tid := 0; tid < conns; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			st := wl.Stream(tid)
			buf := make([]byte, 0, depth*32)
			rbuf := make([]byte, 64*1024)
			sent := 0
			for {
				if p.Duration > 0 {
					if time.Now().After(dl) {
						break
					}
				} else if sent >= perConn {
					break
				}
				buf = buf[:0]
				for i := 0; i < depth; i++ {
					op := st.Next()
					switch op.Kind {
					case workload.Get:
						buf = append(buf, "GET "...)
						buf = strconv.AppendUint(buf, op.Key, 10)
					case workload.Remove:
						buf = append(buf, "DEL "...)
						buf = strconv.AppendUint(buf, op.Key, 10)
					default: // Insert/Update
						buf = append(buf, "SET "...)
						buf = strconv.AppendUint(buf, op.Key, 10)
						buf = append(buf, ' ')
						buf = strconv.AppendUint(buf, op.Value, 10)
					}
					buf = append(buf, '\n')
				}
				b0 := time.Now()
				if _, err := conn.Write(buf); err != nil {
					errCh <- err
					return
				}
				need := depth // every point command replies with exactly one line
				for need > 0 {
					n, err := conn.Read(rbuf)
					if err != nil {
						errCh <- err
						return
					}
					for _, c := range rbuf[:n] {
						if c == '\n' {
							need--
						}
					}
				}
				hist.Record(time.Since(b0))
				sent += depth
			}
			done.Add(int64(sent))
			errCh <- nil
		}(tid)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errCh)
	for err := range errCh {
		if err != nil {
			panic(fmt.Sprintf("bench: net client: %v", err))
		}
	}
	stats := netStatsOverWire(ln.Addr().String())

	ops := int(done.Load())
	mode := "net-pipelined"
	if legacy {
		mode = "net-legacy"
	}
	return Result{
		Index:   mode,
		Dataset: dataset.OSM,
		Mix:     fmt.Sprintf("net-balanced c%d d%d", conns, depth),
		Threads: conns,
		Ops:     ops,
		Elapsed: elapsed,
		Mops:    float64(ops) / elapsed.Seconds() / 1e6,
		Mean:    hist.Mean(),
		P50:     hist.Quantile(0.50),
		P99:     hist.Quantile(0.99),
		P999:    hist.Quantile(0.999),
		Stats:   stats,
	}
}

// netStatsOverWire scrapes the server's STATS reply the way an operator
// would, so the reported flush and coalescing counters are the served ones.
func netStatsOverWire(addr string) map[string]int64 {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		panic(fmt.Sprintf("bench: net stats dial: %v", err))
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := conn.Write([]byte("STATS\n")); err != nil {
		panic(fmt.Sprintf("bench: net stats: %v", err))
	}
	m := map[string]int64{}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "END" {
			return m
		}
		var k string
		var v int64
		if _, err := fmt.Sscanf(line, "STAT %s %d", &k, &v); err == nil {
			m[k] = v
		} else if strings.HasPrefix(line, "ERR") {
			panic(fmt.Sprintf("bench: net stats: %s", line))
		}
	}
	panic(fmt.Sprintf("bench: net stats: reply truncated: %v", sc.Err()))
}

func dedupInts(in []int) []int {
	var out []int
	for _, v := range in {
		if v <= 0 {
			continue
		}
		seen := false
		for _, o := range out {
			if o == v {
				seen = true
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	// Keep ascending order so tables read as sweeps.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
