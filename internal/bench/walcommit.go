package bench

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"altindex/internal/wal"
)

// WALCommit is the durability-cost experiment: what group commit buys and
// what each sync policy costs. For every sync policy × writer count cell,
// concurrent writers Commit fixed-size records as fast as they can and
// the table reports commits/s against fsyncs/s — under SyncAlways with
// multiple writers, fsyncs/s must sit well below commits/s (many commits
// amortized per group fsync), which is the group-commit claim. The final
// section measures recovery: a log of p.Ops records is written, the
// process state discarded, and Open+Replay timed — the recovery-time
// budget that bounds how rarely an embedder may checkpoint.
func WALCommit(p Params) {
	p = p.withDefaults()
	header(p, "WAL group commit: commits/s vs fsyncs/s per sync policy and writer count")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Policy\tWriters\tCommits\tCommits/s\tFsyncs\tFsyncs/s\tCommits/Fsync\tP50us\tP99us")

	policies := []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone}
	writerCounts := []int{1, 2, 4, 8, 16}
	payload := make([]byte, 64)
	cellBudget := p.Ops / 20
	if cellBudget < 2_000 {
		cellBudget = 2_000
	}
	cellDeadline := 2 * time.Second
	if p.Duration > 0 {
		cellDeadline = p.Duration
	}

	for _, pol := range policies {
		for _, writers := range writerCounts {
			dir, err := os.MkdirTemp("", "walbench")
			if err != nil {
				panic(err)
			}
			l, err := wal.Open(dir, wal.Options{Sync: pol, Interval: 2 * time.Millisecond})
			if err != nil {
				panic(err)
			}
			perWriter := cellBudget / writers
			lats := make([][]time.Duration, writers)
			var wg sync.WaitGroup
			deadline := time.Now().Add(cellDeadline)
			t0 := time.Now()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lat := make([]time.Duration, 0, perWriter)
					for i := 0; i < perWriter; i++ {
						if i&63 == 0 && time.Now().After(deadline) {
							break
						}
						s := time.Now()
						if _, err := l.Commit(payload); err != nil {
							panic(err)
						}
						lat = append(lat, time.Since(s))
					}
					lats[w] = lat
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(t0)
			st := l.Stats()
			l.Close()
			os.RemoveAll(dir)

			var all []time.Duration
			for _, lat := range lats {
				all = append(all, lat...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			commits := int64(len(all))
			perFsync := float64(commits)
			if st.Fsyncs > 0 {
				perFsync = float64(commits) / float64(st.Fsyncs)
			}
			sec := elapsed.Seconds()
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%d\t%.0f\t%.1f\t%s\t%s\n",
				pol, writers, commits, float64(commits)/sec,
				st.Fsyncs, float64(st.Fsyncs)/sec, perFsync,
				us(pctDur(all, 0.50)), us(pctDur(all, 0.99)))
			p.record(Result{
				Index: fmt.Sprintf("wal-%s", pol), Dataset: "wal", Mix: "commit",
				Threads: writers, Ops: int(commits), Elapsed: elapsed,
				Mops: float64(commits) / sec / 1e6,
				P50:  pctDur(all, 0.50), P99: pctDur(all, 0.99), P999: pctDur(all, 0.999),
				Stats: map[string]int64{"fsyncs": st.Fsyncs, "batches": st.Batches,
					"bytes": st.Bytes},
			})
		}
	}
	tw.Flush()

	// Recovery-time target: fill a log with p.Ops records, then time a cold
	// Open (scan + CRC validation) and Replay of every record.
	fmt.Fprintf(p.Out, "\n-- recovery: replaying a %d-record log --\n", p.Ops)
	dir, err := os.MkdirTemp("", "walreplay")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		panic(err)
	}
	for i := 0; i < p.Ops; i++ {
		if _, err := l.Append(payload); err != nil {
			panic(err)
		}
	}
	if err := l.Close(); err != nil {
		panic(err)
	}
	t0 := time.Now()
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		panic(err)
	}
	n, err := l2.Replay(0, func(uint64, []byte) error { return nil })
	if err != nil {
		panic(err)
	}
	dt := time.Since(t0)
	l2.Close()
	fmt.Fprintf(p.Out, "replayed %d records in %.3fs (%.2f Mrec/s)\n",
		n, dt.Seconds(), float64(n)/dt.Seconds()/1e6)
	p.record(Result{
		Index: "wal-replay", Dataset: "wal", Mix: "recovery",
		Threads: 1, Ops: n, Elapsed: dt,
		Mops: float64(n) / dt.Seconds() / 1e6,
	})
}

// pctDur returns the q-quantile of a sorted duration slice.
func pctDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
