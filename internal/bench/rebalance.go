package bench

import (
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"altindex/internal/core"
	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/shard"
	"altindex/internal/workload"
)

// rebalanceOpts is the controller configuration the adaptive variants
// run with. Factor 2.0 sits above the windowed max/mean imbalance a
// scrambled Zipf (θ=0.99) produces naturally (~1.5, dominated by the
// single hottest key's shard), so the uniform control stays idle, while
// a 90/10 hot range (max/mean ≈ 7) crosses it in every window.
func rebalanceOpts() core.Options {
	return core.Options{
		RebalanceFactor:   2.0,
		RebalanceInterval: 50 * time.Millisecond,
		RebalanceWindows:  2,
		RebalanceMinOps:   8192,
	}
}

// staleBounds computes the "yesterday's layout" boundary set: equal-depth
// quantiles over only the lowest eighth of the key population. It models
// the canonical growth pattern that defeats a static partition — the data
// grew 8x past the last boundary (auto-increment ids, timestamps), so the
// top shard holds ~7/8 of the keys while the lower shards split hairs;
// the index effectively degenerates to unsharded.
func staleBounds(keys []uint64, shards int) []uint64 {
	s := append([]uint64(nil), keys...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	frac := s[:len(s)/8]
	bounds := make([]uint64, shards-1)
	for i := 1; i < shards; i++ {
		bounds[i-1] = frac[i*len(frac)/shards]
	}
	return bounds
}

// altStale is ALTSharded with the shard boundaries pinned to a stale
// layout instead of the bulkload sample's quantiles.
func altStale(name string, shards int, opts core.Options, bounds []uint64) NamedFactory {
	opts.Shards = shards
	return NamedFactory{name, func() index.Concurrent {
		ix, err := shard.NewWithBounds(opts, bounds)
		if err != nil {
			panic(fmt.Sprintf("bench: stale bounds: %v", err))
		}
		return ix
	}}
}

// Rebalance measures what closing the skew-monitor loop buys: a 90/10
// hotspot whose hot range jumps to a new position several times mid-run,
// driven against an 8-shard index with static boundaries and against the
// same index with the adaptive split/merge controller armed.
//
// Three legs:
//
//   - moving hotspot over the stock equal-depth layout (the ISSUE's
//     headline row): the controller re-splits the hot range online and
//     merges the fine shards it abandons after each jump;
//   - the same hotspot over a stale layout (boundaries computed when the
//     data was an eighth of its size — everything above the old max key
//     piles into the top shard, degenerating to unsharded): the recovery
//     case, where the controller has a genuinely bad partition to fix;
//   - a uniform (Zipfian, no hotspot) control, where the controller must
//     stay idle and cost nothing.
//
// On multi-core hosts the static hot rows collapse onto one shard's
// cores while the rest idle, which is the degradation the ≥1.5× target
// in ISSUE 8 is written against; on a 1-vCPU host there is no cross-core
// contention to relieve, so the headline gap compresses to the per-shard
// ε effect (see results/rebalance.txt for the measured caveat).
func Rebalance(p Params) {
	p = p.withDefaults()
	header(p, "Adaptive rebalancing: moving 90/10 hotspot, split/merge controller vs static boundaries")

	const shards = 8
	// 90% reads / 10% writes, with the hotspot distribution steering both
	// (writes upsert hot keys), so the hot shard takes read and write
	// pressure at once.
	hotMix := workload.Mix{Name: "hot-90/10", Get: 90, Insert: 10}
	// A couple of mid-run jumps of the hot range (per-stream schedule), so
	// the run's aggregate throughput reflects re-adaptation, not one lucky
	// initial split — while leaving each phase long enough that a
	// migration's cost amortizes over the traffic it serves. Time-bounded
	// runs can't derive the schedule from an op budget, so they use a
	// fixed per-stream stride instead.
	shift := int64(600_000)
	if p.Duration == 0 {
		shift = int64(p.Ops / p.Threads / 4)
		if shift < 20000 {
			shift = 20000
		}
	}
	hs := &workload.Hotspot{Fraction: 0.1, OpFrac: 0.9, ShiftEvery: shift}

	datasets := []dataset.Name{dataset.Libio, dataset.OSM}

	median := func(f NamedFactory, cfg Config) Result {
		const reps = 3
		runs := make([]Result, 0, reps)
		for rep := 0; rep < reps; rep++ {
			c := cfg
			c.Seed = p.Seed + uint64(rep)
			runs = append(runs, Run(f.New, c))
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Mops < runs[j].Mops })
		r := runs[1]
		r.Index = f.Name
		p.record(r)
		return r
	}

	row := func(tw *tabwriter.Writer, f NamedFactory, cfg Config) Result {
		r := median(f, cfg)
		imbal := "-"
		if val, ok := r.Stats["shard_imbalance_x100"]; ok {
			imbal = fmt.Sprintf("%.2f", float64(val)/100)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			f.Name, cfg.Dataset, r.Mops, us(r.P50), us(r.P99), us(r.P999),
			r.Stats["shards"], r.Stats["rebalance_splits"],
			r.Stats["rebalance_merges"], r.Stats["rebalance_moved_keys"], imbal)
		return r
	}

	hotCfg := func(ds dataset.Name) Config {
		return Config{Dataset: ds, Keys: p.Keys, Mix: hotMix, Hotspot: hs,
			Threads: p.Threads, Ops: p.Ops, Duration: p.Duration}
	}

	// Leg 1: moving hotspot over the stock equal-depth layout.
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\tMops\tP50us\tP99us\tP99.9us\tShards\tSplits\tMerges\tMovedKeys\tImbal")
	mops := map[dataset.Name]map[string]float64{}
	for _, ds := range datasets {
		mops[ds] = map[string]float64{}
		for _, v := range []struct {
			name string
			opts core.Options
		}{{"ALT-S8-static", core.Options{}}, {"ALT-S8-adaptive", rebalanceOpts()}} {
			r := row(tw, ALTSharded(v.name+"-hot", shards, v.opts), hotCfg(ds))
			mops[ds][v.name] = r.Mops
		}
	}
	tw.Flush()

	fmt.Fprintf(p.Out, "\n-- adaptive vs static, moving 90/10 hotspot at %d threads --\n", p.Threads)
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tStatic\tAdaptive\tSpeedup")
	for _, ds := range datasets {
		st, ad := mops[ds]["ALT-S8-static"], mops[ds]["ALT-S8-adaptive"]
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2fx\n", ds, st, ad, ad/st)
	}
	tw.Flush()

	// Leg 2: the same hotspot over a stale partition (boundaries frozen
	// when the data was an eighth of its size). The static run is stuck
	// with ~7/8 of the keys in the top shard; the adaptive run splits its
	// way out.
	fmt.Fprintf(p.Out, "\n-- stale-boundary recovery: layout frozen at 1/8 of the data --\n")
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\tMops\tP50us\tP99us\tP99.9us\tShards\tSplits\tMerges\tMovedKeys\tImbal")
	stale := map[dataset.Name]map[string]float64{}
	for _, ds := range datasets {
		stale[ds] = map[string]float64{}
		bounds := staleBounds(dataset.Generate(ds, p.Keys, p.Seed), shards)
		for _, v := range []struct {
			name string
			opts core.Options
		}{{"ALT-S8-stale-static", core.Options{}}, {"ALT-S8-stale-adaptive", rebalanceOpts()}} {
			r := row(tw, altStale(v.name, shards, v.opts, bounds), hotCfg(ds))
			stale[ds][v.name] = r.Mops
		}
	}
	tw.Flush()
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tStatic\tAdaptive\tSpeedup")
	for _, ds := range datasets {
		st, ad := stale[ds]["ALT-S8-stale-static"], stale[ds]["ALT-S8-stale-adaptive"]
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2fx\n", ds, st, ad, ad/st)
	}
	tw.Flush()

	// Leg 3: no-regression control — the same variants under the uniform
	// Zipfian read mix. With nothing to rebalance the controller must
	// stay idle (factor/minOps gate) and the delta should be noise. The
	// mix is read-only on purpose: a timed write-heavy run exhausts the
	// pending insert keys and the streams then synthesise keys above the
	// dataset maximum — a genuine append-only skew on the top shard
	// (windowed max/mean ≈ 4.6 measured) that the controller would be
	// right to split, which is adaptation, not a control.
	fmt.Fprintf(p.Out, "\n-- uniform (zipf read) control: controller must cost nothing --\n")
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\tMops\tP99us\tSplits\tMerges")
	for _, ds := range datasets {
		for _, v := range []struct {
			name string
			opts core.Options
		}{{"ALT-S8-static", core.Options{}}, {"ALT-S8-adaptive", rebalanceOpts()}} {
			f := ALTSharded(v.name+"-uni", shards, v.opts)
			r := median(f, Config{Dataset: ds, Keys: p.Keys,
				Mix: workload.Mix{Name: "zipf-read", Get: 100},
				Threads: p.Threads, Ops: p.Ops, Duration: p.Duration})
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%d\t%d\n",
				f.Name, ds, r.Mops, us(r.P99),
				r.Stats["rebalance_splits"], r.Stats["rebalance_merges"])
		}
	}
	tw.Flush()
}
