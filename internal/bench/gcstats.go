package bench

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sort"
	"time"
)

// GCTelemetry summarizes the garbage collector's behaviour across one
// measured benchmark window. At paper scale (tens of millions of keys)
// the collector is a first-order effect on the tails the harness
// measures, so every Result carries these numbers and the JSON artifacts
// make the GC cost a number instead of a claim. All counters are deltas
// between the window's start and end except the heap gauges, which are
// the end-of-window values.
type GCTelemetry struct {
	// Cycles is the number of collections completed inside the window.
	Cycles int64
	// PauseTotalNs sums the stop-the-world pauses inside the window;
	// PauseP50Ns/PauseP99Ns/PauseMaxNs are quantiles over the same
	// per-cycle pauses (zero when no cycle completed).
	PauseTotalNs int64
	PauseP50Ns   int64
	PauseP99Ns   int64
	PauseMaxNs   int64
	// PausePerSecNs normalizes the total pause by the window's wall
	// clock, the number the large-tier acceptance gate compares: it is
	// insensitive to how long the window ran.
	PausePerSecNs float64
	// HeapInuseBytes/HeapSysBytes are the live-span and OS-reserved heap
	// sizes at window end.
	HeapInuseBytes uint64
	HeapSysBytes   uint64
	// AllocBytes is the total allocation inside the window (the churn the
	// arena layer exists to absorb).
	AllocBytes uint64
	// ScanBytes is the pointer-scan work (heap + stacks + globals) the
	// collector performed inside the window — the number that pointer-free
	// slot-block storage drives toward zero per slot.
	ScanBytes uint64
	// GCCPUFraction is the runtime's lifetime estimate of CPU spent in
	// GC, read at window end.
	GCCPUFraction float64
}

// gcPauseRing bounds the pause history requested from the runtime; the
// runtime itself retains at most 256 pauses.
const gcPauseRing = 256

// gcWindow is an open telemetry window; startGCWindow opens one and
// finish closes it into a GCTelemetry.
type gcWindow struct {
	t0    time.Time
	gcs   debug.GCStats
	ms    runtime.MemStats
	scan0 uint64
}

// startGCWindow snapshots the collector's counters. Call immediately
// before the measured work; the snapshot itself briefly stops the world
// (ReadMemStats), which is why it sits outside the timed region.
func startGCWindow() *gcWindow {
	w := &gcWindow{}
	w.gcs.Pause = make([]time.Duration, 0, gcPauseRing)
	debug.ReadGCStats(&w.gcs)
	runtime.ReadMemStats(&w.ms)
	w.scan0 = readScanBytes()
	w.t0 = time.Now()
	return w
}

// finish closes the window and computes the deltas. The pause quantiles
// cover the cycles that completed inside the window (the runtime's ring
// holds the most recent 256 — more than any realistic window completes).
func (w *gcWindow) finish() *GCTelemetry {
	elapsed := time.Since(w.t0)
	var gcs debug.GCStats
	gcs.Pause = make([]time.Duration, 0, gcPauseRing)
	debug.ReadGCStats(&gcs)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	out := &GCTelemetry{
		Cycles:         gcs.NumGC - w.gcs.NumGC,
		PauseTotalNs:   int64(gcs.PauseTotal - w.gcs.PauseTotal),
		HeapInuseBytes: ms.HeapInuse,
		HeapSysBytes:   ms.HeapSys,
		AllocBytes:     ms.TotalAlloc - w.ms.TotalAlloc,
		GCCPUFraction:  ms.GCCPUFraction,
	}
	if s := readScanBytes(); s >= w.scan0 {
		out.ScanBytes = s - w.scan0
	}
	if sec := elapsed.Seconds(); sec > 0 {
		out.PausePerSecNs = float64(out.PauseTotalNs) / sec
	}
	n := int(out.Cycles)
	if n > len(gcs.Pause) {
		n = len(gcs.Pause) // ring shorter than the cycle count: best effort
	}
	if n > 0 {
		// gcs.Pause is most-recent-first; the window's pauses are the
		// prefix. Sort a copy for the quantiles.
		pauses := append([]time.Duration(nil), gcs.Pause[:n]...)
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		out.PauseP50Ns = int64(pauses[n/2])
		out.PauseP99Ns = int64(pauses[n*99/100])
		out.PauseMaxNs = int64(pauses[n-1])
	}
	return out
}

// readScanBytes reads the collector's cumulative pointer-scan byte count
// (heap + stacks + globals) from runtime/metrics; zero when the metric is
// unavailable.
func readScanBytes() uint64 {
	samples := []metrics.Sample{{Name: "/gc/scan/total:bytes"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		return samples[0].Value.Uint64()
	}
	return 0
}
