package bench

import (
	"bytes"
	"strings"
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/workload"
)

func tinyParams(buf *bytes.Buffer) Params {
	return Params{Keys: 20000, Threads: 4, Ops: 20000, Seed: 1, Out: buf}
}

func TestRunProducesSaneResult(t *testing.T) {
	for _, f := range All() {
		r := Run(f.New, Config{Dataset: dataset.OSM, Keys: 20000,
			Mix: workload.Balanced, Threads: 4, Ops: 20000, Seed: 1})
		if r.Mops <= 0 {
			t.Fatalf("%s: Mops=%v", f.Name, r.Mops)
		}
		if r.P999 < r.P50 {
			t.Fatalf("%s: P999 %v < P50 %v", f.Name, r.P999, r.P50)
		}
		if r.Mem == 0 {
			t.Fatalf("%s: no memory reported", f.Name)
		}
		if r.Len == 0 {
			t.Fatalf("%s: empty index after run", f.Name)
		}
		if r.Index != f.Name {
			t.Fatalf("name mismatch: %q vs %q", r.Index, f.Name)
		}
	}
}

func TestRunReadOnlyKeepsLen(t *testing.T) {
	r := Run(ALT().New, Config{Dataset: dataset.Libio, Keys: 10000,
		Mix: workload.ReadOnly, Threads: 2, Ops: 5000, Seed: 2})
	if r.Len != 5000 { // InitRatio 0.5 of 10000
		t.Fatalf("Len=%d want 5000", r.Len)
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"ALT-index", "ALEX+", "LIPP+", "FINEdex", "XIndex", "ART"} {
		f, ok := ByName(want)
		if !ok || f.Name != want {
			t.Fatalf("ByName(%q) failed", want)
		}
		ix := f.New()
		if ix.Name() != want {
			t.Fatalf("factory %q built %q", want, ix.Name())
		}
		CloseIndex(ix)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

// TestEveryExperimentRuns executes the entire experiment registry at tiny
// scale, verifying each emits a non-empty table without panicking.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(tinyParams(&buf))
			out := buf.String()
			if !strings.Contains(out, "==") || len(out) < 80 {
				t.Fatalf("experiment %s produced no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig9"); !ok {
		t.Fatal("fig9 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestBuildOnly(t *testing.T) {
	ix, dt := BuildOnly(ALT().New, dataset.Libio, 10000, 1, 1)
	defer CloseIndex(ix)
	if ix.Len() != 10000 {
		t.Fatalf("Len=%d", ix.Len())
	}
	if dt <= 0 {
		t.Fatal("no build time")
	}
}
