package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"altindex/internal/core"
	"altindex/internal/dataset"
	"altindex/internal/workload"
)

func tinyParams(buf *bytes.Buffer) Params {
	return Params{Keys: 20000, Threads: 4, Ops: 20000, Seed: 1, Out: buf}
}

func TestRunProducesSaneResult(t *testing.T) {
	for _, f := range All() {
		r := Run(f.New, Config{Dataset: dataset.OSM, Keys: 20000,
			Mix: workload.Balanced, Threads: 4, Ops: 20000, Seed: 1})
		if r.Mops <= 0 {
			t.Fatalf("%s: Mops=%v", f.Name, r.Mops)
		}
		if r.P999 < r.P50 {
			t.Fatalf("%s: P999 %v < P50 %v", f.Name, r.P999, r.P50)
		}
		if r.Mem == 0 {
			t.Fatalf("%s: no memory reported", f.Name)
		}
		if r.Len == 0 {
			t.Fatalf("%s: empty index after run", f.Name)
		}
		if r.Index != f.Name {
			t.Fatalf("name mismatch: %q vs %q", r.Index, f.Name)
		}
	}
}

func TestRunReadOnlyKeepsLen(t *testing.T) {
	r := Run(ALT().New, Config{Dataset: dataset.Libio, Keys: 10000,
		Mix: workload.ReadOnly, Threads: 2, Ops: 5000, Seed: 2})
	if r.Len != 5000 { // InitRatio 0.5 of 10000
		t.Fatalf("Len=%d want 5000", r.Len)
	}
}

// TestRunOpDistribution is the regression test for the per-thread op
// division: Ops that don't divide Threads — in particular Ops < Threads,
// which used to run zero operations — must still execute every configured
// operation, and the reported Ops/Mops must reflect the configuration.
func TestRunOpDistribution(t *testing.T) {
	for _, tc := range []struct{ ops, threads int }{
		{3, 8},   // fewer ops than threads: the old division ran nothing
		{10, 4},  // remainder 2
		{17, 16}, // remainder 1
	} {
		r := Run(ALT().New, Config{Dataset: dataset.Libio, Keys: 10000,
			Mix: workload.WriteOnly, Threads: tc.threads, Ops: tc.ops, Seed: 3,
			SampleEvery: 1})
		if r.Ops != tc.ops {
			t.Fatalf("ops=%d threads=%d: Result.Ops = %d", tc.ops, tc.threads, r.Ops)
		}
		// Write-only against a half-loaded dataset: every op inserts a
		// fresh pending key, so the executed count is visible in Len.
		if got := r.Len - 5000; got != tc.ops {
			t.Fatalf("ops=%d threads=%d: %d ops executed", tc.ops, tc.threads, got)
		}
		if r.Mops <= 0 {
			t.Fatalf("ops=%d threads=%d: Mops = %v", tc.ops, tc.threads, r.Mops)
		}
	}
}

// TestRunDurationMode checks the time-bounded mode: the run must stop
// near the wall-clock budget regardless of Ops, and Result.Ops must
// report what was achieved, not the configured count.
func TestRunDurationMode(t *testing.T) {
	for _, batch := range []int{0, 8} {
		t0 := time.Now()
		r := Run(ALT().New, Config{Dataset: dataset.Libio, Keys: 10000,
			Mix: workload.ReadOnly, Threads: 2, Ops: 1, Seed: 4,
			Duration: 50 * time.Millisecond, BatchSize: batch})
		elapsed := time.Since(t0)
		// Ops:1 would finish instantly; a duration run must keep going for
		// the budget and do far more than one op on a 10k-key read loop.
		if r.Ops <= 2 {
			t.Fatalf("batch=%d: achieved only %d ops in duration mode", batch, r.Ops)
		}
		if r.Elapsed < 40*time.Millisecond {
			t.Fatalf("batch=%d: run lasted %v, budget 50ms", batch, r.Elapsed)
		}
		// Generous upper bound: the deadline check runs every 64 ops, so
		// overshoot is bounded by 64 ops of work, not seconds.
		if elapsed > 5*time.Second {
			t.Fatalf("batch=%d: duration mode ran %v", batch, elapsed)
		}
		if r.Mops <= 0 {
			t.Fatalf("batch=%d: Mops = %v", batch, r.Mops)
		}
	}
}

func TestRunRejectsNegativeOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Ops did not panic")
		}
	}()
	Run(ALT().New, Config{Dataset: dataset.Libio, Keys: 1000, Threads: 2, Ops: -1})
}

// TestShardScalingFactory checks the sharded factory used by the
// shard-scaling experiment builds a genuinely sharded index.
func TestShardScalingFactory(t *testing.T) {
	f := ALTSharded("ALT-S4", 4, core.Options{})
	r := Run(f.New, Config{Dataset: dataset.OSM,
		Keys: 20000, Mix: workload.Balanced, Threads: 2, Ops: 10000, Seed: 1})
	if r.Stats["shards"] != 4 {
		t.Fatalf("shards stat = %d, want 4", r.Stats["shards"])
	}
	if r.Stats["shard_ops_total"] == 0 {
		t.Fatal("skew monitor recorded no routed ops")
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"ALT-index", "ALEX+", "LIPP+", "FINEdex", "XIndex", "ART"} {
		f, ok := ByName(want)
		if !ok || f.Name != want {
			t.Fatalf("ByName(%q) failed", want)
		}
		ix := f.New()
		if ix.Name() != want {
			t.Fatalf("factory %q built %q", want, ix.Name())
		}
		CloseIndex(ix)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

// TestEveryExperimentRuns executes the entire experiment registry at tiny
// scale, verifying each emits a non-empty table without panicking.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(tinyParams(&buf))
			out := buf.String()
			if !strings.Contains(out, "==") || len(out) < 80 {
				t.Fatalf("experiment %s produced no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig9"); !ok {
		t.Fatal("fig9 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestBuildOnly(t *testing.T) {
	ix, dt := BuildOnly(ALT().New, dataset.Libio, 10000, 1, 1)
	defer CloseIndex(ix)
	if ix.Len() != 10000 {
		t.Fatalf("Len=%d", ix.Len())
	}
	if dt <= 0 {
		t.Fatal("no build time")
	}
}

// TestNetPathSmoke drives one tiny grid cell of the net-path experiment in
// each loop mode: the closed-loop TCP client must complete its op target
// and the STATS scrape must carry the net counters the tables are built
// from (and prove the legacy baseline really flushes per command).
func TestNetPathSmoke(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 5000, 1)
	p := Params{Keys: 5000, Ops: 2000, Seed: 1}.withDefaults()
	p.Ops = 2000 // keep the floor in runNet from inflating a smoke test
	for _, legacy := range []bool{false, true} {
		r := runNet(p, keys, legacy, 2, 8)
		if r.Ops < 2000 {
			t.Fatalf("legacy=%v: ran %d ops, want >= 2000", legacy, r.Ops)
		}
		if r.Stats["net_cmds"] < int64(r.Ops) {
			t.Fatalf("legacy=%v: net_cmds=%d < ops=%d", legacy, r.Stats["net_cmds"], r.Ops)
		}
		flushes, cmds := r.Stats["net_flushes"], r.Stats["net_cmds"]
		// The STATS reply's own flush lands after the counters are
		// snapshotted, hence the -1.
		if legacy && flushes < cmds-1 {
			t.Fatalf("legacy baseline flushed %d times for %d commands, want one per command", flushes, cmds)
		}
		if !legacy && flushes*2 > cmds {
			t.Fatalf("pipelined loop flushed %d times for %d commands, want amortized", flushes, cmds)
		}
	}
}
