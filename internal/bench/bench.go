// Package bench is the benchmark harness that regenerates every table and
// figure of the ALT-index paper's evaluation (§IV) against the six index
// implementations in this repository. Each experiment is exposed both as a
// function (used by cmd/altbench and the root testing.B benchmarks) and
// prints the same rows/series the paper reports.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/dataset"
	"altindex/internal/histogram"
	"altindex/internal/index"
	"altindex/internal/workload"
)

// Config describes one benchmark run of one index.
type Config struct {
	Dataset   dataset.Name
	Keys      int     // total dataset size
	InitRatio float64 // bulkloaded fraction (default 0.5, §IV-A2)
	Hot       bool    // reserve a consecutive middle range for inserts
	HotFrac   float64 // reserved fraction for Hot (default 0.2)
	Mix       workload.Mix
	Theta     float64 // zipfian θ for reads (default 0.99)
	// Hotspot, when set, replaces the Zipfian key choice with the hotspot
	// distribution (hot-fraction / hot-opfrac / shift schedule) — the
	// adaptive-rebalancing experiment's moving skew.
	Hotspot *workload.Hotspot
	Threads int
	Ops       int // total operations across all threads
	Seed      uint64
	// SampleEvery controls latency sampling (default every 16th op).
	SampleEvery int
	// BatchSize groups consecutive same-kind Get/Insert operations into
	// GetBatch/InsertBatch calls of at most this size. 0 or 1 selects the
	// per-key path. Latency samples then cover a whole batch.
	BatchSize int
	// Duration, when positive, makes the run time-bounded: every thread
	// executes operations until the wall-clock budget expires and Ops is
	// ignored as a stop condition. Result.Ops then reports the achieved
	// operation count, so throughput stays comparable across host speeds
	// (a slow machine runs fewer ops instead of taking longer).
	Duration time.Duration
	// LoopBatch forces the generic per-key loop fallback
	// (index.LoopBatcher) even when the index natively implements
	// index.Batcher — the comparison baseline for native batch paths.
	LoopBatch bool
}

func (c Config) withDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 2_000_000
	}
	if c.InitRatio == 0 {
		c.InitRatio = 0.5
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.2
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.Threads == 0 {
		c.Threads = defaultThreads()
	}
	if c.Ops == 0 {
		c.Ops = 1_000_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	return c
}

func defaultThreads() int {
	t := runtime.GOMAXPROCS(0)
	if t > 32 {
		t = 32
	}
	return t
}

// Result is the outcome of one run.
type Result struct {
	Index     string
	Dataset   dataset.Name
	Mix       string
	Threads   int
	Ops       int
	Elapsed   time.Duration
	Mops      float64
	Mean      time.Duration
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	BuildTime time.Duration
	Mem       uintptr
	Len       int
	Stats     map[string]int64
	// GC carries the collector telemetry captured across the measured
	// window (see GCTelemetry); nil only for hand-built Results.
	GC *GCTelemetry
}

// Run bulkloads a fresh index from factory and drives cfg's workload
// against it with cfg.Threads goroutines, returning throughput, sampled
// latency percentiles, memory and internal stats.
func Run(factory func() index.Concurrent, cfg Config) Result {
	cfg = cfg.withDefaults()
	// Collect the previous run's garbage so back-to-back comparisons of
	// different indexes don't charge one index for another's heap.
	runtime.GC()
	keys := dataset.Generate(cfg.Dataset, cfg.Keys, cfg.Seed)
	var loaded, pending []uint64
	if cfg.Hot {
		loaded, pending = workload.HotSplit(keys, cfg.HotFrac, cfg.Seed)
	} else {
		loaded, pending = workload.SplitLoad(keys, cfg.InitRatio, cfg.Seed)
	}

	ix := factory()
	defer closeIfCloser(ix)
	buildStart := time.Now()
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		panic(fmt.Sprintf("bench: bulkload %s: %v", ix.Name(), err))
	}
	build := time.Since(buildStart)

	w := workload.New(workload.Config{
		Mix:     cfg.Mix,
		Theta:   cfg.Theta,
		Threads: cfg.Threads,
		Seed:    cfg.Seed + 1,
		Hotspot: cfg.Hotspot,
	}, loaded, pending)

	if cfg.Ops < 0 {
		panic(fmt.Sprintf("bench: Ops = %d, must be positive", cfg.Ops))
	}
	// Distribute cfg.Ops across threads with the remainder spread over the
	// first Ops%Threads of them, so every configured operation runs even
	// when Ops is not a multiple of Threads — in particular Ops < Threads
	// must not silently run zero operations. Time-bounded runs instead give
	// every thread an unbounded op budget and a shared wall-clock deadline.
	base, rem := cfg.Ops/cfg.Threads, cfg.Ops%cfg.Threads
	if cfg.Duration > 0 {
		// -1 marks an unbounded per-thread budget (the deadline is the only
		// stop condition); 0 must keep meaning "no ops for this thread".
		base, rem = -1, 0
	}
	var achieved atomic.Int64
	var hist histogram.Histogram
	var wg sync.WaitGroup
	start := make(chan struct{})
	for tid := 0; tid < cfg.Threads; tid++ {
		ops := base
		if tid < rem {
			ops++
		}
		wg.Add(1)
		go func(tid, ops int) {
			defer wg.Done()
			s := w.Stream(tid)
			<-start
			// The deadline starts at the release of the start gate, so the
			// budget covers measured work only, not goroutine spawn.
			var dl time.Time
			if cfg.Duration > 0 {
				dl = time.Now().Add(cfg.Duration)
			}
			var n int
			if cfg.BatchSize > 1 {
				n = runThreadBatched(ix, s, ops, cfg.BatchSize, cfg.LoopBatch, cfg.SampleEvery, &hist, dl)
			} else {
				n = runThread(ix, s, ops, cfg.SampleEvery, &hist, dl)
			}
			achieved.Add(int64(n))
		}(tid, ops)
	}
	gw := startGCWindow()
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	gc := gw.finish()
	doneOps := int(achieved.Load())
	// Drain any asynchronous maintenance (background retraining) so the
	// memory/stats snapshot below is settled. Deliberately outside the
	// timed window: writers never wait for it, that is the design.
	if q, ok := ix.(interface{ Quiesce() }); ok {
		q.Quiesce()
	}

	res := Result{
		Index:     ix.Name(),
		Dataset:   cfg.Dataset,
		Mix:       cfg.Mix.Name,
		Threads:   cfg.Threads,
		Ops:       doneOps,
		Elapsed:   elapsed,
		Mops:      float64(doneOps) / elapsed.Seconds() / 1e6,
		Mean:      hist.Mean(),
		P50:       hist.Quantile(0.50),
		P99:       hist.Quantile(0.99),
		P999:      hist.Quantile(0.999),
		BuildTime: build,
		Mem:       ix.MemoryUsage(),
		Len:       ix.Len(),
		GC:        gc,
	}
	if st, ok := ix.(index.Stats); ok {
		res.Stats = st.StatsMap()
	}
	return res
}

// runThread executes up to ops operations (unbounded when ops < 0; zero
// means zero) and returns the number actually executed. A non-zero
// deadline dl stops the loop once the wall clock passes it; the check
// runs every 64 ops so the common fixed-ops path pays nothing
// measurable for it.
func runThread(ix index.Concurrent, s *workload.Stream, ops, sampleEvery int, hist *histogram.Histogram, dl time.Time) int {
	done := 0
	for i := 0; ops < 0 || i < ops; i++ {
		if !dl.IsZero() && i&63 == 0 && time.Now().After(dl) {
			break
		}
		op := s.Next()
		done++
		sampled := i%sampleEvery == 0
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		switch op.Kind {
		case workload.Get:
			ix.Get(op.Key)
		case workload.Insert:
			_ = ix.Insert(op.Key, op.Value)
		case workload.Update:
			ix.Update(op.Key, op.Value)
		case workload.Remove:
			ix.Remove(op.Key)
		case workload.Scan:
			ix.Scan(op.Key, op.N, func(uint64, uint64) bool { return true })
		}
		if sampled {
			hist.Record(time.Since(t0))
		}
	}
	return done
}

// runThreadBatched drives the stream through the batched API: consecutive
// Get ops accumulate into a GetBatch, consecutive Inserts into an
// InsertBatch, flushed when the kind changes or the batch fills. Other op
// kinds run per-key. Each latency sample covers one whole flushed batch.
// Like runThread it returns the executed op count, honoring the deadline.
func runThreadBatched(ix index.Concurrent, s *workload.Stream, ops, batchSize int, loopBatch bool, sampleEvery int, hist *histogram.Histogram, dl time.Time) int {
	bt := index.BatchOf(ix)
	if loopBatch {
		bt = index.LoopBatcher(ix)
	}
	getKeys := make([]uint64, 0, batchSize)
	vals := make([]uint64, batchSize)
	found := make([]bool, batchSize)
	pairs := make([]index.KV, 0, batchSize)
	flushes := 0
	flush := func() {
		if len(getKeys) == 0 && len(pairs) == 0 {
			return
		}
		flushes++
		sampled := flushes%sampleEvery == 0
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		if len(getKeys) > 0 {
			bt.GetBatch(getKeys, vals[:len(getKeys)], found[:len(getKeys)])
			getKeys = getKeys[:0]
		}
		if len(pairs) > 0 {
			_ = bt.InsertBatch(pairs)
			pairs = pairs[:0]
		}
		if sampled {
			hist.Record(time.Since(t0))
		}
	}
	done := 0
	for i := 0; ops < 0 || i < ops; i++ {
		if !dl.IsZero() && i&63 == 0 && time.Now().After(dl) {
			break
		}
		op := s.Next()
		done++
		switch op.Kind {
		case workload.Get:
			if len(pairs) > 0 || len(getKeys) == batchSize {
				flush()
			}
			getKeys = append(getKeys, op.Key)
		case workload.Insert:
			if len(getKeys) > 0 || len(pairs) == batchSize {
				flush()
			}
			pairs = append(pairs, index.KV{Key: op.Key, Value: op.Value})
		default:
			flush()
			switch op.Kind {
			case workload.Update:
				ix.Update(op.Key, op.Value)
			case workload.Remove:
				ix.Remove(op.Key)
			case workload.Scan:
				ix.Scan(op.Key, op.N, func(uint64, uint64) bool { return true })
			}
		}
	}
	flush()
	return done
}

func closeIfCloser(ix index.Concurrent) {
	if c, ok := ix.(io.Closer); ok {
		_ = c.Close()
	}
}

// BuildOnly bulkloads a fresh index and returns it with its build time.
// The caller must Close closeable indexes; CloseIndex helps.
func BuildOnly(factory func() index.Concurrent, name dataset.Name, keys int, initRatio float64, seed uint64) (index.Concurrent, time.Duration) {
	all := dataset.Generate(name, keys, seed)
	loaded := all
	if initRatio > 0 && initRatio < 1 {
		loaded, _ = workload.SplitLoad(all, initRatio, seed)
	}
	ix := factory()
	t0 := time.Now()
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		panic(fmt.Sprintf("bench: bulkload %s: %v", ix.Name(), err))
	}
	return ix, time.Since(t0)
}

// CloseIndex stops any background machinery owned by ix.
func CloseIndex(ix index.Concurrent) { closeIfCloser(ix) }
