package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/core"
	"altindex/internal/dataset"
	"altindex/internal/workload"
	"altindex/internal/xrand"
)

// scanLengths is the scan-path experiment's range-length axis: from the
// paper's short scans (Fig 8(c) uses 100) down to point-adjacent and up to
// analytics-sized ranges where the block kernel's per-block validation and
// the bulk merge dominate.
var scanLengths = []int{10, 100, 1000, 10000}

// ScanPath measures the vectorized range-scan engine against the per-slot
// baseline it replaced. Both rows drive the same public Scan API over the
// same index build — ALT-scan-perslot is the pre-kernel path preserved
// verbatim behind Options.DisableScanKernel, so the speedup column is the
// kernel's contribution alone, not a harness difference.
//
// Grid: engine x {libio, osm} x scan length {10,100,1k,10k} x {idle,
// writer}. The writer mode runs one background updater hammering random
// loaded keys, so scans keep colliding with locked slots and the kernel's
// per-slot fallback is exercised, not just its clean fast path. Every cell
// is the median of three runs; the metric is emitted keys per second
// (Mops = Mkeys/s), which is what a streaming SELECT range pays for.
//
// The index is built once per engine x dataset — bulkload half, insert the
// other half so the ART layer holds real residents and the learned/ART
// merge runs on every scan — then reused across cells: idle cells do not
// mutate it and writer cells only update values in place.
func ScanPath(p Params) {
	p = p.withDefaults()
	header(p, "Scan path: block-run kernel vs per-slot baseline, emitted keys/s")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Engine\tDataset\tLen\tMode\tScans\tMkeys/s\tKeys/scan\tWriterOps")
	engines := []struct {
		name string
		opts core.Options
	}{
		{"ALT-scan-kernel", core.Options{}},
		{"ALT-scan-perslot", core.Options{DisableScanKernel: true}},
	}
	for _, eng := range engines {
		for _, ds := range []dataset.Name{dataset.Libio, dataset.OSM} {
			alt, starts := buildScanIndex(eng.opts, ds, p.Keys, p.Seed)
			for _, length := range scanLengths {
				for _, writers := range []int{0, 1} {
					mode := "idle"
					if writers > 0 {
						mode = "writer"
					}
					const reps = 3
					runs := make([]Result, 0, reps)
					for rep := 0; rep < reps; rep++ {
						runs = append(runs, scanPathCell(alt, eng.name, ds, starts, length, writers, p, uint64(rep)))
					}
					sort.Slice(runs, func(i, j int) bool { return runs[i].Mops < runs[j].Mops })
					r := runs[reps/2]
					p.record(r)
					keysPerScan := float64(r.Ops) / float64(r.Stats["scans"])
					fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%.2f\t%.1f\t%d\n",
						r.Index, ds, length, mode,
						r.Stats["scans"], r.Mops, keysPerScan, r.Stats["writer_ops"])
				}
			}
			alt.Close()
		}
	}
	tw.Flush()
}

// buildScanIndex builds the shared index for one engine x dataset: half
// bulkloaded, half inserted (populating the ART layer through conflict
// eviction), retraining drained. It returns the index plus a pseudorandom
// start-key schedule drawn from the loaded half so every scan begins on a
// resident key.
func buildScanIndex(opts core.Options, ds dataset.Name, nkeys int, seed uint64) (*core.ALT, []uint64) {
	loaded, pending := workload.SplitLoad(dataset.Generate(ds, nkeys, seed), 0.5, seed)
	alt := core.New(opts)
	if err := alt.Bulkload(dataset.Pairs(loaded)); err != nil {
		panic(fmt.Sprintf("bench: scan-path bulkload: %v", err))
	}
	if err := alt.InsertBatch(dataset.Pairs(pending)); err != nil {
		panic(fmt.Sprintf("bench: scan-path insert: %v", err))
	}
	alt.Quiesce()

	starts := make([]uint64, 1<<14)
	rng := xrand.New(seed ^ 0x5CA9)
	for i := range starts {
		starts[i] = loaded[rng.Intn(len(loaded))]
	}
	return alt, starts
}

// scanPathCell times one grid cell: a fixed budget of scans (scaled so
// every length moves a comparable number of keys) against the shared
// index, with `writers` background updaters running for the cell's
// duration. Returns a Result whose Ops is the emitted-key count and whose
// Mops is Mkeys/s.
func scanPathCell(alt *core.ALT, engine string, ds dataset.Name, starts []uint64, length, writers int, p Params, rep uint64) Result {
	scans := p.Ops / length
	if scans < 100 {
		scans = 100
	}
	if scans > 100_000 {
		scans = 100_000
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerOps atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(p.Seed ^ rep<<8 ^ uint64(w)<<16 ^ 0xBEEF)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := starts[rng.Intn(len(starts))]
				alt.Update(k, dataset.ValueFor(k))
				writerOps.Add(1)
			}
		}(w)
	}
	// On small hosts a short cell can finish before the updaters are even
	// scheduled, silently degrading writer cells to idle ones. Hold the
	// timed loop until contention is real.
	for writers > 0 && writerOps.Load() < int64(writers) {
		runtime.Gosched()
	}

	emitted := 0
	si := int(rep) * 977 // offset reps into the schedule so they differ
	t0 := time.Now()
	for i := 0; i < scans; i++ {
		alt.Scan(starts[(si+i)%len(starts)], length, func(uint64, uint64) bool {
			emitted++
			return true
		})
	}
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()

	mode := "idle"
	if writers > 0 {
		mode = "writer"
	}
	return Result{
		Index:   engine,
		Dataset: ds,
		Mix:     fmt.Sprintf("scan%d-%s", length, mode),
		Threads: 1 + writers,
		Ops:     emitted,
		Elapsed: elapsed,
		Mops:    float64(emitted) / elapsed.Seconds() / 1e6,
		Mem:     alt.MemoryUsage(),
		Len:     alt.Len(),
		Stats: map[string]int64{
			"scans":      int64(scans),
			"scan_len":   int64(length),
			"writer_ops": writerOps.Load(),
		},
	}
}
