package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"altindex/internal/core"
	"altindex/internal/dataset"
	"altindex/internal/gpl"
	"altindex/internal/index"
	"altindex/internal/workload"
)

// Params scale an experiment. The defaults regenerate the paper's shape at
// laptop scale (the paper uses 200M keys and 32 physical cores).
type Params struct {
	Keys    int // dataset size (default 2,000,000)
	Threads int // worker goroutines (default min(GOMAXPROCS, 32))
	Ops     int // operations per run (default 1,000,000)
	Seed    uint64
	Out     io.Writer
	// BatchSizes is the batch-size sweep of the batched-throughput
	// experiment (default {1, 8, 64, 256}).
	BatchSizes []int
	// Record, when set, receives every per-run Result an experiment's
	// table rows are printed from (cmd/altbench -json feeds on it).
	Record func(Result)
	// Shards extends the shard-scaling experiment's shard-count sweep with
	// this value when it is not already covered (cmd/altbench -shards).
	Shards int
	// Duration, when positive, makes every table row time-bounded (see
	// Config.Duration): each run executes until the wall-clock budget
	// expires instead of a fixed op count, and reports the ops it achieved.
	// This keeps rows comparable across host speeds (cmd/altbench -duration).
	Duration time.Duration
	// NetConns and NetDepth anchor the net-path experiment's sweeps: the
	// depth sweep runs at NetConns connections (default 8, where the
	// coalescing gate engages) and the connection sweep at NetDepth
	// pipelined commands per burst (default 16).
	NetConns int
	NetDepth int
}

func (p Params) record(r Result) {
	if p.Record != nil {
		p.Record(r)
	}
}

func (p Params) withDefaults() Params {
	if p.Keys == 0 {
		p.Keys = 2_000_000
	}
	if p.Threads == 0 {
		p.Threads = defaultThreads()
	}
	if p.Ops == 0 {
		p.Ops = 1_000_000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Out == nil {
		p.Out = os.Stdout
	}
	if len(p.BatchSizes) == 0 {
		p.BatchSizes = []int{1, 8, 64, 256}
	}
	if p.NetConns == 0 {
		p.NetConns = 8
	}
	if p.NetDepth == 0 {
		p.NetDepth = 16
	}
	return p
}

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I: baseline throughput & P99.9, balanced, libio+osm", Table1},
		{"fig3a", "Fig 3(a): model counts of XIndex/FINEdex vs ALT", Fig3a},
		{"fig3b", "Fig 3(b): FINEdex/XIndex read-only throughput vs error bound", Fig3b},
		{"fig4", "Fig 4: GPL vs ShrinkingCone vs LPA segmentation", Fig4},
		{"fig6a", "Fig 6(a): ALT model count vs error bound", Fig6a},
		{"fig6b", "Fig 6(b): ALT read-only throughput vs error bound", Fig6b},
		{"fig7a", "Fig 7(a): read-only workload, all indexes", figMix(workload.ReadOnly)},
		{"fig7b", "Fig 7(b): read-heavy workload, all indexes", figMix(workload.ReadHeavy)},
		{"fig7c", "Fig 7(c): balanced workload, all indexes", figMix(workload.Balanced)},
		{"fig7d", "Fig 7(d): write-heavy workload, all indexes", figMix(workload.WriteHeavy)},
		{"fig7e", "Fig 7(e): write-only workload, all indexes", figMix(workload.WriteOnly)},
		{"fig8a", "Fig 8(a): memory overhead after inserting the remainder", Fig8a},
		{"fig8b", "Fig 8(b): hot-write throughput (retraining trigger)", Fig8b},
		{"fig8c", "Fig 8(c): short-scan throughput (100-key scans)", Fig8c},
		{"fig8d", "Fig 8(d): read throughput vs init ratio (osm)", Fig8d},
		{"fig8e", "Fig 8(e): throughput vs zipf theta (osm)", Fig8e},
		{"fig9", "Fig 9: scalability 1..T threads, balanced", Fig9},
		{"fig10a", "Fig 10(a): ART lookup length with/without fast pointers", Fig10a},
		{"fig10b", "Fig 10(b): fast pointer count with/without merge", Fig10b},
		{"fig10c", "Fig 10(c): data split between layers", Fig10c},
		{"fig10d", "Fig 10(d): bulkload time ALT vs ALEX+ vs LIPP+", Fig10d},
		{"batch", "Batched throughput: model-grouped batch path vs per-key loop, all indexes", BatchSweep},
		{"cacheline", "Cacheline: single-thread probe cost of the block layout (B=1, B=64, absent-key misses)", Cacheline},
		{"retrain-tail", "Retrain tail: hot-write writer latency, async vs inline retraining", RetrainTail},
		{"shard-scaling", "Shard scaling: CDF-partitioned front-end vs unsharded, threads x shards x datasets", ShardScaling},
		{"large-scale", "Large tier: paper-scale per-dataset runs (read/balanced/hot-write) with GC telemetry", LargeScale},
		{"ablation-retrain", "Ablation: ALT hot-write with retraining on/off", AblationRetrain},
		{"ablation-gap", "Ablation: ALT gap factor sweep, balanced", AblationGap},
		{"ablation-writeback", "Ablation: ALT write-back scheme on/off", AblationWriteback},
		{"wal-commit", "WAL group commit: commits/s vs fsyncs/s per sync policy x writers, plus replay speed", WALCommit},
		{"rebalance", "Adaptive rebalancing: moving 90/10 hotspot, split/merge controller vs static boundaries", Rebalance},
		{"net-path", "Net path: pipelined protocol loop + cross-connection coalescing vs per-command baseline over TCP", NetPath},
		{"scan-path", "Scan path: block-run kernel vs per-slot baseline, lengths 10..10k, idle and concurrent-writer", ScanPath},
	}
}

// ByID resolves an experiment id ("fig7" expands to fig7a..e via the
// caller; here ids are exact).
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- helpers --------------------------------------------------------------

func newTable(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3)
}

func header(p Params, title string) {
	fmt.Fprintf(p.Out, "\n== %s ==\n(keys=%d threads=%d ops=%d seed=%d)\n",
		title, p.Keys, p.Threads, p.Ops, p.Seed)
}

func runRow(p Params, tw *tabwriter.Writer, f NamedFactory, cfg Config) Result {
	if cfg.Duration == 0 {
		cfg.Duration = p.Duration
	}
	r := Run(f.New, cfg)
	r.Index = f.Name // variant factories share an engine Name; keep the row label
	p.record(r)
	fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\t%s\n",
		f.Name, cfg.Dataset, r.Mops, us(r.P50), us(r.P99), us(r.P999))
	return r
}

// --- Table I ----------------------------------------------------------------

// Table1 reproduces the motivation table: the five baselines under the
// read-write-balanced workload on libio and osm.
func Table1(p Params) {
	p = p.withDefaults()
	header(p, "Table I: throughput (Mops/s) and tail latency (us), balanced workload")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Index\tDataset\tMops\tP50us\tP99us\tP99.9us")
	for _, f := range Competitors() {
		for _, ds := range []dataset.Name{dataset.Libio, dataset.OSM} {
			runRow(p, tw, f, Config{Dataset: ds, Keys: p.Keys, Mix: workload.Balanced,
				Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
		}
	}
	tw.Flush()
}

// --- Fig 3 ------------------------------------------------------------------

// Fig3a prints the number of models each learned index builds per dataset.
func Fig3a(p Params) {
	p = p.withDefaults()
	header(p, "Fig 3(a): model counts after bulkloading the full dataset")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tXIndex groups\tFINEdex models\tALT models")
	for _, ds := range dataset.Names() {
		counts := map[string]int64{}
		for _, f := range []NamedFactory{XIndexWith(0), FINEdexWith(0), ALT()} {
			ix, _ := BuildOnly(f.New, ds, p.Keys, 1, p.Seed)
			if st, ok := ix.(index.Stats); ok {
				m := st.StatsMap()
				if v, ok := m["models"]; ok {
					counts[f.Name] = v
				} else {
					counts[f.Name] = m["groups"]
				}
			}
			CloseIndex(ix)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", ds,
			counts["XIndex"], counts["FINEdex"], counts["ALT-index"])
	}
	tw.Flush()
}

// Fig3b sweeps the error bound of FINEdex and XIndex under the read-only
// workload (their throughput peaks near 32-64 and collapses past it).
func Fig3b(p Params) {
	p = p.withDefaults()
	header(p, "Fig 3(b): read-only throughput vs error bound (osm)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "ErrBound\tFINEdex Mops\tXIndex Mops")
	for _, eb := range []int{8, 16, 32, 64, 128, 256, 512} {
		cfg := Config{Dataset: dataset.OSM, Keys: p.Keys, Mix: workload.ReadOnly,
			Threads: p.Threads, Ops: p.Ops, Seed: p.Seed}
		fr := Run(FINEdexWith(eb).New, cfg)
		xr := Run(XIndexWith(eb).New, cfg)
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\n", eb, fr.Mops, xr.Mops)
	}
	tw.Flush()
}

// --- Fig 4 ------------------------------------------------------------------

// Fig4 compares the three segmentation algorithms: segments produced and
// single-thread segmentation time on identical data with the same ε.
func Fig4(p Params) {
	p = p.withDefaults()
	header(p, "Fig 4: segmentation algorithms at eps = keys/1000")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tAlgo\tSegments\tTime(ms)\tMaxErr<=2eps")
	for _, ds := range dataset.Names() {
		keys := dataset.Generate(ds, p.Keys, p.Seed)
		eps := float64(p.Keys) / 1000
		for _, algo := range []struct {
			name string
			run  func([]uint64, float64) []gpl.Segment
		}{
			{"GPL", gpl.Partition},
			{"ShrinkingCone", gpl.ShrinkingCone},
			{"LPA", gpl.LPA},
		} {
			t0 := time.Now()
			segs := algo.run(keys, eps)
			dt := time.Since(t0)
			within := true
			off := 0
			for _, s := range segs {
				if gpl.MaxError(keys[off:off+s.N], s) > 2*eps {
					within = false
				}
				off += s.N
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%v\n",
				ds, algo.name, len(segs), float64(dt.Microseconds())/1e3, within)
		}
	}
	tw.Flush()
}

// --- Fig 6 ------------------------------------------------------------------

func epsSweep(keys int) []int {
	base := keys / 1000
	if base < 16 {
		base = 16
	}
	return []int{base / 16, base / 4, base, base * 4, base * 16}
}

// Fig6a prints ALT's GPL model count against the error bound, showing the
// inverse relation of Eq. (1).
func Fig6a(p Params) {
	p = p.withDefaults()
	header(p, "Fig 6(a): ALT model count vs error bound")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tErrBound\tModels\tART keys")
	for _, ds := range dataset.Names() {
		for _, eb := range epsSweep(p.Keys) {
			f := ALTWith("ALT-index", core.Options{ErrorBound: eb})
			ix, _ := BuildOnly(f.New, ds, p.Keys, 1, p.Seed)
			st := ix.(index.Stats).StatsMap()
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", ds, eb, st["models"], st["art_keys"])
		}
	}
	tw.Flush()
}

// Fig6b sweeps ALT's error bound under the read-only workload — the
// "stable area" around the recommended keys/1000 (Eq. 4).
func Fig6b(p Params) {
	p = p.withDefaults()
	header(p, "Fig 6(b): ALT read-only throughput vs error bound")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tErrBound\tMops")
	for _, ds := range dataset.Names() {
		for _, eb := range epsSweep(p.Keys) {
			f := ALTWith("ALT-index", core.Options{ErrorBound: eb})
			r := Run(f.New, Config{Dataset: ds, Keys: p.Keys, Mix: workload.ReadOnly,
				Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
			fmt.Fprintf(tw, "%s\t%d\t%.2f\n", ds, eb, r.Mops)
		}
	}
	tw.Flush()
}

// --- Fig 7 ------------------------------------------------------------------

// figMix builds the Fig 7 experiment for one workload mix: all six indexes
// across the four datasets.
func figMix(mix workload.Mix) func(Params) {
	return func(p Params) {
		p = p.withDefaults()
		header(p, fmt.Sprintf("Fig 7: %s workload, throughput and tail latency", mix.Name))
		tw := newTable(p.Out)
		fmt.Fprintln(tw, "Index\tDataset\tMops\tP50us\tP99us\tP99.9us")
		for _, f := range All() {
			for _, ds := range dataset.Names() {
				runRow(p, tw, f, Config{Dataset: ds, Keys: p.Keys, Mix: mix,
					Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
			}
		}
		tw.Flush()
	}
}

// --- Fig 8 ------------------------------------------------------------------

// Fig8a bulkloads half of each dataset, inserts the rest, and reports the
// retained memory of every index.
func Fig8a(p Params) {
	p = p.withDefaults()
	header(p, "Fig 8(a): memory overhead (MB) after inserting the remainder")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Index\tDataset\tMB\tBytes/key")
	for _, f := range All() {
		for _, ds := range dataset.Names() {
			r := Run(f.New, Config{Dataset: ds, Keys: p.Keys, Mix: workload.WriteOnly,
				Threads: p.Threads, Ops: p.Keys / 2, Seed: p.Seed})
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\n", f.Name, ds,
				float64(r.Mem)/1e6, float64(r.Mem)/float64(r.Len))
		}
	}
	tw.Flush()
}

// Fig8b runs the hot-write workload: a consecutive key range is reserved
// and inserted after init, repeatedly triggering retraining.
func Fig8b(p Params) {
	p = p.withDefaults()
	header(p, "Fig 8(b): hot-write throughput (consecutive reserved range)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Index\tDataset\tMops\tP50us\tP99us\tP99.9us")
	for _, f := range All() {
		for _, ds := range dataset.Names() {
			runRow(p, tw, f, Config{Dataset: ds, Keys: p.Keys, Mix: workload.WriteOnly,
				Hot: true, Threads: p.Threads, Ops: p.Keys / 10, Seed: p.Seed})
		}
	}
	tw.Flush()
}

// Fig8c runs the 100-key short-scan workload.
func Fig8c(p Params) {
	p = p.withDefaults()
	header(p, "Fig 8(c): scan throughput (100-key scans, Mscans/s x10^-1)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Index\tDataset\tMops\tP50us\tP99us\tP99.9us")
	scanOps := p.Ops / 20
	if scanOps < 10_000 {
		scanOps = 10_000
	}
	for _, f := range All() {
		for _, ds := range dataset.Names() {
			runRow(p, tw, f, Config{Dataset: ds, Keys: p.Keys, Mix: workload.ScanOnly,
				Threads: p.Threads, Ops: scanOps, Seed: p.Seed})
		}
	}
	tw.Flush()
}

// Fig8d sweeps the bulkload (init) ratio on osm under read-only load.
func Fig8d(p Params) {
	p = p.withDefaults()
	header(p, "Fig 8(d): read throughput vs init ratio (osm)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "InitRatio\t"+joinNames("\t"))
	for _, ratio := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		fmt.Fprintf(tw, "%.1f", ratio)
		for _, f := range All() {
			r := Run(f.New, Config{Dataset: dataset.OSM, Keys: p.Keys,
				InitRatio: ratio, Mix: workload.ReadOnly,
				Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
			fmt.Fprintf(tw, "\t%.2f", r.Mops)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig8e sweeps the zipfian theta on osm under read-only load.
func Fig8e(p Params) {
	p = p.withDefaults()
	header(p, "Fig 8(e): throughput vs zipf theta (osm, read-only)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Theta\t"+joinNames("\t"))
	for _, theta := range []float64{0.5, 0.7, 0.9, 0.99, 1.1, 1.3} {
		fmt.Fprintf(tw, "%.2f", theta)
		for _, f := range All() {
			r := Run(f.New, Config{Dataset: dataset.OSM, Keys: p.Keys,
				Mix: workload.ReadOnly, Theta: theta,
				Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
			fmt.Fprintf(tw, "\t%.2f", r.Mops)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

func joinNames(sep string) string {
	s := ""
	for i, f := range All() {
		if i > 0 {
			s += sep
		}
		s += f.Name
	}
	return s
}

// --- Fig 9 ------------------------------------------------------------------

// Fig9 sweeps the thread count under the balanced workload.
func Fig9(p Params) {
	p = p.withDefaults()
	header(p, "Fig 9: scalability under the balanced workload")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tThreads\t"+joinNames("\t"))
	threads := []int{1, 2, 4, 8, 16, 32}
	for _, ds := range dataset.Names() {
		for _, th := range threads {
			if th > p.Threads {
				break
			}
			fmt.Fprintf(tw, "%s\t%d", ds, th)
			for _, f := range All() {
				r := Run(f.New, Config{Dataset: ds, Keys: p.Keys, Mix: workload.Balanced,
					Threads: th, Ops: p.Ops, Seed: p.Seed})
				fmt.Fprintf(tw, "\t%.2f", r.Mops)
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// --- Fig 10 -----------------------------------------------------------------

// altBuild builds a concrete *core.ALT over the full dataset.
func altBuild(ds dataset.Name, keys int, seed uint64, opts core.Options) *core.ALT {
	all := dataset.Generate(ds, keys, seed)
	alt := core.New(opts)
	if err := alt.Bulkload(dataset.Pairs(all)); err != nil {
		panic(err)
	}
	return alt
}

// Fig10a measures the average ART lookup length for conflict keys, with
// and without the fast pointer buffer.
func Fig10a(p Params) {
	p = p.withDefaults()
	header(p, "Fig 10(a): average ART lookup length (nodes traversed)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tConflict keys\tWith FP\tWithout FP")
	for _, ds := range dataset.Names() {
		alt := altBuild(ds, p.Keys, p.Seed, core.Options{})
		keys := dataset.Generate(ds, p.Keys, p.Seed)
		var withFP, withoutFP, conflicts int
		for i := 0; i < len(keys); i += 7 {
			if l, in := alt.ARTLookupLength(keys[i], true); in {
				withFP += l
				l2, _ := alt.ARTLookupLength(keys[i], false)
				withoutFP += l2
				conflicts++
			}
		}
		if conflicts == 0 {
			fmt.Fprintf(tw, "%s\t0\t-\t-\n", ds)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\n", ds, conflicts,
			float64(withFP)/float64(conflicts), float64(withoutFP)/float64(conflicts))
	}
	tw.Flush()
}

// Fig10b counts fast pointers with and without the merge scheme.
func Fig10b(p Params) {
	p = p.withDefaults()
	header(p, "Fig 10(b): fast pointer count, merged vs unmerged")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tRegistered (no merge)\tStored (merged)\tSaving")
	for _, ds := range dataset.Names() {
		alt := altBuild(ds, p.Keys, p.Seed, core.Options{})
		st := alt.StatsMap()
		req, ent := st["fp_requested"], st["fp_entries"]
		saving := 0.0
		if req > 0 {
			saving = 100 * float64(req-ent) / float64(req)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\n", ds, req, ent, saving)
	}
	tw.Flush()
}

// Fig10c reports the data split between the learned layer and ART-OPT.
func Fig10c(p Params) {
	p = p.withDefaults()
	header(p, "Fig 10(c): data distribution across layers")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tLearned keys\tART keys\tLearned %")
	for _, ds := range dataset.Names() {
		alt := altBuild(ds, p.Keys, p.Seed, core.Options{})
		st := alt.StatsMap()
		l, a := st["learned_keys"], st["art_keys"]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\n", ds, l, a, 100*float64(l)/float64(l+a))
	}
	tw.Flush()
}

// Fig10d compares bulkload times.
func Fig10d(p Params) {
	p = p.withDefaults()
	header(p, "Fig 10(d): bulkload time (full dataset)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tALT(ms)\tALEX+(ms)\tLIPP+(ms)")
	facts := []NamedFactory{ALT()}
	for _, f := range Competitors() {
		if f.Name == "ALEX+" || f.Name == "LIPP+" {
			facts = append(facts, f)
		}
	}
	for _, ds := range dataset.Names() {
		fmt.Fprintf(tw, "%s", ds)
		for _, f := range facts {
			ix, dt := BuildOnly(f.New, ds, p.Keys, 1, p.Seed)
			CloseIndex(ix)
			fmt.Fprintf(tw, "\t%.1f", float64(dt.Microseconds())/1e3)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// --- batched operations ------------------------------------------------------

// BatchSweep measures what batching buys: every index driven through the
// batched API (index.BatchOf — native for ALT, the per-key loop for the
// baselines) across the batch-size sweep, on fb and osm, for a zipfian
// read-only stream and the balanced mix. The "ALT-loop" row forces ALT
// through the loop fallback, so native-vs-fallback is read directly off
// adjacent rows.
func BatchSweep(p Params) {
	p = p.withDefaults()
	header(p, "Batched throughput (Mops/s) vs batch size")
	fmt.Fprintf(p.Out, "(batch sizes %v; ALT-loop = ALT forced through the per-key fallback)\n", p.BatchSizes)
	for _, mix := range []workload.Mix{workload.ReadOnly, workload.Balanced} {
		fmt.Fprintf(p.Out, "\n-- %s --\n", mix.Name)
		tw := newTable(p.Out)
		fmt.Fprint(tw, "Index\tDataset")
		for _, bs := range p.BatchSizes {
			fmt.Fprintf(tw, "\tB=%d", bs)
		}
		fmt.Fprintln(tw)
		rows := []struct {
			f    NamedFactory
			loop bool
		}{{ALTWith("ALT-index", core.Options{}), false}, {ALTWith("ALT-loop", core.Options{}), true}}
		for _, f := range Competitors() {
			rows = append(rows, struct {
				f    NamedFactory
				loop bool
			}{f, true})
		}
		for _, row := range rows {
			for _, ds := range []dataset.Name{dataset.FB, dataset.OSM} {
				fmt.Fprintf(tw, "%s\t%s", row.f.Name, ds)
				for _, bs := range p.BatchSizes {
					r := Run(row.f.New, Config{Dataset: ds, Keys: p.Keys, Mix: mix,
						Threads: p.Threads, Ops: p.Ops, Seed: p.Seed,
						BatchSize: bs, LoopBatch: row.loop})
					fmt.Fprintf(tw, "\t%.2f", r.Mops)
				}
				fmt.Fprintln(tw)
			}
		}
		tw.Flush()
	}
}

// Cacheline is the memory-layout proof: single-thread point-probe cost
// across fit-easy (libio) and fit-hard (osm, longlat) datasets, where the
// dominant cost is cache lines touched per probe, not model arithmetic.
// Three rows per dataset:
//
//   - ALT-B1: per-key Get, zipfian read-only, one thread — the layout's
//     raw line count per probe (key+meta in one block, value line on hit).
//   - ALT-B64: GetBatch with B=64 — adds the post-router block prefetch,
//     which only pays off when there is independent work to overlap.
//   - ALT-miss: hand-rolled probes of provably-absent keys (midpoints
//     between consecutive loaded keys, full dataset loaded) in pseudorandom
//     order — the path the overflow fingerprint sidecar shortcuts: a
//     conflict slot whose ART probe would miss.
//
// Single-threaded on purpose: ns/op here is a cache-line proxy that
// multi-thread scheduling noise would bury.
func Cacheline(p Params) {
	p = p.withDefaults()
	header(p, "Cacheline: single-thread point-probe cost (ns/op is the layout proxy)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Row\tDataset\tMops\tns/op\tP50us\tP99us")
	emit := func(r Result) {
		p.record(r)
		nsop := 0.0
		if r.Ops > 0 {
			nsop = float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f\t%s\t%s\n",
			r.Index, r.Dataset, r.Mops, nsop, us(r.P50), us(r.P99))
	}
	for _, ds := range []dataset.Name{dataset.Libio, dataset.OSM, dataset.LongLat} {
		for _, row := range []struct {
			name  string
			batch int
		}{{"ALT-B1", 1}, {"ALT-B64", 64}} {
			r := Run(ALTWith(row.name, core.Options{}).New, Config{
				Dataset: ds, Keys: p.Keys, Mix: workload.ReadOnly,
				Threads: 1, Ops: p.Ops, Seed: p.Seed,
				BatchSize: row.batch, Duration: p.Duration})
			r.Index = row.name
			emit(r)
		}
		emit(cachelineMiss(p, ds))
	}
	tw.Flush()
}

// cachelineMiss times lookups of keys that are provably absent: the full
// dataset is bulkloaded, so any strict midpoint between two consecutive
// loaded keys cannot be present. Probing them in pseudorandom order makes
// every probe a cold predicted slot plus — without the sidecar — a full
// ART traversal ending in a miss.
func cachelineMiss(p Params, ds dataset.Name) Result {
	keys := dataset.Generate(ds, p.Keys, p.Seed)
	alt := core.New(core.Options{})
	if err := alt.Bulkload(dataset.Pairs(keys)); err != nil {
		panic(fmt.Sprintf("bench: cacheline bulkload: %v", err))
	}
	defer alt.Close()
	probes := make([]uint64, 0, len(keys)-1)
	for i := 0; i+1 < len(keys); i++ {
		if keys[i+1]-keys[i] > 1 {
			probes = append(probes, keys[i]+(keys[i+1]-keys[i])/2)
		}
	}
	// Fisher-Yates with a seeded xorshift so the probe order is
	// pseudorandom but reproducible.
	x := p.Seed*0x9E3779B97F4A7C15 + 1
	for i := len(probes) - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		probes[i], probes[j] = probes[j], probes[i]
	}
	var dl time.Time
	if p.Duration > 0 {
		dl = time.Now().Add(p.Duration)
	}
	done := 0
	t0 := time.Now()
	for i := 0; p.Duration > 0 || i < p.Ops; i++ {
		if !dl.IsZero() && i&63 == 0 && time.Now().After(dl) {
			break
		}
		if _, ok := alt.Get(probes[i%len(probes)]); ok {
			panic("bench: cacheline miss probe found an absent key")
		}
		done++
	}
	elapsed := time.Since(t0)
	return Result{
		Index:   "ALT-miss",
		Dataset: ds,
		Mix:     "absent",
		Threads: 1,
		Ops:     done,
		Elapsed: elapsed,
		Mops:    float64(done) / elapsed.Seconds() / 1e6,
		Mem:     alt.MemoryUsage(),
		Len:     alt.Len(),
	}
}

// RetrainTail is the tail-latency proof for the asynchronous retraining
// pipeline: the Fig 8(b) hot-write workload (a reserved consecutive range
// inserted after init, repeatedly tripping §III-F) run against three ALT
// variants — async (background worker pool, the default), sync (the
// triggering writer rebuilds inline; RetrainWorkers < 0), and retraining
// disabled (the no-rebuild lower bound). The P99/P99.9 columns are the
// claim: moving the rebuild off the writer's critical path removes the
// freeze-sized spike from the writer tail while keeping the same retrain
// count. FreezeMax is the longest single freeze window; Spins counts
// writer backoff iterations (writers parked on frozen slots).
func RetrainTail(p Params) {
	p = p.withDefaults()
	header(p, "Retrain tail: hot-write writer latency, async vs inline retraining")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\tMops\tP50us\tP99us\tP99.9us\tRetrains\tDrops\tFreezeMax(us)\tSpins")
	variants := []NamedFactory{
		ALTWith("ALT-async", core.Options{}),
		ALTWith("ALT-sync", core.Options{RetrainWorkers: -1}),
		ALTWith("ALT-noretrain", core.Options{DisableRetraining: true}),
	}
	for _, f := range variants {
		for _, ds := range []dataset.Name{dataset.Libio, dataset.OSM} {
			r := Run(f.New, Config{Dataset: ds, Keys: p.Keys, Mix: workload.WriteOnly,
				Hot: true, Threads: p.Threads, Ops: p.Keys / 10, Seed: p.Seed})
			r.Index = f.Name
			p.record(r)
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\t%s\t%d\t%d\t%.1f\t%d\n",
				f.Name, ds, r.Mops, us(r.P50), us(r.P99), us(r.P999),
				r.Stats["retrains"], r.Stats["retrain_drops"],
				float64(r.Stats["retrain_freeze_max_ns"])/1e3, r.Stats["writer_spins"])
		}
	}
	tw.Flush()
}

// --- shard scaling -----------------------------------------------------------

// shardSweepCounts is the shard-count axis of ShardScaling: 0 is the
// unsharded baseline, the rest are sharded variants, extended with
// p.Shards when the caller asks for a count the default sweep misses.
func shardSweepCounts(p Params) []int {
	counts := []int{0, 2, 4, 8}
	if p.Shards > 1 {
		seen := false
		for _, s := range counts {
			if s == p.Shards {
				seen = true
			}
		}
		if !seen {
			counts = append(counts, p.Shards)
		}
	}
	return counts
}

// shardSweepThreads is the thread axis: powers of two up to and always
// including p.Threads.
func shardSweepThreads(p Params) []int {
	var ts []int
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		if th < p.Threads {
			ts = append(ts, th)
		}
	}
	return append(ts, p.Threads)
}

// ShardScaling measures what range-partitioning buys under a read-write
// workload with hot inserts (the Fig 8(b) reserved range, which keeps the
// retraining pipeline busy): the unsharded baseline against the sharded
// front-end across shard counts, thread counts and datasets. Sharding's
// wins are structural, not just parallel — each shard retrains models a
// factor S smaller (eps is per-shard, so freezes are shorter and hit a
// fraction of the keyspace) — so the sharded rows can lead even at low
// thread counts. The final table reports per-shard-count speedup over the
// unsharded baseline at the maximum thread count, plus the skew monitor's
// imbalance ratio (100 = perfectly balanced shards).
func ShardScaling(p Params) {
	p = p.withDefaults()
	header(p, "Shard scaling: CDF-partitioned front-end vs unsharded baseline")
	counts := shardSweepCounts(p)
	threads := shardSweepThreads(p)
	datasets := []dataset.Name{dataset.Libio, dataset.OSM}

	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\tThreads\tMops\tP50us\tP99us\tP99.9us\tRetrains\tFreezeMax(us)\tSpins\tImbal")
	// best[dataset][shardCount] = Mops at the max thread count.
	best := map[dataset.Name]map[int]float64{}
	for _, ds := range datasets {
		best[ds] = map[int]float64{}
		for _, s := range counts {
			f := ALT()
			if s > 0 {
				f = ALTSharded(fmt.Sprintf("ALT-S%d", s), s, core.Options{})
			} else {
				f.Name = "ALT-S0"
			}
			for _, th := range threads {
				// Retrain scheduling makes single runs noisy (the same
				// config can retrain 5x or 150x); take the median of three
				// runs so the table reflects the configuration, not one
				// lucky rebuild schedule.
				const reps = 3
				runs := make([]Result, 0, reps)
				for rep := 0; rep < reps; rep++ {
					runs = append(runs, Run(f.New, Config{Dataset: ds, Keys: p.Keys,
						Mix: workload.Balanced, Threads: th, Ops: p.Ops,
						Seed: p.Seed + uint64(rep)}))
				}
				sort.Slice(runs, func(i, j int) bool { return runs[i].Mops < runs[j].Mops })
				r := runs[reps/2]
				r.Index = f.Name
				p.record(r)
				imbal := "-"
				if v, ok := r.Stats["shard_imbalance_x100"]; ok {
					imbal = fmt.Sprintf("%.2f", float64(v)/100)
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%s\t%s\t%s\t%d\t%.1f\t%d\t%s\n",
					f.Name, ds, th, r.Mops, us(r.P50), us(r.P99), us(r.P999),
					r.Stats["retrains"], float64(r.Stats["retrain_freeze_max_ns"])/1e3,
					r.Stats["writer_spins"], imbal)
				if th == p.Threads {
					best[ds][s] = r.Mops
				}
			}
		}
	}
	tw.Flush()

	fmt.Fprintf(p.Out, "\n-- speedup vs unsharded at %d threads --\n", p.Threads)
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Dataset\tShards\tMops\tSpeedup")
	for _, ds := range datasets {
		base := best[ds][0]
		for _, s := range counts {
			if s == 0 {
				fmt.Fprintf(tw, "%s\t%d\t%.2f\t1.00x\n", ds, 1, base)
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2fx\n", ds, s, best[ds][s], best[ds][s]/base)
		}
	}
	tw.Flush()

	// Skew monitor under adversarial traffic: the hot-write reserved range
	// lands entirely inside one shard, the worst case for a fixed-boundary
	// partition. The table shows the monitor flagging it (imbalance = the
	// hottest shard's share over the mean, 1.00 = perfectly even) — the
	// operator signal that a re-bulkload is due.
	fmt.Fprintf(p.Out, "\n-- skew monitor, hot-range writes at %d threads (osm) --\n", p.Threads)
	tw = newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tMops\tImbalance\tHotShardOps")
	for _, s := range counts {
		if s == 0 {
			continue
		}
		// The -hot suffix keeps these adversarial rows out of the uniform
		// scaling grid when results/summarize.py parses the JSON.
		f := ALTSharded(fmt.Sprintf("ALT-S%d-hot", s), s, core.Options{})
		r := Run(f.New, Config{Dataset: dataset.OSM, Keys: p.Keys, Mix: workload.Balanced,
			Hot: true, Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
		r.Index = f.Name
		p.record(r)
		var hot int64
		for i := 0; i < s; i++ {
			if v := r.Stats[fmt.Sprintf("shard_ops_%02d", i)]; v > hot {
				hot = v
			}
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%d\n",
			f.Name, r.Mops, float64(r.Stats["shard_imbalance_x100"])/100, hot)
	}
	tw.Flush()
}

// --- large tier --------------------------------------------------------------

// LargeScale is the paper-scale bench tier: SOSD-style per-dataset rows
// (one table row per dataset x access pattern) at whatever -keys the
// caller set — cmd/altbench's -tier large defaults it to 20M, and ≥50M
// is an explicit -keys opt-in. Three rows per dataset:
//
//   - ALT-read: zipfian read-only — the GC-quiet floor; pauses here are
//     pure heap-size cost (marking the resident index), so they expose
//     the pointer-scan footprint of the slot storage.
//   - ALT-balanced: the §IV balanced mix — steady allocation from both
//     layers plus occasional retraining.
//   - ALT-hotwrite: the Fig 8(b) reserved consecutive range, inserted
//     hot — retraining churns whole model tables, which is precisely the
//     allocation stream epoch-reclaimed arenas exist to recycle. This is
//     the row where pre/post GC pause-per-second is compared.
//
// Every row prints the collector columns next to the throughput ones, so
// the trade is read off one line; the JSON artifact (cmd/altbench -json)
// carries the full GCTelemetry per row.
func LargeScale(p Params) {
	p = p.withDefaults()
	header(p, "Large tier: paper-scale per-dataset runs with GC telemetry")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Row\tDataset\tMops\tP50us\tP99us\tGCs\tGCp50us\tGCp99us\tGCmaxus\tPause/s us\tHeapMB\tAllocMB/s\tScanMB")
	emit := func(name string, r Result) {
		r.Index = name
		p.record(r)
		g := r.GC
		if g == nil {
			g = &GCTelemetry{}
		}
		allocRate := 0.0
		if s := r.Elapsed.Seconds(); s > 0 {
			allocRate = float64(g.AllocBytes) / s / 1e6
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f\n",
			name, r.Dataset, r.Mops, us(r.P50), us(r.P99),
			g.Cycles, float64(g.PauseP50Ns)/1e3, float64(g.PauseP99Ns)/1e3,
			float64(g.PauseMaxNs)/1e3, g.PausePerSecNs/1e3,
			float64(g.HeapInuseBytes)/1e6, allocRate, float64(g.ScanBytes)/1e6)
	}
	for _, ds := range []dataset.Name{dataset.Libio, dataset.OSM} {
		rows := []struct {
			name string
			cfg  Config
		}{
			{"ALT-read", Config{Dataset: ds, Keys: p.Keys, Mix: workload.ReadOnly,
				Threads: p.Threads, Ops: p.Ops, Seed: p.Seed, Duration: p.Duration}},
			{"ALT-balanced", Config{Dataset: ds, Keys: p.Keys, Mix: workload.Balanced,
				Threads: p.Threads, Ops: p.Ops, Seed: p.Seed, Duration: p.Duration}},
			{"ALT-hotwrite", Config{Dataset: ds, Keys: p.Keys, Mix: workload.WriteOnly,
				Hot: true, Threads: p.Threads, Ops: p.Keys / 10, Seed: p.Seed,
				Duration: p.Duration}},
		}
		for _, row := range rows {
			emit(row.name, Run(ALT().New, row.cfg))
		}
	}
	tw.Flush()
}

// --- ablations ---------------------------------------------------------------

// AblationRetrain contrasts ALT with retraining enabled vs disabled under
// the hot-write workload (the design choice §III-F motivates).
func AblationRetrain(p Params) {
	p = p.withDefaults()
	header(p, "Ablation: dynamic retraining under hot writes")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\tMops\tP50us\tP99us\tP99.9us")
	variants := []NamedFactory{
		ALTWith("ALT-index", core.Options{}),
		ALTWith("ALT-noretrain", core.Options{DisableRetraining: true}),
	}
	for _, f := range variants {
		for _, ds := range dataset.Names() {
			runRow(p, tw, f, Config{Dataset: ds, Keys: p.Keys, Mix: workload.WriteOnly,
				Hot: true, Threads: p.Threads, Ops: p.Keys / 10, Seed: p.Seed})
		}
	}
	tw.Flush()
}

// AblationGap sweeps the learned layer's gap factor under the balanced
// workload: more gaps absorb more inserts in place but cost memory.
func AblationGap(p Params) {
	p = p.withDefaults()
	header(p, "Ablation: gap factor, balanced workload (osm)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "GapFactor\tMops\tMem MB\tLearned %")
	for _, g := range []float64{1.0, 1.25, 1.5, 2.0, 3.0} {
		f := ALTWith("ALT-index", core.Options{GapFactor: g})
		r := Run(f.New, Config{Dataset: dataset.OSM, Keys: p.Keys, Mix: workload.Balanced,
			Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
		l, a := r.Stats["learned_keys"], r.Stats["art_keys"]
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.1f\t%.1f%%\n", g, r.Mops,
			float64(r.Mem)/1e6, 100*float64(l)/float64(l+a))
	}
	tw.Flush()
}

// AblationWriteback contrasts the Algorithm-2 write-back scheme on/off
// under a read-heavy workload with removals re-exposing ART residents.
func AblationWriteback(p Params) {
	p = p.withDefaults()
	header(p, "Ablation: write-back scheme, read-heavy (osm)")
	tw := newTable(p.Out)
	fmt.Fprintln(tw, "Variant\tMops\tP99us")
	variants := []NamedFactory{
		ALTWith("ALT-index", core.Options{ErrorBound: p.Keys / 4000}),
		ALTWith("ALT-nowriteback", core.Options{ErrorBound: p.Keys / 4000, DisableWriteBack: true}),
	}
	for _, f := range variants {
		r := Run(f.New, Config{Dataset: dataset.OSM, Keys: p.Keys, Mix: workload.ReadHeavy,
			Threads: p.Threads, Ops: p.Ops, Seed: p.Seed})
		fmt.Fprintf(tw, "%s\t%.2f\t%s\n", f.Name, r.Mops, us(r.P99))
	}
	tw.Flush()
}
