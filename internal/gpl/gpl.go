// Package gpl implements the Greedy Pessimistic Linear segmentation
// algorithm from the ALT-index paper (Algorithm 1), together with the two
// competing segmentation algorithms it is evaluated against: the
// ShrinkingCone algorithm of FITing-tree and the Learning Probe Algorithm
// (LPA) of FINEdex.
//
// All three partition a strictly ascending key array into segments, each
// approximated by one linear model  predict(key) = Slope*(key-First) +
// Intercept  whose prediction error is bounded by ε positions.
package gpl

import "math"

// Segment is one linear model covering N consecutive keys starting at First.
// The model predicts the in-segment position of a key as
// Slope*(key-First) + Intercept.
type Segment struct {
	First     uint64
	N         int
	Slope     float64
	Intercept float64
}

// Predict returns the (unclamped) position predicted for key.
func (s Segment) Predict(key uint64) float64 {
	return s.Slope*float64(key-s.First) + s.Intercept
}

// Partition runs the Greedy Pessimistic Linear algorithm over keys with
// error bound eps and returns the resulting segments. Keys must be strictly
// ascending. Complexity is O(n): each key is visited once.
//
// Per Algorithm 1, every candidate line passes through the segment's first
// point. upperSlope/lowerSlope track the extreme slopes seen so far; a new
// point whose pessimistic error (evaluated against both extreme lines)
// exceeds eps closes the segment. The emitted model uses the midpoint slope,
// which keeps every in-segment point within ~eps of the line.
func Partition(keys []uint64, eps float64) []Segment {
	if eps <= 0 {
		eps = 1
	}
	var segs []Segment
	for start := 0; start < len(keys); {
		n := segmentEnd(keys[start:], eps)
		segs = append(segs, fitThroughFirst(keys[start:start+n]))
		start += n
	}
	return segs
}

// segmentEnd implements the inner loop of Algorithm 1: it returns the number
// of leading keys that form one GPL segment under error bound eps.
func segmentEnd(keys []uint64, eps float64) int {
	if len(keys) <= 2 {
		return len(keys)
	}
	first := keys[0]
	upper := math.Inf(-1)
	lower := math.Inf(1)
	for i := 1; i < len(keys); i++ {
		d := float64(keys[i] - first)
		s := float64(i) / d
		if s > upper {
			upper = s
		}
		if s < lower {
			lower = s
		}
		// Pessimistic error of the current point against both extreme
		// lines through the first point.
		upperErr := upper*d - float64(i)
		lowerErr := float64(i) - lower*d
		if math.Max(upperErr, lowerErr) > eps {
			return i
		}
	}
	return len(keys)
}

// fitThroughFirst builds the segment model for keys: a line through the
// first point with the midpoint of the extreme slopes.
func fitThroughFirst(keys []uint64) Segment {
	seg := Segment{First: keys[0], N: len(keys)}
	if len(keys) < 2 {
		seg.Slope = 1
		return seg
	}
	upper := math.Inf(-1)
	lower := math.Inf(1)
	for i := 1; i < len(keys); i++ {
		s := float64(i) / float64(keys[i]-keys[0])
		if s > upper {
			upper = s
		}
		if s < lower {
			lower = s
		}
	}
	seg.Slope = (upper + lower) / 2
	return seg
}

// MaxError returns the maximum absolute prediction error, in positions, of
// seg over its keys. Used by tests and by the fig4 algorithm-comparison
// experiment.
func MaxError(keys []uint64, seg Segment) float64 {
	maxErr := 0.0
	for i := 0; i < seg.N; i++ {
		e := math.Abs(seg.Predict(keys[i]) - float64(i))
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// ShrinkingCone runs the FITing-tree segmentation algorithm: the feasible
// slope cone through the first point is narrowed by every accepted point
// (each point constrains the cone to lines passing within eps of it), and
// the segment closes when a point falls outside the cone. Compared with GPL
// this updates both cone bounds on nearly every point (the overhead the
// paper's Fig 4(b) discussion calls out).
func ShrinkingCone(keys []uint64, eps float64) []Segment {
	if eps <= 0 {
		eps = 1
	}
	var segs []Segment
	for start := 0; start < len(keys); {
		n, slope := coneEnd(keys[start:], eps)
		seg := Segment{First: keys[start], N: n, Slope: slope}
		segs = append(segs, seg)
		start += n
	}
	return segs
}

// coneEnd returns the segment length and the midpoint of the final cone —
// any slope inside the cone keeps every accepted point within eps, by the
// cone's construction.
func coneEnd(keys []uint64, eps float64) (int, float64) {
	if len(keys) == 1 {
		return 1, 1
	}
	first := keys[0]
	hi := math.Inf(1)
	lo := math.Inf(-1)
	n := len(keys)
	for i := 1; i < len(keys); i++ {
		d := float64(keys[i] - first)
		s := float64(i) / d
		if s > hi || s < lo {
			n = i
			break
		}
		if h := (float64(i) + eps) / d; h < hi {
			hi = h
		}
		if l := (float64(i) - eps) / d; l > lo {
			lo = l
		}
	}
	slope := (hi + lo) / 2
	if math.IsInf(hi, 0) || math.IsInf(lo, 0) {
		slope = 1 / float64(keys[1]-first)
	}
	return n, slope
}

// LPA runs FINEdex's Learning Probe Algorithm: least-squares models are
// grown by probing forward in blocks and verified against the error bound,
// backtracking when verification fails. It produces tighter (regression)
// fits than GPL but visits data repeatedly, so it emits more segments per
// second of training time on hard distributions.
func LPA(keys []uint64, eps float64) []Segment {
	if eps <= 0 {
		eps = 1
	}
	const probe = 256
	var segs []Segment
	for start := 0; start < len(keys); {
		n := probe
		if rem := len(keys) - start; n > rem {
			n = rem
		}
		seg := FitLeastSquares(keys[start : start+n])
		// Grow while the fit holds, doubling the probe step.
		step := probe
		for MaxError(keys[start:start+n], seg) <= eps && start+n < len(keys) {
			grown := n + step
			if rem := len(keys) - start; grown > rem {
				grown = rem
			}
			cand := FitLeastSquares(keys[start : start+grown])
			if MaxError(keys[start:start+grown], cand) > eps {
				break
			}
			n, seg = grown, cand
			step *= 2
		}
		// Shrink until the fit holds.
		for n > 1 && MaxError(keys[start:start+n], seg) > eps {
			n = n / 2
			if n < 1 {
				n = 1
			}
			seg = FitLeastSquares(keys[start : start+n])
		}
		segs = append(segs, seg)
		start += n
	}
	return segs
}

// FitLeastSquares fits position = Slope*(key-First) + Intercept by ordinary
// least squares over keys. Exposed for baselines (XIndex group models) that
// retrain a single model over a merged array.
func FitLeastSquares(keys []uint64) Segment {
	seg := Segment{First: keys[0], N: len(keys)}
	n := len(keys)
	if n < 2 {
		seg.Slope = 1
		return seg
	}
	var sx, sy, sxx, sxy float64
	for i, k := range keys {
		x := float64(k - keys[0])
		y := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		seg.Slope = 1
		return seg
	}
	seg.Slope = (fn*sxy - sx*sy) / den
	seg.Intercept = (sy - seg.Slope*sx) / fn
	return seg
}
