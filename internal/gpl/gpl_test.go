package gpl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"altindex/internal/dataset"
)

// checkCoverage asserts segments tile the key array exactly.
func checkCoverage(t *testing.T, keys []uint64, segs []Segment) {
	t.Helper()
	off := 0
	for i, s := range segs {
		if s.N <= 0 {
			t.Fatalf("segment %d empty", i)
		}
		if s.First != keys[off] {
			t.Fatalf("segment %d First=%d, want %d", i, s.First, keys[off])
		}
		off += s.N
	}
	if off != len(keys) {
		t.Fatalf("segments cover %d keys, want %d", off, len(keys))
	}
}

func TestPartitionCoversAllDatasets(t *testing.T) {
	for _, name := range dataset.AllNames() {
		keys := dataset.Generate(name, 20000, 1)
		for _, eps := range []float64{16, 64, 256} {
			segs := Partition(keys, eps)
			checkCoverage(t, keys, segs)
		}
	}
}

func TestPartitionErrorBounded(t *testing.T) {
	// The pessimistic scheme with the midpoint slope keeps every point
	// within 2ε of its model (the cone width is checked per point but
	// earlier points can drift by at most another ε).
	for _, name := range dataset.Names() {
		keys := dataset.Generate(name, 20000, 2)
		eps := 64.0
		off := 0
		for _, seg := range Partition(keys, eps) {
			if e := MaxError(keys[off:off+seg.N], seg); e > 2*eps {
				t.Fatalf("%s: segment error %.1f > 2ε=%.1f (N=%d)", name, e, 2*eps, seg.N)
			}
			off += seg.N
		}
	}
}

func TestBiggerEpsilonFewerSegments(t *testing.T) {
	// Equation (1): N_models is inversely proportional to ε.
	keys := dataset.Generate(dataset.OSM, 50000, 3)
	prev := len(Partition(keys, 8))
	for _, eps := range []float64{16, 32, 64, 128, 256} {
		n := len(Partition(keys, eps))
		if n > prev {
			t.Fatalf("segments grew with ε: %d -> %d at ε=%v", prev, n, eps)
		}
		prev = n
	}
}

func TestLinearDataOneSegment(t *testing.T) {
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(i)*10 + 5
	}
	segs := Partition(keys, 8)
	if len(segs) != 1 {
		t.Fatalf("perfectly linear data produced %d segments", len(segs))
	}
	if e := MaxError(keys, segs[0]); e > 1 {
		t.Fatalf("linear fit error %v", e)
	}
}

func TestTinySegments(t *testing.T) {
	for n := 1; n <= 4; n++ {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i+1) * 1000
		}
		for _, algo := range []func([]uint64, float64) []Segment{Partition, ShrinkingCone, LPA} {
			segs := algo(keys, 16)
			total := 0
			for _, s := range segs {
				total += s.N
			}
			if total != n {
				t.Fatalf("n=%d: algorithm covered %d keys", n, total)
			}
		}
	}
}

func TestShrinkingConeCoversAndBounds(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 20000, 4)
	eps := 64.0
	segs := ShrinkingCone(keys, eps)
	checkCoverage(t, keys, segs)
	off := 0
	for _, seg := range segs {
		if e := MaxError(keys[off:off+seg.N], seg); e > 2*eps {
			t.Fatalf("cone segment error %.1f", e)
		}
		off += seg.N
	}
}

func TestLPACoversAndBounds(t *testing.T) {
	keys := dataset.Generate(dataset.LongLat, 20000, 5)
	eps := 64.0
	segs := LPA(keys, eps)
	checkCoverage(t, keys, segs)
	off := 0
	for _, seg := range segs {
		// LPA verifies against ε directly.
		if e := MaxError(keys[off:off+seg.N], seg); e > eps+1e-6 {
			t.Fatalf("LPA segment error %.1f > ε", e)
		}
		off += seg.N
	}
}

func TestQuickPartitionProperties(t *testing.T) {
	f := func(seed int64, rawEps uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(2000)
		keys := make([]uint64, n)
		cur := uint64(r.Int63n(1 << 40))
		for i := range keys {
			cur += 1 + uint64(r.Int63n(1<<uint(r.Intn(20))))
			keys[i] = cur
		}
		eps := float64(rawEps%512) + 1
		segs := Partition(keys, eps)
		off := 0
		for _, s := range segs {
			if s.N <= 0 || s.First != keys[off] {
				return false
			}
			if MaxError(keys[off:off+s.N], s) > 2*eps {
				return false
			}
			off += s.N
		}
		return off == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictMonotone(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 5000, 6)
	for _, seg := range Partition(keys, 64) {
		if seg.Slope < 0 {
			t.Fatalf("negative slope %v", seg.Slope)
		}
	}
}
