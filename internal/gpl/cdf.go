package gpl

// Sampled-CDF machinery. GPL segmentation (Algorithm 1) is itself a
// piecewise fit of the key distribution's CDF; the helpers here expose the
// same view of the data — position-as-a-function-of-key — for callers that
// partition the keyspace rather than model it, e.g. the learned sharding
// layer (internal/shard), which places shard boundaries at equal-depth
// quantiles of the bulkload sample.

// SampleKeys strides an ascending key array down to at most max keys,
// always retaining the first and last key so the sample spans the full
// range. It returns the input unchanged when it already fits. The result
// aliases nothing: a fresh slice is returned whenever sampling happens.
func SampleKeys(keys []uint64, max int) []uint64 {
	if max < 2 {
		max = 2
	}
	n := len(keys)
	if n <= max {
		return keys
	}
	out := make([]uint64, 0, max)
	// Fixed-point stride over n-1 intervals mapped onto max-1 sample gaps.
	for i := 0; i < max-1; i++ {
		out = append(out, keys[i*(n-1)/(max-1)])
	}
	out = append(out, keys[n-1])
	return out
}

// EqualDepthBounds returns parts-1 boundary keys splitting the ascending
// key array into parts partitions of (approximately) equal key count —
// equal-depth quantiles of the empirical CDF. Partition i owns keys k with
// bounds[i-1] <= k < bounds[i] (partition 0 additionally owns everything
// below bounds[0]).
//
// The boundaries are non-decreasing. They are NOT guaranteed distinct when
// len(keys) < parts: duplicate boundaries delimit permanently empty
// partitions, which routers handle naturally (an upper-bound search routes
// every key past the duplicates). With no keys at all the bounds fall back
// to equal-width splits of the full uint64 domain, so an empty index still
// spreads future inserts.
func EqualDepthBounds(keys []uint64, parts int) []uint64 {
	if parts <= 1 {
		return nil
	}
	bounds := make([]uint64, parts-1)
	n := len(keys)
	if n == 0 {
		return EqualWidthBounds(parts)
	}
	for i := 1; i < parts; i++ {
		bounds[i-1] = keys[i*n/parts]
	}
	return bounds
}

// EqualWidthBounds returns parts-1 boundaries splitting the full uint64
// domain into parts equal-width ranges — the distribution-free fallback
// used before any data is seen.
func EqualWidthBounds(parts int) []uint64 {
	if parts <= 1 {
		return nil
	}
	step := ^uint64(0)/uint64(parts) + 1
	bounds := make([]uint64, parts-1)
	for i := 1; i < parts; i++ {
		bounds[i-1] = step * uint64(i)
	}
	return bounds
}
