package gpl

import (
	"math/rand"
	"sort"
	"testing"
)

func ascendingKeys(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	m := map[uint64]struct{}{}
	for len(m) < n {
		m[r.Uint64()>>8] = struct{}{}
	}
	keys := make([]uint64, 0, n)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestSampleKeys(t *testing.T) {
	keys := ascendingKeys(10000, 1)
	s := SampleKeys(keys, 257)
	if len(s) != 257 {
		t.Fatalf("sample length %d, want 257", len(s))
	}
	if s[0] != keys[0] || s[len(s)-1] != keys[len(keys)-1] {
		t.Fatal("sample must retain the first and last key")
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("sample not strictly ascending at %d", i)
		}
	}
	small := []uint64{1, 2, 3}
	if got := SampleKeys(small, 10); len(got) != 3 {
		t.Fatalf("undersized input must pass through, got %d keys", len(got))
	}
}

// TestEqualDepthBounds checks the balance guarantee: partition populations
// deviate from n/parts by at most the sampling granularity.
func TestEqualDepthBounds(t *testing.T) {
	keys := ascendingKeys(100003, 2)
	for _, parts := range []int{2, 4, 7, 64} {
		bounds := EqualDepthBounds(keys, parts)
		if len(bounds) != parts-1 {
			t.Fatalf("parts=%d: %d bounds", parts, len(bounds))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("parts=%d: bounds decrease at %d", parts, i)
			}
		}
		// Count keys per partition via the same routing rule the shard
		// layer uses: partition = number of bounds <= key.
		counts := make([]int, parts)
		for _, k := range keys {
			p := sort.Search(len(bounds), func(i int) bool { return bounds[i] > k })
			counts[p]++
		}
		want := len(keys) / parts
		for p, c := range counts {
			if c < want-parts-1 || c > want+parts+1 {
				t.Fatalf("parts=%d partition %d holds %d keys, want ~%d", parts, p, c, want)
			}
		}
	}
}

func TestEqualDepthBoundsDegenerate(t *testing.T) {
	if b := EqualDepthBounds([]uint64{7, 8, 9}, 1); b != nil {
		t.Fatal("parts=1 must yield no bounds")
	}
	// Fewer keys than partitions: bounds may repeat but must not decrease.
	b := EqualDepthBounds([]uint64{5}, 4)
	if len(b) != 3 {
		t.Fatalf("want 3 bounds, got %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatal("bounds decrease")
		}
	}
	// Empty input falls back to equal-width coverage of the domain.
	ew := EqualDepthBounds(nil, 4)
	if len(ew) != 3 || ew[0] == 0 {
		t.Fatalf("empty input must produce equal-width bounds, got %v", ew)
	}
	for i := 1; i < len(ew); i++ {
		if ew[i] <= ew[i-1] {
			t.Fatal("equal-width bounds must ascend")
		}
	}
}
