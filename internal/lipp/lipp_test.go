package lipp

import (
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Concurrent { return New() })
}

func TestConflictsCreateChildren(t *testing.T) {
	ix := New()
	keys := dataset.Generate(dataset.OSM, 20000, 1)
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	st := ix.StatsMap()
	if st["nodes"] < 2 {
		t.Fatalf("osm bulkload built no child nodes: %v", st)
	}
	if st["depth"] < 2 {
		t.Fatalf("depth %d, expected conflict chains", st["depth"])
	}
}

func TestStatCountersAdvance(t *testing.T) {
	ix := New()
	_ = ix.Insert(10, 1)
	root := ix.root.Load()
	before := root.stat.Load()
	for k := uint64(20); k < 120; k++ {
		_ = ix.Insert(k, k)
	}
	if root.stat.Load() <= before {
		t.Fatal("root statistics counter did not advance on inserts")
	}
}
