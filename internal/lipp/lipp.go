// Package lipp reimplements LIPP+ — the concurrent variant of LIPP (Wu et
// al., VLDB 2021) used as a baseline in the ALT-index paper — with the
// behaviours that drive its benchmark profile:
//
//   - precise-position nodes: a key is exactly at its predicted slot or in
//     a child node hanging off that slot (no secondary search),
//   - prediction conflicts create child nodes (the 40.7%% insert overhead
//     the paper quotes),
//   - generous slot allocation (FMCD-style min-max fit with 2x slots),
//     which is why LIPP+ tops the memory chart in Fig 8a,
//   - per-node statistics counters updated on every node of every insert
//     path — the cache-invalidation scalability bottleneck the paper
//     highlights (especially the root counter).
package lipp

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"altindex/internal/index"
)

// Slot kinds.
const (
	slotEmpty uint32 = iota
	slotData
	slotChild
)

const slotExpansion = 2 // slots per key at build time

// Index is a concurrent LIPP+-style learned index.
type Index struct {
	root atomic.Pointer[node]
	size atomic.Int64
}

type node struct {
	mu  sync.Mutex
	ver atomic.Uint64 // seqlock: odd while a writer mutates

	base   uint64
	slope  float64
	nslots int

	// stat mimics LIPP+'s per-node insert statistics; every insert
	// updates it along the whole path, invalidating the cache line.
	stat atomic.Int64

	kinds  []atomic.Uint32
	keys   []atomic.Uint64
	vals   []atomic.Uint64
	childs []atomic.Pointer[node]
}

// New returns an empty index.
func New() *Index { return &Index{} }

// Name implements index.Concurrent.
func (ix *Index) Name() string { return "LIPP+" }

// Len returns the number of live keys.
func (ix *Index) Len() int { return int(ix.size.Load()) }

// newNode builds a node over sorted keys with a min-max fit (an FMCD
// simplification: spread the keys across 2x slots between min and max).
func newNode(keys, vals []uint64) *node {
	n := &node{}
	if len(keys) == 0 {
		n.nslots = 8
		n.slope = 1
	} else {
		n.nslots = len(keys) * slotExpansion
		if n.nslots < 8 {
			n.nslots = 8
		}
		n.base = keys[0]
		span := keys[len(keys)-1] - keys[0]
		if span == 0 {
			n.slope = 1
		} else {
			n.slope = float64(n.nslots-1) / float64(span)
		}
	}
	n.kinds = make([]atomic.Uint32, n.nslots)
	n.keys = make([]atomic.Uint64, n.nslots)
	n.vals = make([]atomic.Uint64, n.nslots)
	n.childs = make([]atomic.Pointer[node], n.nslots)

	// Place keys; conflicting groups become child nodes.
	i := 0
	for i < len(keys) {
		s := n.predict(keys[i])
		j := i + 1
		for j < len(keys) && n.predict(keys[j]) == s {
			j++
		}
		if j-i == 1 {
			n.keys[s].Store(keys[i])
			n.vals[s].Store(vals[i])
			n.kinds[s].Store(slotData)
		} else {
			child := newNode(keys[i:j], vals[i:j])
			n.childs[s].Store(child)
			n.kinds[s].Store(slotChild)
		}
		i = j
	}
	return n
}

func (n *node) predict(key uint64) int {
	if key <= n.base {
		return 0
	}
	s := int(n.slope * float64(key-n.base))
	if s < 0 {
		s = 0
	}
	if s >= n.nslots {
		s = n.nslots - 1
	}
	return s
}

func (n *node) readVersion() (uint64, bool) {
	v := n.ver.Load()
	return v, v&1 == 0
}
func (n *node) validate(v uint64) bool { return n.ver.Load() == v }
func (n *node) beginWrite()            { n.mu.Lock(); n.ver.Add(1) }
func (n *node) endWrite()              { n.ver.Add(1); n.mu.Unlock() }

// Bulkload replaces the index contents.
func (ix *Index) Bulkload(pairs []index.KV) error {
	keys := make([]uint64, len(pairs))
	vals := make([]uint64, len(pairs))
	for i, kv := range pairs {
		if i > 0 && kv.Key <= keys[i-1] {
			return index.ErrUnsortedBulk
		}
		keys[i] = kv.Key
		vals[i] = kv.Value
	}
	ix.root.Store(newNode(keys, vals))
	ix.size.Store(int64(len(keys)))
	return nil
}

// Get returns the value stored for key: a chain of exact predictions, no
// secondary search.
func (ix *Index) Get(key uint64) (uint64, bool) {
	cur := ix.root.Load()
	if cur == nil {
		return 0, false
	}
	for {
		v, ok := cur.readVersion()
		if !ok {
			continue
		}
		s := cur.predict(key)
		kind := cur.kinds[s].Load()
		switch kind {
		case slotEmpty:
			if cur.validate(v) {
				return 0, false
			}
		case slotData:
			k := cur.keys[s].Load()
			val := cur.vals[s].Load()
			if cur.validate(v) {
				return val, k == key
			}
		case slotChild:
			child := cur.childs[s].Load()
			if cur.validate(v) && child != nil {
				cur = child
			}
		}
	}
}

// Insert stores key/value (upsert). Every traversed node's statistics
// counter is updated — LIPP+'s concurrency bottleneck by design.
func (ix *Index) Insert(key, value uint64) error {
	for {
		cur := ix.root.Load()
		if cur == nil {
			n := newNode([]uint64{key}, []uint64{value})
			if ix.root.CompareAndSwap(nil, n) {
				ix.size.Add(1)
				return nil
			}
			continue
		}
		if ix.insertFrom(cur, key, value) {
			return nil
		}
	}
}

func (ix *Index) insertFrom(cur *node, key, value uint64) bool {
	for {
		cur.stat.Add(1) // statistics update: root line is the hot spot
		s := cur.predict(key)
		cur.beginWrite()
		switch cur.kinds[s].Load() {
		case slotEmpty:
			cur.keys[s].Store(key)
			cur.vals[s].Store(value)
			cur.kinds[s].Store(slotData)
			cur.endWrite()
			ix.size.Add(1)
			return true
		case slotData:
			k := cur.keys[s].Load()
			if k == key {
				cur.vals[s].Store(value)
				cur.endWrite()
				return true
			}
			// Prediction conflict: push both keys into a new child.
			ev := cur.vals[s].Load()
			var ck, cv []uint64
			if k < key {
				ck, cv = []uint64{k, key}, []uint64{ev, value}
			} else {
				ck, cv = []uint64{key, k}, []uint64{value, ev}
			}
			child := newNode(ck, cv)
			cur.childs[s].Store(child)
			cur.kinds[s].Store(slotChild)
			cur.endWrite()
			ix.size.Add(1)
			return true
		default: // child
			child := cur.childs[s].Load()
			cur.endWrite()
			if child == nil {
				return false
			}
			cur = child
		}
	}
}

// Update overwrites the value of an existing key.
func (ix *Index) Update(key, value uint64) bool {
	cur := ix.root.Load()
	for cur != nil {
		s := cur.predict(key)
		cur.beginWrite()
		switch cur.kinds[s].Load() {
		case slotEmpty:
			cur.endWrite()
			return false
		case slotData:
			ok := cur.keys[s].Load() == key
			if ok {
				cur.vals[s].Store(value)
			}
			cur.endWrite()
			return ok
		default:
			child := cur.childs[s].Load()
			cur.endWrite()
			cur = child
		}
	}
	return false
}

// Remove deletes key by emptying its slot (children are kept; LIPP does
// not merge subtrees on deletion).
func (ix *Index) Remove(key uint64) bool {
	cur := ix.root.Load()
	for cur != nil {
		s := cur.predict(key)
		cur.beginWrite()
		switch cur.kinds[s].Load() {
		case slotEmpty:
			cur.endWrite()
			return false
		case slotData:
			ok := cur.keys[s].Load() == key
			if ok {
				cur.kinds[s].Store(slotEmpty)
			}
			cur.endWrite()
			if ok {
				ix.size.Add(-1)
			}
			return ok
		default:
			child := cur.childs[s].Load()
			cur.endWrite()
			cur = child
		}
	}
	return false
}

// Scan visits up to max pairs with keys >= start in ascending order (slot
// order equals key order; child subtrees sit between their neighbours).
func (ix *Index) Scan(start uint64, max int, fn func(uint64, uint64) bool) int {
	if max <= 0 {
		return 0
	}
	buf := make([]index.KV, 0, 64)
	for attempt := 0; attempt < 8; attempt++ {
		buf = buf[:0]
		if ix.collect(ix.root.Load(), start, max, &buf) {
			break
		}
	}
	n := 0
	for _, kv := range buf {
		n++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	return n
}

func (ix *Index) collect(n *node, start uint64, max int, out *[]index.KV) bool {
	if n == nil || len(*out) >= max {
		return true
	}
	v, ok := n.readVersion()
	if !ok {
		return false
	}
	from := n.predict(start)
	for s := from; s < n.nslots && len(*out) < max; s++ {
		switch n.kinds[s].Load() {
		case slotData:
			k := n.keys[s].Load()
			val := n.vals[s].Load()
			if !n.validate(v) {
				return false
			}
			if k >= start {
				*out = append(*out, index.KV{Key: k, Value: val})
			}
		case slotChild:
			child := n.childs[s].Load()
			if !n.validate(v) {
				return false
			}
			if !ix.collect(child, start, max, out) {
				return false
			}
		}
	}
	return n.validate(v)
}

// MemoryUsage approximates retained heap bytes; LIPP's generous slot
// allocation makes this the largest of the compared indexes.
func (ix *Index) MemoryUsage() uintptr { return memWalk(ix.root.Load()) }

func memWalk(n *node) uintptr {
	if n == nil {
		return 0
	}
	total := unsafe.Sizeof(node{}) + uintptr(n.nslots)*(4+8+8+8)
	for s := 0; s < n.nslots; s++ {
		if n.kinds[s].Load() == slotChild {
			total += memWalk(n.childs[s].Load())
		}
	}
	return total
}

// StatsMap implements index.Stats.
func (ix *Index) StatsMap() map[string]int64 {
	nodes, depth := int64(0), int64(0)
	var walk func(*node, int64)
	walk = func(n *node, d int64) {
		if n == nil {
			return
		}
		nodes++
		if d > depth {
			depth = d
		}
		for s := 0; s < n.nslots; s++ {
			if n.kinds[s].Load() == slotChild {
				walk(n.childs[s].Load(), d+1)
			}
		}
	}
	walk(ix.root.Load(), 1)
	return map[string]int64{"nodes": nodes, "depth": depth}
}

var _ index.Concurrent = (*Index)(nil)
var _ index.Stats = (*Index)(nil)
