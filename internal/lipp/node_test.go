package lipp

import (
	"testing"
	"testing/quick"

	"altindex/internal/dataset"
)

func TestPredictMonotoneAndClamped(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 1000, 1)
	vals := make([]uint64, len(keys))
	n := newNode(keys, vals)
	prev := -1
	for i := 0; i < len(keys); i++ {
		s := n.predict(keys[i])
		if s < prev {
			t.Fatalf("predict not monotone at %d", i)
		}
		if s < 0 || s >= n.nslots {
			t.Fatalf("predict out of range: %d", s)
		}
		prev = s
	}
	if n.predict(0) != 0 {
		t.Fatal("below-range keys must clamp to 0")
	}
	if n.predict(^uint64(0)) != n.nslots-1 {
		t.Fatal("above-range keys must clamp to last slot")
	}
}

func TestBuildEveryKeyReachable(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 5000, 2)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = keys[i] + 3
	}
	root := newNode(keys, vals)
	var find func(n *node, key uint64) (uint64, bool)
	find = func(n *node, key uint64) (uint64, bool) {
		s := n.predict(key)
		switch n.kinds[s].Load() {
		case slotData:
			if n.keys[s].Load() == key {
				return n.vals[s].Load(), true
			}
			return 0, false
		case slotChild:
			return find(n.childs[s].Load(), key)
		}
		return 0, false
	}
	for _, k := range keys {
		if v, ok := find(root, k); !ok || v != k+3 {
			t.Fatalf("key %d unreachable after build", k)
		}
	}
}

func TestMinimumNodeSize(t *testing.T) {
	n := newNode([]uint64{5}, []uint64{50})
	if n.nslots < 8 {
		t.Fatalf("nslots=%d", n.nslots)
	}
	if n.predict(5) != 0 {
		t.Fatal("single-key predict")
	}
}

func TestQuickTwoKeyChildTerminates(t *testing.T) {
	// Any two distinct keys must land in distinct slots of their child
	// node (first at 0, last at nslots-1), so conflict recursion is
	// finite.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		n := newNode([]uint64{lo, hi}, []uint64{1, 2})
		return n.predict(lo) != n.predict(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
