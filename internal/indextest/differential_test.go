package indextest

import (
	"math/rand"
	"testing"

	"altindex/internal/bench"
	"altindex/internal/dataset"
)

// TestDifferentialAllIndexes drives the same operation sequence against
// all six index implementations and requires identical observable results
// — a cross-implementation oracle that catches semantic drift between the
// baselines and ALT-index.
func TestDifferentialAllIndexes(t *testing.T) {
	base := dataset.Generate(dataset.OSM, 4000, 77)
	factories := bench.All()
	indexes := make([]struct {
		name string
		ix   interface {
			Get(uint64) (uint64, bool)
			Insert(uint64, uint64) error
			Update(uint64, uint64) bool
			Remove(uint64) bool
			Scan(uint64, int, func(uint64, uint64) bool) int
			Len() int
		}
	}, len(factories))
	for i, f := range factories {
		ix := f.New()
		if err := ix.Bulkload(dataset.Pairs(base[:2000])); err != nil {
			t.Fatal(err)
		}
		defer closeIfCloser(ix)
		indexes[i].name = f.Name
		indexes[i].ix = ix
	}

	r := rand.New(rand.NewSource(99))
	for op := 0; op < 5000; op++ {
		k := base[r.Intn(len(base))]
		switch r.Intn(5) {
		case 0:
			v := r.Uint64()
			for _, e := range indexes {
				if err := e.ix.Insert(k, v); err != nil {
					t.Fatalf("%s: insert: %v", e.name, err)
				}
			}
		case 1:
			v0, ok0 := indexes[0].ix.Get(k)
			for _, e := range indexes[1:] {
				if v, ok := e.ix.Get(k); ok != ok0 || (ok && v != v0) {
					t.Fatalf("op %d: Get(%d) diverges: %s=(%d,%v) vs %s=(%d,%v)",
						op, k, indexes[0].name, v0, ok0, e.name, v, ok)
				}
			}
		case 2:
			r0 := indexes[0].ix.Remove(k)
			for _, e := range indexes[1:] {
				if got := e.ix.Remove(k); got != r0 {
					t.Fatalf("op %d: Remove(%d) diverges: %s=%v vs %s=%v",
						op, k, indexes[0].name, r0, e.name, got)
				}
			}
		case 3:
			v := r.Uint64()
			u0 := indexes[0].ix.Update(k, v)
			for _, e := range indexes[1:] {
				if got := e.ix.Update(k, v); got != u0 {
					t.Fatalf("op %d: Update(%d) diverges: %s=%v vs %s=%v",
						op, k, indexes[0].name, u0, e.name, got)
				}
			}
		case 4:
			var ref []uint64
			indexes[0].ix.Scan(k, 15, func(sk, sv uint64) bool {
				ref = append(ref, sk, sv)
				return true
			})
			for _, e := range indexes[1:] {
				var got []uint64
				e.ix.Scan(k, 15, func(sk, sv uint64) bool {
					got = append(got, sk, sv)
					return true
				})
				if len(got) != len(ref) {
					t.Fatalf("op %d: Scan(%d) length diverges: %s=%d vs %s=%d",
						op, k, indexes[0].name, len(ref)/2, e.name, len(got)/2)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("op %d: Scan(%d)[%d] diverges: %s=%d vs %s=%d",
							op, k, i, indexes[0].name, ref[i], e.name, got[i])
					}
				}
			}
		}
	}
	l0 := indexes[0].ix.Len()
	for _, e := range indexes[1:] {
		if e.ix.Len() != l0 {
			t.Fatalf("Len diverges: %s=%d vs %s=%d", indexes[0].name, l0, e.name, e.ix.Len())
		}
	}
}
