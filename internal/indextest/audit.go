package indextest

import (
	"fmt"
	"sync"
	"testing"

	"altindex/internal/index"
	"altindex/internal/xrand"
)

// Audit checks a quiescent index against the expected final key/value
// state and returns every invariant violation found (nil means the index
// is consistent). The invariants are the cross-implementation contract the
// chaos and churn suites rely on:
//
//   - no lost acked writes: every expected key is readable with its exact
//     last-written value;
//   - no ghost or duplicate keys: a full scan yields exactly the expected
//     key set, strictly ascending;
//   - consistent counts: Len equals the expected population;
//   - path agreement: the batched read path returns what per-key Get does.
//
// It is exported so engine-specific suites (core chaos, memdb chaos) and
// the shared conformance suite audit with the same rules.
func Audit(ix index.Concurrent, want map[uint64]uint64) []string {
	// Engines with asynchronous maintenance (e.g. background retraining)
	// expose Quiesce; drain it so the audit never observes a mid-rebuild
	// state as a violation.
	if q, ok := ix.(interface{ Quiesce() }); ok {
		q.Quiesce()
	}
	const maxViolations = 25
	var bad []string
	report := func(format string, args ...any) bool {
		bad = append(bad, fmt.Sprintf(format, args...))
		return len(bad) < maxViolations
	}

	for k, v := range want {
		got, ok := ix.Get(k)
		if !ok {
			if !report("lost acked write: Get(%d) absent, want %d", k, v) {
				return bad
			}
		} else if got != v {
			if !report("stale value: Get(%d) = %d, want %d", k, got, v) {
				return bad
			}
		}
	}

	seen := 0
	var prev uint64
	ix.Scan(0, len(want)+64, func(k, v uint64) bool {
		if seen > 0 && k <= prev {
			report("scan order violation: %d after %d", k, prev)
		}
		prev = k
		seen++
		wv, ok := want[k]
		if !ok {
			report("ghost key in scan: %d", k)
		} else if wv != v {
			report("scan value mismatch: key %d = %d, want %d", k, v, wv)
		}
		return len(bad) < maxViolations
	})
	if len(bad) >= maxViolations {
		return bad
	}
	if seen != len(want) {
		report("scan visited %d keys, want %d", seen, len(want))
	}
	if n := ix.Len(); n != len(want) {
		report("Len = %d, want %d", n, len(want))
	}

	bt := index.BatchOf(ix)
	keys := make([]uint64, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	bt.GetBatch(keys, vals, found)
	for i, k := range keys {
		if !found[i] || vals[i] != want[k] {
			if !report("GetBatch(%d) = (%d,%v), want %d", k, vals[i], found[i], want[k]) {
				return bad
			}
		}
	}
	return bad
}

// testChurnInvariants is the concurrency-invariant conformance test: a
// deterministically-owned mixed workload (upserts, updates, removes,
// reinserts) races against readers and scanners, then the quiesced index
// must Audit clean against the exactly-known expected state. Unlike
// testConcurrent (insert-only, per-key checks), this drives the full
// mutation mix and the full audit, so every implementation is held to the
// same no-lost-writes / no-ghosts / sorted-scan contract ALT's chaos suite
// enforces.
func testChurnInvariants(t *testing.T, factory Factory) {
	const (
		writers      = 4
		bulkKeys     = 1 << 13
		opsPerWriter = 1500
		stride       = 32
	)
	ix := factory()
	defer closeIfCloser(ix)

	pairs := make([]index.KV, 0, bulkKeys)
	for i := uint64(0); i < bulkKeys; i++ {
		pairs = append(pairs, index.KV{Key: i*stride + 3, Value: i ^ 0xF00D})
	}
	if err := ix.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}

	type finalState struct {
		val  uint64
		live bool
	}
	finals := make([]map[uint64]finalState, writers)
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := xrand.New(uint64(0xC0FFEE + w*104729))
			mine := make(map[uint64]finalState)
			finals[w] = mine
			for op := 0; op < opsPerWriter; op++ {
				// Grid index ≡ w (mod writers): single-writer ownership
				// makes the final expected state exact.
				gi := uint64(rng.Intn(bulkKeys/writers*2))*writers + uint64(w)
				k := gi*stride + 3
				v := uint64(op)<<8 | uint64(w)
				switch rng.Intn(8) {
				case 0, 1:
					ix.Remove(k)
					mine[k] = finalState{}
				case 2:
					if ix.Update(k, v) {
						mine[k] = finalState{val: v, live: true}
					}
				default:
					if err := ix.Insert(k, v); err != nil {
						t.Errorf("Insert(%d): %v", k, err)
						return
					}
					mine[k] = finalState{val: v, live: true}
				}
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			rng := xrand.New(uint64(0xBEE + r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := 0; j < 32; j++ {
					ix.Get(uint64(rng.Intn(bulkKeys*2)) * stride)
				}
				// Mid-churn scans must stay strictly ascending.
				var prev uint64
				n := 0
				start := uint64(rng.Intn(bulkKeys)) * stride
				ix.Scan(start, 128, func(k, v uint64) bool {
					if n > 0 && k <= prev {
						t.Errorf("mid-churn scan order violation: %d after %d", k, prev)
						return false
					}
					if k < start {
						t.Errorf("scan yielded %d below start %d", k, start)
						return false
					}
					prev = k
					n++
					return true
				})
			}
		}(r)
	}

	writerWg.Wait()
	close(stop)
	readerWg.Wait()

	want := make(map[uint64]uint64, 2*bulkKeys)
	for _, kv := range pairs {
		want[kv.Key] = kv.Value
	}
	for _, mine := range finals {
		for k, st := range mine {
			if st.live {
				want[k] = st.val
			} else {
				delete(want, k)
			}
		}
	}
	for _, violation := range Audit(ix, want) {
		t.Error(violation)
	}
}
