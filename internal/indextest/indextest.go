// Package indextest provides a reusable conformance suite for
// index.Concurrent implementations. Every index in this repository — ALT
// and all five baselines — must pass the same behavioural contract, which
// keeps the benchmark comparisons apples-to-apples.
package indextest

import (
	"io"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/workload"
)

// Factory builds a fresh, empty index for each subtest.
type Factory func() index.Concurrent

// closeIfCloser stops background machinery (e.g. XIndex's compactor).
func closeIfCloser(ix index.Concurrent) {
	if c, ok := ix.(io.Closer); ok {
		_ = c.Close()
	}
}

// Run executes the full conformance suite.
func Run(t *testing.T, factory Factory) {
	t.Run("BulkloadGet", func(t *testing.T) { testBulkloadGet(t, factory) })
	t.Run("UnsortedBulkRejected", func(t *testing.T) { testUnsorted(t, factory) })
	t.Run("InsertGet", func(t *testing.T) { testInsertGet(t, factory) })
	t.Run("UpsertUpdate", func(t *testing.T) { testUpsertUpdate(t, factory) })
	t.Run("Remove", func(t *testing.T) { testRemove(t, factory) })
	t.Run("ScanOrdered", func(t *testing.T) { testScan(t, factory) })
	t.Run("RandomOpsVersusMap", func(t *testing.T) { testVersusMap(t, factory) })
	t.Run("ConcurrentReadWrite", func(t *testing.T) { testConcurrent(t, factory) })
	t.Run("MemoryUsagePositive", func(t *testing.T) { testMemory(t, factory) })
	t.Run("BatchMatchesPerKey", func(t *testing.T) { testBatchMatchesPerKey(t, factory) })
	t.Run("BatchInsert", func(t *testing.T) { testBatchInsert(t, factory) })
	t.Run("BatchConcurrent", func(t *testing.T) { testBatchConcurrent(t, factory) })
	t.Run("ChurnInvariants", func(t *testing.T) { testChurnInvariants(t, factory) })
}

// batchers returns the batched views of ix under test: the preferred one
// (native when the index implements index.Batcher, e.g. ALT) and the forced
// per-key loop fallback. Both must behave identically.
func batchers(ix index.Concurrent) map[string]index.Batcher {
	return map[string]index.Batcher{
		"BatchOf":     index.BatchOf(ix),
		"LoopBatcher": index.LoopBatcher(ix),
	}
}

// testBatchMatchesPerKey checks that GetBatch over present, absent, removed
// and updated keys returns exactly what per-key Get returns, for both the
// native batch path and the loop fallback, across key orderings (sorted,
// reversed, shuffled) that exercise the hint/galloping router.
func testBatchMatchesPerKey(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.OSM, 20000, 21)
	loaded, pending := workload.SplitLoad(keys, 0.5, 22)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	for i, k := range pending {
		if i%2 == 0 {
			if err := ix.Insert(k, dataset.ValueFor(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < len(loaded); i += 7 {
		ix.Remove(loaded[i])
	}
	// Probe set: everything, plus gap keys that were never inserted.
	probe := append([]uint64(nil), keys...)
	for i := 1; i < len(keys); i += 97 {
		if gap := keys[i] - keys[i-1]; gap > 2 {
			probe = append(probe, keys[i-1]+gap/2)
		}
	}
	orders := map[string][]uint64{
		"sorted":   sortedCopy(probe),
		"reversed": reversedCopy(probe),
		"shuffled": shuffledCopy(probe, 23),
	}
	for bname, bt := range batchers(ix) {
		for oname, ks := range orders {
			for _, batchSize := range []int{1, 3, 64, 257, len(ks)} {
				vals := make([]uint64, batchSize)
				found := make([]bool, batchSize)
				for off := 0; off < len(ks); off += batchSize {
					end := off + batchSize
					if end > len(ks) {
						end = len(ks)
					}
					chunk := ks[off:end]
					bt.GetBatch(chunk, vals, found)
					for i, k := range chunk {
						wv, wok := ix.Get(k)
						if found[i] != wok || (wok && vals[i] != wv) {
							t.Fatalf("%s/%s/B=%d: GetBatch(%d)=(%d,%v) want (%d,%v)",
								bname, oname, batchSize, k, vals[i], found[i], wv, wok)
						}
					}
				}
			}
		}
	}
}

// testBatchInsert checks InsertBatch semantics: fresh inserts, upserts of
// existing keys, and reclaiming removed keys, all visible to both per-key
// Get and GetBatch afterwards.
func testBatchInsert(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.FB, 12000, 31)
	loaded, pending := workload.SplitLoad(keys, 0.5, 32)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	bt := index.BatchOf(ix)
	var batch []index.KV
	for _, k := range pending {
		batch = append(batch, index.KV{Key: k, Value: dataset.ValueFor(k)})
	}
	if err := bt.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", ix.Len(), len(keys))
	}
	// Remove every fifth loaded key, then drive one batch that both
	// reclaims the removed keys (tombstone claims) and upserts every
	// third key (in-place overwrites).
	for i := 0; i < len(loaded); i += 5 {
		ix.Remove(loaded[i])
	}
	var upserts []index.KV
	for i, k := range loaded {
		if i%5 == 0 || i%3 == 0 {
			upserts = append(upserts, index.KV{Key: k, Value: 7000 + uint64(i)})
		}
	}
	if err := bt.InsertBatch(upserts); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len=%d after upsert batch, want %d", ix.Len(), len(keys))
	}
	for i, k := range loaded {
		want := dataset.ValueFor(k)
		if i%5 == 0 || i%3 == 0 {
			want = 7000 + uint64(i)
		}
		if v, ok := ix.Get(k); !ok || v != want {
			t.Fatalf("after InsertBatch: Get(%d)=(%d,%v) want %d", k, v, ok, want)
		}
	}
}

// testBatchConcurrent races GetBatch/InsertBatch against per-key inserts,
// removes and (for ALT) the retraining this hot insert stream triggers. A
// batch must never return a stale value or a phantom hit: bulkloaded keys
// are immutable here and must always be found with their exact value;
// writer-owned keys must be either absent or carry the exact written value.
func testBatchConcurrent(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.OSM, 40000, 41)
	// Hot split reserves a consecutive range, the retraining trigger.
	stable, hot := workload.HotSplit(keys, 0.3, 42)
	if err := ix.Bulkload(dataset.Pairs(stable)); err != nil {
		t.Fatal(err)
	}
	const writers = 4
	per := len(hot) / writers
	var wwg, rwg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: half insert via InsertBatch, half per-key, with periodic
	// removes and reinserts to churn tombstones.
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			mine := hot[w*per : (w+1)*per]
			bt := index.BatchOf(ix)
			if w%2 == 0 {
				var batch []index.KV
				for _, k := range mine {
					batch = append(batch, index.KV{Key: k, Value: dataset.ValueFor(k)})
					if len(batch) == 64 {
						if err := bt.InsertBatch(batch); err != nil {
							t.Error(err)
							return
						}
						batch = batch[:0]
					}
				}
				if err := bt.InsertBatch(batch); err != nil {
					t.Error(err)
				}
			} else {
				for i, k := range mine {
					if err := ix.Insert(k, dataset.ValueFor(k)); err != nil {
						t.Error(err)
						return
					}
					if i%16 == 0 {
						ix.Remove(k)
						if err := ix.Insert(k, dataset.ValueFor(k)); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	// Readers: batched lookups over stable keys (must always hit with the
	// exact value) mixed with hot keys (must be absent or exact).
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			bt := index.BatchOf(ix)
			if r%2 == 1 {
				bt = index.LoopBatcher(ix)
			}
			rng := rand.New(rand.NewSource(int64(100 + r)))
			batch := make([]uint64, 128)
			vals := make([]uint64, 128)
			found := make([]bool, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					if i%4 == 0 {
						batch[i] = hot[rng.Intn(len(hot))]
					} else {
						batch[i] = stable[rng.Intn(len(stable))]
					}
				}
				bt.GetBatch(batch, vals, found)
				for i, k := range batch {
					if i%4 == 0 {
						if found[i] && vals[i] != dataset.ValueFor(k) {
							t.Errorf("hot key %d: stale value %d", k, vals[i])
							return
						}
					} else if !found[i] || vals[i] != dataset.ValueFor(k) {
						t.Errorf("stable key %d: (%d,%v) want (%d,true)",
							k, vals[i], found[i], dataset.ValueFor(k))
						return
					}
				}
			}
		}(r)
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}
	// Quiescent check: every hot key its writer inserted last is present.
	for _, k := range hot[:writers*per] {
		if v, ok := ix.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("hot key %d lost after join: (%d,%v)", k, v, ok)
		}
	}
}

func sortedCopy(keys []uint64) []uint64 {
	out := append([]uint64(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func reversedCopy(keys []uint64) []uint64 {
	out := sortedCopy(keys)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func shuffledCopy(keys []uint64, seed int64) []uint64 {
	out := append([]uint64(nil), keys...)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func testBulkloadGet(t *testing.T, factory Factory) {
	for _, name := range dataset.Names() {
		ix := factory()
		keys := dataset.Generate(name, 12000, 1)
		if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ix.Len() != len(keys) {
			t.Fatalf("%s: Len=%d want %d", name, ix.Len(), len(keys))
		}
		for _, k := range keys {
			if v, ok := ix.Get(k); !ok || v != dataset.ValueFor(k) {
				t.Fatalf("%s: Get(%d)=(%d,%v)", name, k, v, ok)
			}
		}
		for i := 1; i < len(keys); i += 173 {
			if gap := keys[i] - keys[i-1]; gap > 2 {
				if _, ok := ix.Get(keys[i-1] + gap/2); ok {
					t.Fatalf("%s: phantom key", name)
				}
			}
		}
		closeIfCloser(ix)
	}
}

func testUnsorted(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	if err := ix.Bulkload([]index.KV{{Key: 5}, {Key: 4}}); err != index.ErrUnsortedBulk {
		t.Fatalf("err=%v want ErrUnsortedBulk", err)
	}
}

func testInsertGet(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.OSM, 16000, 2)
	loaded, pending := workload.SplitLoad(keys, 0.5, 3)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	for _, k := range pending {
		if err := ix.Insert(k, dataset.ValueFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", ix.Len(), len(keys))
	}
	for _, k := range keys {
		if v, ok := ix.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("Get(%d)=(%d,%v)", k, v, ok)
		}
	}
}

func testUpsertUpdate(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.Libio, 4000, 4)
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 5 {
		_ = ix.Insert(keys[i], 1000+uint64(i))
	}
	if ix.Len() != len(keys) {
		t.Fatalf("upsert changed Len to %d", ix.Len())
	}
	for i := 0; i < len(keys); i += 5 {
		if v, _ := ix.Get(keys[i]); v != 1000+uint64(i) {
			t.Fatalf("upsert lost at %d", i)
		}
	}
	if !ix.Update(keys[1], 7) {
		t.Fatal("Update(present) = false")
	}
	if v, _ := ix.Get(keys[1]); v != 7 {
		t.Fatal("Update value lost")
	}
	if ix.Update(keys[len(keys)-1]+999999, 1) {
		t.Fatal("Update(absent) = true")
	}
}

func testRemove(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.FB, 8000, 5)
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 3 {
		if !ix.Remove(keys[i]) {
			t.Fatalf("Remove(%d)=false", keys[i])
		}
	}
	if ix.Remove(keys[0]) {
		t.Fatal("double remove")
	}
	for i, k := range keys {
		_, ok := ix.Get(k)
		if (i%3 == 0) == ok {
			t.Fatalf("key %d removed=%v visible=%v", k, i%3 == 0, ok)
		}
	}
	// Reinsert removed keys.
	for i := 0; i < len(keys); i += 3 {
		if err := ix.Insert(keys[i], 42); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len=%d after reinsert, want %d", ix.Len(), len(keys))
	}
	for i := 0; i < len(keys); i += 3 {
		if v, ok := ix.Get(keys[i]); !ok || v != 42 {
			t.Fatalf("reinserted key %d = (%d,%v)", keys[i], v, ok)
		}
	}
}

func testScan(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.LongLat, 10000, 6)
	loaded, pending := workload.SplitLoad(keys, 0.7, 7)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	for _, k := range pending {
		_ = ix.Insert(k, dataset.ValueFor(k))
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for trial := 0; trial < 40; trial++ {
		start := sorted[(trial*251)%len(sorted)]
		limit := 1 + (trial*7)%120
		first := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= start })
		want := len(sorted) - first
		if want > limit {
			want = limit
		}
		var got []uint64
		n := ix.Scan(start, limit, func(k, v uint64) bool {
			got = append(got, k)
			if v != dataset.ValueFor(k) {
				t.Fatalf("scan value mismatch at %d", k)
			}
			return true
		})
		if n != want {
			t.Fatalf("Scan(%d,%d)=%d want %d", start, limit, n, want)
		}
		for i := range got {
			if got[i] != sorted[first+i] {
				t.Fatalf("scan item %d = %d want %d", i, got[i], sorted[first+i])
			}
		}
	}
}

func testVersusMap(t *testing.T, factory Factory) {
	base := dataset.Generate(dataset.OSM, 3000, 8)
	for _, seed := range []int64{1, 7, 42} {
		ix := factory()
		if err := ix.Bulkload(dataset.Pairs(base[:1500])); err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]uint64{}
		for _, k := range base[:1500] {
			ref[k] = dataset.ValueFor(k)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 4000; i++ {
			k := base[r.Intn(len(base))]
			switch r.Intn(4) {
			case 0:
				v := r.Uint64()
				_ = ix.Insert(k, v)
				ref[k] = v
			case 1:
				got, ok := ix.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("seed %d op %d: Get(%d)=(%d,%v) want (%d,%v)",
						seed, i, k, got, ok, want, wok)
				}
			case 2:
				_, wok := ref[k]
				if ix.Remove(k) != wok {
					t.Fatalf("seed %d op %d: Remove(%d) want %v", seed, i, k, wok)
				}
				delete(ref, k)
			case 3:
				v := r.Uint64()
				_, wok := ref[k]
				if ix.Update(k, v) != wok {
					t.Fatalf("seed %d op %d: Update(%d) want %v", seed, i, k, wok)
				}
				if wok {
					ref[k] = v
				}
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("seed %d: Len=%d ref=%d", seed, ix.Len(), len(ref))
		}
		for k, want := range ref {
			if got, ok := ix.Get(k); !ok || got != want {
				t.Fatalf("seed %d final: Get(%d)=(%d,%v) want %d", seed, k, got, ok, want)
			}
		}
		closeIfCloser(ix)
	}
}

func testConcurrent(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.OSM, 30000, 9)
	loaded, pending := workload.SplitLoad(keys, 0.5, 10)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	per := len(pending) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for _, k := range pending[w*per : (w+1)*per] {
				if err := ix.Insert(k, dataset.ValueFor(k)); err != nil {
					t.Error(err)
					return
				}
				g := loaded[r.Intn(len(loaded))]
				if v, ok := ix.Get(g); !ok || v != dataset.ValueFor(g) {
					t.Errorf("concurrent Get(%d)=(%d,%v)", g, v, ok)
					return
				}
				if r.Intn(8) == 0 {
					ix.Scan(g, 10, func(a, b uint64) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 0; w < workers; w++ {
		for _, k := range pending[w*per : (w+1)*per] {
			if v, ok := ix.Get(k); !ok || v != dataset.ValueFor(k) {
				t.Fatalf("inserted key %d lost (%d,%v)", k, v, ok)
			}
		}
	}
	for _, k := range loaded {
		if v, ok := ix.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("loaded key %d lost (%d,%v)", k, v, ok)
		}
	}
}

func testMemory(t *testing.T, factory Factory) {
	ix := factory()
	defer closeIfCloser(ix)
	keys := dataset.Generate(dataset.Libio, 5000, 11)
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	if m := ix.MemoryUsage(); m < uintptr(len(keys))*8 {
		t.Fatalf("MemoryUsage=%d implausibly small", m)
	}
}
