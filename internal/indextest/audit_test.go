package indextest

import (
	"strings"
	"testing"

	"altindex/internal/art"
	"altindex/internal/index"
)

// TestAuditSelfTest proves the audit can actually fail: each class of
// tampered expectation must be reported. An audit that passes everything
// would make the churn and chaos suites vacuous.
func TestAuditSelfTest(t *testing.T) {
	build := func() (index.Concurrent, map[uint64]uint64) {
		ix := art.New(nil)
		want := make(map[uint64]uint64)
		for k := uint64(10); k <= 100; k += 10 {
			if err := ix.Insert(k, k*3); err != nil {
				t.Fatal(err)
			}
			want[k] = k * 3
		}
		return ix, want
	}

	if ix, want := build(); len(Audit(ix, want)) != 0 {
		t.Fatalf("clean index reported violations: %v", Audit(ix, want))
	}

	for _, tc := range []struct {
		name    string
		tamper  func(ix index.Concurrent, want map[uint64]uint64)
		needles []string
	}{
		{
			name:    "lost write",
			tamper:  func(ix index.Concurrent, want map[uint64]uint64) { want[999] = 1 },
			needles: []string{"lost acked write"},
		},
		{
			name:    "stale value",
			tamper:  func(ix index.Concurrent, want map[uint64]uint64) { want[50] = 7 },
			needles: []string{"stale value"},
		},
		{
			name:    "ghost key",
			tamper:  func(ix index.Concurrent, want map[uint64]uint64) { delete(want, 50) },
			needles: []string{"ghost key"},
		},
	} {
		ix, want := build()
		tc.tamper(ix, want)
		bad := Audit(ix, want)
		if len(bad) == 0 {
			t.Errorf("%s: tampered expectation not detected", tc.name)
			continue
		}
		for _, needle := range tc.needles {
			hit := false
			for _, v := range bad {
				if strings.Contains(v, needle) {
					hit = true
					break
				}
			}
			if !hit {
				t.Errorf("%s: no violation mentions %q: %v", tc.name, needle, bad)
			}
		}
	}
}
