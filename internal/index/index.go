// Package index defines the key/value types and the concurrent ordered-index
// interface shared by ALT-index and every baseline competitor in this
// repository (ALEX+, LIPP+, FINEdex, XIndex, ART).
//
// All indexes map fixed-width 8-byte integer keys to 8-byte values, matching
// the record format of the paper's SOSD-derived evaluation. Implementations
// must be safe for concurrent use by multiple goroutines.
package index

import "errors"

// Key is an 8-byte record key. Radix-based structures operate on the
// big-endian byte representation so byte order equals numeric order.
type Key = uint64

// Value is an 8-byte record payload.
type Value = uint64

// KV is a key/value pair, used for bulk loading and range scans.
type KV struct {
	Key   Key
	Value Value
}

// Errors returned by index operations.
var (
	// ErrKeyNotFound reports a lookup, update or removal of an absent key.
	ErrKeyNotFound = errors.New("index: key not found")
	// ErrKeyExists reports an insert of a key that is already present.
	ErrKeyExists = errors.New("index: key already exists")
	// ErrUnsortedBulk reports a bulk load whose input is not strictly
	// ascending by key.
	ErrUnsortedBulk = errors.New("index: bulk-load input must be sorted and deduplicated")
)

// Concurrent is the ordered-index contract implemented by every index in
// this repository. All methods are safe for concurrent use.
type Concurrent interface {
	// Name identifies the implementation in benchmark output.
	Name() string

	// Bulkload replaces the index contents with the given pairs, which
	// must be strictly ascending by key. It is called once, before any
	// concurrent access.
	Bulkload(pairs []KV) error

	// Get returns the value stored for key.
	Get(key Key) (Value, bool)

	// Insert stores key/value. Inserting an existing key overwrites its
	// value (upsert), mirroring the paper's workload semantics where
	// insert streams are pre-deduplicated.
	Insert(key Key, value Value) error

	// Update overwrites the value of an existing key and reports whether
	// the key was present.
	Update(key Key, value Value) bool

	// Remove deletes key and reports whether it was present.
	Remove(key Key) bool

	// Scan visits up to n pairs with keys >= start in ascending key
	// order, returning the number visited. The callback must not retain
	// references into the index.
	Scan(start Key, n int, fn func(Key, Value) bool) int

	// MemoryUsage returns the approximate heap bytes retained by the
	// index structure (excluding transient allocation).
	MemoryUsage() uintptr

	// Len returns the number of live keys. It may be approximate while
	// writers are active but is exact in quiescent states.
	Len() int
}

// RangeAppender is optionally implemented by indexes with a bounded,
// allocation-free range primitive. ScanAppend appends up to max pairs with
// keys in [start, end) to dst in ascending key order and returns the
// extended slice. end == ^Key(0) means "no upper bound" and then includes
// key MaxUint64 itself (the one key a half-open bound cannot express an
// exclusion for); any other end <= start yields an empty window. Callers
// that reuse dst across calls pay zero allocations.
type RangeAppender interface {
	ScanAppend(dst []KV, start, end Key, max int) []KV
}

// AppendRange collects up to max pairs with keys in [start, end) from ix
// into dst, using the native ScanAppend when ix implements RangeAppender
// and degrading to a bounded Scan otherwise. In the fallback, reaching a
// key >= end ends the window, so a short result always means the window
// (or keyspace) is exhausted — the resume-loop contract batch consumers
// rely on.
func AppendRange(ix Concurrent, dst []KV, start, end Key, max int) []KV {
	if ra, ok := ix.(RangeAppender); ok {
		return ra.ScanAppend(dst, start, end, max)
	}
	if max <= 0 || (end != ^Key(0) && end <= start) {
		return dst
	}
	ix.Scan(start, max, func(k Key, v Value) bool {
		if end != ^Key(0) && k >= end {
			return false
		}
		dst = append(dst, KV{Key: k, Value: v})
		return true
	})
	return dst
}

// Stats is optionally implemented by indexes that expose internal counters
// used by the paper's "inside analysis" experiments (Fig 10).
type Stats interface {
	// StatsMap returns implementation-specific counters, e.g. model
	// counts, layer sizes, fast-pointer counts.
	StatsMap() map[string]int64
}
