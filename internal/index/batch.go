package index

// Batcher is the optional batched-operation interface. Real memory-DB
// traffic arrives in streams where consecutive keys repeatedly hit the same
// few models, so an index that implements Batcher natively can amortize
// per-operation routing (table loads, model binary searches, tree descents)
// across a whole batch. Indexes without a native batch path still
// participate in comparisons through the generic loop fallback (BatchOf /
// LoopBatcher).
type Batcher interface {
	// GetBatch looks up keys[i] for every i, writing the result into
	// vals[i] and found[i]. vals and found must be at least len(keys)
	// long. Each individual lookup is linearizable exactly as a per-key
	// Get would be; the batch as a whole is not atomic with respect to
	// concurrent writers.
	GetBatch(keys []Key, vals []Value, found []bool)

	// InsertBatch upserts every pair, with per-pair semantics identical
	// to Insert. It stops at, and returns, the first error it encounters.
	// Implementations may apply the pairs in an order other than the
	// caller's (e.g. grouped by key), with two guarantees: duplicate keys
	// within the batch apply in their original relative order
	// (last-writer-wins is preserved), and a nil return means every pair
	// was applied. On error the batch may be partially applied, and which
	// pairs made it in — and which error is returned first — can depend
	// on the processing order, not the submission order.
	InsertBatch(pairs []KV) error
}

// loopBatcher adapts any Concurrent to Batcher with per-key loops. It is
// the comparison baseline for native batch paths: same semantics, no
// amortization.
type loopBatcher struct{ Concurrent }

func (b loopBatcher) GetBatch(keys []Key, vals []Value, found []bool) {
	for i, k := range keys {
		vals[i], found[i] = b.Get(k)
	}
}

func (b loopBatcher) InsertBatch(pairs []KV) error {
	for _, kv := range pairs {
		if err := b.Insert(kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// BatchOf returns ix's native Batcher when it implements one, and the
// generic per-key loop fallback otherwise. Every index in this repository
// can therefore be driven through the batched API.
func BatchOf(ix Concurrent) Batcher {
	if b, ok := ix.(Batcher); ok {
		return b
	}
	return loopBatcher{ix}
}

// LoopBatcher always returns the per-key loop fallback, even when ix has a
// native batch path. Benchmarks use it to measure what batching actually
// buys over the equivalent sequence of single-key calls.
func LoopBatcher(ix Concurrent) Batcher {
	return loopBatcher{ix}
}
