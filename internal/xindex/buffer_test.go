package xindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBufferUpsertLookup(t *testing.T) {
	b := newBuffer(16)
	if _, _, hit := b.lookup(5); hit {
		t.Fatal("hit in empty buffer")
	}
	if isNew, full := b.upsertLocked(5, 50, 0); !isNew || full {
		t.Fatal("first upsert")
	}
	if v, live, hit := b.lookup(5); !hit || !live || v != 50 {
		t.Fatalf("lookup after insert: %d %v %v", v, live, hit)
	}
	// Overwrite.
	if isNew, _ := b.upsertLocked(5, 51, 0); isNew {
		t.Fatal("overwrite reported new")
	}
	if v, _, _ := b.lookup(5); v != 51 {
		t.Fatal("overwrite lost")
	}
	// Tombstone.
	b.upsertLocked(5, 0, 1)
	if _, live, hit := b.lookup(5); !hit || live {
		t.Fatal("tombstone not visible")
	}
	// Revive.
	b.upsertLocked(5, 52, 0)
	if v, live, _ := b.lookup(5); !live || v != 52 {
		t.Fatal("revive failed")
	}
}

func TestBufferStaysSorted(t *testing.T) {
	b := newBuffer(64)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		b.upsertLocked(uint64(r.Intn(1000)), uint64(i), 0)
	}
	n := int(b.n.Load())
	for i := 1; i < n; i++ {
		if b.keys[i].Load() <= b.keys[i-1].Load() {
			t.Fatalf("buffer unsorted at %d", i)
		}
	}
}

func TestBufferFullAndGrow(t *testing.T) {
	b := newBuffer(16)
	for i := 0; i < 16; i++ {
		if _, full := b.upsertLocked(uint64(i*2), 1, 0); full {
			t.Fatalf("full too early at %d", i)
		}
	}
	if _, full := b.upsertLocked(999, 1, 0); !full {
		t.Fatal("expected full")
	}
	// Upsert of an existing key still works when full.
	if _, full := b.upsertLocked(4, 9, 0); full {
		t.Fatal("in-place upsert blocked by full buffer")
	}
	big := b.grow()
	if len(big.keys) != 32 || int(big.n.Load()) != 16 {
		t.Fatalf("grow: cap=%d n=%d", len(big.keys), big.n.Load())
	}
	for i := 0; i < 16; i++ {
		if _, _, hit := big.lookup(uint64(i * 2)); !hit {
			t.Fatalf("grow lost key %d", i*2)
		}
	}
	if _, full := big.upsertLocked(999, 1, 0); full {
		t.Fatal("grown buffer full")
	}
}

func TestGDataLocate(t *testing.T) {
	keys := make([]uint64, 1000)
	vals := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)*uint64(i) + 7 // quadratic: nonzero model error
		vals[i] = keys[i] + 1
	}
	g := newGData(keys, vals)
	if g.errB <= 0 {
		t.Fatal("no error bound")
	}
	for i, k := range keys {
		pos, ok := g.locate(k)
		if !ok || pos != i {
			t.Fatalf("locate(%d) = %d,%v want %d", k, pos, ok, i)
		}
	}
	if _, ok := g.locate(9); ok { // 9 is between 1²+7 and 2²+7
		t.Fatal("phantom key")
	}
	// Dead bits.
	g.setDead(10)
	if !g.isDead(10) || g.isDead(11) {
		t.Fatal("dead bitmap wrong")
	}
}

func TestCompactMergesAndDropsTombstones(t *testing.T) {
	g := &group{}
	keys := []uint64{10, 20, 30, 40}
	vals := []uint64{1, 2, 3, 4}
	g.data.Store(newGData(keys, vals))
	g.buf.Store(newBuffer(16))
	b := g.buf.Load()
	b.upsertLocked(15, 99, 0) // new key
	b.upsertLocked(20, 22, 0) // overwrite
	b.upsertLocked(30, 0, 1)  // tombstone
	g.compact()
	d := g.data.Load()
	want := map[uint64]uint64{10: 1, 15: 99, 20: 22, 40: 4}
	if len(d.keys) != len(want) {
		t.Fatalf("compacted to %d keys: %v", len(d.keys), d.keys)
	}
	if !sort.SliceIsSorted(d.keys, func(i, j int) bool { return d.keys[i] < d.keys[j] }) {
		t.Fatal("compacted array unsorted")
	}
	for i, k := range d.keys {
		if d.vals[i].Load() != want[k] {
			t.Fatalf("compacted value for %d = %d, want %d", k, d.vals[i].Load(), want[k])
		}
	}
	if got := int(g.buf.Load().n.Load()); got != 0 {
		t.Fatalf("buffer not reset: %d", got)
	}
}

func TestQuickBufferVersusMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := newBuffer(256)
		ref := map[uint64]int64{} // -1 tombstone, else value
		for i := 0; i < 200; i++ {
			k := uint64(r.Intn(100))
			if r.Intn(4) == 0 {
				b.upsertLocked(k, 0, 1)
				ref[k] = -1
			} else {
				v := uint64(r.Intn(1000)) + 1
				b.upsertLocked(k, v, 0)
				ref[k] = int64(v)
			}
		}
		for k, rv := range ref {
			v, live, hit := b.lookup(k)
			if !hit {
				return false
			}
			if rv == -1 {
				if live {
					return false
				}
			} else if !live || int64(v) != rv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
