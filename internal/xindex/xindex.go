// Package xindex reimplements XIndex (Tang et al., PPoPP 2020) — a baseline
// in the ALT-index paper — with the behaviours that drive its benchmark
// profile:
//
//   - a two-level structure: a flat group directory over group nodes, each
//     holding an immutable trained data array searched by a linear model
//     plus bounded binary search (the prediction-error cost of Fig 3b),
//   - a per-group delta buffer that absorbs all runtime writes; lookups
//     consult the buffer first, so growing buffers degrade reads,
//   - *background* compaction goroutines that merge buffers into retrained
//     arrays (the reason XIndex stays stable under the paper's hot-write
//     workload, Fig 8b).
//
// Close must be called to stop the background compactor; the benchmark
// harness does so automatically.
package xindex

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"altindex/internal/gpl"
	"altindex/internal/index"
)

const (
	defaultErrBound = 32   // the error bound XIndex's paper recommends
	compactTrigger  = 256  // buffer entries that schedule a merge
	helperTrigger   = 4096 // buffer entries at which writers merge inline
	compactEvery    = 2 * time.Millisecond
)

// Index is a concurrent XIndex-style learned index.
type Index struct {
	tab  atomic.Pointer[xtable]
	size atomic.Int64

	// ErrBound is the group-model error bound used when segmenting the
	// bulk data (its dynamic-RMI equivalent); set before Bulkload.
	// Defaults to 32.
	ErrBound int

	bg      sync.WaitGroup
	stop    chan struct{}
	started atomic.Bool
}

type xtable struct {
	firsts []uint64
	groups []*group
}

func (tb *xtable) find(key uint64) *group {
	lo, hi := 0, len(tb.firsts)
	for lo < hi {
		mid := (lo + hi) / 2
		if tb.firsts[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 {
		i = 0
	}
	return tb.groups[i]
}

// group is one XIndex group: trained array + delta buffer.
type group struct {
	mu   sync.Mutex // guards buffer writes and compaction
	data atomic.Pointer[gdata]
	buf  atomic.Pointer[buffer]
}

// gdata is an immutable trained array with its model and error bound.
type gdata struct {
	seg  gpl.Segment
	errB int
	keys []uint64
	vals []atomic.Uint64
	dead []atomic.Uint64
}

func newGData(keys, vals []uint64) *gdata {
	g := &gdata{}
	if len(keys) == 0 {
		g.seg = gpl.Segment{Slope: 1}
		g.errB = 1
		return g
	}
	g.seg = gpl.FitLeastSquares(keys)
	g.errB = int(gpl.MaxError(keys, g.seg)) + 1
	g.keys = append([]uint64(nil), keys...)
	g.vals = make([]atomic.Uint64, len(keys))
	for i, v := range vals {
		g.vals[i].Store(v)
	}
	g.dead = make([]atomic.Uint64, (len(keys)+63)/64)
	return g
}

// locate returns the position of key, or ok=false, via the model prediction
// plus binary search within the error bound.
func (g *gdata) locate(key uint64) (int, bool) {
	n := len(g.keys)
	if n == 0 {
		return 0, false
	}
	pred := int(g.seg.Predict(key))
	lo := pred - g.errB
	hi := pred + g.errB + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= n {
		lo = n - 1
	}
	// Runtime keys were not part of the fit: widen if the window misses.
	if lo > 0 && g.keys[lo] > key {
		lo = 0
	}
	if hi < n && g.keys[hi-1] < key {
		hi = n
	}
	i := lo + sort.Search(hi-lo, func(j int) bool { return g.keys[lo+j] >= key })
	return i, i < n && g.keys[i] == key
}

func (g *gdata) isDead(i int) bool {
	return len(g.dead) > 0 && g.dead[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

func (g *gdata) setDead(i int) {
	for {
		old := g.dead[i>>6].Load()
		if g.dead[i>>6].CompareAndSwap(old, old|1<<(uint(i)&63)) {
			return
		}
	}
}

// buffer is the group's delta buffer: a sorted array with a seqlock so
// readers stay lock-free. Entries may be tombstones (del=1), which shadow
// the trained array.
type buffer struct {
	ver  atomic.Uint64
	n    atomic.Int32
	keys []atomic.Uint64
	vals []atomic.Uint64
	del  []atomic.Uint32
}

func newBuffer(capacity int) *buffer {
	if capacity < 16 {
		capacity = 16
	}
	return &buffer{
		keys: make([]atomic.Uint64, capacity),
		vals: make([]atomic.Uint64, capacity),
		del:  make([]atomic.Uint32, capacity),
	}
}

// lookup finds key in the buffer. hit=false means the buffer has no entry;
// otherwise live reports whether the entry is a value (true) or tombstone.
func (b *buffer) lookup(key uint64) (val uint64, live, hit bool) {
	for {
		v := b.ver.Load()
		if v&1 != 0 {
			continue
		}
		n := int(b.n.Load())
		if n > len(b.keys) {
			n = len(b.keys)
		}
		lo := sort.Search(n, func(i int) bool { return b.keys[i].Load() >= key })
		val, live, hit = 0, false, false
		if lo < n && b.keys[lo].Load() == key {
			hit = true
			live = b.del[lo].Load() == 0
			val = b.vals[lo].Load()
		}
		if b.ver.Load() == v {
			return val, live, hit
		}
	}
}

// upsertLocked inserts or overwrites key (del=1 for a tombstone) and
// reports whether the entry is new. Caller holds the group lock. Returns
// grown=true when the buffer was full and the caller must retry on the
// returned replacement.
func (b *buffer) upsertLocked(key, val uint64, del uint32) (isNew, full bool) {
	n := int(b.n.Load())
	pos := sort.Search(n, func(i int) bool { return b.keys[i].Load() >= key })
	if pos < n && b.keys[pos].Load() == key {
		b.ver.Add(1)
		b.vals[pos].Store(val)
		b.del[pos].Store(del)
		b.ver.Add(1)
		return false, false
	}
	if n == len(b.keys) {
		return false, true
	}
	b.ver.Add(1)
	for i := n; i > pos; i-- {
		b.keys[i].Store(b.keys[i-1].Load())
		b.vals[i].Store(b.vals[i-1].Load())
		b.del[i].Store(b.del[i-1].Load())
	}
	b.keys[pos].Store(key)
	b.vals[pos].Store(val)
	b.del[pos].Store(del)
	b.n.Store(int32(n + 1))
	b.ver.Add(1)
	return true, false
}

// grow returns a double-capacity copy. Caller holds the group lock.
func (b *buffer) grow() *buffer {
	n := int(b.n.Load())
	big := newBuffer(len(b.keys) * 2)
	for i := 0; i < n; i++ {
		big.keys[i].Store(b.keys[i].Load())
		big.vals[i].Store(b.vals[i].Load())
		big.del[i].Store(b.del[i].Load())
	}
	big.n.Store(int32(n))
	return big
}

var _ index.Concurrent = (*Index)(nil)
var _ index.Stats = (*Index)(nil)

// New returns an empty index. The background compactor starts on the first
// Bulkload.
func New() *Index {
	return &Index{stop: make(chan struct{})}
}

// Name implements index.Concurrent.
func (ix *Index) Name() string { return "XIndex" }

// Len returns the number of live keys.
func (ix *Index) Len() int { return int(ix.size.Load()) }

// Close stops the background compaction goroutine. Safe to call more than
// once.
func (ix *Index) Close() error {
	if ix.started.CompareAndSwap(true, false) {
		close(ix.stop)
		ix.bg.Wait()
	}
	return nil
}

// Bulkload replaces the index contents and starts the background
// compactor.
func (ix *Index) Bulkload(pairs []index.KV) error {
	keys := make([]uint64, len(pairs))
	vals := make([]uint64, len(pairs))
	for i, kv := range pairs {
		if i > 0 && kv.Key <= keys[i-1] {
			return index.ErrUnsortedBulk
		}
		keys[i] = kv.Key
		vals[i] = kv.Value
	}
	eb := ix.ErrBound
	if eb <= 0 {
		eb = defaultErrBound
	}
	var firsts []uint64
	var groups []*group
	if len(keys) == 0 {
		g := &group{}
		g.data.Store(newGData(nil, nil))
		g.buf.Store(newBuffer(compactTrigger))
		firsts = []uint64{0}
		groups = []*group{g}
	} else {
		// Dynamic-RMI-style segmentation: greedy single-pass groups
		// bounded by the error bound (ShrinkingCone), refit per group.
		segs := gpl.ShrinkingCone(keys, float64(eb))
		off := 0
		for _, seg := range segs {
			end := off + seg.N
			g := &group{}
			g.data.Store(newGData(keys[off:end], vals[off:end]))
			g.buf.Store(newBuffer(compactTrigger))
			first := keys[off]
			if off == 0 {
				first = 0
			}
			firsts = append(firsts, first)
			groups = append(groups, g)
			off = end
		}
	}
	ix.tab.Store(&xtable{firsts: firsts, groups: groups})
	ix.size.Store(int64(len(keys)))
	if ix.started.CompareAndSwap(false, true) {
		ix.bg.Add(1)
		go ix.compactor()
	}
	return nil
}

// compactor is the background retraining thread: it periodically merges
// every group whose buffer crossed the trigger.
func (ix *Index) compactor() {
	defer ix.bg.Done()
	ticker := time.NewTicker(compactEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ix.stop:
			return
		case <-ticker.C:
			tb := ix.tab.Load()
			if tb == nil {
				continue
			}
			for _, g := range tb.groups {
				if b := g.buf.Load(); b != nil && int(b.n.Load()) >= compactTrigger {
					g.compact()
				}
			}
		}
	}
}

// compact merges the group's buffer into a retrained array.
func (g *group) compact() {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.buf.Load()
	n := int(b.n.Load())
	if n == 0 {
		return
	}
	data := g.data.Load()
	keys := make([]uint64, 0, len(data.keys)+n)
	vals := make([]uint64, 0, len(data.keys)+n)
	i, j := 0, 0
	for i < len(data.keys) || j < n {
		switch {
		case j >= n || (i < len(data.keys) && data.keys[i] < b.keys[j].Load()):
			if !data.isDead(i) {
				keys = append(keys, data.keys[i])
				vals = append(vals, data.vals[i].Load())
			}
			i++
		case i >= len(data.keys) || data.keys[i] > b.keys[j].Load():
			if b.del[j].Load() == 0 {
				keys = append(keys, b.keys[j].Load())
				vals = append(vals, b.vals[j].Load())
			}
			j++
		default: // same key: the buffer entry is newer
			if b.del[j].Load() == 0 {
				keys = append(keys, b.keys[j].Load())
				vals = append(vals, b.vals[j].Load())
			}
			i++
			j++
		}
	}
	// Publish the merged array first, then the fresh buffer: during the
	// window the buffer shadows identical (or deleted) entries, which is
	// consistent either way a reader resolves it.
	g.data.Store(newGData(keys, vals))
	g.buf.Store(newBuffer(compactTrigger))
}

// MemoryUsage approximates retained heap bytes including delta buffers.
func (ix *Index) MemoryUsage() uintptr {
	tb := ix.tab.Load()
	if tb == nil {
		return 0
	}
	total := uintptr(len(tb.firsts)) * 16
	for _, g := range tb.groups {
		d := g.data.Load()
		total += unsafe.Sizeof(gdata{}) + uintptr(len(d.keys))*16 + uintptr(len(d.dead))*8
		if b := g.buf.Load(); b != nil {
			total += unsafe.Sizeof(buffer{}) + uintptr(len(b.keys))*(8+8+4)
		}
	}
	return total
}

// StatsMap implements index.Stats.
func (ix *Index) StatsMap() map[string]int64 {
	tb := ix.tab.Load()
	if tb == nil {
		return map[string]int64{}
	}
	bufKeys := int64(0)
	for _, g := range tb.groups {
		if b := g.buf.Load(); b != nil {
			bufKeys += int64(b.n.Load())
		}
	}
	return map[string]int64{
		"groups":   int64(len(tb.groups)),
		"buf_keys": bufKeys,
	}
}
