package xindex

import "altindex/internal/index"

// Get returns the value stored for key. The delta buffer is consulted
// first (it shadows the trained array), then the array via the bounded
// model search.
func (ix *Index) Get(key uint64) (uint64, bool) {
	tb := ix.tab.Load()
	if tb == nil {
		return 0, false
	}
	g := tb.find(key)
	if val, live, hit := g.buf.Load().lookup(key); hit {
		return val, live
	}
	d := g.data.Load()
	if i, ok := d.locate(key); ok && !d.isDead(i) {
		return d.vals[i].Load(), true
	}
	return 0, false
}

// exists reports whether key is live in the group (buffer shadowing the
// array). Caller should hold the group lock for an exact answer.
func (g *group) exists(key uint64) bool {
	if _, live, hit := g.buf.Load().lookup(key); hit {
		return live
	}
	d := g.data.Load()
	i, ok := d.locate(key)
	return ok && !d.isDead(i)
}

// Insert stores key/value (upsert); every write lands in the group's delta
// buffer. Writers merge inline only when the buffer has grown far past the
// background trigger (the compactor is behind).
func (ix *Index) Insert(key, value uint64) error {
	tb := ix.tab.Load()
	if tb == nil {
		if err := ix.Bulkload(nil); err != nil {
			return err
		}
		tb = ix.tab.Load()
	}
	g := tb.find(key)
	g.mu.Lock()
	existed := g.exists(key)
	for {
		b := g.buf.Load()
		_, full := b.upsertLocked(key, value, 0)
		if !full {
			break
		}
		g.buf.Store(b.grow())
	}
	bufN := int(g.buf.Load().n.Load())
	g.mu.Unlock()
	if !existed {
		ix.size.Add(1)
	}
	if bufN >= helperTrigger {
		g.compact() // the background thread fell behind; help out
	}
	return nil
}

// Update overwrites the value of an existing key.
func (ix *Index) Update(key, value uint64) bool {
	tb := ix.tab.Load()
	if tb == nil {
		return false
	}
	g := tb.find(key)
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.exists(key) {
		return false
	}
	for {
		b := g.buf.Load()
		_, full := b.upsertLocked(key, value, 0)
		if !full {
			return true
		}
		g.buf.Store(b.grow())
	}
}

// Remove deletes key by writing a tombstone into the delta buffer (keys in
// the trained array are additionally marked dead so compaction can skip
// them even if the tombstone merges first).
func (ix *Index) Remove(key uint64) bool {
	tb := ix.tab.Load()
	if tb == nil {
		return false
	}
	g := tb.find(key)
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.exists(key) {
		return false
	}
	for {
		b := g.buf.Load()
		_, full := b.upsertLocked(key, 0, 1)
		if !full {
			break
		}
		g.buf.Store(b.grow())
	}
	if d := g.data.Load(); d != nil {
		if i, ok := d.locate(key); ok {
			d.setDead(i)
		}
	}
	ix.size.Add(-1)
	return true
}

// Scan visits up to max pairs with keys >= start in ascending order,
// merging each group's trained array with its delta buffer.
func (ix *Index) Scan(start uint64, max int, fn func(uint64, uint64) bool) int {
	if max <= 0 {
		return 0
	}
	tb := ix.tab.Load()
	if tb == nil {
		return 0
	}
	gi := 0
	for gi+1 < len(tb.firsts) && tb.firsts[gi+1] <= start {
		gi++
	}
	emitted := 0
	for ; gi < len(tb.groups) && emitted < max; gi++ {
		g := tb.groups[gi]
		merged := g.snapshotRange(start, max-emitted)
		for _, kv := range merged {
			emitted++
			if !fn(kv.Key, kv.Value) {
				return emitted
			}
		}
	}
	return emitted
}

// snapshotRange merges array and buffer entries >= start, buffer shadowing
// the array, up to max results.
func (g *group) snapshotRange(start uint64, max int) []index.KV {
	d := g.data.Load()
	b := g.buf.Load()
	// Snapshot the buffer under its seqlock.
	var bk []index.KV
	var bdel []bool
	for {
		bk = bk[:0]
		bdel = bdel[:0]
		v := b.ver.Load()
		if v&1 != 0 {
			continue
		}
		n := int(b.n.Load())
		if n > len(b.keys) {
			n = len(b.keys)
		}
		for i := 0; i < n; i++ {
			k := b.keys[i].Load()
			if k >= start {
				bk = append(bk, index.KV{Key: k, Value: b.vals[i].Load()})
				bdel = append(bdel, b.del[i].Load() != 0)
			}
		}
		if b.ver.Load() == v {
			break
		}
	}
	out := make([]index.KV, 0, minInt(max, 64))
	i := 0
	for i < len(d.keys) && d.keys[i] < start {
		i++
	}
	j := 0
	for len(out) < max && (i < len(d.keys) || j < len(bk)) {
		switch {
		case j >= len(bk) || (i < len(d.keys) && d.keys[i] < bk[j].Key):
			if !d.isDead(i) {
				out = append(out, index.KV{Key: d.keys[i], Value: d.vals[i].Load()})
			}
			i++
		case i >= len(d.keys) || d.keys[i] > bk[j].Key:
			if !bdel[j] {
				out = append(out, bk[j])
			}
			j++
		default:
			if !bdel[j] {
				out = append(out, bk[j])
			}
			i++
			j++
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
