package xindex

import (
	"testing"
	"time"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/workload"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Concurrent { return New() })
}

func TestBackgroundCompactionDrainsBuffers(t *testing.T) {
	ix := New()
	defer ix.Close()
	keys := dataset.Generate(dataset.Libio, 40000, 1)
	loaded, pending := workload.SplitLoad(keys, 0.5, 2)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	for _, k := range pending {
		_ = ix.Insert(k, dataset.ValueFor(k))
	}
	// The background thread merges buffers over the trigger; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ix.StatsMap()["buf_keys"] < int64(len(pending)) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := ix.StatsMap()["buf_keys"]; got >= int64(len(pending)) {
		t.Fatalf("background compaction never ran: %d buffered", got)
	}
	for _, k := range keys {
		if v, ok := ix.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("key %d lost after compaction (%d,%v)", k, v, ok)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	ix := New()
	_ = ix.Bulkload(dataset.KVs(dataset.Libio, 100, 1))
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}
