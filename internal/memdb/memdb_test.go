package memdb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateAndLookupTable(t *testing.T) {
	db := NewDB()
	tbl := db.CreateTable("users", 3)
	if tbl.Name() != "users" || tbl.Columns() != 3 {
		t.Fatal("table metadata")
	}
	if again := db.CreateTable("users", 5); again != tbl {
		t.Fatal("CreateTable not idempotent")
	}
	got, err := db.Table("users")
	if err != nil || got != tbl {
		t.Fatal("Table lookup")
	}
	if _, err := db.Table("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	tbl := NewDB().CreateTable("t", 2)
	if err := tbl.Insert(1, []uint64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(1, []uint64{1, 1}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup err = %v", err)
	}
	if err := tbl.Insert(2, []uint64{10}); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("width err = %v", err)
	}
	row, err := tbl.Get(1)
	if err != nil || row[0] != 10 || row[1] != 20 {
		t.Fatalf("Get: %v %v", row, err)
	}
	// Returned rows are copies.
	row[0] = 999
	if again, _ := tbl.Get(1); again[0] != 10 {
		t.Fatal("Get returned aliased storage")
	}
	if err := tbl.Update(1, []uint64{11, 21}); err != nil {
		t.Fatal(err)
	}
	if row, _ = tbl.Get(1); row[0] != 11 || row[1] != 21 {
		t.Fatal("update lost")
	}
	if err := tbl.Update(9, []uint64{0, 0}); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	if err := tbl.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(1); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("get deleted err = %v", err)
	}
	if err := tbl.Delete(1); !errors.Is(err, ErrRowNotFound) {
		t.Fatal("double delete")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestSelectRangeOrdered(t *testing.T) {
	tbl := NewDB().CreateTable("t", 1)
	for pk := uint64(100); pk > 0; pk-- {
		if err := tbl.Insert(pk*7, []uint64{pk}); err != nil {
			t.Fatal(err)
		}
	}
	var prev uint64
	n := tbl.SelectRange(0, 1000, func(pk uint64, row []uint64) bool {
		if pk <= prev {
			t.Fatalf("range out of order: %d <= %d", pk, prev)
		}
		if row[0]*7 != pk {
			t.Fatalf("row mismatch at %d", pk)
		}
		prev = pk
		return true
	})
	if n != 100 {
		t.Fatalf("visited %d", n)
	}
	if got := tbl.SelectRange(350, 3, func(uint64, []uint64) bool { return true }); got != 3 {
		t.Fatalf("limited select = %d", got)
	}
}

func TestSecondaryIndexWhere(t *testing.T) {
	tbl := NewDB().CreateTable("orders", 2) // col0 = customer, col1 = amount
	for pk := uint64(1); pk <= 300; pk++ {
		if err := tbl.Insert(pk, []uint64{pk % 10, pk * 100}); err != nil {
			t.Fatal(err)
		}
	}
	sec, err := tbl.CreateIndex("by_customer", 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Len() != 300 {
		t.Fatalf("backfill indexed %d", sec.Len())
	}
	// Every customer has exactly 30 orders.
	for cust := uint64(0); cust < 10; cust++ {
		var pks []uint64
		n := sec.SelectWhere(cust, 1000, func(pk uint64, row []uint64) bool {
			if row[0] != cust {
				t.Fatalf("wrong customer: %d", row[0])
			}
			pks = append(pks, pk)
			return true
		})
		if n != 30 || len(pks) != 30 {
			t.Fatalf("customer %d: %d rows", cust, n)
		}
	}
	// Limit respected.
	if n := sec.SelectWhere(3, 5, func(uint64, []uint64) bool { return true }); n != 5 {
		t.Fatalf("limit: %d", n)
	}
	// New inserts are indexed.
	if err := tbl.Insert(1000, []uint64{3, 42}); err != nil {
		t.Fatal(err)
	}
	count := 0
	sec.SelectWhere(3, 1000, func(uint64, []uint64) bool { count++; return true })
	if count != 31 {
		t.Fatalf("after insert: %d", count)
	}
	// Updates move the entry between column values.
	if err := tbl.Update(1000, []uint64{4, 42}); err != nil {
		t.Fatal(err)
	}
	c3, c4 := 0, 0
	sec.SelectWhere(3, 1000, func(uint64, []uint64) bool { c3++; return true })
	sec.SelectWhere(4, 1000, func(uint64, []uint64) bool { c4++; return true })
	if c3 != 30 || c4 != 31 {
		t.Fatalf("after update: c3=%d c4=%d", c3, c4)
	}
	// Deletes unindex.
	if err := tbl.Delete(1000); err != nil {
		t.Fatal(err)
	}
	c4 = 0
	sec.SelectWhere(4, 1000, func(uint64, []uint64) bool { c4++; return true })
	if c4 != 30 {
		t.Fatalf("after delete: c4=%d", c4)
	}
	if _, err := tbl.Index("nope"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatal("missing index lookup")
	}
}

func TestSecondaryOrdered(t *testing.T) {
	tbl := NewDB().CreateTable("t", 1)
	vals := []uint64{50, 10, 40, 20, 30}
	for i, v := range vals {
		if err := tbl.Insert(uint64(i+1), []uint64{v}); err != nil {
			t.Fatal(err)
		}
	}
	sec, err := tbl.CreateIndex("by_val", 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	sec.SelectOrdered(15, 3, func(pk uint64, row []uint64) bool {
		got = append(got, row[0])
		return true
	})
	want := []uint64{20, 30, 40}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("ordered select = %v, want %v", got, want)
	}
}

func TestSecondaryColumnTooWide(t *testing.T) {
	tbl := NewDB().CreateTable("t", 1)
	if _, err := tbl.CreateIndex("i", 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(1, []uint64{1 << 20}); !errors.Is(err, ErrColumnTooWide) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tbl.CreateIndex("bad", 0, 60); err == nil {
		t.Fatal("colBits 60 accepted")
	}
	if _, err := tbl.CreateIndex("bad2", 5, 32); !errors.Is(err, ErrBadColumn) {
		t.Fatal("bad column accepted")
	}
}

func TestConcurrentTableOps(t *testing.T) {
	tbl := NewDB().CreateTable("t", 2)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				pk := uint64(w*perWorker + i + 1)
				if err := tbl.Insert(pk, []uint64{pk * 2, pk * 3}); err != nil {
					t.Error(err)
					return
				}
				probe := uint64(r.Intn(w*perWorker+i+1) + 1)
				if row, err := tbl.Get(probe); err == nil {
					if row[0] != probe*2 || row[1] != probe*3 {
						t.Errorf("corrupt row %d: %v", probe, row)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != workers*perWorker {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for pk := uint64(1); pk <= workers*perWorker; pk++ {
		row, err := tbl.Get(pk)
		if err != nil || row[0] != pk*2 {
			t.Fatalf("row %d lost: %v %v", pk, row, err)
		}
	}
	st := tbl.Stats()
	if st["rows"] != workers*perWorker {
		t.Fatalf("stats rows = %d", st["rows"])
	}
	if tbl.MemoryUsage() == 0 {
		t.Fatal("no memory reported")
	}
}

func TestArenaRecycling(t *testing.T) {
	a := newArena(2)
	h1 := a.alloc([]uint64{1, 2})
	h2 := a.alloc([]uint64{3, 4})
	if r := a.read(h1); r[0] != 1 || r[1] != 2 {
		t.Fatal("read h1")
	}
	a.release(h1)
	h3 := a.alloc([]uint64{5, 6})
	if h3 != h1 {
		t.Fatalf("free list not reused: %d vs %d", h3, h1)
	}
	if r := a.read(h3); r[0] != 5 {
		t.Fatal("recycled slot content")
	}
	if r := a.read(h2); r[0] != 3 {
		t.Fatal("neighbour disturbed")
	}
	// Force multiple chunks.
	for i := 0; i < arenaChunkRows*2; i++ {
		a.alloc([]uint64{uint64(i), 0})
	}
	if a.chunks() < 2 {
		t.Fatalf("chunks = %d", a.chunks())
	}
}

func TestQuickTableVersusMap(t *testing.T) {
	f := func(seed int64) bool {
		tbl := NewDB().CreateTable("t", 1)
		ref := map[uint64]uint64{}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			pk := uint64(r.Intn(100)) + 1
			switch r.Intn(4) {
			case 0:
				v := r.Uint64()
				err := tbl.Insert(pk, []uint64{v})
				_, existed := ref[pk]
				if (err == nil) == existed {
					return false
				}
				if err == nil {
					ref[pk] = v
				}
			case 1:
				row, err := tbl.Get(pk)
				want, ok := ref[pk]
				if (err == nil) != ok {
					return false
				}
				if err == nil && row[0] != want {
					return false
				}
			case 2:
				v := r.Uint64()
				err := tbl.Update(pk, []uint64{v})
				_, ok := ref[pk]
				if (err == nil) != ok {
					return false
				}
				if err == nil {
					ref[pk] = v
				}
			case 3:
				err := tbl.Delete(pk)
				_, ok := ref[pk]
				if (err == nil) != ok {
					return false
				}
				delete(ref, pk)
			}
		}
		return tbl.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumReclaimsAndPreserves(t *testing.T) {
	tbl := NewDB().CreateTable("t", 2)
	for pk := uint64(1); pk <= 1000; pk++ {
		if err := tbl.Insert(pk, []uint64{pk * 2, pk * 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: updates and deletes create dead versions.
	for pk := uint64(1); pk <= 1000; pk += 2 {
		if err := tbl.Update(pk, []uint64{pk * 20, pk * 30}); err != nil {
			t.Fatal(err)
		}
	}
	for pk := uint64(2); pk <= 1000; pk += 10 {
		if err := tbl.Delete(pk); err != nil {
			t.Fatal(err)
		}
	}
	deadBefore := tbl.Stats()["dead_rows"]
	if deadBefore == 0 {
		t.Fatal("no dead rows to vacuum")
	}
	reclaimed := tbl.Vacuum()
	if int64(reclaimed) != deadBefore {
		t.Fatalf("reclaimed %d, want %d", reclaimed, deadBefore)
	}
	if tbl.Stats()["dead_rows"] != 0 {
		t.Fatal("dead counter not reset")
	}
	// All live rows intact, with updated values.
	for pk := uint64(1); pk <= 1000; pk++ {
		row, err := tbl.Get(pk)
		if pk%10 == 2 {
			if err == nil {
				t.Fatalf("deleted pk %d resurrected", pk)
			}
			continue
		}
		if err != nil {
			t.Fatalf("pk %d lost after vacuum: %v", pk, err)
		}
		wantA, wantB := pk*2, pk*3
		if pk%2 == 1 {
			wantA, wantB = pk*20, pk*30
		}
		if row[0] != wantA || row[1] != wantB {
			t.Fatalf("pk %d row %v after vacuum", pk, row)
		}
	}
	if tbl.Vacuum() != 0 {
		t.Fatal("second vacuum reclaimed something")
	}
}

// TestShardedTable runs a table whose primary index is the CDF-partitioned
// sharded front-end through the same CRUD + range + secondary-index
// workout an unsharded table gets, and checks the shard layout is actually
// in effect (Stats reports the shard count and routed ops).
func TestShardedTable(t *testing.T) {
	tbl, err := NewDB().CreateTableWith("t", 2, TableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 5000
	for pk := uint64(rows); pk > 0; pk-- {
		if err := tbl.Insert(pk*64, []uint64{pk % 10, pk * 3}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != rows {
		t.Fatalf("Len = %d", tbl.Len())
	}
	st := tbl.Stats()
	if st["primary_shards"] != 4 {
		t.Fatalf("shards stat = %d, want 4", st["primary_shards"])
	}
	if st["primary_shard_ops_total"] == 0 {
		t.Fatal("skew monitor saw no routed ops")
	}
	// Point ops behave identically to the unsharded table.
	if err := tbl.Insert(64, []uint64{0, 0}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup err = %v", err)
	}
	if err := tbl.Update(2*64, []uint64{7, 7}); err != nil {
		t.Fatal(err)
	}
	if row, err := tbl.Get(2 * 64); err != nil || row[0] != 7 || row[1] != 7 {
		t.Fatalf("Get after update: %v %v", row, err)
	}
	if err := tbl.Delete(3 * 64); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(3 * 64); !errors.Is(err, ErrRowNotFound) {
		t.Fatal("deleted row still visible")
	}
	// Range select stitches across shard boundaries in order.
	var prev uint64
	n := tbl.SelectRange(0, rows+10, func(pk uint64, row []uint64) bool {
		if pk <= prev && prev != 0 {
			t.Fatalf("range out of order: %d after %d", pk, prev)
		}
		prev = pk
		return true
	})
	if n != rows-1 {
		t.Fatalf("visited %d rows, want %d", n, rows-1)
	}
	// Secondary indexes work over a sharded primary.
	sec, err := tbl.CreateIndex("by_mod", 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Len() != rows-1 {
		t.Fatalf("backfill indexed %d", sec.Len())
	}
	got := 0
	sec.SelectWhere(7, rows, func(pk uint64, row []uint64) bool {
		if row[0] != 7 {
			t.Fatalf("wrong bucket: %d", row[0])
		}
		got++
		return true
	})
	if got == 0 {
		t.Fatal("secondary returned nothing")
	}
}
