package memdb

import (
	"testing"

	"altindex/internal/xrand"
)

func buildBenchTable(b *testing.B, rows int) *Table {
	b.Helper()
	tbl := NewDB().CreateTable("bench", 3)
	for pk := uint64(1); pk <= uint64(rows); pk++ {
		if err := tbl.Insert(pk*7, []uint64{pk % 100, pk * 10, pk}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func BenchmarkTableGet(b *testing.B) {
	tbl := buildBenchTable(b, 100_000)
	r := xrand.New(1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pk := (r.Uint64n(100_000) + 1) * 7
		if _, err := tbl.Get(pk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableInsert(b *testing.B) {
	tbl := NewDB().CreateTable("bench", 3)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pk := uint64(i + 1)
		if err := tbl.Insert(pk, []uint64{pk % 100, pk, pk}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableUpdate(b *testing.B) {
	tbl := buildBenchTable(b, 100_000)
	r := xrand.New(2)
	row := []uint64{1, 2, 3}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pk := (r.Uint64n(100_000) + 1) * 7
		if err := tbl.Update(pk, row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRange100(b *testing.B) {
	tbl := buildBenchTable(b, 100_000)
	r := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (r.Uint64n(99_000) + 1) * 7
		tbl.SelectRange(start, 100, func(uint64, []uint64) bool { return true })
	}
}

func BenchmarkSecondaryWhere(b *testing.B) {
	tbl := buildBenchTable(b, 100_000)
	sec, err := tbl.CreateIndex("by_bucket", 0, 40)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sec.SelectWhere(r.Uint64n(100), 10, func(uint64, []uint64) bool { return true })
	}
}
