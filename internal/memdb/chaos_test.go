//go:build failpoint

// Chaos suite for the database layer: mixed row workloads over ALT-backed
// primary and secondary indexes while failpoints stretch the underlying
// seqlock/retrain windows, followed by a vacuum under injection and a
// crash-injected snapshot cycle. Build with -tags failpoint.
package memdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"altindex/internal/failpoint"
	"altindex/internal/xrand"
)

const (
	chaosWriters = 4
	chaosBuckets = 97 // row[0] = pk % chaosBuckets, the secondary's column
)

// chaosRow is the row scheme: col0 is the indexed bucket, col1 a version
// counter, col2 a checksum binding pk and version. Any torn read — a row
// mixing two versions, or attributed to the wrong pk — breaks the checksum.
func chaosRow(pk, ver uint64) []uint64 {
	return []uint64{pk % chaosBuckets, ver, pk*31 ^ ver}
}

func chaosRowOK(pk uint64, row []uint64) bool {
	return len(row) == 3 && row[0] == pk%chaosBuckets && row[2] == pk*31^row[1]
}

// auditMemTable checks tbl against the expected pk -> version map: exact
// row contents, complete sorted primary scans, matching counts, and a
// secondary index whose buckets partition exactly the live rows.
func auditMemTable(tbl *Table, sec *Secondary, want map[uint64]uint64) []string {
	const maxViolations = 25
	var bad []string
	report := func(format string, args ...any) bool {
		bad = append(bad, fmt.Sprintf(format, args...))
		return len(bad) < maxViolations
	}

	for pk, ver := range want {
		row, err := tbl.Get(pk)
		if err != nil {
			if !report("lost acked row: Get(%d): %v", pk, err) {
				return bad
			}
			continue
		}
		if row[0] != pk%chaosBuckets || row[1] != ver || row[2] != pk*31^ver {
			if !report("row %d = %v, want ver %d (stale or torn)", pk, row, ver) {
				return bad
			}
		}
	}

	seen := 0
	var prev uint64
	tbl.SelectRange(0, len(want)+64, func(pk uint64, row []uint64) bool {
		if seen > 0 && pk <= prev {
			report("primary scan order violation: %d after %d", pk, prev)
		}
		prev = pk
		seen++
		if _, ok := want[pk]; !ok {
			report("ghost row in scan: pk %d", pk)
		}
		return len(bad) < maxViolations
	})
	if len(bad) >= maxViolations {
		return bad
	}
	if seen != len(want) {
		report("primary scan visited %d rows, want %d", seen, len(want))
	}
	if n := tbl.Len(); n != len(want) {
		report("Len = %d, want %d", n, len(want))
	}

	// The secondary's buckets must partition exactly the live rows.
	if sec != nil {
		total := 0
		for b := uint64(0); b < chaosBuckets; b++ {
			total += sec.SelectWhere(b, len(want)+64, func(pk uint64, row []uint64) bool {
				if pk%chaosBuckets != b {
					report("secondary bucket %d holds pk %d (bucket %d)", b, pk, pk%chaosBuckets)
				}
				if ver, ok := want[pk]; !ok {
					report("secondary bucket %d holds ghost pk %d", b, pk)
				} else if row[1] != ver {
					report("secondary read of pk %d sees ver %d, want %d", pk, row[1], ver)
				}
				return len(bad) < maxViolations
			})
			if len(bad) >= maxViolations {
				return bad
			}
		}
		if total != len(want) {
			report("secondary buckets hold %d rows total, want %d", total, len(want))
		}
	}
	return bad
}

// runMemChaos drives the writer/reader storm and returns the table, its
// secondary and the exact expected pk -> version state. Ownership mirrors
// the core chaos suite: pk ≡ w (mod chaosWriters) belongs to writer w, so
// the final state is decided by each writer's own deterministic op stream.
func runMemChaos(t *testing.T, db *DB) (*Table, *Secondary, map[uint64]uint64) {
	t.Helper()
	const (
		pkSpace      = 1 << 14
		opsPerWriter = 2500
	)
	tbl := db.CreateTable("events", 3)
	sec, err := tbl.CreateIndex("by_bucket", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Seed rows so readers have a population from the first instant.
	for pk := uint64(0); pk < pkSpace; pk += 2 {
		if err := tbl.Insert(pk, chaosRow(pk, 0)); err != nil {
			t.Fatal(err)
		}
	}

	for site, spec := range map[string]string{
		"core/insert/locked":    "1%yield",
		"core/writeback/locked": "yield",
		"core/retrain/freeze":   "delay(50us)",
		"core/retrain/publish":  "yield",
	} {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	type rowState struct {
		ver  uint64
		live bool
	}
	finals := make([]map[uint64]rowState, chaosWriters)
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < chaosWriters; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := xrand.New(uint64(0xDB + w*7919))
			mine := make(map[uint64]rowState)
			// Local view of liveness starts from the even-pk seed.
			for pk := uint64(0); pk < pkSpace; pk += 2 {
				if int(pk%chaosWriters) == w {
					mine[pk] = rowState{ver: 0, live: true}
				}
			}
			finals[w] = mine
			for op := 0; op < opsPerWriter; op++ {
				pk := uint64(rng.Intn(pkSpace/chaosWriters))*chaosWriters + uint64(w)
				st := mine[pk]
				ver := uint64(op + 1)
				switch {
				case !st.live:
					if err := tbl.Insert(pk, chaosRow(pk, ver)); err != nil {
						t.Errorf("Insert(%d): %v", pk, err)
						return
					}
					mine[pk] = rowState{ver: ver, live: true}
				case rng.Intn(4) == 0:
					if err := tbl.Delete(pk); err != nil {
						t.Errorf("Delete(%d): %v", pk, err)
						return
					}
					mine[pk] = rowState{}
				default:
					if err := tbl.Update(pk, chaosRow(pk, ver)); err != nil {
						t.Errorf("Update(%d): %v", pk, err)
						return
					}
					mine[pk] = rowState{ver: ver, live: true}
				}
			}
		}(w)
	}

	for r := 0; r < 3; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			rng := xrand.New(uint64(0xCAFE + r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Torn-row check: any readable row must be internally
				// consistent, mid-update and mid-retrain included.
				for j := 0; j < 64; j++ {
					pk := uint64(rng.Intn(pkSpace))
					if row, err := tbl.Get(pk); err == nil && !chaosRowOK(pk, row) {
						t.Errorf("torn row: pk %d = %v", pk, row)
						return
					}
				}
				var prev uint64
				n := 0
				tbl.SelectRange(uint64(rng.Intn(pkSpace)), 128, func(pk uint64, row []uint64) bool {
					if n > 0 && pk <= prev {
						t.Errorf("mid-flight scan order violation: %d after %d", pk, prev)
						return false
					}
					prev = pk
					n++
					if !chaosRowOK(pk, row) {
						t.Errorf("torn row in scan: pk %d = %v", pk, row)
						return false
					}
					return true
				})
				sec.SelectWhere(uint64(rng.Intn(chaosBuckets)), 64, func(pk uint64, row []uint64) bool {
					// Bucket membership can lag an in-flight update (the
					// repoint and the index move are only atomic together
					// under the writer's stripe); the checksum must hold
					// regardless.
					if len(row) == 3 && row[2] != pk*31^row[1] {
						t.Errorf("torn row via secondary: pk %d = %v", pk, row)
						return false
					}
					return true
				})
			}
		}(r)
	}

	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	failpoint.DisableAll()

	want := make(map[uint64]uint64)
	for _, mine := range finals {
		for pk, st := range mine {
			if st.live {
				want[pk] = st.ver
			}
		}
	}
	return tbl, sec, want
}

func TestChaosMemDB(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not -short")
	}
	db := NewDB()
	tbl, sec, want := runMemChaos(t, db)
	if failpoint.Hits("core/insert/locked") == 0 {
		t.Error("insert seqlock site never fired; workload did not stress the slot protocol")
	}
	if bad := auditMemTable(tbl, sec, want); len(bad) > 0 {
		for _, b := range bad {
			t.Error(b)
		}
	}

	// Vacuum under injection must not disturb any live row.
	if err := failpoint.Enable("memdb/vacuum/batch", "yield"); err != nil {
		t.Fatal(err)
	}
	reclaimed := tbl.Vacuum()
	failpoint.Disable("memdb/vacuum/batch")
	if reclaimed == 0 {
		t.Error("vacuum reclaimed nothing after an update-heavy run")
	}
	if bad := auditMemTable(tbl, sec, want); len(bad) > 0 {
		for _, b := range bad {
			t.Errorf("post-vacuum: %s", b)
		}
	}

	// Snapshot cycle with a crash in the middle: the crashed save must
	// keep the previous checkpoint intact; the clean retry must carry the
	// full audited state across Load.
	dir := t.TempDir()
	path := filepath.Join(dir, "chaos.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(uint64(1<<20)+3, chaosRow(uint64(1<<20)+3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("memdb/save/rows", "2*off->error(crash)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(path); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("injected crash not surfaced: %v", err)
	}
	failpoint.Disable("memdb/save/rows")
	prev, err := Load(path)
	if err != nil {
		t.Fatalf("checkpoint unloadable after crashed save: %v", err)
	}
	ptbl, err := prev.Table("events")
	if err != nil || ptbl.Len() != len(want) {
		t.Fatalf("checkpoint rows = %d, want %d (%v)", ptbl.Len(), len(want), err)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	cur, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ctbl, err := cur.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	csec, err := ctbl.Index("by_bucket")
	if err != nil {
		t.Fatal(err)
	}
	want[uint64(1<<20)+3] = 1
	if bad := auditMemTable(ctbl, csec, want); len(bad) > 0 {
		for _, b := range bad {
			t.Errorf("after snapshot round trip: %s", b)
		}
	}
}

// TestChaosMemDBAuditSelfTest is the negative control for auditMemTable.
func TestChaosMemDBAuditSelfTest(t *testing.T) {
	tbl := NewDB().CreateTable("events", 3)
	sec, err := tbl.CreateIndex("by_bucket", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]uint64)
	for pk := uint64(0); pk < 2048; pk++ {
		if err := tbl.Insert(pk, chaosRow(pk, 7)); err != nil {
			t.Fatal(err)
		}
		want[pk] = 7
	}
	if bad := auditMemTable(tbl, sec, want); len(bad) != 0 {
		t.Fatalf("clean table audits dirty: %v", bad)
	}
	tamper := func(name string, mutate func(map[uint64]uint64)) {
		w := make(map[uint64]uint64, len(want))
		for k, v := range want {
			w[k] = v
		}
		mutate(w)
		if bad := auditMemTable(tbl, sec, w); len(bad) == 0 {
			t.Errorf("%s: audit failed to detect the violation", name)
		}
	}
	tamper("lost-row", func(w map[uint64]uint64) { w[1<<30] = 1 })
	tamper("stale-version", func(w map[uint64]uint64) { w[5] = 8 })
	tamper("ghost-row", func(w map[uint64]uint64) { delete(w, 5) })
}
