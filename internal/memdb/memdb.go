// Package memdb is a small concurrent in-memory table store built on
// ALT-index — the "memory database system" setting the paper targets. It
// demonstrates the index as a database primary index and as ordered
// secondary indexes:
//
//   - each table maps a uint64 primary key to a row of uint64 columns,
//     held in an append-only chunked row arena (updates write a new row
//     version and atomically repoint the primary index),
//   - secondary indexes are ordered composite-key indexes (column value in
//     the high bits, a uniquifying sequence in the low bits), so
//     SelectWhere and ordered column scans are index range scans,
//   - all operations are safe for concurrent use; reads are lock-free on
//     the index hot path.
package memdb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/core"
	"altindex/internal/index"
	"altindex/internal/shard"
	"altindex/internal/wal"
)

// Errors returned by table operations.
var (
	ErrNoSuchTable   = errors.New("memdb: no such table")
	ErrNoSuchIndex   = errors.New("memdb: no such secondary index")
	ErrRowNotFound   = errors.New("memdb: row not found")
	ErrDuplicateKey  = errors.New("memdb: duplicate primary key")
	ErrBadColumn     = errors.New("memdb: column out of range")
	ErrColumnTooWide = errors.New("memdb: column value exceeds the index's bit width")
)

// DB is a named collection of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// Durability state, set by Open (see durable.go); nil/zero for a
	// plain in-memory database.
	wal      *wal.Log
	dir      string
	replayed int64
}

// NewDB returns an empty in-memory database with no durability; use Open
// for a write-ahead-logged one.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// TableOptions tune a table's storage layout; the zero value is the
// default single-instance primary index.
type TableOptions struct {
	// Shards range-partitions the table's primary index across this many
	// independent ALT shards behind a learned boundary router (zero or one
	// keeps a single instance). Secondary indexes stay unsharded: they are
	// value-ordered and typically far smaller. Snapshots do not persist
	// this setting — a reloaded database uses whatever options its tables
	// are recreated with.
	Shards int
	// RebalanceFactor arms the sharded primary's adaptive rebalance
	// controller: when the max/mean routed-op imbalance exceeds this
	// factor for consecutive windows the hot shard is split (or cold
	// shards merged) online. Zero disables; ignored unless Shards > 1. On
	// a durable database every boundary change is WAL-logged
	// (recRebalance), so recovery reproduces the converged layout — but
	// the controller itself is re-armed only through this option, not
	// through the log: tables recreated by replay rebalance again only if
	// the embedder recreates them with the option set.
	RebalanceFactor float64
	// RebalanceInterval overrides the controller's evaluation cadence
	// (mainly for tests); zero keeps the default.
	RebalanceInterval time.Duration
}

// CreateTable registers a table with the given number of user columns and
// returns it. Creating an existing name returns the existing table. On a
// durable database the DDL must commit to the log; CreateTable panics if
// that fails — durable embedders should prefer CreateTableWith, which
// surfaces the error.
func (db *DB) CreateTable(name string, columns int) *Table {
	t, err := db.CreateTableWith(name, columns, TableOptions{})
	if err != nil {
		panic(fmt.Sprintf("memdb: CreateTable(%q): %v", name, err))
	}
	return t
}

// CreateTableWith is CreateTable with explicit layout options. The only
// error source is a durable database whose write-ahead log cannot commit
// the DDL record.
func (db *DB) CreateTableWith(name string, columns int, opts TableOptions) (*Table, error) {
	db.mu.Lock()
	if t, ok := db.tables[name]; ok {
		db.mu.Unlock()
		return t, nil
	}
	t := newTable(db, name, columns, opts)
	db.tables[name] = t
	seq, err := db.logAppend(encCreateTable(name, t.columns, opts.Shards))
	db.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return t, db.logWait(seq)
}

// Close stops the background machinery (retraining workers) of every
// table's indexes and, for a durable database, drains and closes the
// write-ahead log. The data stays readable; Close is for reaping
// goroutines when a DB is discarded or the process shuts down.
func (db *DB) Close() error {
	db.mu.RLock()
	for _, t := range db.tables {
		t.Close()
	}
	db.mu.RUnlock()
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Table is one relation: primary key -> row of uint64 columns.
type Table struct {
	db      *DB // owning database (its WAL, when durable)
	name    string
	columns int

	primary index.Concurrent // pk -> row handle
	rows    *arena

	// stripes serialise writers per primary key so a row's primary
	// repoint and its secondary-index maintenance are atomic together.
	stripes [64]sync.Mutex

	imu        sync.RWMutex
	secondary  map[string]*Secondary
	liveRows   atomic.Int64
	deadHandle atomic.Int64 // stale row versions awaiting vacuum
}

func newTable(db *DB, name string, columns int, opts TableOptions) *Table {
	if columns < 1 {
		columns = 1
	}
	var primary index.Concurrent
	if opts.Shards > 1 {
		copts := core.Options{
			Shards:            opts.Shards,
			RebalanceFactor:   opts.RebalanceFactor,
			RebalanceInterval: opts.RebalanceInterval,
		}
		// Boundary changes are durable DDL: the controller logs each new
		// layout and waits for the commit point, so a post-crash replay
		// reproduces the layout the index had converged to. logAppend is a
		// no-op on a non-durable DB and during replay.
		copts.OnRebalance = func(bounds []uint64) {
			if seq, err := db.logAppend(encRebalance(name, bounds)); err == nil {
				_ = db.logWait(seq)
			}
		}
		primary = shard.New(copts)
	} else {
		primary = core.New(core.Options{})
	}
	return &Table{
		db:        db,
		name:      name,
		columns:   columns,
		primary:   primary,
		rows:      newArena(columns),
		secondary: map[string]*Secondary{},
	}
}

// Close stops the retraining workers of the primary and every secondary
// index after draining any in-flight rebuilds. Reads remain valid.
func (t *Table) Close() {
	closeIndex(t.primary)
	t.imu.RLock()
	defer t.imu.RUnlock()
	for _, s := range t.secondary {
		closeIndex(s.ix)
	}
}

// closeIndex settles and stops an index's background machinery when the
// implementation has any (the ALT retraining pool).
func closeIndex(ix index.Concurrent) {
	if q, ok := ix.(interface{ Quiesce() }); ok {
		q.Quiesce()
	}
	if c, ok := ix.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}

// Name returns the table name; Columns its user column count.
func (t *Table) Name() string { return t.name }

// Columns returns the number of user columns per row.
func (t *Table) Columns() int { return t.columns }

// Len returns the number of live rows.
func (t *Table) Len() int { return int(t.liveRows.Load()) }

// stripe returns the writer lock covering pk.
func (t *Table) stripe(pk uint64) *sync.Mutex {
	return &t.stripes[(pk*0x9e3779b97f4a7c15)>>58]
}

// Insert stores a new row. The row slice is copied. Inserting an existing
// primary key returns ErrDuplicateKey (use Update for overwrites). On a
// durable database Insert returns only after the redo record reaches the
// WAL's commit point.
func (t *Table) Insert(pk uint64, row []uint64) error {
	seq, err := t.insertLocked(pk, row)
	if err != nil {
		return err
	}
	return t.db.logWait(seq)
}

// insertLocked applies the insert and appends its redo record under the
// stripe lock, so per-key log order always matches apply order. The
// durability wait is the caller's (it must happen off the lock).
func (t *Table) insertLocked(pk uint64, row []uint64) (uint64, error) {
	if len(row) != t.columns {
		return 0, fmt.Errorf("%w: got %d columns, want %d", ErrBadColumn, len(row), t.columns)
	}
	t.stripe(pk).Lock()
	defer t.stripe(pk).Unlock()
	if _, ok := t.primary.Get(pk); ok {
		return 0, fmt.Errorf("%w: %d", ErrDuplicateKey, pk)
	}
	h := t.rows.alloc(row)
	if err := t.primary.Insert(pk, h); err != nil {
		return 0, err
	}
	t.liveRows.Add(1)
	t.imu.RLock()
	for _, sec := range t.secondary {
		if err := sec.add(pk, row[sec.column]); err != nil {
			t.imu.RUnlock()
			return 0, err
		}
	}
	t.imu.RUnlock()
	return t.logPut(pk, row)
}

// logPut appends the upsert redo record for (pk, row); nil-WAL no-op.
func (t *Table) logPut(pk uint64, row []uint64) (uint64, error) {
	if t.db == nil || t.db.wal == nil {
		return 0, nil
	}
	return t.db.logAppend(encPut(t.name, pk, row))
}

// Get returns a copy of the row for pk.
func (t *Table) Get(pk uint64) ([]uint64, error) {
	h, ok := t.primary.Get(pk)
	if !ok {
		return nil, fmt.Errorf("%w: pk %d", ErrRowNotFound, pk)
	}
	return t.rows.read(h), nil
}

// Update overwrites the row for pk (copy-on-write: a fresh row version is
// written and the primary index is repointed atomically). On a durable
// database Update returns only after the redo record reaches the WAL's
// commit point.
func (t *Table) Update(pk uint64, row []uint64) error {
	seq, err := t.updateLocked(pk, row)
	if err != nil {
		return err
	}
	return t.db.logWait(seq)
}

func (t *Table) updateLocked(pk uint64, row []uint64) (uint64, error) {
	if len(row) != t.columns {
		return 0, fmt.Errorf("%w: got %d columns, want %d", ErrBadColumn, len(row), t.columns)
	}
	t.stripe(pk).Lock()
	defer t.stripe(pk).Unlock()
	h, ok := t.primary.Get(pk)
	if !ok {
		return 0, fmt.Errorf("%w: pk %d", ErrRowNotFound, pk)
	}
	old := t.rows.read(h)
	nh := t.rows.alloc(row)
	if !t.primary.Update(pk, nh) {
		return 0, fmt.Errorf("%w: pk %d", ErrRowNotFound, pk)
	}
	t.deadHandle.Add(1)
	t.imu.RLock()
	for _, sec := range t.secondary {
		if old[sec.column] != row[sec.column] {
			sec.remove(pk, old[sec.column])
			if err := sec.add(pk, row[sec.column]); err != nil {
				t.imu.RUnlock()
				return 0, err
			}
		}
	}
	t.imu.RUnlock()
	return t.logPut(pk, row)
}

// Delete removes the row for pk. On a durable database Delete returns
// only after the redo record reaches the WAL's commit point.
func (t *Table) Delete(pk uint64) error {
	seq, err := t.deleteLocked(pk)
	if err != nil {
		return err
	}
	return t.db.logWait(seq)
}

func (t *Table) deleteLocked(pk uint64) (uint64, error) {
	t.stripe(pk).Lock()
	defer t.stripe(pk).Unlock()
	h, ok := t.primary.Get(pk)
	if !ok {
		return 0, fmt.Errorf("%w: pk %d", ErrRowNotFound, pk)
	}
	old := t.rows.read(h)
	if !t.primary.Remove(pk) {
		return 0, fmt.Errorf("%w: pk %d", ErrRowNotFound, pk)
	}
	t.liveRows.Add(-1)
	t.deadHandle.Add(1)
	t.imu.RLock()
	for _, sec := range t.secondary {
		sec.remove(pk, old[sec.column])
	}
	t.imu.RUnlock()
	if t.db == nil || t.db.wal == nil {
		return 0, nil
	}
	return t.db.logAppend(encDelete(t.name, pk))
}

// SelectRange visits up to limit rows with pk >= start in primary-key
// order. The row slice passed to fn is only valid during the call.
func (t *Table) SelectRange(start uint64, limit int, fn func(pk uint64, row []uint64) bool) int {
	return t.SelectRangeBounded(start, ^uint64(0), limit, fn)
}

// SelectRangeBounded visits up to limit rows with start <= pk < end in
// primary-key order — the pushdown shape relational operators consume.
// end == ^uint64(0) means no upper bound (including pk MaxUint64). Rows
// are pulled from the primary index in bounded run batches through the
// block-granular scan kernel, so arbitrarily large windows never
// materialise at once; each batch is an internally consistent snapshot.
func (t *Table) SelectRangeBounded(start, end uint64, limit int, fn func(pk uint64, row []uint64) bool) int {
	if limit <= 0 {
		return 0
	}
	bp := rangeBufPool.Get().(*[]index.KV)
	buf := *bp
	count := 0
	cur := start
	stopped := false
	for !stopped && count < limit {
		batch := limit - count
		if batch > rangeBatch {
			batch = rangeBatch
		}
		buf = index.AppendRange(t.primary, buf[:0], cur, end, batch)
		for _, kv := range buf {
			count++
			if !fn(kv.Key, t.rows.read(kv.Value)) {
				stopped = true
				break
			}
		}
		if len(buf) < batch || buf[len(buf)-1].Key == ^uint64(0) {
			break // window or keyspace exhausted
		}
		cur = buf[len(buf)-1].Key + 1
	}
	if cap(buf) <= rangeBatch {
		*bp = buf
	}
	rangeBufPool.Put(bp)
	return count
}

// rangeBatch bounds one SelectRangeBounded pull from the primary index.
const rangeBatch = 1024

// rangeBufPool recycles the per-call KV batch buffers so range selects
// allocate nothing once warm.
var rangeBufPool = sync.Pool{New: func() any {
	b := make([]index.KV, 0, rangeBatch)
	return &b
}}

// MemoryUsage approximates retained bytes across the primary index, row
// arena and secondary indexes.
func (t *Table) MemoryUsage() uintptr {
	total := t.primary.MemoryUsage() + t.rows.memory()
	t.imu.RLock()
	for _, sec := range t.secondary {
		total += sec.ix.MemoryUsage()
	}
	t.imu.RUnlock()
	return total
}

// Stats returns engine counters.
func (t *Table) Stats() map[string]int64 {
	st := map[string]int64{
		"rows":         t.liveRows.Load(),
		"dead_rows":    t.deadHandle.Load(),
		"arena_chunks": int64(t.rows.chunks()),
		// Served-by-recycling count from the backing span pool: non-zero
		// once Vacuum generations start trading chunks instead of growing
		// the heap.
		"arena_chunk_reuses": t.rows.pool.Stats().Reuses,
	}
	if s, ok := t.primary.(index.Stats); ok {
		for k, v := range s.StatsMap() {
			st["primary_"+k] = v
		}
	}
	return st
}
