package memdb

import (
	"sync"
	"sync/atomic"
	"testing"

	"altindex/internal/xrand"
)

// TestConcurrentSecondaryReads drives secondary-index queries concurrently
// with inserts and updates: results must always be internally consistent
// (rows returned for a column query actually carry that column value).
func TestConcurrentSecondaryReads(t *testing.T) {
	tbl := NewDB().CreateTable("t", 2)
	for pk := uint64(1); pk <= 2000; pk++ {
		if err := tbl.Insert(pk, []uint64{pk % 16, pk}); err != nil {
			t.Fatal(err)
		}
	}
	sec, err := tbl.CreateIndex("by_bucket", 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	// Writers keep inserting and moving rows between buckets.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := xrand.New(uint64(w) + 1)
			next := uint64(10_000 + w)
			for !stop.Load() {
				if r.Intn(2) == 0 {
					_ = tbl.Insert(next, []uint64{next % 16, next})
					next += 2
				} else {
					pk := r.Uint64n(2000) + 1
					_ = tbl.Update(pk, []uint64{r.Uint64n(16), pk})
				}
			}
		}(w)
	}
	// Readers verify every returned row matches its bucket.
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			r := xrand.New(uint64(100 + w))
			for i := 0; i < 3000; i++ {
				bucket := r.Uint64n(16)
				sec.SelectWhere(bucket, 50, func(pk uint64, row []uint64) bool {
					// A row mid-move may briefly be indexed under its
					// old bucket; its pk must still resolve.
					if len(row) != 2 {
						t.Errorf("bad row width %d", len(row))
						return false
					}
					return true
				})
			}
		}(w)
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	if t.Failed() {
		return
	}
	// Quiescent consistency: every live row appears under exactly its
	// current bucket.
	counts := make([]int, 16)
	for b := uint64(0); b < 16; b++ {
		sec.SelectWhere(b, 1<<20, func(pk uint64, row []uint64) bool {
			if row[0] != b {
				t.Fatalf("row %d indexed under %d but holds bucket %d", pk, b, row[0])
			}
			counts[b]++
			return true
		})
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tbl.Len() {
		t.Fatalf("secondary sees %d rows, table has %d", total, tbl.Len())
	}
}
