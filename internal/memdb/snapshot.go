package memdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"altindex/internal/failpoint"
	"altindex/internal/index"
	"altindex/internal/snapio"
)

// Snapshot format: a little-endian binary checkpoint of every table —
// rows in primary-key order plus secondary-index definitions, so Load can
// bulkload the primaries (fast path) and rebuild the secondaries.
//
//	magic "ALTDB001"
//	u32 tableCount
//	per table:
//	  u32 nameLen, name bytes
//	  u32 columns, u32 indexCount, u64 rowCount
//	  per index: u32 nameLen, name, u32 column, u32 colBits
//	  per row (ascending pk): u64 pk, columns × u64
//
// The payload is framed by snapio's CRC32 footer and written through its
// temp-file + fsync + atomic-rename sequence, so a crash at any point (the
// chaos suite injects one at every edge) leaves either the previous
// complete checkpoint or a file Load rejects with ErrBadSnapshot — never a
// torn or silently-stale snapshot.
//
// Save requires the database to be quiescent; it is a checkpoint
// operation, not a hot-path one.

var snapshotMagic = [8]byte{'A', 'L', 'T', 'D', 'B', '0', '0', '1'}

// ErrBadSnapshot reports a corrupt or incompatible snapshot file.
var ErrBadSnapshot = errors.New("memdb: bad snapshot")

// fpSaveRows fires once per row batch while serializing a table; armed
// with delay it stretches the checkpoint window (stressing the
// "changed during save" detection), armed with error it simulates a crash
// mid-payload.
var fpSaveRows = failpoint.New("memdb/save/rows")

// Save writes a checkpoint of the whole database to path, atomically: the
// previous snapshot at path survives any failure or crash mid-save.
func (db *DB) Save(path string) error {
	return snapio.WriteFile(path, db.writeSnapshot)
}

func (db *DB) writeSnapshot(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	put32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	put64 := func(v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := put32(uint32(len(db.tables))); err != nil {
		return err
	}
	for name, t := range db.tables {
		if err := put32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		t.imu.RLock()
		idxs := make([]*Secondary, 0, len(t.secondary))
		for _, s := range t.secondary {
			idxs = append(idxs, s)
		}
		t.imu.RUnlock()
		if err := put32(uint32(t.columns)); err != nil {
			return err
		}
		if err := put32(uint32(len(idxs))); err != nil {
			return err
		}
		if err := put64(uint64(t.Len())); err != nil {
			return err
		}
		for _, s := range idxs {
			if err := put32(uint32(len(s.name))); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s.name); err != nil {
				return err
			}
			if err := put32(uint32(s.column)); err != nil {
				return err
			}
			if err := put32(uint32(s.colBits)); err != nil {
				return err
			}
		}
		var werr error
		rows := 0
		start := uint64(0)
		for {
			const batch = 1024
			if werr = fpSaveRows.InjectErr(); werr != nil {
				return werr
			}
			var last uint64
			n := 0
			t.primary.Scan(start, batch, func(pk, h uint64) bool {
				last = pk
				n++
				if werr = put64(pk); werr != nil {
					return false
				}
				for _, c := range t.rows.read(h) {
					if werr = put64(c); werr != nil {
						return false
					}
				}
				rows++
				return true
			})
			if werr != nil {
				return werr
			}
			if n < batch || last == ^uint64(0) {
				break
			}
			start = last + 1
		}
		if rows != t.Len() {
			return fmt.Errorf("%w: table %q changed during save", ErrBadSnapshot, name)
		}
	}
	return nil
}

// Load reads a checkpoint written by Save into a fresh database. A
// truncated, torn or corrupt file — including one left by a crash that
// beat the atomic rename — returns an error wrapping ErrBadSnapshot
// rather than a partially-loaded database.
func Load(path string) (*DB, error) {
	payload, err := snapio.ReadFile(path)
	if err != nil {
		if errors.Is(err, snapio.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return nil, err
	}
	db, err := readSnapshot(bytes.NewReader(payload))
	if err != nil {
		// The payload passed its checksum, so a parse failure means a
		// structurally-incompatible file, not bit rot — still bad.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: payload shorter than its structure", ErrBadSnapshot)
		}
		return nil, err
	}
	return db, nil
}

func readSnapshot(r *bytes.Reader) (*DB, error) {
	get32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	get64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	getStr := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", ErrBadSnapshot
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: magic mismatch", ErrBadSnapshot)
	}
	tableCount, err := get32()
	if err != nil {
		return nil, err
	}
	db := NewDB()
	for ti := uint32(0); ti < tableCount; ti++ {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		columns, err := get32()
		if err != nil {
			return nil, err
		}
		if columns == 0 || columns > 1<<16 {
			return nil, fmt.Errorf("%w: table %q declares %d columns", ErrBadSnapshot, name, columns)
		}
		idxCount, err := get32()
		if err != nil {
			return nil, err
		}
		rowCount, err := get64()
		if err != nil {
			return nil, err
		}
		// A row is (1+columns) u64s; a declared count the remaining payload
		// cannot hold is structural corruption, caught here rather than as
		// an allocation bomb below.
		if rowCount > uint64(r.Len())/(8*(uint64(columns)+1)) {
			return nil, fmt.Errorf("%w: table %q declares %d rows, payload holds fewer", ErrBadSnapshot, name, rowCount)
		}
		type idxDef struct {
			name    string
			col     uint32
			colBits uint32
		}
		defs := make([]idxDef, idxCount)
		for i := range defs {
			if defs[i].name, err = getStr(); err != nil {
				return nil, err
			}
			if defs[i].col, err = get32(); err != nil {
				return nil, err
			}
			if defs[i].colBits, err = get32(); err != nil {
				return nil, err
			}
		}
		t := db.CreateTable(name, int(columns))
		// Rows arrive pk-ascending: arena-alloc each and bulkload the
		// primary in one shot.
		pairs := make([]index.KV, 0, rowCount)
		row := make([]uint64, columns)
		var prev uint64
		for ri := uint64(0); ri < rowCount; ri++ {
			pk, err := get64()
			if err != nil {
				return nil, err
			}
			if ri > 0 && pk <= prev {
				return nil, fmt.Errorf("%w: rows out of order", ErrBadSnapshot)
			}
			prev = pk
			for c := range row {
				if row[c], err = get64(); err != nil {
					return nil, err
				}
			}
			pairs = append(pairs, index.KV{Key: pk, Value: t.rows.alloc(row)})
		}
		if err := t.primary.Bulkload(pairs); err != nil {
			return nil, err
		}
		t.liveRows.Store(int64(len(pairs)))
		for _, d := range defs {
			if _, err := t.CreateIndex(d.name, int(d.col), uint(d.colBits)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
