package memdb

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"altindex/internal/shard"
	"altindex/internal/snapio"
	"altindex/internal/wal"
)

// Durability: a DB created with Open is backed by a write-ahead log and
// checkpoint pair living in one directory:
//
//	<dir>/memdb.snap   full checkpoint (the ALTDB001 snapshot format)
//	<dir>/CHECKPOINT   snapio-framed JSON naming the checkpoint's LSN
//	<dir>/wal/         WAL segments (see internal/wal)
//
// Every mutation appends a logical redo record — Put (upsert), Delete,
// CreateTable, CreateIndex — to the log *inside* the same per-key stripe
// lock that serialises the apply, so log order always equals apply order,
// and the method returns only after the record reaches the configured
// commit point ("ack after commit"). Recovery in Open loads the latest
// checkpoint and replays every record above its LSN; replay application
// is idempotent (Put is an upsert, Delete tolerates absence, DDL returns
// existing objects), so a checkpoint that crashed between publishing its
// snapshot and truncating the log merely re-applies a prefix the
// snapshot already contains — converging, never double-counting.
//
// The recovery-time target: replay proceeds at over a million records per
// second (measured in EXPERIMENTS.md §WAL), so keeping the log under
// Checkpoint's default trigger keeps Open under a few seconds; embedders
// bound recovery by how often they call Checkpoint.

// ErrNotDurable is returned by durability operations on a DB that was not
// created with Open.
var ErrNotDurable = errors.New("memdb: database has no write-ahead log (use Open)")

// Options configure a durable database opened with Open. The zero value
// uses the WAL defaults (SyncAlways, 64 MiB segments).
type Options struct {
	// WAL tunes the write-ahead log (sync policy, segment size).
	WAL wal.Options
}

// Redo record opcodes. Records are little-endian, self-delimiting, and
// carry logical state changes only — replay rebuilds secondary indexes
// through the normal mutation paths, so they need no records of their own.
const (
	recPut         byte = 1 // [u16 nameLen][name][u64 pk][u16 cols][cols×u64]
	recDelete      byte = 2 // [u16 nameLen][name][u64 pk]
	recCreateTable byte = 3 // [u16 nameLen][name][u32 columns][u32 shards]
	recCreateIndex byte = 4 // [u16 nameLen][table][u16 nameLen][index][u32 col][u32 colBits]
	recRebalance   byte = 5 // [u16 nameLen][name][u32 nbounds][nbounds×u64 bounds]
)

const (
	snapFileName = "memdb.snap"
	metaFileName = "CHECKPOINT"
	walDirName   = "wal"
)

// checkpointMeta is the CHECKPOINT file payload: which LSN the snapshot
// beside it covers. It is written through snapio, so a crash mid-publish
// leaves the previous (still consistent) generation.
type checkpointMeta struct {
	LSN         uint64 `json:"lsn"`
	HasSnapshot bool   `json:"has_snapshot"`
}

// Open opens (or creates) a durable database in dir: it loads the latest
// checkpoint, replays the write-ahead log above the checkpoint's LSN, and
// arms logging for every subsequent mutation. A corrupt checkpoint or an
// unstitchable log refuses to open rather than serving partial data.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, metaFileName)
	var meta checkpointMeta
	switch raw, err := snapio.ReadFile(metaPath); {
	case err == nil:
		if jerr := json.Unmarshal(raw, &meta); jerr != nil {
			return nil, fmt.Errorf("%w: checkpoint meta: %v", ErrBadSnapshot, jerr)
		}
	case errors.Is(err, os.ErrNotExist):
		// First boot.
	case errors.Is(err, snapio.ErrCorrupt):
		return nil, fmt.Errorf("%w: checkpoint meta: %v", ErrBadSnapshot, err)
	default:
		return nil, err
	}

	var db *DB
	snapPath := filepath.Join(dir, snapFileName)
	if meta.HasSnapshot {
		loaded, err := Load(snapPath)
		if err != nil {
			// The meta says a checkpoint exists and the log below its LSN
			// is gone; starting empty here would silently lose data.
			return nil, fmt.Errorf("memdb: recovery needs the checkpoint it cannot read: %w", err)
		}
		db = loaded
	} else {
		db = NewDB()
	}

	log, err := wal.Open(filepath.Join(dir, walDirName), opts.WAL)
	if err != nil {
		return nil, err
	}
	replayed, err := log.Replay(meta.LSN, func(_ uint64, payload []byte) error {
		return db.applyRecord(payload)
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("memdb: replay: %w", err)
	}
	db.wal = log
	db.dir = dir
	db.replayed = int64(replayed)
	return db, nil
}

// WAL returns the database's write-ahead log (nil for a non-durable DB) —
// exposed for stats surfaces and tests.
func (db *DB) WAL() *wal.Log { return db.wal }

// ReplayedRecords reports how many redo records Open applied during
// recovery.
func (db *DB) ReplayedRecords() int64 { return db.replayed }

// Checkpoint writes a full snapshot covering everything applied so far,
// publishes its LSN, and truncates the log below it — bounding both the
// log's disk footprint and the next recovery's replay time. Like Save it
// requires the database to be quiescent (it is a checkpoint operation,
// not a hot-path one).
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return ErrNotDurable
	}
	// Every assigned sequence number was appended inside the stripe lock
	// of an already-applied mutation, so the state Save scans contains
	// every record at or below this LSN.
	lsn := db.wal.LastSeq()
	if err := db.Save(filepath.Join(db.dir, snapFileName)); err != nil {
		return err
	}
	if err := writeCheckpointMeta(db.dir, checkpointMeta{LSN: lsn, HasSnapshot: true}); err != nil {
		return err
	}
	return db.wal.TruncateBelow(lsn + 1)
}

// writeCheckpointMeta atomically publishes the CHECKPOINT meta file.
func writeCheckpointMeta(dir string, meta checkpointMeta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return snapio.WriteFile(filepath.Join(dir, metaFileName), func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
}

// applyRecord applies one redo record with idempotent semantics: Put is
// an upsert, Delete tolerates a missing row, DDL returns existing
// objects. Idempotency is what makes re-replaying a prefix the snapshot
// already covers (crash between snapshot publish and log truncation)
// converge instead of corrupting counts.
func (db *DB) applyRecord(payload []byte) error {
	r := recReader{buf: payload}
	op := r.u8()
	switch op {
	case recPut:
		name := r.str()
		pk := r.u64()
		cols := int(r.u16())
		if r.err != nil || cols > 1<<16 {
			return fmt.Errorf("memdb: malformed put record")
		}
		row := make([]uint64, cols)
		for i := range row {
			row[i] = r.u64()
		}
		if r.err != nil {
			return fmt.Errorf("memdb: malformed put record")
		}
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := t.Insert(pk, row); errors.Is(err, ErrDuplicateKey) {
			return t.Update(pk, row)
		} else if err != nil {
			return err
		}
		return nil
	case recDelete:
		name := r.str()
		pk := r.u64()
		if r.err != nil {
			return fmt.Errorf("memdb: malformed delete record")
		}
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := t.Delete(pk); err != nil && !errors.Is(err, ErrRowNotFound) {
			return err
		}
		return nil
	case recCreateTable:
		name := r.str()
		columns := r.u32()
		shards := r.u32()
		if r.err != nil {
			return fmt.Errorf("memdb: malformed create-table record")
		}
		_, err := db.CreateTableWith(name, int(columns), TableOptions{Shards: int(shards)})
		return err
	case recCreateIndex:
		table := r.str()
		index := r.str()
		col := r.u32()
		colBits := r.u32()
		if r.err != nil {
			return fmt.Errorf("memdb: malformed create-index record")
		}
		t, err := db.Table(table)
		if err != nil {
			return err
		}
		_, err = t.CreateIndex(index, int(col), uint(colBits))
		return err
	case recRebalance:
		name := r.str()
		n := r.u32()
		if r.err != nil || n > 64 {
			return fmt.Errorf("memdb: malformed rebalance record")
		}
		bounds := make([]uint64, n)
		for i := range bounds {
			bounds[i] = r.u64()
		}
		if r.err != nil {
			return fmt.Errorf("memdb: malformed rebalance record")
		}
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		// Best-effort layout reproduction: only a sharded primary can take
		// a boundary layout. A table recreated unsharded (replay of an
		// older DDL) skips it — the data is unaffected either way, and a
		// later record may re-shape the index again.
		if sh, ok := t.primary.(*shard.ALT); ok {
			return sh.SetBounds(bounds)
		}
		return nil
	}
	return fmt.Errorf("memdb: unknown redo opcode %d", op)
}

// --- record encoding -------------------------------------------------------

func encPut(table string, pk uint64, row []uint64) []byte {
	buf := make([]byte, 0, 1+2+len(table)+8+2+8*len(row))
	buf = append(buf, recPut)
	buf = encStr(buf, table)
	buf = binary.LittleEndian.AppendUint64(buf, pk)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(row)))
	for _, c := range row {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return buf
}

func encDelete(table string, pk uint64) []byte {
	buf := make([]byte, 0, 1+2+len(table)+8)
	buf = append(buf, recDelete)
	buf = encStr(buf, table)
	return binary.LittleEndian.AppendUint64(buf, pk)
}

func encCreateTable(table string, columns, shards int) []byte {
	buf := make([]byte, 0, 1+2+len(table)+8)
	buf = append(buf, recCreateTable)
	buf = encStr(buf, table)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(columns))
	return binary.LittleEndian.AppendUint32(buf, uint32(shards))
}

func encCreateIndex(table, index string, col int, colBits uint) []byte {
	buf := make([]byte, 0, 1+4+len(table)+len(index)+8)
	buf = append(buf, recCreateIndex)
	buf = encStr(buf, table)
	buf = encStr(buf, index)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(col))
	return binary.LittleEndian.AppendUint32(buf, uint32(colBits))
}

func encRebalance(table string, bounds []uint64) []byte {
	buf := make([]byte, 0, 1+2+len(table)+4+8*len(bounds))
	buf = append(buf, recRebalance)
	buf = encStr(buf, table)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bounds)))
	for _, b := range bounds {
		buf = binary.LittleEndian.AppendUint64(buf, b)
	}
	return buf
}

func encStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// recReader is a tiny cursor with sticky-error decoding.
type recReader struct {
	buf []byte
	err error
}

func (r *recReader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = errors.New("short record")
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *recReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *recReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *recReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *recReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *recReader) str() string {
	n := r.u16()
	return string(r.take(int(n)))
}

// --- mutation-side logging -------------------------------------------------

// logAppend enqueues one redo record; a nil wal (non-durable DB, or a DB
// still replaying — the log is attached only after replay) is a no-op.
// Called with the relevant engine lock held so log order matches apply
// order; the durability wait happens after the lock is released.
func (db *DB) logAppend(rec []byte) (uint64, error) {
	if db == nil || db.wal == nil {
		return 0, nil
	}
	return db.wal.Append(rec)
}

// logWait blocks until seq's commit point (no-op for seq 0, the
// non-durable marker).
func (db *DB) logWait(seq uint64) error {
	if seq == 0 || db == nil || db.wal == nil {
		return nil
	}
	return db.wal.WaitDurable(seq)
}
