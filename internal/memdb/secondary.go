package memdb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"altindex/internal/core"
	"altindex/internal/index"
)

// Secondary is an ordered, non-unique secondary index over one column. It
// stores composite 64-bit keys — the column value in the high ColBits bits
// and a uniquifying sequence below — in an ALT-index whose values are the
// primary keys, so equality and ordered range lookups over the column are
// plain index range scans.
type Secondary struct {
	table   *Table
	name    string
	column  int
	colBits uint // column bits; 64-colBits sequence bits
	seq     atomic.Uint64
	ix      index.Concurrent
}

// CreateIndex adds a secondary index named name over column col, whose
// values must fit in colBits bits (the remaining bits uniquify duplicates;
// 40/24 is a common split). Existing rows are indexed immediately. The
// table must be quiescent during creation. On a durable database the DDL
// record must commit before CreateIndex returns.
func (t *Table) CreateIndex(name string, col int, colBits uint) (*Secondary, error) {
	s, seq, err := t.createIndexLocked(name, col, colBits)
	if err != nil {
		return nil, err
	}
	if err := t.db.logWait(seq); err != nil {
		return nil, err
	}
	return s, nil
}

func (t *Table) createIndexLocked(name string, col int, colBits uint) (*Secondary, uint64, error) {
	if col < 0 || col >= t.columns {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadColumn, col)
	}
	if colBits < 1 || colBits > 56 {
		return nil, 0, fmt.Errorf("memdb: colBits must be in [1,56], got %d", colBits)
	}
	t.imu.Lock()
	defer t.imu.Unlock()
	if s, ok := t.secondary[name]; ok {
		return s, 0, nil
	}
	s := &Secondary{
		table:   t,
		name:    name,
		column:  col,
		colBits: colBits,
		ix:      core.New(core.Options{}),
	}
	// Backfill from the primary index in bounded batches.
	var backfillErr error
	start := uint64(0)
	for {
		const batch = 1024
		var last uint64
		n := 0
		t.primary.Scan(start, batch, func(pk, h uint64) bool {
			last = pk
			n++
			row := t.rows.read(h)
			if err := s.add(pk, row[col]); err != nil {
				backfillErr = err
				return false
			}
			return true
		})
		if backfillErr != nil {
			return nil, 0, backfillErr
		}
		if n < batch || last == ^uint64(0) {
			break
		}
		start = last + 1
	}
	t.secondary[name] = s
	if t.db == nil || t.db.wal == nil {
		return s, 0, nil
	}
	seq, err := t.db.logAppend(encCreateIndex(t.name, name, col, colBits))
	return s, seq, err
}

// Index returns a registered secondary index.
func (t *Table) Index(name string) (*Secondary, error) {
	t.imu.RLock()
	defer t.imu.RUnlock()
	s, ok := t.secondary[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	return s, nil
}

func (s *Secondary) shift() uint { return 64 - s.colBits }

func (s *Secondary) composite(colVal, seq uint64) (uint64, error) {
	if colVal >= uint64(1)<<s.colBits {
		return 0, fmt.Errorf("%w: %d needs more than %d bits", ErrColumnTooWide, colVal, s.colBits)
	}
	return colVal<<s.shift() | seq&(uint64(1)<<s.shift()-1), nil
}

// add indexes (colVal -> pk) under a fresh sequence number.
func (s *Secondary) add(pk, colVal uint64) error {
	ck, err := s.composite(colVal, s.seq.Add(1))
	if err != nil {
		return err
	}
	return s.ix.Insert(ck, pk)
}

// scanRange visits composite entries in [lo, hi] in batches so arbitrarily
// large ranges never materialise in memory at once. Batches are pulled
// through the index's bounded run kernel (index.AppendRange with the
// half-open end hi+1, or the unbounded sentinel when hi is MaxUint64), so
// the upper bound prunes inside the index instead of over-fetching a full
// batch past the window.
func (s *Secondary) scanRange(lo, hi uint64, visit func(ck, pk uint64) bool) {
	const batch = 128
	end := hi + 1
	if hi == ^uint64(0) {
		end = ^uint64(0) // sentinel: unbounded, includes MaxUint64 itself
	}
	bp := secScanPool.Get().(*[]index.KV)
	buf := *bp
	start := lo
	for {
		buf = index.AppendRange(s.ix, buf[:0], start, end, batch)
		stopped := false
		for _, kv := range buf {
			if !visit(kv.Key, kv.Value) {
				stopped = true
				break
			}
		}
		if stopped || len(buf) < batch || buf[len(buf)-1].Key == ^uint64(0) {
			break
		}
		start = buf[len(buf)-1].Key + 1
	}
	if cap(buf) <= batch {
		*bp = buf
	}
	secScanPool.Put(bp)
}

// secScanPool recycles scanRange's batch buffers across calls.
var secScanPool = sync.Pool{New: func() any {
	b := make([]index.KV, 0, 128)
	return &b
}}

// remove unindexes the entry for (colVal, pk) by scanning the column's
// composite range for the matching primary key.
func (s *Secondary) remove(pk, colVal uint64) {
	lo := colVal << s.shift()
	hi := lo | (uint64(1)<<s.shift() - 1)
	var found uint64
	ok := false
	s.scanRange(lo, hi, func(ck, p uint64) bool {
		if p == pk {
			found, ok = ck, true
			return false
		}
		return true
	})
	if ok {
		s.ix.Remove(found)
	}
}

// SelectWhere visits up to limit rows whose indexed column equals colVal.
func (s *Secondary) SelectWhere(colVal uint64, limit int, fn func(pk uint64, row []uint64) bool) int {
	lo := colVal << s.shift()
	hi := lo | (uint64(1)<<s.shift() - 1)
	count := 0
	s.scanRange(lo, hi, func(ck, pk uint64) bool {
		if count >= limit {
			return false
		}
		h, ok := s.table.primary.Get(pk)
		if !ok {
			return true // row deleted mid-scan; skip
		}
		count++
		return fn(pk, s.table.rows.read(h))
	})
	return count
}

// SelectOrdered visits up to limit rows in ascending indexed-column order,
// starting at colVal.
func (s *Secondary) SelectOrdered(colVal uint64, limit int, fn func(pk uint64, row []uint64) bool) int {
	count := 0
	s.scanRange(colVal<<s.shift(), ^uint64(0), func(ck, pk uint64) bool {
		if count >= limit {
			return false
		}
		h, ok := s.table.primary.Get(pk)
		if !ok {
			return true
		}
		count++
		return fn(pk, s.table.rows.read(h))
	})
	return count
}

// Len returns the number of index entries.
func (s *Secondary) Len() int { return s.ix.Len() }
