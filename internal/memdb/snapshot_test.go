package memdb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func buildSampleDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	orders := db.CreateTable("orders", 3)
	for pk := uint64(1); pk <= 500; pk++ {
		if err := orders.Insert(pk*3, []uint64{pk % 7, pk * 100, pk}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := orders.CreateIndex("by_cust", 0, 40); err != nil {
		t.Fatal(err)
	}
	users := db.CreateTable("users", 1)
	for pk := uint64(1); pk <= 50; pk++ {
		if err := users.Insert(pk, []uint64{pk * pk}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := buildSampleDB(t)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := loaded.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if orders.Len() != 500 || orders.Columns() != 3 {
		t.Fatalf("orders: len=%d cols=%d", orders.Len(), orders.Columns())
	}
	for pk := uint64(1); pk <= 500; pk++ {
		row, err := orders.Get(pk * 3)
		if err != nil {
			t.Fatalf("pk %d: %v", pk*3, err)
		}
		if row[0] != pk%7 || row[1] != pk*100 || row[2] != pk {
			t.Fatalf("pk %d row %v", pk*3, row)
		}
	}
	// The secondary index was rebuilt and is queryable.
	sec, err := orders.Index("by_cust")
	if err != nil {
		t.Fatal(err)
	}
	n := sec.SelectWhere(3, 1000, func(pk uint64, row []uint64) bool {
		if row[0] != 3 {
			t.Fatalf("wrong bucket: %v", row)
		}
		return true
	})
	if n == 0 {
		t.Fatal("secondary empty after load")
	}
	users, err := loaded.Table("users")
	if err != nil || users.Len() != 50 {
		t.Fatalf("users after load: %v len=%d", err, users.Len())
	}
	// The loaded DB is writable.
	if err := orders.Insert(99999, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if row, err := orders.Get(99999); err != nil || row[2] != 3 {
		t.Fatal("write to loaded DB failed")
	}
}

func TestSnapshotBadInput(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("missing file loaded")
	}
	// Corrupt magic.
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, []byte("NOTADB00-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v", err)
	}
	// Truncated file: valid magic, then EOF mid-structure.
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	buf.Write([]byte{1, 0, 0, 0}) // one table, then nothing
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("truncated snapshot loaded")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := NewDB().Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("anything"); err == nil {
		t.Fatal("phantom table")
	}
}
