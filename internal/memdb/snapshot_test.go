package memdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"altindex/internal/failpoint"
)

func buildSampleDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	orders := db.CreateTable("orders", 3)
	for pk := uint64(1); pk <= 500; pk++ {
		if err := orders.Insert(pk*3, []uint64{pk % 7, pk * 100, pk}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := orders.CreateIndex("by_cust", 0, 40); err != nil {
		t.Fatal(err)
	}
	users := db.CreateTable("users", 1)
	for pk := uint64(1); pk <= 50; pk++ {
		if err := users.Insert(pk, []uint64{pk * pk}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := buildSampleDB(t)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := loaded.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if orders.Len() != 500 || orders.Columns() != 3 {
		t.Fatalf("orders: len=%d cols=%d", orders.Len(), orders.Columns())
	}
	for pk := uint64(1); pk <= 500; pk++ {
		row, err := orders.Get(pk * 3)
		if err != nil {
			t.Fatalf("pk %d: %v", pk*3, err)
		}
		if row[0] != pk%7 || row[1] != pk*100 || row[2] != pk {
			t.Fatalf("pk %d row %v", pk*3, row)
		}
	}
	// The secondary index was rebuilt and is queryable.
	sec, err := orders.Index("by_cust")
	if err != nil {
		t.Fatal(err)
	}
	n := sec.SelectWhere(3, 1000, func(pk uint64, row []uint64) bool {
		if row[0] != 3 {
			t.Fatalf("wrong bucket: %v", row)
		}
		return true
	})
	if n == 0 {
		t.Fatal("secondary empty after load")
	}
	users, err := loaded.Table("users")
	if err != nil || users.Len() != 50 {
		t.Fatalf("users after load: %v len=%d", err, users.Len())
	}
	// The loaded DB is writable.
	if err := orders.Insert(99999, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if row, err := orders.Get(99999); err != nil || row[2] != 3 {
		t.Fatal("write to loaded DB failed")
	}
}

func TestSnapshotBadInput(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("missing file loaded")
	}
	// Corrupt magic.
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, []byte("NOTADB00-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v", err)
	}
	// Truncated file: valid magic, then EOF mid-structure.
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	buf.Write([]byte{1, 0, 0, 0}) // one table, then nothing
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("truncated snapshot loaded")
	}
}

// saveCrashSites are every edge at which a kill -9 can interrupt Save:
// mid-payload (row serialization) and each snapio write-sequence edge.
var saveCrashSites = []string{
	"memdb/save/rows", "snapio/flush", "snapio/sync", "snapio/rename",
}

// TestSaveCrashSafety is the kill -9 acceptance check: a crash injected at
// every stage of Save must leave Load returning the previous complete
// checkpoint — never a torn, partial or silently-stale database — and a
// clean retry must fully recover.
func TestSaveCrashSafety(t *testing.T) {
	for _, site := range saveCrashSites {
		t.Run(filepath.Base(filepath.Dir(site))+"-"+filepath.Base(site), func(t *testing.T) {
			defer failpoint.DisableAll()
			dir := t.TempDir()
			path := filepath.Join(dir, "db.snap")

			db := buildSampleDB(t)
			if err := db.Save(path); err != nil {
				t.Fatal(err)
			}
			// Mutate past the checkpoint, then crash the next Save.
			orders, _ := db.Table("orders")
			if err := orders.Insert(77777, []uint64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			if err := failpoint.Enable(site, "error(kill -9)"); err != nil {
				t.Fatal(err)
			}
			if err := db.Save(path); !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("injected crash not surfaced: %v", err)
			}
			// The destination must still be the v1 checkpoint, exactly.
			prev, err := Load(path)
			if err != nil {
				t.Fatalf("previous checkpoint unloadable after crash: %v", err)
			}
			po, err := prev.Table("orders")
			if err != nil || po.Len() != 500 {
				t.Fatalf("previous checkpoint wrong: %v len=%d", err, po.Len())
			}
			if _, err := po.Get(77777); err == nil {
				t.Fatal("crashed save leaked post-checkpoint data (stale-read hazard)")
			}
			// Clean retry recovers everything, including the new row.
			failpoint.Disable(site)
			if err := db.Save(path); err != nil {
				t.Fatal(err)
			}
			cur, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			co, _ := cur.Table("orders")
			if co.Len() != 501 {
				t.Fatalf("retry checkpoint len = %d, want 501", co.Len())
			}
			if row, err := co.Get(77777); err != nil || row[2] != 3 {
				t.Fatalf("retry checkpoint missing new row: %v %v", row, err)
			}
		})
	}
}

// TestCrashMidFirstSave: with no previous checkpoint, a crashed first Save
// must leave Load failing cleanly (file absent or ErrBadSnapshot), never a
// partial database.
func TestCrashMidFirstSave(t *testing.T) {
	for _, site := range saveCrashSites {
		defer failpoint.DisableAll()
		path := filepath.Join(t.TempDir(), "db.snap")
		db := buildSampleDB(t)
		if err := failpoint.Enable(site, "error(kill -9)"); err != nil {
			t.Fatal(err)
		}
		if err := db.Save(path); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("%s: injected crash not surfaced: %v", site, err)
		}
		failpoint.Disable(site)
		if _, err := Load(path); err == nil {
			t.Fatalf("%s: partial first save loaded", site)
		} else if !errors.Is(err, os.ErrNotExist) && !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: want clean absent/ErrBadSnapshot, got %v", site, err)
		}
	}
}

// TestSnapshotCorruptionRejected flips and truncates bytes of a valid
// snapshot; every mutation must surface as ErrBadSnapshot, not garbage.
func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	if err := buildSampleDB(t).Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip-row-byte", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"flip-header-byte", func(b []byte) []byte { b[12] ^= 0x01; return b }},
		{"truncate-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncate-footer", func(b []byte) []byte { return b[:len(b)-4] }},
		{"extend", func(b []byte) []byte { return append(b, 0, 0, 0, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name)
			if err := os.WriteFile(p, tc.mutate(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(p); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("corrupt snapshot: err = %v, want ErrBadSnapshot", err)
			}
		})
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := NewDB().Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("anything"); err == nil {
		t.Fatal("phantom table")
	}
}

// TestSnapshotFormatUnchanged constructs an ALTDB001 snapshot file byte by
// byte, exactly as previous releases wrote it (format comment at the top of
// snapshot.go, snapio CRC framing), and loads it. Internal storage-layout
// changes — like the core index's interleaved slot blocks — must never leak
// into this file format: a checkpoint taken by an older build keeps loading.
func TestSnapshotFormatUnchanged(t *testing.T) {
	var buf bytes.Buffer
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	buf.Write(snapshotMagic[:])
	w32(1) // one table
	const name = "orders"
	w32(uint32(len(name)))
	buf.WriteString(name)
	w32(2) // columns
	w32(1) // one secondary index
	w64(3) // rows
	const idx = "by_cust"
	w32(uint32(len(idx)))
	buf.WriteString(idx)
	w32(0)  // indexed column
	w32(40) // colBits
	for _, row := range [][3]uint64{{5, 50, 500}, {6, 60, 600}, {9, 90, 900}} {
		w64(row[0]) // pk
		w64(row[1])
		w64(row[2])
	}
	payload := buf.Bytes()
	framed := make([]byte, len(payload)+12)
	copy(framed, payload)
	binary.LittleEndian.PutUint64(framed[len(payload):], uint64(len(payload)))
	binary.LittleEndian.PutUint32(framed[len(payload)+8:], crc32.ChecksumIEEE(payload))

	path := filepath.Join(t.TempDir(), "old-build.snap")
	if err := os.WriteFile(path, framed, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatalf("old-format snapshot rejected: %v", err)
	}
	orders, err := db.Table("orders")
	if err != nil || orders.Len() != 3 || orders.Columns() != 2 {
		t.Fatalf("orders after load: %v len=%d", err, orders.Len())
	}
	for _, row := range [][3]uint64{{5, 50, 500}, {6, 60, 600}, {9, 90, 900}} {
		got, err := orders.Get(row[0])
		if err != nil || got[0] != row[1] || got[1] != row[2] {
			t.Fatalf("Get(%d) = %v, %v", row[0], got, err)
		}
	}
	sec, err := orders.Index("by_cust")
	if err != nil {
		t.Fatal(err)
	}
	if n := sec.SelectWhere(60, 10, func(pk uint64, row []uint64) bool {
		return pk == 6
	}); n != 1 {
		t.Fatalf("secondary lookup over old-format data: n=%d", n)
	}

	// And the re-saved checkpoint is byte-identical payload-wise modulo
	// map iteration (single table → fully deterministic here).
	resave := filepath.Join(t.TempDir(), "resave.snap")
	if err := db.Save(resave); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(resave)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, framed) {
		t.Fatalf("re-saved snapshot differs from the hand-built old format (%d vs %d bytes)", len(raw), len(framed))
	}
}
