package memdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"altindex/internal/shard"
	"altindex/internal/wal"
)

func openT(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDurableReopen: mutations survive a close/reopen cycle via log replay
// alone (no checkpoint was ever taken).
func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl := db.CreateTable("users", 2)
	const n = 500
	for pk := uint64(1); pk <= n; pk++ {
		if err := tbl.Insert(pk, []uint64{pk * 2, pk * 3}); err != nil {
			t.Fatal(err)
		}
	}
	for pk := uint64(1); pk <= n; pk += 5 {
		if err := tbl.Update(pk, []uint64{pk * 7, pk * 11}); err != nil {
			t.Fatal(err)
		}
	}
	for pk := uint64(2); pk <= n; pk += 10 {
		if err := tbl.Delete(pk); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotState(tbl, n)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openT(t, dir, Options{})
	defer db2.Close()
	if db2.ReplayedRecords() == 0 {
		t.Fatal("reopen replayed nothing")
	}
	tbl2, err := db2.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	checkState(t, tbl2, want, n)
}

// TestDurableCheckpointThenMoreWrites: recovery stitches checkpoint +
// log suffix, and the replayed count only covers the suffix.
func TestDurableCheckpointThenMoreWrites(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl := db.CreateTable("kv", 1)
	for pk := uint64(1); pk <= 300; pk++ {
		if err := tbl.Insert(pk, []uint64{pk}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: updates over checkpointed rows plus new ones.
	for pk := uint64(1); pk <= 100; pk++ {
		if err := tbl.Update(pk, []uint64{pk + 1000}); err != nil {
			t.Fatal(err)
		}
	}
	for pk := uint64(301); pk <= 400; pk++ {
		if err := tbl.Insert(pk, []uint64{pk}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	db2 := openT(t, dir, Options{})
	defer db2.Close()
	if got := db2.ReplayedRecords(); got != 200 {
		t.Fatalf("replayed %d records, want exactly the 200 post-checkpoint ones", got)
	}
	tbl2, err := db2.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 400 {
		t.Fatalf("rows after recovery = %d, want 400", tbl2.Len())
	}
	for pk := uint64(1); pk <= 100; pk++ {
		row, err := tbl2.Get(pk)
		if err != nil || row[0] != pk+1000 {
			t.Fatalf("pk %d = %v, %v; want the post-checkpoint update", pk, row, err)
		}
	}
}

// TestDurableDDLReplay: CreateTable options (shards) and secondary
// indexes come back from the log.
func TestDurableDDLReplay(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl, err := db.CreateTableWith("orders", 3, TableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_status", 1, 16); err != nil {
		t.Fatal(err)
	}
	for pk := uint64(1); pk <= 200; pk++ {
		if err := tbl.Insert(pk, []uint64{pk, pk % 5, pk * 2}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	db2 := openT(t, dir, Options{})
	defer db2.Close()
	tbl2, err := db2.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	st := tbl2.Stats()
	if st["primary_shards"] != 4 {
		t.Fatalf("shard layout lost in replay: primary_shards = %d", st["primary_shards"])
	}
	ix, err := tbl2.Index("by_status")
	if err != nil {
		t.Fatal(err)
	}
	got := ix.SelectWhere(3, 1000, func(pk uint64, row []uint64) bool { return true })
	if got != 40 {
		t.Fatalf("secondary index after replay found %d rows with status 3, want 40", got)
	}
}

// TestDurableReplayIdempotent: a snapshot published without truncating the
// log (the crash-between window) must recover to the same state — replay
// re-applies a prefix the snapshot already contains.
func TestDurableReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl := db.CreateTable("t", 1)
	for pk := uint64(1); pk <= 100; pk++ {
		if err := tbl.Insert(pk, []uint64{pk}); err != nil {
			t.Fatal(err)
		}
	}
	for pk := uint64(1); pk <= 50; pk++ {
		if err := tbl.Delete(pk); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the torn checkpoint: snapshot + meta published, log intact.
	lsn := db.WAL().LastSeq()
	if err := db.Save(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatal(err)
	}
	writeMetaT(t, dir, lsn)
	db.Close()

	db2 := openT(t, dir, Options{})
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 50 {
		t.Fatalf("double-applied replay: rows = %d, want 50", tbl2.Len())
	}
	for pk := uint64(51); pk <= 100; pk++ {
		if _, err := tbl2.Get(pk); err != nil {
			t.Fatalf("pk %d lost: %v", pk, err)
		}
	}
	for pk := uint64(1); pk <= 50; pk++ {
		if _, err := tbl2.Get(pk); err == nil {
			t.Fatalf("deleted pk %d resurrected by replay", pk)
		}
	}
}

// writeMetaT publishes a CHECKPOINT meta at lsn without truncating — the
// exact on-disk shape of a crash between snapshot publish and truncation.
func writeMetaT(t *testing.T, dir string, lsn uint64) {
	t.Helper()
	if err := writeCheckpointMeta(dir, checkpointMeta{LSN: lsn, HasSnapshot: true}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableConcurrentWriters: concurrent committed writes all survive
// recovery (the group-commit path under contention).
func TestDurableConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{WAL: wal.Options{Sync: wal.SyncAlways}})
	tbl := db.CreateTable("c", 1)
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pk := uint64(w*per + i + 1)
				if err := tbl.Insert(pk, []uint64{pk * 2}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := db.WAL().Stats()
	db.Close()

	if st.Appends < writers*per {
		t.Fatalf("wal saw %d appends, want ≥ %d", st.Appends, writers*per)
	}
	db2 := openT(t, dir, Options{})
	defer db2.Close()
	tbl2, err := db2.Table("c")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != writers*per {
		t.Fatalf("recovered %d rows, want %d", tbl2.Len(), writers*per)
	}
	for pk := uint64(1); pk <= writers*per; pk++ {
		row, err := tbl2.Get(pk)
		if err != nil || row[0] != pk*2 {
			t.Fatalf("pk %d = %v, %v", pk, row, err)
		}
	}
}

// TestDurableCorruptMetaRefuses: a corrupt CHECKPOINT file refuses to open
// rather than silently starting empty over a directory that has data.
func TestDurableCorruptMetaRefuses(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl := db.CreateTable("t", 1)
	tbl.Insert(1, []uint64{1})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	meta := filepath.Join(dir, metaFileName)
	raw, err := os.ReadFile(meta)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(meta, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("open over corrupt meta: %v, want ErrBadSnapshot", err)
	}
}

// TestDurableMissingSnapshotRefuses: meta says a snapshot exists but the
// file is gone — opening must fail, not lose the checkpointed data.
func TestDurableMissingSnapshotRefuses(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl := db.CreateTable("t", 1)
	tbl.Insert(1, []uint64{1})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := os.Remove(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open succeeded with the checkpoint snapshot missing")
	}
}

// TestNonDurableNoops: a NewDB database takes the zero-cost paths and
// Checkpoint reports ErrNotDurable.
func TestNonDurableNoops(t *testing.T) {
	db := NewDB()
	defer db.Close()
	tbl := db.CreateTable("t", 1)
	if err := tbl.Insert(1, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on in-memory db: %v, want ErrNotDurable", err)
	}
	if db.WAL() != nil {
		t.Fatal("in-memory db reports a WAL")
	}
}

// snapshotState captures pk -> row for comparison across recovery.
func snapshotState(tbl *Table, maxPK uint64) map[uint64][]uint64 {
	state := map[uint64][]uint64{}
	for pk := uint64(0); pk <= maxPK; pk++ {
		if row, err := tbl.Get(pk); err == nil {
			state[pk] = row
		}
	}
	return state
}

func checkState(t *testing.T, tbl *Table, want map[uint64][]uint64, maxPK uint64) {
	t.Helper()
	if tbl.Len() != len(want) {
		t.Fatalf("recovered %d rows, want %d", tbl.Len(), len(want))
	}
	for pk := uint64(0); pk <= maxPK; pk++ {
		row, err := tbl.Get(pk)
		wantRow, ok := want[pk]
		if ok != (err == nil) {
			t.Fatalf("pk %d presence mismatch after recovery (want present=%v, err=%v)", pk, ok, err)
		}
		if ok {
			if fmt.Sprint(row) != fmt.Sprint(wantRow) {
				t.Fatalf("pk %d = %v, want %v", pk, row, wantRow)
			}
		}
	}
}

// TestDurableRebalanceReplay: a rebalanced sharded primary's boundary
// layout is WAL-logged and reproduced by recovery — the recRebalance
// record round-trips through close/reopen.
func TestDurableRebalanceReplay(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	tbl, err := db.CreateTableWith("events", 1, TableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for pk := uint64(1); pk <= n; pk++ {
		if err := tbl.Insert(pk*16, []uint64{pk}); err != nil {
			t.Fatal(err)
		}
	}

	// Force a migration the way the controller would; the OnRebalance
	// hook must log the new layout durably.
	sh := tbl.primary.(*shard.ALT)
	if err := sh.SplitShard(0); err != nil {
		t.Fatal(err)
	}
	wantBounds := sh.Bounds()
	if len(wantBounds) != 4 {
		t.Fatalf("got %d bounds after split, want 4", len(wantBounds))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openT(t, dir, Options{})
	defer db2.Close()
	tbl2, err := db2.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	sh2, ok := tbl2.primary.(*shard.ALT)
	if !ok {
		t.Fatal("replayed table is not sharded")
	}
	gotBounds := sh2.Bounds()
	if len(gotBounds) != len(wantBounds) {
		t.Fatalf("replayed %d bounds, want %d", len(gotBounds), len(wantBounds))
	}
	for i := range wantBounds {
		if gotBounds[i] != wantBounds[i] {
			t.Fatalf("bound %d = %d, want %d (layout not reproduced)", i, gotBounds[i], wantBounds[i])
		}
	}
	for pk := uint64(1); pk <= n; pk++ {
		row, err := tbl2.Get(pk * 16)
		if err != nil || row[0] != pk {
			t.Fatalf("Get(%d) = (%v, %v), want [%d]", pk*16, row, err, pk)
		}
	}
}
