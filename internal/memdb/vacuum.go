package memdb

import "altindex/internal/failpoint"

// fpVacuumBatch fires once per copy batch; armed with delay/yield it
// stretches the arena rebuild window.
var fpVacuumBatch = failpoint.New("memdb/vacuum/batch")

// Vacuum reclaims row versions orphaned by updates and deletes by
// rebuilding the row arena from the live rows. The table must be quiescent
// (no concurrent operations) for the duration — it is a maintenance
// operation, not a hot-path one.
//
// Returns the number of row slots reclaimed.
func (t *Table) Vacuum() int {
	dead := int(t.deadHandle.Load())
	if dead == 0 {
		return 0
	}
	fresh := newArenaOn(t.columns, t.rows.pool)
	// Walk the primary index in batches, copying live rows into the
	// fresh arena and repointing their handles.
	start := uint64(0)
	for {
		const batch = 1024
		fpVacuumBatch.Inject()
		type repoint struct {
			pk uint64
			h  uint64
		}
		var moves []repoint
		var last uint64
		n := 0
		t.primary.Scan(start, batch, func(pk, h uint64) bool {
			last = pk
			n++
			moves = append(moves, repoint{pk, fresh.alloc(t.rows.read(h))})
			return true
		})
		for _, mv := range moves {
			t.primary.Update(mv.pk, mv.h)
		}
		if n < batch || last == ^uint64(0) {
			break
		}
		start = last + 1
	}
	old := t.rows
	t.rows = fresh
	old.drop() // quiescent: chunks go straight back to the shared pool
	t.deadHandle.Store(0)
	return dead
}
