package memdb

import (
	"sync"
	"sync/atomic"

	marena "altindex/internal/arena"
)

// arena is an append-only chunked row store. A handle is a dense row id;
// rows are immutable once written (updates allocate a new version), so
// concurrent readers need no locks once they hold a handle. Freed versions
// are recycled through a free list.
//
// Chunk storage comes from a shared internal/arena pool of pointer-free
// uint64 spans: the collector never scans row data, and Vacuum's retired
// generation returns its chunks to the pool for the next generation to
// reuse instead of re-growing the heap.
const arenaChunkRows = 4096

type arena struct {
	width int                   // uint64s per row
	pool  *marena.Arena[uint64] // backing span allocator, shared across Vacuum generations

	mu     sync.Mutex
	chunkV atomic.Pointer[[]*chunk]
	next   atomic.Uint64
	free   []uint64
}

type chunk struct {
	rows []uint64 // arenaChunkRows * width, aliases span
	span marena.Span[uint64]
}

func newArena(width int) *arena {
	return newArenaOn(width, marena.New[uint64](arenaChunkRows*width))
}

// newArenaOn builds a row arena drawing chunks from an existing pool —
// Vacuum uses it so the fresh generation recycles the chunks the retired
// one releases.
func newArenaOn(width int, pool *marena.Arena[uint64]) *arena {
	a := &arena{width: width, pool: pool}
	chunks := make([]*chunk, 0, 8)
	a.chunkV.Store(&chunks)
	return a
}

// alloc writes row into a fresh (or recycled) slot and returns its handle.
func (a *arena) alloc(row []uint64) uint64 {
	a.mu.Lock()
	var h uint64
	if n := len(a.free); n > 0 {
		h = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		h = a.next.Add(1) - 1
		chunks := *a.chunkV.Load()
		need := int(h/arenaChunkRows) + 1
		if need > len(chunks) {
			grown := make([]*chunk, need)
			copy(grown, chunks)
			for i := len(chunks); i < need; i++ {
				sp := a.pool.Alloc(arenaChunkRows * a.width)
				grown[i] = &chunk{rows: sp.Data(), span: sp}
			}
			a.chunkV.Store(&grown)
		}
	}
	c := (*a.chunkV.Load())[h/arenaChunkRows]
	off := int(h%arenaChunkRows) * a.width
	copy(c.rows[off:off+a.width], row)
	a.mu.Unlock()
	return h
}

// read returns a copy of the row at handle h.
func (a *arena) read(h uint64) []uint64 {
	c := (*a.chunkV.Load())[h/arenaChunkRows]
	off := int(h%arenaChunkRows) * a.width
	out := make([]uint64, a.width)
	copy(out, c.rows[off:off+a.width])
	return out
}

// release returns a handle to the free list (the caller guarantees no
// reader can still resolve it through an index).
func (a *arena) release(h uint64) {
	a.mu.Lock()
	a.free = append(a.free, h)
	a.mu.Unlock()
}

// drop returns every chunk to the backing pool. Only legal under Vacuum's
// quiescence contract: no reader may still resolve handles through this
// generation, because the pool may hand the memory straight back out.
func (a *arena) drop() {
	chunks := *a.chunkV.Load()
	for _, c := range chunks {
		c.span.Release()
		c.rows = nil
	}
	empty := make([]*chunk, 0)
	a.chunkV.Store(&empty)
}

func (a *arena) chunks() int { return len(*a.chunkV.Load()) }

func (a *arena) memory() uintptr {
	return uintptr(a.chunks()) * uintptr(arenaChunkRows*a.width*8)
}
