package memdb

import (
	"sync"
	"sync/atomic"
)

// arena is an append-only chunked row store. A handle is a dense row id;
// rows are immutable once written (updates allocate a new version), so
// concurrent readers need no locks once they hold a handle. Freed versions
// are recycled through a free list.
const arenaChunkRows = 4096

type arena struct {
	width int // uint64s per row

	mu     sync.Mutex
	chunkV atomic.Pointer[[]*chunk]
	next   atomic.Uint64
	free   []uint64
}

type chunk struct {
	rows []uint64 // arenaChunkRows * width
}

func newArena(width int) *arena {
	a := &arena{width: width}
	chunks := make([]*chunk, 0, 8)
	a.chunkV.Store(&chunks)
	return a
}

// alloc writes row into a fresh (or recycled) slot and returns its handle.
func (a *arena) alloc(row []uint64) uint64 {
	a.mu.Lock()
	var h uint64
	if n := len(a.free); n > 0 {
		h = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		h = a.next.Add(1) - 1
		chunks := *a.chunkV.Load()
		need := int(h/arenaChunkRows) + 1
		if need > len(chunks) {
			grown := make([]*chunk, need)
			copy(grown, chunks)
			for i := len(chunks); i < need; i++ {
				grown[i] = &chunk{rows: make([]uint64, arenaChunkRows*a.width)}
			}
			a.chunkV.Store(&grown)
		}
	}
	c := (*a.chunkV.Load())[h/arenaChunkRows]
	off := int(h%arenaChunkRows) * a.width
	copy(c.rows[off:off+a.width], row)
	a.mu.Unlock()
	return h
}

// read returns a copy of the row at handle h.
func (a *arena) read(h uint64) []uint64 {
	c := (*a.chunkV.Load())[h/arenaChunkRows]
	off := int(h%arenaChunkRows) * a.width
	out := make([]uint64, a.width)
	copy(out, c.rows[off:off+a.width])
	return out
}

// release returns a handle to the free list (the caller guarantees no
// reader can still resolve it through an index).
func (a *arena) release(h uint64) {
	a.mu.Lock()
	a.free = append(a.free, h)
	a.mu.Unlock()
}

func (a *arena) chunks() int { return len(*a.chunkV.Load()) }

func (a *arena) memory() uintptr {
	return uintptr(a.chunks()) * uintptr(arenaChunkRows*a.width*8)
}
