package memdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildSnapshot saves a small but structurally complete database snapshot
// (two tables, deletions, updates) and returns its bytes.
func buildSnapshot(t *testing.T) []byte {
	t.Helper()
	db := NewDB()
	defer db.Close()
	a := db.CreateTable("alpha", 2)
	b := db.CreateTable("beta", 1)
	for pk := uint64(1); pk <= 120; pk++ {
		if err := a.Insert(pk, []uint64{pk * 3, pk * 5}); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(pk, []uint64{pk}); err != nil {
			t.Fatal(err)
		}
	}
	for pk := uint64(1); pk <= 120; pk += 4 {
		if err := a.Delete(pk); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// loadMutated writes a mutated snapshot and asserts Load rejects it with
// ErrBadSnapshot and never returns a partially loaded database.
func loadMutated(t *testing.T, path string, raw []byte, what string) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err == nil {
		t.Fatalf("%s: corrupt snapshot loaded without error", what)
	}
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("%s: got %v, want an error wrapping ErrBadSnapshot", what, err)
	}
	if db != nil {
		t.Fatalf("%s: Load returned a partially loaded database alongside its error", what)
	}
}

// TestSnapshotTruncatedTailFuzz cuts the snapshot at every byte offset —
// the on-disk shapes a crash mid-write (without snapio's atomic rename)
// or a torn copy could produce — and requires a clean ErrBadSnapshot for
// each, never a partial load.
func TestSnapshotTruncatedTailFuzz(t *testing.T) {
	raw := buildSnapshot(t)
	path := filepath.Join(t.TempDir(), "cut.snap")
	for n := 0; n < len(raw); n++ {
		loadMutated(t, path, raw[:n], "truncated")
	}
}

// TestSnapshotBitFlipFuzz flips one bit in every byte of the snapshot —
// header, table directory, row payload and CRC footer alike — and
// requires each mutation to be rejected. The snapio CRC32 frame is what
// makes this hold for payload bytes; the structural validators cover the
// footer itself.
func TestSnapshotBitFlipFuzz(t *testing.T) {
	raw := buildSnapshot(t)
	path := filepath.Join(t.TempDir(), "flip.snap")
	mut := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		copy(mut, raw)
		mut[i] ^= 1 << (i % 8)
		loadMutated(t, path, mut, "bit-flipped")
	}
}
