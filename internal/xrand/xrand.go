// Package xrand provides a tiny deterministic PRNG (splitmix64) and a
// Zipfian generator, used by the dataset and workload generators so that
// every experiment is reproducible from its seed regardless of math/rand
// version changes.
package xrand

import "math"

// Rng is a splitmix64 PRNG. The zero value is usable but fixed-seeded;
// prefer New.
type Rng struct{ s uint64 }

// New returns an Rng seeded with seed (a zero seed is replaced with a fixed
// non-zero constant).
func New(seed uint64) *Rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rng{s: seed}
}

// Next returns the next 64 random bits.
func (r *Rng) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0,n). Uint64n(0) is 0.
func (r *Rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Next() % n
}

// Intn returns a uniform int in [0,n). Intn(n<=0) is 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float returns a uniform float64 in [0,1).
func (r *Rng) Float() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Exp returns an Exp(1) variate.
func (r *Rng) Exp() float64 { return -math.Log(1 - r.Float()) }

// Norm returns a standard normal variate (Box-Muller).
func (r *Rng) Norm() float64 {
	u1 := r.Float()
	for u1 == 0 {
		u1 = r.Float()
	}
	u2 := r.Float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// HashString returns a 64-bit FNV-1a hash, handy for deriving sub-seeds.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Zipf generates Zipfian-distributed ranks in [0,n) with parameter theta,
// using the Gray et al. (SIGMOD '94) algorithm — the same generator YCSB
// uses. Rank 0 is the most popular item. Zipf itself is immutable after
// construction and safe for concurrent use with per-goroutine Rngs.
type Zipf struct {
	n       uint64
	theta   float64
	alpha   float64
	zetan   float64
	eta     float64
	zeta2th float64
}

// NewZipf precomputes the harmonic terms for n items with parameter theta
// (theta must be in (0,1) ∪ (1,∞); 0.99 is the paper's default). Setup is
// O(n).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		n = 1
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2th = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2th/z.zetan)
	return z
}

// Rank draws a Zipfian rank in [0,n) using r.
func (z *Zipf) Rank(r *Rng) uint64 {
	u := r.Float()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}
