package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(5), New(5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Next() == New(2).Next() {
		t.Fatal("different seeds coincide on first draw")
	}
	if New(0).Next() != New(0).Next()-0 && false {
		t.Fatal("unreachable")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed produced zeros")
	}
}

func TestFloatRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(9)
	if r.Uint64n(0) != 0 {
		t.Fatal("Uint64n(0) != 0")
	}
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("norm mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("norm variance %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean %v", mean)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	const n = 10000
	z := NewZipf(n, 0.99)
	r := New(17)
	counts := make([]int, 10)
	const draws = 200000
	topDecile := 0
	for i := 0; i < draws; i++ {
		rank := z.Rank(r)
		if rank >= n {
			t.Fatalf("rank %d out of range", rank)
		}
		if rank < n/10 {
			topDecile++
		}
		if rank < 10 {
			counts[rank]++
		}
	}
	// With θ=0.99 the top 10% of ranks should absorb well over half the
	// draws, and rank 0 must dominate rank 9.
	if float64(topDecile)/draws < 0.5 {
		t.Fatalf("top decile only %.3f of draws", float64(topDecile)/draws)
	}
	if counts[0] <= counts[9] {
		t.Fatalf("rank 0 (%d) not hotter than rank 9 (%d)", counts[0], counts[9])
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 0.99) // clamps to 1 item
	r := New(19)
	for i := 0; i < 100; i++ {
		if z.Rank(r) != 0 {
			t.Fatal("single-item zipf must return 0")
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("osm") != HashString("osm") {
		t.Fatal("hash unstable")
	}
	if HashString("osm") == HashString("fb") {
		t.Fatal("hash collision on test inputs")
	}
}

func TestQuickUint64nAlwaysBelow(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			return New(seed).Uint64n(0) == 0
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
