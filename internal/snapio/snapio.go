// Package snapio implements crash-safe snapshot file I/O, shared by the
// memdb checkpointer and the altdb server's shutdown snapshot.
//
// Failure model: the process can die (kill -9, OOM, power) at any
// instruction. A reader must then observe either the previous complete
// snapshot or a detectably-bad file — never a torn or silently-stale one.
// WriteFile guarantees this with the classic sequence:
//
//  1. write the payload to <path>.tmp in the destination directory (same
//     filesystem, so the final rename is atomic),
//  2. append a CRC32 (IEEE) footer over the payload bytes,
//  3. fsync the temp file (data durable before it can be named),
//  4. rename over the destination (atomic on POSIX),
//  5. fsync the directory (the rename itself durable).
//
// On any failure WriteFile leaves the temp file behind on purpose: an
// injected failure is then byte-identical on disk to a real crash at that
// point, which is what the chaos suite relies on. A stale .tmp never
// shadows the real snapshot — readers only ever open the destination path.
//
// ReadFile verifies length and checksum before handing back the payload,
// so truncation and bit rot surface as ErrCorrupt instead of garbage.
package snapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"altindex/internal/failpoint"
)

// ErrCorrupt reports a snapshot file that is truncated, torn or bit-rotted
// (missing or mismatched CRC footer).
var ErrCorrupt = errors.New("snapio: corrupt or truncated snapshot file")

// Failpoint sites: each simulates a crash at one edge of the write
// sequence above. Armed with an error action they abort WriteFile exactly
// where a real crash would, leaving the same on-disk state.
var (
	fpFlush  = failpoint.New("snapio/flush")  // after payload, before footer+flush
	fpSync   = failpoint.New("snapio/sync")   // after flush, before fsync
	fpRename = failpoint.New("snapio/rename") // after fsync, before rename
)

// crcWriter tees writes into a running CRC32.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
	n int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.h.Write(p[:n])
	c.n += int64(n)
	return n, err
}

// WriteFile atomically replaces path with the payload produced by write,
// framed with a CRC32 footer. See the package comment for the crash
// guarantees; on error the destination is untouched.
func WriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// On failure the temp file is deliberately left in place (see the
	// package comment); only the descriptor is cleaned up.
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<16), h: crc32.NewIEEE()}
	if err := write(cw); err != nil {
		f.Close()
		return err
	}
	if err := fpFlush.InjectErr(); err != nil {
		f.Close()
		return err
	}
	// Footer: payload length then CRC, both outside the checksummed span.
	var footer [12]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(cw.n))
	binary.LittleEndian.PutUint32(footer[8:], cw.h.Sum32())
	if _, err := cw.w.Write(footer[:]); err != nil {
		f.Close()
		return err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		f.Close()
		return err
	}
	if err := fpSync.InjectErr(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fpRename.InjectErr(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir makes a completed rename durable. Best effort: some filesystems
// refuse fsync on directories, and by this point the snapshot is already
// consistent (worst case the rename replays to the old name after power
// loss, which the failure model allows).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// ReadFile reads path and verifies the CRC32 footer, returning the payload
// bytes. Truncated, torn or corrupt files return ErrCorrupt.
func ReadFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the footer", ErrCorrupt, len(raw))
	}
	body := raw[:len(raw)-12]
	footer := raw[len(raw)-12:]
	if n := binary.LittleEndian.Uint64(footer[0:]); n != uint64(len(body)) {
		return nil, fmt.Errorf("%w: footer length %d, payload %d", ErrCorrupt, n, len(body))
	}
	if c := binary.LittleEndian.Uint32(footer[8:]); c != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body, nil
}
