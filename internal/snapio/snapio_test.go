package snapio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"altindex/internal/failpoint"
)

func writeBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	payload := bytes.Repeat([]byte("altindex"), 10000)
	if err := WriteFile(path, writeBytes(payload)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	// The temp file must be gone after a successful write.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left after success: %v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := WriteFile(path, writeBytes(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	payload := bytes.Repeat([]byte{7}, 4096)
	if err := WriteFile(path, writeBytes(payload)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bitflip-body":   append([]byte{}, raw...),
		"bitflip-footer": append([]byte{}, raw...),
		"truncated-half": raw[:len(raw)/2],
		"truncated-1":    raw[:len(raw)-1],
		"tiny":           raw[:5],
		"empty":          {},
	}
	cases["bitflip-body"][100] ^= 1
	cases["bitflip-footer"][len(raw)-2] ^= 1
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestWriterErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	boom := errors.New("boom")
	if err := WriteFile(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("destination created despite writer error")
	}
}

// TestCrashAtEverySite injects a failure at each write-sequence edge and
// checks the crash contract: the previous snapshot stays readable, the temp
// file (the simulated crash residue) never shadows it, and a clean retry
// fully recovers.
func TestCrashAtEverySite(t *testing.T) {
	for _, site := range []string{"snapio/flush", "snapio/sync", "snapio/rename"} {
		t.Run(filepath.Base(site), func(t *testing.T) {
			defer failpoint.DisableAll()
			path := filepath.Join(t.TempDir(), "x.snap")
			v1 := []byte("version-1 payload")
			if err := WriteFile(path, writeBytes(v1)); err != nil {
				t.Fatal(err)
			}
			if err := failpoint.Enable(site, "error(crash)"); err != nil {
				t.Fatal(err)
			}
			v2 := bytes.Repeat([]byte("version-2"), 1000)
			err := WriteFile(path, writeBytes(v2))
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("injected crash not surfaced: %v", err)
			}
			// Crash residue: destination still the previous snapshot.
			got, err := ReadFile(path)
			if err != nil || !bytes.Equal(got, v1) {
				t.Fatalf("after crash: %q, %v — previous snapshot lost", got, err)
			}
			// The interrupted temp file is crash-equivalent: present and
			// (for pre-sync crashes) not a valid snapshot to ReadFile.
			if _, statErr := os.Stat(path + ".tmp"); statErr != nil {
				t.Fatalf("crash residue missing: %v", statErr)
			}
			failpoint.Disable(site)
			if err := WriteFile(path, writeBytes(v2)); err != nil {
				t.Fatal(err)
			}
			if got, err := ReadFile(path); err != nil || !bytes.Equal(got, v2) {
				t.Fatalf("retry after crash: %q, %v", got, err)
			}
		})
	}
}

// TestCrashResidueUnreadable: a crash before the footer leaves a temp file
// that, if ever read as a snapshot, fails verification rather than parsing
// as stale data.
func TestCrashResidueUnreadable(t *testing.T) {
	defer failpoint.DisableAll()
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := failpoint.Enable("snapio/flush", "error(crash)"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 1<<17) // > one bufio flush, so bytes reach disk
	if err := WriteFile(path, writeBytes(payload)); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if fi, err := os.Stat(path + ".tmp"); err != nil || fi.Size() == 0 {
		t.Fatalf("expected partial temp residue, got %v", err)
	}
	if _, err := ReadFile(path + ".tmp"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial residue read as valid: %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func ExampleWriteFile() {
	path := filepath.Join(os.TempDir(), "example.snap")
	_ = WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	})
	b, _ := ReadFile(path)
	fmt.Println(string(b))
	// Output: hello
}
