package finedex

import (
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/workload"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Concurrent { return New() })
}

func TestInsertsFillLevelBins(t *testing.T) {
	ix := New()
	keys := dataset.Generate(dataset.Libio, 20000, 1)
	loaded, pending := workload.SplitLoad(keys, 0.5, 2)
	if err := ix.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	for _, k := range pending {
		_ = ix.Insert(k, dataset.ValueFor(k))
	}
	st := ix.StatsMap()
	if st["bins"] == 0 || st["bin_keys"] == 0 {
		t.Fatalf("inserts did not populate level bins: %v", st)
	}
	if st["bin_keys"] != int64(len(pending)) {
		t.Fatalf("bin_keys=%d want %d", st["bin_keys"], len(pending))
	}
}

func TestModelsFromLPA(t *testing.T) {
	ix := New()
	keys := dataset.Generate(dataset.OSM, 30000, 3)
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	if ix.StatsMap()["models"] < 2 {
		t.Fatal("osm should need multiple LPA models")
	}
}
