package finedex

import (
	"math/rand"
	"testing"

	"altindex/internal/dataset"
)

func TestLocateWindowAndWiden(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 3000, 1)
	ix := New()
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	tb := ix.tab.Load()
	for _, k := range keys {
		m := tb.find(k)
		i, ok := m.locate(k)
		if !ok || m.keys[i] != k {
			t.Fatalf("locate(%d) failed", k)
		}
	}
	// Runtime keys outside the training set must locate their insertion
	// point even when the error window misses.
	for i := 1; i < len(keys); i += 100 {
		if gap := keys[i] - keys[i-1]; gap > 2 {
			probe := keys[i-1] + gap/2
			m := tb.find(probe)
			if _, ok := m.locate(probe); ok {
				t.Fatalf("phantom located: %d", probe)
			}
		}
	}
}

func TestBinGrowsByLevels(t *testing.T) {
	ix := New()
	if err := ix.Bulkload(dataset.KVs(dataset.Libio, 100, 2)); err != nil {
		t.Fatal(err)
	}
	tb := ix.tab.Load()
	m := tb.models[0]
	b := m.ensureBin(1)
	if len(b.keys) != binLevel0 {
		t.Fatalf("level-0 cap = %d", len(b.keys))
	}
	// Fill past several levels through the public path.
	base := m.keys[0]
	var inserted []uint64
	for i := 0; i < 37; i++ {
		k := base*1000000 + uint64(i)*2 + 1
		_ = ix.Insert(k, k)
		inserted = append(inserted, k)
	}
	for _, k := range inserted {
		if v, ok := ix.Get(k); !ok || v != k {
			t.Fatalf("bin key %d lost (%d,%v)", k, v, ok)
		}
	}
}

func TestTombstonesInArrayAndBin(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 500, 3)
	ix := New()
	if err := ix.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	// Array tombstone + revive via insert.
	if !ix.Remove(keys[10]) {
		t.Fatal("remove array key")
	}
	if _, ok := ix.Get(keys[10]); ok {
		t.Fatal("dead key visible")
	}
	_ = ix.Insert(keys[10], 777)
	if v, ok := ix.Get(keys[10]); !ok || v != 777 {
		t.Fatal("revive failed")
	}
	// Bin tombstone.
	fresh := keys[len(keys)-1] + 5
	_ = ix.Insert(fresh, 1)
	if !ix.Remove(fresh) {
		t.Fatal("remove bin key")
	}
	if _, ok := ix.Get(fresh); ok {
		t.Fatal("dead bin key visible")
	}
	if ix.Remove(fresh) {
		t.Fatal("double remove of bin key")
	}
}

func TestBinInOrder(t *testing.T) {
	ix := New()
	if err := ix.Bulkload(dataset.KVs(dataset.Libio, 50, 4)); err != nil {
		t.Fatal(err)
	}
	tb := ix.tab.Load()
	m := tb.models[0]
	b := m.ensureBin(0)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		b.put(m, 0, uint64(r.Intn(10000)), 1)
	}
	// The bin pointer may have been swapped by growth.
	b = m.binAt(0)
	var prev uint64
	n := 0
	b.inOrder(func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("bin out of order: %d <= %d", k, prev)
		}
		prev = k
		n++
		return true
	})
	if n == 0 {
		t.Fatal("empty iteration")
	}
}
