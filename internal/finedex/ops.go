package finedex

import "altindex/internal/index"

// Insert stores key/value (upsert). A key already in the trained array is
// updated (or revived) in place; everything else lands in the level bin of
// its insertion point, growing the bin level by level.
func (ix *Index) Insert(key, value uint64) error {
	tb := ix.tab.Load()
	if tb == nil {
		// No bulkload yet: behave as a single empty model.
		ix.Bulkload(nil)
		tb = ix.tab.Load()
	}
	m := tb.find(key)
	if i, ok := m.locate(key); ok {
		wasDead := m.isDead(i)
		m.vals[i].Store(value)
		if wasDead {
			m.setDead(i, false)
			ix.size.Add(1)
		}
		return nil
	} else {
		b := m.ensureBin(i)
		if added := b.put(m, i, key, value); added {
			ix.size.Add(1)
		}
	}
	return nil
}

// ensureBin returns the bin at insertion point i, creating the level-0 bin
// on first use.
func (m *fmodel) ensureBin(i int) *bin {
	if i < 0 {
		i = 0
	}
	if i >= len(m.bins) {
		i = len(m.bins) - 1
	}
	slot := &m.bins[i]
	for {
		if b := slot.Load(); b != nil {
			return b
		}
		b := newBin(binLevel0)
		if slot.CompareAndSwap(nil, b) {
			return b
		}
	}
}

// put inserts into the bin, growing it to the next level when full. The
// model's bin pointer is swapped to the grown copy under the bin lock.
func (b *bin) put(m *fmodel, slot int, key, value uint64) (added bool) {
	for {
		b.mu.Lock()
		// The bin may have been superseded by a grown copy.
		if cur := m.bins[clampBin(slot, len(m.bins))].Load(); cur != b {
			b.mu.Unlock()
			b = cur
			continue
		}
		n := int(b.n.Load())
		// Upsert in place.
		for i := 0; i < n; i++ {
			if b.keys[i].Load() == key {
				b.ver.Add(1)
				b.vals[i].Store(value)
				revived := b.deleted[i].Load() != 0
				b.deleted[i].Store(0)
				b.ver.Add(1)
				b.mu.Unlock()
				return revived
			}
		}
		if n == len(b.keys) {
			// Level full: grow to the next level (double capacity),
			// keeping entries sorted.
			big := newBin(len(b.keys) * 2)
			for i := 0; i < n; i++ {
				big.keys[i].Store(b.keys[i].Load())
				big.vals[i].Store(b.vals[i].Load())
				big.deleted[i].Store(b.deleted[i].Load())
			}
			big.n.Store(int32(n))
			m.bins[clampBin(slot, len(m.bins))].Store(big)
			b.mu.Unlock()
			b = big
			continue
		}
		// Sorted insert.
		pos := 0
		for pos < n && b.keys[pos].Load() < key {
			pos++
		}
		b.ver.Add(1)
		for i := n; i > pos; i-- {
			b.keys[i].Store(b.keys[i-1].Load())
			b.vals[i].Store(b.vals[i-1].Load())
			b.deleted[i].Store(b.deleted[i-1].Load())
		}
		b.keys[pos].Store(key)
		b.vals[pos].Store(value)
		b.deleted[pos].Store(0)
		b.n.Store(int32(n + 1))
		b.ver.Add(1)
		b.mu.Unlock()
		return true
	}
}

func clampBin(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Update overwrites the value of an existing key.
func (ix *Index) Update(key, value uint64) bool {
	tb := ix.tab.Load()
	if tb == nil {
		return false
	}
	m := tb.find(key)
	if i, ok := m.locate(key); ok {
		if m.isDead(i) {
			return false
		}
		m.vals[i].Store(value)
		return true
	} else if b := m.binAt(i); b != nil {
		return b.mutate(m, i, key, func(b *bin, bi int) { b.vals[bi].Store(value) })
	}
	return false
}

// Remove deletes key via the tombstone bitmap (trained array) or the bin's
// deletion flag.
func (ix *Index) Remove(key uint64) bool {
	tb := ix.tab.Load()
	if tb == nil {
		return false
	}
	m := tb.find(key)
	if i, ok := m.locate(key); ok {
		if m.isDead(i) {
			return false
		}
		m.setDead(i, true)
		ix.size.Add(-1)
		return true
	} else if b := m.binAt(i); b != nil {
		if b.mutate(m, i, key, func(b *bin, bi int) { b.deleted[bi].Store(1) }) {
			ix.size.Add(-1)
			return true
		}
	}
	return false
}

// mutate applies fn to the live entry holding key under the bin lock. Like
// put, it must re-check the model's bin pointer after locking: a concurrent
// put may have grown the bin and published a copy, and a mutation applied
// to the superseded bin would be silently lost in the live one.
func (b *bin) mutate(m *fmodel, slot int, key uint64, fn func(b *bin, i int)) bool {
	for {
		b.mu.Lock()
		if cur := m.bins[clampBin(slot, len(m.bins))].Load(); cur != b {
			b.mu.Unlock()
			b = cur
			continue
		}
		n := int(b.n.Load())
		for i := 0; i < n; i++ {
			if b.keys[i].Load() == key {
				if b.deleted[i].Load() != 0 {
					b.mu.Unlock()
					return false
				}
				b.ver.Add(1)
				fn(b, i)
				b.ver.Add(1)
				b.mu.Unlock()
				return true
			}
		}
		b.mu.Unlock()
		return false
	}
}

// Scan visits up to max pairs with keys >= start in ascending order,
// merging each model's trained array with its level bins.
func (ix *Index) Scan(start uint64, max int, fn func(uint64, uint64) bool) int {
	if max <= 0 {
		return 0
	}
	tb := ix.tab.Load()
	if tb == nil {
		return 0
	}
	// Locate the starting model.
	mi := 0
	for mi+1 < len(tb.firsts) && tb.firsts[mi+1] <= start {
		mi++
	}
	emitted := 0
	for ; mi < len(tb.models) && emitted < max; mi++ {
		m := tb.models[mi]
		i, _ := m.locate(start)
		// Emit bin i first (keys before keys[i]), then keys[i], then
		// bin i+1, ... each bin b holds keys in (keys[b-1], keys[b]).
		for pos := i; pos <= len(m.keys) && emitted < max; pos++ {
			if b := m.binAt(pos); b != nil {
				stop := false
				b.inOrder(func(k, v uint64) bool {
					if k >= start {
						emitted++
						if !fn(k, v) {
							stop = true
							return false
						}
					}
					return emitted < max
				})
				if stop {
					return emitted
				}
			}
			if pos < len(m.keys) && emitted < max {
				k := m.keys[pos]
				if k >= start && !m.isDead(pos) {
					emitted++
					if !fn(k, m.vals[pos].Load()) {
						return emitted
					}
				}
			}
		}
	}
	return emitted
}

// inOrder visits the bin's live entries in key order under the seqlock.
func (b *bin) inOrder(fn func(k, v uint64) bool) {
	var snapshot []index.KV
	for {
		snapshot = snapshot[:0]
		v := b.ver.Load()
		if v&1 != 0 {
			continue
		}
		n := int(b.n.Load())
		for i := 0; i < n && i < len(b.keys); i++ {
			if b.deleted[i].Load() == 0 {
				snapshot = append(snapshot, index.KV{Key: b.keys[i].Load(), Value: b.vals[i].Load()})
			}
		}
		if b.ver.Load() == v {
			break
		}
	}
	for _, kv := range snapshot {
		if !fn(kv.Key, kv.Value) {
			return
		}
	}
}
