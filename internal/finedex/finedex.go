// Package finedex reimplements FINEdex (Li et al., VLDB 2021) — a baseline
// in the ALT-index paper — with the behaviours that drive its benchmark
// profile:
//
//   - models trained by the Learning Probe Algorithm (LPA) over the bulk
//     data, kept in a flat sorted directory,
//   - bounded secondary search: a lookup predicts a position and binary
//     searches within the model's error bound (the prediction-error cost
//     the paper's Fig 3b sweeps),
//   - fine-grained per-slot delta buffers ("level bins") that absorb all
//     runtime inserts; bins grow level by level and degrade lookups and
//     memory as they fill (Fig 7/8a).
//
// The trained arrays are immutable, so reads touch them lock-free; only
// bins take locks, giving FINEdex its good read scalability but
// write-buffer-bound insert path.
package finedex

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"altindex/internal/gpl"
	"altindex/internal/index"
)

const defaultErrBound = 32 // the error bound FINEdex's paper recommends

// Index is a concurrent FINEdex-style learned index.
type Index struct {
	tab  atomic.Pointer[table]
	size atomic.Int64
	// ErrBound is the training error bound; set before Bulkload
	// (defaults to 32).
	ErrBound int
}

type table struct {
	firsts []uint64
	models []*fmodel
}

// fmodel is one trained model: an immutable sorted key array with a linear
// fit of bounded error, per-slot tombstones, and per-slot level bins.
type fmodel struct {
	seg  gpl.Segment
	keys []uint64 // immutable after build
	vals []atomic.Uint64
	dead []atomic.Uint64 // tombstone bitmap
	errB int

	// bins[i] holds inserted keys that sort between keys[i] and
	// keys[i+1] (bin len(keys) catches the tail). Allocated lazily.
	bins []atomic.Pointer[bin]
}

// bin is a level bin: a small sorted buffer guarded by its own lock. When a
// level fills, the bin grows to the next level (capacity doubles) — the
// FINEdex level-bin chain, flattened.
type bin struct {
	mu      sync.Mutex
	ver     atomic.Uint64
	keys    []atomic.Uint64
	vals    []atomic.Uint64
	n       atomic.Int32
	deleted []atomic.Uint32
}

const binLevel0 = 4

func newBin(capacity int) *bin {
	return &bin{
		keys:    make([]atomic.Uint64, capacity),
		vals:    make([]atomic.Uint64, capacity),
		deleted: make([]atomic.Uint32, capacity),
	}
}

// New returns an empty index.
func New() *Index { return &Index{ErrBound: defaultErrBound} }

// Name implements index.Concurrent.
func (ix *Index) Name() string { return "FINEdex" }

// Len returns the number of live keys.
func (ix *Index) Len() int { return int(ix.size.Load()) }

// Bulkload trains LPA models over the pairs and lays each model's keys out
// in a packed sorted array.
func (ix *Index) Bulkload(pairs []index.KV) error {
	keys := make([]uint64, len(pairs))
	vals := make([]uint64, len(pairs))
	for i, kv := range pairs {
		if i > 0 && kv.Key <= keys[i-1] {
			return index.ErrUnsortedBulk
		}
		keys[i] = kv.Key
		vals[i] = kv.Value
	}
	eb := ix.ErrBound
	if eb <= 0 {
		eb = defaultErrBound
	}
	var firsts []uint64
	var models []*fmodel
	if len(keys) > 0 {
		segs := gpl.LPA(keys, float64(eb))
		off := 0
		for _, seg := range segs {
			m := &fmodel{
				seg:  seg,
				keys: append([]uint64(nil), keys[off:off+seg.N]...),
				vals: make([]atomic.Uint64, seg.N),
				dead: make([]atomic.Uint64, (seg.N+63)/64),
				errB: eb,
				bins: make([]atomic.Pointer[bin], seg.N+1),
			}
			for i := 0; i < seg.N; i++ {
				m.vals[i].Store(vals[off+i])
			}
			first := seg.First
			if off == 0 {
				first = 0
			}
			firsts = append(firsts, first)
			models = append(models, m)
			off += seg.N
		}
	} else {
		m := &fmodel{seg: gpl.Segment{Slope: 1}, errB: eb,
			bins: make([]atomic.Pointer[bin], 1)}
		firsts = []uint64{0}
		models = []*fmodel{m}
	}
	ix.tab.Store(&table{firsts: firsts, models: models})
	ix.size.Store(int64(len(keys)))
	return nil
}

func (tb *table) find(key uint64) *fmodel {
	lo, hi := 0, len(tb.firsts)
	for lo < hi {
		mid := (lo + hi) / 2
		if tb.firsts[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 {
		i = 0
	}
	return tb.models[i]
}

// locate returns the index of key in m.keys, or ^insertionPoint if absent,
// using prediction plus a binary search inside the error bound — the
// bounded secondary search that defines FINEdex's read cost.
func (m *fmodel) locate(key uint64) (int, bool) {
	n := len(m.keys)
	if n == 0 {
		return 0, false
	}
	pred := int(m.seg.Predict(key))
	lo := pred - m.errB
	hi := pred + m.errB + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	// The error bound only holds for trained keys; runtime probes of
	// arbitrary keys widen to the full array when the window misses.
	if lo >= n {
		lo = n - 1
	}
	if lo > 0 && m.keys[lo] > key {
		lo = 0
	}
	if hi < n && m.keys[hi-1] < key {
		hi = n
	}
	i := lo + sort.Search(hi-lo, func(j int) bool { return m.keys[lo+j] >= key })
	if i < n && m.keys[i] == key {
		return i, true
	}
	return i, false
}

func (m *fmodel) isDead(i int) bool {
	return m.dead[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

func (m *fmodel) setDead(i int, dead bool) {
	for {
		old := m.dead[i>>6].Load()
		var next uint64
		if dead {
			next = old | 1<<(uint(i)&63)
		} else {
			next = old &^ (1 << (uint(i) & 63))
		}
		if m.dead[i>>6].CompareAndSwap(old, next) {
			return
		}
	}
}

// Get returns the value stored for key.
func (ix *Index) Get(key uint64) (uint64, bool) {
	tb := ix.tab.Load()
	if tb == nil {
		return 0, false
	}
	m := tb.find(key)
	if i, ok := m.locate(key); ok {
		if m.isDead(i) {
			return 0, false
		}
		return m.vals[i].Load(), true
	} else if b := m.binAt(i); b != nil {
		return b.get(key)
	}
	return 0, false
}

// binAt returns the bin covering insertion point i, or nil.
func (m *fmodel) binAt(i int) *bin {
	if i < 0 || i >= len(m.bins) {
		return nil
	}
	return m.bins[i].Load()
}

// get reads a bin under its seqlock.
func (b *bin) get(key uint64) (uint64, bool) {
	for {
		v := b.ver.Load()
		if v&1 != 0 {
			continue
		}
		n := int(b.n.Load())
		var val uint64
		found := false
		for i := 0; i < n && i < len(b.keys); i++ {
			if b.keys[i].Load() == key {
				found = b.deleted[i].Load() == 0
				val = b.vals[i].Load()
				break
			}
		}
		if b.ver.Load() == v {
			return val, found
		}
	}
}

var _ index.Concurrent = (*Index)(nil)
var _ index.Stats = (*Index)(nil)

// MemoryUsage approximates retained heap bytes including level bins — the
// delta-buffer overhead of Fig 8a.
func (ix *Index) MemoryUsage() uintptr {
	tb := ix.tab.Load()
	if tb == nil {
		return 0
	}
	total := uintptr(len(tb.firsts)) * 16
	for _, m := range tb.models {
		total += unsafe.Sizeof(fmodel{}) + uintptr(len(m.keys))*(8+8) +
			uintptr(len(m.dead))*8 + uintptr(len(m.bins))*8
		for i := range m.bins {
			if b := m.bins[i].Load(); b != nil {
				total += unsafe.Sizeof(bin{}) + uintptr(len(b.keys))*(8+8+4)
			}
		}
	}
	return total
}

// StatsMap implements index.Stats.
func (ix *Index) StatsMap() map[string]int64 {
	tb := ix.tab.Load()
	if tb == nil {
		return map[string]int64{}
	}
	binCount, binKeys := int64(0), int64(0)
	for _, m := range tb.models {
		for i := range m.bins {
			if b := m.bins[i].Load(); b != nil {
				binCount++
				binKeys += int64(b.n.Load())
			}
		}
	}
	return map[string]int64{
		"models":   int64(len(tb.models)),
		"bins":     binCount,
		"bin_keys": binKeys,
	}
}
