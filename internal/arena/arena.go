// Package arena provides pointer-free chunked memory arenas and an
// epoch-based reclamation domain for the index's slot-block storage.
//
// The motivation is GC scan work and allocation churn at paper scale
// (§IV runs 200M keys): every GPL model owns a []slotBlock slice, and
// retraining replaces whole models continuously under write-heavy load.
// Individually allocated slices make the collector (a) trace a live
// pointer per model and (b) re-mark and sweep the churn of retired
// tables. An Arena instead carves spans out of large standard chunks
// whose element type contains no pointers — the chunks land in noscan
// spans, so the collector never looks inside them — and recycles whole
// chunks once every span cut from them has been released, so steady
// retrain churn stops allocating at all.
//
// Release is manual, which is exactly why the epoch Domain (epoch.go)
// exists: the index retires a model's span onto a limbo list and the
// domain only runs the release once every reader that could still hold
// the old model table has moved past the retiring epoch.
package arena

import (
	"math/bits"
	"sync"
	"unsafe"
)

// Arena is a chunked allocator for a pointer-free element type T.
// Spans of up to the arena's standard chunk length are bump-allocated
// out of shared chunks; larger requests get a dedicated chunk rounded
// up to a power-of-two capacity so size classes recycle across varying
// model sizes. A chunk returns to the arena's free pool when every span
// cut from it has been Released, and future allocations reuse pooled
// chunks before growing the heap.
//
// All methods are safe for concurrent use. A nil *Arena is valid and
// degrades to plain make([]T, n) allocations the collector owns —
// callers (and tests) that do not manage reclamation pass nil.
type Arena[T any] struct {
	chunkLen int
	elemSize uintptr

	mu  sync.Mutex
	cur *chunk[T]
	// free pools recycled chunks by capacity class (cap of the backing
	// slice): the standard class plus one power-of-two class per oversize
	// allocation size seen.
	free map[int][]*chunk[T]

	chunksMade  int64
	reuses      int64
	liveBytes   int64
	retainBytes int64
}

type chunk[T any] struct {
	buf    []T
	used   int
	spans  int
	sealed bool // no further bump allocation; recycle when spans hits 0
}

// Span is one allocation: a slice of the owning chunk. The zero Span is
// valid (empty, Release is a no-op), as is a Span from a nil Arena
// (plain heap slice, Release is a no-op and the collector reclaims it).
type Span[T any] struct {
	data []T
	c    *chunk[T]
	a    *Arena[T]
}

// Data returns the span's elements. The slice aliases arena memory:
// after Release it may be poisoned and recycled, so callers must not
// touch it past the release point — that discipline is what the epoch
// Domain enforces for the index's readers.
func (s Span[T]) Data() []T { return s.data }

// Bytes returns the span's size in bytes.
func (s Span[T]) Bytes() uintptr {
	return uintptr(len(s.data)) * unsafe.Sizeof(*new(T))
}

// New returns an arena whose shared chunks hold chunkLen elements.
func New[T any](chunkLen int) *Arena[T] {
	if chunkLen < 1 {
		chunkLen = 1
	}
	return &Arena[T]{
		chunkLen: chunkLen,
		elemSize: unsafe.Sizeof(*new(T)),
		free:     make(map[int][]*chunk[T]),
	}
}

// Alloc returns a zeroed span of n elements. Requests at or below the
// standard chunk length share chunks; larger ones get a dedicated chunk
// of the next power-of-two capacity. n <= 0 returns the empty span.
func (a *Arena[T]) Alloc(n int) Span[T] {
	if n <= 0 {
		return Span[T]{}
	}
	if a == nil {
		return Span[T]{data: make([]T, n)}
	}
	a.mu.Lock()
	var c *chunk[T]
	var off int
	if n > a.chunkLen {
		// Oversize: dedicated, sealed immediately — it recycles as one
		// unit when its single span is released.
		c = a.take(ceilPow2(n))
		c.sealed = true
		c.used = n
	} else {
		if a.cur == nil || a.cur.used+n > a.chunkLen {
			a.seal(a.cur)
			a.cur = a.take(a.chunkLen)
		}
		c = a.cur
		off = c.used
		c.used += n
	}
	c.spans++
	a.liveBytes += int64(n) * int64(a.elemSize)
	data := c.buf[off : off+n : off+n]
	if poisonEnabled {
		// Failpoint builds poison at recycle instead of zeroing, so the
		// zeroed-memory contract is restored here — the poison lives
		// exactly in the release-to-reuse window a use-after-free hits.
		clear(data)
	}
	a.mu.Unlock()
	return Span[T]{data: data, c: c, a: a}
}

// Release returns the span's memory to the arena. When it was the
// chunk's last live span (and the chunk is sealed — no longer the bump
// target) the whole chunk is poisoned (under -tags failpoint) and moved
// to the free pool for reuse. The caller guarantees no reader can still
// dereference the span — the epoch Domain's job.
func (s Span[T]) Release() {
	if s.c == nil {
		return
	}
	a := s.a
	a.mu.Lock()
	s.c.spans--
	if s.c.spans < 0 {
		panic("arena: span double-released")
	}
	a.liveBytes -= int64(len(s.data)) * int64(a.elemSize)
	// Recycle a drained chunk when it is sealed or has no capacity left
	// to bump-allocate from anyway (recycle clears a.cur in that case).
	if s.c.spans == 0 && (s.c.sealed || s.c.used == len(s.c.buf)) {
		a.recycle(s.c)
	}
	a.mu.Unlock()
}

// seal marks c full. Called with a.mu held; nil is allowed.
func (a *Arena[T]) seal(c *chunk[T]) {
	if c == nil {
		return
	}
	c.sealed = true
	if c.spans == 0 {
		a.recycle(c)
	}
}

// take pops a pooled chunk of exactly capElems capacity, or grows the
// heap by one. Called with a.mu held.
func (a *Arena[T]) take(capElems int) *chunk[T] {
	if pool := a.free[capElems]; len(pool) > 0 {
		c := pool[len(pool)-1]
		a.free[capElems] = pool[:len(pool)-1]
		a.reuses++
		a.retainBytes -= int64(capElems) * int64(a.elemSize)
		return c
	}
	a.chunksMade++
	return &chunk[T]{buf: make([]T, capElems)}
}

// recycle zeroes a drained chunk and pools it; Alloc's zeroed-memory
// contract (gap slots are "empty" because their meta word is zero) is
// thereby upheld across reuse. Under -tags failpoint the chunk is
// instead filled with PoisonByte so a use-after-release reads
// deterministic garbage, and Alloc re-zeroes each span it hands out.
func (a *Arena[T]) recycle(c *chunk[T]) {
	if poisonEnabled && len(c.buf) > 0 {
		poisonBytes(unsafe.Pointer(&c.buf[0]), uintptr(len(c.buf))*a.elemSize)
	} else if len(c.buf) > 0 {
		clear(c.buf)
	}
	c.used = 0
	c.spans = 0
	c.sealed = false
	a.free[cap(c.buf)] = append(a.free[cap(c.buf)], c)
	a.retainBytes += int64(cap(c.buf)) * int64(a.elemSize)
	if c == a.cur {
		a.cur = nil
	}
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	ChunksMade    int64 // chunks ever allocated from the Go heap
	ChunksFree    int64 // chunks sitting in the reuse pool
	Reuses        int64 // allocations served by recycling a pooled chunk
	LiveBytes     int64 // bytes in live (unreleased) spans
	RetainedBytes int64 // bytes held by the reuse pool
}

// Stats returns the arena's accounting snapshot; zero for a nil arena.
func (a *Arena[T]) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var free int64
	for _, pool := range a.free {
		free += int64(len(pool))
	}
	return Stats{
		ChunksMade:    a.chunksMade,
		ChunksFree:    free,
		Reuses:        a.reuses,
		LiveBytes:     a.liveBytes,
		RetainedBytes: a.retainBytes,
	}
}

// ceilPow2 rounds n up to a power of two.
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
