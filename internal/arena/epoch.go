package arena

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Domain is an epoch-based reclamation domain: the bridge between the
// index's lock-free readers and the Arena's manual Release.
//
// Protocol (classic 3-bucket EBR):
//
//   - Readers Pin before touching the model table and Unpin after. A pin
//     increments a striped counter for the current global epoch e.
//   - Writers Retire superseded objects (model spans, routing tables)
//     onto the limbo list of the epoch current at retire time. Crucially
//     the replacement is published *before* Retire, so any reader that
//     pins at a later epoch can only observe the new version.
//   - TryAdvance moves the global epoch e → e+1 once no reader remains
//     pinned at e-1, then frees everything retired at e-1: by induction
//     readers only ever hold pins at e or e-1, so when bucket e-1 drains
//     the surviving readers all pinned after the epoch became e — which
//     is after every epoch-(e-1) retirement's replacement was published.
//
// Three buckets suffice because bucket (e+1)%3 == (e-2)%3 is empty of
// both pins and limbo entries by the time the epoch reaches e (its pins
// drained to allow the previous advance, its limbo was freed by it).
// Pin guards against the classic stale-epoch race by re-reading the
// global epoch after incrementing and retrying on mismatch; Go atomics
// are sequentially consistent, which makes the advance-side counter scan
// and the reader-side recheck a proper handshake (one of the two always
// observes the other).
//
// A nil *Domain is valid: Retire frees immediately (single-threaded /
// test use), Pin returns a no-op guard.
type Domain struct {
	global atomic.Uint64

	// stripe spreads pin counters across cache lines; a goroutine picks
	// its stripe by hashing a stack address, the closest portable Go gets
	// to a CPU-local slot.
	stripe [epochStripes]stripeCounts

	mu    sync.Mutex
	limbo [3][]retired

	limboCount atomic.Int64
	limboBytes atomic.Int64
	reclaims   atomic.Int64
	advances   atomic.Int64
}

const epochStripes = 32

type stripeCounts struct {
	pins [3]atomic.Int64
	_    [128 - 3*8]byte // pad to two cache lines against false sharing
}

type retired struct {
	bytes uintptr
	free  func()
}

// Guard is an active reader pin. The zero Guard (and any Guard from a
// nil Domain) is a valid no-op.
type Guard struct {
	c *atomic.Int64
}

// NewDomain returns an empty reclamation domain.
func NewDomain() *Domain { return &Domain{} }

// Pin enters the current epoch and returns the guard that must be
// Unpinned when the reader is done with everything it loaded. Pins are
// cheap (two atomic ops, no lock) and may nest freely.
func (d *Domain) Pin() Guard {
	if d == nil {
		return Guard{}
	}
	s := &d.stripe[stripeIdx()]
	for {
		e := d.global.Load()
		c := &s.pins[e%3]
		c.Add(1)
		// Recheck: if the epoch advanced between the load and the
		// increment we may have pinned a bucket the advancer already
		// judged empty — undo and retry against the new epoch.
		if d.global.Load() == e {
			return Guard{c: c}
		}
		c.Add(-1)
	}
}

// Unpin leaves the epoch entered by Pin.
func (g Guard) Unpin() {
	if g.c != nil {
		g.c.Add(-1)
	}
}

// stripeIdx hashes a stack-local address into a stripe. The address is
// stable enough per goroutine to keep a tight loop on one counter while
// spreading unrelated goroutines across stripes.
func stripeIdx() int {
	var x byte
	h := uintptr(unsafe.Pointer(&x)) * 0x9e3779b97f4a7c15
	return int(h>>57) & (epochStripes - 1)
}

// Retire schedules free to run once every reader that could still see
// the retired object has unpinned. bytes is accounting only (limbo_bytes
// in stats). The caller must have already published the replacement.
// On a nil domain free runs immediately.
func (d *Domain) Retire(bytes uintptr, free func()) {
	if d == nil {
		if free != nil {
			free()
		}
		return
	}
	d.mu.Lock()
	e := d.global.Load()
	d.limbo[e%3] = append(d.limbo[e%3], retired{bytes: bytes, free: free})
	d.mu.Unlock()
	d.limboCount.Add(1)
	d.limboBytes.Add(int64(bytes))
	// Opportunistic: retirement is the natural moment to turn the crank,
	// and it keeps limbo bounded without a dedicated reclaimer thread.
	d.TryAdvance()
}

// TryAdvance attempts one epoch advance, freeing everything retired two
// epochs ago on success. It fails (returns false) when a reader is still
// pinned in the previous epoch or when it loses the race to another
// advancer — both benign; callers just try again later.
func (d *Domain) TryAdvance() bool {
	if d == nil {
		return false
	}
	e := d.global.Load()
	prev := (e + 2) % 3 // (e-1) mod 3 without uint underflow
	for i := range d.stripe {
		if d.stripe[i].pins[prev].Load() != 0 {
			return false
		}
	}
	d.mu.Lock()
	if d.global.Load() != e {
		d.mu.Unlock()
		return false
	}
	// No re-scan of the counters is needed under the lock: the epoch can
	// only change under d.mu, so while global == e a Pin can only commit
	// into bucket e%3 (any stale-epoch increment into prev fails its
	// recheck and is undone). The scan above therefore proved prev drained.
	drained := d.limbo[prev]
	d.limbo[prev] = nil
	d.global.Store(e + 1)
	d.mu.Unlock()
	d.advances.Add(1)
	if len(drained) > 0 {
		var bytes int64
		for _, r := range drained {
			bytes += int64(r.bytes)
			if r.free != nil {
				r.free()
			}
		}
		d.limboCount.Add(-int64(len(drained)))
		d.limboBytes.Add(-bytes)
		d.reclaims.Add(int64(len(drained)))
	}
	return true
}

// Drain cranks the epoch until the limbo lists are empty or attempts
// advances have been tried, yielding between failed attempts. Used by
// Quiesce/Close and tests; returns whether limbo fully drained. It
// cannot force out a still-pinned reader — that reader's epoch simply
// refuses to advance, which is the point.
func (d *Domain) Drain(attempts int) bool {
	if d == nil {
		return true
	}
	for i := 0; i < attempts; i++ {
		if d.limboCount.Load() == 0 {
			return true
		}
		if !d.TryAdvance() {
			runtime.Gosched()
		}
	}
	return d.limboCount.Load() == 0
}

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 {
	if d == nil {
		return 0
	}
	return d.global.Load()
}

// DomainStats is a point-in-time reclamation snapshot.
type DomainStats struct {
	Epoch      uint64 // current global epoch
	LimboCount int64  // objects awaiting reclamation
	LimboBytes int64  // their accounted bytes
	Reclaims   int64  // objects freed so far
	Advances   int64  // successful epoch advances
}

// Stats returns the domain's counters; zero for a nil domain.
func (d *Domain) Stats() DomainStats {
	if d == nil {
		return DomainStats{}
	}
	return DomainStats{
		Epoch:      d.global.Load(),
		LimboCount: d.limboCount.Load(),
		LimboBytes: d.limboBytes.Load(),
		Reclaims:   d.reclaims.Load(),
		Advances:   d.advances.Load(),
	}
}
