//go:build !failpoint

package arena

import "unsafe"

// poisonEnabled gates recycle-time poisoning; production builds zero
// recycled chunks instead (cheap, and Alloc's contract is zeroed memory).
const poisonEnabled = false

func poisonBytes(p unsafe.Pointer, n uintptr) {}
