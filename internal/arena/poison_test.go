//go:build failpoint

package arena

import "testing"

// TestPoisonOnRecycle: under -tags failpoint a recycled chunk is filled
// with PoisonByte, so a use-after-release reads deterministic garbage;
// the next Alloc from the pool re-zeroes the span it hands out.
func TestPoisonOnRecycle(t *testing.T) {
	a := New[uint64](4)
	s := a.Alloc(32) // oversize → dedicated chunk, recycles on release
	stale := s.Data()
	for i := range stale {
		stale[i] = uint64(i) + 1
	}
	s.Release()

	const poisoned = 0xDBDBDBDBDBDBDBDB
	for i, v := range stale {
		if v != poisoned {
			t.Fatalf("released slot %d = %#x, want poison %#x", i, v, uint64(poisoned))
		}
	}

	// Reuse of the poisoned chunk must hand out zeroed memory again.
	s2 := a.Alloc(32)
	if a.Stats().Reuses != 1 {
		t.Fatalf("expected pooled reuse, stats = %+v", a.Stats())
	}
	for i, v := range s2.Data() {
		if v != 0 {
			t.Fatalf("reused slot %d = %#x, want 0", i, v)
		}
	}
	s2.Release()
}
