package arena

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRetireFreesAfterAdvance: with no readers, two cranks free a
// retired object.
func TestRetireFreesAfterAdvance(t *testing.T) {
	d := NewDomain()
	freed := false
	d.Retire(64, func() { freed = true })
	if !d.Drain(16) {
		t.Fatal("drain failed with no readers")
	}
	if !freed {
		t.Fatal("object not freed after drain")
	}
	st := d.Stats()
	if st.LimboCount != 0 || st.LimboBytes != 0 || st.Reclaims != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPinnedReaderBlocksReclaim is the core safety property: an object
// retired while a reader is pinned is not freed until that reader
// unpins, no matter how hard the epoch is cranked.
func TestPinnedReaderBlocksReclaim(t *testing.T) {
	d := NewDomain()
	g := d.Pin()
	var freed atomic.Bool
	d.Retire(128, func() { freed.Store(true) })
	for i := 0; i < 100; i++ {
		d.TryAdvance()
	}
	if freed.Load() {
		t.Fatal("object freed while a reader from the retiring epoch was pinned")
	}
	if st := d.Stats(); st.LimboCount != 1 || st.LimboBytes != 128 {
		t.Fatalf("limbo = %+v while pinned", st)
	}
	g.Unpin()
	if !d.Drain(16) {
		t.Fatal("drain failed after unpin")
	}
	if !freed.Load() {
		t.Fatal("object not freed after reader unpinned")
	}
}

// TestLateReaderDoesNotBlock: a reader that pins after the epoch already
// advanced past the retiring epoch must not delay reclamation — it can
// only have seen the replacement.
func TestLateReaderDoesNotBlock(t *testing.T) {
	d := NewDomain()
	var freed atomic.Bool
	d.Retire(1, func() { freed.Store(true) })
	if !d.TryAdvance() {
		t.Fatal("first advance failed")
	}
	g := d.Pin() // pinned at the post-advance epoch
	defer g.Unpin()
	if !d.Drain(16) {
		t.Fatal("late reader blocked the drain")
	}
	if !freed.Load() {
		t.Fatal("object not freed despite only a late reader existing")
	}
}

func TestNilDomain(t *testing.T) {
	var d *Domain
	freed := false
	d.Retire(8, func() { freed = true })
	if !freed {
		t.Fatal("nil domain must free immediately")
	}
	g := d.Pin()
	g.Unpin()
	if !d.Drain(1) || d.TryAdvance() || d.Epoch() != 0 {
		t.Fatal("nil domain misbehaved")
	}
	if st := d.Stats(); st != (DomainStats{}) {
		t.Fatalf("nil domain stats = %+v", st)
	}
}

// TestNestedPins: pins may nest; reclamation waits for the outermost.
func TestNestedPins(t *testing.T) {
	d := NewDomain()
	g1 := d.Pin()
	g2 := d.Pin()
	var freed atomic.Bool
	d.Retire(1, func() { freed.Store(true) })
	g2.Unpin()
	for i := 0; i < 50; i++ {
		d.TryAdvance()
	}
	if freed.Load() {
		t.Fatal("freed under the outer pin")
	}
	g1.Unpin()
	if !d.Drain(16) || !freed.Load() {
		t.Fatal("not freed after outer unpin")
	}
}

// TestConcurrentPinRetire hammers pin/unpin from many goroutines while a
// writer retires objects that assert they are never freed while a
// same-or-older reader could see them. Meaningful chiefly under -race.
func TestConcurrentPinRetire(t *testing.T) {
	d := NewDomain()
	const readers = 8
	const rounds = 2000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := d.Pin()
				g.Unpin()
			}
		}()
	}
	var freedCount atomic.Int64
	for i := 0; i < rounds; i++ {
		d.Retire(16, func() { freedCount.Add(1) })
	}
	close(stop)
	wg.Wait()
	if !d.Drain(1000) {
		t.Fatalf("limbo not drained: %+v", d.Stats())
	}
	if n := freedCount.Load(); n != rounds {
		t.Fatalf("freed %d of %d retired objects", n, rounds)
	}
	st := d.Stats()
	if st.Reclaims != rounds || st.LimboCount != 0 || st.LimboBytes != 0 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestArenaThroughDomain ties the two halves together the way core uses
// them: spans retired through the domain come back to the arena pool
// only after the pinned reader leaves, and the reader's view of the span
// stays intact until then.
func TestArenaThroughDomain(t *testing.T) {
	a := New[uint64](8)
	d := NewDomain()

	s := a.Alloc(8) // exactly one chunk
	for i := range s.Data() {
		s.Data()[i] = 0xA11CE
	}
	view := s.Data() // what a concurrent reader would hold

	g := d.Pin()
	d.Retire(s.Bytes(), s.Release)
	for i := 0; i < 50; i++ {
		d.TryAdvance()
	}
	// Chunk must not have been recycled: the reader's view is intact.
	for i, v := range view {
		if v != 0xA11CE {
			t.Fatalf("slot %d = %#x while reader pinned, want 0xA11CE", i, v)
		}
	}
	if st := a.Stats(); st.ChunksFree != 0 {
		t.Fatalf("chunk recycled under a pinned reader: %+v", st)
	}
	g.Unpin()
	if !d.Drain(16) {
		t.Fatal("drain failed")
	}
	if st := a.Stats(); st.ChunksFree != 1 {
		t.Fatalf("chunk not recycled after unpin: %+v", st)
	}
}
