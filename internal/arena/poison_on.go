//go:build failpoint

package arena

import "unsafe"

// Failpoint builds poison recycled chunks with a recognizable byte so a
// use-after-release reads deterministic garbage (keys of
// 0xDBDBDBDBDBDBDBDB, meta words with the lock bit set) instead of
// stale-but-plausible data. Chaos and unit tests assert on this value.
const poisonEnabled = true

// PoisonByte fills every recycled chunk under -tags failpoint.
const PoisonByte = 0xDB

func poisonBytes(p unsafe.Pointer, n uintptr) {
	b := unsafe.Slice((*byte)(p), n)
	for i := range b {
		b[i] = PoisonByte
	}
}
