package arena

import (
	"testing"
	"unsafe"
)

// block160 mirrors core's slotBlock shape: 8 interleaved lanes of
// key/meta/value, 160 bytes per block.
type block160 struct {
	keys [8]uint64
	meta [8]uint32
	vals [8]uint64
}

func TestBlock160Size(t *testing.T) {
	if s := unsafe.Sizeof(block160{}); s != 160 {
		t.Fatalf("block160 size = %d, want 160", s)
	}
}

// TestGrowthAcrossChunks allocates many small spans through several
// chunks and checks they are disjoint, zeroed and fully usable.
func TestGrowthAcrossChunks(t *testing.T) {
	a := New[uint64](16)
	type span struct {
		s    Span[uint64]
		base uint64
	}
	var spans []span
	for i := 0; i < 100; i++ {
		n := 1 + i%7
		s := a.Alloc(n)
		if len(s.Data()) != n {
			t.Fatalf("alloc %d: len = %d", n, len(s.Data()))
		}
		for j, v := range s.Data() {
			if v != 0 {
				t.Fatalf("alloc %d: slot %d not zeroed: %d", i, j, v)
			}
		}
		base := uint64(i) << 32
		for j := range s.Data() {
			s.Data()[j] = base + uint64(j)
		}
		spans = append(spans, span{s, base})
	}
	// No span's writes may have clobbered another's.
	for i, sp := range spans {
		for j, v := range sp.s.Data() {
			if v != sp.base+uint64(j) {
				t.Fatalf("span %d slot %d = %#x, want %#x", i, j, v, sp.base+uint64(j))
			}
		}
	}
	st := a.Stats()
	if st.ChunksMade < 2 {
		t.Fatalf("expected growth across multiple chunks, made %d", st.ChunksMade)
	}
	if want := int64(0); st.RetainedBytes != want {
		t.Fatalf("retained = %d before any release", st.RetainedBytes)
	}
	for _, sp := range spans {
		sp.s.Release()
	}
	if st := a.Stats(); st.LiveBytes != 0 {
		t.Fatalf("live = %d after releasing everything", st.LiveBytes)
	}
}

// TestLaneAlignment verifies 160-byte slot-block spans start at
// block-aligned offsets within the chunk and stay 8-byte aligned, so the
// interleaved uint64 lanes are safe for atomic access.
func TestLaneAlignment(t *testing.T) {
	a := New[block160](64)
	var prevEnd uintptr
	contiguous := 0
	for i := 0; i < 200; i++ {
		s := a.Alloc(1 + i%5)
		d := s.Data()
		p := uintptr(unsafe.Pointer(&d[0]))
		if p%8 != 0 {
			t.Fatalf("span %d not 8-byte aligned: %#x", i, p)
		}
		// Bump allocation makes same-chunk neighbors exactly contiguous —
		// whole 160-byte blocks apart by construction; anything else is
		// the start of a fresh chunk.
		if p == prevEnd {
			contiguous++
		}
		prevEnd = p + uintptr(len(d))*160
	}
	if contiguous < 150 {
		t.Fatalf("only %d of 200 spans were bump-contiguous; chunking broken", contiguous)
	}
}

// TestChunkReuse drives the seal→release→recycle→reuse cycle for the
// standard chunk class and checks the recycled memory is zeroed again.
func TestChunkReuse(t *testing.T) {
	a := New[uint64](8)
	// Fill two chunks exactly, dirtying every word.
	var spans []Span[uint64]
	for i := 0; i < 4; i++ {
		s := a.Alloc(4)
		for j := range s.Data() {
			s.Data()[j] = ^uint64(0)
		}
		spans = append(spans, s)
	}
	// Force the second chunk out of the bump position so it seals too.
	tail := a.Alloc(8)
	for _, s := range spans {
		s.Release()
	}
	st := a.Stats()
	if st.ChunksFree < 2 {
		t.Fatalf("chunks free = %d, want >= 2 after draining two sealed chunks", st.ChunksFree)
	}
	made := st.ChunksMade
	// New allocations must come from the pool, zeroed.
	for i := 0; i < 4; i++ {
		s := a.Alloc(4)
		for j, v := range s.Data() {
			if v != 0 {
				t.Fatalf("reused alloc %d slot %d = %#x, want 0", i, j, v)
			}
		}
	}
	st = a.Stats()
	if st.ChunksMade != made {
		t.Fatalf("chunks made grew %d -> %d despite pooled chunks", made, st.ChunksMade)
	}
	if st.Reuses == 0 {
		t.Fatal("no chunk reuse recorded")
	}
	tail.Release()
}

// TestOversize checks dedicated chunks: pow2-rounded capacity, immediate
// recycling on release, and reuse by the same size class.
func TestOversize(t *testing.T) {
	a := New[uint64](16)
	s := a.Alloc(100) // > chunkLen → dedicated chunk of cap 128
	if len(s.Data()) != 100 {
		t.Fatalf("len = %d", len(s.Data()))
	}
	s.Data()[99] = 42
	s.Release()
	st := a.Stats()
	if st.ChunksFree != 1 || st.RetainedBytes != 128*8 {
		t.Fatalf("after oversize release: free=%d retained=%d, want 1/%d",
			st.ChunksFree, st.RetainedBytes, 128*8)
	}
	s2 := a.Alloc(70) // same pow2 class (128) → must reuse
	if st := a.Stats(); st.Reuses != 1 {
		t.Fatalf("reuses = %d, want 1", st.Reuses)
	}
	for j, v := range s2.Data() {
		if v != 0 {
			t.Fatalf("reused oversize slot %d = %d, want 0", j, v)
		}
	}
	s2.Release()
}

// TestNilArena: a nil arena degrades to GC-owned slices.
func TestNilArena(t *testing.T) {
	var a *Arena[uint64]
	s := a.Alloc(10)
	if len(s.Data()) != 10 {
		t.Fatalf("len = %d", len(s.Data()))
	}
	s.Data()[0] = 7
	s.Release() // no-op, must not panic
	if s.Data()[0] != 7 {
		t.Fatal("nil-arena span mutated by Release")
	}
	if st := a.Stats(); st != (Stats{}) {
		t.Fatalf("nil arena stats = %+v", st)
	}
	var zero Span[uint64]
	zero.Release()
	if zero.Data() != nil || zero.Bytes() != 0 {
		t.Fatal("zero span not empty")
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 127: 128, 128: 128, 129: 256}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Fatalf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
