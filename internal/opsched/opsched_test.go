package opsched

import (
	"sync"
	"sync/atomic"
	"testing"

	"altindex/internal/index"
)

// mapBackend is a stripe-locked map backend instrumented to count calls,
// so tests can tell direct calls from coalesced rounds apart.
type mapBackend struct {
	mu        sync.Mutex
	m         map[uint64]uint64
	getCalls  atomic.Int64
	setCalls  atomic.Int64
	maxSetLen atomic.Int64
}

func newMapBackend() *mapBackend {
	return &mapBackend{m: make(map[uint64]uint64)}
}

func (b *mapBackend) GetBatch(keys, vals []uint64, found []bool) {
	b.getCalls.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, k := range keys {
		vals[i], found[i] = b.m[k]
	}
}

func (b *mapBackend) SetBatch(pairs []index.KV) error {
	b.setCalls.Add(1)
	for {
		old := b.maxSetLen.Load()
		if int64(len(pairs)) <= old || b.maxSetLen.CompareAndSwap(old, int64(len(pairs))) {
			break
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range pairs {
		b.m[p.Key] = p.Value
	}
	return nil
}

func (b *mapBackend) Del(k uint64) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[k]
	delete(b.m, k)
	return ok, nil
}

// TestGateDirect: below GateConns every call is a direct backend call and
// no coalescing stats accrue.
func TestGateDirect(t *testing.T) {
	be := newMapBackend()
	c := New(be, Options{GateConns: 8})
	defer c.Close()

	c.ConnOpened()
	defer c.ConnClosed()
	if c.Engaged() {
		t.Fatal("gate engaged at 1 conn with GateConns=8")
	}
	if err := c.Sets([]index.KV{{Key: 1, Value: 10}}); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 1)
	found := make([]bool, 1)
	c.Gets([]uint64{1}, vals, found)
	if !found[0] || vals[0] != 10 {
		t.Fatalf("get(1) = (%d,%v), want (10,true)", vals[0], found[0])
	}
	st := c.Stats()
	if st["coalesce_batches"] != 0 || st["coalesce_ops"] != 0 {
		t.Fatalf("coalescing stats accrued below gate: %v", st)
	}
}

// TestGateEngages: at GateConns registered connections submissions
// coalesce — rounds form, ops flow through them, and results are correct.
func TestGateEngages(t *testing.T) {
	be := newMapBackend()
	c := New(be, Options{GateConns: 2, Stripes: 1})
	defer c.Close()

	for i := 0; i < 2; i++ {
		c.ConnOpened()
		defer c.ConnClosed()
	}
	if !c.Engaged() {
		t.Fatal("gate not engaged at 2 conns with GateConns=2")
	}
	const n = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				k := uint64(g*n + i)
				if err := c.Sets([]index.KV{{Key: k, Value: k + 1}}); err != nil {
					t.Error(err)
					return
				}
				vals := make([]uint64, 1)
				found := make([]bool, 1)
				c.Gets([]uint64{k}, vals, found)
				if !found[0] || vals[0] != k+1 {
					t.Errorf("get(%d) = (%d,%v), want (%d,true)", k, vals[0], found[0], k+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st["coalesce_batches"] == 0 {
		t.Fatal("no coalesced rounds formed above gate")
	}
	if st["coalesce_ops"] < st["coalesce_batches"] {
		t.Fatalf("ops %d < batches %d", st["coalesce_ops"], st["coalesce_batches"])
	}
}

// TestProvenanceAudit is the race-enabled N-writers × M-readers audit in
// the repo's provenance style: every acked write of key k carries value
// k<<20|attempt; concurrent readers may observe any attempt, but never a
// value whose provenance decodes to the wrong key (no ghosts), and after
// the writers drain a final sweep must see every key's last acked attempt
// (no lost acked writes).
func TestProvenanceAudit(t *testing.T) {
	be := newMapBackend()
	c := New(be, Options{GateConns: 1, Stripes: 2, MaxBatch: 32})
	defer c.Close()

	const (
		writers  = 6
		readers  = 4
		keys     = 128
		attempts = 40
	)
	for i := 0; i < writers+readers; i++ {
		c.ConnOpened()
		defer c.ConnClosed()
	}
	if !c.Engaged() {
		t.Fatal("gate should be engaged")
	}

	// lastAcked[k] is the highest attempt number whose Sets call returned
	// for key k; stored only after the ack, so it is a lower bound on
	// what the final sweep must observe.
	var lastAcked [keys]atomic.Int64
	for k := range lastAcked {
		lastAcked[k].Store(-1)
	}
	encode := func(k, attempt int) uint64 { return uint64(k)<<20 | uint64(attempt) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns a disjoint key slice so "last acked attempt"
			// is well-defined per key without cross-writer coordination.
			for a := 0; a < attempts; a++ {
				var run []index.KV
				for k := w; k < keys; k += writers {
					run = append(run, index.KV{Key: uint64(k), Value: encode(k, a)})
				}
				if err := c.Sets(run); err != nil {
					t.Error(err)
					return
				}
				for k := w; k < keys; k += writers {
					lastAcked[k].Store(int64(a))
				}
			}
		}(w)
	}

	stopRead := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			lookup := make([]uint64, keys)
			vals := make([]uint64, keys)
			found := make([]bool, keys)
			for i := range lookup {
				lookup[i] = uint64(i)
			}
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				c.Gets(lookup, vals, found)
				for i := range lookup {
					if !found[i] {
						continue // writer may not have reached this key yet
					}
					if gotKey := vals[i] >> 20; gotKey != lookup[i] {
						t.Errorf("ghost: key %d holds value with provenance key %d", lookup[i], gotKey)
						return
					}
					if attempt := int64(vals[i] & 0xfffff); attempt >= attempts {
						t.Errorf("ghost: key %d attempt %d out of range", lookup[i], attempt)
						return
					}
				}
			}
		}()
	}

	// Interleave deletes of keys nobody writes (>= keys space) to keep the
	// Dels path racing through the same rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		dels := []uint64{1 << 30, 1<<30 + 1}
		delFound := make([]bool, len(dels))
		for i := 0; i < 200; i++ {
			if err := c.Dels(dels, delFound); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	close(stopRead)
	rwg.Wait()

	// Final sweep: every key must hold its last acked attempt exactly —
	// writers are done, so nothing newer can be in flight.
	vals := make([]uint64, keys)
	found := make([]bool, keys)
	lookup := make([]uint64, keys)
	for i := range lookup {
		lookup[i] = uint64(i)
	}
	c.Gets(lookup, vals, found)
	for k := 0; k < keys; k++ {
		want := lastAcked[k].Load()
		if want < 0 {
			continue
		}
		if !found[k] {
			t.Fatalf("lost acked write: key %d absent, last acked attempt %d", k, want)
		}
		if got := int64(vals[k] & 0xfffff); got != int64(attempts-1) {
			t.Fatalf("lost acked write: key %d at attempt %d, want %d", k, got, attempts-1)
		}
	}

	st := c.Stats()
	if st["coalesce_batches"] == 0 || st["coalesce_ops"] == 0 {
		t.Fatalf("no coalescing under %d concurrent conns: %v", writers+readers, st)
	}
	mean := float64(st["coalesce_ops"]) / float64(st["coalesce_batches"])
	if mean <= 1 {
		t.Fatalf("mean batch %.2f, want > 1 (vector units alone guarantee this)", mean)
	}
	t.Logf("rounds=%d ops=%d mean=%.1f p50=%d backend SetBatch calls=%d maxSetLen=%d",
		st["coalesce_batches"], st["coalesce_ops"], mean, st["coalesce_p50_batch"],
		be.setCalls.Load(), be.maxSetLen.Load())
}

// TestMaxBatchChunking: a round larger than MaxBatch reaches the backend
// in MaxBatch-sized chunks, never exceeding the cap.
func TestMaxBatchChunking(t *testing.T) {
	be := newMapBackend()
	c := New(be, Options{GateConns: 1, Stripes: 1, MaxBatch: 8})
	defer c.Close()
	c.ConnOpened()
	defer c.ConnClosed()

	pairs := make([]index.KV, 50)
	for i := range pairs {
		pairs[i] = index.KV{Key: uint64(i), Value: uint64(i) * 3}
	}
	if err := c.Sets(pairs); err != nil {
		t.Fatal(err)
	}
	if got := be.maxSetLen.Load(); got > 8 {
		t.Fatalf("backend saw SetBatch of %d, cap is 8", got)
	}
	keys := make([]uint64, 50)
	vals := make([]uint64, 50)
	found := make([]bool, 50)
	for i := range keys {
		keys[i] = uint64(i)
	}
	c.Gets(keys, vals, found)
	for i := range keys {
		if !found[i] || vals[i] != uint64(i)*3 {
			t.Fatalf("get(%d) = (%d,%v)", i, vals[i], found[i])
		}
	}
}

// TestCloseFallback: submissions after Close fall back to direct backend
// calls instead of blocking or panicking.
func TestCloseFallback(t *testing.T) {
	be := newMapBackend()
	c := New(be, Options{GateConns: 1, Stripes: 1})
	c.ConnOpened()
	c.Close()
	if err := c.Sets([]index.KV{{Key: 9, Value: 90}}); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 1)
	found := make([]bool, 1)
	c.Gets([]uint64{9}, vals, found)
	if !found[0] || vals[0] != 90 {
		t.Fatalf("post-close get = (%d,%v), want (90,true)", vals[0], found[0])
	}
	c.ConnClosed()
}

func TestSizeBucket(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 0}, {8, 7}, {9, 8}, {16, 8}, {17, 9}, {32, 9},
		{4096, 16}, {5000, 17}, {1 << 20, 17},
	} {
		if got := sizeBucket(tc.n); got != tc.want {
			t.Errorf("sizeBucket(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	if bucketMid(0) != 1 || bucketMid(7) != 8 || bucketMid(8) != 12 {
		t.Errorf("bucketMid mapping off: %d %d %d", bucketMid(0), bucketMid(7), bucketMid(8))
	}
}
