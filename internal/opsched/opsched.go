// Package opsched coalesces point operations arriving concurrently on
// independent server connections into the index's grouped batch fast path —
// group commit for reads (and writes), via flat combining: a submitting
// goroutine enqueues its GET/SET/DEL run on a stripe and, if no combiner is
// active there, becomes the combiner itself — it sweeps whatever has
// accumulated (its own run plus every run enqueued meanwhile) and issues
// one GetBatch / one InsertBatch (one WAL record, one group commit, in
// durable mode) for the whole round, then wakes the other submitters. If a
// combiner is already running, the submitter parks and its run rides that
// combiner's next round. The batch size is emergent: it equals however
// many operations arrived while the previous round executed, exactly like
// the WAL's group commit (internal/wal) amortizes fsyncs — and when
// arrivals are sparse the combiner is always the submitter itself, so an
// uncontended operation pays no goroutine handoff at all, just one mutex
// round trip.
//
// An adaptive gate keeps even that off the latency path when there is
// nothing to amortize: below GateConns registered connections every call
// goes straight to the backend, so a single client keeps direct-call
// latency. The gate reads the live connection count the server maintains,
// not a per-op heuristic — cheap, stable, and it cannot misfire on a lone
// bursty client.
//
// Ordering: a connection submits its next operation only after the
// previous one completed (the protocol loop is serial per connection), so
// per-connection order is preserved by construction. Operations in one
// drained round are pairwise concurrent — every submitter invoked before
// the round executed and returns after it — so any serialization of the
// round is linearizable. Durable acks hold because SetBatch maps to the
// durable store's Mput, which acknowledges only after the group's redo
// record reaches the WAL commit point.
package opsched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"altindex/internal/index"
)

// Backend is the operation sink the coalescer drains into: the server's
// index, or its durable store (whose SetBatch/Del ack after WAL commit).
type Backend interface {
	GetBatch(keys, vals []uint64, found []bool)
	SetBatch(pairs []index.KV) error
	Del(k uint64) (bool, error)
}

// Options tune the coalescer; zero values select defaults.
type Options struct {
	// GateConns is the registered-connection count at or above which
	// coalescing engages (default 8). Below it every call is a direct
	// backend call. Negative disables coalescing permanently.
	GateConns int
	// Stripes is the number of independent combining queues (default
	// GOMAXPROCS/4 clamped to [1,4]). One stripe maximizes batch
	// formation; more stripes trade batch size for lock spreading on big
	// hosts.
	Stripes int
	// MaxBatch caps the operations one drained backend call may carry
	// (default 4096, the server's maxBatch); a larger round is chunked.
	MaxBatch int
}

func (o Options) withDefaults() Options {
	if o.GateConns == 0 {
		o.GateConns = 8
	}
	if o.Stripes <= 0 {
		o.Stripes = runtime.GOMAXPROCS(0) / 4
		if o.Stripes < 1 {
			o.Stripes = 1
		}
		if o.Stripes > 4 {
			o.Stripes = 4
		}
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	return o
}

// unit is one submitter's operation run. Exactly one of the three op
// families is populated per unit (the protocol loop groups runs of a
// single kind). Slices are caller-owned; the combiner scatters results
// back into them before closing done.
type unit struct {
	keys  []uint64 // GET run: keys to look up
	vals  []uint64 // GET results (caller-provided, len(keys))
	found []bool   // GET results (caller-provided, len(keys))

	pairs []index.KV // SET run

	dels     []uint64 // DEL run
	delFound []bool   // DEL results (caller-provided, len(dels))

	err       error
	done      chan struct{} // nil for the combiner's own unit (nothing parks on it)
	completed bool          // results settled (combiner-private)
	next      *unit
}

type stripe struct {
	mu        sync.Mutex
	closed    bool
	combining bool // a combiner is draining this stripe
	head      *unit
	tail      *unit

	// round scratch, reused across rounds. Private to the active combiner:
	// the combining flag guarantees at most one per stripe.
	keys  []uint64
	vals  []uint64
	found []bool
	pairs []index.KV
}

// sizeBuckets is the batch-size histogram layout: exact counts 1..8, then
// doubling ranges up to 4096+. Index i<8 holds size i+1; index 8+j holds
// (8·2^j, 8·2^(j+1)].
const sizeBuckets = 8 + 10

// Coalescer is the cross-connection op scheduler. Create with New; Close
// it only after every submitting goroutine has finished.
type Coalescer struct {
	be    Backend
	opt   Options
	conns atomic.Int64
	rr    atomic.Uint64

	batches atomic.Int64
	ops     atomic.Int64
	sizes   [sizeBuckets]atomic.Int64

	stripes []*stripe
}

// New builds a coalescer over be. Combining is driven entirely by the
// submitting goroutines; no background goroutines are started.
func New(be Backend, opt Options) *Coalescer {
	opt = opt.withDefaults()
	c := &Coalescer{be: be, opt: opt}
	c.stripes = make([]*stripe, opt.Stripes)
	for i := range c.stripes {
		c.stripes[i] = &stripe{}
	}
	return c
}

// ConnOpened / ConnClosed maintain the live connection count the gate
// reads. The server calls them as handlers start and finish.
func (c *Coalescer) ConnOpened() { c.conns.Add(1) }
func (c *Coalescer) ConnClosed() { c.conns.Add(-1) }

// Engaged reports whether submissions currently coalesce (the adaptive
// gate): at least GateConns connections are registered.
func (c *Coalescer) Engaged() bool {
	return c.opt.GateConns >= 0 && c.conns.Load() >= int64(c.opt.GateConns)
}

// Gets resolves a run of point lookups: vals[i], found[i] receive the
// result for keys[i]. Direct GetBatch below the gate; one shared grouped
// lookup above it. A non-nil error means the round's backend call
// panicked and the results are unusable.
func (c *Coalescer) Gets(keys, vals []uint64, found []bool) error {
	if len(keys) == 0 {
		return nil
	}
	if !c.Engaged() {
		c.be.GetBatch(keys, vals, found)
		return nil
	}
	u := &unit{keys: keys, vals: vals, found: found}
	if !c.submit(u) {
		c.be.GetBatch(keys, vals, found)
		return nil
	}
	return u.err
}

// Sets applies a run of upserts; in durable mode the call returns only
// after the round's redo record committed (ack-after-commit preserved).
func (c *Coalescer) Sets(pairs []index.KV) error {
	if len(pairs) == 0 {
		return nil
	}
	if !c.Engaged() {
		return c.be.SetBatch(pairs)
	}
	u := &unit{pairs: pairs}
	if !c.submit(u) {
		return c.be.SetBatch(pairs)
	}
	return u.err
}

// Dels applies a run of deletes; delFound[i] reports whether dels[i]
// existed. Deletes ride the same rounds (amortizing scheduling and lock
// traffic) but drain as per-key backend calls — the protocol has no
// grouped-delete redo record.
func (c *Coalescer) Dels(dels []uint64, delFound []bool) error {
	if len(dels) == 0 {
		return nil
	}
	direct := func() error {
		for i, k := range dels {
			f, err := c.be.Del(k)
			if err != nil {
				return err
			}
			delFound[i] = f
		}
		return nil
	}
	if !c.Engaged() {
		return direct()
	}
	u := &unit{dels: dels, delFound: delFound}
	if !c.submit(u) {
		return direct()
	}
	return u.err
}

// submit enqueues u on a stripe and returns once u's round has executed.
// False means the coalescer is closed and the caller must go direct.
//
// Flat combining: if the stripe has no active combiner, the submitter
// becomes it — it drains the queue (its own unit included) round by round
// until empty, executing with the stripe unlocked so later submitters can
// enqueue the next round meanwhile. Otherwise it parks on its unit; the
// active combiner's re-check under the lock guarantees every enqueued
// unit is seen before the combiner retires.
func (c *Coalescer) submit(u *unit) bool {
	st := c.stripes[c.rr.Add(1)%uint64(len(c.stripes))]
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return false
	}
	if st.combining {
		// Parking: allocate the wakeup channel only on this path — the
		// combiner's own unit never needs one, which keeps the sparse
		// (combine-your-own-round) case allocation-light.
		u.done = make(chan struct{})
	}
	if st.tail == nil {
		st.head, st.tail = u, u
	} else {
		st.tail.next = u
		st.tail = u
	}
	if st.combining {
		st.mu.Unlock()
		<-u.done
		return true
	}
	st.combining = true
	for st.head != nil {
		head := st.head
		st.head, st.tail = nil, nil
		st.mu.Unlock()
		c.exec(st, head)
		st.mu.Lock()
	}
	st.combining = false
	st.mu.Unlock()
	// u rode one of the rounds this combiner just executed (exec settles
	// u.err before closing done), so there is nothing to wait for.
	return true
}

// exec runs one round: concatenate the units' runs into stripe scratch,
// hit the backend's batch paths (chunked at MaxBatch), scatter results
// back, record stats, and release the waiters. A panicking backend call
// (a handler-contained event on the direct path) must not escape into the
// combining connection's handler while other submitters stay parked
// forever, so it is converted into an error on every unit still waiting.
func (c *Coalescer) exec(st *stripe, head *unit) {
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("opsched: backend panic: %v", p)
			for u := head; u != nil; {
				next := u.next // read before close: a woken waiter owns u again
				if !u.completed {
					u.err = err
					u.completed = true
					if u.done != nil {
						close(u.done)
					}
				}
				u = next
			}
		}
	}()
	st.keys, st.vals, st.found = st.keys[:0], st.vals[:0], st.found[:0]
	st.pairs = st.pairs[:0]
	total := 0

	// Writes first: a round is a set of concurrent ops, so intra-round
	// order is free, but draining writes before reads keeps the common
	// SET-then-GET test pattern intuitive when both land in one round.
	var setErr error
	for u := head; u != nil; u = u.next {
		if len(u.pairs) > 0 {
			st.pairs = append(st.pairs, u.pairs...)
			total += len(u.pairs)
		}
	}
	for off := 0; off < len(st.pairs); off += c.opt.MaxBatch {
		end := off + c.opt.MaxBatch
		if end > len(st.pairs) {
			end = len(st.pairs)
		}
		if err := c.be.SetBatch(st.pairs[off:end]); err != nil && setErr == nil {
			setErr = err
		}
	}

	for u := head; u != nil; u = u.next {
		if len(u.pairs) > 0 {
			u.err = setErr
		}
		for i, k := range u.dels {
			f, err := c.be.Del(k)
			if err != nil {
				u.err = err
				break
			}
			u.delFound[i] = f
			total++
		}
		if len(u.keys) > 0 {
			st.keys = append(st.keys, u.keys...)
			total += len(u.keys)
		}
	}

	if len(st.keys) > 0 {
		if cap(st.vals) < len(st.keys) {
			st.vals = make([]uint64, len(st.keys))
			st.found = make([]bool, len(st.keys))
		}
		vals, found := st.vals[:len(st.keys)], st.found[:len(st.keys)]
		for off := 0; off < len(st.keys); off += c.opt.MaxBatch {
			end := off + c.opt.MaxBatch
			if end > len(st.keys) {
				end = len(st.keys)
			}
			c.be.GetBatch(st.keys[off:end], vals[off:end], found[off:end])
		}
		pos := 0
		for u := head; u != nil; u = u.next {
			if len(u.keys) > 0 {
				copy(u.vals, vals[pos:pos+len(u.keys)])
				copy(u.found, found[pos:pos+len(u.keys)])
				pos += len(u.keys)
			}
		}
	}

	c.batches.Add(1)
	c.ops.Add(int64(total))
	c.sizes[sizeBucket(total)].Add(1)

	for u := head; u != nil; {
		next := u.next // read before close: a woken waiter owns u again
		u.completed = true
		if u.done != nil {
			close(u.done)
		}
		u = next
	}
}

func sizeBucket(n int) int {
	if n <= 8 {
		if n < 1 {
			n = 1
		}
		return n - 1
	}
	b := 8
	for lim := 16; b < sizeBuckets-1 && n > lim; lim <<= 1 {
		b++
	}
	return b
}

// bucketMid returns a representative size for histogram bucket b.
func bucketMid(b int) int64 {
	if b < 8 {
		return int64(b + 1)
	}
	lo := int64(8) << uint(b-8)
	return lo + lo/2
}

// Stats returns the coalescing counters the server folds into STATS:
// rounds executed, ops carried, and the p50 round size.
func (c *Coalescer) Stats() map[string]int64 {
	st := map[string]int64{
		"coalesce_batches": c.batches.Load(),
		"coalesce_ops":     c.ops.Load(),
	}
	st["coalesce_p50_batch"] = c.quantileBatch(0.50)
	return st
}

func (c *Coalescer) quantileBatch(q float64) int64 {
	var counts [sizeBuckets]int64
	var total int64
	for i := range c.sizes {
		counts[i] = c.sizes[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(sizeBuckets - 1)
}

// Close marks every stripe closed, so late submitters fall back to direct
// calls. Units already enqueued are completed by their round's combiner
// (every enqueued unit has one: itself or the one whose activity it saw
// under the stripe lock). Call only after the server's handlers drained.
func (c *Coalescer) Close() {
	for _, st := range c.stripes {
		st.mu.Lock()
		st.closed = true
		st.mu.Unlock()
	}
}
