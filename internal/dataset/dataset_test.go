package dataset

import (
	"testing"
	"testing/quick"

	"altindex/internal/gpl"
)

func TestGeneratorsSortedUnique(t *testing.T) {
	for _, name := range AllNames() {
		for _, n := range []int{1, 2, 100, 50000} {
			keys := Generate(name, n, 42)
			if len(keys) != n {
				t.Fatalf("%s: len=%d want %d", name, len(keys), n)
			}
			for i := 1; i < n; i++ {
				if keys[i] <= keys[i-1] {
					t.Fatalf("%s: not strictly ascending at %d: %d <= %d",
						name, i, keys[i], keys[i-1])
				}
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	for _, name := range AllNames() {
		a := Generate(name, 5000, 7)
		b := Generate(name, 5000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", name, i)
			}
		}
		c := Generate(name, 5000, 8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && name != Sequential {
			t.Fatalf("%s: seed has no effect", name)
		}
	}
}

func TestHardnessOrdering(t *testing.T) {
	// The generators must reproduce the paper's per-dataset hardness:
	// libio fits with far fewer GPL segments than osm and longlat
	// (Fig 3a / Fig 6a rely on this ordering).
	const n = 100000
	eps := float64(n) / 1000
	segCount := map[Name]int{}
	for _, name := range Names() {
		keys := Generate(name, n, 1)
		segCount[name] = len(gpl.Partition(keys, eps))
	}
	if !(segCount[Libio] < segCount[FB]) {
		t.Fatalf("libio (%d) should fit with fewer segments than fb (%d)",
			segCount[Libio], segCount[FB])
	}
	if !(segCount[Libio] < segCount[OSM]) {
		t.Fatalf("libio (%d) should fit with fewer segments than osm (%d)",
			segCount[Libio], segCount[OSM])
	}
	if !(segCount[Libio] < segCount[LongLat]) {
		t.Fatalf("libio (%d) should fit with fewer segments than longlat (%d)",
			segCount[Libio], segCount[LongLat])
	}
	t.Logf("segments at ε=%v: %v", eps, segCount)
}

func TestPairsAndValueFor(t *testing.T) {
	keys := Generate(Libio, 100, 1)
	pairs := Pairs(keys)
	for i, kv := range pairs {
		if kv.Key != keys[i] || kv.Value != ValueFor(keys[i]) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	kvs := KVs(Libio, 100, 1)
	for i := range kvs {
		if kvs[i] != pairs[i] {
			t.Fatal("KVs != Pairs∘Generate")
		}
	}
}

func TestQuickAscendingAnySize(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN%4096) + 1
		for _, name := range Names() {
			keys := Generate(name, n, seed)
			if len(keys) != n {
				return false
			}
			for i := 1; i < n; i++ {
				if keys[i] <= keys[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateZeroAndUnknown(t *testing.T) {
	if got := Generate(FB, 0, 1); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	Generate(Name("nope"), 10, 1)
}
