// Package dataset generates deterministic synthetic key sets that stand in
// for the four real-world datasets of the ALT-index paper's evaluation
// (SOSD fb, libio, osm and the longlat transform). The real datasets are
// 200M-key downloads; these generators reproduce each dataset's CDF
// character — which is what drives segment counts, prediction-conflict
// ratios and hence every comparative result — at configurable scale.
//
// All generators emit strictly ascending, deduplicated uint64 keys and are
// fully determined by (name, n, seed).
package dataset

import (
	"fmt"
	"math"

	"altindex/internal/index"
	"altindex/internal/xrand"
)

// Name identifies a generator.
type Name string

// Generator names. The four paper datasets plus two synthetic controls.
const (
	// FB mimics Facebook user IDs: long near-linear dense stretches with
	// occasional large jumps and a heavy-tailed top percentile.
	FB Name = "fb"
	// Libio mimics libraries.io repository IDs: almost perfectly dense
	// sequential IDs with rare small gaps. The easiest distribution to
	// fit; the paper reports >80%% of it absorbed by the learned layer.
	Libio Name = "libio"
	// OSM mimics uniformly sampled OpenStreetMap cell IDs: heavily
	// clustered locations with bursty, heavy-tailed gaps — locally rough
	// and the hardest to fit with linear models.
	OSM Name = "osm"
	// LongLat mimics the paper's longitude/latitude transform: smooth
	// non-linear curvature overlaid with clustered noise.
	LongLat Name = "longlat"
	// Uniform draws keys uniformly from the full 64-bit space (globally
	// linear CDF; a control).
	Uniform Name = "uniform"
	// Sequential emits 1..n (perfectly linear; a control).
	Sequential Name = "sequential"
)

// Names returns the four paper datasets in the order the paper plots them.
func Names() []Name { return []Name{FB, Libio, OSM, LongLat} }

// AllNames returns every generator, including synthetic controls.
func AllNames() []Name {
	return []Name{FB, Libio, OSM, LongLat, Uniform, Sequential}
}

// Generate returns n strictly ascending unique keys for the named dataset.
// It panics on an unknown name (programmer error).
func Generate(name Name, n int, seed uint64) []uint64 {
	if n <= 0 {
		return nil
	}
	r := xrand.New(seed ^ xrand.HashString(string(name)))
	switch name {
	case FB:
		return genFB(n, r)
	case Libio:
		return genLibio(n, r)
	case OSM:
		return genOSM(n, r)
	case LongLat:
		return genLongLat(n, r)
	case Uniform:
		return genUniform(n, r)
	case Sequential:
		return genSequential(n)
	default:
		panic(fmt.Sprintf("dataset: unknown generator %q", name))
	}
}

// KVs returns Generate(name, n, seed) as key/value pairs suitable for
// Bulkload. Values are a cheap mix of the key so correctness tests can
// verify payloads.
func KVs(name Name, n int, seed uint64) []index.KV {
	keys := Generate(name, n, seed)
	return Pairs(keys)
}

// Pairs maps sorted keys to KV pairs with the canonical derived value.
func Pairs(keys []uint64) []index.KV {
	pairs := make([]index.KV, len(keys))
	for i, k := range keys {
		pairs[i] = index.KV{Key: k, Value: ValueFor(k)}
	}
	return pairs
}

// ValueFor is the canonical value stored for a key in tests and benchmarks.
func ValueFor(k uint64) uint64 { return k*0x9e3779b97f4a7c15 + 1 }

// --- generators -------------------------------------------------------

// genSequential: 1..n.
func genSequential(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	return keys
}

// genUniform: n unique uniform draws, sorted.
func genUniform(n int, r *xrand.Rng) []uint64 {
	// Sorted uniform via gap method: exponential(1) gaps normalised to
	// the 64-bit range give exactly the order statistics of uniform
	// draws without a sort, and guarantee strict ascent.
	//
	// Generated in place: the gaps are staged as float64 bit patterns in
	// the result slice itself and overwritten front-to-back by the
	// normalisation pass (each slot is read before it is written), so
	// peak residency is one 8-byte word per key instead of the 16 a
	// separate gap array cost — at the paper-scale 200M-key tier that is
	// 1.6 GB of peak RSS instead of 3.2 GB. The (n+1)th gap only feeds
	// the total, so it never needs a slot. Draw order is unchanged,
	// keeping the output byte-identical for any (n, seed).
	keys := make([]uint64, n)
	var total float64
	for i := 0; i < n; i++ {
		g := r.Exp()
		keys[i] = math.Float64bits(g)
		total += g
	}
	total += r.Exp()
	const span = float64(math.MaxUint64) * 0.999
	acc := 0.0
	prev := uint64(0)
	for i := 0; i < n; i++ {
		acc += math.Float64frombits(keys[i])
		k := uint64(acc / total * span)
		if k <= prev {
			k = prev + 1
		}
		keys[i] = k
		prev = k
	}
	return keys
}

// genLibio: dense sequential IDs with rare small gaps and occasional short
// bursts of slightly larger spacing (deleted-repository ranges).
func genLibio(n int, r *xrand.Rng) []uint64 {
	keys := make([]uint64, n)
	cur := uint64(1_000_000)
	for i := 0; i < n; i++ {
		switch {
		case r.Float() < 0.002: // rare medium gap
			cur += 500 + r.Uint64n(4000)
		case r.Float() < 0.05: // small gap
			cur += 2 + r.Uint64n(6)
		default: // dense run
			cur++
		}
		keys[i] = cur
	}
	return keys
}

// genFB: long dense stretches, occasional million-scale jumps, and a heavy
// tail in the top percentile (the famous fb outliers).
func genFB(n int, r *xrand.Rng) []uint64 {
	keys := make([]uint64, n)
	cur := uint64(1 << 32)
	tailStart := n - n/100 // last 1% is the heavy tail
	for i := 0; i < n; i++ {
		var gap uint64
		switch {
		case i >= tailStart:
			// Heavy tail: lognormal giant gaps, capped so the running
			// sum can never overflow the key space.
			g := math.Exp(30 + 6*r.Norm())
			if g > 1e15 {
				g = 1e15
			}
			gap = uint64(g) + 1
		case r.Float() < 0.0005:
			gap = 1_000_000 + r.Uint64n(50_000_000)
		case r.Float() < 0.3:
			gap = 1 + r.Uint64n(20)
		default:
			gap = 1 + r.Uint64n(4)
		}
		cur = step(cur, gap, n-i)
		keys[i] = cur
	}
	return keys
}

// step advances cur by gap while guaranteeing strict ascent and leaving at
// least `remaining` units of headroom below MaxUint64 so later keys can
// still ascend.
func step(cur, gap uint64, remaining int) uint64 {
	headroom := math.MaxUint64 - cur
	reserve := uint64(remaining) + 1
	if headroom <= reserve {
		return cur + 1
	}
	if gap > headroom-reserve {
		gap = headroom - reserve
	}
	if gap == 0 {
		gap = 1
	}
	return cur + gap
}

// genOSM: clustered locations. Runs of dense keys (a populated cell)
// separated by heavy-tailed jumps, with intra-run gap variance high enough
// that no long linear model fits — the paper's hardest dataset.
func genOSM(n int, r *xrand.Rng) []uint64 {
	keys := make([]uint64, n)
	cur := uint64(1 << 40)
	i := 0
	for i < n {
		run := 20 + int(r.Uint64n(400)) // cluster size
		if i+run > n {
			run = n - i
		}
		for j := 0; j < run; j++ {
			// Pareto-ish intra-cluster gaps: mostly small, often huge
			// relative to neighbours, so local slope varies wildly.
			g := uint64(math.Pow(r.Float()+1e-9, -1.3))
			cur = step(cur, 1+g+r.Uint64n(64), n-i)
			keys[i] = cur
			i++
		}
		// Inter-cluster jump.
		cur = step(cur, 1_000_000+uint64(math.Exp(14+4*r.Norm())), n-i)
	}
	return keys
}

// genLongLat: smooth non-linear curvature (the lon/lat transform bends the
// CDF) overlaid with clustered noise around synthetic population centres.
func genLongLat(n int, r *xrand.Rng) []uint64 {
	keys := make([]uint64, n)
	cur := uint64(1 << 36)
	for i := 0; i < n; i++ {
		// Curvature term: slope oscillates slowly across the keyspace,
		// so any fixed-slope model drifts out of bound quickly.
		phase := float64(i) / float64(n) * 40 * math.Pi
		curve := 1.0 + 0.95*math.Sin(phase)
		base := uint64(curve*4096) + 1
		noise := r.Uint64n(base)
		if r.Float() < 0.01 { // sparse ocean stretch
			noise += 1 << 22
		}
		cur = step(cur, base+noise, n-i)
		keys[i] = cur
	}
	return keys
}
