package core

import "testing"

// TestBackoffPauseBounds checks the decorrelated-jitter contract: every
// post-spin pause is drawn from [backoffBasePause, min(3×previous,
// backoffMaxPause)], so pauses are bounded and per-step growth never
// exceeds 3×.
func TestBackoffPauseBounds(t *testing.T) {
	var bo backoff
	prev := uint32(0)
	for i := 0; i < 10000; i++ {
		p := bo.nextPause()
		if p < backoffBasePause || p > backoffMaxPause {
			t.Fatalf("draw %d: pause %d outside [%d, %d]", i, p, backoffBasePause, backoffMaxPause)
		}
		if prev != 0 {
			hi := 3 * prev
			if hi > backoffMaxPause {
				hi = backoffMaxPause
			}
			if p > hi {
				t.Fatalf("draw %d: pause %d exceeds 3×previous bound %d (prev %d)", i, p, hi, prev)
			}
		}
		prev = p
	}
}

// TestBackoffJitterDecorrelates checks that independent backoff sequences
// diverge: two goroutines entering the yield phase together must not draw
// identical pause schedules, or they would reconvoy in lockstep.
func TestBackoffJitterDecorrelates(t *testing.T) {
	var a, b backoff
	same := 0
	const draws = 256
	for i := 0; i < draws; i++ {
		if a.nextPause() == b.nextPause() {
			same++
		}
	}
	if same > draws/4 {
		t.Fatalf("sequences collide on %d/%d draws; jitter is not decorrelated", same, draws)
	}
}

// TestBackoffWaitProgresses checks wait() never blocks and transitions
// from the spin phase to the jitter phase at backoffSpinAttempts.
func TestBackoffWaitProgresses(t *testing.T) {
	var bo backoff
	for i := 0; i < backoffSpinAttempts+32; i++ {
		bo.wait()
	}
	if bo.attempt != backoffSpinAttempts+32 {
		t.Fatalf("attempt counter = %d, want %d", bo.attempt, backoffSpinAttempts+32)
	}
	if bo.pause == 0 {
		t.Fatal("post-spin phase never seeded the jitter state")
	}
}
