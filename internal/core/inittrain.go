package core

// Automatic initial training: an ALT built with New and never Bulkloaded
// routes everything to the ART layer. Once that layer crosses
// Options.AutoTrainThreshold keys, the index bootstraps a learned layer:
//
//  1. A one-slot bootstrap model holding the smallest key is swapped in
//     (under preMu, so no pre-table writer is mid-flight). Every other key
//     then predicts to that occupied slot and routes to ART — invariant 2
//     holds immediately.
//  2. The ordinary retraining machinery (§III-F) rebuilds the bootstrap
//     model's range — the whole keyspace — gathering the ART residents
//     into freshly trained GPL models under the freeze protocol.
//
// This generalises Bulkload to dynamically-grown tables (e.g. the memdb
// substrate) without any separate migration protocol.

// maybeTrainInitial triggers the bootstrap once the pre-table ART layer is
// large enough to be worth training.
func (t *ALT) maybeTrainInitial() {
	th := t.opts.AutoTrainThreshold
	if th < 0 {
		return
	}
	if th == 0 {
		th = 8192
	}
	if t.tree.Len() < th {
		return
	}
	t.trainInitial()
}

func (t *ALT) trainInitial() {
	if !t.bootMu.TryLock() {
		return
	}
	defer t.bootMu.Unlock()
	if len(t.tab.Load().models) != 0 {
		return
	}
	var k0, v0 uint64
	got := false
	t.tree.Scan(0, 1, func(k, v uint64) bool {
		k0, v0 = k, v
		got = true
		return false
	})
	if !got {
		return
	}
	if t.eps <= 0 {
		eps := float64(t.opts.ErrorBound)
		if eps <= 0 {
			eps = float64(t.tree.Len()) / 1000
		}
		if eps < 16 {
			eps = 16
		}
		t.eps = eps
	}
	boot := emptyModel(t.blocks, k0)
	boot.keyRef(0).Store(k0)
	boot.valRef(0).Store(v0)
	boot.metaRef(0).Store(slotOccupied)
	// The bootstrap model has no sidecar yet every pre-table key except k0
	// is ART-resident; stamp the epoch so absentInART can never prove
	// absence against it. The immediate rebuild below replaces it with
	// properly-built models (and fresh sidecars).
	boot.artEpoch.Store(1)
	newTab := &table{firsts: []uint64{k0}, models: []*model{boot}}
	// The swap must not interleave with a pre-table tree mutation whose
	// key could otherwise end up unreachable behind fresh empty slots.
	t.preMu.Lock()
	t.tab.Store(newTab)
	t.preMu.Unlock()
	// k0 momentarily lives in both layers; the rebuild gathers and dedups
	// it (the model copy wins) while retraining the whole keyspace. The
	// bootstrap rebuild runs synchronously through the ordinary pipeline —
	// arming the model first so writer triggers cannot double-queue it.
	boot.retrainArmed.Store(true)
	t.ret.pending.Add(1)
	t.processRetrain(boot, false)
}
