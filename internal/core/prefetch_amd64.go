//go:build amd64

package core

import "unsafe"

// prefetcht0 issues PREFETCHT0 for the cache line at p: a hint to pull
// the line into every cache level without stalling. Purely advisory — no
// architectural effect, safe on any address.
//
//go:noescape
func prefetcht0(p unsafe.Pointer)
