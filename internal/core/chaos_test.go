//go:build failpoint

// Chaos suite for the §III-E seqlock/retrain protocol. Build with
// -tags failpoint; see DESIGN.md ("Failure model") for the site catalog.
//
// The harness runs mixed Get/Insert/Update/Remove/Scan/GetBatch workloads
// while failpoints stretch the protocol's danger windows (write-locked
// slots, retraining freezes, table publishes), then quiesces and audits
// the survivors against a deterministically-known expected state:
//
//   - no lost acked writes: every acknowledged insert/update is readable
//     with its last-written value (last-writer-wins per key);
//   - no ghost or duplicate keys: a full scan yields exactly the expected
//     key set, strictly ascending;
//   - consistent counts: Len matches, GetBatch agrees with Get.
package core

import (
	"fmt"
	"sync"
	"testing"

	"altindex/internal/failpoint"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/xrand"
)

// auditALT checks the post-quiesce invariants of idx against the expected
// key/value map and returns every violation found (nil means consistent).
// It is the single source of truth the negative self-test tampers with.
func auditALT(idx *ALT, want map[uint64]uint64) []string {
	const maxViolations = 25
	var bad []string
	report := func(format string, args ...any) bool {
		bad = append(bad, fmt.Sprintf(format, args...))
		return len(bad) < maxViolations
	}

	// No lost acked writes, last-writer-wins.
	for k, v := range want {
		got, ok := idx.Get(k)
		if !ok {
			if !report("lost acked write: Get(%d) absent, want %d", k, v) {
				return bad
			}
		} else if got != v {
			if !report("stale value: Get(%d) = %d, want %d", k, got, v) {
				return bad
			}
		}
	}

	// Full scan: strictly ascending, no ghosts, no duplicates, complete.
	seen := 0
	var prev uint64
	idx.Scan(0, len(want)+64, func(k, v uint64) bool {
		if seen > 0 && k <= prev {
			report("scan order violation: %d after %d", k, prev)
		}
		prev = k
		seen++
		wv, ok := want[k]
		if !ok {
			report("ghost key in scan: %d", k)
		} else if wv != v {
			report("scan value mismatch: key %d = %d, want %d", k, v, wv)
		}
		return len(bad) < maxViolations
	})
	if len(bad) >= maxViolations {
		return bad
	}
	if seen != len(want) {
		report("scan visited %d keys, want %d", seen, len(want))
	}
	if n := idx.Len(); n != len(want) {
		report("Len = %d, want %d", n, len(want))
	}

	// The batched read path must agree with the per-key path.
	keys := make([]uint64, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	idx.GetBatch(keys, vals, found)
	for i, k := range keys {
		if !found[i] || vals[i] != want[k] {
			if !report("GetBatch(%d) = (%d,%v), want %d", k, vals[i], found[i], want[k]) {
				return bad
			}
		}
	}
	return bad
}

// chaosConfig describes one chaos scenario: which sites are armed with
// which specs while the workload runs.
type chaosConfig struct {
	name  string
	specs map[string]string
	// mustFire lists sites whose hit counter must be positive after the
	// run, proving the scenario exercised its target window.
	mustFire []string
	// opts overrides the index configuration (nil means the harness
	// default), letting scenarios pick queue sizes and worker counts.
	opts *Options
	// check, when set, runs scenario-specific assertions after the audit.
	check func(t *testing.T, idx *ALT)
}

// runChaosWorkload drives writers+readers over a bulkloaded index with the
// given failpoints armed, quiesces, and returns the index plus the exact
// expected final state.
//
// Determinism of the expectation: the key grid is partitioned by writer
// (grid index mod writers), so every key has exactly one writer and its
// final value/liveness is decided by that writer's own deterministic op
// stream — concurrency changes interleavings but never ownership.
func runChaosWorkload(t *testing.T, cfg chaosConfig) (*ALT, map[uint64]uint64) {
	t.Helper()
	const (
		writers      = 4
		readers      = 3
		bulkKeys     = 1 << 13
		opsPerWriter = 1200
		keyStride    = 64
	)

	opts := Options{ErrorBound: 16, RetrainMinInserts: 192}
	if cfg.opts != nil {
		opts = *cfg.opts
	}
	idx := New(opts)
	t.Cleanup(func() { idx.Close() })
	// Grid keys i*stride+7 are writer-owned; i*stride+31 are immutable
	// sentinels no writer touches, so readers can assert exact values
	// mid-flight (a live no-lost-writes check, not just post-quiesce).
	var pairs []index.KV
	for i := uint64(0); i < bulkKeys; i++ {
		pairs = append(pairs,
			index.KV{Key: i*keyStride + 7, Value: i ^ 0xABCD},
			index.KV{Key: i*keyStride + 31, Value: i*3 + 1},
		)
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}

	for site, spec := range cfg.specs {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	type finalState struct {
		val  uint64
		live bool
	}
	finals := make([]map[uint64]finalState, writers)
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := xrand.New(uint64(0x9E37*w + 11))
			mine := make(map[uint64]finalState)
			finals[w] = mine
			for op := 0; op < opsPerWriter; op++ {
				// Own grid slot: index ≡ w (mod writers). Half the ops
				// target fresh off-grid keys (offset 13) so inserts land
				// in gaps and conflict-evict to ART, not only upsert.
				gi := uint64(rng.Intn(bulkKeys*2))*uint64(writers) + uint64(w)
				off := uint64(7)
				if gi&1 == 1 {
					off = 13
				}
				k := gi*keyStride + off
				v := uint64(op)<<16 | uint64(w)
				switch rng.Intn(10) {
				case 0, 1: // remove
					idx.Remove(k)
					mine[k] = finalState{}
				case 2: // update (no-op when absent; state unchanged then)
					if idx.Update(k, v) {
						mine[k] = finalState{val: v, live: true}
					}
				case 3, 4: // batched insert of a small run of own keys
					batch := make([]index.KV, 0, 16)
					for j := uint64(0); j < 16; j++ {
						bk := (gi + j*uint64(writers)) * keyStride
						batch = append(batch, index.KV{Key: bk + off, Value: v + j})
					}
					if err := idx.InsertBatch(batch); err != nil {
						t.Errorf("InsertBatch: %v", err)
						return
					}
					for j, kv := range batch {
						mine[kv.Key] = finalState{val: v + uint64(j), live: true}
					}
				default: // insert (upsert)
					if err := idx.Insert(k, v); err != nil {
						t.Errorf("Insert(%d): %v", k, err)
						return
					}
					mine[k] = finalState{val: v, live: true}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			rng := xrand.New(uint64(0xFEED + r))
			keys := make([]uint64, 128)
			vals := make([]uint64, 128)
			found := make([]bool, 128)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				// Immutable sentinels must always read exactly.
				for j := 0; j < 64; j++ {
					i := uint64(rng.Intn(bulkKeys))
					v, ok := idx.Get(i*keyStride + 31)
					if !ok || v != i*3+1 {
						t.Errorf("sentinel %d = (%d,%v), want %d", i*keyStride+31, v, ok, i*3+1)
						return
					}
				}
				// Scans must stay strictly ascending mid-retrain.
				var prev uint64
				n := 0
				start := uint64(rng.Intn(bulkKeys)) * keyStride
				idx.Scan(start, 256, func(k, v uint64) bool {
					if n > 0 && k <= prev {
						t.Errorf("mid-flight scan order violation: %d after %d", k, prev)
						return false
					}
					if k < start {
						t.Errorf("scan yielded key %d below start %d", k, start)
						return false
					}
					prev = k
					n++
					return true
				})
				// Batched reads of sentinels agree with Get.
				for j := range keys {
					keys[j] = uint64(rng.Intn(bulkKeys))*keyStride + 31
				}
				idx.GetBatch(keys, vals, found)
				for j, k := range keys {
					if !found[j] || vals[j] != (k-31)/keyStride*3+1 {
						t.Errorf("GetBatch sentinel %d = (%d,%v)", k, vals[j], found[j])
						return
					}
				}
			}
		}(r)
	}

	// Writers bound the run; readers loop until the writers are done.
	writerWg.Wait()
	close(stop)
	readerWg.Wait()

	// Drain the asynchronous retraining pipeline so the audit observes a
	// settled index, not a mid-rebuild one. The failpoints stay armed
	// through the drain (the deferred DisableAll disarms them at return):
	// on a small box the pipeline may only get scheduled once writers
	// stop, so rebuild-side sites fire during Quiesce — disarming earlier
	// would make mustFire miss exactly the runs it exists to prove.
	idx.Quiesce()

	// Merge expected state: bulkload baseline, then each writer's final
	// word on the keys it owns.
	want := make(map[uint64]uint64, 2*bulkKeys)
	for _, kv := range pairs {
		want[kv.Key] = kv.Value
	}
	for _, mine := range finals {
		for k, fs := range mine {
			if fs.live {
				want[k] = fs.val
			} else {
				delete(want, k)
			}
		}
	}
	return idx, want
}

func TestChaosProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not -short")
	}
	for _, cfg := range []chaosConfig{
		{
			// Retrain storm: every freeze and publish window stretched
			// while writers force frequent rebuilds (RetrainMinInserts=192).
			name: "retrain-storm",
			specs: map[string]string{
				"core/retrain/freeze":  "delay(50us)",
				"core/retrain/publish": "delay(50us)",
				"core/fpbuf/register":  "yield",
			},
			mustFire: []string{"core/retrain/freeze", "core/retrain/publish"},
		},
		{
			// Descheduled writers: a fraction of slot critical sections
			// yield or stall mid-seqlock, forcing reader retry loops and
			// the full backoff path.
			name: "descheduled-writers",
			specs: map[string]string{
				"core/insert/locked":    "2%delay(50us)",
				"core/writeback/locked": "yield",
			},
			mustFire: []string{"core/insert/locked"},
		},
		{
			// Stale-table batches: batched operations pause after loading
			// the model table, so retraining replaces it mid-batch.
			name: "stale-batch-table",
			specs: map[string]string{
				"core/batch/reload":    "delay(100us)",
				"core/retrain/publish": "yield",
			},
			mustFire: []string{"core/batch/reload"},
		},
		{
			// Retrain overflow: a one-deep queue behind one stalled worker
			// forces trigger drops on the writer's enqueue path. The audit
			// proves dropped triggers are deferred, never lost — and the
			// check proves the overflow path actually ran.
			name: "retrain-overflow",
			specs: map[string]string{
				"core/retrain/enqueue": "delay(100us)",
				"core/retrain/freeze":  "delay(2ms)",
			},
			mustFire: []string{"core/retrain/enqueue"},
			opts:     &Options{ErrorBound: 16, RetrainMinInserts: 32, RetrainWorkers: 1, RetrainQueue: 1},
			check: func(t *testing.T, idx *ALT) {
				// The workload's trigger arrivals are timing-dependent —
				// on a quiet box the single worker can drain the one-deep
				// queue between them and the run ends with zero organic
				// drops. The drop path itself is what's under test, so
				// force it deterministically then: hammer enqueues faster
				// than the worker can dequeue. Two back-to-back sends
				// against a full queue overflow on the second, so the
				// budget is pure paranoia.
				for i := 0; i < 1000 && idx.ret.drops.Load() == 0; i++ {
					idx.enqueueRetrain(idx.tab.Load().models[0])
				}
				if idx.ret.drops.Load() == 0 {
					t.Error("overflow scenario produced no trigger drops")
				}
			},
		},
		{
			// Concurrent splice: several workers rebuild disjoint ranges
			// while every splice stalls between taking the publish lock and
			// re-resolving the table — the interleaving per-range admission
			// must make safe (each splice lands on a table a concurrent
			// rebuild just replaced).
			name: "concurrent-splice",
			specs: map[string]string{
				"core/retrain/splice":  "delay(200us)",
				"core/retrain/publish": "yield",
			},
			mustFire: []string{"core/retrain/splice"},
			opts:     &Options{ErrorBound: 16, RetrainMinInserts: 192, RetrainWorkers: 4, RetrainQueue: 64},
		},
		{
			// Epoch-reclamation race: every retirement stalls between the
			// table publish and the span joining the limbo list, while
			// publishes yield — readers pinned on the old table overlap
			// maximally with limbo reclamation. Under -tags failpoint the
			// arena poisons recycled chunks, so a premature reclaim is not
			// a silent heap reuse but a deterministic 0xDB read the audit
			// (lost writes, ghost keys) catches.
			name: "epoch-reclaim-race",
			specs: map[string]string{
				"core/epoch/retire":    "delay(100us)",
				"core/retrain/publish": "yield",
			},
			mustFire: []string{"core/epoch/retire"},
			// A low trigger threshold forces many rebuilds (each retiring
			// at least one span), so retirement and reader pins overlap
			// throughout the run rather than once at the end.
			opts: &Options{ErrorBound: 16, RetrainMinInserts: 32, RetrainWorkers: 4, RetrainQueue: 64},
			check: func(t *testing.T, idx *ALT) {
				es := idx.ebr.Stats()
				if es.Reclaims == 0 {
					t.Error("epoch scenario reclaimed nothing; retirement path did not run")
				}
				if es.LimboCount != 0 {
					t.Errorf("limbo not drained after quiesce: %d items", es.LimboCount)
				}
			},
		},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			idx, want := runChaosWorkload(t, cfg)
			for _, site := range cfg.mustFire {
				if failpoint.Hits(site) == 0 {
					t.Errorf("site %s never fired; scenario did not exercise its window", site)
				}
			}
			for _, b := range indextest.Audit(idx, want) {
				t.Error(b)
			}
			if idx.retrains.Load() == 0 {
				t.Error("no retraining happened; chaos run did not stress the rebuild path")
			}
			if cfg.check != nil {
				cfg.check(t, idx)
			}
		})
	}
}

// TestChaosAuditSelfTest is the negative control: the audit must actually
// detect each class of violation when the expectation is deliberately
// wrong. A green chaos suite is meaningless if the auditor is blind.
func TestChaosAuditSelfTest(t *testing.T) {
	idx := New(Options{ErrorBound: 16})
	var pairs []index.KV
	want := make(map[uint64]uint64)
	for i := uint64(0); i < 4096; i++ {
		k, v := i*32+5, i^0x5A5A
		pairs = append(pairs, index.KV{Key: k, Value: v})
		want[k] = v
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	if bad := auditALT(idx, want); len(bad) != 0 {
		t.Fatalf("clean index audits dirty: %v", bad)
	}
	tamper := func(name string, mutate func(map[uint64]uint64)) {
		w := make(map[uint64]uint64, len(want))
		for k, v := range want {
			w[k] = v
		}
		mutate(w)
		if bad := auditALT(idx, w); len(bad) == 0 {
			t.Errorf("%s: audit failed to detect the violation", name)
		}
	}
	tamper("lost-write", func(w map[uint64]uint64) { w[999999999] = 1 })
	tamper("stale-value", func(w map[uint64]uint64) { w[5] = w[5] + 1 })
	tamper("ghost-key", func(w map[uint64]uint64) { delete(w, 5) })
}
