//go:build failpoint

package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/failpoint"
	"altindex/internal/index"
	"altindex/internal/xrand"
)

// TestScanDedupDuringStretchedMigration stretches the §III-F freeze and
// publish windows while a hot insert stream keeps models migrating, and
// scans continuously through both the bounded kernel and the callback
// shim. Inside a migration window the same key is transiently reachable
// through the frozen model and its ART-migrated copy; every scan must
// still emit strictly ascending keys (no duplicate = the dedup held, and
// it must hold by preferring the learned copy) with exact values — every
// write in this test is Insert(k, ValueFor(k)), so any torn or
// double-merged pair is visible.
func TestScanDedupDuringStretchedMigration(t *testing.T) {
	const grid = 1 << 12
	keys := make([]uint64, 0, grid)
	for i := uint64(0); i < grid; i++ {
		keys = append(keys, i*16)
	}
	alt := mustBulk(t, Options{ErrorBound: 16, RetrainMinInserts: 128}, keys)

	for site, spec := range map[string]string{
		"core/retrain/freeze":  "delay(500us)",
		"core/retrain/publish": "delay(500us)",
	} {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var inserted atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := xrand.New(42)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Dense off-grid inserts concentrate on a few models, pushing
			// them over the retrain threshold again and again.
			k := uint64(rng.Intn(grid))*16 + 1 + uint64(rng.Intn(8))
			if err := alt.Insert(k, dataset.ValueFor(k)); err != nil {
				t.Errorf("Insert(%d): %v", k, err)
				return
			}
			inserted.Add(1)
		}
	}()

	rng := xrand.New(17)
	dst := make([]index.KV, 0, 4096)
	for trial := 0; trial < 250; trial++ {
		start := uint64(rng.Intn(grid * 16))
		max := 64 + rng.Intn(2048)
		dst = alt.ScanAppend(dst[:0], start, ^uint64(0), max)
		for i, kv := range dst {
			if i > 0 && kv.Key <= dst[i-1].Key {
				t.Fatalf("trial %d: duplicate/disordered key %d after %d during stretched migration",
					trial, kv.Key, dst[i-1].Key)
			}
			if kv.Value != dataset.ValueFor(kv.Key) {
				t.Fatalf("trial %d: key %d carries %#x, want ValueFor", trial, kv.Key, kv.Value)
			}
		}
		// Callback shim over the same window.
		var prev uint64
		n := 0
		alt.Scan(start, 256, func(k, v uint64) bool {
			if n > 0 && k <= prev {
				t.Fatalf("trial %d: Scan shim duplicate/disordered %d after %d", trial, k, prev)
			}
			prev = k
			n++
			return true
		})
	}
	close(stop)
	wg.Wait()
	if inserted.Load() == 0 {
		t.Fatal("insert stream never ran")
	}
	alt.Quiesce()
	if alt.retrains.Load() == 0 {
		t.Fatal("no retraining fired; the stretched windows were never exercised")
	}
	for _, site := range []string{"core/retrain/freeze", "core/retrain/publish"} {
		if failpoint.Hits(site) == 0 {
			t.Errorf("site %s never fired; the migration window was not stretched", site)
		}
	}
}
