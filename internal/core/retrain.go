package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/arena"
	"altindex/internal/gpl"
)

// §III-F retraining, asynchronous edition.
//
// The paper's trigger — a model whose runtime insertions exceed its build
// size is crowded, so subsequent inserts all spill into ART — used to run
// the whole freeze→collect→GPL-retrain→splice rebuild inline on the
// triggering writer, under one global mutex. That made every crowded model
// a tail-latency event for whichever writer tripped it, and serialized
// rebuilds of unrelated key ranges behind each other.
//
// The pipeline now has three stages:
//
//  1. Trigger (writer's critical path): maybeRetrain costs two counter
//     loads; past the threshold, one CAS on the model's armed flag dedups
//     concurrent triggers and the model pointer goes into a bounded
//     channel. On overflow the trigger is dropped but the model re-armed,
//     so the next threshold-crossing insert re-triggers it — a dropped
//     trigger is deferred, never lost.
//  2. Admission (worker): the worker resolves the model's immutable
//     routing range and claims it in the active-range set. Ranges of live
//     models are disjoint, so unrelated rebuilds run concurrently; the
//     claim exists to serialize against splice-time placeholder absorption
//     and to make overlap structurally impossible.
//  3. Rebuild + publish: the freeze window is shrunk by hoisting the
//     expensive work out of it (see rebuild), and the copy-on-write table
//     splice serializes under a short publish lock during which adjacent
//     empty placeholder models are absorbed, so the table stops growing
//     monotonically under churn.
//
// Options.RetrainWorkers < 0 restores the synchronous behavior (the
// triggering writer pays the rebuild inline) as the tail-latency baseline.

// keyRange is an inclusive key interval claimed by an in-flight rebuild.
type keyRange struct{ lo, hi uint64 }

// retrainer owns the background retraining state of one ALT.
type retrainer struct {
	q      chan *model
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	closed atomic.Bool

	// mu guards active, the set of key ranges claimed by in-flight
	// rebuilds (including splice-time placeholder absorption).
	mu     sync.Mutex
	active []keyRange

	// publishMu serializes copy-on-write table splices. Held only for the
	// splice itself (array copies + store), never across a freeze or a
	// segmentation.
	publishMu sync.Mutex

	pending  atomic.Int64 // triggers accepted and not yet finished
	inflight atomic.Int64 // rebuilds currently executing
	drops    atomic.Int64 // triggers dropped on queue overflow (re-armed)
	merges   atomic.Int64 // placeholder models absorbed during splices

	freezeNsTotal atomic.Int64 // cumulative freeze-window duration
	freezeNsMax   atomic.Int64 // longest single freeze window
}

// ensureWorkers starts the worker pool on the first trigger, so idle
// indexes never own goroutines.
func (r *retrainer) ensureWorkers(t *ALT) {
	r.once.Do(func() { r.launch(t) })
}

func (r *retrainer) launch(t *ALT) {
	n := t.opts.RetrainWorkers
	if n < 0 {
		return // synchronous mode: no pool
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0) / 2
		if n < 1 {
			n = 1
		}
		if n > 4 {
			n = 4
		}
	}
	for i := 0; i < n; i++ {
		r.wg.Add(1)
		labels := pprof.Labels("task", "retrain-worker", "worker", strconv.Itoa(i))
		go func() {
			defer r.wg.Done()
			// Label the goroutine so CPU and goroutine profiles attribute
			// pipeline time to the pool instead of an anonymous func; the
			// per-rebuild key range is layered on in processRetrain.
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), labels))
			for {
				select {
				case <-r.stop:
					return
				case m := <-r.q:
					t.processRetrain(m, true)
				}
			}
		}()
	}
}

// tryAcquire claims [lo, hi] if it overlaps no active claim.
func (r *retrainer) tryAcquire(lo, hi uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.active {
		if lo <= a.hi && a.lo <= hi {
			return false
		}
	}
	r.active = append(r.active, keyRange{lo, hi})
	return true
}

func (r *retrainer) release(lo, hi uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, a := range r.active {
		if a.lo == lo && a.hi == hi {
			r.active[i] = r.active[len(r.active)-1]
			r.active = r.active[:len(r.active)-1]
			return
		}
	}
}

// maybeRetrain is the writer-side trigger (§III-F): two counter loads on
// the fast path, one CAS plus a non-blocking channel send when the model
// crosses its threshold. The trigger is floored (Options.RetrainMinInserts)
// so small models do not thrash through rebuilds.
func (t *ALT) maybeRetrain(m *model) {
	if t.opts.DisableRetraining {
		return
	}
	threshold := int64(m.buildSize)
	if min := int64(t.opts.RetrainMinInserts); threshold < min {
		threshold = min
	}
	if m.inserts.Load()+m.overflow.Load() <= threshold {
		return
	}
	if !m.retrainArmed.CompareAndSwap(false, true) {
		return // already queued or mid-rebuild
	}
	if t.opts.RetrainWorkers < 0 {
		// Synchronous baseline: the triggering writer pays the rebuild.
		t.ret.pending.Add(1)
		t.processRetrain(m, false)
		return
	}
	t.enqueueRetrain(m)
}

// enqueueRetrain hands an armed model to the worker pool without blocking
// the writer. A full queue drops the trigger but disarms the model, so a
// later threshold-crossing insert re-enqueues it: the pre-async code lost
// such triggers entirely (a failed TryLock left the crowded model silently
// crowded until the next insert happened to re-trip the threshold — which
// a starved model never did).
func (t *ALT) enqueueRetrain(m *model) {
	r := &t.ret
	if r.closed.Load() {
		m.retrainArmed.Store(false)
		return
	}
	r.ensureWorkers(t)
	fpRetrainEnqueue.Inject()
	r.pending.Add(1)
	select {
	case r.q <- m:
	default:
		r.pending.Add(-1)
		r.drops.Add(1)
		m.retrainArmed.Store(false)
	}
}

// processRetrain is one dequeued trigger: identity check, range admission,
// rebuild. requeue selects the admission-failure policy — workers push the
// still-armed model back (a crowding model waiting out a neighboring
// splice must not be forgotten), synchronous callers drop and disarm.
//
// Accounting contract: pending was incremented when the trigger was
// accepted; every terminal exit decrements it, a requeue is net zero.
func (t *ALT) processRetrain(m *model, requeue bool) {
	r := &t.ret
	finish := func() {
		m.retrainArmed.Store(false)
		r.pending.Add(-1)
	}
	cur := t.tab.Load()
	mm, pos := cur.find(m.first)
	if mm != m {
		finish() // replaced by a rebuild or absorbed since the trigger
		return
	}
	lo, end := cur.rangeBounds(pos)
	if !r.tryAcquire(lo, end) {
		if requeue {
			select {
			case r.q <- m: // stays armed; net-zero on pending
			default:
				r.drops.Add(1)
				finish()
			}
			runtime.Gosched() // let the conflicting rebuild progress
			return
		}
		finish()
		return
	}
	// Admitted. Re-verify identity: a splice may have replaced m between
	// find and the claim. Boundaries are immutable while a model lives, so
	// lo/end still denote this claim's range either way.
	if mm, _ := t.tab.Load().find(m.first); mm != m {
		r.release(lo, end)
		finish()
		return
	}
	// Shared rebuild budget: when a gate is configured (the sharded
	// front-end hands one gate to every shard), acquire a slot before the
	// rebuild so the per-index pipelines cannot collectively oversubscribe
	// the CPU. The range claim is already held, which is safe: claims are
	// per-index and rebuilds never acquire a second gate slot, so gate
	// waiters only ever wait on rebuilds that finish on their own.
	if gate := t.opts.RetrainGate; gate != nil {
		select {
		case gate <- struct{}{}:
		case <-r.stop:
			r.release(lo, end)
			finish()
			return
		}
	}
	r.inflight.Add(1)
	// Scope the claimed key range onto the profiler labels for the
	// rebuild's duration (pprof.Do restores the caller's labels after),
	// so a CPU profile splits rebuild cost per range — including for the
	// synchronous baseline, where the triggering writer runs this.
	pprof.Do(context.Background(),
		pprof.Labels("task", "retrain-worker",
			"range", fmt.Sprintf("%#x-%#x", lo, end)),
		func(context.Context) { t.rebuild(m, lo, end) })
	r.inflight.Add(-1)
	if gate := t.opts.RetrainGate; gate != nil {
		<-gate
	}
	r.release(lo, end)
	finish()
}

// rangeBounds returns the inclusive key range routed to the model at
// position pos. The bounds are immutable while the model lives: rebuilds
// preserve the spliced range's lower boundary (see rebuild) and only the
// owner of a range's claim may remove its boundaries.
func (tb *table) rangeBounds(pos int) (lo, end uint64) {
	lo = tb.firsts[pos]
	if pos == 0 {
		lo = 0 // model 0 also owns all keys below its first
	}
	end = tb.upperBound(pos) // exclusive, except MaxUint64 (inclusive)
	if pos+1 < len(tb.firsts) {
		end--
	}
	return lo, end
}

// rebuild is the expansion of §III-F, restructured around a copy-on-write
// table splice with a deliberately small freeze window:
//
//	pre-freeze   snapshot candidate keys (best-effort slot reads + the
//	             range's ART residents) and run GPL segmentation on them;
//	             allocate the replacement models' slot arrays. Writers
//	             still run — staleness only means some keys land as
//	             conflicts in ART, never a correctness issue, because slot
//	             predictions are exact by construction.
//	freeze       lock the model's slots (drains in-flight slot writers),
//	             capture the exact entries, and bulk-remove the range's
//	             ART residents in one RemoveRange traversal (the frozen
//	             slots block every in-range ART mutation, so the removal
//	             is an exact cut). Place the exact keys into the
//	             pre-built models; evict conflicts to ART.
//	publish      under the short publish lock: absorb adjacent empty
//	             placeholder models into the splice, swap the table,
//	             record the freeze-window duration.
//
// The freeze window therefore covers only slot draining, one ordered ART
// traversal and array placement — segmentation and allocation moved off
// it, and the old per-key tree.Remove loop (O(n·log n) descents) is one
// bulk traversal now.
func (t *ALT) rebuild(m *model, lo, end uint64) {
	gap := t.opts.GapFactor * 2
	if gap > 4 {
		gap = 4
	}

	// --- Pre-freeze: candidate snapshot + segmentation + allocation. ---
	cand := make([]uint64, 0, m.nslots/2)
	for s := 0; s < m.nslots; s++ {
		if k, _, meta, ok := m.read(s); ok && meta&slotOccupied != 0 {
			cand = append(cand, k)
		}
	}
	var artCand []uint64
	t.tree.ScanRange(lo, end, t.tree.Len()+1, func(k, v uint64) bool {
		artCand = append(artCand, k)
		return true
	})
	candKeys := mergeSortedKeys(cand, artCand)
	var shells []*model
	if len(candKeys) > 0 {
		off := 0
		for _, seg := range gpl.Partition(candKeys, t.eps) {
			shells = append(shells, newShell(t.blocks, seg, candKeys[off+seg.N-1], gap))
			off += seg.N
		}
	}

	// --- Freeze: drain writers, capture the exact range contents. ---
	freezeStart := time.Now()
	m.freeze()
	fpRetrainFreeze.Inject()
	mk, mv := m.frozenEntries()
	drained := t.tree.RemoveRange(lo, end, nil)
	ak := make([]uint64, len(drained))
	av := make([]uint64, len(drained))
	for i, kv := range drained {
		ak[i], av[i] = kv.Key, kv.Value
	}
	keys, vals := mergeSorted(mk, mv, ak, av)

	var newModels []*model
	var newFirsts []uint64
	switch {
	case len(keys) == 0:
		// Keep an empty placeholder so the table still covers the range.
		// Pre-built shells (stale candidates that all vanished before the
		// freeze) were never published, so their spans free directly.
		for _, sh := range shells {
			sh.span.Release()
		}
		em := emptyModel(t.blocks, m.first)
		newModels = []*model{em}
		newFirsts = []uint64{em.first}
	case len(shells) == 0:
		// No pre-freeze candidates but keys arrived before the freeze
		// (tiny window): segment inside the freeze, the old way.
		off := 0
		for _, seg := range gpl.Partition(keys, t.eps) {
			nm, conflicts := buildModel(t.blocks, keys[off:off+seg.N], vals[off:off+seg.N], seg, gap)
			for _, ci := range conflicts {
				t.tree.Put(keys[off+ci], vals[off+ci])
			}
			newModels = append(newModels, nm)
			newFirsts = append(newFirsts, nm.first)
			off += seg.N
		}
	default:
		newModels, newFirsts = t.fillShells(shells, keys, vals)
	}

	// --- Publish: splice + placeholder absorption under the short lock. ---
	r := &t.ret
	r.publishMu.Lock()
	fpRetrainSplice.Inject()
	cur := t.tab.Load()
	mm, pos := cur.find(m.first)
	if mm != m {
		// Cannot happen while this rebuild holds the range claim: only
		// the claim owner splices a range out. Loud beats losing the
		// frozen keys silently.
		r.publishMu.Unlock()
		panic("core: frozen model vanished from the table during rebuild")
	}

	// Absorb adjacent never-written placeholders into this splice. A
	// placeholder whose single slot is still state 0 proves its whole
	// range empty (invariant 2: any ART key in the range would have
	// forced the slot non-empty), so dropping it and letting this
	// splice's models cover the range changes no lookup result. A
	// tombstoned placeholder is NOT absorbable — its range may hold ART
	// residents that need a non-empty predicted slot.
	loIdx, hiIdx := pos, pos
	var absorbed []keyRange
	for loIdx > 0 && t.absorbNeighbor(cur, loIdx-1, &absorbed) {
		loIdx--
	}
	for hiIdx+1 < len(cur.models) && t.absorbNeighbor(cur, hiIdx+1, &absorbed) {
		hiIdx++
	}
	r.merges.Add(int64(len(absorbed)))

	// Routing boundaries are immutable: the rebuilt span keeps its old
	// lower bound even if its minimum key moved up, so no neighbour's
	// routing range ever expands and every registered fast pointer keeps
	// covering its model's range. (A model's prediction origin — its
	// first field — is independent of the routing boundary; keys between
	// the boundary and the origin clamp to slot 0.)
	newFirsts[0] = cur.firsts[loIdx]

	nf := make([]uint64, 0, len(cur.firsts)-(hiIdx-loIdx+1)+len(newFirsts))
	nm2 := make([]*model, 0, len(cur.models)-(hiIdx-loIdx+1)+len(newModels))
	nf = append(nf, cur.firsts[:loIdx]...)
	nf = append(nf, newFirsts...)
	nf = append(nf, cur.firsts[hiIdx+1:]...)
	nm2 = append(nm2, cur.models[:loIdx]...)
	nm2 = append(nm2, newModels...)
	nm2 = append(nm2, cur.models[hiIdx+1:]...)
	newTab := &table{firsts: nf, models: nm2}

	if !t.opts.DisableFastPointers {
		for i, mmNew := range newModels {
			t.registerFP(newTab, mmNew, loIdx+i)
		}
	}

	fpRetrainPublish.Inject()
	t.tab.Store(newTab)
	t.retrains.Add(1)
	freezeNs := time.Since(freezeStart).Nanoseconds()
	r.publishMu.Unlock()

	// The spliced-out models (the rebuilt one plus absorbed placeholders)
	// are unreachable from the new table; retire their slot storage now
	// that the replacement is published. Readers that loaded the old table
	// are pinned in the current or previous epoch, and the domain frees
	// nothing until they all move past it.
	t.retireModels(cur.models[loIdx : hiIdx+1])

	for _, a := range absorbed {
		r.release(a.lo, a.hi)
	}
	r.freezeNsTotal.Add(freezeNs)
	for {
		old := r.freezeNsMax.Load()
		if freezeNs <= old || r.freezeNsMax.CompareAndSwap(old, freezeNs) {
			break
		}
	}
}

// absorbNeighbor tries to fold the placeholder model at table position i
// into an in-progress splice. It claims the placeholder's range (so no
// concurrent rebuild can also touch it), freezes its single slot and
// verifies it is still never-written; any failure backs out. On success
// the claim is recorded in *absorbed for release after the publish.
func (t *ALT) absorbNeighbor(cur *table, i int, absorbed *[]keyRange) bool {
	em := cur.models[i]
	if em.nslots != 1 || stateOf(em.metaRef(0).Load()) != 0 {
		return false
	}
	nlo, nend := cur.rangeBounds(i)
	if !t.ret.tryAcquire(nlo, nend) {
		return false
	}
	em.freeze()
	if stateOf(em.metaRef(0).Load()) != 0 {
		// A writer claimed the slot between the check and the freeze.
		em.unfreeze()
		t.ret.release(nlo, nend)
		return false
	}
	*absorbed = append(*absorbed, keyRange{nlo, nend})
	return true
}

// newShell allocates a model's slot arrays from a candidate segment
// without placing any keys. last is the segment's largest candidate key;
// exact keys above it simply clamp to the final slot and conflict-evict.
func newShell(ar *arena.Arena[slotBlock], seg gpl.Segment, last uint64, gapFactor float64) *model {
	if gapFactor < 1 {
		gapFactor = 1
	}
	m := &model{first: seg.First, slope: seg.Slope * gapFactor}
	m.fastIdx.Store(-1)
	m.nslots = int(m.slope*float64(last-m.first)+0.5) + 1
	if m.nslots < seg.N {
		m.nslots = seg.N
	}
	m.allocSlots(ar)
	return m
}

// fillShells places the exact post-freeze keys into the pre-allocated
// shells, partitioning by shell boundary (shell i owns keys below shell
// i+1's first). Slot collisions evict to ART — predictions stay exact by
// construction, a stale candidate fit only raises the conflict rate.
// Shells that end up empty are dropped.
func (t *ALT) fillShells(shells []*model, keys, vals []uint64) ([]*model, []uint64) {
	newModels := make([]*model, 0, len(shells))
	newFirsts := make([]uint64, 0, len(shells))
	ki := 0
	for si, sh := range shells {
		hi := ^uint64(0)
		if si+1 < len(shells) {
			hi = shells[si+1].first - 1
		}
		placed := 0
		var sc *sidecar
		for ki < len(keys) && keys[ki] <= hi {
			k, v := keys[ki], vals[ki]
			ki++
			s := sh.slotOf(k)
			if sh.metaRef(s).Load()&slotOccupied != 0 {
				t.tree.Put(k, v)
				// Record the eviction in the shell's sidecar before it
				// publishes.
				if sc == nil {
					sc = newSidecar(sh.nslots)
				}
				sc.add(s, fp8(k))
				continue
			}
			sh.keyRef(s).Store(k)
			sh.valRef(s).Store(v)
			sh.metaRef(s).Store(slotOccupied)
			placed++
		}
		if placed == 0 {
			// Empty shell: neighbors' clamping covers its range. It was
			// never published, so its storage frees without an epoch trip.
			sh.span.Release()
			continue
		}
		sh.sc = sc
		sh.buildSize = placed
		newModels = append(newModels, sh)
		newFirsts = append(newFirsts, sh.first)
	}
	if len(newModels) == 0 {
		// All keys conflicted out of every shell (degenerate, but must
		// keep invariant 2: those ART keys need a non-empty predicted
		// slot). Fall back to one exact model over the full key set.
		seg := gpl.Segment{First: keys[0], N: len(keys), Slope: shells[0].slope}
		nm, conflicts := buildModel(t.blocks, keys, vals, seg, 1)
		for _, ci := range conflicts {
			t.tree.Put(keys[ci], vals[ci])
		}
		return []*model{nm}, []uint64{nm.first}
	}
	return newModels, newFirsts
}

// emptyModel returns a one-slot model covering first, used when a rebuilt
// range holds no keys.
func emptyModel(ar *arena.Arena[slotBlock], first uint64) *model {
	m := &model{first: first, slope: 1, nslots: 1, buildSize: 1}
	m.fastIdx.Store(-1)
	m.allocSlots(ar)
	return m
}

// mergeSortedKeys merges two ascending key slices, dropping duplicates.
func mergeSortedKeys(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeSorted merges two ascending key streams (model entries and ART
// residents) into one ascending stream. Equal keys — possible only in a
// narrow migration window — keep the model copy, which is newer.
func mergeSorted(ak []uint64, avals []uint64, bk []uint64, bvals []uint64) (keys, vals []uint64) {
	keys = make([]uint64, 0, len(ak)+len(bk))
	vals = make([]uint64, 0, len(ak)+len(bk))
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		switch {
		case ak[i] < bk[j]:
			keys = append(keys, ak[i])
			vals = append(vals, avals[i])
			i++
		case ak[i] > bk[j]:
			keys = append(keys, bk[j])
			vals = append(vals, bvals[j])
			j++
		default:
			keys = append(keys, ak[i])
			vals = append(vals, avals[i])
			i++
			j++
		}
	}
	for ; i < len(ak); i++ {
		keys = append(keys, ak[i])
		vals = append(vals, avals[i])
	}
	for ; j < len(bk); j++ {
		keys = append(keys, bk[j])
		vals = append(vals, bvals[j])
	}
	return keys, vals
}
