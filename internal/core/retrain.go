package core

import (
	"sync/atomic"

	"altindex/internal/gpl"
)

// maybeRetrain implements the §III-F trigger: a model whose runtime
// insertions exceed its build size is crowded — subsequent inserts would
// all spill into ART — so it is rebuilt with doubled gap capacity. The
// trigger is floored (Options.RetrainMinInserts) so that small models do
// not thrash through rebuilds; the paper's 200M-key models are large
// enough that build size alone is a sane floor, scaled-down ones are not.
// At most one retraining runs at a time; contenders simply skip.
func (t *ALT) maybeRetrain(tb *table, m *model, pos int) {
	if t.opts.DisableRetraining {
		return
	}
	threshold := int64(m.buildSize)
	if min := int64(t.opts.RetrainMinInserts); threshold < min {
		threshold = min
	}
	if m.inserts.Load()+m.overflow.Load() <= threshold {
		return
	}
	if !t.retrainMu.TryLock() {
		return
	}
	defer t.retrainMu.Unlock()
	cur := t.tab.Load()
	mm, i := cur.find(m.first)
	if mm != m {
		return // a previous retraining already replaced this model
	}
	t.rebuild(cur, m, i)
}

// rebuild is the expansion of §III-F, restructured around a copy-on-write
// table swap (the Go-idiomatic equivalent of the paper's temporal-buffer
// pointer update):
//
//  1. Freeze the model's slots. Every reader/writer targeting the range
//     now spins, reloading the table each attempt.
//  2. Collect the frozen entries plus the range's ART residents (which
//     are written back into the fresh model — the §III-F write-back).
//  3. Re-segment with GPL and rebuild with doubled gaps ("twice larger"),
//     evicting new conflicts to ART.
//  4. Publish the spliced table; spinners escape to the new models.
func (t *ALT) rebuild(tb *table, m *model, pos int) {
	lo := tb.firsts[pos] // routing boundary, possibly below m.first
	if pos == 0 {
		lo = 0 // model 0 also owns all keys below its first
	}
	end := tb.upperBound(pos) // exclusive, except MaxUint64 (inclusive)
	if pos+1 < len(tb.firsts) {
		end--
	}

	m.freeze()
	fpRetrainFreeze.Inject()
	mk, mv := m.frozenEntries()

	var ak, av []uint64
	t.tree.ScanRange(lo, end, t.tree.Len()+1, func(k, v uint64) bool {
		ak = append(ak, k)
		av = append(av, v)
		return true
	})
	for _, k := range ak {
		t.tree.Remove(k)
	}

	keys, vals := mergeSorted(mk, mv, ak, av)

	gap := t.opts.GapFactor * 2
	if gap > 4 {
		gap = 4
	}
	var newModels []*model
	var newFirsts []uint64
	if len(keys) == 0 {
		// Keep an empty placeholder so the table still covers the range.
		em := emptyModel(m.first)
		newModels = []*model{em}
		newFirsts = []uint64{em.first}
	} else {
		segs := gpl.Partition(keys, t.eps)
		off := 0
		for _, seg := range segs {
			nm, conflicts := buildModel(keys[off:off+seg.N], vals[off:off+seg.N], seg, gap)
			for _, ci := range conflicts {
				t.tree.Put(keys[off+ci], vals[off+ci])
			}
			newModels = append(newModels, nm)
			newFirsts = append(newFirsts, nm.first)
			off += seg.N
		}
	}

	// Routing boundaries are immutable: the rebuilt range keeps its old
	// lower bound even if its minimum key moved up, so no neighbour's
	// routing range ever expands and every registered fast pointer keeps
	// covering its model's range. (A model's prediction origin — its
	// first field — is independent of the routing boundary; keys between
	// the boundary and the origin clamp to slot 0.)
	newFirsts[0] = tb.firsts[pos]

	nf := make([]uint64, 0, len(tb.firsts)-1+len(newFirsts))
	nm := make([]*model, 0, len(tb.models)-1+len(newModels))
	nf = append(nf, tb.firsts[:pos]...)
	nf = append(nf, newFirsts...)
	nf = append(nf, tb.firsts[pos+1:]...)
	nm = append(nm, tb.models[:pos]...)
	nm = append(nm, newModels...)
	nm = append(nm, tb.models[pos+1:]...)
	newTab := &table{firsts: nf, models: nm}

	if !t.opts.DisableFastPointers {
		for i, mmNew := range newModels {
			t.registerFP(newTab, mmNew, pos+i)
		}
	}

	fpRetrainPublish.Inject()
	t.tab.Store(newTab)
	t.retrains.Add(1)
}

// emptyModel returns a one-slot model covering first, used when a rebuilt
// range holds no keys.
func emptyModel(first uint64) *model {
	m := &model{first: first, slope: 1, nslots: 1, buildSize: 1}
	m.fastIdx.Store(-1)
	m.keys = make([]atomic.Uint64, 1)
	m.vals = make([]atomic.Uint64, 1)
	m.meta = make([]atomic.Uint32, 1)
	return m
}

// mergeSorted merges two ascending key streams (model entries and ART
// residents) into one ascending stream. Equal keys — possible only in a
// narrow migration window — keep the model copy, which is newer.
func mergeSorted(ak []uint64, avals []uint64, bk []uint64, bvals []uint64) (keys, vals []uint64) {
	keys = make([]uint64, 0, len(ak)+len(bk))
	vals = make([]uint64, 0, len(ak)+len(bk))
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		switch {
		case ak[i] < bk[j]:
			keys = append(keys, ak[i])
			vals = append(vals, avals[i])
			i++
		case ak[i] > bk[j]:
			keys = append(keys, bk[j])
			vals = append(vals, bvals[j])
			j++
		default:
			keys = append(keys, ak[i])
			vals = append(vals, avals[i])
			i++
			j++
		}
	}
	for ; i < len(ak); i++ {
		keys = append(keys, ak[i])
		vals = append(vals, avals[i])
	}
	for ; j < len(bk); j++ {
		keys = append(keys, bk[j])
		vals = append(vals, bvals[j])
	}
	return keys, vals
}
