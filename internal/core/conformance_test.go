package core_test

import (
	"testing"

	"altindex/internal/core"
	"altindex/internal/index"
	"altindex/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Concurrent { return core.New(core.Options{}) })
}

func TestConformanceSmallErrorBound(t *testing.T) {
	// A tight ε maximises ART-layer traffic.
	indextest.Run(t, func() index.Concurrent {
		return core.New(core.Options{ErrorBound: 32})
	})
}

func TestConformanceNoFastPointers(t *testing.T) {
	indextest.Run(t, func() index.Concurrent {
		return core.New(core.Options{ErrorBound: 32, DisableFastPointers: true})
	})
}

func TestConformanceNoRetraining(t *testing.T) {
	indextest.Run(t, func() index.Concurrent {
		return core.New(core.Options{DisableRetraining: true})
	})
}
