package core

import "altindex/internal/failpoint"

// Failpoint sites on the hot edges of the §III-E concurrency protocol.
// Disabled they cost one atomic load each (see internal/failpoint); armed
// they force the interleavings ordinary tests never hit:
//
//	core/insert/locked    fires with a slot write-locked in insertAt
//	                      (all four branches: upsert, conflict eviction,
//	                      free-slot claim, tombstone claim). delay/yield
//	                      simulates a writer descheduled mid-seqlock,
//	                      forcing readers through backoff and retries.
//	core/writeback/locked fires with the slot locked during the
//	                      Algorithm 2 write-back migration, racing lookups
//	                      against the ART→slot move.
//	core/retrain/freeze   fires after a model's slots are frozen and
//	                      before its entries are gathered — stretches the
//	                      §III-F freeze window while every operation on
//	                      the range spins.
//	core/retrain/publish  fires after the rebuilt models exist and before
//	                      the copy-on-write table swap — the window where
//	                      ART holds migrated keys and spinners must not
//	                      escape early.
//	core/retrain/enqueue  fires on the writer's trigger path, after the
//	                      model is armed and before the trigger enters the
//	                      bounded queue — stretching it piles triggers up
//	                      and forces the queue-overflow drop/re-arm path.
//	core/retrain/splice   fires just after a rebuild takes the publish
//	                      lock and before it re-resolves the table —
//	                      stretching it makes concurrent rebuilds of
//	                      disjoint ranges collide on the splice, the
//	                      interleaving the per-range admission must make
//	                      safe.
//	core/fpbuf/register   fires inside the fast-pointer buffer's append
//	                      lock (§III-C), stalling concurrent registrations
//	                      from lazy linking and retraining.
//	core/batch/reload     fires right after a batched operation loads the
//	                      model table, widening the window in which the
//	                      batch works on a table that retraining replaces
//	                      mid-flight.
//	core/epoch/retire     fires as a superseded model's slot storage is
//	                      handed to the epoch domain (after the new table
//	                      published, before the span joins the limbo
//	                      list) — stretching it widens the window in
//	                      which pinned readers race limbo reclamation,
//	                      the interleaving the epoch protocol must make
//	                      safe (use-after-reclaim reads arena poison).
var (
	fpInsertLocked   = failpoint.New("core/insert/locked")
	fpWriteBack      = failpoint.New("core/writeback/locked")
	fpRetrainFreeze  = failpoint.New("core/retrain/freeze")
	fpRetrainPublish = failpoint.New("core/retrain/publish")
	fpRetrainEnqueue = failpoint.New("core/retrain/enqueue")
	fpRetrainSplice  = failpoint.New("core/retrain/splice")
	fpFPBufRegister  = failpoint.New("core/fpbuf/register")
	fpBatchReload    = failpoint.New("core/batch/reload")
	fpEpochRetire    = failpoint.New("core/epoch/retire")
)
