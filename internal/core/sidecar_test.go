package core

import (
	"math/rand"
	"sort"
	"testing"
	"unsafe"

	"altindex/internal/dataset"
)

func TestSlotBlockLayout(t *testing.T) {
	// The interleaved layout is a documented contract: [8×key][8×meta]
	// [8×val] in one 160-byte struct — key and meta lanes adjacent, value
	// lanes last, and exactly the 20 bytes/slot the split arrays paid.
	var b slotBlock
	if got := unsafe.Sizeof(b); got != 160 {
		t.Fatalf("sizeof(slotBlock) = %d, want 160", got)
	}
	if off := unsafe.Offsetof(b.keys); off != 0 {
		t.Fatalf("keys offset = %d, want 0", off)
	}
	if off := unsafe.Offsetof(b.meta); off != 64 {
		t.Fatalf("meta offset = %d, want 64", off)
	}
	if off := unsafe.Offsetof(b.vals); off != 96 {
		t.Fatalf("vals offset = %d, want 96", off)
	}

	// allocBlocks rounds up so every slot has a lane.
	for _, nslots := range []int{1, 7, 8, 9, 16, 1000} {
		want := (nslots + blockMask) / blockSlots
		if got := len(allocBlocks(nslots)); got != want {
			t.Fatalf("allocBlocks(%d) = %d blocks, want %d", nslots, got, want)
		}
	}

	// The accessors and read() must address the same lanes.
	m := &model{nslots: 20, slope: 1, blocks: allocBlocks(20)}
	for s := 0; s < m.nslots; s++ {
		m.keyRef(s).Store(uint64(100 + s))
		m.valRef(s).Store(uint64(200 + s))
		m.metaRef(s).Store(slotOccupied)
		if got := &m.blocks[s/blockSlots].keys[s%blockSlots]; got != m.keyRef(s) {
			t.Fatalf("keyRef(%d) resolves the wrong lane", s)
		}
		k, v, meta, ok := m.read(s)
		if !ok || k != uint64(100+s) || v != uint64(200+s) || stateOf(meta) != slotOccupied {
			t.Fatalf("read(%d) = (%d,%d,%x,%v)", s, k, v, meta, ok)
		}
	}
}

func TestSidecarTags(t *testing.T) {
	sc := newSidecar(12)
	sc.add(3, 0xaa)
	sc.add(7, 0x01)
	sc.add(7, 0x02) // second eviction at the same slot → "many" marker
	sc.add(9, 0xf0)
	sc.add(9, 0xf0) // same fingerprint twice stays exact
	if sc.tags[3] != 0xaa {
		t.Fatalf("tags[3] = %#x, want 0xaa", sc.tags[3])
	}
	if sc.tags[7] != scManyTag {
		t.Fatalf("tags[7] = %#x, want scManyTag", sc.tags[7])
	}
	if sc.tags[9] != 0xf0 {
		t.Fatalf("tags[9] = %#x, want 0xf0", sc.tags[9])
	}
	for _, s := range []int{0, 1, 2, 4, 5, 6, 8, 10, 11} {
		if sc.tags[s] != 0 {
			t.Fatalf("tags[%d] = %#x, want untouched", s, sc.tags[s])
		}
	}
	// fp8 never collides with the sentinels, whatever the key.
	for _, k := range []uint64{0, 1, 42, ^uint64(0), 0x9e3779b97f4a7c15} {
		if fp := fp8(k); fp == 0 || fp == scManyTag {
			t.Fatalf("fp8(%d) = %#x hits a sentinel", k, fp)
		}
	}
}

func TestSidecarCoversBuildConflicts(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 8000, 5)
	// Gap factor 1 packs the array, forcing plenty of conflicts.
	m, conflicts, seg := buildFrom(t, keys, 512, 1.0)
	if len(conflicts) == 0 {
		t.Skip("dataset produced no conflicts at gap 1.0")
	}
	if m.sc == nil {
		t.Fatal("model with conflicts built no sidecar")
	}
	// Every evicted key must read as "maybe in ART" — a false absent here
	// would lose the key.
	for _, ci := range conflicts {
		k := keys[ci]
		if m.absentInART(k, m.slotOf(k)) {
			t.Fatalf("build conflict key %d reported absent from ART", k)
		}
	}
	// A probe key that shares no (slot, fingerprint) with any eviction is
	// provably absent; one epoch bump withdraws the proof for everything.
	probe := keys[seg.N-1] + 12345
	s := m.slotOf(probe)
	tag := m.sc.tags[s]
	wantAbsent := tag == 0 || (tag != scManyTag && tag != fp8(probe))
	if m.absentInART(probe, s) != wantAbsent {
		t.Fatalf("absentInART(%d) disagrees with sidecar content", probe)
	}
	m.artEpoch.Add(1)
	for _, ci := range conflicts {
		k := keys[ci]
		if m.absentInART(k, m.slotOf(k)) {
			t.Fatalf("stale-epoch sidecar proved absence for %d", k)
		}
	}
	if m.absentInART(probe, s) {
		t.Fatal("stale-epoch sidecar proved absence for probe key")
	}
}

// TestSidecarNeverFalseAbsent interleaves inserts, removals and retrains on
// a deliberately conflict-heavy index (gap factor 1, tiny retrain floor)
// and checks every operation's answer against a reference map. The property
// under test: no matter how stale a model's sidecar is, it may only ever
// produce false positives ("maybe in ART"), never a false "absent" — a
// present key must always be found by Get/Update/Remove.
func TestSidecarNeverFalseAbsent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const span = 1 << 20
	keys := make([]uint64, 0, 4096)
	seen := map[uint64]bool{}
	for len(keys) < 4096 {
		k := uint64(r.Intn(span)) + 1
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	alt := mustBulk(t, Options{
		ErrorBound:        64,
		GapFactor:         1, // pack slots → many build conflicts → sidecars in play
		RetrainMinInserts: 32,
		RetrainWorkers:    -1, // synchronous: retrains interleave deterministically
	}, keys)

	ref := map[uint64]uint64{}
	for _, k := range keys {
		ref[k] = dataset.ValueFor(k)
	}

	check := func(step int, k uint64) {
		v, ok := alt.Get(k)
		want, present := ref[k]
		if ok != present || (present && v != want) {
			t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", step, k, v, ok, want, present)
		}
	}

	for step := 0; step < 30000; step++ {
		k := uint64(r.Intn(span)) + 1
		switch op := r.Intn(10); {
		case op < 4: // insert/upsert
			if err := alt.Insert(k, k*3); err != nil {
				t.Fatal(err)
			}
			ref[k] = k * 3
		case op < 6: // remove
			removed := alt.Remove(k)
			_, present := ref[k]
			if removed != present {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", step, k, removed, present)
			}
			delete(ref, k)
		case op < 8: // update
			updated := alt.Update(k, k*7)
			_, present := ref[k]
			if updated != present {
				t.Fatalf("step %d: Update(%d) = %v, want %v", step, k, updated, present)
			}
			if present {
				ref[k] = k * 7
			}
		default: // probe both the random key and a known-present one
			check(step, k)
			if len(keys) > 0 {
				check(step, keys[r.Intn(len(keys))])
			}
		}
	}
	alt.Quiesce()
	if alt.StatsMap()["retrains"] == 0 {
		t.Fatal("churn never retrained; the rebuilt-sidecar path went unexercised")
	}
	for k, want := range ref {
		if v, ok := alt.Get(k); !ok || v != want {
			t.Fatalf("final: Get(%d) = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	if int(alt.Len()) != len(ref) {
		t.Fatalf("Len = %d, reference holds %d", alt.Len(), len(ref))
	}
}

func BenchmarkAbsentProbe(b *testing.B) {
	keys := dataset.Generate(dataset.OSM, 200000, 3)
	alt := New(Options{})
	if err := alt.Bulkload(dataset.Pairs(keys)); err != nil {
		b.Fatal(err)
	}
	defer alt.Close()
	probes := make([]uint64, 0, len(keys))
	for i := 1; i < len(keys); i++ {
		if gap := keys[i] - keys[i-1]; gap > 1 {
			probes = append(probes, keys[i-1]+gap/2)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := alt.Get(probes[i%len(probes)]); ok {
			b.Fatal("phantom key")
		}
	}
}
