package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/workload"
)

func mustBulk(t *testing.T, opts Options, keys []uint64) *ALT {
	t.Helper()
	alt := New(opts)
	if err := alt.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { alt.Close() })
	return alt
}

func TestEmptyIndex(t *testing.T) {
	alt := New(Options{})
	if _, ok := alt.Get(1); ok {
		t.Fatal("Get on empty index")
	}
	if alt.Remove(1) || alt.Update(1, 2) {
		t.Fatal("Remove/Update on empty index returned true")
	}
	// Pre-bulkload inserts go to the ART layer and still work.
	if err := alt.Insert(10, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := alt.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if alt.Len() != 1 {
		t.Fatalf("Len = %d", alt.Len())
	}
}

func TestBulkloadGetAllDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			keys := dataset.Generate(name, 30000, 1)
			alt := mustBulk(t, Options{}, keys)
			if alt.Len() != len(keys) {
				t.Fatalf("Len = %d, want %d", alt.Len(), len(keys))
			}
			for _, k := range keys {
				if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
					t.Fatalf("Get(%d) = %d,%v", k, v, ok)
				}
			}
			// Absent keys between present ones.
			for i := 1; i < len(keys); i += 211 {
				if gap := keys[i] - keys[i-1]; gap > 2 {
					probe := keys[i-1] + gap/2
					if _, ok := alt.Get(probe); ok {
						t.Fatalf("phantom key %d", probe)
					}
				}
			}
			// Layer accounting: every key is in exactly one layer.
			st := alt.StatsMap()
			if st["learned_keys"]+st["art_keys"] != int64(len(keys)) {
				t.Fatalf("layer split %d+%d != %d", st["learned_keys"], st["art_keys"], len(keys))
			}
			if st["models"] <= 0 {
				t.Fatal("no models built")
			}
		})
	}
}

func TestBulkloadRejectsUnsorted(t *testing.T) {
	alt := New(Options{})
	err := alt.Bulkload([]index.KV{{Key: 9}, {Key: 3}})
	if err != index.ErrUnsortedBulk {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertThenGet(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 40000, 2)
	loaded, pending := workload.SplitLoad(keys, 0.5, 7)
	alt := mustBulk(t, Options{}, loaded)
	for _, k := range pending {
		if err := alt.Insert(k, dataset.ValueFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	if alt.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", alt.Len(), len(keys))
	}
	for _, k := range keys {
		if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestUpsertAndUpdate(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 5000, 3)
	alt := mustBulk(t, Options{}, keys)
	// Upsert via Insert must not change Len.
	for i := 0; i < len(keys); i += 7 {
		if err := alt.Insert(keys[i], 42); err != nil {
			t.Fatal(err)
		}
	}
	if alt.Len() != len(keys) {
		t.Fatalf("Len changed on upsert: %d", alt.Len())
	}
	for i := 0; i < len(keys); i += 7 {
		if v, _ := alt.Get(keys[i]); v != 42 {
			t.Fatalf("upsert lost at %d", keys[i])
		}
	}
	// Update present and absent keys.
	if !alt.Update(keys[0], 77) {
		t.Fatal("Update present key failed")
	}
	if v, _ := alt.Get(keys[0]); v != 77 {
		t.Fatal("Update value lost")
	}
	if alt.Update(keys[len(keys)-1]+12345, 1) {
		t.Fatal("Update absent key returned true")
	}
}

func TestRemoveRoutesBothLayers(t *testing.T) {
	// A hard dataset with a small error bound produces plenty of ART
	// conflicts, exercising removal in both layers.
	keys := dataset.Generate(dataset.OSM, 20000, 4)
	alt := mustBulk(t, Options{ErrorBound: 64}, keys)
	st := alt.StatsMap()
	if st["art_keys"] == 0 {
		t.Fatal("test needs conflict keys in ART")
	}
	removed := map[uint64]bool{}
	for i := 0; i < len(keys); i += 2 {
		if !alt.Remove(keys[i]) {
			t.Fatalf("Remove(%d) failed", keys[i])
		}
		removed[keys[i]] = true
	}
	if alt.Remove(keys[0]) {
		t.Fatal("double remove succeeded")
	}
	for _, k := range keys {
		v, ok := alt.Get(k)
		if removed[k] && ok {
			t.Fatalf("removed key %d still visible", k)
		}
		if !removed[k] && (!ok || v != dataset.ValueFor(k)) {
			t.Fatalf("survivor %d lost", k)
		}
	}
	if want := len(keys) - len(removed); alt.Len() != want {
		t.Fatalf("Len = %d, want %d", alt.Len(), want)
	}
}

func TestTombstoneKeepsARTReachable(t *testing.T) {
	// Force two keys into the same predicted slot, remove the slot
	// resident, and check the ART resident stays reachable (invariant 2)
	// and gets written back into the freed slot (Algorithm 2 l.10-13).
	keys := dataset.Generate(dataset.OSM, 20000, 5)
	alt := mustBulk(t, Options{ErrorBound: 64}, keys)
	tb := alt.tab.Load()
	var slotKey, artKey uint64
	found := false
	for _, k := range keys {
		m, _ := tb.find(k)
		s := m.slotOf(k)
		sk, _, st, ok := m.read(s)
		if ok && st&slotOccupied != 0 && sk != k {
			slotKey, artKey = sk, k
			found = true
			break
		}
	}
	if !found {
		t.Skip("no conflict pair found")
	}
	if !alt.Remove(slotKey) {
		t.Fatal("Remove slot resident failed")
	}
	if v, ok := alt.Get(artKey); !ok || v != dataset.ValueFor(artKey) {
		t.Fatalf("ART resident unreachable after tombstone: %d,%v", v, ok)
	}
	// The lookup should have written artKey back into the slot.
	m, _ := tb.find(artKey)
	s := m.slotOf(artKey)
	sk, _, st, ok := m.read(s)
	if !ok || st&slotOccupied == 0 || sk != artKey {
		t.Fatalf("write-back did not land: key=%d st=%d ok=%v", sk, st, ok)
	}
	// And it must still be readable exactly once.
	if v, ok := alt.Get(artKey); !ok || v != dataset.ValueFor(artKey) {
		t.Fatal("key lost after write-back")
	}
}

func TestScanMergesLayers(t *testing.T) {
	keys := dataset.Generate(dataset.LongLat, 20000, 6)
	loaded, pending := workload.SplitLoad(keys, 0.6, 3)
	alt := mustBulk(t, Options{ErrorBound: 128}, loaded)
	for _, k := range pending {
		_ = alt.Insert(k, dataset.ValueFor(k))
	}
	if alt.StatsMap()["art_keys"] == 0 {
		t.Log("warning: no ART residents; scan merge untested against conflicts")
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for trial := 0; trial < 60; trial++ {
		start := sorted[(trial*379)%len(sorted)] - uint64(trial%2)
		limit := 1 + (trial*13)%200
		first := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= start })
		want := len(sorted) - first
		if want > limit {
			want = limit
		}
		var got []uint64
		n := alt.Scan(start, limit, func(k, v uint64) bool {
			got = append(got, k)
			if v != dataset.ValueFor(k) {
				t.Fatalf("scan value mismatch at %d", k)
			}
			return true
		})
		if n != want || len(got) != want {
			t.Fatalf("Scan(%d,%d) = %d items, want %d", start, limit, n, want)
		}
		for i := range got {
			if got[i] != sorted[first+i] {
				t.Fatalf("scan item %d = %d, want %d", i, got[i], sorted[first+i])
			}
		}
	}
}

func TestRetrainingTriggersAndPreserves(t *testing.T) {
	// Hot-write pattern: bulkload a dataset minus a consecutive middle
	// range, then insert that range — the paper's retraining trigger.
	keys := dataset.Generate(dataset.Libio, 40000, 8)
	loaded, pending := workload.HotSplit(keys, 0.3, 0)
	alt := mustBulk(t, Options{}, loaded)
	for _, k := range pending {
		if err := alt.Insert(k, dataset.ValueFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	alt.Quiesce() // retraining is asynchronous; drain the pipeline first
	st := alt.StatsMap()
	if st["retrains"] == 0 {
		t.Fatalf("hot writes did not trigger retraining (stats %v)", st)
	}
	if st["retrain_freeze_ns"] == 0 || st["retrain_freeze_max_ns"] == 0 {
		t.Fatalf("freeze-window accounting missing (stats %v)", st)
	}
	if st["retrain_pending"] != 0 || st["retrains_inflight"] != 0 {
		t.Fatalf("pipeline not drained after Quiesce (stats %v)", st)
	}
	total := len(loaded) + len(pending)
	if alt.Len() != total {
		t.Fatalf("Len = %d, want %d", alt.Len(), total)
	}
	// HotSplit consumes keys, so verify through the two halves it returned.
	for _, half := range [][]uint64{loaded, pending} {
		for _, k := range half {
			if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
				t.Fatalf("Get(%d) = %d,%v after retraining", k, v, ok)
			}
		}
	}
	if st["learned_keys"]+st["art_keys"] != int64(total) {
		t.Fatalf("layer split broken after retraining: %v", st)
	}
}

func TestRetrainingDisabled(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 20000, 9)
	loaded, pending := workload.HotSplit(keys, 0.3, 0)
	alt := mustBulk(t, Options{DisableRetraining: true}, loaded)
	for _, k := range pending {
		_ = alt.Insert(k, dataset.ValueFor(k))
	}
	if alt.StatsMap()["retrains"] != 0 {
		t.Fatal("retraining ran while disabled")
	}
	for _, half := range [][]uint64{loaded, pending} {
		for _, k := range half {
			if _, ok := alt.Get(k); !ok {
				t.Fatalf("key %d lost without retraining", k)
			}
		}
	}
}

func TestFastPointerAblationEquivalence(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 30000, 10)
	withFP := mustBulk(t, Options{ErrorBound: 64}, keys)
	noFP := mustBulk(t, Options{ErrorBound: 64, DisableFastPointers: true}, keys)
	var sumFP, sumRoot, conflicts int
	for i := 0; i < len(keys); i += 3 {
		k := keys[i]
		v1, ok1 := withFP.Get(k)
		v2, ok2 := noFP.Get(k)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("FP ablation diverges at %d", k)
		}
		if p, in := withFP.ARTLookupLength(k, true); in {
			sumFP += p
			pr, _ := withFP.ARTLookupLength(k, false)
			sumRoot += pr
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Skip("no ART residents")
	}
	if sumFP > sumRoot {
		t.Fatalf("fast pointers lengthen lookups: %d > %d over %d keys", sumFP, sumRoot, conflicts)
	}
	if withFP.StatsMap()["fp_entries"] > withFP.StatsMap()["fp_requested"] {
		t.Fatal("merge scheme accounting inverted")
	}
}

func TestQuickVersusMapALT(t *testing.T) {
	base := dataset.Generate(dataset.FB, 4000, 11)
	f := func(opSeed int64) bool {
		alt := New(Options{ErrorBound: 32})
		if err := alt.Bulkload(dataset.Pairs(base[:2000])); err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		for _, k := range base[:2000] {
			ref[k] = dataset.ValueFor(k)
		}
		r := rand.New(rand.NewSource(opSeed))
		for i := 0; i < 3000; i++ {
			k := base[r.Intn(len(base))]
			switch r.Intn(5) {
			case 0:
				v := r.Uint64()
				_ = alt.Insert(k, v)
				ref[k] = v
			case 1:
				got, ok := alt.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				_, wok := ref[k]
				if alt.Remove(k) != wok {
					return false
				}
				delete(ref, k)
			case 3:
				v := r.Uint64()
				_, wok := ref[k]
				if alt.Update(k, v) != wok {
					return false
				}
				if wok {
					ref[k] = v
				}
			case 4:
				// Bounded scan against reference.
				var got []uint64
				alt.Scan(k, 10, func(sk, sv uint64) bool {
					got = append(got, sk)
					return true
				})
				for _, sk := range got {
					if _, ok := ref[sk]; !ok {
						return false
					}
				}
			}
		}
		if alt.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := alt.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentBalancedWorkload(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 60000, 12)
	loaded, pending := workload.SplitLoad(keys, 0.5, 5)
	alt := mustBulk(t, Options{}, loaded)
	const workers = 8
	var wg sync.WaitGroup
	perWorker := len(pending) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			mine := pending[w*perWorker : (w+1)*perWorker]
			for _, k := range mine {
				if err := alt.Insert(k, dataset.ValueFor(k)); err != nil {
					t.Error(err)
					return
				}
				g := loaded[r.Intn(len(loaded))]
				if v, ok := alt.Get(g); !ok || v != dataset.ValueFor(g) {
					t.Errorf("concurrent Get(%d) = %d,%v", g, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, k := range loaded {
		if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("loaded key %d lost: %d,%v", k, v, ok)
		}
	}
	for w := 0; w < workers; w++ {
		for _, k := range pending[w*perWorker : (w+1)*perWorker] {
			if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
				t.Fatalf("inserted key %d lost: %d,%v", k, v, ok)
			}
		}
	}
}

func TestConcurrentMixedWithRetraining(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 40000, 13)
	loaded, pending := workload.HotSplit(keys, 0.4, 0)
	alt := mustBulk(t, Options{}, loaded)
	const workers = 8
	var wg sync.WaitGroup
	perWorker := len(pending) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + w)))
			mine := pending[w*perWorker : (w+1)*perWorker]
			for i, k := range mine {
				_ = alt.Insert(k, dataset.ValueFor(k))
				switch i % 3 {
				case 0:
					alt.Get(loaded[r.Intn(len(loaded))])
				case 1:
					alt.Scan(k, 10, func(a, b uint64) bool { return true })
				case 2:
					alt.Update(loaded[r.Intn(len(loaded))], 999)
				}
			}
		}(w)
	}
	wg.Wait()
	alt.Quiesce()
	// Every hot-inserted key must be present afterwards.
	for w := 0; w < workers; w++ {
		for _, k := range pending[w*perWorker : (w+1)*perWorker] {
			if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
				t.Fatalf("hot key %d lost (%d,%v); retrains=%d", k, v, ok,
					alt.StatsMap()["retrains"])
			}
		}
	}
	// Scan order must hold across layers after the churn.
	var prev uint64
	n := 0
	alt.Scan(0, len(keys)+1, func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("scan out of order: %d <= %d", k, prev)
		}
		prev = k
		n++
		return true
	})
}

func TestMemoryUsageAndStats(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 20000, 14)
	alt := mustBulk(t, Options{}, keys)
	if m := alt.MemoryUsage(); m < uintptr(len(keys))*8 {
		t.Fatalf("MemoryUsage %d implausibly small", m)
	}
	st := alt.StatsMap()
	for _, k := range []string{"models", "slots", "learned_keys", "art_keys", "fp_entries", "fp_requested", "retrains",
		"retrain_queue_depth", "retrain_pending", "retrains_inflight", "retrain_drops",
		"retrain_merges", "retrain_freeze_ns", "retrain_freeze_max_ns", "writer_spins"} {
		if _, ok := st[k]; !ok {
			t.Fatalf("missing stat %q", k)
		}
	}
	if st["slots"] < st["learned_keys"] {
		t.Fatalf("slots %d < learned keys %d", st["slots"], st["learned_keys"])
	}
}

func TestErrorBoundDefaultsToRecommendation(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 50000, 15)
	alt := mustBulk(t, Options{}, keys)
	if got, want := alt.ErrorBound(), float64(len(keys))/1000; got != want {
		t.Fatalf("eps = %v, want %v", got, want)
	}
	small := mustBulk(t, Options{}, keys[:1000])
	if small.ErrorBound() != 16 {
		t.Fatalf("eps floor = %v, want 16", small.ErrorBound())
	}
}

func TestAutoInitialTraining(t *testing.T) {
	alt := New(Options{AutoTrainThreshold: 2000})
	keys := dataset.Generate(dataset.OSM, 12000, 20)
	perm := make([]int, len(keys))
	for i := range perm {
		perm[i] = i
	}
	r := rand.New(rand.NewSource(3))
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for _, i := range perm {
		if err := alt.Insert(keys[i], dataset.ValueFor(keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	st := alt.StatsMap()
	if st["models"] < 2 {
		t.Fatalf("auto training did not build a learned layer: %v", st)
	}
	if st["learned_keys"] == 0 {
		t.Fatalf("no keys migrated into the learned layer: %v", st)
	}
	if alt.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", alt.Len(), len(keys))
	}
	for _, k := range keys {
		if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("Get(%d)=(%d,%v) after auto training", k, v, ok)
		}
	}
	// Scan order intact across layers.
	var prev uint64
	n := 0
	alt.Scan(0, len(keys)+1, func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("scan out of order after training")
		}
		prev = k
		n++
		return true
	})
	if n != len(keys) {
		t.Fatalf("scan saw %d keys, want %d", n, len(keys))
	}
}

func TestAutoTrainingDisabled(t *testing.T) {
	alt := New(Options{AutoTrainThreshold: -1})
	for k := uint64(1); k <= 20000; k++ {
		_ = alt.Insert(k*3, k)
	}
	if alt.StatsMap()["models"] != 0 {
		t.Fatal("training ran while disabled")
	}
}

func TestAutoTrainingConcurrent(t *testing.T) {
	alt := New(Options{AutoTrainThreshold: 1000})
	keys := dataset.Generate(dataset.FB, 30000, 21)
	const workers = 8
	per := len(keys) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, k := range keys[w*per : (w+1)*per] {
				if err := alt.Insert(k, dataset.ValueFor(k)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
					t.Errorf("read-own-write failed for %d: (%d,%v)", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if alt.StatsMap()["models"] == 0 {
		t.Fatal("no learned layer formed under concurrency")
	}
	for w := 0; w < workers; w++ {
		for _, k := range keys[w*per : (w+1)*per] {
			if v, ok := alt.Get(k); !ok || v != dataset.ValueFor(k) {
				t.Fatalf("key %d lost after concurrent training (%d,%v)", k, v, ok)
			}
		}
	}
}

func TestRetrainEmptyRangeKeepsCoverage(t *testing.T) {
	// Drain one model's range entirely, then force retraining around it:
	// the table must keep covering the range via a placeholder model and
	// later inserts into the range must still work.
	keys := dataset.Generate(dataset.Libio, 30000, 22)
	alt := mustBulk(t, Options{RetrainMinInserts: 64}, keys)
	tb := alt.tab.Load()
	if len(tb.models) < 3 {
		t.Skip("need several models")
	}
	// Remove every key of the middle model's range.
	mid := len(tb.models) / 2
	lo := tb.firsts[mid]
	hi := tb.upperBound(mid)
	for _, k := range keys {
		if k >= lo && k < hi {
			alt.Remove(k)
		}
	}
	// Hammer the range with inserts to trigger its rebuild.
	base := lo + 1
	var ins []uint64
	for i := uint64(0); i < 600 && base+i*2 < hi; i++ {
		k := base + i*2
		_ = alt.Insert(k, k)
		ins = append(ins, k)
	}
	alt.Quiesce()
	for _, k := range ins {
		if v, ok := alt.Get(k); !ok || v != k {
			t.Fatalf("range key %d lost (%d,%v)", k, v, ok)
		}
	}
	// Keys outside the drained range untouched.
	if v, ok := alt.Get(keys[0]); !ok || v != dataset.ValueFor(keys[0]) {
		t.Fatal("outside key lost")
	}
}

func TestStatsConsistentAfterChurn(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 20000, 23)
	loaded, pending := workload.SplitLoad(keys, 0.5, 9)
	alt := mustBulk(t, Options{ErrorBound: 64}, loaded)
	for i, k := range pending {
		_ = alt.Insert(k, dataset.ValueFor(k))
		if i%3 == 0 {
			alt.Remove(loaded[i%len(loaded)])
		}
	}
	alt.Quiesce()
	st := alt.StatsMap()
	if st["learned_keys"]+st["art_keys"] != int64(alt.Len()) {
		t.Fatalf("layer accounting drifted: %d+%d != %d",
			st["learned_keys"], st["art_keys"], alt.Len())
	}
}

func TestRangeIterator(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 10000, 30)
	alt := mustBulk(t, Options{ErrorBound: 64}, keys)
	// Full iteration matches the key set in order.
	i := 0
	for k, v := range alt.Range(0) {
		if k != keys[i] || v != dataset.ValueFor(k) {
			t.Fatalf("item %d = (%d,%d), want (%d,%d)", i, k, v, keys[i], dataset.ValueFor(keys[i]))
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterated %d, want %d", i, len(keys))
	}
	// Early break works.
	n := 0
	for range alt.Range(keys[100]) {
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("early break iterated %d", n)
	}
	// Starting past the end yields nothing.
	for k := range alt.Range(keys[len(keys)-1] + 1) {
		t.Fatalf("phantom key %d", k)
	}
}
