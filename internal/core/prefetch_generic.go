//go:build !amd64

package core

import "unsafe"

// prefetcht0 is a no-op on architectures without an exposed prefetch
// instruction; the block layout still bounds a probe to adjacent lines.
func prefetcht0(p unsafe.Pointer) { _ = p }
