package core

// The overflow fingerprint sidecar.
//
// Every learned-layer miss that lands on a conflict slot (occupied by a
// different key, or tombstoned) pays a full ART traversal before it can
// answer "absent" — a chain of dependent pointer loads that dominates the
// lookup cost on fit-hard datasets. But the set of keys a model evicted
// to ART at build time is known exactly when the model is built, and it
// only grows through one path afterwards: a runtime conflict eviction
// under the model's slot lock.
//
// The sidecar exploits that: at build time the model records, per evicted
// key, an 8-bit fingerprint in a slot-indexed tag array. A lookup that
// reaches the conflict path first asks the sidecar; if the key's predicted
// slot carries no eviction tag — or a tag that cannot be this key's — the
// key cannot be ART-resident and the lookup answers "absent" without
// touching the tree. The probe is one byte load, so ART-resident lookups
// (which must still traverse) pay almost nothing for it. False positives
// (fingerprint collisions, multi-eviction slots, keys since removed from
// ART) cost one redundant traversal; false "absent" answers are made
// impossible by the epoch stamp below.
//
// Invalidation. The sidecar is immutable. The model's artEpoch counter
// starts at the value the sidecar was built against (zero — rebuilt
// models are fresh objects) and every runtime eviction bumps it BEFORE
// the tree insert, both under the evicting writer's slot lock. A reader
// therefore trusts the sidecar only while artEpoch still equals the
// build value: if the epoch load observes the pre-bump value, the
// eviction's tree insert has not happened yet either (the bump and the
// insert are ordered, and Go atomics are sequentially consistent), so
// linearizing the lookup before that eviction is sound. One eviction
// permanently invalidates the sidecar — deliberately cheap and coarse,
// because retraining rebuilds the model (and a fresh, complete sidecar)
// as soon as a model accumulates real overflow traffic.
//
// Removals from ART (lookup write-back, Remove, retrain range drains)
// never invalidate: they only shrink the ART-resident set, so a stale
// "maybe present" stays a harmless false positive.

// Sidecar tag values. A slot's tag is 0 when the build evicted nothing
// there, the evicted key's fingerprint (in [1, 0xFE]) for exactly one
// eviction, and scManyTag when several keys conflicted out of the same
// slot (any fingerprint would then lie for the others).
const scManyTag = uint8(0xFF)

// sidecar is one model's build-time conflict map: one tag byte per slot.
// A byte per slot is 5% on top of the 20 slot bytes, paid only by models
// whose build actually evicted keys; the payoff is an O(1), single-load
// membership test on the hottest miss path.
type sidecar struct {
	tags []uint8
}

func newSidecar(nslots int) *sidecar {
	return &sidecar{tags: make([]uint8, nslots)}
}

// add records one eviction at slot s.
func (sc *sidecar) add(s int, tag uint8) {
	switch cur := sc.tags[s]; {
	case cur == 0:
		sc.tags[s] = tag
	case cur != tag:
		sc.tags[s] = scManyTag
	}
}

func (sc *sidecar) memory() uintptr {
	return uintptr(cap(sc.tags)) + 24
}

// fp8 is the sidecar's 8-bit key fingerprint: a Fibonacci-hash mix folded
// into [1, 0xFE] so nearby keys (the common case among one slot's
// conflicts) still get distinct tags, and the 0 / scManyTag sentinels stay
// unambiguous.
func fp8(k uint64) uint8 {
	return uint8((k*0x9e3779b97f4a7c15)>>56)%254 + 1
}

// absentInART reports whether key — predicted to slot s of m, which was
// observed occupied by a different key or tombstoned — is provably absent
// from the ART layer, letting the caller skip the tree traversal.
//
// The proof needs two facts: the sidecar still describes every eviction
// this model has ever performed (artEpoch unchanged since build, which
// also covers the no-conflicts case where sc is nil and the build evicted
// nothing), and slot s's tag rules the key out. Callers must have
// seqlock-validated the slot read that routed them here: a validated read
// proves the model was not yet frozen, so evictions via any successor
// model are ordered after the caller's linearization point.
func (m *model) absentInART(key uint64, s int) bool {
	if m.artEpoch.Load() != 0 {
		return false // runtime evictions happened; sidecar stale
	}
	sc := m.sc
	if sc == nil {
		return true // built with zero conflicts and none added since
	}
	tag := sc.tags[s]
	return tag == 0 || (tag != scManyTag && tag != fp8(key))
}
