package core

import (
	"sync"
	"sync/atomic"

	"altindex/internal/art"
)

// fpBuffer is the fast pointer buffer of §III-C: an append-only array of
// pointers from GPL models into intermediate ART nodes, with the merge
// scheme that collapses pointers targeting the same node. It implements
// art.SMOHooks so that prefix extraction (case ①) and node expansion
// (case ②) repair the affected entry while the tree writer still holds the
// node locks.
//
// The entry array has fixed capacity (its header is immutable, so hook
// callbacks and lookups never race with appends); when it fills, further
// registrations degrade gracefully to "no fast pointer" (-1), which only
// costs those models a root traversal.
type fpBuffer struct {
	mu      sync.Mutex // the paper's spin lock guarding appends
	entries []fpEntry  // full capacity, immutable header; entries[:n] live
	n       atomic.Int32

	// requested counts registrations including merged duplicates, so the
	// merge scheme's saving is observable (Fig 10b).
	requested atomic.Int64
}

type fpEntry struct {
	node atomic.Pointer[art.Node]
}

// newFPBuffer returns a buffer able to hold capacity distinct pointers.
func newFPBuffer(capacity int) *fpBuffer {
	if capacity < 64 {
		capacity = 64
	}
	return &fpBuffer{entries: make([]fpEntry, capacity)}
}

// register returns the buffer index for node, merging with an existing
// entry when node is already referenced (§III-C2). A nil node, or a full
// buffer, returns -1.
func (b *fpBuffer) register(node *art.Node) int32 {
	if node == nil {
		return -1
	}
	b.requested.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	fpFPBufRegister.Inject()
	if idx := node.FPIndex(); idx >= 0 && int(idx) < len(b.entries) &&
		b.entries[idx].node.Load() == node {
		return idx // merge scheme: duplicate target
	}
	idx := b.n.Load()
	if int(idx) == len(b.entries) {
		return -1
	}
	b.entries[idx].node.Store(node)
	node.SetFPIndex(idx)
	b.n.Store(idx + 1)
	return idx
}

// node resolves a buffer index to its current ART node (nil for -1 or an
// out-of-range index). Lock-free: the backing array never moves and idx was
// handed out after its entry was initialised.
func (b *fpBuffer) node(idx int32) *art.Node {
	if idx < 0 || int(idx) >= len(b.entries) {
		return nil
	}
	return b.entries[idx].node.Load()
}

// OnReplace implements art.SMOHooks: the buffer entry that pointed at old
// now points at new, and new inherits the back-reference (§III-C3 ①②).
// Runs under the tree writer's node locks.
func (b *fpBuffer) OnReplace(old, new *art.Node) {
	idx := old.FPIndex()
	if idx < 0 || int(idx) >= len(b.entries) {
		return
	}
	e := &b.entries[idx]
	if e.node.Load() == old {
		e.node.Store(new)
		new.SetFPIndex(idx)
		old.SetFPIndex(-1)
	}
}

// len returns the number of distinct fast pointers.
func (b *fpBuffer) len() int { return int(b.n.Load()) }

// requestedCount returns registrations including merged duplicates.
func (b *fpBuffer) requestedCount() int64 { return b.requested.Load() }

// memory approximates the buffer's heap bytes.
func (b *fpBuffer) memory() uintptr { return uintptr(len(b.entries)) * 8 }
