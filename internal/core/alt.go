// Package core implements ALT-index, the hybrid learned index of the paper
// (§III): a flattened learned-index layer of GPL models whose predictions
// are exact by construction, over an optimized ART layer (ART-OPT) that
// hosts conflict data, linked by a fast pointer buffer.
//
// Layer invariants:
//
//  1. A live key is either at its predicted GPL slot or in the ART layer.
//  2. If a key lives in ART, its predicted slot is non-empty (occupied by a
//     different key, or a tombstone). Hence an empty predicted slot proves
//     absence without any secondary search (Algorithm 2, line 5).
//  3. Slot order equals key order inside a model, and model ranges are
//     disjoint and sorted, so range scans merge two ordered streams.
//
// Concurrency follows §III-E: per-slot seqlock versions (even/odd) in the
// learned layer, a spin-locked append-only fast pointer buffer, and
// optimistic lock coupling inside ART. Retraining freezes one model's
// slots, rebuilds the key range (pulling its ART residents back), and swaps
// a copy-on-write model table.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/arena"
	"altindex/internal/art"
	"altindex/internal/gpl"
	"altindex/internal/index"
)

// Options configure an ALT index. The zero value gives the paper's
// recommended defaults.
type Options struct {
	// ErrorBound is the GPL segmentation ε. Zero selects the paper's
	// recommendation of bulkload_size/1000 (§III-D), floored at 16.
	ErrorBound int
	// GapFactor stretches each model's slot array to leave gaps for
	// in-place inserts (§III-B "array gaps scheme"). Zero selects 2.0.
	GapFactor float64
	// DisableFastPointers turns off the fast pointer buffer, so ART
	// lookups start at the root (the Fig 10a ablation).
	DisableFastPointers bool
	// DisableRetraining turns off dynamic retraining (§III-F).
	DisableRetraining bool
	// RetrainMinInserts floors the retraining trigger: a model retrains
	// once its runtime inserts exceed max(buildSize, RetrainMinInserts).
	// Zero selects 1024, which stops rebuild thrash on small models.
	RetrainMinInserts int
	// RetrainWorkers sizes the background retraining worker pool (started
	// lazily on the first trigger). Zero selects min(4, max(1,
	// GOMAXPROCS/2)). Negative runs retraining synchronously on the
	// triggering writer — the pre-async baseline, kept for tail-latency
	// comparison.
	RetrainWorkers int
	// RetrainQueue bounds the trigger queue feeding the worker pool. Zero
	// selects 256. On overflow the trigger is dropped and the model
	// disarmed, so a later threshold-crossing insert re-triggers it.
	RetrainQueue int
	// DisableWriteBack turns off moving ART-resident keys back into
	// freed GPL slots during lookups (Algorithm 2 lines 10-13).
	DisableWriteBack bool
	// DisableScanKernel routes Scan through the pre-kernel per-slot path
	// (one seqlock validation per slot, per-key 3-way merge) instead of
	// the block-granular run kernel. Kept as the measured baseline for
	// the scan-path experiment and as an escape hatch; ScanAppend always
	// uses the kernel.
	DisableScanKernel bool
	// AutoTrainThreshold makes an index that was never Bulkloaded train
	// its learned layer automatically once the ART layer holds this many
	// keys. Zero selects 8192; negative disables automatic training.
	AutoTrainThreshold int
	// Shards asks front-ends (altindex.New, memdb tables, the bench
	// factories) for a range-partitioned index of this many independent
	// ALT shards behind a learned boundary router (internal/shard). Zero
	// keeps the single-instance layout. core.New itself ignores the field
	// — one core.ALT is always one shard — so a single Options value can
	// flow unchanged through the whole stack.
	Shards int
	// RetrainGate, when non-nil, is a shared semaphore bounding how many
	// rebuilds may execute concurrently across every index holding the
	// same channel: a worker sends before rebuilding and receives after.
	// The sharded front-end hands one gate to all of its shards so the
	// per-shard retraining pipelines share a global rebuild budget (one
	// hot shard queues behind the gate instead of oversubscribing the
	// CPU). Nil means ungated, the single-instance default.
	RetrainGate chan struct{}
	// Reclaim, when non-nil, is a shared epoch-reclamation domain: every
	// index holding the same domain retires superseded model storage onto
	// its limbo lists and readers of any of them pin its epoch. The
	// sharded front-end hands one domain to all of its shards (mirroring
	// RetrainGate) so cross-shard operations pin once. Nil makes the
	// index own a private domain.
	Reclaim *arena.Domain
	// RebalanceFactor enables the sharded front-end's adaptive rebalance
	// controller (internal/shard): when the hottest shard's routed-op
	// share exceeds the mean by this factor (e.g. 1.5) for
	// RebalanceWindows consecutive evaluation windows, the controller
	// splits the hot shard at a learned CDF boundary or merges adjacent
	// cold shards, migrating slots without stopping reads. Zero keeps the
	// boundaries static (the pre-rebalancing behaviour). core.New ignores
	// the field, like Shards.
	RebalanceFactor float64
	// RebalanceInterval is the controller's evaluation cadence (a
	// routed-op threshold kicks evaluations early under load). Zero
	// selects 500ms.
	RebalanceInterval time.Duration
	// RebalanceWindows is how many consecutive over-factor windows must
	// accumulate before the controller acts. Zero selects 3.
	RebalanceWindows int
	// RebalanceMinOps is the minimum routed-op delta a window must carry
	// to count: smaller windows accumulate instead of voting, so an idle
	// index never rebalances on noise. Zero selects 16384.
	RebalanceMinOps int64
	// RebalanceMinSplit is the resident-key floor below which the
	// controller refuses to split a hot shard: bulkload derives each
	// shard's error bound as n/1000 floored at 16, so below ~16k keys a
	// split cannot tighten prediction windows and only churns boundaries.
	// Zero selects 16384. (SplitShard itself stays ungated for embedders
	// and tests.)
	RebalanceMinSplit int
	// OnRebalance, when non-nil, is invoked by the sharded front-end
	// after each rebalanced boundary layout is published, with a copy of
	// the new boundary keys. WAL-backed embedders (internal/memdb) log
	// the change so recovery reproduces the layout. Called from the
	// migrating goroutine after the publish, never under internal locks.
	OnRebalance func(bounds []uint64)
}

func (o Options) withDefaults() Options {
	if o.GapFactor == 0 {
		o.GapFactor = 2.0
	}
	if o.RetrainMinInserts == 0 {
		o.RetrainMinInserts = 1024
	}
	if o.RetrainQueue == 0 {
		o.RetrainQueue = 256
	}
	return o
}

// ALT is the hybrid learned index. Create with New; safe for concurrent
// use after Bulkload.
type ALT struct {
	opts Options
	eps  float64

	tab  atomic.Pointer[table]
	tree *art.Tree
	fp   *fpBuffer

	// blocks is the slot-block arena every model's storage comes from:
	// pointer-free chunks the collector never scans, recycled whole when
	// retraining retires the models cut from them. ebr is the epoch
	// domain deferring that recycling past every in-flight reader
	// (Options.Reclaim, or a private domain when ownEBR).
	blocks *arena.Arena[slotBlock]
	ebr    *arena.Domain
	ownEBR bool

	// ret is the asynchronous retraining pipeline (§III-F); see retrain.go.
	ret retrainer
	// bootMu serialises automatic initial training (one bootstrap only).
	bootMu sync.Mutex
	// preMu serialises pre-table tree mutations against the bootstrap
	// table swap of automatic initial training.
	preMu       sync.RWMutex
	retrains    atomic.Int64
	size        atomic.Int64
	writerSpins atomic.Int64 // writer backoff waits (contention/freeze stalls)
}

var _ index.Concurrent = (*ALT)(nil)
var _ index.Stats = (*ALT)(nil)

// New returns an empty ALT-index. Until Bulkload, all keys live in the ART
// layer.
func New(opts Options) *ALT {
	t := &ALT{opts: opts.withDefaults()}
	t.fp = newFPBuffer(64)
	t.tree = art.New(t.fp)
	t.blocks = arena.New[slotBlock](arenaChunkBlocks)
	if t.ebr = t.opts.Reclaim; t.ebr == nil {
		t.ebr = arena.NewDomain()
		t.ownEBR = true
	}
	t.tab.Store(&table{})
	t.ret.q = make(chan *model, t.opts.RetrainQueue)
	t.ret.stop = make(chan struct{})
	return t
}

// arenaChunkBlocks sizes the slot-block arena's standard chunk: 8192
// blocks × 160 B = 1.25 MiB, big enough that a steady retrain workload
// cycles a handful of chunks instead of allocating, small enough that a
// mostly-drained chunk pinned by one straggler model wastes little.
const arenaChunkBlocks = 8192

// retireModels hands superseded models' slot storage to the epoch
// domain: the spans return to the arena only after every reader that
// could still hold the old table has unpinned. Call only after the
// replacement table is published. The model structs themselves (and
// sidecars/ART nodes they reference) stay ordinary GC-managed memory —
// the domain just defers the arena recycling, which is the only unsafe
// reuse in the system.
func (t *ALT) retireModels(ms []*model) {
	for _, m := range ms {
		fpEpochRetire.Inject()
		t.ebr.Retire(m.span.Bytes(), m.span.Release)
	}
}

// Close stops the background retraining workers and drains the trigger
// queue. The index stays readable and writable afterwards — subsequent
// triggers are simply dropped. Implements io.Closer so harnesses that
// close their indexes reap the worker goroutines.
func (t *ALT) Close() error {
	r := &t.ret
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.stop)
	r.wg.Wait()
	for {
		select {
		case m := <-r.q:
			m.retrainArmed.Store(false)
			r.pending.Add(-1)
		default:
			// Workers are gone; on a privately owned domain, give limbo a
			// bounded chance to drain so a closed index does not sit on
			// retired spans forever. On a shared domain (Options.Reclaim)
			// skip it: the other participants keep cranking the epoch, and
			// Close may itself be running inside a reclamation callback
			// (the shard front-end retires superseded instances with a
			// Close-ing free func) — under load every failed advance there
			// is a Gosched behind every runnable goroutine, which turns 64
			// attempts into seconds of stall on the reclaim path.
			if t.ownEBR {
				t.ebr.Drain(64)
			}
			return nil
		}
	}
}

// Quiesce blocks until no retraining trigger is queued or in flight. Call
// it after writers stop — before invariant audits, snapshots or memory
// measurements — so the observed state is not mid-rebuild. With writers
// still running it only guarantees a momentary empty pipeline.
func (t *ALT) Quiesce() {
	r := &t.ret
	for r.pending.Load() != 0 {
		if r.closed.Load() {
			return
		}
		runtime.Gosched()
	}
	// With the pipeline idle, crank the epoch so everything the rebuilds
	// retired is actually reclaimed before audits or memory measurements.
	t.ebr.Drain(64)
}

// Name implements index.Concurrent.
func (t *ALT) Name() string { return "ALT-index" }

// Len returns the number of live keys.
func (t *ALT) Len() int { return int(t.size.Load()) }

// ErrorBound returns the ε in effect (resolved after Bulkload).
func (t *ALT) ErrorBound() float64 { return t.eps }

// Bulkload replaces the index contents: GPL segmentation (Algorithm 1),
// gapped model layout, conflict eviction to a fresh ART, and fast pointer
// construction (§III-C1).
func (t *ALT) Bulkload(pairs []index.KV) error {
	keys := make([]uint64, len(pairs))
	vals := make([]uint64, len(pairs))
	for i, kv := range pairs {
		if i > 0 && kv.Key <= keys[i-1] {
			return index.ErrUnsortedBulk
		}
		keys[i] = kv.Key
		vals[i] = kv.Value
	}

	eps := float64(t.opts.ErrorBound)
	if eps <= 0 {
		eps = float64(len(keys)) / 1000
	}
	if eps < 16 {
		eps = 16
	}
	t.eps = eps

	var segs []gpl.Segment
	if len(keys) > 0 {
		segs = gpl.Partition(keys, eps)
	}

	models := make([]*model, 0, len(segs))
	firsts := make([]uint64, 0, len(segs))
	var confK, confV []uint64
	off := 0
	for _, seg := range segs {
		m, conflicts := buildModel(t.blocks, keys[off:off+seg.N], vals[off:off+seg.N], seg, t.opts.GapFactor)
		for _, ci := range conflicts {
			confK = append(confK, keys[off+ci])
			confV = append(confV, vals[off+ci])
		}
		models = append(models, m)
		firsts = append(firsts, m.first)
		off += seg.N
	}

	// Fresh ART + fast pointer buffer sized for the model population
	// plus retraining headroom.
	t.fp = newFPBuffer(2*len(models) + 1024)
	t.tree = art.New(t.fp)
	for i := range confK {
		t.tree.Insert(confK[i], confV[i])
	}

	tb := &table{firsts: firsts, models: models}
	old := t.tab.Swap(tb)
	t.size.Store(int64(len(keys)))
	t.retrains.Store(0)

	if !t.opts.DisableFastPointers {
		t.buildFastPointers(tb)
	}
	// The replaced table's slot storage goes through the epoch domain like
	// any retirement, so a reader still holding the old table (Bulkload on
	// a live index) never sees its spans recycled under it.
	t.retireModels(old.models)
	return nil
}

// buildFastPointers links each GPL model to the deepest ART node covering
// its key range, merging duplicate targets (§III-C).
func (t *ALT) buildFastPointers(tb *table) {
	for i, m := range tb.models {
		t.registerFP(tb, m, i)
	}
}

// registerFP links the model at table position pos to the deepest ART node
// covering its routing range (§III-C1).
func (t *ALT) registerFP(tb *table, m *model, pos int) {
	lo := tb.firsts[pos]
	if pos == 0 {
		lo = 0
	}
	hi := tb.upperBound(pos)
	if hi > lo {
		hi--
	}
	n := t.tree.LowestCommonNode(lo, hi)
	if n != nil {
		if _, leaf := n.Leaf(); leaf {
			n = nil
		}
	}
	if n != nil {
		m.fastIdx.Store(t.fp.register(n))
	}
}

// fpNode resolves a model's fast pointer to the current ART entry node.
func (t *ALT) fpNode(m *model) *art.Node {
	if t.opts.DisableFastPointers {
		return nil
	}
	return t.fp.node(m.fastIdx.Load())
}

// backoff is the per-operation contention policy, used when a slot writer
// (or a retraining freeze) is in flight. Each retry loop keeps one on its
// stack and calls wait() per failed attempt.
//
// Contention contract: attempts 0..16 stay on-CPU with an exponentially
// growing bounded pause — slot writer critical sections are a handful of
// stores, so the slot is expected to free within tens of nanoseconds and
// yielding immediately would trade that for a scheduler round trip. Past
// 16 attempts the writer is presumed descheduled (or the model frozen for
// retraining) and the goroutine yields — followed by a decorrelated-jitter
// spin pause, so a herd of writers parked on the same frozen model does
// not convoy back on the same Gosched cadence and collide again in
// lockstep: each goroutine's pause is drawn uniformly from
// [base, 3×previous], capped at backoffMaxPause, per the decorrelated
// jitter scheme. Callers reload the model table each attempt so a frozen
// model is escaped as soon as the new table lands.
type backoff struct {
	attempt int
	pause   uint32 // previous jitter draw (spin iterations); 0 = unseeded
	rng     uint64 // splitmix64 state, seeded on first post-spin attempt

	// spins, when set, counts every wait() — writer paths point it at the
	// index's writerSpins so StatsMap exposes how often writers stalled
	// on contention or a retraining freeze.
	spins *atomic.Int64
}

// writerBackoff returns a backoff wired to the writer-spin counter.
func (t *ALT) writerBackoff() backoff {
	return backoff{spins: &t.writerSpins}
}

const (
	// backoffSpinAttempts is the on-CPU phase length (the pre-existing
	// spin contract, unchanged).
	backoffSpinAttempts = 16
	// backoffBasePause is the minimum post-yield jitter pause, in spin
	// iterations (~a few ns each).
	backoffBasePause = 64
	// backoffMaxPause caps decorrelated growth so a long freeze never
	// pushes pauses past ~tens of microseconds of spinning.
	backoffMaxPause = 16384
)

// backoffSeed decorrelates the jitter streams of concurrent operations;
// each backoff draws a distinct seed on its first post-spin attempt.
var backoffSeed atomic.Uint64

// wait performs one backoff step and advances the state.
func (bo *backoff) wait() {
	if bo.spins != nil {
		bo.spins.Add(1)
	}
	a := bo.attempt
	bo.attempt++
	if a <= backoffSpinAttempts {
		spin(2 << uint(a&7))
		return
	}
	runtime.Gosched()
	spin(bo.nextPause())
}

// nextPause draws the decorrelated-jitter pause: uniform in
// [backoffBasePause, 3×previous], capped at backoffMaxPause. Growth is
// therefore bounded (at most 3× per step, never above the cap) but
// randomized, which is what spreads a convoy apart.
func (bo *backoff) nextPause() uint32 {
	if bo.pause == 0 {
		bo.pause = backoffBasePause
		bo.rng = backoffSeed.Add(0x9e3779b97f4a7c15)
	}
	hi := 3 * bo.pause
	if hi > backoffMaxPause {
		hi = backoffMaxPause
	}
	// splitmix64 step (inlined; see internal/xrand).
	bo.rng += 0x9e3779b97f4a7c15
	z := bo.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	p := backoffBasePause + uint32(z%uint64(hi-backoffBasePause+1))
	bo.pause = p
	return p
}

// spin burns roughly iters loop iterations on-CPU. The loop feeds
// runtime.KeepAlive so the compiler cannot prove the body dead and delete
// it (a `_ = i` body is eliminated entirely, which silently turns the
// pause into a hot no-op loop of zero iterations' worth of delay).
func spin(iters uint32) {
	n := uint32(0)
	for i := uint32(0); i < iters; i++ {
		n += i | 1
	}
	runtime.KeepAlive(n)
}

// Get implements Algorithm 2 (Search): one model location, one exact
// prediction, and — only for conflict data — a fast-pointer hop into ART.
//
// An ART miss is only trusted if the slot metadata is unchanged afterwards:
// a changed version means a concurrent migration (retraining freeze,
// write-back or tombstone reclaim) may have moved the key between the two
// probes, so the lookup retries.
func (t *ALT) Get(key uint64) (uint64, bool) {
	// The epoch pin is what lets retraining recycle superseded slot
	// storage: every dereference of a loaded table happens under it.
	g := t.ebr.Pin()
	defer g.Unpin()
	var bo backoff
	for {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			return t.tree.Get(key)
		}
		m, _ := tab.find(key)
		s := m.slotOf(key)
		k, v, meta, ok := m.read(s)
		if !ok {
			bo.wait()
			continue
		}
		switch st := stateOf(meta); {
		case st == 0:
			// Empty prediction target: the key cannot exist anywhere
			// (invariant 2) — no secondary search needed.
			return 0, false
		case st&slotOccupied != 0:
			if k == key {
				return v, true
			}
			// Conflict slot: before paying the ART traversal, ask the
			// fingerprint sidecar whether the key can be there at all —
			// the common "absent on a fit-hard dataset" case ends here.
			if m.absentInART(key, s) {
				return 0, false
			}
			val, found, _ := t.tree.GetFrom(t.fpNode(m), key)
			if found {
				return val, true
			}
			if m.metaRef(s).Load() != meta {
				bo.wait()
				continue // concurrent migration; retry
			}
			return 0, false
		default: // tombstone: the key may live in ART
			if m.absentInART(key, s) {
				return 0, false
			}
			val, found, _ := t.tree.GetFrom(t.fpNode(m), key)
			if found {
				if !t.opts.DisableWriteBack {
					t.writeBack(m, s, key, val)
				}
				return val, true
			}
			if m.metaRef(s).Load() != meta {
				bo.wait()
				continue
			}
			return 0, false
		}
	}
}

// writeBack moves a key found in ART into its freed predicted slot
// (Algorithm 2 lines 10-13). The slot lock is held across the ART removal
// so concurrent operations on the same key serialize behind the slot.
func (t *ALT) writeBack(m *model, s int, key, val uint64) {
	meta := m.metaRef(s).Load()
	if meta&(slotLockBit|slotOccupied) != 0 {
		return // someone claimed the slot; keep the ART copy
	}
	if !m.acquire(s, meta) {
		return
	}
	fpWriteBack.Inject()
	if t.tree.Remove(key) {
		m.keyRef(s).Store(key)
		m.valRef(s).Store(val)
		m.release(s, meta, slotOccupied)
	} else {
		// A racing remove took the key; restore the slot state.
		m.release(s, meta, meta&(slotOccupied|slotTomb))
	}
}

// Insert stores key/value (upsert): in place when the predicted slot is
// free, otherwise into the ART-OPT layer (Algorithm 2, Insert).
func (t *ALT) Insert(key, value uint64) error {
	g := t.ebr.Pin()
	defer g.Unpin()
	bo := t.writerBackoff()
	for {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			t.preMu.RLock()
			if len(t.tab.Load().models) != 0 {
				t.preMu.RUnlock()
				continue // trained concurrently; take the normal path
			}
			if t.tree.Put(key, value) {
				t.size.Add(1)
			}
			t.preMu.RUnlock()
			t.maybeTrainInitial()
			return nil
		}
		m, pos := tab.find(key)
		if t.insertAt(tab, m, pos, key, value) {
			return nil
		}
		bo.wait()
	}
}

// insertAt runs one optimistic insert attempt of key at its routed model.
// It returns false on contention (a locked slot or a metadata race) — the
// caller must back off, reload the table and reroute. Shared verbatim by
// the per-key Insert loop and the batched InsertBatch path, so both speak
// exactly the same slot protocol.
func (t *ALT) insertAt(tab *table, m *model, pos int, key, value uint64) bool {
	s := m.slotOf(key)
	meta := m.metaRef(s).Load()
	if meta&slotLockBit != 0 {
		return false
	}
	st := meta & (slotOccupied | slotTomb)
	switch {
	case st&slotOccupied != 0:
		k := m.keyRef(s).Load()
		if m.metaRef(s).Load() != meta {
			return false
		}
		if k == key {
			if !m.acquire(s, meta) {
				return false
			}
			fpInsertLocked.Inject()
			m.valRef(s).Store(value)
			m.release(s, meta, slotOccupied)
			return true
		}
		// Conflict data: evict to ART-OPT via the fast pointer
		// ("insertion is similar to the lookup", §III-C3). The slot
		// lock is held across the tree write so a retraining freeze
		// cannot gather the range while this key is in flight (it
		// would strand the key in ART with no occupied slot routing
		// to it).
		if !m.acquire(s, meta) {
			return false
		}
		fpInsertLocked.Inject()
		// The epoch bump must precede the tree insert (both under the
		// slot lock) so no reader can trust the sidecar after the key
		// becomes ART-resident; see the invalidation notes in sidecar.go.
		m.artEpoch.Add(1)
		added := t.tree.PutFrom(t.fpNode(m), key, value)
		m.release(s, meta, slotOccupied)
		if added {
			t.size.Add(1)
		}
		m.overflow.Add(1)
		if !t.opts.DisableFastPointers && m.fastIdx.Load() < 0 {
			// The model had no fast pointer (the ART was empty when
			// it was built); now that its range has conflict data,
			// link it lazily.
			t.registerFP(tab, m, pos)
		}
		t.maybeRetrain(m)
		return true
	case st == 0:
		if !m.acquire(s, meta) {
			return false
		}
		fpInsertLocked.Inject()
		m.keyRef(s).Store(key)
		m.valRef(s).Store(value)
		m.release(s, meta, slotOccupied)
		m.inserts.Add(1)
		t.size.Add(1)
		return true
	default: // tombstone: claim it, clearing any shadowed ART copy.
		if !m.acquire(s, meta) {
			return false
		}
		fpInsertLocked.Inject()
		// The ART removal runs under the slot lock so the key never
		// exists in both layers and the size stays exact. The sidecar can
		// prove there is no shadowed copy to clear: an eviction of this
		// same key would need the slot lock we hold, so the check cannot
		// race with the copy it is ruling out.
		shadowed := false
		if !m.absentInART(key, s) {
			shadowed = t.tree.Remove(key)
		}
		m.keyRef(s).Store(key)
		m.valRef(s).Store(value)
		m.release(s, meta, slotOccupied)
		if !shadowed {
			t.size.Add(1) // fresh key, not an upsert of an ART copy
		}
		m.inserts.Add(1)
		return true
	}
}

// Update overwrites an existing key's value.
func (t *ALT) Update(key, value uint64) bool {
	g := t.ebr.Pin()
	defer g.Unpin()
	bo := t.writerBackoff()
	for {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			t.preMu.RLock()
			if len(t.tab.Load().models) != 0 {
				t.preMu.RUnlock()
				continue
			}
			found := t.tree.Update(key, value)
			t.preMu.RUnlock()
			return found
		}
		m, _ := tab.find(key)
		s := m.slotOf(key)
		meta := m.metaRef(s).Load()
		if meta&slotLockBit != 0 {
			bo.wait()
			continue
		}
		st := meta & (slotOccupied | slotTomb)
		switch {
		case st == 0:
			return false
		case st&slotOccupied != 0:
			k := m.keyRef(s).Load()
			if m.metaRef(s).Load() != meta {
				bo.wait()
				continue
			}
			if k == key {
				if !m.acquire(s, meta) {
					bo.wait()
					continue
				}
				m.valRef(s).Store(value)
				m.release(s, meta, slotOccupied)
				return true
			}
			if m.absentInART(key, s) {
				return false // sidecar proves no ART copy to update
			}
			// ART-resident target: run the tree update under the slot
			// lock so it cannot interleave with a retraining migration.
			if !m.acquire(s, meta) {
				bo.wait()
				continue
			}
			found := t.tree.Update(key, value)
			m.release(s, meta, st)
			return found
		default:
			if m.absentInART(key, s) {
				return false
			}
			if !m.acquire(s, meta) {
				bo.wait()
				continue
			}
			found := t.tree.Update(key, value)
			m.release(s, meta, st)
			return found
		}
	}
}

// Remove deletes key. A slot-resident key becomes a tombstone so that
// conflict keys predicted to the same slot still route to ART
// (invariant 2); ART-resident keys are removed from the tree.
func (t *ALT) Remove(key uint64) bool {
	g := t.ebr.Pin()
	defer g.Unpin()
	bo := t.writerBackoff()
	for {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			t.preMu.RLock()
			if len(t.tab.Load().models) != 0 {
				t.preMu.RUnlock()
				continue
			}
			removed := t.tree.Remove(key)
			t.preMu.RUnlock()
			if removed {
				t.size.Add(-1)
				return true
			}
			return false
		}
		m, _ := tab.find(key)
		s := m.slotOf(key)
		meta := m.metaRef(s).Load()
		if meta&slotLockBit != 0 {
			bo.wait()
			continue
		}
		st := meta & (slotOccupied | slotTomb)
		switch {
		case st == 0:
			return false
		case st&slotOccupied != 0:
			k := m.keyRef(s).Load()
			if m.metaRef(s).Load() != meta {
				bo.wait()
				continue
			}
			if k == key {
				if !m.acquire(s, meta) {
					bo.wait()
					continue
				}
				m.release(s, meta, slotTomb)
				t.size.Add(-1)
				return true
			}
			if m.absentInART(key, s) {
				return false // sidecar proves no ART copy to remove
			}
			// ART-resident target: remove under the slot lock so the
			// removal cannot interleave with a retraining migration.
			if !m.acquire(s, meta) {
				bo.wait()
				continue
			}
			removed := t.tree.Remove(key)
			m.release(s, meta, st)
			if removed {
				t.size.Add(-1)
			}
			return removed
		default:
			if m.absentInART(key, s) {
				return false
			}
			if !m.acquire(s, meta) {
				bo.wait()
				continue
			}
			removed := t.tree.Remove(key)
			m.release(s, meta, st)
			if removed {
				t.size.Add(-1)
			}
			return removed
		}
	}
}

// MemoryUsage approximates retained heap bytes across both layers, the
// fast pointer buffer and the model table.
func (t *ALT) MemoryUsage() uintptr {
	g := t.ebr.Pin()
	defer g.Unpin()
	tb := t.tab.Load()
	total := t.tree.MemoryUsage() + t.fp.memory()
	for _, m := range tb.models {
		total += m.memory()
	}
	total += uintptr(len(tb.firsts)) * 16
	return total
}

// StatsMap implements index.Stats with the counters behind the paper's
// Fig 10 analysis.
func (t *ALT) StatsMap() map[string]int64 {
	g := t.ebr.Pin()
	tb := t.tab.Load()
	learned := 0
	slots := 0
	for _, m := range tb.models {
		learned += m.liveCount()
		slots += m.nslots
	}
	g.Unpin()
	es := t.ebr.Stats()
	as := t.blocks.Stats()
	return map[string]int64{
		"models":       int64(len(tb.models)),
		"slots":        int64(slots),
		"learned_keys": int64(learned),
		"art_keys":     int64(t.tree.Len()),
		"fp_entries":   int64(t.fp.len()),
		"fp_requested": t.fp.requestedCount(),
		"retrains":     t.retrains.Load(),

		// Retraining pipeline observability (§III-F async):
		"retrain_queue_depth":   int64(len(t.ret.q)),
		"retrain_pending":       t.ret.pending.Load(),
		"retrains_inflight":     t.ret.inflight.Load(),
		"retrain_drops":         t.ret.drops.Load(),
		"retrain_merges":        t.ret.merges.Load(),
		"retrain_freeze_ns":     t.ret.freezeNsTotal.Load(),
		"retrain_freeze_max_ns": t.ret.freezeNsMax.Load(),
		"writer_spins":          t.writerSpins.Load(),

		// Memory-reclamation layer (arena + epochs). The epoch_* keys
		// describe the reclamation domain, which may be shared across
		// shards — the sharded front-end's StatsMap de-duplicates them.
		"epoch_current":        int64(es.Epoch),
		"limbo_models":         es.LimboCount,
		"limbo_bytes":          es.LimboBytes,
		"reclaims":             es.Reclaims,
		"arena_chunks":         as.ChunksMade,
		"arena_chunk_reuses":   as.Reuses,
		"arena_live_bytes":     as.LiveBytes,
		"arena_retained_bytes": as.RetainedBytes,
	}
}

// ARTLookupLength reports, for a key, how many ART nodes a secondary
// lookup traverses with or without the fast pointer, and whether the key is
// ART-resident. Used by the Fig 10a analysis.
func (t *ALT) ARTLookupLength(key uint64, useFP bool) (pathLen int, inART bool) {
	g := t.ebr.Pin()
	defer g.Unpin()
	tab := t.tab.Load()
	if len(tab.models) == 0 {
		_, found, p := t.tree.GetFrom(nil, key)
		return p, found
	}
	m, _ := tab.find(key)
	var start *art.Node
	if useFP {
		start = t.fp.node(m.fastIdx.Load())
	}
	_, found, p := t.tree.GetFrom(start, key)
	return p, found
}
