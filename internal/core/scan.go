package core

import (
	"iter"
	"math/bits"
	"sync"

	"altindex/internal/index"
)

// scanBufs is the per-scan scratch: the learned-layer run buffer, the
// ART-layer result buffer, and the output buffer the Scan shim merges
// into. Pooled so repeated scans allocate nothing.
type scanBufs struct {
	learned []index.KV
	art     []index.KV
	out     []index.KV
}

var scanBufPool = sync.Pool{New: func() any { return new(scanBufs) }}

// maxPooledScanKV bounds the per-buffer capacity the pool retains, so one
// giant scan cannot pin its working set forever.
const maxPooledScanKV = 1 << 16

func putScanBufs(b *scanBufs) {
	if cap(b.learned) > maxPooledScanKV {
		b.learned = nil
	}
	if cap(b.art) > maxPooledScanKV {
		b.art = nil
	}
	if cap(b.out) > maxPooledScanKV {
		b.out = nil
	}
	scanBufPool.Put(b)
}

// ScanAppend appends up to max pairs with keys in [start, end) to dst in
// ascending key order and returns the extended slice (§III-G Range Query,
// bounded). end == ^uint64(0) is the "no upper bound" sentinel: the window
// then includes key MaxUint64 itself, matching Scan's unbounded contract —
// the one key a half-open bound cannot express an exclusion for. Any other
// end <= start yields an empty window.
//
// The learned layer is read through a block-granular run kernel (one
// seqlock validation per 8-slot block, per-slot fallback only on
// contention) and merged with the ART layer span-wise; equal keys —
// possible only inside a migration window — are deduplicated in favour of
// the learned copy. Callers that reuse dst across scans pay zero
// allocations.
func (t *ALT) ScanAppend(dst []index.KV, start, end uint64, max int) []index.KV {
	if max <= 0 || (end != ^uint64(0) && end <= start) {
		return dst
	}
	bufs := scanBufPool.Get().(*scanBufs)
	defer putScanBufs(bufs)
	return t.scanAppend(dst, bufs, start, end, max)
}

// scanAppend is the shared bounded-scan core behind ScanAppend and the
// Scan shim; the caller owns bufs (pooled) and has validated the window.
func (t *ALT) scanAppend(dst []index.KV, bufs *scanBufs, start, end uint64, max int) []index.KV {
	hi := end // inclusive upper bound
	if end != ^uint64(0) {
		hi = end - 1
	}
	// One pin covers the whole merge: collectRuns dereferences every model
	// of the loaded table, so none of them may be reclaimed before the
	// scan finishes.
	g := t.ebr.Pin()
	defer g.Unpin()
	for attempt := 0; ; attempt++ {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			return t.tree.AppendRange(dst, start, hi, max)
		}
		var ok bool
		bufs.learned, ok = t.collectRuns(tab, start, hi, max, bufs.learned[:0])
		if ok || attempt >= 4 {
			break
		}
	}
	// Learned-bounded ART window: when the learned run is full (max pairs),
	// its last key L caps the merge — the first max keys of the union are
	// all <= L, so ART keys above L cannot surface and their subtrees need
	// not be walked at all. With a mostly-learned index this shrinks the
	// ART traversal to the span the output actually covers. Equal keys
	// stay included (the merge prefers the learned copy).
	artHi := hi
	if len(bufs.learned) >= max {
		artHi = bufs.learned[len(bufs.learned)-1].Key
	}
	bufs.art = t.tree.AppendRange(bufs.art[:0], start, artHi, max)
	return mergeRuns(dst, bufs.learned, bufs.art, max)
}

// Scan visits up to n pairs with keys >= start in ascending order,
// merging the learned layer's slot stream with the ART layer's tree scan
// (§III-G Range Query). It is a thin shim over the run kernel: pairs are
// collected into a pooled buffer by scanAppend and replayed through fn, so
// every caller of the callback interface exercises the block-granular path.
func (t *ALT) Scan(start uint64, n int, fn func(uint64, uint64) bool) int {
	if n <= 0 {
		return 0
	}
	if t.opts.DisableScanKernel {
		return t.scanPerSlot(start, n, fn)
	}
	bufs := scanBufPool.Get().(*scanBufs)
	defer putScanBufs(bufs)
	bufs.out = t.scanAppend(bufs.out[:0], bufs, start, ^uint64(0), n)
	emitted := 0
	for _, kv := range bufs.out {
		emitted++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	return emitted
}

// collectRuns gathers up to max pairs with keys in [start, hi] from the
// learned layer, appending into the caller's (pooled, reset) buffer via the
// per-model block kernel. ok=false means a slot stayed write-locked (e.g. a
// retraining freeze) and the caller should reload the table and retry; the
// partially filled buffer is still returned so its capacity is kept.
func (t *ALT) collectRuns(tb *table, start, hi uint64, max int, out []index.KV) ([]index.KV, bool) {
	_, mi := tb.find(start)
	for ; mi < len(tb.models) && len(out) < max; mi++ {
		m := tb.models[mi]
		if m.first > hi {
			break // model ranges are sorted: everything later is past hi
		}
		s := 0
		if m.first <= start {
			s = m.slotOf(start)
		}
		var past, ok bool
		out, past, ok = m.appendRuns(out, s, start, hi, max)
		if !ok {
			return out, false // frozen slot: table about to change
		}
		if past {
			break // a key past hi was seen; later models are larger still
		}
	}
	return out, true
}

// appendRuns is the block-granular scan kernel: it copies occupied runs out
// of the model's interleaved 8-slot blocks starting at slot s0, appending
// pairs with keys in [start, hi] until max pairs are buffered or the model
// is exhausted. Each clean block costs one batched seqlock validation —
// load the 8 meta words, copy the key and value lanes, reload the metas and
// compare — instead of 8 independent validations; occupied lanes are then
// extracted branch-lite from the meta snapshot. A locked or torn block
// falls back to per-slot reads.
//
// past=true reports a key above hi (slot order equals key order, so the
// whole scan is done). ok=false reports a frozen slot (retraining): the
// caller must reload the table and retry.
func (m *model) appendRuns(out []index.KV, s0 int, start, hi uint64, max int) (_ []index.KV, past, ok bool) {
	firstBlock := s0 >> blockShift
	nblocks := (m.nslots + blockMask) >> blockShift
	for bi := firstBlock; bi < nblocks; bi++ {
		b := &m.blocks[bi]
		lane0 := 0
		if bi == firstBlock {
			lane0 = s0 & blockMask
		}
		// Occupancy bitmap straight from the meta snapshot. Trailing lanes
		// past nslots are permanently empty, so they drop out here without
		// an explicit bound.
		var metas [blockSlots]uint32
		locked, mask := uint32(0), uint32(0)
		for j := 0; j < blockSlots; j++ {
			w := b.meta[j].Load()
			metas[j] = w
			locked |= w
			mask |= (w & slotOccupied) >> 1 << j
		}
		mask &^= 1<<lane0 - 1
		if locked&slotLockBit == 0 {
			// Copy and revalidate only the occupied lanes: an empty lane's
			// concurrent insert is simply not observed, which linearizes the
			// block read at the meta snapshot; deletes and updates of
			// occupied lanes bump their meta and fail the reload compare.
			var keys, vals [blockSlots]uint64
			for om := mask; om != 0; om &= om - 1 {
				j := bits.TrailingZeros32(om)
				keys[j] = b.keys[j].Load()
				vals[j] = b.vals[j].Load()
			}
			clean := true
			for om := mask; om != 0; om &= om - 1 {
				j := bits.TrailingZeros32(om)
				if b.meta[j].Load() != metas[j] {
					clean = false
					break
				}
			}
			if clean {
				for ; mask != 0; mask &= mask - 1 {
					j := bits.TrailingZeros32(mask)
					k := keys[j]
					if k < start {
						continue
					}
					if k > hi {
						return out, true, true
					}
					out = append(out, index.KV{Key: k, Value: vals[j]})
					if len(out) >= max {
						return out, false, true
					}
				}
				continue
			}
		}
		// Contended block: per-slot seqlock reads with bounded backoff.
		end := bi<<blockShift + blockSlots
		if end > m.nslots {
			end = m.nslots
		}
		for s := bi<<blockShift + lane0; s < end; s++ {
			k, v, st, rok := m.readPersistent(s)
			if !rok {
				return out, false, false
			}
			if st&slotOccupied == 0 || k < start {
				continue
			}
			if k > hi {
				return out, true, true
			}
			out = append(out, index.KV{Key: k, Value: v})
			if len(out) >= max {
				return out, false, true
			}
		}
	}
	return out, false, true
}

// readPersistent is a per-slot seqlock read that retries through transient
// writer windows. ok=false means the slot stayed locked through the whole
// backoff budget — in practice a retraining freeze.
func (m *model) readPersistent(s int) (key, val uint64, meta uint32, ok bool) {
	var bo backoff
	for try := 0; try < 64; try++ {
		if k, v, st, rok := m.read(s); rok {
			return k, v, st, true
		}
		bo.wait()
	}
	return 0, 0, 0, false
}

// mergeRuns merges the learned and ART run buffers into dst (ascending,
// at most max appended pairs): each ART entry is located in the learned
// run by a galloping search from the merge frontier and the learned span
// below it is copied wholesale. Galloping adapts to the actual ART
// density — a sparse ART pays O(log span) per entry over long spans,
// while densely interleaved entries (a migration-heavy index) resolve in
// one or two probes, so the merge never degrades below the per-key 3-way
// loop it replaces. Equal keys prefer the learned copy.
func mergeRuns(dst, learned, art []index.KV, max int) []index.KV {
	if len(art) == 0 {
		n := len(learned)
		if n > max {
			n = max
		}
		return append(dst, learned[:n]...)
	}
	base := len(dst)
	i := 0
	for _, a := range art {
		room := max - (len(dst) - base)
		if room <= 0 {
			return dst
		}
		span := gallopKV(learned[i:], a.Key)
		if span > room {
			span = room
		}
		dst = append(dst, learned[i:i+span]...)
		i += span
		if max-(len(dst)-base) <= 0 {
			return dst
		}
		if i < len(learned) && learned[i].Key == a.Key {
			dst = append(dst, learned[i]) // duplicate: keep the learned copy
			i++
		} else {
			dst = append(dst, a)
		}
	}
	if room := max - (len(dst) - base); room > 0 {
		n := len(learned) - i
		if n > room {
			n = room
		}
		dst = append(dst, learned[i:i+n]...)
	}
	return dst
}

// gallopKV returns the first position in s whose key is >= key, found by
// exponential probing from the front followed by a binary search over the
// bracketed window. Hand-rolled (no sort.Search) so the zero-alloc scan
// path stays closure-free.
func gallopKV(s []index.KV, key uint64) int {
	if len(s) == 0 || s[0].Key >= key {
		return 0
	}
	// Invariant: s[lo].Key < key. Double the step until the window
	// [lo, lo+step] brackets the boundary or runs off the end.
	lo, step := 0, 1
	for lo+step < len(s) && s[lo+step].Key < key {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(s) {
		hi = len(s)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Key < key {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// scanPerSlot is the pre-kernel scan path — per-slot seqlock validation
// and a per-key 3-way merge — selected by Options.DisableScanKernel. Kept
// bit-for-bit as the measured baseline for the scan-path experiment and as
// a fallback escape hatch.
func (t *ALT) scanPerSlot(start uint64, n int, fn func(uint64, uint64) bool) int {
	g := t.ebr.Pin()
	defer g.Unpin()
	bufs := scanBufPool.Get().(*scanBufs)
	defer putScanBufs(bufs)
	for attempt := 0; ; attempt++ {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			return t.tree.Scan(start, n, fn)
		}
		var ok bool
		bufs.learned, ok = t.collectLearned(tab, start, n, bufs.learned[:0])
		if ok || attempt >= 4 {
			break
		}
	}
	learned := bufs.learned
	bufs.art = t.tree.AppendRangeLegacy(bufs.art[:0], start, ^uint64(0), n)
	artBuf := bufs.art

	emitted := 0
	i, j := 0, 0
	for emitted < n && (i < len(learned) || j < len(artBuf)) {
		var kv index.KV
		switch {
		case j >= len(artBuf) || (i < len(learned) && learned[i].Key < artBuf[j].Key):
			kv = learned[i]
			i++
		case i >= len(learned) || artBuf[j].Key < learned[i].Key:
			kv = artBuf[j]
			j++
		default: // duplicate key: prefer the learned copy
			kv = learned[i]
			i++
			j++
		}
		emitted++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	return emitted
}

// collectLearned is scanPerSlot's learned-layer collector: one seqlock
// validation per slot. ok=false mirrors collectRuns.
func (t *ALT) collectLearned(tb *table, start uint64, n int, out []index.KV) ([]index.KV, bool) {
	_, mi := tb.find(start)
	for ; mi < len(tb.models) && len(out) < n; mi++ {
		m := tb.models[mi]
		s := 0
		if mi == 0 || m.first <= start {
			s = m.slotOf(start)
		}
		for ; s < m.nslots && len(out) < n; s++ {
			k, v, st, readOK := m.readPersistent(s)
			if !readOK {
				return out, false // frozen slot: table about to change
			}
			if st&slotOccupied != 0 && k >= start {
				out = append(out, index.KV{Key: k, Value: v})
			}
		}
	}
	return out, true
}

// Range returns a Go iterator over pairs with keys >= start in ascending
// key order. Pairs are produced in bounded batches, each an internally
// consistent snapshot; the iteration as a whole is safe under concurrent
// writers but, like Scan, best-effort during a retraining window.
func (t *ALT) Range(start uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		const batch = 256
		cur := start
		for {
			n := 0
			var last uint64
			stopped := false
			t.Scan(cur, batch, func(k, v uint64) bool {
				n++
				last = k
				if !yield(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped || n < batch || last == ^uint64(0) {
				return
			}
			cur = last + 1
		}
	}
}
