package core

import (
	"iter"
	"sync"

	"altindex/internal/index"
)

// scanBufs is the per-scan scratch: the learned-layer slot stream and the
// ART-layer result buffer. Pooled so repeated scans allocate nothing.
type scanBufs struct {
	learned []index.KV
	art     []index.KV
}

var scanBufPool = sync.Pool{New: func() any { return new(scanBufs) }}

// maxPooledScanKV bounds the per-buffer capacity the pool retains, so one
// giant scan cannot pin its working set forever.
const maxPooledScanKV = 1 << 16

func putScanBufs(b *scanBufs) {
	if cap(b.learned) > maxPooledScanKV {
		b.learned = nil
	}
	if cap(b.art) > maxPooledScanKV {
		b.art = nil
	}
	scanBufPool.Put(b)
}

// Scan visits up to n pairs with keys >= start in ascending order,
// merging the learned layer's slot stream with the ART layer's tree scan
// (§III-G Range Query). Equal keys — possible only inside a migration
// window — are deduplicated in favour of the learned copy.
func (t *ALT) Scan(start uint64, n int, fn func(uint64, uint64) bool) int {
	if n <= 0 {
		return 0
	}
	// One pin covers the whole merge: collectLearned dereferences every
	// model of the loaded table, so none of them may be reclaimed before
	// the scan finishes. The Range iterator re-pins per batch.
	g := t.ebr.Pin()
	defer g.Unpin()
	bufs := scanBufPool.Get().(*scanBufs)
	defer putScanBufs(bufs)
	for attempt := 0; ; attempt++ {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			return t.tree.Scan(start, n, fn)
		}
		var ok bool
		bufs.learned, ok = t.collectLearned(tab, start, n, bufs.learned[:0])
		if ok || attempt >= 4 {
			break
		}
	}
	learned := bufs.learned
	bufs.art = t.tree.AppendRange(bufs.art[:0], start, ^uint64(0), n)
	artBuf := bufs.art

	emitted := 0
	i, j := 0, 0
	for emitted < n && (i < len(learned) || j < len(artBuf)) {
		var kv index.KV
		switch {
		case j >= len(artBuf) || (i < len(learned) && learned[i].Key < artBuf[j].Key):
			kv = learned[i]
			i++
		case i >= len(learned) || artBuf[j].Key < learned[i].Key:
			kv = artBuf[j]
			j++
		default: // duplicate key: prefer the learned copy
			kv = learned[i]
			i++
			j++
		}
		emitted++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	return emitted
}

// collectLearned gathers up to n in-range pairs from the learned layer,
// appending into the caller's (pooled, reset) buffer. ok=false means a
// slot stayed write-locked (e.g. a retraining freeze) and the caller should
// reload the table and retry; the partially filled buffer is still returned
// so its capacity is kept.
func (t *ALT) collectLearned(tb *table, start uint64, n int, out []index.KV) ([]index.KV, bool) {
	_, mi := tb.find(start)
	for ; mi < len(tb.models) && len(out) < n; mi++ {
		m := tb.models[mi]
		s := 0
		if mi == 0 || m.first <= start {
			s = m.slotOf(start)
		}
		for ; s < m.nslots && len(out) < n; s++ {
			var k, v uint64
			var st uint32
			readOK := false
			var bo backoff
			for try := 0; try < 64; try++ {
				var ok bool
				k, v, st, ok = m.read(s)
				if ok {
					readOK = true
					break
				}
				bo.wait()
			}
			if !readOK {
				return out, false // frozen slot: table about to change
			}
			if st&slotOccupied != 0 && k >= start {
				out = append(out, index.KV{Key: k, Value: v})
			}
		}
	}
	return out, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Range returns a Go iterator over pairs with keys >= start in ascending
// key order. Pairs are produced in bounded batches, each an internally
// consistent snapshot; the iteration as a whole is safe under concurrent
// writers but, like Scan, best-effort during a retraining window.
func (t *ALT) Range(start uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		const batch = 256
		cur := start
		for {
			n := 0
			var last uint64
			stopped := false
			t.Scan(cur, batch, func(k, v uint64) bool {
				n++
				last = k
				if !yield(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped || n < batch || last == ^uint64(0) {
				return
			}
			cur = last + 1
		}
	}
}
