package core

import (
	"iter"

	"altindex/internal/index"
)

// Scan visits up to n pairs with keys >= start in ascending order,
// merging the learned layer's slot stream with the ART layer's tree scan
// (§III-G Range Query). Equal keys — possible only inside a migration
// window — are deduplicated in favour of the learned copy.
func (t *ALT) Scan(start uint64, n int, fn func(uint64, uint64) bool) int {
	if n <= 0 {
		return 0
	}
	var learned []index.KV
	for attempt := 0; ; attempt++ {
		tab := t.tab.Load()
		if len(tab.models) == 0 {
			return t.tree.Scan(start, n, fn)
		}
		var ok bool
		learned, ok = t.collectLearned(tab, start, n)
		if ok || attempt >= 4 {
			break
		}
	}
	artBuf := make([]index.KV, 0, minInt(n, 128))
	t.tree.Scan(start, n, func(k, v uint64) bool {
		artBuf = append(artBuf, index.KV{Key: k, Value: v})
		return true
	})

	emitted := 0
	i, j := 0, 0
	for emitted < n && (i < len(learned) || j < len(artBuf)) {
		var kv index.KV
		switch {
		case j >= len(artBuf) || (i < len(learned) && learned[i].Key < artBuf[j].Key):
			kv = learned[i]
			i++
		case i >= len(learned) || artBuf[j].Key < learned[i].Key:
			kv = artBuf[j]
			j++
		default: // duplicate key: prefer the learned copy
			kv = learned[i]
			i++
			j++
		}
		emitted++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	return emitted
}

// collectLearned gathers up to n in-range pairs from the learned layer.
// ok=false means a slot stayed write-locked (e.g. a retraining freeze) and
// the caller should reload the table and retry.
func (t *ALT) collectLearned(tb *table, start uint64, n int) ([]index.KV, bool) {
	out := make([]index.KV, 0, minInt(n, 128))
	_, mi := tb.find(start)
	for ; mi < len(tb.models) && len(out) < n; mi++ {
		m := tb.models[mi]
		s := 0
		if mi == 0 || m.first <= start {
			s = m.slotOf(start)
		}
		for ; s < m.nslots && len(out) < n; s++ {
			var k, v uint64
			var st uint32
			readOK := false
			for try := 0; try < 64; try++ {
				var ok bool
				k, v, st, ok = m.read(s)
				if ok {
					readOK = true
					break
				}
				backoff(try)
			}
			if !readOK {
				return nil, false // frozen slot: table about to change
			}
			if st&slotOccupied != 0 && k >= start {
				out = append(out, index.KV{Key: k, Value: v})
			}
		}
	}
	return out, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Range returns a Go iterator over pairs with keys >= start in ascending
// key order. Pairs are produced in bounded batches, each an internally
// consistent snapshot; the iteration as a whole is safe under concurrent
// writers but, like Scan, best-effort during a retraining window.
func (t *ALT) Range(start uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		const batch = 256
		cur := start
		for {
			n := 0
			var last uint64
			stopped := false
			t.Scan(cur, batch, func(k, v uint64) bool {
				n++
				last = k
				if !yield(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped || n < batch || last == ^uint64(0) {
				return
			}
			cur = last + 1
		}
	}
}
