package core

import (
	"math/rand"
	"testing"

	"altindex/internal/dataset"
)

// TestRouteMatchesFind checks the two-level router against the directory
// binary search on clustered (OSM-like) and uniform key distributions:
// route must agree with find for keys inside, between, below and above
// the models' ranges. The OSM case is the interesting one — it drives
// queries through the wide-window sub-tables.
func TestRouteMatchesFind(t *testing.T) {
	cases := map[string][]uint64{
		"osm":     dataset.Generate(dataset.OSM, 50000, 3),
		"uniform": dataset.Generate(dataset.Uniform, 50000, 3),
	}
	for name, keys := range cases {
		t.Run(name, func(t *testing.T) {
			a := New(Options{})
			if err := a.Bulkload(dataset.Pairs(keys)); err != nil {
				t.Fatal(err)
			}
			tab := a.tab.Load()
			rt := tab.router()
			rng := rand.New(rand.NewSource(9))
			check := func(k uint64) {
				t.Helper()
				_, want := tab.find(k)
				if got := tab.route(rt, k); got != want {
					t.Fatalf("route(%#x) = %d, want %d", k, got, want)
				}
			}
			for i := 0; i < 200000; i++ {
				// Exact keys, neighbors, and uniform probes across
				// (and beyond) the key range.
				k := keys[rng.Intn(len(keys))]
				check(k)
				check(k - 1)
				check(k + 1)
				check(rng.Uint64())
			}
			check(0)
			check(^uint64(0))
			for _, f := range tab.firsts {
				check(f)
				check(f - 1)
				check(f + 1)
			}
		})
	}
}
