package core

import (
	"math/rand"
	"testing"

	"altindex/internal/dataset"
)

// TestRouteMatchesFind checks the two-level router against the directory
// binary search on clustered (OSM-like) and uniform key distributions:
// route must agree with find for keys inside, between, below and above
// the models' ranges. The OSM case is the interesting one — it drives
// queries through the wide-window sub-tables.
func TestRouteMatchesFind(t *testing.T) {
	cases := map[string][]uint64{
		"osm":     dataset.Generate(dataset.OSM, 50000, 3),
		"uniform": dataset.Generate(dataset.Uniform, 50000, 3),
	}
	for name, keys := range cases {
		t.Run(name, func(t *testing.T) {
			a := New(Options{})
			if err := a.Bulkload(dataset.Pairs(keys)); err != nil {
				t.Fatal(err)
			}
			tab := a.tab.Load()
			rt := tab.router()
			rng := rand.New(rand.NewSource(9))
			check := func(k uint64) {
				t.Helper()
				_, want := tab.find(k)
				if got := tab.route(rt, k); got != want {
					t.Fatalf("route(%#x) = %d, want %d", k, got, want)
				}
			}
			for i := 0; i < 200000; i++ {
				// Exact keys, neighbors, and uniform probes across
				// (and beyond) the key range.
				k := keys[rng.Intn(len(keys))]
				check(k)
				check(k - 1)
				check(k + 1)
				check(rng.Uint64())
			}
			check(0)
			check(^uint64(0))
			for _, f := range tab.firsts {
				check(f)
				check(f - 1)
				check(f + 1)
			}
		})
	}
}

// TestRouterHighSpanOverflow pins the boundary-walk overflow fix: when the
// directory's key span ends at or near MaxUint64 and is not aligned to the
// router's window width, the trailing window starts overflow uint64. A
// wrapped (small) start used to stall the monotone walk, so the last
// model(s) were excluded from every bracket and route(MaxUint64) pointed
// below n-1.
func TestRouterHighSpanOverflow(t *testing.T) {
	const max = ^uint64(0)
	mk := func(n int, gen func(i int) uint64) []uint64 {
		fs := make([]uint64, n)
		for i := range fs {
			fs[i] = gen(i)
		}
		return fs
	}
	cases := map[string][]uint64{
		// 1000 models whose firsts end exactly at MaxUint64, spaced so
		// the span is not aligned to the window width (the add overflows).
		"end-at-max": mk(1000, func(i int) uint64 {
			return max - uint64(999-i)*0x3f0f0f0f0f0f1
		}),
		// Full-range span: base 0, last first MaxUint64. Here w<<shift
		// itself sheds bits for the clamp window.
		"full-range": mk(1000, func(i int) uint64 {
			if i == 999 {
				return max
			}
			return uint64(i) * (max / 1000)
		}),
		// Tiny span parked at the very top of the key space (shift == 0,
		// only the final add wraps).
		"top-tiny": mk(100, func(i int) uint64 {
			return max - uint64(99-i)*3
		}),
	}
	for name, fs := range cases {
		t.Run(name, func(t *testing.T) {
			tab := &table{firsts: fs, models: make([]*model, len(fs))}
			rt := tab.router()
			check := func(k uint64) {
				t.Helper()
				_, want := tab.find(k)
				if got := tab.route(rt, k); got != want {
					t.Fatalf("route(%#x) = %d, want %d", k, got, want)
				}
			}
			check(max)
			check(0)
			for _, f := range fs {
				check(f)
				check(f - 1)
				check(f + 1)
			}
		})
	}
}

// TestRouterTooManyModels: a directory with >= 2^rtIdxBits models cannot
// be represented in the router's packed entries, so router() must refuse
// to build one (the batch path then falls back to per-key routing).
func TestRouterTooManyModels(t *testing.T) {
	n := 1 << rtIdxBits
	fs := make([]uint64, n)
	for i := range fs {
		fs[i] = uint64(i) * 8
	}
	tab := &table{firsts: fs, models: make([]*model, n)}
	if rt := tab.router(); rt != nil {
		t.Fatalf("router() built a router for %d models, want nil", n)
	}
}
