package core

import (
	"sync"
	"testing"

	"altindex/internal/art"
	"altindex/internal/dataset"
)

// innerNodes collects distinct inner nodes from a populated tree.
func innerNodes(t *testing.T, count int) (*art.Tree, []*art.Node) {
	t.Helper()
	keys := dataset.Generate(dataset.OSM, 20000, 1)
	tr := art.New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	seen := map[*art.Node]bool{}
	var nodes []*art.Node
	for i := 0; i+200 < len(keys) && len(nodes) < count; i += 150 {
		n := tr.LowestCommonNode(keys[i], keys[i+150])
		if n == nil || seen[n] {
			continue
		}
		if _, leaf := n.Leaf(); leaf {
			continue
		}
		seen[n] = true
		nodes = append(nodes, n)
	}
	if len(nodes) < count {
		t.Skipf("only found %d distinct inner nodes", len(nodes))
	}
	return tr, nodes
}

func TestFPBufferRegisterAndMerge(t *testing.T) {
	_, nodes := innerNodes(t, 3)
	b := newFPBuffer(8)
	i0 := b.register(nodes[0])
	i1 := b.register(nodes[1])
	if i0 < 0 || i1 < 0 || i0 == i1 {
		t.Fatalf("indices %d %d", i0, i1)
	}
	// Duplicate target merges (§III-C2).
	if again := b.register(nodes[0]); again != i0 {
		t.Fatalf("merge failed: %d != %d", again, i0)
	}
	if b.len() != 2 {
		t.Fatalf("len=%d want 2", b.len())
	}
	if b.requestedCount() != 3 {
		t.Fatalf("requested=%d want 3", b.requestedCount())
	}
	if b.node(i0) != nodes[0] || b.node(i1) != nodes[1] {
		t.Fatal("node resolution wrong")
	}
	if b.node(-1) != nil || b.node(999) != nil {
		t.Fatal("bad index must resolve to nil")
	}
	if b.register(nil) != -1 {
		t.Fatal("nil register must be -1")
	}
}

func TestFPBufferFullDegrades(t *testing.T) {
	_, nodes := innerNodes(t, 3)
	b := newFPBuffer(0) // floors at 64; fill it
	filled := 0
	for i := 0; i < 64 && filled < 64; i++ {
		// Reuse the same few nodes won't append (merge), so clear the
		// back-reference to force fresh entries.
		n := nodes[i%len(nodes)]
		n.SetFPIndex(-1)
		if b.register(n) >= 0 {
			filled++
		}
	}
	nodes[0].SetFPIndex(-1)
	if idx := b.register(nodes[0]); idx != -1 {
		t.Fatalf("full buffer returned %d, want -1", idx)
	}
}

func TestFPBufferOnReplace(t *testing.T) {
	_, nodes := innerNodes(t, 2)
	b := newFPBuffer(8)
	idx := b.register(nodes[0])
	oldNode, newNode := nodes[0], nodes[1]
	newNode.SetFPIndex(-1)
	b.OnReplace(oldNode, newNode)
	if b.node(idx) != newNode {
		t.Fatal("entry not repointed")
	}
	if newNode.FPIndex() != idx {
		t.Fatal("back-reference not transferred")
	}
	if oldNode.FPIndex() != -1 {
		t.Fatal("old back-reference not cleared")
	}
	// OnReplace for an unreferenced node is a no-op.
	before := b.len()
	oldNode.SetFPIndex(-1)
	b.OnReplace(oldNode, newNode)
	if b.len() != before {
		t.Fatal("no-op OnReplace changed buffer")
	}
}

func TestFPBufferConcurrentRegister(t *testing.T) {
	tr, nodes := innerNodes(t, 4)
	_ = tr
	b := newFPBuffer(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := b.register(nodes[(w+i)%len(nodes)])
				if idx >= 0 && b.node(idx) == nil {
					t.Error("registered index resolves to nil")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// With merging, at most len(nodes) entries exist.
	if got := b.len(); got > len(nodes) {
		t.Fatalf("len=%d > distinct nodes %d", got, len(nodes))
	}
	if b.requestedCount() != 8*200 {
		t.Fatalf("requested=%d", b.requestedCount())
	}
}
