package core

import (
	"fmt"
	"sync"
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/gpl"
)

// TestRetrainRearmOnDrop is the regression test for the lost-trigger
// window: a trigger dropped on queue overflow must leave the model
// re-armable, so a later threshold-crossing insert retrains it. The
// pre-async code could lose such triggers entirely — a failed TryLock
// left the crowded model crowded until a future insert happened to
// re-trip the threshold, which a starved (no-longer-written) model
// never did.
func TestRetrainRearmOnDrop(t *testing.T) {
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i) * 1000
	}
	alt := mustBulk(t, Options{ErrorBound: 16, RetrainMinInserts: 8, RetrainQueue: 1}, keys)

	// Consume the worker-launch once so no worker drains the queue, then
	// wedge the queue with a decoy model that is not in the table. The
	// accounting mirrors enqueueRetrain: armed + pending before the send.
	alt.ret.once.Do(func() {})
	decoy := emptyModel(nil, 0)
	decoy.retrainArmed.Store(true)
	alt.ret.pending.Add(1)
	alt.ret.q <- decoy

	// Crowd one model far past its threshold. Every trigger hits the full
	// queue: it must be dropped AND the model disarmed.
	hot := uint64(100_000)
	for i := uint64(0); i < 600; i++ {
		if err := alt.Insert(hot+i, i); err != nil {
			t.Fatal(err)
		}
	}
	if alt.ret.drops.Load() == 0 {
		t.Fatal("full queue produced no drops")
	}
	if alt.retrains.Load() != 0 {
		t.Fatal("retrain ran with no workers and a wedged queue")
	}
	m, _ := alt.tab.Load().find(hot)
	if m.retrainArmed.Load() {
		t.Fatal("dropped trigger left the model armed — future triggers are dead")
	}

	// Start the workers and let them drain the decoy, then a further burst
	// of inserts must re-arm and retrain the starved model. (The trigger
	// sits on the conflict branch, so a burst — not a single key — makes
	// sure at least one insert evicts to ART and re-trips it.)
	alt.ret.launch(alt)
	alt.Quiesce()
	for i := uint64(600); i < 640; i++ {
		if err := alt.Insert(hot+i, i); err != nil {
			t.Fatal(err)
		}
	}
	alt.Quiesce()
	if alt.retrains.Load() == 0 {
		t.Fatal("re-armed trigger did not retrain")
	}
	for i := uint64(0); i < 640; i++ {
		if v, ok := alt.Get(hot + i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v after retrain", hot+i, v, ok)
		}
	}
}

// TestConcurrentDisjointRetrains hammers several far-apart key regions
// from concurrent writers so multiple models cross their retrain
// thresholds together. Disjoint ranges must rebuild concurrently without
// losing keys; run under -race this also exercises the admission and
// publish locking.
func TestConcurrentDisjointRetrains(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 30000, 41)
	alt := mustBulk(t, Options{ErrorBound: 16, RetrainMinInserts: 64, RetrainWorkers: 4}, keys)

	const writers = 8
	const perWriter = 4000
	span := ^uint64(0) / writers
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := span*uint64(w) + 1 // regions are disjoint by construction
			for i := uint64(0); i < perWriter; i++ {
				k := base + i*3
				if err := alt.Insert(k, k^0xabc); err != nil {
					panic(err)
				}
				if i%64 == 0 {
					if _, ok := alt.Get(k); !ok {
						panic(fmt.Sprintf("key %d vanished mid-churn", k))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	alt.Quiesce()

	st := alt.StatsMap()
	if st["retrains"] == 0 {
		t.Fatalf("hot disjoint writes did not retrain (stats %v)", st)
	}
	for w := 0; w < writers; w++ {
		base := span*uint64(w) + 1
		for i := uint64(0); i < perWriter; i++ {
			k := base + i*3
			if v, ok := alt.Get(k); !ok || v != k^0xabc {
				t.Fatalf("Get(%d) = %d,%v after concurrent retrains", k, v, ok)
			}
		}
	}
	if st["learned_keys"]+st["art_keys"] != int64(alt.Len()) {
		t.Fatalf("layer accounting off after quiesce: %v vs Len %d", st, alt.Len())
	}
}

// TestPlaceholderAbsorption drives a range empty, retrains it into a
// one-slot placeholder, then retrains its left neighbor and checks the
// splice absorbed the placeholder — the table must shrink, not grow
// monotonically under churn.
func TestPlaceholderAbsorption(t *testing.T) {
	// Three well-separated clusters segment into (at least) three models.
	var keys []uint64
	for i := uint64(0); i < 300; i++ {
		keys = append(keys, 1_000+i*7)
	}
	for i := uint64(0); i < 300; i++ {
		keys = append(keys, 10_000_000+i*5)
	}
	for i := uint64(0); i < 300; i++ {
		keys = append(keys, 20_000_000+i*11)
	}
	alt := mustBulk(t, Options{ErrorBound: 8, DisableRetraining: true}, keys)

	tab := alt.tab.Load()
	if len(tab.models) < 3 {
		t.Skipf("clusters segmented into %d models; need >= 3", len(tab.models))
	}
	mid, pos := tab.find(10_000_000)
	lo, end := tab.rangeBounds(pos)
	for _, k := range keys {
		if k >= lo && k <= end {
			if !alt.Remove(k) {
				t.Fatalf("Remove(%d) failed", k)
			}
		}
	}

	retrain := func(m *model) {
		m.retrainArmed.Store(true)
		alt.ret.pending.Add(1)
		alt.processRetrain(m, false)
	}

	// Retrain the emptied range: it must collapse to a placeholder.
	retrain(mid)
	tab = alt.tab.Load()
	ph, phPos := tab.find(10_000_000)
	if ph.nslots != 1 || stateOf(ph.metaRef(0).Load()) != 0 {
		t.Fatalf("emptied range did not become a never-written placeholder (nslots=%d meta=%x)",
			ph.nslots, ph.metaRef(0).Load())
	}
	before := len(tab.models)

	// Retrain the left neighbor: the splice must absorb the placeholder.
	left := tab.models[phPos-1]
	retrain(left)
	tab = alt.tab.Load()
	if alt.ret.merges.Load() == 0 {
		t.Fatalf("neighbor rebuild absorbed no placeholder (models %d -> %d)", before, len(tab.models))
	}
	if len(tab.models) >= before {
		t.Fatalf("table did not shrink: %d -> %d models", before, len(tab.models))
	}
	// Absorption must not change any lookup result.
	for _, k := range keys {
		v, ok := alt.Get(k)
		if k >= lo && k <= end {
			if ok {
				t.Fatalf("removed key %d resurfaced after absorption", k)
			}
		} else if !ok || v != dataset.ValueFor(k) {
			t.Fatalf("Get(%d) = %d,%v after absorption", k, v, ok)
		}
	}
}

// TestSyncBaselineMode checks RetrainWorkers < 0: the triggering writer
// rebuilds inline, no goroutines launch, and no Quiesce is needed before
// observing the retrain.
func TestSyncBaselineMode(t *testing.T) {
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(i) * 100
	}
	alt := mustBulk(t, Options{ErrorBound: 16, RetrainMinInserts: 8, RetrainWorkers: -1}, keys)
	hot := uint64(20_000)
	for i := uint64(0); i < 1200; i++ {
		if err := alt.Insert(hot+i, i); err != nil {
			t.Fatal(err)
		}
	}
	if alt.retrains.Load() == 0 {
		t.Fatal("synchronous mode did not retrain inline")
	}
	if alt.ret.pending.Load() != 0 {
		t.Fatal("synchronous mode left pending accounting nonzero")
	}
	for i := uint64(0); i < 1200; i++ {
		if v, ok := alt.Get(hot + i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", hot+i, v, ok)
		}
	}
}

// TestShardRetrainGateBudget drives two independent cores that share one
// single-slot RetrainGate — the configuration the sharded front-end hands
// every shard — and checks that the gate serializes rebuilds without
// starving either pipeline: both must still complete their retrains, and
// every acquired slot must be released (Close on one index must not wedge
// the other's rebuilds behind a leaked slot).
func TestShardRetrainGateBudget(t *testing.T) {
	gate := make(chan struct{}, 1)
	var alts []*ALT
	for i := 0; i < 2; i++ {
		keys := make([]uint64, 4096)
		for j := range keys {
			keys[j] = uint64(i)<<40 + uint64(j)*16
		}
		alts = append(alts, mustBulk(t, Options{
			ErrorBound: 16, RetrainMinInserts: 64, RetrainGate: gate,
		}, keys))
	}
	var wg sync.WaitGroup
	for i, alt := range alts {
		wg.Add(1)
		go func(i int, alt *ALT) {
			defer wg.Done()
			for j := uint64(0); j < 6000; j++ {
				k := uint64(i)<<40 + j*16 + 1 + (j % 7)
				if err := alt.Insert(k, j); err != nil {
					t.Errorf("core %d: Insert(%d): %v", i, k, err)
					return
				}
			}
		}(i, alt)
	}
	wg.Wait()
	for i, alt := range alts {
		alt.Quiesce()
		if alt.StatsMap()["retrains"] == 0 {
			t.Errorf("core %d retrained zero times through the shared gate", i)
		}
	}
	if len(gate) != 0 {
		t.Fatalf("%d gate slots leaked after quiesce", len(gate))
	}
	// Closing one index must leave the gate usable by the survivor.
	alts[0].Close()
	for j := uint64(0); j < 3000; j++ {
		k := uint64(1)<<40 + j*16 + 9
		if err := alts[1].Insert(k, j); err != nil {
			t.Fatalf("post-close Insert: %v", err)
		}
	}
	alts[1].Quiesce()
	if len(gate) != 0 {
		t.Fatalf("%d gate slots leaked after peer close", len(gate))
	}
}

// TestMergeSortedEdgeCases pins the merge used by gather: one side empty
// (both directions), duplicate keys across the inputs (the model copy —
// stream a — must win), and interleaved runs with duplicates.
func TestMergeSortedEdgeCases(t *testing.T) {
	eq := func(got, want []uint64) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	// One side empty.
	k, v := mergeSorted(nil, nil, []uint64{1, 5, 9}, []uint64{10, 50, 90})
	if !eq(k, []uint64{1, 5, 9}) || !eq(v, []uint64{10, 50, 90}) {
		t.Fatalf("empty a: got %v %v", k, v)
	}
	k, v = mergeSorted([]uint64{2, 4}, []uint64{20, 40}, nil, nil)
	if !eq(k, []uint64{2, 4}) || !eq(v, []uint64{20, 40}) {
		t.Fatalf("empty b: got %v %v", k, v)
	}
	k, v = mergeSorted(nil, nil, nil, nil)
	if len(k) != 0 || len(v) != 0 {
		t.Fatalf("both empty: got %v %v", k, v)
	}

	// Duplicate keys: the a-side (model) value must win, once.
	k, v = mergeSorted([]uint64{3, 7}, []uint64{300, 700}, []uint64{3, 7}, []uint64{301, 701})
	if !eq(k, []uint64{3, 7}) || !eq(v, []uint64{300, 700}) {
		t.Fatalf("all-dup: got %v %v", k, v)
	}

	// Interleaved with duplicates at the seams and in the middle.
	k, v = mergeSorted(
		[]uint64{1, 4, 6, 9}, []uint64{10, 40, 60, 90},
		[]uint64{1, 2, 6, 8, 9}, []uint64{11, 21, 61, 81, 91})
	if !eq(k, []uint64{1, 2, 4, 6, 8, 9}) || !eq(v, []uint64{10, 21, 40, 60, 81, 90}) {
		t.Fatalf("interleaved: got %v %v", k, v)
	}

	// mergeSortedKeys: same dedup on bare key streams.
	mk := mergeSortedKeys([]uint64{1, 3, 5}, []uint64{2, 3, 6})
	if !eq(mk, []uint64{1, 2, 3, 5, 6}) {
		t.Fatalf("mergeSortedKeys: got %v", mk)
	}
	if mk = mergeSortedKeys(nil, []uint64{7}); !eq(mk, []uint64{7}) {
		t.Fatalf("mergeSortedKeys empty a: got %v", mk)
	}
	if mk = mergeSortedKeys([]uint64{8}, nil); !eq(mk, []uint64{8}) {
		t.Fatalf("mergeSortedKeys empty b: got %v", mk)
	}
}

// TestFillShellsExhaustedMidFill covers the shells-outlive-keys path: keys
// that cover only the first shell's range must leave the trailing shells
// dropped AND their never-published arena spans released on the spot.
func TestFillShellsExhaustedMidFill(t *testing.T) {
	alt := mustBulk(t, Options{ErrorBound: 16, DisableRetraining: true},
		[]uint64{10, 20, 30})

	before := alt.blocks.Stats().LiveBytes
	shells := []*model{
		newShell(alt.blocks, gpl.Segment{First: 100, N: 64, Slope: 0.1}, 999, 1.2),
		newShell(alt.blocks, gpl.Segment{First: 1000, N: 64, Slope: 0.1}, 1999, 1.2),
		newShell(alt.blocks, gpl.Segment{First: 2000, N: 64, Slope: 0.1}, 2999, 1.2),
	}
	var keys, vals []uint64
	for i := uint64(0); i < 50; i++ {
		keys = append(keys, 100+i*10) // all inside shell 0's range
		vals = append(vals, i)
	}
	kept := shells[0]
	models, firsts := alt.fillShells(shells, keys, vals)
	if len(models) != 1 || models[0] != kept {
		t.Fatalf("expected only the first shell to survive, got %d models", len(models))
	}
	if len(firsts) != 1 || firsts[0] != 100 {
		t.Fatalf("firsts = %v, want [100]", firsts)
	}
	// The two dropped shells' spans must be back in the arena: live bytes
	// grew by exactly the surviving shell's span.
	after := alt.blocks.Stats().LiveBytes
	wantGrowth := int64(kept.span.Bytes())
	if after-before != wantGrowth {
		t.Fatalf("arena live bytes grew by %d, want %d (dropped shells not released?)",
			after-before, wantGrowth)
	}
	if models[0].buildSize != len(keys) {
		t.Fatalf("buildSize = %d, want %d", models[0].buildSize, len(keys))
	}
}

// TestFillShellsAllConflict covers the degenerate fallback: when every key
// conflicts out of every shell (forced here by pre-occupying the slots),
// fillShells must still return a non-empty model over the key set so
// invariant 2 keeps holding for the ART-evicted keys.
func TestFillShellsAllConflict(t *testing.T) {
	alt := mustBulk(t, Options{ErrorBound: 16, DisableRetraining: true},
		[]uint64{10, 20, 30})

	sh := newShell(alt.blocks, gpl.Segment{First: 500, N: 32, Slope: 0.05}, 1500, 1)
	for s := 0; s < sh.nslots; s++ {
		sh.metaRef(s).Store(slotOccupied) // poison: every placement conflicts
	}
	var keys, vals []uint64
	for i := uint64(0); i < 20; i++ {
		keys = append(keys, 500+i*50)
		vals = append(vals, i^0xF0)
	}
	treeBefore := alt.tree.Len()
	models, firsts := alt.fillShells([]*model{sh}, keys, vals)
	if len(models) != 1 || models[0] == sh {
		t.Fatalf("fallback must build one fresh model, got %d (reused shell: %v)",
			len(models), len(models) == 1 && models[0] == sh)
	}
	if firsts[0] != keys[0] {
		t.Fatalf("fallback first = %d, want %d", firsts[0], keys[0])
	}
	if alt.tree.Len() <= treeBefore {
		t.Fatal("conflicting keys were not evicted to ART")
	}
	// Every key must be resolvable through the fallback model or ART.
	nm := models[0]
	for i, k := range keys {
		s := nm.slotOf(k)
		mk := nm.keyRef(s).Load()
		if nm.metaRef(s).Load()&slotOccupied != 0 && mk == k {
			if nm.valRef(s).Load() != vals[i] {
				t.Fatalf("model value for %d = %d, want %d", k, nm.valRef(s).Load(), vals[i])
			}
			continue
		}
		if v, ok := alt.tree.Get(k); !ok || v != vals[i] {
			t.Fatalf("key %d lost in all-conflict fallback (tree: %d,%v)", k, v, ok)
		}
	}
}
