package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"altindex/internal/dataset"
	"altindex/internal/index"
	"altindex/internal/xrand"
)

// refWindow computes the expected [start, end) window over a sorted key
// slice with the ScanAppend sentinel semantics (end == MaxUint64 means
// unbounded, including MaxUint64 itself).
func refWindow(sorted []uint64, start, end uint64, max int) []uint64 {
	var out []uint64
	for _, k := range sorted {
		if k < start {
			continue
		}
		if end != ^uint64(0) && k >= end {
			break
		}
		if len(out) >= max {
			break
		}
		out = append(out, k)
	}
	return out
}

// TestScanAppendMatchesReference drives random bounded windows over a
// two-model index with keys split across the learned and ART layers
// (conflict evictions plus post-build inserts) and checks every window
// against a sorted-slice reference.
func TestScanAppendMatchesReference(t *testing.T) {
	keys, _, _ := twoClusterKeys()
	alt := mustBulk(t, Options{ErrorBound: 64, DisableRetraining: true}, keys)
	// Post-build inserts: odd offsets land between bulkloaded keys and
	// mostly conflict-evict into the ART layer, exercising the merge.
	live := append([]uint64(nil), keys...)
	for i := 0; i < 600; i++ {
		k := 10_001 + uint64(i)*7
		if err := alt.Insert(k, dataset.ValueFor(k)); err != nil {
			t.Fatal(err)
		}
		live = append(live, k)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	// Dedup (inserts may collide with bulkloaded keys).
	uniq := live[:1]
	for _, k := range live[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	if alt.StatsMap()["art_keys"] == 0 {
		t.Fatal("no ART-resident keys; merge path not exercised")
	}

	rng := xrand.New(99)
	span := uniq[len(uniq)-1] + 1000
	var dst []index.KV
	for trial := 0; trial < 300; trial++ {
		start := uint64(rng.Intn(int(span)))
		end := start + uint64(rng.Intn(1<<30))
		if trial%7 == 0 {
			end = ^uint64(0)
		}
		max := 1 + rng.Intn(400)
		dst = alt.ScanAppend(dst[:0], start, end, max)
		want := refWindow(uniq, start, end, max)
		if len(dst) != len(want) {
			t.Fatalf("window [%d,%d) max %d: got %d keys, want %d",
				start, end, max, len(dst), len(want))
		}
		for i, kv := range dst {
			if kv.Key != want[i] {
				t.Fatalf("window [%d,%d) max %d: [%d] = %d, want %d",
					start, end, max, i, kv.Key, want[i])
			}
			if kv.Value != dataset.ValueFor(kv.Key) {
				t.Fatalf("key %d carries value %d, want %d",
					kv.Key, kv.Value, dataset.ValueFor(kv.Key))
			}
		}
	}
}

// TestScanAppendBoundedEdges pins the bounded-window contract's edges:
// end == start is empty, end == start+1 is a single-key probe, and the
// ^uint64(0) sentinel is unbounded and includes key MaxUint64 itself.
func TestScanAppendBoundedEdges(t *testing.T) {
	keys, lastA, firstB := twoClusterKeys()
	alt := mustBulk(t, Options{ErrorBound: 64, DisableRetraining: true}, keys)

	if got := alt.ScanAppend(nil, keys[0], keys[0], 10); len(got) != 0 {
		t.Fatalf("end == start yielded %d pairs, want 0", len(got))
	}
	if got := alt.ScanAppend(nil, keys[5], keys[3], 10); len(got) != 0 {
		t.Fatalf("end < start yielded %d pairs, want 0", len(got))
	}
	if got := alt.ScanAppend(nil, keys[0], keys[0]+1, 10); len(got) != 1 || got[0].Key != keys[0] {
		t.Fatalf("single-key window = %v, want exactly key %d", got, keys[0])
	}
	// Half-open: the end key itself is excluded.
	got := alt.ScanAppend(nil, 0, firstB, len(keys))
	if len(got) == 0 || got[len(got)-1].Key != lastA {
		t.Fatalf("window [0, firstB) ends at %v, want %d", got, lastA)
	}
	// A window ending inside the inter-cluster void never crosses into the
	// second model.
	got = alt.ScanAppend(got[:0], lastA+1, firstB-1, 10)
	if len(got) != 0 {
		t.Fatalf("void window yielded %d pairs", len(got))
	}
	// max == 0 and negative are empty.
	if got := alt.ScanAppend(nil, 0, ^uint64(0), 0); len(got) != 0 {
		t.Fatal("max == 0 yielded pairs")
	}
	// The sentinel includes MaxUint64 itself.
	if err := alt.Insert(^uint64(0), 77); err != nil {
		t.Fatal(err)
	}
	got = alt.ScanAppend(nil, ^uint64(0), ^uint64(0), 5)
	if len(got) != 1 || got[0].Key != ^uint64(0) || got[0].Value != 77 {
		t.Fatalf("sentinel window at MaxUint64 = %v, want the max key", got)
	}
	// Appending preserves an existing prefix.
	pre := []index.KV{{Key: 1, Value: 2}}
	got = alt.ScanAppend(pre, keys[0], keys[0]+1, 10)
	if len(got) != 2 || got[0] != pre[0] || got[1].Key != keys[0] {
		t.Fatalf("append clobbered the prefix: %v", got)
	}
}

// TestScanAppendZeroAlloc asserts the bounded scan allocates nothing once
// the destination and the pooled scratch are warm — the property the
// server's streaming SCAN and the relational pushdown path rely on.
func TestScanAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts by design; alloc counts are meaningless")
	}
	keys, _, _ := twoClusterKeys()
	alt := mustBulk(t, Options{ErrorBound: 64, DisableRetraining: true}, keys)
	for i := 0; i < 64; i++ { // a few ART residents so the merge runs
		k := 10_003 + uint64(i)*14
		if err := alt.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]index.KV, 0, 1024)
	// Warm the scan buffer pool.
	dst = alt.ScanAppend(dst[:0], 0, ^uint64(0), 1000)
	if len(dst) == 0 {
		t.Fatal("warmup scan empty")
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = alt.ScanAppend(dst[:0], 9_000, 1<<41, 1000)
	})
	if allocs != 0 {
		t.Fatalf("ScanAppend allocated %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		alt.Scan(9_000, 1000, func(k, v uint64) bool { return true })
	})
	if allocs != 0 {
		t.Fatalf("Scan shim allocated %.1f objects/op, want 0", allocs)
	}
}

// TestScanKernelMatchesPerSlot cross-checks the block-run kernel against
// the preserved per-slot baseline on identical indexes, including after
// removals punch tombstones into the blocks.
func TestScanKernelMatchesPerSlot(t *testing.T) {
	keys, _, _ := twoClusterKeys()
	kern := mustBulk(t, Options{ErrorBound: 64, DisableRetraining: true}, keys)
	slow := mustBulk(t, Options{ErrorBound: 64, DisableRetraining: true, DisableScanKernel: true}, keys)
	for i, k := range keys {
		if i%5 == 0 {
			kern.Remove(k)
			slow.Remove(k)
		}
	}
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		start := uint64(rng.Intn(1 << 41))
		n := 1 + rng.Intn(300)
		a := collectScan(kern, start, n)
		b := collectScan(slow, start, n)
		if len(a) != len(b) {
			t.Fatalf("Scan(%d,%d): kernel %d keys, per-slot %d", start, n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Scan(%d,%d)[%d]: kernel %d, per-slot %d", start, n, i, a[i], b[i])
			}
		}
	}
}

// TestScanDedupPrefersLearned plants the same key in both layers with
// different values — the shape a migration window produces — and checks
// the merge emits exactly one copy, the learned one, through both the
// bounded kernel and the callback shim (including the per-slot baseline).
func TestScanDedupPrefersLearned(t *testing.T) {
	keys, _, _ := twoClusterKeys()
	for _, disable := range []bool{false, true} {
		alt := mustBulk(t, Options{ErrorBound: 64, DisableRetraining: true,
			DisableScanKernel: disable}, keys)
		dup := keys[100]
		alt.tree.Put(dup, 0xDEAD) // shadow copy, as during a migration window
		dst := alt.ScanAppend(nil, dup-2, dup+2, 10) // keys stride by 2
		if len(dst) != 2 || dst[0].Key != dup-2 || dst[1].Key != dup {
			t.Fatalf("dup window = %v, want [%d %d]", dst, dup-2, dup)
		}
		seen := 0
		for _, kv := range dst {
			if kv.Key == dup {
				seen++
				if kv.Value != dataset.ValueFor(dup) {
					t.Fatalf("dedup kept the ART copy: key %d value %#x", dup, kv.Value)
				}
			}
		}
		if seen != 1 {
			t.Fatalf("key %d emitted %d times, want exactly once", dup, seen)
		}
		// Same through the callback interface.
		count := 0
		alt.Scan(dup, 1, func(k, v uint64) bool {
			count++
			if k != dup || v != dataset.ValueFor(dup) {
				t.Fatalf("Scan(dup) = %d/%#x, want learned copy (kernel disabled=%v)", k, v, disable)
			}
			return true
		})
		if count != 1 {
			t.Fatalf("Scan emitted %d pairs, want 1", count)
		}
	}
}

// TestScanAppendUnderWriters races bounded scans against writers churning
// interleaved keys. Every scan must stay strictly ascending and inside its
// window, immutable sentinel keys inside the window must always surface
// with their exact bulkloaded value, and writer-owned keys must carry a
// well-formed value — the conformance contract under concurrency.
func TestScanAppendUnderWriters(t *testing.T) {
	const (
		stride  = 8
		grid    = 1 << 12
		writers = 3
	)
	// Sentinels at i*stride; writer keys at i*stride+1..3 churn around them.
	var pairs []index.KV
	for i := uint64(0); i < grid; i++ {
		pairs = append(pairs, index.KV{Key: i * stride, Value: i*stride + 1})
	}
	alt := New(Options{ErrorBound: 32, RetrainMinInserts: 256})
	defer alt.Close()
	if err := alt.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeOps atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(1000 + w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(grid))*stride + 1 + uint64(w)
				switch rng.Intn(3) {
				case 0:
					_ = alt.Insert(k, k+1)
				case 1:
					alt.Update(k, k+1)
				case 2:
					alt.Remove(k)
				}
				writeOps.Add(1)
			}
		}(w)
	}

	// Make sure the writers are actually churning before the first scan
	// (on one core the tight trial loop can otherwise finish first).
	for writeOps.Load() < 64 {
		runtime.Gosched()
	}
	rng := xrand.New(5)
	dst := make([]index.KV, 0, 2048)
	for trial := 0; trial < 400; trial++ {
		start := uint64(rng.Intn(grid*stride + stride))
		end := start + uint64(1+rng.Intn(grid*stride/4))
		if trial%9 == 0 {
			end = ^uint64(0)
		}
		max := 1 + rng.Intn(1024)
		dst = alt.ScanAppend(dst[:0], start, end, max)
		// Structural invariants under concurrency.
		for i, kv := range dst {
			if kv.Key < start || (end != ^uint64(0) && kv.Key >= end) {
				t.Fatalf("scan [%d,%d) emitted out-of-window key %d", start, end, kv.Key)
			}
			if i > 0 && kv.Key <= dst[i-1].Key {
				t.Fatalf("scan [%d,%d) not strictly ascending: %d after %d",
					start, end, kv.Key, dst[i-1].Key)
			}
			if kv.Key%stride == 0 {
				if kv.Value != kv.Key+1 {
					t.Fatalf("sentinel %d carries %d, want %d", kv.Key, kv.Value, kv.Key+1)
				}
			} else if kv.Value != kv.Key+1 {
				t.Fatalf("writer key %d carries %d, want %d", kv.Key, kv.Value, kv.Key+1)
			}
		}
		// Completeness: every in-window sentinel at or below the last
		// emitted key must have been emitted (sentinels are immutable, so
		// no concurrent interleaving excuses a miss).
		if len(dst) > 0 {
			si := 0
			for s := (start + stride - 1) / stride * stride; s <= dst[len(dst)-1].Key; s += stride {
				for si < len(dst) && dst[si].Key < s {
					si++
				}
				if si >= len(dst) || dst[si].Key != s {
					t.Fatalf("scan [%d,%d) missed immutable sentinel %d", start, end, s)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	if writeOps.Load() == 0 {
		t.Fatal("writers never ran")
	}
}
