package core

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"

	"altindex/internal/arena"
	"altindex/internal/gpl"
)

// Slot states, stored in the per-slot metadata word (the paper's per-slot
// atomic version, §III-E). Layout: bit 0 = writer lock (odd = write in
// progress), bit 1 = occupied, bit 2 = tombstone, bits 3.. = version.
const (
	slotLockBit  = uint32(1)
	slotOccupied = uint32(2)
	slotTomb     = uint32(4)
	slotVerShift = 3
)

// Slots are stored in interleaved blocks of blockSlots: slot s lives in
// blocks[s>>blockShift], lane s&blockMask.
const (
	blockShift = 3
	blockSlots = 1 << blockShift
	blockMask  = blockSlots - 1
)

// slotBlock interleaves eight consecutive slots' keys, metadata and values
// in one 160-byte struct: [8×key][8×meta][8×val]. A point probe's key and
// metadata lines are adjacent (bytes 0-63 and 64-95) instead of living in
// three arrays tens of megabytes apart, so resolving key+occupancy touches
// one or two neighbouring cache lines and the value line only on a hit —
// and the whole block is one prefetch target. Per-slot cost is the same
// 20 bytes the split arrays paid; only adjacency changed. The meta word's
// bit layout and the seqlock ordering around it are untouched: read/
// acquire/release below issue the identical atomic sequence, just through
// a different address computation.
type slotBlock struct {
	keys [blockSlots]atomic.Uint64
	meta [blockSlots]atomic.Uint32
	vals [blockSlots]atomic.Uint64
}

// model is one GPL model: a gapped slot array addressed by a linear
// prediction with no in-layer prediction error — a key is either at its
// predicted slot or in the ART-OPT layer.
type model struct {
	first  uint64  // smallest key the model was built from
	slope  float64 // positions per key unit, including the gap factor
	nslots int

	// blocks is the interleaved slot storage; see slotBlock. Trailing
	// lanes past nslots-1 in the last block stay permanently empty.
	// It aliases span when the model was allocated from an arena: the
	// memory then belongs to the arena and is recycled — not GC-freed —
	// once the model is retired through the epoch domain, so the blocks
	// must never be touched after ALT.retireModels has run on the model.
	blocks []slotBlock
	span   arena.Span[slotBlock]

	// sc is the overflow fingerprint sidecar built from this model's
	// build-time conflict evictions; nil when the build had none.
	// Immutable after the model is published — runtime ART inserts
	// invalidate it through artEpoch instead (see sidecar.go).
	sc *sidecar

	// artEpoch counts runtime conflict evictions into ART under this
	// model. The sidecar is only trusted while artEpoch still equals the
	// value it was built against (zero), so one bump invalidates it.
	artEpoch atomic.Uint64

	// fastIdx is this model's entry in the fast pointer buffer, or -1.
	fastIdx atomic.Int32

	buildSize int          // keys placed at build time
	inserts   atomic.Int64 // runtime in-place inserts
	overflow  atomic.Int64 // runtime inserts evicted to ART

	// retrainArmed dedups retraining triggers: set by the first
	// threshold-crossing writer (who enqueues the model), cleared when the
	// rebuild finishes or the trigger is dropped on queue overflow.
	retrainArmed atomic.Bool
}

// allocBlocks returns zeroed interleaved storage for nslots slots.
func allocBlocks(nslots int) []slotBlock {
	return make([]slotBlock, (nslots+blockMask)>>blockShift)
}

// allocSlots points the model's block storage at a fresh arena span
// sized for m.nslots. A nil arena degrades to a GC-owned slice (tests,
// or indexes built without an arena), for which retirement is a no-op.
func (m *model) allocSlots(ar *arena.Arena[slotBlock]) {
	m.span = ar.Alloc((m.nslots + blockMask) >> blockShift)
	m.blocks = m.span.Data()
}

// metaRef, keyRef and valRef resolve a slot's atomic words inside its
// block. Simple enough to inline, so the hot paths pay only the index
// arithmetic.
func (m *model) metaRef(s int) *atomic.Uint32 {
	return &m.blocks[s>>blockShift].meta[s&blockMask]
}

func (m *model) keyRef(s int) *atomic.Uint64 {
	return &m.blocks[s>>blockShift].keys[s&blockMask]
}

func (m *model) valRef(s int) *atomic.Uint64 {
	return &m.blocks[s>>blockShift].vals[s&blockMask]
}

// prefetch issues a best-effort prefetch of the block holding slot s, so
// a batch loop can start the slot's lines toward L1 while it routes the
// rest of the chunk. No-op on architectures without the instruction.
func (m *model) prefetch(s int) {
	prefetcht0(unsafe.Pointer(&m.blocks[s>>blockShift]))
}

// buildModel lays seg's keys out in a gapped array scaled by gapFactor.
// Keys whose predicted slot is already taken are returned as conflicts for
// the ART-OPT layer, which is exactly what keeps the learned layer free of
// prediction errors.
func buildModel(ar *arena.Arena[slotBlock], keys, vals []uint64, seg gpl.Segment, gapFactor float64) (*model, []int) {
	if gapFactor < 1 {
		gapFactor = 1
	}
	m := &model{
		first:     seg.First,
		slope:     seg.Slope * gapFactor,
		buildSize: seg.N,
	}
	m.fastIdx.Store(-1)
	last := keys[seg.N-1]
	m.nslots = int(m.slope*float64(last-m.first)+0.5) + 1
	if m.nslots < seg.N {
		m.nslots = seg.N
	}
	m.allocSlots(ar)

	var conflicts []int
	for i := 0; i < seg.N; i++ {
		s := m.slotOf(keys[i])
		if m.metaRef(s).Load()&slotOccupied != 0 {
			conflicts = append(conflicts, i)
			continue
		}
		m.keyRef(s).Store(keys[i])
		m.valRef(s).Store(vals[i])
		m.metaRef(s).Store(slotOccupied)
	}
	m.buildSize = seg.N - len(conflicts)
	// Record the evicted keys' fingerprints so lookups can prove "not in
	// ART" without a tree traversal.
	if len(conflicts) > 0 {
		sc := newSidecar(m.nslots)
		for _, ci := range conflicts {
			sc.add(m.slotOf(keys[ci]), fp8(keys[ci]))
		}
		m.sc = sc
	}
	return m, conflicts
}

// slotOf returns the predicted slot for key, clamped to the array. Because
// the same formula places and looks keys up, predictions in this layer are
// exact by construction.
func (m *model) slotOf(key uint64) int {
	if key <= m.first {
		return 0
	}
	s := int(m.slope*float64(key-m.first) + 0.5)
	if s < 0 {
		s = 0
	}
	if s >= m.nslots {
		s = m.nslots - 1
	}
	return s
}

// read performs one seqlock-protected slot read, returning the full
// metadata word observed (pass it to stateOf for the slot state, or compare
// it later to detect concurrent migration). ok=false means a writer was
// active (or the slot frozen for retraining) and the caller must retry
// after reloading the model table.
func (m *model) read(slot int) (key, val uint64, meta uint32, ok bool) {
	b := &m.blocks[slot>>blockShift]
	j := slot & blockMask
	m1 := b.meta[j].Load()
	if m1&slotLockBit != 0 {
		return 0, 0, 0, false
	}
	k := b.keys[j].Load()
	v := b.vals[j].Load()
	if b.meta[j].Load() != m1 {
		return 0, 0, 0, false
	}
	return k, v, m1, true
}

// stateOf extracts the slot state flags from a metadata word.
func stateOf(meta uint32) uint32 { return meta & (slotOccupied | slotTomb) }

// acquire locks the slot for writing iff its metadata still equals seen
// (which must be unlocked). The paper's even/odd write protocol.
func (m *model) acquire(slot int, seen uint32) bool {
	return m.metaRef(slot).CompareAndSwap(seen, seen|slotLockBit)
}

// release unlocks the slot, bumping the version and setting the new state
// flags (slotOccupied, slotTomb or neither).
func (m *model) release(slot int, seen, flags uint32) {
	ver := seen >> slotVerShift
	m.metaRef(slot).Store((ver+1)<<slotVerShift | flags)
}

// freeze locks every slot permanently; used when the model is being
// replaced by retraining. Spin-waits for in-flight writers, so after freeze
// returns no writer can touch the array and its contents are final.
func (m *model) freeze() {
	for s := 0; s < m.nslots; s++ {
		mw := m.metaRef(s)
		for spins := 0; ; spins++ {
			cur := mw.Load()
			if cur&slotLockBit == 0 && mw.CompareAndSwap(cur, cur|slotLockBit) {
				break
			}
			if spins > 64 {
				runtime.Gosched() // in-flight writer; let it finish
			}
		}
	}
}

// unfreeze releases every slot lock taken by freeze, bumping versions and
// preserving state flags. Used to back out of a splice-time placeholder
// absorption that lost a race to a writer.
func (m *model) unfreeze() {
	for s := 0; s < m.nslots; s++ {
		mw := m.metaRef(s)
		cur := mw.Load()
		mw.Store((cur>>slotVerShift+1)<<slotVerShift | cur&(slotOccupied|slotTomb))
	}
}

// frozenEntries returns the live pairs of a frozen model in ascending key
// order (slot order equals key order because slotOf is monotone).
func (m *model) frozenEntries() (keys, vals []uint64) {
	for s := 0; s < m.nslots; s++ {
		if m.metaRef(s).Load()&slotOccupied != 0 {
			keys = append(keys, m.keyRef(s).Load())
			vals = append(vals, m.valRef(s).Load())
		}
	}
	return keys, vals
}

// liveCount returns the number of occupied slots (approximate under
// concurrent writes).
func (m *model) liveCount() int {
	n := 0
	for s := 0; s < m.nslots; s++ {
		if m.metaRef(s).Load()&slotOccupied != 0 {
			n++
		}
	}
	return n
}

// memory returns the model's approximate heap bytes.
func (m *model) memory() uintptr {
	total := uintptr(len(m.blocks))*unsafe.Sizeof(slotBlock{}) + 96
	if m.sc != nil {
		total += m.sc.memory()
	}
	return total
}

// table is the immutable, flattened model directory: models sorted by
// first key, located with one binary search (the paper's "flattened data
// structure", §III-B). Replaced copy-on-write by retraining.
type table struct {
	firsts []uint64
	models []*model

	// rt caches the batch router (built lazily by the first batched
	// operation on this table, then shared by all). The directory itself
	// is immutable, so a router built from it never goes stale.
	rt atomic.Pointer[router]
}

// router is a direct-indexed routing accelerator for batched operations.
// Windows partition the directory's key range [base, base+span) into at
// most routerWindows equal slices; rt[w] packs the window's model bracket
// — the rightmost model positions at the window's start and end — into
// one word, so routing a key is one shift, one load and a short
// predicated search. The binary search that the per-key path pays on
// every Get is paid once per table here and amortized over every batch.
//
// Clustered directories (OSM-like data packs most models into a small
// fraction of the key span) defeat a single uniform grid: nearly every
// query lands in the handful of windows that hold 16-64 models. Windows
// whose bracket is wider than subWide therefore carry a second-level
// sub-table of subWindows finer slices (referenced through the entry's
// high bits), which brings the query-weighted bracket width back to ~1.
type router struct {
	base     uint64
	shift    uint
	subShift uint
	rt       []uint64 // lo | hi<<rtIdxBits | subRef<<(2*rtIdxBits)
	sub      []int32  // flattened (subWindows+1)-entry sub-tables
}

// routerWindows bounds the router's top-level directory size — small
// next to any table's slot arrays, and fine enough that most windows of
// a uniform-ish directory map to exactly one model.
const (
	routerWindows = 8192
	rtIdxBits     = 21
	rtIdxMask     = 1<<rtIdxBits - 1
	subWindows    = 64 // second-level fanout (uniform, so shift-only decode)
	subWide       = 2  // brackets wider than this get a sub-table
)

// router returns the table's batch router, building it on first use.
// Concurrent first calls may both build; the CAS keeps one, and losing a
// duplicate build is harmless because the input is immutable. Returns nil
// when the directory has too many models for the router's packed entries
// to address (2^rtIdxBits); callers must fall back to the per-key path.
func (tb *table) router() *router {
	if r := tb.rt.Load(); r != nil {
		return r
	}
	if len(tb.firsts) >= 1<<rtIdxBits {
		return nil
	}
	r := buildRouter(tb.firsts)
	tb.rt.CompareAndSwap(nil, r)
	return tb.rt.Load()
}

func buildRouter(fs []uint64) *router {
	n := len(fs)
	base := fs[0]
	span := fs[n-1] - base
	shift := uint(0)
	if l, lw := bits.Len64(span), bits.Len(routerWindows); l >= lw {
		shift = uint(l - lw + 1)
	}
	size := int(span>>shift) + 2 // +1 for the end boundary, +1 for the clamp window
	r := &router{base: base, shift: shift, rt: make([]uint64, size)}
	// lo[w] = rightmost model whose first key is <= window w's start. The
	// window starts past the end of an unaligned span can overflow uint64
	// (either in the shift itself or in the add); windowStart saturates
	// them at MaxUint64 — a wrapped (small) start would stall the monotone
	// walk before mi reaches the last models, and the router would then
	// exclude them from every bracket.
	lo := make([]int32, size)
	mi := 0
	for w := 0; w < size; w++ {
		ws := windowStart(base, uint64(w), shift)
		for mi+1 < n && fs[mi+1] <= ws {
			mi++
		}
		lo[w] = int32(mi)
	}
	canSub := shift >= 6 // subWindows = 1<<6
	if canSub {
		r.subShift = shift - 6
	}
	for w := 0; w < size; w++ {
		l := lo[w]
		h := int32(n - 1)
		if w+1 < size {
			h = lo[w+1]
		}
		e := uint64(l) | uint64(h)<<rtIdxBits
		// Second level for wide brackets. The first and the last two
		// windows stay plain: keys below base or clamped in from above
		// the span would decode a garbage sub-slice index there (their
		// key offset does not correspond to the clamped window).
		if canSub && h-l > subWide && w > 0 && w+2 < size {
			ref := uint64(len(r.sub)/(subWindows+1)) + 1
			smi := int(l)
			// w+2 < size keeps every sub-boundary ws + s<<subShift at or
			// below the next window's start <= base+span, so no overflow
			// handling is needed here.
			ws := base + uint64(w)<<shift
			for s := 0; s <= subWindows; s++ {
				ss := ws + uint64(s)<<r.subShift
				for smi+1 < n && fs[smi+1] <= ss {
					smi++
				}
				r.sub = append(r.sub, int32(smi))
			}
			e |= ref << (2 * rtIdxBits)
		}
		r.rt[w] = e
	}
	return r
}

// windowStart returns base + w<<shift saturated at MaxUint64. Near the
// top of the key space the trailing windows' starts overflow uint64 —
// either w<<shift sheds high bits or the add wraps — and the build walk
// above must see them as "past every key", not as small wrapped values.
func windowStart(base, w uint64, shift uint) uint64 {
	d := w << shift
	if d>>shift != w {
		return ^uint64(0)
	}
	ws := base + d
	if ws < base {
		return ^uint64(0)
	}
	return ws
}

// window maps key to its router window, clamped so rt[w] and rt[w+1] are
// both valid. Small enough to inline into batch loops.
func (r *router) window(key uint64) int32 {
	if key <= r.base {
		return 0
	}
	w := (key - r.base) >> r.shift
	if w >= uint64(len(r.rt)-1) {
		w = uint64(len(r.rt) - 2)
	}
	return int32(w)
}

// narrow resolves a router bracket [lo, hi] to the model position
// responsible for key (the rightmost model whose first key is <= key).
// Takes the firsts slice directly so batch loops can hoist it.
//
// The search is branch-free (the conditional add compiles to a predicated
// move): on clustered directories — OSM-like data packs most models into a
// small fraction of the key span — queries concentrate exactly where
// windows hold 16-64 models, and each comparison there is a coin flip, so
// a branching search would eat a mispredict per level.
func narrow(fs []uint64, key uint64, lo, hi int) int {
	// Invariant: the answer lies in [lo, lo+n].
	n := hi - lo
	for n > 0 {
		half := (n + 1) >> 1
		if fs[lo+half] <= key {
			lo += half
		}
		n -= half
	}
	return lo
}

// bracket decodes key's model bracket [lo, hi] from the router: lo is at
// most the answer, hi at least, and after the sub-table hop the two are
// typically equal or one apart.
func (r *router) bracket(key uint64) (lo, hi int32) {
	e := r.rt[r.window(key)]
	lo = int32(e & rtIdxMask)
	hi = int32(e >> rtIdxBits & rtIdxMask)
	if ref := e >> (2 * rtIdxBits); ref != 0 {
		b := (int(ref) - 1) * (subWindows + 1)
		sw := int((key - r.base) >> r.subShift & (subWindows - 1))
		lo = r.sub[b+sw]
		hi = r.sub[b+sw+1]
	}
	return lo, hi
}

// route returns the model position responsible for key (the rightmost
// model whose first key is <= key).
func (tb *table) route(r *router, key uint64) int {
	lo, hi := r.bracket(key)
	return narrow(tb.firsts, key, int(lo), int(hi))
}

// find returns the model responsible for key and its table position: the
// rightmost model whose first key is <= key (keys below the first model
// clamp to model 0).
func (tb *table) find(key uint64) (*model, int) {
	lo, hi := 0, len(tb.firsts)
	for lo < hi {
		mid := (lo + hi) / 2
		if tb.firsts[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 {
		i = 0
	}
	return tb.models[i], i
}

// locate is find with a positional hint: it returns the table position
// responsible for key (the rightmost model whose first key is <= key,
// clamped to 0), starting the search at hint. A hit on the hint costs two
// comparisons; a near miss is found by galloping (exponential probing) away
// from the hint; only a far miss degenerates into the full binary search.
// Batched operations thread the previous key's position through as the
// hint, so sorted or locality-heavy key streams route in ~O(1) per key.
func (tb *table) locate(key uint64, hint int) int {
	fs := tb.firsts
	n := len(fs)
	if n == 0 {
		return 0
	}
	if hint < 0 {
		hint = 0
	} else if hint >= n {
		hint = n - 1
	}
	// Establish a bracket [lo, hi) around the answer with the invariant
	// (lo < 0 || fs[lo] <= key) && (hi == n || fs[hi] > key).
	var lo, hi int
	if fs[hint] <= key {
		lo, hi = hint, hint+1
		for step := 1; hi < n && fs[hi] <= key; step <<= 1 {
			lo = hi
			hi += step
		}
		if hi > n {
			hi = n
		}
	} else {
		lo, hi = hint-1, hint
		for step := 1; lo >= 0 && fs[lo] > key; step <<= 1 {
			hi = lo
			lo -= step
		}
		if lo < -1 {
			lo = -1
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if fs[mid] <= key {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo < 0 {
		return 0
	}
	return lo
}

// upperBound returns the exclusive key upper bound of the model at
// position i (the next model's first key, or MaxUint64).
func (tb *table) upperBound(i int) uint64 {
	if i+1 < len(tb.firsts) {
		return tb.firsts[i+1]
	}
	return ^uint64(0)
}
