package core

import (
	"runtime"
	"sync/atomic"

	"altindex/internal/gpl"
)

// Slot states, stored in the per-slot metadata word (the paper's per-slot
// atomic version, §III-E). Layout: bit 0 = writer lock (odd = write in
// progress), bit 1 = occupied, bit 2 = tombstone, bits 3.. = version.
const (
	slotLockBit  = uint32(1)
	slotOccupied = uint32(2)
	slotTomb     = uint32(4)
	slotVerShift = 3
)

// model is one GPL model: a gapped slot array addressed by a linear
// prediction with no in-layer prediction error — a key is either at its
// predicted slot or in the ART-OPT layer.
type model struct {
	first  uint64  // smallest key the model was built from
	slope  float64 // positions per key unit, including the gap factor
	nslots int

	keys []atomic.Uint64
	vals []atomic.Uint64
	meta []atomic.Uint32

	// fastIdx is this model's entry in the fast pointer buffer, or -1.
	fastIdx atomic.Int32

	buildSize int          // keys placed at build time
	inserts   atomic.Int64 // runtime in-place inserts
	overflow  atomic.Int64 // runtime inserts evicted to ART
}

// buildModel lays seg's keys out in a gapped array scaled by gapFactor.
// Keys whose predicted slot is already taken are returned as conflicts for
// the ART-OPT layer, which is exactly what keeps the learned layer free of
// prediction errors.
func buildModel(keys, vals []uint64, seg gpl.Segment, gapFactor float64) (*model, []int) {
	if gapFactor < 1 {
		gapFactor = 1
	}
	m := &model{
		first:     seg.First,
		slope:     seg.Slope * gapFactor,
		buildSize: seg.N,
	}
	m.fastIdx.Store(-1)
	last := keys[seg.N-1]
	m.nslots = int(m.slope*float64(last-m.first)+0.5) + 1
	if m.nslots < seg.N {
		m.nslots = seg.N
	}
	m.keys = make([]atomic.Uint64, m.nslots)
	m.vals = make([]atomic.Uint64, m.nslots)
	m.meta = make([]atomic.Uint32, m.nslots)

	var conflicts []int
	for i := 0; i < seg.N; i++ {
		s := m.slotOf(keys[i])
		if m.meta[s].Load()&slotOccupied != 0 {
			conflicts = append(conflicts, i)
			continue
		}
		m.keys[s].Store(keys[i])
		m.vals[s].Store(vals[i])
		m.meta[s].Store(slotOccupied)
	}
	m.buildSize = seg.N - len(conflicts)
	return m, conflicts
}

// slotOf returns the predicted slot for key, clamped to the array. Because
// the same formula places and looks keys up, predictions in this layer are
// exact by construction.
func (m *model) slotOf(key uint64) int {
	if key <= m.first {
		return 0
	}
	s := int(m.slope*float64(key-m.first) + 0.5)
	if s < 0 {
		s = 0
	}
	if s >= m.nslots {
		s = m.nslots - 1
	}
	return s
}

// read performs one seqlock-protected slot read, returning the full
// metadata word observed (pass it to stateOf for the slot state, or compare
// it later to detect concurrent migration). ok=false means a writer was
// active (or the slot frozen for retraining) and the caller must retry
// after reloading the model table.
func (m *model) read(slot int) (key, val uint64, meta uint32, ok bool) {
	m1 := m.meta[slot].Load()
	if m1&slotLockBit != 0 {
		return 0, 0, 0, false
	}
	k := m.keys[slot].Load()
	v := m.vals[slot].Load()
	if m.meta[slot].Load() != m1 {
		return 0, 0, 0, false
	}
	return k, v, m1, true
}

// stateOf extracts the slot state flags from a metadata word.
func stateOf(meta uint32) uint32 { return meta & (slotOccupied | slotTomb) }

// acquire locks the slot for writing iff its metadata still equals seen
// (which must be unlocked). The paper's even/odd write protocol.
func (m *model) acquire(slot int, seen uint32) bool {
	return m.meta[slot].CompareAndSwap(seen, seen|slotLockBit)
}

// release unlocks the slot, bumping the version and setting the new state
// flags (slotOccupied, slotTomb or neither).
func (m *model) release(slot int, seen, flags uint32) {
	ver := seen >> slotVerShift
	m.meta[slot].Store((ver+1)<<slotVerShift | flags)
}

// freeze locks every slot permanently; used when the model is being
// replaced by retraining. Spin-waits for in-flight writers, so after freeze
// returns no writer can touch the array and its contents are final.
func (m *model) freeze() {
	for s := 0; s < m.nslots; s++ {
		for spins := 0; ; spins++ {
			cur := m.meta[s].Load()
			if cur&slotLockBit == 0 && m.meta[s].CompareAndSwap(cur, cur|slotLockBit) {
				break
			}
			if spins > 64 {
				runtime.Gosched() // in-flight writer; let it finish
			}
		}
	}
}

// frozenEntries returns the live pairs of a frozen model in ascending key
// order (slot order equals key order because slotOf is monotone).
func (m *model) frozenEntries() (keys, vals []uint64) {
	for s := 0; s < m.nslots; s++ {
		if m.meta[s].Load()&slotOccupied != 0 {
			keys = append(keys, m.keys[s].Load())
			vals = append(vals, m.vals[s].Load())
		}
	}
	return keys, vals
}

// liveCount returns the number of occupied slots (approximate under
// concurrent writes).
func (m *model) liveCount() int {
	n := 0
	for s := 0; s < m.nslots; s++ {
		if m.meta[s].Load()&slotOccupied != 0 {
			n++
		}
	}
	return n
}

// memory returns the model's approximate heap bytes.
func (m *model) memory() uintptr {
	return uintptr(m.nslots)*(8+8+4) + 96
}

// table is the immutable, flattened model directory: models sorted by
// first key, located with one binary search (the paper's "flattened data
// structure", §III-B). Replaced copy-on-write by retraining.
type table struct {
	firsts []uint64
	models []*model
}

// find returns the model responsible for key and its table position: the
// rightmost model whose first key is <= key (keys below the first model
// clamp to model 0).
func (tb *table) find(key uint64) (*model, int) {
	lo, hi := 0, len(tb.firsts)
	for lo < hi {
		mid := (lo + hi) / 2
		if tb.firsts[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 {
		i = 0
	}
	return tb.models[i], i
}

// upperBound returns the exclusive key upper bound of the model at
// position i (the next model's first key, or MaxUint64).
func (tb *table) upperBound(i int) uint64 {
	if i+1 < len(tb.firsts) {
		return tb.firsts[i+1]
	}
	return ^uint64(0)
}
