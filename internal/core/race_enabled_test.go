//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The race
// runtime makes sync.Pool drop a quarter of all Puts on purpose (to widen
// the racy window it can observe), so allocation-count assertions over
// pooled scratch are meaningless under -race and skip themselves.
const raceEnabled = true
