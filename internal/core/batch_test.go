package core

import (
	"math/rand"
	"testing"

	"altindex/internal/index"
)

// TestLocateMatchesFind drives table.locate with every hint against the
// plain binary search, across random and adversarial keys, including the
// below-first-model clamp and the MaxUint64 edge.
func TestLocateMatchesFind(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(40)
		firsts := make([]uint64, n)
		prev := uint64(r.Intn(100))
		for i := range firsts {
			firsts[i] = prev
			prev += 1 + uint64(r.Intn(1000))
		}
		models := make([]*model, n)
		for i := range models {
			models[i] = emptyModel(nil, firsts[i])
		}
		tb := &table{firsts: firsts, models: models}

		probes := []uint64{0, 1, firsts[0], firsts[0] - 1, firsts[n-1], firsts[n-1] + 1, ^uint64(0)}
		for i := 0; i < n; i++ {
			probes = append(probes, firsts[i], firsts[i]+1)
			if firsts[i] > 0 {
				probes = append(probes, firsts[i]-1)
			}
		}
		for i := 0; i < 200; i++ {
			probes = append(probes, uint64(r.Intn(int(prev)+10)))
		}
		for _, key := range probes {
			_, want := tb.find(key)
			for hint := -1; hint <= n; hint++ {
				if got := tb.locate(key, hint); got != want {
					t.Fatalf("locate(%d, hint=%d)=%d want %d (n=%d)", key, hint, got, want, n)
				}
			}
		}
	}
}

// TestGetBatchScratchReuse checks that GetBatch tolerates scratch slices
// longer than the key slice and fills exactly len(keys) entries.
func TestGetBatchScratchReuse(t *testing.T) {
	alt := New(Options{})
	var kvs []uint64
	for i := uint64(0); i < 5000; i++ {
		kvs = append(kvs, i*37+5)
	}
	bulk := make([]index.KV, 0, len(kvs))
	for _, k := range kvs {
		bulk = append(bulk, index.KV{Key: k, Value: k + 1})
	}
	if err := alt.Bulkload(bulk); err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 42*37 + 5, 4999*37 + 5, 3, ^uint64(0)}
	vals := make([]uint64, 16)
	found := make([]bool, 16)
	vals[len(keys)] = 999
	alt.GetBatch(keys, vals, found)
	for i, k := range keys {
		wv, wok := alt.Get(k)
		if found[i] != wok || (wok && vals[i] != wv) {
			t.Fatalf("GetBatch(%d)=(%d,%v) want (%d,%v)", k, vals[i], found[i], wv, wok)
		}
	}
	if vals[len(keys)] != 999 {
		t.Fatal("GetBatch wrote past len(keys)")
	}
}
