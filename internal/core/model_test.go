package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"altindex/internal/dataset"
	"altindex/internal/gpl"
)

func buildFrom(t *testing.T, keys []uint64, eps float64, gap float64) (*model, []int, gpl.Segment) {
	t.Helper()
	segs := gpl.Partition(keys, eps)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	seg := segs[0]
	vals := make([]uint64, seg.N)
	for i := range vals {
		vals[i] = keys[i] + 1
	}
	m, conflicts := buildModel(nil, keys[:seg.N], vals, seg, gap)
	return m, conflicts, seg
}

func TestBuildModelPlacesOrEvicts(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 5000, 1)
	m, conflicts, seg := buildFrom(t, keys, 256, 2.0)
	conflictSet := map[int]bool{}
	for _, ci := range conflicts {
		conflictSet[ci] = true
	}
	placed := 0
	for i := 0; i < seg.N; i++ {
		s := m.slotOf(keys[i])
		k, v, meta, ok := m.read(s)
		if !ok {
			t.Fatalf("slot %d locked in fresh model", s)
		}
		if conflictSet[i] {
			// The conflicting key's predicted slot must be occupied by
			// someone else (invariant 2).
			if stateOf(meta)&slotOccupied == 0 || k == keys[i] {
				t.Fatalf("conflict key %d: slot state %d key %d", keys[i], meta, k)
			}
			continue
		}
		if stateOf(meta)&slotOccupied == 0 || k != keys[i] || v != keys[i]+1 {
			t.Fatalf("key %d not at predicted slot: (%d,%d,%d)", keys[i], k, v, meta)
		}
		placed++
	}
	if placed+len(conflicts) != seg.N {
		t.Fatalf("placed %d + conflicts %d != %d", placed, len(conflicts), seg.N)
	}
	if m.buildSize != placed {
		t.Fatalf("buildSize %d != placed %d", m.buildSize, placed)
	}
}

func TestSlotOfMonotone(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 3000, 2)
	m, _, _ := buildFrom(t, keys, 128, 1.5)
	prev := -1
	step := m.first / 1000
	if step == 0 {
		step = 1
	}
	for k := uint64(0); k < m.first*2; k += step {
		s := m.slotOf(k)
		if s < prev {
			t.Fatalf("slotOf not monotone at %d: %d < %d", k, s, prev)
		}
		if s < 0 || s >= m.nslots {
			t.Fatalf("slotOf out of range: %d", s)
		}
		prev = s
	}
	if m.slotOf(0) != 0 {
		t.Fatal("keys below first must clamp to slot 0")
	}
	if m.slotOf(^uint64(0)) != m.nslots-1 {
		t.Fatal("huge keys must clamp to the last slot")
	}
}

func TestSeqlockProtocol(t *testing.T) {
	m := emptyModel(nil, 100)
	// Pristine slot.
	k, v, meta, ok := m.read(0)
	if !ok || stateOf(meta) != 0 || k != 0 || v != 0 {
		t.Fatalf("pristine read = (%d,%d,%d,%v)", k, v, meta, ok)
	}
	// Acquire with the observed meta, write, release occupied.
	if !m.acquire(0, meta) {
		t.Fatal("acquire failed on pristine slot")
	}
	// While locked, readers must fail and second acquire must fail.
	if _, _, _, ok := m.read(0); ok {
		t.Fatal("read succeeded on locked slot")
	}
	if m.acquire(0, meta) {
		t.Fatal("double acquire")
	}
	m.keyRef(0).Store(7)
	m.valRef(0).Store(70)
	m.release(0, meta, slotOccupied)
	k, v, meta2, ok := m.read(0)
	if !ok || stateOf(meta2) != slotOccupied || k != 7 || v != 70 {
		t.Fatalf("post-write read = (%d,%d,%d,%v)", k, v, meta2, ok)
	}
	if meta2 == meta {
		t.Fatal("version did not advance")
	}
	// Stale acquire (old meta) must fail.
	if m.acquire(0, meta) {
		t.Fatal("stale acquire succeeded")
	}
	// Tombstone transition.
	if !m.acquire(0, meta2) {
		t.Fatal("fresh acquire failed")
	}
	m.release(0, meta2, slotTomb)
	_, _, meta3, _ := m.read(0)
	if stateOf(meta3) != slotTomb {
		t.Fatalf("state = %d, want tombstone", stateOf(meta3))
	}
}

func TestFreezeBlocksAndPreserves(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 2000, 3)
	m, _, _ := buildFrom(t, keys, 512, 1.5)
	live := m.liveCount()
	m.freeze()
	// Every slot is now locked.
	for s := 0; s < m.nslots; s++ {
		if m.metaRef(s).Load()&slotLockBit == 0 {
			t.Fatalf("slot %d not frozen", s)
		}
	}
	fk, fv := m.frozenEntries()
	if len(fk) != live {
		t.Fatalf("frozenEntries %d != live %d", len(fk), live)
	}
	for i := 1; i < len(fk); i++ {
		if fk[i] <= fk[i-1] {
			t.Fatal("frozen entries not ascending")
		}
	}
	for i, k := range fk {
		if fv[i] != k+1 {
			t.Fatalf("frozen value mismatch at %d", k)
		}
	}
}

func TestTableFindAndBounds(t *testing.T) {
	mk := func(first uint64) *model {
		m := emptyModel(nil, first)
		return m
	}
	tb := &table{
		firsts: []uint64{10, 100, 1000},
		models: []*model{mk(10), mk(100), mk(1000)},
	}
	cases := []struct {
		key  uint64
		want int
	}{
		{0, 0}, {9, 0}, {10, 0}, {99, 0},
		{100, 1}, {999, 1},
		{1000, 2}, {^uint64(0), 2},
	}
	for _, c := range cases {
		if _, i := tb.find(c.key); i != c.want {
			t.Fatalf("find(%d) = %d, want %d", c.key, i, c.want)
		}
	}
	if tb.upperBound(0) != 100 || tb.upperBound(1) != 1000 || tb.upperBound(2) != ^uint64(0) {
		t.Fatal("upperBound wrong")
	}
}

func TestMergeSorted(t *testing.T) {
	a := []uint64{1, 3, 5, 7}
	av := []uint64{10, 30, 50, 70}
	b := []uint64{2, 3, 6}
	bv := []uint64{20, 99, 60}
	keys, vals := mergeSorted(a, av, b, bv)
	wantK := []uint64{1, 2, 3, 5, 6, 7}
	wantV := []uint64{10, 20, 30, 50, 60, 70} // dup key 3 keeps the model value
	if len(keys) != len(wantK) {
		t.Fatalf("merged %d keys, want %d", len(keys), len(wantK))
	}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("merge[%d] = (%d,%d), want (%d,%d)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
	// Empty sides.
	if k, _ := mergeSorted(nil, nil, b, bv); len(k) != 3 {
		t.Fatal("merge with empty left")
	}
	if k, _ := mergeSorted(a, av, nil, nil); len(k) != 4 {
		t.Fatal("merge with empty right")
	}
}

func TestQuickBuildModelInvariants(t *testing.T) {
	f := func(seed int64, rawGap uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(1000)
		keys := make([]uint64, n)
		cur := uint64(r.Int63n(1 << 40))
		for i := range keys {
			cur += 1 + uint64(r.Int63n(1<<uint(1+r.Intn(16))))
			keys[i] = cur
		}
		gap := 1.0 + float64(rawGap%30)/10
		segs := gpl.Partition(keys, 64)
		off := 0
		for _, seg := range segs {
			vals := keys[off : off+seg.N]
			m, conflicts := buildModel(nil, keys[off:off+seg.N], vals, seg, gap)
			// Occupied slots strictly ascend in key.
			var prev uint64
			seen := 0
			for s := 0; s < m.nslots; s++ {
				if m.metaRef(s).Load()&slotOccupied == 0 {
					continue
				}
				k := m.keyRef(s).Load()
				if seen > 0 && k <= prev {
					return false
				}
				prev = k
				seen++
			}
			if seen+len(conflicts) != seg.N {
				return false
			}
			// Every key of the segment either sits at its slot or its
			// slot is occupied by another key.
			cset := map[int]bool{}
			for _, ci := range conflicts {
				cset[ci] = true
			}
			for i := 0; i < seg.N; i++ {
				s := m.slotOf(keys[off+i])
				k := m.keyRef(s).Load()
				occ := m.metaRef(s).Load()&slotOccupied != 0
				if cset[i] {
					if !occ || k == keys[off+i] {
						return false
					}
				} else if !occ || k != keys[off+i] {
					return false
				}
			}
			off += seg.N
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
