package core

import (
	"math/bits"
	"sync"

	"altindex/internal/art"
	"altindex/internal/index"
)

// Batched operations (index.Batcher). The per-key hot path pays an atomic
// table load, a binary search over the model directory and a serialized
// three-array slot probe for every single Get/Insert. The batch path
// amortizes all three across a stream of keys:
//
//   - one tab.Load() per batch instead of per key;
//   - amortized routing: a per-table radix router (built once per table,
//     shared by every batch against it) turns the per-key binary search
//     into one shift, one load and a short bounded walk — and the batch
//     loop splits even that into window / bracket-load / narrow sub-passes
//     so the router-table loads of a whole chunk overlap instead of each
//     key's routing chain serializing behind its predecessor's;
//   - a two-phase probe: phase one routes each key and predicts its slot,
//     then a branch-free loop issues the whole chunk's meta, key and
//     value loads back to back, so the per-slot cache misses overlap
//     instead of serializing behind routing branches; phase two validates
//     the seqlock snapshots and resolves;
//   - the model's fast-pointer ART entry node is resolved at most once
//     per model run and only when a conflict key actually escapes to ART.
//
// GetBatch processes keys in caller order: with the router, routing is
// order-independent, and sorting the batch (tried first: a (key, position)
// permutation via range-adaptive radix scatter) costs more per key than
// the locality it buys at this model-directory granularity. InsertBatch
// does sort — through the stable permutation below — because grouping
// writes by model keeps the claim/upsert fast paths together and
// duplicate upserts must keep their original order (last-writer-wins).
//
// Correctness: the batch fast paths are byte-for-byte the per-key
// protocol — the phase-one meta load opens the same seqlock read section
// that model.read opens, and phase two's meta recheck closes it; the
// snapshot is discarded and the key retried through the per-key path on
// any observed writer. A stale table observed mid-batch is harmless for
// the same reason it is harmless between a per-key Load and use: a
// retrained model is frozen (all slots locked), so every operation routed
// to it falls back and escapes to the new table.

var _ index.Batcher = (*ALT)(nil)

// batchChunk is the sub-batch processed per two-phase pass. It bounds the
// stack scratch so batch calls stay allocation-free; a chunk's meta/key/
// value snapshots stay resident in L1 between the two phases.
const batchChunk = 64

// batchEnt is one routed batch element: the key and its position in the
// caller's slices, so results land correctly after sorting. w caches the
// key's 16-bit radix window during the sort (it fills what would
// otherwise be struct padding, so it is free).
type batchEnt struct {
	key uint64
	pos int32
	w   uint32
}

// batchScratch holds the reusable permutation buffers: ord is the working
// order, tmp the scatter target of the bucket pass (the two swap roles).
type batchScratch struct {
	ord []batchEnt
	tmp []batchEnt
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// maxPooledBatch bounds the scratch capacity the pool retains.
const maxPooledBatch = 1 << 16

// insertBatchMin is the smallest write batch worth sorting and grouping;
// smaller ones go through the per-key loop.
const insertBatchMin = 32

// getBatchMin is the smallest read batch worth the chunked two-phase
// probe; smaller ones go through the per-key loop.
const getBatchMin = 8

// getScratch is GetBatch's per-chunk working state. Pooled rather than
// stack-allocated: as locals the ~3KB of arrays would be zeroed on every
// call, a real cost at small batch sizes.
type getScratch struct {
	ms    [batchChunk]*model
	slots [batchChunk]int32
	metas [batchChunk]uint32
	ks    [batchChunk]uint64
	vs    [batchChunk]uint64
	los   [batchChunk]int32
	his   [batchChunk]int32
}

var getScratchPool = sync.Pool{New: func() any { return new(getScratch) }}

// orderPairs fills sc.ord with (key, position) entries in ascending key
// order, skipping the sort when the keys already arrive ascending. The
// caller's slice is never reordered; only the scratch permutation is
// sorted. Equal keys keep their original relative order, which preserves
// per-key upsert semantics.
func orderPairs(sc *batchScratch, pairs []index.KV, base, span uint64) []batchEnt {
	ord := sc.ord[:0]
	if cap(ord) < len(pairs) {
		ord = make([]batchEnt, 0, len(pairs))
	}
	sorted := true
	prev := uint64(0)
	for i := range pairs {
		k := pairs[i].Key
		if k < prev {
			sorted = false
		}
		prev = k
		ord = append(ord, batchEnt{key: k, pos: int32(i)})
	}
	if !sorted {
		ord = bucketSort(sc, ord, base, span)
	}
	return ord
}

// entLess orders by (key, position). The position tiebreak makes the
// order total, so every sort below behaves like a stable sort by key.
func entLess(a, b batchEnt) bool {
	return a.key < b.key || (a.key == b.key && a.pos < b.pos)
}

// bucketSort sorts ord ascending. Comparison sorts mispredict roughly
// half their branches on random keys, which at batch sizes of 64+ costs
// more than the routing the sort buys back — so the main path is a
// branch-free two-pass LSD radix sort over a 16-bit window of the key,
// positioned to cover the model directory's key range [base, base+span).
// The scatter is stable, so keys tied in the window (equal keys, keys
// clamped at the window edges, keys differing only below the window)
// keep their original relative order; one insertion pass — linear on the
// nearly-sorted radix output — repairs any sub-window disorder. Tiny
// batches go straight to the comparison sort, and a cleanup pass that
// detects pathological clustering (the whole batch inside one 1/65536th
// of the key range) bails out to it as well.
func bucketSort(sc *batchScratch, ord []batchEnt, base, span uint64) []batchEnt {
	n := len(ord)
	if n <= 32 || span == 0 {
		sortEnts(ord)
		return ord
	}
	shift := uint(0)
	if l := bits.Len64(span); l > 16 {
		shift = uint(l - 16)
	}
	var c0, c1 [256]int32
	for i := range ord {
		w := windowOf(ord[i].key, base, shift)
		ord[i].w = w
		c0[w&255]++
		c1[w>>8]++
	}
	// Exclusive prefix sums -> per-digit write offsets.
	o0, o1 := int32(0), int32(0)
	for d := 0; d < 256; d++ {
		c0[d], o0 = o0, o0+c0[d]
		c1[d], o1 = o1, o1+c1[d]
	}
	tmp := sc.tmp[:0]
	if cap(tmp) < n {
		tmp = make([]batchEnt, n)
		sc.tmp = tmp
	} else {
		tmp = tmp[:n]
	}
	for i := range ord {
		d := ord[i].w & 255
		tmp[c0[d]] = ord[i]
		c0[d]++
	}
	for i := range tmp {
		d := tmp[i].w >> 8
		ord[c1[d]] = tmp[i]
		c1[d]++
	}
	// ord is now sorted by window; repair sub-window disorder. If the
	// batch turns out to be clustered below the window's resolution the
	// pass would go quadratic — bound the work and fall back.
	budget := 8 * n
	for i := 1; i < n; i++ {
		e := ord[i]
		j := i - 1
		for j >= 0 && entLess(e, ord[j]) {
			ord[j+1] = ord[j]
			j--
			budget--
		}
		ord[j+1] = e
		// Check only between insertions, when the array is whole.
		if budget < 0 {
			sortEnts(ord)
			return ord
		}
	}
	return ord
}

// windowOf maps a key to its 16-bit radix window: the key's offset inside
// the model directory's range, clamped at both edges.
func windowOf(k, base uint64, shift uint) uint32 {
	if k <= base {
		return 0
	}
	w := (k - base) >> shift
	if w > 0xffff {
		w = 0xffff
	}
	return uint32(w)
}

// sortEnts is a hand-rolled median-of-three quicksort with an insertion
// sort base case: the comparison-sort fallback for batches too small or
// too skewed for the bucket pass. The generic slices.SortFunc costs a
// non-inlinable comparator call per comparison; inlining the comparison
// keeps even the fallback cheap.
func sortEnts(a []batchEnt) {
	for len(a) > 16 {
		// Median-of-three pivot, placed at a[0].
		m := len(a) / 2
		hi := len(a) - 1
		if entLess(a[m], a[0]) {
			a[m], a[0] = a[0], a[m]
		}
		if entLess(a[hi], a[0]) {
			a[hi], a[0] = a[0], a[hi]
		}
		if entLess(a[hi], a[m]) {
			a[hi], a[m] = a[m], a[hi]
		}
		a[0], a[m] = a[m], a[0]
		p := a[0]
		i, j := 1, hi
		for {
			for i <= j && entLess(a[i], p) {
				i++
			}
			for entLess(p, a[j]) {
				j--
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
			i++
			j--
		}
		a[0], a[j] = a[j], a[0]
		// Recurse on the smaller half, loop on the larger.
		if j < len(a)-j-1 {
			sortEnts(a[:j])
			a = a[j+1:]
		} else {
			sortEnts(a[j+1:])
			a = a[:j]
		}
	}
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && entLess(e, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

func putBatchScratch(sc *batchScratch, ord []batchEnt) {
	if cap(ord) <= maxPooledBatch {
		sc.ord = ord
	}
	if cap(sc.tmp) > maxPooledBatch {
		sc.tmp = nil
	}
	batchScratchPool.Put(sc)
}

// keySpan returns the routing range of the model directory for the
// bucket scatter: the first model's first key and the spread of firsts.
func (tb *table) keySpan() (base, span uint64) {
	base = tb.firsts[0]
	return base, tb.firsts[len(tb.firsts)-1] - base
}

// GetBatch implements index.Batcher: lookups with amortized O(1) routing,
// chunk-local duplicate folding and a pipelined two-phase slot probe.
// Keys are processed in caller order (no permutation): the per-table
// router makes routing order-independent, so sorting the batch would cost
// more than the locality it buys; an ascending or locality-heavy stream
// still routes almost for free through the previous-model reuse check.
// vals and found must be at least len(keys) long.
func (t *ALT) GetBatch(keys []uint64, vals []uint64, found []bool) {
	// One pin covers the whole batch (nested pins from the per-key
	// fallbacks below are harmless); the loaded table's slot storage
	// cannot be reclaimed while the chunks probe it.
	eg := t.ebr.Pin()
	defer eg.Unpin()
	tab := t.tab.Load()
	fpBatchReload.Inject()
	if len(tab.models) == 0 {
		for i, k := range keys {
			vals[i], found[i] = t.tree.Get(k)
		}
		return
	}
	// Below getBatchMin the chunk machinery costs more than the routing
	// it amortizes; take the per-key path.
	if len(keys) < getBatchMin {
		for i, k := range keys {
			vals[i], found[i] = t.Get(k)
		}
		return
	}
	rt := tab.router()
	if rt == nil {
		// Directory too large for the router's packed model indices
		// (>= 2^rtIdxBits models); the per-key path has no such limit.
		for i, k := range keys {
			vals[i], found[i] = t.Get(k)
		}
		return
	}

	g := getScratchPool.Get().(*getScratch)
	ms := &g.ms
	slots := &g.slots
	metas := &g.metas
	ks := &g.ks
	vs := &g.vs
	los := &g.los
	his := &g.his
	// The fast-pointer entry node is only needed for conflict keys that
	// escaped to ART; resolve it lazily and cache it per model run.
	var fpm *model
	var fp *art.Node
	for cb := 0; cb < len(keys); cb += batchChunk {
		cnt := len(keys) - cb
		if cnt > batchChunk {
			cnt = batchChunk
		}
		// Phase 1a: load every key's model bracket from the router. The
		// loop has only well-predicted branches (a skewed workload keeps
		// hitting sub-tabled or plain windows consistently), so the
		// router loads of the whole chunk overlap instead of each key's
		// routing chain serializing behind its predecessor's. Duplicate
		// keys (zipfian hot keys repeat within a batch) are NOT folded:
		// a chunk-local dedup hash was tried and its fixed per-key cost
		// exceeded what the ~14% duplicates at B=64 saved, because a
		// repeated key's slot lines are already hot in L1.
		for i := 0; i < cnt; i++ {
			los[i], his[i] = rt.bracket(keys[cb+i])
		}
		// Phase 1b: resolve each bracket to the responsible model (the
		// brackets are usually already exact: the router has several
		// times more windows than the directory has models) and predict
		// the slot.
		fs, models := tab.firsts, tab.models
		for i := 0; i < cnt; i++ {
			k := keys[cb+i]
			mi := int(los[i])
			if hi := int(his[i]); hi > mi {
				mi = narrow(fs, k, mi, hi)
			}
			ms[i] = models[mi]
		}
		// The slot predictions run in a second pass so the model-header
		// loads above (random accesses across the directory) overlap
		// instead of each slotOf stalling on its own model's line.
		// (An explicit prefetcht0 of each predicted block was measured
		// here and REGRESSED B=64 by 5-8%: the branch-free phase 1c
		// loop below already issues the chunk's block loads with full
		// memory-level parallelism, so the per-key assembly call cost
		// more than the head start saved. The insert path keeps its
		// prefetch — there the next block load overlaps a CAS.)
		for i := 0; i < cnt; i++ {
			slots[i] = int32(ms[i].slotOf(keys[cb+i]))
		}
		// Phase 1c: issue the chunk's meta, key and value loads in a
		// branch-free loop, so the per-slot cache misses overlap
		// instead of serializing behind routing branches. The meta
		// load opens the seqlock read section; phase 2 closes it. All
		// three loads resolve inside one interleaved block.
		for i := 0; i < cnt; i++ {
			m, s := ms[i], int(slots[i])
			b := &m.blocks[s>>blockShift]
			j := s & blockMask
			metas[i] = b.meta[j].Load()
			ks[i] = b.keys[j].Load()
			vs[i] = b.vals[j].Load()
		}
		// Phase 2: validate each snapshot and resolve. Anything that
		// observed a writer (or moved under us) retries through the
		// per-key path, which reloads the table and backs off.
		for i := 0; i < cnt; i++ {
			p := cb + i
			k := keys[p]
			m := ms[i]
			s := int(slots[i])
			m1 := metas[i]
			// Hit fast path: a clean occupied snapshot with the key at
			// its predicted slot — the overwhelmingly common outcome on
			// a learned-layer-resident working set.
			if m1&(slotLockBit|slotOccupied|slotTomb) == slotOccupied &&
				ks[i] == k && m.metaRef(s).Load() == m1 {
				vals[p], found[p] = vs[i], true
				continue
			}
			if m1&slotLockBit != 0 || m.metaRef(s).Load() != m1 {
				vals[p], found[p] = t.Get(k)
				continue
			}
			switch st := stateOf(m1); {
			case st == 0:
				// Empty prediction target proves absence
				// (invariant 2), exactly as in Get.
				vals[p], found[p] = 0, false
			case st&slotOccupied != 0:
				if ks[i] == k {
					vals[p], found[p] = vs[i], true
					continue
				}
				// The snapshot was validated above, so the sidecar can
				// short-circuit the ART traversal exactly as in Get.
				if m.absentInART(k, s) {
					vals[p], found[p] = 0, false
					continue
				}
				if m != fpm {
					fp = t.fpNode(m)
					fpm = m
				}
				v, ok, _ := t.tree.GetFrom(fp, k)
				if ok {
					vals[p], found[p] = v, true
					continue
				}
				if m.metaRef(s).Load() != m1 {
					// Concurrent migration between the two
					// probes; the per-key loop sorts it out.
					vals[p], found[p] = t.Get(k)
					continue
				}
				vals[p], found[p] = 0, false
			default:
				// Tombstone: rare, and the per-key path owns the
				// write-back protocol.
				vals[p], found[p] = t.Get(k)
			}
		}
	}
	// Drop the model pointers before pooling the scratch: a retained
	// scratch would otherwise pin retired (retrained-away) models' slot
	// arrays for as long as it sits in the pool.
	clear(g.ms[:])
	getScratchPool.Put(g)
}

// InsertBatch implements index.Batcher: one table load and amortized
// routing per batch, with the in-place fast paths (free slot, same-key
// upsert) inlined and everything else — conflict eviction, tombstone
// claims, contention, retraining triggers — delegated to the per-key
// Insert. Duplicate keys in one batch apply in their original order
// (the routing order is stable), so last-writer-wins is preserved.
//
// Pairs are applied in sorted key order, not submission order, and the
// batch stops at the first error it encounters in that order — so on
// error the partially-applied prefix and the returned error reflect key
// order, as the index.Batcher contract permits.
func (t *ALT) InsertBatch(pairs []index.KV) error {
	eg := t.ebr.Pin()
	defer eg.Unpin()
	tab := t.tab.Load()
	fpBatchReload.Inject()
	// Below insertBatchMin the permutation and grouping cannot pay for
	// themselves (writes are dominated by slot CAS traffic and retrain
	// amortization, so there is less routing to save than on reads);
	// tiny batches take the plain per-key loop.
	if len(tab.models) == 0 || len(pairs) < insertBatchMin {
		for _, kv := range pairs {
			if err := t.Insert(kv.Key, kv.Value); err != nil {
				return err
			}
		}
		return nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	base, span := tab.keySpan()
	ord := orderPairs(sc, pairs, base, span)

	// Routing: ord is ascending, so each group starts at or after the
	// previous group's model — locate with the previous position as the
	// hint gallops there in O(1) amortized. The radix router is NOT used
	// here on purpose: insert-heavy workloads retrain (and so replace the
	// table) every few thousand keys, and rebuilding a router per table
	// generation would cost more than it saves.
	last := len(tab.models) - 1
	mi := 0
	var err error
	for i := 0; i < len(ord) && err == nil; {
		mi = tab.locate(ord[i].key, mi)
		hi := tab.upperBound(mi)
		// Extend the group while keys keep hitting the same model
		// (the last model also owns its inclusive upper bound). ord is
		// ascending, so only the upper bound can end the group.
		j := i + 1
		for j < len(ord) && (ord[j].key < hi || mi == last) {
			j++
		}
		err = t.insertGroup(tab, mi, ord[i:j], pairs)
		i = j
	}
	putBatchScratch(sc, ord)
	return err
}

// insertGroup upserts one model's (ascending) entries through insertAt —
// the same single-attempt protocol body the per-key Insert runs, covering
// free-slot claims, same-key upserts, conflict eviction to ART and the
// retraining trigger without re-routing the key. Only contention (a
// locked slot or a metadata race) falls back to the per-key Insert, which
// owns backoff and table reloads.
func (t *ALT) insertGroup(tab *table, mi int, ents []batchEnt, pairs []index.KV) error {
	m := tab.models[mi]
	for gi, e := range ents {
		// Pull the next entry's slot block in while this entry's CAS
		// round-trips; ents is ascending so the prediction is exact.
		if gi+1 < len(ents) {
			m.prefetch(m.slotOf(ents[gi+1].key))
		}
		k, v := e.key, pairs[e.pos].Value
		if t.insertAt(tab, m, mi, k, v) {
			continue
		}
		if err := t.Insert(k, v); err != nil {
			return err
		}
	}
	return nil
}
