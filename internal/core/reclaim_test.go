package core

import (
	"testing"
)

// TestPinnedReaderNeverSeesReclaimedBlocks is the regression test for the
// epoch-reclamation contract: a reader pinned in an old epoch must be able
// to keep dereferencing a retired model's slot blocks — the spans sit on
// the limbo list, untouched, until the pin drops. If retirement ever
// released storage eagerly (the rely-on-GC code could not even express
// this bug; the arena can), the snapshot comparison below would read
// zeroed or recycled slots.
func TestPinnedReaderNeverSeesReclaimedBlocks(t *testing.T) {
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(i+1) * 64
	}
	alt := mustBulk(t, Options{ErrorBound: 16, DisableRetraining: true}, keys)

	// Snapshot the first model's occupied slots — the exact memory a
	// pinned reader of the old table is entitled to keep seeing.
	tab := alt.tab.Load()
	m0 := tab.models[0]
	type slotVal struct{ k, v uint64 }
	snap := map[int]slotVal{}
	for s := 0; s < m0.nslots; s++ {
		if m0.metaRef(s).Load()&slotOccupied != 0 {
			snap[s] = slotVal{m0.keyRef(s).Load(), m0.valRef(s).Load()}
		}
	}
	if len(snap) == 0 {
		t.Fatal("first model holds no keys; test setup broken")
	}

	// Pin, then retire the model by rebuilding its range through the
	// ordinary pipeline. The rebuild runs inline on this (pinned)
	// goroutine — exactly the writer-pinned case Retire must tolerate by
	// deferring, not skipping, reclamation.
	g := alt.ebr.Pin()
	m0.retrainArmed.Store(true)
	alt.ret.pending.Add(1)
	alt.processRetrain(m0, false)

	es := alt.ebr.Stats()
	if es.LimboCount == 0 {
		t.Fatal("rebuild retired nothing onto the limbo list")
	}

	// Drain attempts must not reclaim past the pinned epoch.
	alt.ebr.Drain(8)
	if got := alt.ebr.Stats(); got.LimboCount < es.LimboCount {
		t.Fatalf("limbo shrank from %d to %d items while a reader was pinned",
			es.LimboCount, got.LimboCount)
	}

	// The retired model's memory must be what the snapshot saw. The
	// rebuild froze these slots (meta gained the lock bit — that is how
	// old-table readers get redirected), but the key/value words are
	// untouched by freezing; only a wrongful arena recycle could zero
	// them. The meta word must still be frozen, never cleared.
	for s, want := range snap {
		k, v := m0.keyRef(s).Load(), m0.valRef(s).Load()
		meta := m0.metaRef(s).Load()
		if k != want.k || v != want.v {
			t.Fatalf("retired slot %d changed under a pinned reader: (%d,%d), want (%d,%d)",
				s, k, v, want.k, want.v)
		}
		if meta&slotLockBit == 0 {
			t.Fatalf("retired slot %d not frozen (meta %x) — memory recycled under a pinned reader?", s, meta)
		}
	}

	// Unpinning releases the limbo list on the next advances.
	g.Unpin()
	alt.ebr.Drain(64)
	after := alt.ebr.Stats()
	if after.LimboCount != 0 {
		t.Fatalf("limbo not drained after unpin: %d items", after.LimboCount)
	}
	if after.Reclaims == 0 {
		t.Fatal("no reclaims counted after unpin")
	}

	// And the rebuilt table serves every key.
	for _, k := range keys {
		if _, ok := alt.Get(k); !ok {
			t.Fatalf("Get(%d) lost after reclamation", k)
		}
	}
}
