package core

// Resident-key export: a cheap, sampled view of the keys currently held
// in the learned layer, for callers that resample the CDF rather than
// read the data — the shard rebalancer (internal/shard) picks split
// boundaries from it without draining the index.

// ResidentKeys returns up to max keys currently resident in the learned
// layer, in ascending order, sampled with an even stride across the slot
// space so the result tracks the empirical CDF. ART-resident conflict
// keys are not visited: they cluster at their predicted (sampled) slots,
// so their omission does not bias a boundary estimate. Best-effort under
// concurrent writers — a slot frozen by retraining is skipped — which is
// exactly the fidelity a rebalance heuristic needs, at a fraction of a
// scan's cost.
func (t *ALT) ResidentKeys(max int) []uint64 {
	if max < 2 {
		max = 2
	}
	g := t.ebr.Pin()
	defer g.Unpin()
	tab := t.tab.Load()
	total := 0
	for _, m := range tab.models {
		total += m.nslots
	}
	if total == 0 {
		// Untrained index: everything lives in ART; sample its range scan.
		out := make([]uint64, 0, max)
		t.tree.Scan(0, max, func(k, _ uint64) bool {
			out = append(out, k)
			return true
		})
		return out
	}
	// Slot stride targeting ~max samples; occupancy (~1/GapFactor) thins
	// the yield further, which only widens the stride's effective spacing.
	stride := total / max
	if stride < 1 {
		stride = 1
	}
	out := make([]uint64, 0, min(max, total/stride+1))
	for _, m := range tab.models {
		for s := 0; s < m.nslots && len(out) < max; s += stride {
			k, _, st, ok := m.read(s)
			if !ok || st&slotOccupied == 0 {
				continue
			}
			out = append(out, k)
		}
		if len(out) >= max {
			break
		}
	}
	return out
}
