package core

import (
	"sort"
	"testing"
)

// collectScan gathers up to n pairs from Scan starting at start.
func collectScan(alt *ALT, start uint64, n int) []uint64 {
	var got []uint64
	alt.Scan(start, n, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	return got
}

// twoClusterKeys builds two dense clusters far enough apart that GPL
// splits them into separate models, leaving a huge trailing gap behind the
// first model's key range.
func twoClusterKeys() (keys []uint64, lastA, firstB uint64) {
	for i := 0; i < 1500; i++ {
		keys = append(keys, 10_000+uint64(i)*2)
	}
	lastA = keys[len(keys)-1]
	firstB = uint64(1) << 40
	for i := 0; i < 1500; i++ {
		keys = append(keys, firstB+uint64(i)*3)
	}
	return keys, lastA, firstB
}

// TestScanTombstoneBoundaries removes keys sitting exactly on scan and
// model boundaries — the scan's start key, the last key of one model, the
// first key of the next — and checks Scan streams exactly the surviving
// keys. Tombstones used to be easy to mishandle at these edges: a
// tombstoned start slot must be skipped without ending the scan, and a
// tombstoned model-boundary slot must not hide the neighbouring model.
func TestScanTombstoneBoundaries(t *testing.T) {
	keys, lastA, firstB := twoClusterKeys()
	alt := mustBulk(t, Options{ErrorBound: 64}, keys)
	if alt.StatsMap()["models"] < 2 {
		t.Fatal("clusters did not split into separate models")
	}

	removed := []uint64{lastA, firstB, keys[10], keys[len(keys)-1]}
	dead := map[uint64]bool{}
	for _, rk := range removed {
		if !alt.Remove(rk) {
			t.Fatalf("Remove(%d) = false", rk)
		}
		dead[rk] = true
	}
	var want []uint64
	for _, k := range keys {
		if !dead[k] {
			want = append(want, k)
		}
	}

	// Full scan equality.
	got := collectScan(alt, 0, len(keys))
	if len(got) != len(want) {
		t.Fatalf("full scan yielded %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// Scans starting exactly on each tombstone must begin at its live
	// successor.
	for _, rk := range removed {
		succ := sort.Search(len(want), func(i int) bool { return want[i] >= rk })
		g := collectScan(alt, rk, 5)
		wn := want[succ:min(succ+5, len(want))]
		if len(g) != len(wn) {
			t.Fatalf("scan from tombstone %d yielded %d keys, want %d", rk, len(g), len(wn))
		}
		for i := range wn {
			if g[i] != wn[i] {
				t.Fatalf("scan from tombstone %d: [%d] = %d, want %d", rk, i, g[i], wn[i])
			}
		}
	}

	// A scan crossing the model boundary (both edge keys tombstoned) must
	// hop models cleanly.
	g := collectScan(alt, lastA-6, 8)
	if len(g) < 4 || g[0] != lastA-6 {
		t.Fatalf("boundary-crossing scan = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] || dead[g[i]] {
			t.Fatalf("boundary-crossing scan emitted %d (prev %d, dead=%v)", g[i], g[i-1], dead[g[i]])
		}
	}
}

// TestRangeStartsInTrailingGap starts ranges at keys routed to a model but
// above its last resident key, so collectLearned walks the model's
// trailing gap run (and, with the last key tombstoned, a tombstone at the
// head of that run) before hopping to the next model.
func TestRangeStartsInTrailingGap(t *testing.T) {
	keys, lastA, firstB := twoClusterKeys()
	alt := mustBulk(t, Options{ErrorBound: 64}, keys)

	expectFrom := func(start uint64, wantFirst uint64, n int) {
		t.Helper()
		var got []uint64
		for k := range alt.Range(start) {
			got = append(got, k)
			if len(got) == n {
				break
			}
		}
		if len(got) == 0 || got[0] != wantFirst {
			t.Fatalf("Range(%d) starts %v, want first %d", start, got, wantFirst)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("Range(%d) not ascending: %v", start, got)
			}
		}
	}

	// Start just past the first model's last key: routed to model A, lands
	// in its trailing gap, must surface model B's first key.
	expectFrom(lastA+1, firstB, 10)
	// Start midway through the inter-cluster void.
	expectFrom(lastA+(firstB-lastA)/2, firstB, 10)

	// Tombstone the first model's last key so the trailing run begins with
	// a tombstone; the range must skip it without losing model B.
	if !alt.Remove(lastA) {
		t.Fatal("Remove(lastA) failed")
	}
	expectFrom(lastA, firstB, 10)
	expectFrom(lastA-2, lastA-2, 10)

	// Start beyond every key: the range must terminate empty.
	n := 0
	for range alt.Range(keys[len(keys)-1] + 1) {
		n++
	}
	if n != 0 {
		t.Fatalf("Range past the end yielded %d keys", n)
	}
}
