// Package alex reimplements ALEX+ — the concurrent variant of ALEX (Ding
// et al., SIGMOD 2020) used as a baseline in the ALT-index paper — with the
// behaviours that drive its benchmark profile:
//
//   - model-based search in gapped arrays corrected by exponential search
//     (prediction error cost grows with dataset hardness),
//   - in-place model-based inserts with *data shifting* toward the nearest
//     gap (the tail-latency source the paper's Table I calls out),
//   - node splits at a density threshold with a copy-on-write directory
//     (structure modifications contend under write-heavy load),
//   - an optimistic per-node seqlock for reads (the ALEX+ scheme).
//
// Keys inside a node live in a gapped sorted array; an empty slot mirrors
// its nearest occupied left neighbour so the whole array stays
// non-decreasing and exponential/binary search works directly on slots.
package alex

import (
	"sync"
	"sync/atomic"
)

const (
	targetNodeKeys = 4096 // bulkload keys per data node
	maxDensity     = 0.8  // split threshold
	minNodeSlots   = 16
)

// slotsFor sizes a node's gapped array: 2.5 slots per key, so that a node
// created with k keys splits at 2k (0.8 density) into halves of k keys —
// size-preserving splits. Anything below maxDensity*expansion = 2 would
// make node sizes decay geometrically across split generations.
func slotsFor(keys int) int {
	s := keys * 5 / 2
	if s < minNodeSlots {
		s = minNodeSlots
	}
	return s
}

// Index is a concurrent ALEX+-style learned index.
type Index struct {
	dir  atomic.Pointer[directory]
	dmu  sync.Mutex // guards directory copy-on-write
	size atomic.Int64
}

// directory maps key ranges to data nodes: node i owns [firsts[i],
// firsts[i+1]). Immutable; replaced on splits.
type directory struct {
	firsts []uint64
	nodes  []*dnode
}

func (d *directory) find(key uint64) (*dnode, int) {
	lo, hi := 0, len(d.firsts)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.firsts[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 {
		i = 0
	}
	return d.nodes[i], i
}

// dnode is a gapped-array data node with a linear model.
type dnode struct {
	mu  sync.Mutex    // writer lock
	ver atomic.Uint64 // seqlock: odd while a writer mutates

	slope float64
	inter float64
	base  uint64 // model origin (first bulk key)

	keys []atomic.Uint64
	vals []atomic.Uint64
	occ  []atomic.Uint64 // occupancy bitmap, 64 slots per word
	num  atomic.Int64    // occupied count
}

// New returns an empty index.
func New() *Index {
	ix := &Index{}
	d := &directory{firsts: []uint64{0}, nodes: []*dnode{newNode(nil, nil, minNodeSlots)}}
	ix.dir.Store(d)
	return ix
}

// Name implements index.Concurrent.
func (ix *Index) Name() string { return "ALEX+" }

// Len returns the number of live keys.
func (ix *Index) Len() int { return int(ix.size.Load()) }

func newNode(keys, vals []uint64, slots int) *dnode {
	if slots < minNodeSlots {
		slots = minNodeSlots
	}
	n := &dnode{
		keys: make([]atomic.Uint64, slots),
		vals: make([]atomic.Uint64, slots),
		occ:  make([]atomic.Uint64, (slots+63)/64),
	}
	if len(keys) == 0 {
		n.slope = 1
		return n
	}
	// Spread keys evenly through the gapped array (ALEX's bulk layout),
	// then fit the model key -> slot by least squares.
	stride := float64(slots) / float64(len(keys))
	var sx, sy, sxx, sxy float64
	prevSlot := -1
	for i, k := range keys {
		s := int(float64(i) * stride)
		if s <= prevSlot {
			s = prevSlot + 1
		}
		if s >= slots {
			s = slots - 1
		}
		n.keys[s].Store(k)
		n.vals[s].Store(vals[i])
		n.setOcc(s)
		// Mirror the key into the preceding gap run.
		for g := prevSlot + 1; g < s; g++ {
			if prevSlot >= 0 {
				n.keys[g].Store(n.keys[prevSlot].Load())
			}
		}
		prevSlot = s
		x := float64(k - keys[0])
		sx += x
		sy += float64(s)
		sxx += x * x
		sxy += x * float64(s)
	}
	for g := prevSlot + 1; g < slots; g++ {
		n.keys[g].Store(n.keys[prevSlot].Load())
	}
	fn := float64(len(keys))
	den := fn*sxx - sx*sx
	if den != 0 {
		n.slope = (fn*sxy - sx*sy) / den
		n.inter = (sy - n.slope*sx) / fn
	} else {
		n.slope = 0
		n.inter = float64(slots) / 2
	}
	n.base = keys[0]
	n.num.Store(int64(len(keys)))
	return n
}

func (n *dnode) setOcc(i int) { n.occ[i>>6].Store(n.occ[i>>6].Load() | 1<<(uint(i)&63)) }
func (n *dnode) clrOcc(i int) { n.occ[i>>6].Store(n.occ[i>>6].Load() &^ (1 << (uint(i) & 63))) }
func (n *dnode) isOcc(i int) bool {
	return n.occ[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

func (n *dnode) slots() int { return len(n.keys) }

func (n *dnode) predict(key uint64) int {
	p := int(n.slope*float64(key-n.base) + n.inter)
	if key < n.base {
		p = 0
	}
	if p < 0 {
		p = 0
	}
	if p >= n.slots() {
		p = n.slots() - 1
	}
	return p
}

// lowerBound returns the smallest slot whose key is >= key, located by
// exponential search around the model's prediction — the correction step
// whose cost grows with prediction error.
func (n *dnode) lowerBound(key uint64) int {
	slots := n.slots()
	if slots == 0 {
		return 0
	}
	pos := n.predict(key)
	lo, hi := 0, slots
	if n.keys[pos].Load() < key {
		step := 1
		lo = pos + 1
		for lo < slots && n.keys[lo].Load() < key {
			pos = lo
			lo = pos + step
			step <<= 1
		}
		if lo > slots {
			lo = slots
		}
		hi = lo
		lo = pos
	} else {
		step := 1
		hi = pos
		for hi > 0 && n.keys[hi-1].Load() >= key {
			next := hi - step
			if next < 0 {
				next = 0
			}
			hi = next
			step <<= 1
		}
		lo = hi
		hi = pos + 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Load() < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findExact returns the occupied slot holding key, or -1. Empty slots can
// mirror an equal key on either side (depending on past shift direction),
// so the scan walks the run of equal-valued slots looking for the occupied
// one.
func (n *dnode) findExact(key uint64) int {
	pos := n.lowerBound(key)
	for ; pos < n.slots() && n.keys[pos].Load() == key; pos++ {
		if n.isOcc(pos) {
			return pos
		}
	}
	return -1
}

// seqlock helpers.
func (n *dnode) readVersion() (uint64, bool) {
	v := n.ver.Load()
	return v, v&1 == 0
}
func (n *dnode) validate(v uint64) bool { return n.ver.Load() == v }
func (n *dnode) beginWrite()            { n.mu.Lock(); n.ver.Add(1) }
func (n *dnode) endWrite()              { n.ver.Add(1); n.mu.Unlock() }
