package alex

import (
	"testing"

	"altindex/internal/index"
	"altindex/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Concurrent { return New() })
}

func TestSplitsHappen(t *testing.T) {
	ix := New()
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(i+1) * 10
	}
	pairs := make([]index.KV, len(keys))
	for i, k := range keys {
		pairs[i] = index.KV{Key: k, Value: k}
	}
	if err := ix.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	before := ix.StatsMap()["nodes"]
	// Dense inserts into one node force data shifting and then splits
	// (the node splits once it passes maxDensity of its 2.5x slots).
	for k := uint64(5); k < 60000; k += 10 {
		if err := ix.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if after := ix.StatsMap()["nodes"]; after <= before {
		t.Fatalf("no splits: %d -> %d nodes", before, after)
	}
	for k := uint64(5); k < 60000; k += 10 {
		if v, ok := ix.Get(k); !ok || v != k {
			t.Fatalf("Get(%d)=(%d,%v) after splits", k, v, ok)
		}
	}
}
