package alex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// newTestNode builds a node from n evenly spaced keys.
func newTestNode(n, slots int) *dnode {
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i+1) * 100
		vals[i] = keys[i] + 1
	}
	return newNode(keys, vals, slots)
}

// checkNonDecreasing asserts the gapped array's core search invariant.
func checkNonDecreasing(t *testing.T, n *dnode) {
	t.Helper()
	var prev uint64
	for i := 0; i < n.slots(); i++ {
		k := n.keys[i].Load()
		if k < prev {
			t.Fatalf("array decreasing at slot %d: %d < %d", i, k, prev)
		}
		prev = k
	}
}

func TestNewNodeLayout(t *testing.T) {
	n := newTestNode(100, 200)
	if got := int(n.num.Load()); got != 100 {
		t.Fatalf("num=%d", got)
	}
	checkNonDecreasing(t, n)
	// All keys findable, all gap mirrors skippable.
	for i := 1; i <= 100; i++ {
		k := uint64(i) * 100
		pos := n.findExact(k)
		if pos < 0 || n.keys[pos].Load() != k || !n.isOcc(pos) {
			t.Fatalf("findExact(%d) = %d", k, pos)
		}
		if n.findExact(k+1) >= 0 {
			t.Fatalf("phantom key %d", k+1)
		}
	}
}

func TestInsertShiftsKeepInvariant(t *testing.T) {
	n := newTestNode(50, 200)
	r := rand.New(rand.NewSource(1))
	inserted := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		k := uint64(r.Intn(5100)) + 1
		for inserted[k] || k%100 == 0 {
			k = uint64(r.Intn(5100)) + 1
		}
		if !n.insertLocked(k, k) {
			t.Fatalf("insertLocked(%d) reported upsert", k)
		}
		inserted[k] = true
		checkNonDecreasing(t, n)
	}
	for k := range inserted {
		if pos := n.findExact(k); pos < 0 {
			t.Fatalf("inserted key %d lost", k)
		}
	}
	// Original keys still present.
	for i := 1; i <= 50; i++ {
		if n.findExact(uint64(i)*100) < 0 {
			t.Fatalf("original key %d lost", i*100)
		}
	}
}

func TestInsertUpsert(t *testing.T) {
	n := newTestNode(10, 40)
	if n.insertLocked(500, 1) {
		t.Fatal("upsert of existing key reported new")
	}
	if pos := n.findExact(500); n.vals[pos].Load() != 1 {
		t.Fatal("upsert value lost")
	}
}

func TestRemoveLeavesMirror(t *testing.T) {
	n := newTestNode(20, 60)
	pos := n.findExact(1000)
	n.clrOcc(pos)
	n.num.Add(-1)
	checkNonDecreasing(t, n)
	if n.findExact(1000) >= 0 {
		t.Fatal("removed key still found")
	}
	// Neighbours unaffected.
	if n.findExact(900) < 0 || n.findExact(1100) < 0 {
		t.Fatal("neighbours lost after removal")
	}
}

func TestLowerBoundAgainstReference(t *testing.T) {
	n := newTestNode(200, 500)
	for probe := uint64(0); probe < 21000; probe += 37 {
		got := n.lowerBound(probe)
		// Reference: linear scan for first slot >= probe.
		want := n.slots()
		for i := 0; i < n.slots(); i++ {
			if n.keys[i].Load() >= probe {
				want = i
				break
			}
		}
		if got != want {
			t.Fatalf("lowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestDirectoryFind(t *testing.T) {
	mk := func() *dnode { return newTestNode(4, 16) }
	d := &directory{
		firsts: []uint64{0, 500, 5000},
		nodes:  []*dnode{mk(), mk(), mk()},
	}
	for _, c := range []struct {
		key  uint64
		want int
	}{{0, 0}, {499, 0}, {500, 1}, {4999, 1}, {5000, 2}, {^uint64(0), 2}} {
		if _, i := d.find(c.key); i != c.want {
			t.Fatalf("find(%d)=%d want %d", c.key, i, c.want)
		}
	}
}

func TestQuickInsertSearch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := 20 + r.Intn(100)
		n := newTestNode(base, base*4)
		ref := map[uint64]uint64{}
		for i := 1; i <= base; i++ {
			ref[uint64(i)*100] = uint64(i)*100 + 1
		}
		for i := 0; i < base*2; i++ {
			k := uint64(r.Intn(base*110)) + 1
			if float64(n.num.Load()+1) > maxDensity*float64(n.slots()) {
				break
			}
			n.insertLocked(k, k*2)
			ref[k] = k * 2
		}
		for k, v := range ref {
			pos := n.findExact(k)
			if pos < 0 || n.vals[pos].Load() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
