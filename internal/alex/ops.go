package alex

import (
	"unsafe"

	"altindex/internal/index"
)

// Bulkload replaces the index contents. Keys are partitioned into data
// nodes of ~targetNodeKeys and each node gets a gapped layout plus a fitted
// model.
func (ix *Index) Bulkload(pairs []index.KV) error {
	keys := make([]uint64, len(pairs))
	vals := make([]uint64, len(pairs))
	for i, kv := range pairs {
		if i > 0 && kv.Key <= keys[i-1] {
			return index.ErrUnsortedBulk
		}
		keys[i] = kv.Key
		vals[i] = kv.Value
	}
	var firsts []uint64
	var nodes []*dnode
	if len(keys) == 0 {
		firsts = []uint64{0}
		nodes = []*dnode{newNode(nil, nil, minNodeSlots)}
	} else {
		for off := 0; off < len(keys); off += targetNodeKeys {
			end := off + targetNodeKeys
			if end > len(keys) {
				end = len(keys)
			}
			n := newNode(keys[off:end], vals[off:end], slotsFor(end-off))
			first := keys[off]
			if off == 0 {
				first = 0 // node 0 owns everything below its first key
			}
			firsts = append(firsts, first)
			nodes = append(nodes, n)
		}
	}
	ix.dir.Store(&directory{firsts: firsts, nodes: nodes})
	ix.size.Store(int64(len(keys)))
	return nil
}

// Get returns the value stored for key.
func (ix *Index) Get(key uint64) (uint64, bool) {
	for {
		d := ix.dir.Load()
		n, _ := d.find(key)
		v, ok := n.readVersion()
		if !ok {
			continue
		}
		pos := n.findExact(key)
		var val uint64
		found := pos >= 0
		if found {
			val = n.vals[pos].Load()
		}
		if n.validate(v) {
			return val, found
		}
	}
}

// Insert stores key/value (upsert). A full neighbourhood triggers data
// shifting toward the nearest gap; a node past the density threshold
// splits, replacing the directory copy-on-write.
func (ix *Index) Insert(key, value uint64) error {
	for {
		d := ix.dir.Load()
		n, pos := d.find(key)
		n.beginWrite()
		// The directory may have been replaced while we waited.
		if cur := ix.dir.Load(); cur != d {
			n.endWrite()
			continue
		}
		if float64(n.num.Load()+1) > maxDensity*float64(n.slots()) {
			n.endWrite()
			ix.split(d, n, pos)
			continue
		}
		added := n.insertLocked(key, value)
		n.endWrite()
		if added {
			ix.size.Add(1)
		}
		return nil
	}
}

// insertLocked performs the model-based insert with data shifting. Caller
// holds the write lock. Returns false for an in-place upsert.
func (n *dnode) insertLocked(key, value uint64) bool {
	slots := n.slots()
	if e := n.findExact(key); e >= 0 {
		n.vals[e].Store(value)
		return false
	}
	pos := n.lowerBound(key)
	// Find the nearest gap right of pos, else left (ALEX data shifting).
	gap := -1
	for i := pos; i < slots; i++ {
		if !n.isOcc(i) {
			gap = i
			break
		}
	}
	if gap >= 0 {
		for i := gap; i > pos; i-- {
			n.keys[i].Store(n.keys[i-1].Load())
			n.vals[i].Store(n.vals[i-1].Load())
			if n.isOcc(i - 1) {
				n.setOcc(i)
			} else {
				n.clrOcc(i)
			}
		}
		n.keys[pos].Store(key)
		n.vals[pos].Store(value)
		n.setOcc(pos)
		n.num.Add(1)
		return true
	}
	// No gap on the right: shift left. The new key lands at pos-1.
	gap = -1
	for i := pos - 1; i >= 0; i-- {
		if !n.isOcc(i) {
			gap = i
			break
		}
	}
	if gap < 0 {
		// Caller checks density before inserting, so a gap must exist.
		panic("alex: node unexpectedly full")
	}
	for i := gap; i < pos-1; i++ {
		n.keys[i].Store(n.keys[i+1].Load())
		n.vals[i].Store(n.vals[i+1].Load())
		if n.isOcc(i + 1) {
			n.setOcc(i)
		} else {
			n.clrOcc(i)
		}
	}
	n.keys[pos-1].Store(key)
	n.vals[pos-1].Store(value)
	n.setOcc(pos - 1)
	// Keep gap slots left of pos-1 mirroring their left neighbour.
	n.num.Add(1)
	return true
}

// split divides node n (directory position pos) into two half-full nodes
// and publishes a new directory.
func (ix *Index) split(d *directory, n *dnode, pos int) {
	ix.dmu.Lock()
	defer ix.dmu.Unlock()
	cur := ix.dir.Load()
	if cur != d || cur.nodes[pos] != n {
		return // someone else already restructured
	}
	n.beginWrite()
	keys, vals := n.extractLocked()
	half := len(keys) / 2
	if half == 0 {
		half = 1
	}
	left := newNode(keys[:half], vals[:half], slotsFor(half))
	right := newNode(keys[half:], vals[half:], slotsFor(len(keys)-half))

	nf := make([]uint64, 0, len(cur.firsts)+1)
	nn := make([]*dnode, 0, len(cur.nodes)+1)
	nf = append(nf, cur.firsts[:pos+1]...)
	nn = append(nn, cur.nodes[:pos]...)
	nn = append(nn, left)
	if len(keys) > half {
		nf = append(nf, keys[half])
		nn = append(nn, right)
	}
	nf = append(nf, cur.firsts[pos+1:]...)
	nn = append(nn, cur.nodes[pos+1:]...)
	ix.dir.Store(&directory{firsts: nf, nodes: nn})
	n.endWrite() // readers revalidate and retry against the new directory
}

// extractLocked returns the node's live pairs in order. Caller holds the
// write lock.
func (n *dnode) extractLocked() (keys, vals []uint64) {
	for i := 0; i < n.slots(); i++ {
		if n.isOcc(i) {
			keys = append(keys, n.keys[i].Load())
			vals = append(vals, n.vals[i].Load())
		}
	}
	return keys, vals
}

// Update overwrites the value of an existing key.
func (ix *Index) Update(key, value uint64) bool {
	for {
		d := ix.dir.Load()
		n, _ := d.find(key)
		n.beginWrite()
		if cur := ix.dir.Load(); cur != d {
			n.endWrite()
			continue
		}
		pos := n.findExact(key)
		if pos >= 0 {
			n.vals[pos].Store(value)
		}
		n.endWrite()
		return pos >= 0
	}
}

// Remove deletes key by clearing its occupancy bit; the key value stays as
// the mirror for the resulting gap, preserving the non-decreasing array.
func (ix *Index) Remove(key uint64) bool {
	for {
		d := ix.dir.Load()
		n, _ := d.find(key)
		n.beginWrite()
		if cur := ix.dir.Load(); cur != d {
			n.endWrite()
			continue
		}
		pos := n.findExact(key)
		if pos >= 0 {
			n.clrOcc(pos)
			n.num.Add(-1)
		}
		n.endWrite()
		if pos >= 0 {
			ix.size.Add(-1)
		}
		return pos >= 0
	}
}

// Scan visits up to max pairs with keys >= start in ascending order.
// Contiguous gapped arrays make ALEX scans fast (Fig 8c).
func (ix *Index) Scan(start uint64, max int, fn func(uint64, uint64) bool) int {
	if max <= 0 {
		return 0
	}
	d := ix.dir.Load()
	_, di := d.find(start)
	emitted := 0
	for ; di < len(d.nodes) && emitted < max; di++ {
		n := d.nodes[di]
	retry:
		v, ok := n.readVersion()
		if !ok {
			goto retry
		}
		type kv struct{ k, v uint64 }
		var buf []kv
		pos := n.lowerBound(start)
		for i := pos; i < n.slots() && len(buf) < max-emitted; i++ {
			if n.isOcc(i) {
				k := n.keys[i].Load()
				if k >= start {
					buf = append(buf, kv{k, n.vals[i].Load()})
				}
			}
		}
		if !n.validate(v) {
			goto retry
		}
		for _, e := range buf {
			emitted++
			if !fn(e.k, e.v) {
				return emitted
			}
		}
	}
	return emitted
}

// MemoryUsage approximates retained heap bytes.
func (ix *Index) MemoryUsage() uintptr {
	d := ix.dir.Load()
	total := uintptr(len(d.firsts)) * 16
	for _, n := range d.nodes {
		total += uintptr(n.slots())*(8+8) + uintptr(len(n.occ))*8 + unsafe.Sizeof(dnode{})
	}
	return total
}

// StatsMap implements index.Stats.
func (ix *Index) StatsMap() map[string]int64 {
	d := ix.dir.Load()
	slots := 0
	for _, n := range d.nodes {
		slots += n.slots()
	}
	return map[string]int64{
		"nodes": int64(len(d.nodes)),
		"slots": int64(slots),
	}
}

var _ index.Concurrent = (*Index)(nil)
var _ index.Stats = (*Index)(nil)
