//go:build failpoint

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"altindex/internal/failpoint"
)

// TestInjectedWriteFailureWedgesLog: an error injected at any commit-path
// site must wedge the log — the failing commit and every later one return
// an error, so the engine above can never ack a write whose record was
// dropped. The records committed before the failure stay replayable.
func TestInjectedWriteFailureWedgesLog(t *testing.T) {
	for _, site := range []string{"wal/append", "wal/sync"} {
		t.Run(site, func(t *testing.T) {
			defer failpoint.DisableAll()
			dir := t.TempDir()
			l := openT(t, dir, Options{Sync: SyncAlways})
			for i := 0; i < 10; i++ {
				if _, err := l.Commit([]byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := failpoint.Enable(site, "error(disk gone)"); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Commit([]byte("doomed")); err == nil {
				t.Fatal("commit succeeded across an injected write failure")
			}
			failpoint.Disable(site)
			if _, err := l.Commit([]byte("after")); err == nil {
				t.Fatal("wedged log accepted a new commit")
			}
			l.Close()

			l2 := openT(t, dir, Options{})
			defer l2.Close()
			n, err := l2.Replay(0, func(seq uint64, p []byte) error {
				if seq <= 10 && len(p) != 1 {
					return fmt.Errorf("prefix record %d corrupted", seq)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n < 10 {
				t.Fatalf("pre-failure records lost: %d/10 replayed", n)
			}
		})
	}
}

// TestInjectedRotateFailure: a rotation that fails mid-way wedges the log
// rather than splitting history across a half-created segment.
func TestInjectedRotateFailure(t *testing.T) {
	defer failpoint.DisableAll()
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 128})
	if err := failpoint.Enable("wal/rotate", "2*off->error(rotate died)"); err != nil {
		t.Fatal(err)
	}
	// Keep committing until the rotation site trips (Open consumed no
	// rotate hits; the first in-flight rotation is hit #2).
	var failedAt int
	for i := 0; i < 100; i++ {
		if _, err := l.Commit(bytes.Repeat([]byte{2}, 60)); err != nil {
			failedAt = i
			break
		}
	}
	if failedAt == 0 {
		t.Fatal("rotation failure never surfaced")
	}
	if _, err := l.Commit([]byte("after")); err == nil {
		t.Fatal("wedged log accepted a commit after rotate failure")
	}
	l.Close()
	failpoint.DisableAll()

	l2 := openT(t, dir, Options{})
	defer l2.Close()
	n, err := l2.Replay(0, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n < failedAt {
		t.Fatalf("replay found %d records, %d were acked before the failure", n, failedAt)
	}
}

// TestInjectedTruncateFailure: a truncation interrupted between segment
// deletions leaves a clean prefix-removed state that reopens fine.
func TestInjectedTruncateFailure(t *testing.T) {
	defer failpoint.DisableAll()
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 128})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Commit(bytes.Repeat([]byte{3}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 4 {
		t.Fatalf("need ≥4 segments, have %d", l.Stats().Segments)
	}
	if err := failpoint.Enable("wal/truncate", "1*off->error(truncate died)"); err != nil {
		t.Fatal(err)
	}
	err := l.TruncateBelow(uint64(n))
	failpoint.Disable("wal/truncate")
	if err == nil {
		t.Fatal("injected truncate failure not surfaced")
	}
	l.Close()

	// The partially truncated log still reopens and replays its suffix —
	// the audit invariant is only that no live record disappeared.
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	last := uint64(0)
	if _, err := l2.Replay(0, func(seq uint64, _ []byte) error {
		last = seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last != n {
		t.Fatalf("newest record after torn truncation = %d, want %d", last, n)
	}
}

// TestWedgeUnblocksConcurrentWaiters: writers parked in WaitDurable when
// the disk dies must all wake with the error instead of hanging.
func TestWedgeUnblocksConcurrentWaiters(t *testing.T) {
	defer failpoint.DisableAll()
	l := openT(t, t.TempDir(), Options{Sync: SyncAlways})
	defer l.Close()
	if err := failpoint.Enable("wal/sync", "error(dead disk)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.Commit([]byte{byte(i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("writer %d was acked by a wedged log", i)
		}
		if !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("writer %d got %v, want the injected failure", i, err)
		}
	}
}
