package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func replayAll(t *testing.T, l *Log, after uint64) []record {
	t.Helper()
	var recs []record
	n, err := l.Replay(after, func(seq uint64, payload []byte) error {
		recs = append(recs, record{seq: seq, payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(recs))
	}
	return recs
}

func TestCommitReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	const n = 500
	for i := 0; i < n; i++ {
		seq, err := l.Commit([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Commit %d assigned seq %d, want dense %d", i, seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{})
	defer l2.Close()
	recs := replayAll(t, l2, 0)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.seq != uint64(i+1) || string(r.payload) != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d = (%d, %q)", i, r.seq, r.payload)
		}
	}
	// Replay from an offset skips the prefix.
	if got := replayAll(t, l2, 400); len(got) != 100 || got[0].seq != 401 {
		t.Fatalf("Replay(400) = %d records from %d", len(got), got[0].seq)
	}
}

// TestGroupCommit drives many concurrent committers under SyncAlways and
// asserts the committer coalesced them: every commit is durable, yet the
// fsync count is well below the commit count (the whole point of group
// commit).
func TestGroupCommit(t *testing.T) {
	l := openT(t, t.TempDir(), Options{Sync: SyncAlways})
	defer l.Close()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Commit([]byte{byte(w), byte(i)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.DurableSeq != uint64(writers*perWriter) {
		t.Fatalf("durable = %d, want %d", st.DurableSeq, writers*perWriter)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("fsyncs (%d) not below commits (%d): group commit is not grouping", st.Fsyncs, st.Appends)
	}
	t.Logf("group commit: %d commits, %d fsyncs (%.1fx amortization)",
		st.Appends, st.Fsyncs, float64(st.Appends)/float64(st.Fsyncs))
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{Sync: pol, Interval: 5 * time.Millisecond})
			for i := 0; i < 100; i++ {
				if _, err := l.Commit([]byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if got := l.DurableSeq(); got != 100 {
				t.Fatalf("after Sync, durable = %d, want 100", got)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2 := openT(t, dir, Options{})
			defer l2.Close()
			if got := replayAll(t, l2, 0); len(got) != 100 {
				t.Fatalf("policy %v lost records: replayed %d/100", pol, len(got))
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestRotationAndTruncation forces tiny segments, checks records span
// them, then truncates below a checkpoint LSN and verifies exactly the
// right files disappear while replay still works from the LSN.
func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 256})
	payload := bytes.Repeat([]byte{0xAB}, 48)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Commit(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("only %d segments after %d oversized records (SegmentBytes=256)", st.Segments, n)
	}

	const lsn = 25
	if err := l.TruncateBelow(lsn + 1); err != nil {
		t.Fatal(err)
	}
	st2 := l.Stats()
	if st2.Truncations == 0 {
		t.Fatal("truncation removed nothing")
	}
	if st2.Segments >= st.Segments {
		t.Fatalf("segments %d -> %d after truncation", st.Segments, st2.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{})
	defer l2.Close()
	recs := replayAll(t, l2, lsn)
	if len(recs) != n-lsn {
		t.Fatalf("replayed %d records after LSN %d, want %d", len(recs), lsn, n-lsn)
	}
	if recs[0].seq != lsn+1 || recs[len(recs)-1].seq != n {
		t.Fatalf("replay covers [%d,%d], want [%d,%d]", recs[0].seq, recs[len(recs)-1].seq, lsn+1, n)
	}
}

// TestTornTailTolerated truncates the last segment at every byte offset
// inside its final record and asserts reopen succeeds, reports the torn
// bytes, and replays exactly the intact prefix — the kill -9 shape.
func TestTornTailTolerated(t *testing.T) {
	build := func(t *testing.T) (string, string, int64) {
		dir := t.TempDir()
		l := openT(t, dir, Options{})
		for i := 0; i < 10; i++ {
			if _, err := l.Commit([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) == 0 {
			t.Fatalf("listSegments: %v (%d)", err, len(segs))
		}
		last := segs[len(segs)-1].path
		fi, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		return dir, last, fi.Size()
	}

	// One record is 16 (frame) + 9 (payload) bytes; cut at every offset
	// inside the final record, including mid-header and mid-payload.
	_, _, full := build(t)
	recBytes := int64(frameHeader + len("payload-9"))
	for cut := full - recBytes; cut < full; cut++ {
		dir, last, size := build(t)
		if size != full {
			t.Fatalf("unstable build size %d vs %d", size, full)
		}
		if err := os.Truncate(last, cut); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: reopen failed: %v", cut, err)
		}
		st := l.Stats()
		wantTorn := cut - (full - recBytes)
		if st.TruncatedTailBytes != wantTorn {
			t.Fatalf("cut at %d: torn bytes %d, want %d", cut, st.TruncatedTailBytes, wantTorn)
		}
		recs := replayAll(t, l, 0)
		if len(recs) != 9 {
			t.Fatalf("cut at %d: replayed %d records, want 9 intact", cut, len(recs))
		}
		// The next generation keeps appending and stays consistent.
		if _, err := l.Commit([]byte("next-gen")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		l2 := openT(t, dir, Options{})
		if got := replayAll(t, l2, 0); len(got) != 10 || string(got[9].payload) != "next-gen" {
			t.Fatalf("cut at %d: post-recovery log replays %d records", cut, len(got))
		}
		l2.Close()
	}
}

// TestBitFlipDetected flips bytes across a sealed segment: a flip in a
// record's span must surface as a shorter replay (tail treated as torn,
// never garbage delivered) or a corruption error — never a silently
// altered payload.
func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := make(map[uint64]string)
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("payload-%d", i)
		seq, err := l.Commit([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		want[seq] = p
	}
	l.Close()
	segs, _ := listSegments(dir)
	path := segs[0].path
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := segHeaderSize; off < len(pristine); off += 7 {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: unexpected error class %v", off, err)
			}
			continue
		}
		for _, r := range replayAll(t, l, 0) {
			if want[r.seq] != string(r.payload) {
				t.Fatalf("flip at %d: replay delivered corrupted payload %q for seq %d", off, r.payload, r.seq)
			}
		}
		l.Close()
		// Restore for the next flip (Open rotated a fresh tail segment;
		// remove it so the next iteration sees only the mutated file).
		now, _ := listSegments(dir)
		for _, s := range now {
			if s.path != path {
				os.Remove(s.path)
			}
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMissingSegmentRefusesLoad deletes a middle segment: the gap must be
// ErrCorrupt, not a silent hole in history.
func TestMissingSegmentRefusesLoad(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		if _, err := l.Commit(bytes.Repeat([]byte{1}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	os.Remove(segs[1].path)
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap in segments loaded: %v", err)
	}
}

// TestForeignFileRefusesLoad: a full-sized file with the segment naming
// but wrong magic is someone else's data, not a torn header.
func TestForeignFileRefusesLoad(t *testing.T) {
	dir := t.TempDir()
	junk := make([]byte, 64)
	copy(junk, "definitely-not-a-wal-segment-header")
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.seg"), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file loaded: %v", err)
	}
}

// TestTornHeaderTolerated: a crash during segment creation leaves a file
// shorter than the header; reopen must tolerate it (it can hold no
// records) and keep the sequence intact.
func TestTornHeaderTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Commit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate the crash: a half-written header for the would-be next
	// segment (firstSeq 6).
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", 6)), segMagic[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	if st := l2.Stats(); st.TruncatedTailBytes != 5 {
		t.Fatalf("torn header bytes = %d, want 5", st.TruncatedTailBytes)
	}
	if got := replayAll(t, l2, 0); len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	if seq, err := l2.Commit([]byte("resume")); err != nil || seq != 6 {
		t.Fatalf("post-recovery commit = (%d, %v), want seq 6", seq, err)
	}
}

// TestCloseIsDurable: records committed under SyncNone are on disk after
// Close (the final drain fsyncs), so a clean shutdown never loses data.
func TestCloseIsDurable(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 50; i++ {
		if _, err := l.Commit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != 50 {
		t.Fatalf("clean close lost records: %d/50", len(got))
	}
}

func TestClosedLogRefusesWork(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v", err)
	}
	if _, err := l.Commit([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit on closed log: %v", err)
	}
}

// TestLastSeqIsCheckpointSafe: LastSeq must cover every record already
// appended, so a checkpoint at that LSN plus replay above it never loses
// anything.
func TestLastSeqIsCheckpointSafe(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if _, err := l.Commit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lsn := l.LastSeq()
	if lsn != 20 {
		t.Fatalf("LastSeq = %d, want 20", lsn)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Commit([]byte{0xFF, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	if got := replayAll(t, l2, lsn); len(got) != 5 {
		t.Fatalf("replay above checkpoint LSN = %d records, want 5", len(got))
	}
}

// sanity-check the frame encoder against the reader's expectations.
func TestFrameRoundTrip(t *testing.T) {
	buf := appendFrame(nil, 7, []byte("hello"))
	if len(buf) != frameHeader+5 {
		t.Fatalf("frame length %d", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != 5 {
		t.Fatal("length field wrong")
	}
	if binary.LittleEndian.Uint64(buf[8:16]) != 7 {
		t.Fatal("seq field wrong")
	}
}
