package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// scan walks every segment in the directory at Open time, validates the
// record chain and records where it ends. The rules:
//
//   - segments must form one dense sequence: each segment's header
//     firstSeq equals the previous segment's last valid seq + 1;
//   - a torn tail (short frame, impossible length, CRC mismatch, or a
//     partially-written segment header) is tolerated at the point where a
//     crash could have left it — the end of any segment — iff the next
//     segment, when one exists, continues the sequence exactly (that is
//     the crash-then-rotate-on-recovery shape). The torn bytes are
//     counted, never parsed;
//   - a valid frame whose seq breaks the sequence, a foreign file, or a
//     gap between segments is ErrCorrupt: better to refuse startup than
//     to silently drop acked history.
func (l *Log) scan() error {
	names, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	expect := uint64(0) // last valid seq seen; 0 = none yet
	for i, sm := range names {
		res, err := scanSegment(sm.path)
		if err != nil {
			return err
		}
		if res.headerTorn {
			// A crash mid-creation. Only the newest segment can be
			// half-created, so anything after it is a hole.
			if i != len(names)-1 {
				return fmt.Errorf("%w: %s has a torn header but is not the last segment", ErrCorrupt, sm.path)
			}
			l.tornTail += res.tornBytes
			break
		}
		if res.firstSeq != sm.firstSeq {
			return fmt.Errorf("%w: %s header says first seq %d, name says %d", ErrCorrupt, sm.path, res.firstSeq, sm.firstSeq)
		}
		if expect != 0 && res.firstSeq != expect+1 {
			return fmt.Errorf("%w: %s starts at seq %d, want %d (missing segment?)", ErrCorrupt, sm.path, res.firstSeq, expect+1)
		}
		if res.count > 0 {
			expect = res.firstSeq + uint64(res.count) - 1
		} else {
			expect = res.firstSeq - 1
		}
		l.tornTail += res.tornBytes
		if res.badSeq {
			return fmt.Errorf("%w: %s record sequence broken", ErrCorrupt, sm.path)
		}
		l.segs = append(l.segs, sm)
	}
	l.lastSeq = expect
	return nil
}

// Replay streams every recovered record with seq > after, in order, to
// fn. It reads the segments that existed when the log was opened —
// records appended afterwards are the new generation's and are not
// replayed. Call it once, before appending. A non-nil error from fn
// aborts and is returned; the int is the number of records delivered.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) (int, error) {
	n := 0
	for _, sm := range l.recovery {
		res, err := scanSegment(sm.path)
		if err != nil {
			return n, err
		}
		if res.headerTorn {
			break
		}
		for _, rec := range res.records {
			if rec.seq <= after {
				continue
			}
			if err := fn(rec.seq, rec.payload); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

type record struct {
	seq     uint64
	payload []byte
}

type segScan struct {
	firstSeq   uint64
	count      int
	records    []record
	tornBytes  int64
	headerTorn bool
	badSeq     bool
}

// scanSegment parses one segment file fully, stopping at the first frame
// that cannot be a complete record (the torn tail).
func scanSegment(path string) (segScan, error) {
	var out segScan
	raw, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if len(raw) < segHeaderSize || [8]byte(raw[:8]) != segMagic {
		// Half-written header (or an empty file) from a crash during
		// segment creation; a full header with wrong magic is a foreign
		// file and refuses to load.
		if len(raw) >= segHeaderSize {
			return out, fmt.Errorf("%w: %s is not a WAL segment", ErrCorrupt, path)
		}
		out.headerTorn = true
		out.tornBytes = int64(len(raw))
		return out, nil
	}
	out.firstSeq = binary.LittleEndian.Uint64(raw[8:16])
	body := raw[segHeaderSize:]
	expect := out.firstSeq
	for len(body) > 0 {
		if len(body) < frameHeader {
			out.tornBytes = int64(len(body))
			return out, nil
		}
		plen := binary.LittleEndian.Uint32(body[0:4])
		if plen > maxRecordBytes || int(plen) > len(body)-frameHeader {
			out.tornBytes = int64(len(body))
			return out, nil
		}
		wantCRC := binary.LittleEndian.Uint32(body[4:8])
		seq := binary.LittleEndian.Uint64(body[8:16])
		payload := body[frameHeader : frameHeader+int(plen)]
		crc := crc32.NewIEEE()
		crc.Write(body[8:16])
		crc.Write(payload)
		if crc.Sum32() != wantCRC {
			out.tornBytes = int64(len(body))
			return out, nil
		}
		if seq != expect {
			// A structurally valid record in the wrong place is not a torn
			// tail — it means history was rewritten or interleaved.
			out.badSeq = true
			return out, nil
		}
		out.records = append(out.records, record{seq: seq, payload: payload})
		out.count++
		expect++
		body = body[frameHeader+int(plen):]
	}
	return out, nil
}

// listSegments returns the directory's segment files sorted by the first
// sequence number encoded in their names. Non-segment files (checkpoint
// metadata, snapshots, snapio temp debris) are ignored.
func listSegments(dir string) ([]segMeta, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []segMeta
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexa := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(hexa, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: unparseable segment name %q", ErrCorrupt, name)
		}
		out = append(out, segMeta{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstSeq < out[j].firstSeq })
	return out, nil
}
