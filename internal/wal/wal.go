// Package wal is a segmented write-ahead log with batched group commit,
// the durability tier under memdb and the altdb server.
//
// # Model
//
// Callers append opaque redo payloads; the log assigns each a dense,
// monotonically increasing sequence number (the LSN) and makes it durable
// according to the configured SyncPolicy. Append is a non-blocking enqueue
// (safe to call under an engine lock, so log order matches apply order);
// WaitDurable blocks until the record's commit point, and Commit combines
// the two. A single committer goroutine coalesces everything enqueued by
// concurrent appenders into one buffered write — and, under SyncAlways,
// one fsync — per wakeup, so N writers cost far fewer than N fsyncs
// (group commit, the same grouping idiom as the batched index fast path).
//
// # On-disk format
//
// A log is a directory of segment files named wal-<firstSeq:016x>.seg:
//
//	segment header: magic "ALTWAL01", u64 firstSeq
//	record frame:   u32 payloadLen, u32 crc32(seq‖payload), u64 seq, payload
//
// Records are contiguous by sequence number across segments. The log
// never appends to a pre-existing segment: Open always rotates to a fresh
// one, so a tail torn by a crash is left in place as evidence and the
// reader (see replay.go) tolerates it — a torn or half-written frame at
// the end of any segment is skipped iff the next segment continues the
// sequence exactly; any other gap is corruption and refuses to load.
//
// # Failure model
//
// The process can die at any instruction (the crash-matrix harness kills
// it at every site below with a real SIGKILL). The guarantees:
//
//   - a record whose WaitDurable returned nil under SyncAlways survives
//     any crash (it was fsynced before the wait was released);
//   - under SyncInterval/SyncNone, WaitDurable returns once the record is
//     written to the OS, so an acked record survives process death
//     (kill -9) but up to Interval (or arbitrarily much) may be lost to
//     power failure — the documented relaxation;
//   - replay never yields a record that was not fully appended, never
//     yields one twice, and never reorders (CRC framing + dense seqs);
//   - any write or fsync error wedges the log: every subsequent Append
//     and WaitDurable fails, so an engine can never ack a write the log
//     silently dropped.
//
// Failpoint sites (armed by the chaos suites and crash matrix):
//
//	wal/append    committer, before the batch write — pending records are
//	              only in process memory (none of them acked)
//	wal/sync      committer, after fsync, before waiters are released —
//	              records durable but unacked
//	wal/rotate    between finishing one segment and creating the next
//	wal/truncate  between successive segment deletions in TruncateBelow
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/failpoint"
)

// SyncPolicy selects the commit point of WaitDurable.
type SyncPolicy int

const (
	// SyncAlways fsyncs every committed batch before releasing its
	// waiters: an acked write survives power loss. The group-commit
	// batching keeps fsyncs/sec well below commits/sec under concurrency.
	SyncAlways SyncPolicy = iota
	// SyncInterval acks once the record reaches the OS and fsyncs at most
	// every Options.Interval: an acked write survives kill -9 but the
	// last interval may be lost to power failure.
	SyncInterval
	// SyncNone acks once the record reaches the OS and never fsyncs
	// explicitly (the OS flushes on its own schedule).
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -wal-sync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, interval, none)", s)
}

// Options tune a log; the zero value is the production default
// (SyncAlways, 64 MiB segments).
type Options struct {
	// Sync selects the commit point (default SyncAlways).
	Sync SyncPolicy
	// Interval is the fsync cadence under SyncInterval (default 50ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 64 MiB). Small values are for tests and the
	// crash matrix, which need rotation to actually happen.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Stats is a point-in-time counter snapshot (see Log.Stats).
type Stats struct {
	Appends            int64 // records accepted by Append
	Fsyncs             int64 // fsync calls on segment files
	Batches            int64 // committer wakeups that wrote at least one record
	Bytes              int64 // framed bytes written (excluding segment headers)
	Rotations          int64 // segment rotations since Open
	Truncations        int64 // segment files deleted by TruncateBelow
	Segments           int64 // segment files currently on disk
	TruncatedTailBytes int64 // torn bytes skipped by Open's recovery scan
	LastSeq            uint64
	DurableSeq         uint64
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt reports a log directory whose segments cannot be stitched
// into one contiguous record sequence (a gap that is not a tolerated torn
// tail, a foreign file, a broken sequence).
var ErrCorrupt = errors.New("wal: corrupt log")

const (
	segPrefix     = "wal-"
	segSuffix     = ".seg"
	segHeaderSize = 16
	frameHeader   = 16
	// maxRecordBytes bounds one payload; anything larger in a frame header
	// is treated as tail garbage by the reader.
	maxRecordBytes = 1 << 28
)

var segMagic = [8]byte{'A', 'L', 'T', 'W', 'A', 'L', '0', '1'}

// Failpoint sites — see the package comment for placement semantics.
var (
	fpAppend   = failpoint.New("wal/append")
	fpSync     = failpoint.New("wal/sync")
	fpRotate   = failpoint.New("wal/rotate")
	fpTruncate = failpoint.New("wal/truncate")
)

// segMeta is one on-disk segment: its path and the first sequence number
// it holds (from its header/filename).
type segMeta struct {
	path     string
	firstSeq uint64
}

// Log is an append-only segmented WAL. All methods are safe for
// concurrent use. Create with Open.
type Log struct {
	dir  string
	opts Options

	// mu guards the append side: sequence assignment, the pending buffer,
	// the segment list and the sticky error. Append holds it briefly —
	// callers may hold engine locks across Append, never across
	// WaitDurable.
	mu      sync.Mutex
	pend    []byte
	pendSeq uint64
	nextSeq uint64
	segs    []segMeta // on-disk segments, ascending firstSeq (incl. active)
	failed  error     // sticky wedge: set on the first write/fsync error
	closed  bool

	// Committer/waiter rendezvous.
	cmu       sync.Mutex
	cond      *sync.Cond
	written   uint64 // highest seq handed to the OS
	durable   uint64 // highest seq fsynced
	forceSync bool   // set by Sync: next flush fsyncs regardless of policy
	lastSync  time.Time

	// Committer-owned segment state (no lock: single goroutine).
	seg     *os.File
	segSize int64

	work chan struct{}
	quit chan struct{}
	dead chan struct{}

	// recovery holds the segments found at Open time plus the torn-tail
	// accounting; Replay reads exactly these files.
	recovery []segMeta
	lastSeq  uint64 // highest valid seq found at Open
	tornTail int64

	stAppends     atomic.Int64
	stFsyncs      atomic.Int64
	stBatches     atomic.Int64
	stBytes       atomic.Int64
	stRotations   atomic.Int64
	stTruncations atomic.Int64
}

// Open scans dir (creating it if missing), validates the record chain,
// rotates to a fresh segment and starts the committer. Use Replay before
// appending to recover state, then append freely. Torn tails left by a
// crash are tolerated and reported in Stats().TruncatedTailBytes; any
// other inconsistency returns ErrCorrupt.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		work: make(chan struct{}, 1),
		quit: make(chan struct{}),
		dead: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.cmu)
	if err := l.scan(); err != nil {
		return nil, err
	}
	l.nextSeq = l.lastSeq + 1
	l.written = l.lastSeq
	l.durable = l.lastSeq // everything pre-crash is as durable as it gets
	// A previous generation may have left a segment holding no valid
	// records (a clean close right after rotation, or a tail torn before
	// the first record landed). The fresh active segment reuses its name
	// via O_TRUNC, so drop the stale entry rather than tracking the same
	// file twice — a duplicate would let TruncateBelow delete the active
	// segment out from under the committer.
	if n := len(l.segs); n > 0 && l.segs[n-1].firstSeq == l.nextSeq {
		l.segs = l.segs[:n-1]
	}
	// Snapshot the recovery set before rotating: Replay reads exactly the
	// segments that predate this generation, so records appended after
	// Open can never be replayed back into the engine.
	l.recovery = append([]segMeta(nil), l.segs...)
	if err := l.rotate(l.nextSeq); err != nil {
		return nil, err
	}
	l.lastSync = time.Now()
	go l.committer()
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Append frames payload, assigns it the next sequence number and enqueues
// it for the committer. It never blocks on I/O, so it is safe to call
// under an engine's per-key lock — which is exactly what keeps log order
// identical to apply order. Durability is WaitDurable's job.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordBytes)
	}
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.pend = appendFrame(l.pend, seq, payload)
	l.pendSeq = seq
	l.mu.Unlock()
	l.stAppends.Add(1)
	select {
	case l.work <- struct{}{}:
	default:
	}
	return seq, nil
}

// WaitDurable blocks until seq has reached the policy's commit point
// (disk under SyncAlways, the OS otherwise) or the log has failed.
func (l *Log) WaitDurable(seq uint64) error {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	for {
		if l.opts.Sync == SyncAlways {
			if l.durable >= seq {
				return nil
			}
		} else if l.written >= seq {
			return nil
		}
		l.mu.Lock()
		err := l.usableLocked()
		l.mu.Unlock()
		if err != nil {
			return err
		}
		l.cond.Wait()
	}
}

// Commit appends payload and waits for its commit point: the one-call
// durable write ("ack only after commit").
func (l *Log) Commit(payload []byte) (uint64, error) {
	seq, err := l.Append(payload)
	if err != nil {
		return 0, err
	}
	return seq, l.WaitDurable(seq)
}

// Sync forces everything appended so far to disk regardless of policy
// (used by checkpoints and Close).
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.nextSeq - 1
	err := l.usableLocked()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.cmu.Lock()
	defer l.cmu.Unlock()
	for l.durable < target {
		select {
		case l.work <- struct{}{}:
		default:
		}
		l.forceSync = true
		l.cond.Wait()
		l.mu.Lock()
		err := l.usableLocked()
		l.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// LastSeq returns the highest sequence number assigned so far (0 if the
// log is empty). Every record at or below it has already been applied by
// its writer, which is what makes it the right checkpoint LSN.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the highest fsynced sequence number.
func (l *Log) DurableSeq() uint64 {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	return l.durable
}

// Stats returns a counter snapshot.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := int64(len(l.segs))
	last := l.nextSeq - 1
	l.mu.Unlock()
	l.cmu.Lock()
	durable := l.durable
	l.cmu.Unlock()
	return Stats{
		Appends:            l.stAppends.Load(),
		Fsyncs:             l.stFsyncs.Load(),
		Batches:            l.stBatches.Load(),
		Bytes:              l.stBytes.Load(),
		Rotations:          l.stRotations.Load(),
		Truncations:        l.stTruncations.Load(),
		Segments:           segs,
		TruncatedTailBytes: l.tornTail,
		LastSeq:            last,
		DurableSeq:         durable,
	}
}

// TruncateBelow deletes every segment whose records all have sequence
// numbers below keepFrom — called after a checkpoint covering keepFrom-1
// is durable. The active segment is never deleted. Safe to run
// concurrently with appends.
func (l *Log) TruncateBelow(keepFrom uint64) error {
	l.mu.Lock()
	// A segment's records end where the next segment begins; the last
	// entry is the active segment and always stays.
	var drop []segMeta
	for len(l.segs) > 1 && l.segs[1].firstSeq <= keepFrom {
		drop = append(drop, l.segs[0])
		l.segs = l.segs[1:]
	}
	l.mu.Unlock()
	for _, s := range drop {
		fpTruncate.Inject()
		if err := fpTruncate.InjectErr(); err != nil {
			return err
		}
		if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		l.stTruncations.Add(1)
	}
	if len(drop) > 0 {
		syncDir(l.dir)
	}
	return nil
}

// Close drains pending records, fsyncs, and stops the committer. Further
// appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.dead
	l.mu.Lock()
	err := l.failed
	l.mu.Unlock()
	return err
}

// usableLocked reports the sticky failure state; callers hold l.mu.
func (l *Log) usableLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// wedge records the first hard I/O error and wakes every waiter: the log
// refuses all further work, so no write is ever acked after its record
// was dropped.
func (l *Log) wedge(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = fmt.Errorf("wal: log failed: %w", err)
	}
	l.mu.Unlock()
	l.cmu.Lock()
	l.cond.Broadcast()
	l.cmu.Unlock()
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	crc := crc32.NewIEEE()
	crc.Write(seqb[:])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	copy(hdr[8:], seqb[:])
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// --- committer -------------------------------------------------------------

func (l *Log) committer() {
	defer close(l.dead)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.opts.Sync == SyncInterval {
		tick = time.NewTicker(l.opts.Interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-l.work:
			l.flush(false)
		case <-tickC:
			l.flush(false)
		case <-l.quit:
			// Final drain: everything enqueued before Close is made
			// durable, then the segment is closed.
			l.flush(true)
			if l.seg != nil {
				if err := l.seg.Sync(); err != nil {
					l.wedge(err)
				}
				l.stFsyncs.Add(1)
				if err := l.seg.Close(); err != nil {
					l.wedge(err)
				}
				l.seg = nil
			}
			return
		}
	}
}

// flush writes the pending batch (one buffered write for however many
// records concurrent appenders enqueued — the group in group commit),
// advances the written/durable watermarks per policy and wakes waiters.
func (l *Log) flush(final bool) {
	l.mu.Lock()
	if l.failed != nil {
		l.mu.Unlock()
		return
	}
	batch := l.pend
	upTo := l.pendSeq
	l.pend = nil
	needRotate := l.segSize+int64(len(batch)) > l.opts.SegmentBytes && l.segSize > segHeaderSize
	firstSeq := l.written + 1
	l.mu.Unlock()

	l.cmu.Lock()
	force := l.forceSync
	l.forceSync = false
	l.cmu.Unlock()

	if len(batch) == 0 && !force {
		return
	}

	if len(batch) > 0 {
		if needRotate {
			if err := l.rotateActive(firstSeq); err != nil {
				l.wedge(err)
				return
			}
		}
		// Crash point: the batch exists only in process memory. None of
		// its records has been acked (their waiters are parked), so a kill
		// here loses only unacked work.
		fpAppend.Inject()
		if err := fpAppend.InjectErr(); err != nil {
			l.wedge(err)
			return
		}
		if _, err := l.seg.Write(batch); err != nil {
			l.wedge(err)
			return
		}
		l.segSize += int64(len(batch))
		l.stBytes.Add(int64(len(batch)))
		l.stBatches.Add(1)
		l.cmu.Lock()
		l.written = upTo
		if l.opts.Sync != SyncAlways {
			l.cond.Broadcast()
		}
		l.cmu.Unlock()
	}

	syncNow := force || final || l.opts.Sync == SyncAlways
	if l.opts.Sync == SyncInterval && time.Since(l.lastSync) >= l.opts.Interval {
		syncNow = true
	}
	if !syncNow {
		return
	}
	if err := l.seg.Sync(); err != nil {
		l.wedge(err)
		return
	}
	l.stFsyncs.Add(1)
	l.lastSync = time.Now()
	// Crash point: records are on disk but their acks have not been
	// released — the audit must find every one of them after recovery.
	fpSync.Inject()
	if err := fpSync.InjectErr(); err != nil {
		l.wedge(err)
		return
	}
	l.cmu.Lock()
	if l.written > l.durable {
		l.durable = l.written
	}
	l.cond.Broadcast()
	l.cmu.Unlock()
}

// rotateActive finishes the current segment (fsync, close) and opens a
// fresh one whose first record will be firstSeq.
func (l *Log) rotateActive(firstSeq uint64) error {
	fpRotate.Inject()
	if err := fpRotate.InjectErr(); err != nil {
		return err
	}
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.stFsyncs.Add(1)
		if err := l.seg.Close(); err != nil {
			return err
		}
		l.seg = nil
	}
	return l.rotate(firstSeq)
}

// rotate creates the segment file for firstSeq and makes it the active
// one. Called from Open (before the committer starts) and rotateActive
// (committer goroutine).
func (l *Log) rotate(firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	// The header is durable before any record can land in it, and the
	// directory entry before any ack can depend on it.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.stFsyncs.Add(1)
	syncDir(l.dir)
	l.seg = f
	l.segSize = segHeaderSize
	l.mu.Lock()
	l.segs = append(l.segs, segMeta{path: path, firstSeq: firstSeq})
	l.mu.Unlock()
	l.stRotations.Add(1)
	return nil
}

// syncDir makes directory mutations (segment create/delete) durable;
// best-effort, mirroring snapio.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
