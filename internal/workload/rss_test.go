package workload

import (
	"os"
	"syscall"
	"testing"

	"altindex/internal/dataset"
)

// maxRSSKiB reads the process high-water RSS. Linux reports ru_maxrss in
// KiB; that is the unit EXPERIMENTS.md records.
func maxRSSKiB(t *testing.T) int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return ru.Maxrss
}

// TestSplitLoadRSS measures the peak-RSS cost of splitting a large-tier
// dataset into load/pending halves (ROADMAP item 3's blocker: the split
// used to materialize a second full copy of the sorted key set). Gated
// behind SPLIT_RSS=1 because it holds a 20M-key dataset: run with
//
//	SPLIT_RSS=1 go test -run TestSplitLoadRSS -v ./internal/workload
//
// and record the "split delta" line in EXPERIMENTS.md when it changes.
func TestSplitLoadRSS(t *testing.T) {
	if os.Getenv("SPLIT_RSS") == "" {
		t.Skip("set SPLIT_RSS=1 to run the 20M-key RSS measurement")
	}
	const n = 20_000_000
	keys := dataset.Generate(dataset.Libio, n, 1)
	afterGen := maxRSSKiB(t)
	loaded, pending := SplitLoad(keys, 0.5, 1)
	afterSplit := maxRSSKiB(t)
	if len(loaded)+len(pending) != n {
		t.Fatalf("split lost keys: %d+%d != %d", len(loaded), len(pending), n)
	}
	t.Logf("after generate: maxrss = %d KiB", afterGen)
	t.Logf("after split:    maxrss = %d KiB", afterSplit)
	t.Logf("split delta:    %d KiB for %d keys (%d MiB key set)",
		afterSplit-afterGen, n, n*8/(1<<20))
}
