// Package workload builds the operation streams of the ALT-index paper's
// evaluation (§IV-A2): read-only through write-only mixes, the hot-write
// retraining trigger, and the 100-key scan workload. Reads follow a Zipfian
// distribution (default θ=0.99) over the bulk-loaded keys; inserts are
// uniformly distributed fresh keys; scans start at Zipfian-selected keys.
//
// A Workload is split into per-thread Streams so each benchmark goroutine
// draws from its own deterministic sequence with no shared mutable state.
package workload

import (
	"fmt"

	"altindex/internal/xrand"
)

// Kind enumerates operation types.
type Kind uint8

// Operation kinds.
const (
	Get Kind = iota
	Insert
	Update
	Remove
	Scan
)

func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Remove:
		return "remove"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one generated operation. For Scan, N is the scan length.
type Op struct {
	Kind  Kind
	Key   uint64
	Value uint64
	N     int
}

// Mix is an operation mix in percent. Fields must sum to 100.
type Mix struct {
	Name    string
	Get     int
	Insert  int
	Update  int
	Remove  int
	Scan    int
	ScanLen int
}

// The workload mixes of §IV-A2.
var (
	ReadOnly   = Mix{Name: "read-only", Get: 100}
	ReadHeavy  = Mix{Name: "read-heavy", Get: 80, Insert: 20}
	Balanced   = Mix{Name: "balanced", Get: 50, Insert: 50}
	WriteHeavy = Mix{Name: "write-heavy", Get: 20, Insert: 80}
	WriteOnly  = Mix{Name: "write-only", Insert: 100}
	ScanOnly   = Mix{Name: "scan", Scan: 100, ScanLen: 100}
)

// Mixes returns the five point-operation mixes in paper order (Fig 7 a-e).
func Mixes() []Mix {
	return []Mix{ReadOnly, ReadHeavy, Balanced, WriteHeavy, WriteOnly}
}

// Hotspot configures the hotspot distribution: a contiguous run of the
// loaded keyspace (in key order, so it maps onto a contiguous shard
// range) receives most of the traffic, and the run optionally jumps to a
// new position on a fixed per-stream op schedule. This is the YCSB
// hotspot distribution plus the "moving hot range" twist the adaptive
// rebalancer needs: a static skew rewards any one-shot partitioning,
// while a moving one rewards only an index that keeps re-partitioning.
type Hotspot struct {
	// Fraction is the hot run's width as a fraction of the loaded keys;
	// 0 defaults to 0.1 (a 10% hot range).
	Fraction float64
	// OpFrac is the fraction of key choices that land in the hot run;
	// 0 defaults to 0.9 (the classic 90/10 skew).
	OpFrac float64
	// ShiftEvery moves the hot run to a new (deterministic,
	// golden-ratio-scrambled) position every ShiftEvery operations of each
	// stream; 0 keeps it static.
	ShiftEvery int64
}

func (h *Hotspot) norm() (frac, opfrac float64) {
	frac, opfrac = h.Fraction, h.OpFrac
	if frac <= 0 || frac > 1 {
		frac = 0.1
	}
	if opfrac <= 0 || opfrac > 1 {
		opfrac = 0.9
	}
	return frac, opfrac
}

// Config parameterises a Workload.
type Config struct {
	Mix     Mix
	Theta   float64 // Zipfian θ for Get/Update/Scan key choice; default 0.99
	Threads int
	Seed    uint64
	// Hotspot, when non-nil, replaces the Zipfian key choice with the
	// hotspot distribution for every key-bearing operation — including
	// Insert, which then upserts existing hot keys instead of drawing
	// fresh ones, concentrating write traffic on the hot range.
	Hotspot *Hotspot
}

// Workload owns the key populations and hands out per-thread Streams.
type Workload struct {
	cfg    Config
	loaded []uint64   // keys present after bulkload (read targets)
	shuf   []uint64   // loaded keys scrambled so zipf rank != key order
	insert [][]uint64 // per-thread fresh-key queues
	zipf   *xrand.Zipf
	maxKey uint64
}

// New builds a workload over loaded (the bulkloaded keys, ascending) and
// pending (fresh keys to insert, in any order); pending is dealt round-robin
// to threads. Either slice may be nil when the mix does not need it.
func New(cfg Config, loaded, pending []uint64) *Workload {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	w := &Workload{cfg: cfg, loaded: loaded}
	if len(loaded) > 0 {
		w.maxKey = loaded[len(loaded)-1]
		w.zipf = xrand.NewZipf(uint64(len(loaded)), cfg.Theta)
		// Scramble the rank->key mapping so the hottest keys are spread
		// across the keyspace (YCSB convention).
		w.shuf = make([]uint64, len(loaded))
		copy(w.shuf, loaded)
		r := xrand.New(cfg.Seed ^ 0xdecafbad)
		for i := len(w.shuf) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			w.shuf[i], w.shuf[j] = w.shuf[j], w.shuf[i]
		}
	}
	if p := pending; len(p) > 0 {
		if p[len(p)-1] > w.maxKey {
			w.maxKey = p[len(p)-1]
		}
	}
	w.insert = make([][]uint64, cfg.Threads)
	for i, k := range pending {
		t := i % cfg.Threads
		w.insert[t] = append(w.insert[t], k)
	}
	return w
}

// PendingPerThread returns the minimum number of fresh keys available to
// each thread, which bounds how many insert ops a thread can issue before
// the stream starts synthesising keys beyond the dataset.
func (w *Workload) PendingPerThread() int {
	if len(w.insert) == 0 {
		return 0
	}
	minLen := len(w.insert[0])
	for _, q := range w.insert[1:] {
		if len(q) < minLen {
			minLen = len(q)
		}
	}
	return minLen
}

// Stream returns the deterministic operation stream for thread tid
// (0 <= tid < cfg.Threads).
func (w *Workload) Stream(tid int) *Stream {
	return &Stream{
		w:     w,
		r:     xrand.New(w.cfg.Seed + uint64(tid)*0x9e3779b97f4a7c15 + 1),
		queue: w.insert[tid],
		// Synthesised overflow keys are spaced by thread so streams
		// never collide.
		synth: w.maxKey + 1 + uint64(tid),
		step:  uint64(w.cfg.Threads),
	}
}

// Stream generates operations for one thread. Not safe for concurrent use;
// each goroutine takes its own Stream.
type Stream struct {
	w     *Workload
	r     *xrand.Rng
	queue []uint64
	pos   int
	synth uint64
	step  uint64
	ops   int64 // operations issued; drives the hotspot shift schedule
}

// hotspotKey draws a key under the hotspot distribution: with
// probability OpFrac a uniform key from the current hot run of the
// sorted loaded keys, otherwise a uniform key from the whole set. The
// run's position is a pure function of the stream's op count, so every
// thread shifts on the same schedule and the combined load moves as one
// coherent hot range.
func (s *Stream) hotspotKey(h *Hotspot) uint64 {
	n := len(s.w.loaded)
	frac, opfrac := h.norm()
	hotLen := int(float64(n) * frac)
	if hotLen < 1 {
		hotLen = 1
	}
	start := 0
	if h.ShiftEvery > 0 {
		phase := uint64(s.ops / h.ShiftEvery)
		// Golden-ratio scramble: consecutive phases land far apart, so a
		// shift actually moves the load instead of sliding it one slot.
		start = int((phase * 0x9e3779b97f4a7c15) % uint64(n-hotLen+1))
	}
	if s.r.Intn(10000) < int(opfrac*10000) {
		return s.w.loaded[start+s.r.Intn(hotLen)]
	}
	return s.w.loaded[s.r.Intn(n)]
}

// Next returns the next operation.
func (s *Stream) Next() Op {
	s.ops++
	m := &s.w.cfg.Mix
	p := s.r.Intn(100)
	switch {
	case p < m.Get:
		return Op{Kind: Get, Key: s.readKey()}
	case p < m.Get+m.Insert:
		k := s.insertKey()
		return Op{Kind: Insert, Key: k, Value: k*0x9e3779b97f4a7c15 + 1}
	case p < m.Get+m.Insert+m.Update:
		k := s.readKey()
		return Op{Kind: Update, Key: k, Value: s.r.Next()}
	case p < m.Get+m.Insert+m.Update+m.Remove:
		return Op{Kind: Remove, Key: s.readKey()}
	default:
		n := m.ScanLen
		if n <= 0 {
			n = 100
		}
		return Op{Kind: Scan, Key: s.readKey(), N: n}
	}
}

func (s *Stream) readKey() uint64 {
	if h := s.w.cfg.Hotspot; h != nil && len(s.w.loaded) > 0 {
		return s.hotspotKey(h)
	}
	if s.w.zipf == nil {
		return s.r.Next()
	}
	return s.w.shuf[s.w.zipf.Rank(s.r)]
}

func (s *Stream) insertKey() uint64 {
	if h := s.w.cfg.Hotspot; h != nil && len(s.w.loaded) > 0 {
		return s.hotspotKey(h)
	}
	if s.pos < len(s.queue) {
		k := s.queue[s.pos]
		s.pos++
		return k
	}
	k := s.synth
	s.synth += s.step
	return k
}

// SplitLoad divides a sorted dataset into the bulkload portion and the
// pending insert keys, per the paper's default of bulkloading initRatio of
// the dataset (0.5 in §IV-A2) and inserting the rest. The pending keys are
// returned shuffled (uniform insert order) under seed.
//
// The split is in place: the returned slices alias keys, which is
// partitioned (loaded sorted at the front, pending shuffled behind it) —
// so at the 50-200M-key tier the split adds zero resident bytes instead of
// materializing a second full copy of the sorted key set. Callers may keep
// using keys as a multiset but must not rely on its original order.
func SplitLoad(keys []uint64, initRatio float64, seed uint64) (loaded, pending []uint64) {
	if initRatio < 0 {
		initRatio = 0
	}
	if initRatio > 1 {
		initRatio = 1
	}
	// Take every k-th key into the load set so both halves span the full
	// key range (matching how SOSD benchmarks split: inserts interleave
	// with loaded keys rather than extending past them).
	n := len(keys)
	want := int(float64(n) * initRatio)
	if want > 0 {
		// Stable-for-selected partition: the sampled positions swap to the
		// front in ascending order, so loaded stays sorted; the displaced
		// keys land in the tail in arbitrary order, which the shuffle below
		// erases. A position is only ever written at or before its own
		// step, so each selection still reads the original sorted key.
		stride := float64(n) / float64(want)
		next := 0.0
		idx := 0
		for i := 0; i < n && idx < want; i++ {
			if i == int(next) {
				keys[idx], keys[i] = keys[i], keys[idx]
				idx++
				next += stride
			}
		}
		want = idx
	} else {
		want = 0
	}
	loaded, pending = keys[:want:want], keys[want:]
	r := xrand.New(seed ^ 0xfeedbeef)
	for i := len(pending) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		pending[i], pending[j] = pending[j], pending[i]
	}
	return loaded, pending
}

// HotSplit reserves a consecutive run of keys for insertion (the paper's
// hot-write workload: 20M consecutive keys reserved out of 200M, indexes
// initialised with the rest). frac is the reserved fraction; the reserved
// run is taken from the middle of the keyspace, in ascending (hot) order.
//
// Only the reserved run is copied out; the remainder is compacted in
// place, so loaded aliases keys and the split allocates frac·n keys
// instead of a full second copy. Callers must treat keys as consumed:
// after the split it holds loaded in its first n-res positions and
// garbage beyond.
func HotSplit(keys []uint64, frac float64, _ uint64) (loaded, pending []uint64) {
	n := len(keys)
	res := int(float64(n) * frac)
	if res <= 0 {
		return keys, nil
	}
	start := (n - res) / 2
	pending = append(make([]uint64, 0, res), keys[start:start+res]...)
	copy(keys[start:], keys[start+res:])
	return keys[: n-res : n-res], pending
}
