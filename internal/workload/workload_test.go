package workload

import (
	"testing"

	"altindex/internal/dataset"
)

func TestMixesSumTo100(t *testing.T) {
	for _, m := range append(Mixes(), ScanOnly) {
		if s := m.Get + m.Insert + m.Update + m.Remove + m.Scan; s != 100 {
			t.Fatalf("%s sums to %d", m.Name, s)
		}
	}
}

func TestSplitLoadPartitions(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 10000, 1)
	loaded, pending := SplitLoad(keys, 0.5, 2)
	if len(loaded)+len(pending) != len(keys) {
		t.Fatalf("split lost keys: %d+%d != %d", len(loaded), len(pending), len(keys))
	}
	if len(loaded) != len(keys)/2 {
		t.Fatalf("loaded = %d, want %d", len(loaded), len(keys)/2)
	}
	for i := 1; i < len(loaded); i++ {
		if loaded[i] <= loaded[i-1] {
			t.Fatal("loaded not sorted")
		}
	}
	// Loaded and pending are disjoint and together equal the input.
	seen := make(map[uint64]bool, len(keys))
	for _, k := range loaded {
		seen[k] = true
	}
	for _, k := range pending {
		if seen[k] {
			t.Fatalf("key %d in both halves", k)
		}
		seen[k] = true
	}
	if len(seen) != len(keys) {
		t.Fatal("split dropped keys")
	}
	// Ratio edge cases. The split is in place, so each case gets a fresh
	// sorted input.
	l0, p0 := SplitLoad(dataset.Generate(dataset.OSM, 10000, 1), 0, 1)
	if len(l0) != 0 || len(p0) != len(keys) {
		t.Fatal("ratio 0 broken")
	}
	l1, p1 := SplitLoad(dataset.Generate(dataset.OSM, 10000, 1), 1, 1)
	if len(p1) != 0 || len(l1) != len(keys) {
		t.Fatal("ratio 1 broken")
	}
	for i := 1; i < len(l1); i++ {
		if l1[i] <= l1[i-1] {
			t.Fatal("ratio-1 loaded not sorted")
		}
	}
}

func TestHotSplitConsecutive(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 10000, 3)
	// The split consumes keys (loaded aliases its compacted front), so
	// compare against a snapshot of the original sorted array.
	orig := append([]uint64(nil), keys...)
	loaded, pending := HotSplit(keys, 0.2, 0)
	if len(pending) != 2000 {
		t.Fatalf("reserved %d, want 2000", len(pending))
	}
	if len(loaded)+len(pending) != len(orig) {
		t.Fatal("hot split lost keys")
	}
	for i := 1; i < len(pending); i++ {
		if pending[i] <= pending[i-1] {
			t.Fatal("reserved run not ascending (hot order)")
		}
	}
	// The reserved run is contiguous inside the original array.
	start := -1
	for i, k := range orig {
		if k == pending[0] {
			start = i
			break
		}
	}
	for i, k := range pending {
		if orig[start+i] != k {
			t.Fatal("reserved run not contiguous")
		}
	}
	// Loaded is the original minus the reserved middle, still sorted.
	for i := 1; i < len(loaded); i++ {
		if loaded[i] <= loaded[i-1] {
			t.Fatal("loaded not sorted after compaction")
		}
	}
	for i, k := range loaded {
		want := orig[i]
		if i >= start {
			want = orig[i+len(pending)]
		}
		if k != want {
			t.Fatalf("loaded[%d] = %d, want %d", i, k, want)
		}
	}
}

func TestStreamsDeterministicAndDisjoint(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 20000, 4)
	loaded, pending := SplitLoad(keys, 0.5, 5)
	cfg := Config{Mix: Balanced, Threads: 4, Seed: 9}
	w1 := New(cfg, loaded, pending)
	w2 := New(cfg, loaded, pending)
	for tid := 0; tid < 4; tid++ {
		s1, s2 := w1.Stream(tid), w2.Stream(tid)
		for i := 0; i < 1000; i++ {
			if s1.Next() != s2.Next() {
				t.Fatalf("stream %d not deterministic at op %d", tid, i)
			}
		}
	}
	// Insert keys must never collide across threads, even past the
	// pending queues.
	w := New(cfg, loaded, pending)
	seen := map[uint64]int{}
	for tid := 0; tid < 4; tid++ {
		s := w.Stream(tid)
		for i := 0; i < len(pending); i++ {
			op := s.Next()
			if op.Kind != Insert {
				continue
			}
			if prev, dup := seen[op.Key]; dup {
				t.Fatalf("insert key %d from threads %d and %d", op.Key, prev, tid)
			}
			seen[op.Key] = tid
		}
	}
}

func TestMixProportions(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 10000, 6)
	loaded, pending := SplitLoad(keys, 0.5, 7)
	w := New(Config{Mix: ReadHeavy, Threads: 1, Seed: 1}, loaded, pending)
	s := w.Stream(0)
	counts := map[Kind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[s.Next().Kind]++
	}
	gotGet := float64(counts[Get]) / n
	if gotGet < 0.77 || gotGet > 0.83 {
		t.Fatalf("read-heavy get fraction %.3f, want ~0.80", gotGet)
	}
	if counts[Scan] != 0 || counts[Remove] != 0 {
		t.Fatal("unexpected op kinds in read-heavy mix")
	}
}

func TestZipfSkewsReads(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 10000, 8)
	w := New(Config{Mix: ReadOnly, Threads: 1, Seed: 2, Theta: 0.99}, keys, nil)
	s := w.Stream(0)
	freq := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		freq[s.Next().Key]++
	}
	maxFreq := 0
	for _, c := range freq {
		if c > maxFreq {
			maxFreq = c
		}
	}
	// Zipf θ=0.99 over 10k items: the hottest key gets a few percent of
	// all requests; uniform would give 0.01%.
	if float64(maxFreq)/n < 0.005 {
		t.Fatalf("hottest key only %.4f of requests; zipf not skewed", float64(maxFreq)/n)
	}
	if len(freq) < 100 {
		t.Fatalf("only %d distinct keys drawn", len(freq))
	}
}

func TestScanOpsCarryLength(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 1000, 9)
	w := New(Config{Mix: ScanOnly, Threads: 1, Seed: 3}, keys, nil)
	s := w.Stream(0)
	for i := 0; i < 100; i++ {
		op := s.Next()
		if op.Kind != Scan || op.N != 100 {
			t.Fatalf("scan op = %+v", op)
		}
	}
}

func TestPendingPerThread(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 1000, 10)
	w := New(Config{Mix: Balanced, Threads: 3, Seed: 1}, keys[:500], keys[500:])
	if got := w.PendingPerThread(); got != 166 {
		t.Fatalf("PendingPerThread = %d, want 166", got)
	}
}

func TestHotspotConcentratesAndShifts(t *testing.T) {
	keys := dataset.Generate(dataset.Libio, 10000, 11)
	w := New(Config{
		Mix:     ReadHeavy,
		Threads: 1,
		Seed:    4,
		Hotspot: &Hotspot{Fraction: 0.1, OpFrac: 0.9, ShiftEvery: 20000},
	}, keys, nil)
	s := w.Stream(0)

	pos := func(k uint64) int {
		for i, lk := range keys {
			if lk == k {
				return i
			}
		}
		t.Fatalf("key %d not in loaded set", k)
		return -1
	}

	// Phase 0: find the densest 10%-wide window; it must hold ~90% of ops.
	window := func(n int) (bestLo, inBest int) {
		hits := make([]int, len(keys))
		for i := 0; i < n; i++ {
			hits[pos(s.Next().Key)]++
		}
		hotLen := len(keys) / 10
		sum := 0
		for i := 0; i < hotLen; i++ {
			sum += hits[i]
		}
		best, bestLo := sum, 0
		for lo := 1; lo+hotLen <= len(hits); lo++ {
			sum += hits[lo+hotLen-1] - hits[lo-1]
			if sum > best {
				best, bestLo = sum, lo
			}
		}
		return bestLo, best
	}

	lo0, in0 := window(20000)
	if frac := float64(in0) / 20000; frac < 0.8 {
		t.Fatalf("phase 0: densest window holds only %.2f of ops, want ~0.9", frac)
	}
	lo1, in1 := window(20000)
	if frac := float64(in1) / 20000; frac < 0.8 {
		t.Fatalf("phase 1: densest window holds only %.2f of ops, want ~0.9", frac)
	}
	if d := lo1 - lo0; d > -500 && d < 500 {
		t.Fatalf("hot range did not move across the shift: phase0 at %d, phase1 at %d", lo0, lo1)
	}
}
