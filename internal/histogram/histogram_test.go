package histogram

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestSingleValue(t *testing.T) {
	var h Histogram
	h.Record(1000 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	q := h.Quantile(0.5)
	if q < 900*time.Nanosecond || q > 1100*time.Nanosecond {
		t.Fatalf("median %v for single 1µs sample", q)
	}
	if h.Max() != 1000*time.Nanosecond {
		t.Fatalf("max %v", h.Max())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(1))
	vals := make([]int64, 100000)
	for i := range vals {
		// Log-uniform latencies from 100ns to 10ms.
		v := int64(100 * (1 << uint(r.Intn(17))))
		v += r.Int63n(v)
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := float64(vals[int(q*float64(len(vals)))-1])
		got := float64(h.Quantile(q))
		// Log-bucketed histograms are accurate to one sub-bucket
		// (1/16 of a power of two ~ 6.25%, allow 10%).
		if got < exact*0.9 || got > exact*1.1 {
			t.Fatalf("q=%v: got %v exact %v", q, time.Duration(int64(got)), time.Duration(int64(exact)))
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(r.Int63n(1e9) + 1))
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at %v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(100 + i%1000))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTinyAndHugeValues(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(time.Hour)
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if h.Quantile(1) <= 0 {
		t.Fatal("huge value lost")
	}
}
