// Package histogram provides a lock-free log-bucketed latency histogram
// (HdrHistogram-style, stdlib only) used by the benchmark harness to report
// the P99.9 tail latencies of the paper's Table I and Fig 7.
package histogram

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	majors  = 40 // covers 1ns .. ~18 minutes
	minors  = 16 // linear sub-buckets per power of two
	buckets = majors * minors
)

// Histogram records int64 nanosecond durations. The zero value is ready to
// use; all methods are safe for concurrent use.
type Histogram struct {
	counts [buckets]atomic.Int64
	total  atomic.Int64
	maxNS  atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 1 {
		v = 1
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v)
	var minor int
	if exp >= 4 {
		minor = int((uint64(v) >> (uint(exp) - 4)) & (minors - 1))
	} else {
		minor = int(uint64(v) & (minors - 1))
		exp = 0
	}
	idx := exp*minors + minor
	if idx >= buckets {
		idx = buckets - 1
	}
	return idx
}

// midpoint returns a representative value for bucket idx.
func midpoint(idx int) int64 {
	exp := idx / minors
	minor := idx % minors
	if exp == 0 {
		return int64(minor)
	}
	base := int64(1) << uint(exp)
	step := base / minors
	if step == 0 {
		step = 1
	}
	return base + int64(minor)*step + step/2
}

// Record adds one observation of d.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	h.counts[bucketOf(ns)].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < buckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			v := midpoint(i)
			if mx := h.maxNS.Load(); v > mx {
				v = mx
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.maxNS.Load())
}

// Max returns the largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Mean returns the approximate mean.
func (h *Histogram) Mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < buckets; i++ {
		sum += h.counts[i].Load() * midpoint(i)
	}
	return time.Duration(sum / total)
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.maxNS.Store(0)
}
