package shard

import (
	"fmt"
	"strings"
)

// StatsMap implements index.Stats. Per-shard counters are aggregated
// across shards — summed, except high-water keys (suffix "_max_ns"), which
// take the maximum — and the skew monitor is appended: per-shard routed-op
// counts plus the max/mean imbalance ratio. A perfectly balanced workload
// reports shard_imbalance_x100 == 100; a hot shard drives it up, which is
// the signal a future rebalancing PR (and today's operators) act on.
func (t *ALT) StatsMap() map[string]int64 {
	r := t.route.Load()
	out := make(map[string]int64, 32)
	for i := range r.shards {
		for k, v := range r.shards[i].ix.StatsMap() {
			if strings.HasSuffix(k, "_max_ns") {
				if v > out[k] {
					out[k] = v
				}
			} else {
				out[k] += v
			}
		}
	}

	// The epoch domain is shared across shards, so the summed epoch_*
	// keys counted it once per shard; overwrite them with the single
	// domain's snapshot. (arena_* keys stay summed — each shard owns its
	// own slot-block arena.)
	es := t.ebr.Stats()
	out["epoch_current"] = int64(es.Epoch)
	out["limbo_models"] = es.LimboCount
	out["limbo_bytes"] = es.LimboBytes
	out["reclaims"] = es.Reclaims

	// Rebalance counters: lifetime splits/merges, total keys migrated and
	// the last migration's wall-clock cost. Emitted (as zeros) even with
	// the controller disarmed, so dashboards and smoke tests can key on
	// their presence.
	out["rebalance_splits"] = t.rebSplits.Load()
	out["rebalance_merges"] = t.rebMerges.Load()
	out["rebalance_moved_keys"] = t.rebMoved.Load()
	out["rebalance_last_ms"] = t.rebLastMs.Load()
	out["rebalance_total_ms"] = t.rebTotalMs.Load()

	ns := int64(r.last + 1)
	out["shards"] = ns
	var total, max int64
	for i := range r.shards {
		ops := r.shards[i].ops.Load()
		out[fmt.Sprintf("shard_ops_%02d", i)] = ops
		total += ops
		if ops > max {
			max = ops
		}
	}
	mean := total / ns
	out["shard_ops_total"] = total
	out["shard_ops_max"] = max
	out["shard_ops_mean"] = mean
	if mean > 0 {
		out["shard_imbalance_x100"] = max * 100 / mean
	}
	return out
}
