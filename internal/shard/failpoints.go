package shard

import "altindex/internal/failpoint"

// Failpoint site in the routing layer (active only under -tags failpoint;
// no-op stubs otherwise). Specs are armed by name via failpoint.Enable.
//
//	shard/route — fires after an operation loads the routing table and
//	before it resolves its target shard. Delaying or yielding here lets a
//	chaos test wedge a lookup between routing and the shard-local probe
//	while that shard's retrainer splices (core/retrain/splice), the race
//	the seqlock protocol must absorb across the sharding boundary.
var fpRoute = failpoint.New("shard/route")
