package shard

import "altindex/internal/failpoint"

// Failpoint site in the routing layer (active only under -tags failpoint;
// no-op stubs otherwise). Specs are armed by name via failpoint.Enable.
//
//	shard/route — fires after an operation loads the routing table and
//	before it resolves its target shard. Delaying or yielding here lets a
//	chaos test wedge a lookup between routing and the shard-local probe
//	while that shard's retrainer splices (core/retrain/splice), the race
//	the seqlock protocol must absorb across the sharding boundary.
var fpRoute = failpoint.New("shard/route")

// Rebalance-migration sites (migrate.go).
//
//	shard/rebalance/migrate — fires at the start of each source shard's
//	drain, after the writer barrier redirected writes through the
//	migration log. Delaying here stretches the window where concurrent
//	writes pile into the redo log, stressing the catch-up replay.
//
//	shard/rebalance/publish — fires under the migration mutex immediately
//	before the rebalanced router is stored and the migration is marked
//	done. Delaying here stretches the short publish lock, wedging
//	redirected writers against the router swap — the torn-router window a
//	chaos audit must prove empty.
var (
	fpRebalMigrate = failpoint.New("shard/rebalance/migrate")
	fpRebalPublish = failpoint.New("shard/rebalance/publish")
)
