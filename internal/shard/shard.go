// Package shard range-partitions the keyspace across S independent
// core.ALT instances behind an immutable learned boundary router — the
// partitioned front-end the paper's multi-core evaluation (§IV, Fig 9)
// implies and "Are Updatable Learned Indexes Ready?" (arXiv:2207.02900)
// identifies as the remedy for single-root contention: one copy-on-write
// model table, one retraining pipeline and one ART fallback per SHARD
// instead of per index, so directory publishes, retraining freezes and
// conflict-tree traffic stay shard-local.
//
// Boundaries are equal-depth quantiles of the bulkload key sample
// (internal/gpl's sampled-CDF helpers), so shards hold equal key counts
// regardless of the distribution. Each routing generation is immutable:
// every routed operation resolves its shard with a branch-free binary
// search over at most 63 boundary keys, and immutability is what makes
// the router a single atomic pointer load with no coordination. The
// layout itself is not static, though — when Options.RebalanceFactor is
// set, a controller watches the skew monitor and republishes the router
// copy-on-write with the hot shard split at a learned CDF boundary (or
// adjacent cold shards merged), migrating the affected keys without
// stopping reads; see rebalance.go and migrate.go.
package shard

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"altindex/internal/arena"
	"altindex/internal/core"
	"altindex/internal/gpl"
	"altindex/internal/index"
)

// MaxShards caps the shard count: 63 boundary keys fit one padded probe
// array, keeping the router branch-free (six predicated steps).
const MaxShards = 64

// sampleMax bounds the bulkload key sample the boundary quantiles are
// computed from.
const sampleMax = 1 << 16

// parallelBulkMin is the bulkload size above which per-shard loads run on
// their own goroutines.
const parallelBulkMin = 1 << 16

// ALT is a range-sharded ALT-index: it implements the same concurrent
// ordered-map surface as core.ALT (index.Concurrent, index.Batcher,
// scans, stats) by routing every operation to one of S core.ALT shards.
// Create with New; safe for concurrent use after Bulkload.
type ALT struct {
	opts core.Options // per-shard options: Shards cleared, RetrainGate + Reclaim set
	gate chan struct{}
	// ebr is the reclamation domain shared by every shard (and every
	// routing generation): one epoch clock for the whole index, so a
	// reader pinned in any shard defers reclamation everywhere, and
	// retired routers ride the same limbo lists as retired models.
	ebr *arena.Domain
	// fixed pins the boundaries across Bulkload (snapshot restore): the
	// stored layout is reproduced instead of recomputing quantiles.
	fixed bool
	// rb is the adaptive rebalance controller (nil when
	// Options.RebalanceFactor is zero); see rebalance.go.
	rb *rebalancer
	// layoutMu serialises layout replacements: reshard migrations and
	// Bulkload both publish a whole new routing, so only one may be in
	// flight at a time.
	layoutMu sync.Mutex
	// Rebalance lifetime counters (exposed via StatsMap as rebalance_*).
	// They live on the front, not the controller, so forced migrations
	// (SplitShard/MergeShards/SetBounds in tests and recovery) count too.
	rebSplits  atomic.Int64
	rebMerges  atomic.Int64
	rebMoved   atomic.Int64
	rebLastMs  atomic.Int64
	rebTotalMs atomic.Int64

	// barrierHelp is non-zero while a migration's writer barrier waits on
	// an epoch advance. The routed hot path checks it in bump and lends a
	// hand (every 32nd op per shard tries an epoch advance): with
	// GOMAXPROCS saturated by workers, the barrier goroutine alone only
	// gets a crank attempt per scheduler round-trip (~100ms behind 8
	// CPU-bound goroutines), which made the barrier — not the data copy —
	// dominate migration wall time.
	barrierHelp atomic.Int32

	route atomic.Pointer[routing]
}

var (
	_ index.Concurrent = (*ALT)(nil)
	_ index.Batcher    = (*ALT)(nil)
	_ index.Stats      = (*ALT)(nil)
)

// routing is the immutable router: boundary keys plus the shard
// descriptors. Replaced wholesale (atomically) by Bulkload, never mutated.
type routing struct {
	// pad holds the S-1 boundary keys padded to 63 entries with MaxUint64
	// sentinels, the shape the branch-free probe ladder needs. Shard i
	// owns keys k with pad[i-1] <= k < pad[i]; shard 0 also owns
	// everything below pad[0].
	pad  [MaxShards - 1]uint64
	last int // S-1, the highest shard id
	// shards are the per-shard descriptors, each padded to its own cache
	// lines so one shard's op counter never false-shares with a
	// neighbour's descriptor.
	shards []shardDesc
}

// shardDesc pairs one shard with its skew-monitor counter, padded so
// descriptors of different shards sit on distinct cache lines.
type shardDesc struct {
	ix *core.ALT
	// ops counts operations routed to this shard (batch items count
	// individually) — the skew monitor the rebalance controller reads.
	ops atomic.Int64
	// mig, when non-nil, marks the shard as part of an in-flight (or
	// completed) boundary migration: writers apply-and-log through it
	// instead of writing the shard directly (see migrate.go). Stays set
	// forever on a retired routing's source descriptors so a stale writer
	// can never apply to a drained shard. Reads never look at it.
	mig atomic.Pointer[migration]
	_   [128 - 24]byte
}

// rebuildBudget is the default shared-rebuild-slot count, matching the
// worker-pool default of a single core.ALT: the sharded index as a whole
// gets the same background rebuild parallelism as one unsharded index.
func rebuildBudget() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}

// clampShards normalizes a requested shard count into [1, MaxShards].
func clampShards(s int) int {
	if s < 1 {
		s = 1
	}
	if s > MaxShards {
		s = MaxShards
	}
	return s
}

// New returns an empty sharded index with opts.Shards shards (clamped to
// [1, MaxShards]). Until Bulkload the boundaries are equal-width splits of
// the uint64 domain; Bulkload replaces them with equal-depth CDF
// quantiles of the loaded keys. The per-shard options are opts with
// Shards cleared and a shared RetrainGate injected (unless the caller
// already provided one), so all shards draw rebuild slots from one
// budget.
func New(opts core.Options) *ALT {
	s := clampShards(opts.Shards)
	t := newFront(opts)
	t.route.Store(t.newRouting(gpl.EqualWidthBounds(s)))
	t.startRebalancer(opts)
	return t
}

// NewWithBounds returns an empty sharded index with len(bounds)+1 shards
// using the given boundary keys, which must be non-decreasing (duplicates
// delimit permanently empty shards). The boundaries are pinned: Bulkload
// keeps them instead of recomputing quantiles. Used by snapshot restore
// to reproduce a saved layout exactly.
func NewWithBounds(opts core.Options, bounds []uint64) (*ALT, error) {
	if len(bounds)+1 > MaxShards {
		return nil, index.ErrUnsortedBulk // impossible via Save; caller validates
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return nil, index.ErrUnsortedBulk
		}
	}
	t := newFront(opts)
	t.fixed = true
	t.route.Store(t.newRouting(bounds))
	t.startRebalancer(opts)
	return t, nil
}

func newFront(opts core.Options) *ALT {
	gate := opts.RetrainGate
	if gate == nil {
		gate = make(chan struct{}, rebuildBudget())
	}
	dom := opts.Reclaim
	if dom == nil {
		dom = arena.NewDomain()
	}
	child := opts
	child.Shards = 0
	child.RetrainGate = gate
	child.Reclaim = dom
	return &ALT{opts: child, gate: gate, ebr: dom}
}

// newRouting builds a fresh routing table with len(bounds)+1 empty shards.
func (t *ALT) newRouting(bounds []uint64) *routing {
	r := &routing{last: len(bounds)}
	for i := range r.pad {
		r.pad[i] = ^uint64(0)
	}
	copy(r.pad[:], bounds)
	r.shards = make([]shardDesc, len(bounds)+1)
	for i := range r.shards {
		r.shards[i].ix = core.New(t.opts)
	}
	return r
}

// shardOf routes a key: the number of boundaries <= key, computed with a
// branch-free probe ladder over the padded boundary array (six predicated
// steps; the compiler lowers each `if` to a conditional move). The
// MaxUint64 sentinels are only ever counted for key == MaxUint64, which
// the final clamp routes to the last shard.
func (r *routing) shardOf(key uint64) int {
	p := 0
	if r.pad[p+31] <= key {
		p += 32
	}
	if r.pad[p+15] <= key {
		p += 16
	}
	if r.pad[p+7] <= key {
		p += 8
	}
	if r.pad[p+3] <= key {
		p += 4
	}
	if r.pad[p+1] <= key {
		p += 2
	}
	if r.pad[p] <= key {
		p++
	}
	if p > r.last {
		p = r.last
	}
	return p
}

// descOf resolves a key's shard descriptor under the current routing.
func (r *routing) descOf(key uint64) *shardDesc {
	return &r.shards[r.shardOf(key)]
}

// Bounds returns a copy of the S-1 boundary keys (empty for S=1).
// Snapshots persist them so Load can reproduce the layout.
func (t *ALT) Bounds() []uint64 {
	r := t.route.Load()
	return append([]uint64(nil), r.pad[:r.last]...)
}

// Shards returns the shard count.
func (t *ALT) Shards() int { return t.route.Load().last + 1 }

// Name implements index.Concurrent.
func (t *ALT) Name() string { return "ALT-sharded" }

// Len returns the number of live keys across all shards.
func (t *ALT) Len() int {
	r := t.route.Load()
	n := 0
	for i := range r.shards {
		n += r.shards[i].ix.Len()
	}
	return n
}

// Bulkload replaces the index contents: boundaries are recomputed as
// equal-depth quantiles of a key sample (unless pinned by NewWithBounds),
// the sorted input is split by boundary, and each shard bulkloads its
// slice — in parallel for large loads, since the slices are disjoint.
// Like core.ALT's, this is a construction-time operation: call it before
// the index is shared.
func (t *ALT) Bulkload(pairs []index.KV) error {
	// Validate up front so a rejected load leaves the contents untouched.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			return index.ErrUnsortedBulk
		}
	}
	// One layout replacement at a time: a rebalance migration racing this
	// publish would lose one of the two routings.
	t.layoutMu.Lock()
	defer t.layoutMu.Unlock()
	old := t.route.Load()
	s := old.last + 1
	bounds := old.pad[:old.last]
	if !t.fixed && len(pairs) > 0 {
		keys := make([]uint64, len(pairs))
		for i := range pairs {
			keys[i] = pairs[i].Key
		}
		bounds = gpl.EqualDepthBounds(gpl.SampleKeys(keys, sampleMax), s)
	}
	nr := t.newRouting(bounds)

	// Split the sorted input at each boundary; shard i gets keys in
	// [bounds[i-1], bounds[i]).
	split := make([]int, s+1)
	split[s] = len(pairs)
	lo := 0
	for i := 0; i+1 < s; i++ {
		b := bounds[i]
		lo += sort.Search(len(pairs)-lo, func(j int) bool { return pairs[lo+j].Key >= b })
		split[i+1] = lo
	}

	errs := make([]error, s)
	if len(pairs) >= parallelBulkMin && s > 1 {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = nr.shards[i].ix.Bulkload(pairs[split[i]:split[i+1]])
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < s; i++ {
			errs[i] = nr.shards[i].ix.Bulkload(pairs[split[i]:split[i+1]])
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Publish the new generation, then retire the old router onto the
	// shared epoch domain: its shards' background machinery (and, through
	// each shard's own retirement path, their slot-block arenas) is torn
	// down only after every reader that could still hold the old routing
	// pointer has unpinned. Bulkload is contractually pre-concurrency, so
	// this usually frees on the spot — the limbo ride is the belt for the
	// snapshot-reload and test harnesses that skate the contract's edge.
	t.route.Store(nr)
	t.ebr.Retire(0, func() {
		for i := range old.shards {
			_ = old.shards[i].ix.Close()
		}
	})
	return nil
}

// Get routes the lookup to its shard. Reads never look at the migration
// pointer: until the rebalanced router is published they read the source
// shard (which stays fully readable while draining), afterwards they
// route through the new layout — stop-free by construction.
func (t *ALT) Get(key uint64) (uint64, bool) {
	r := t.route.Load()
	fpRoute.Inject()
	d := r.descOf(key)
	t.bump(d, 1)
	return d.ix.Get(key)
}

// Insert routes the upsert to its shard. Writes (unlike reads) pin the
// shared epoch domain across the route-load → apply window and check the
// descriptor's migration pointer: the pin is what lets a starting
// migration wait out every writer that could still apply to the old
// shard unredirected (see (*ALT).writerBarrier), and the pointer is how
// later writers redirect through the migration's apply-and-log path.
func (t *ALT) Insert(key, value uint64) error {
	g := t.ebr.Pin()
	defer g.Unpin()
	for {
		r := t.route.Load()
		fpRoute.Inject()
		d := r.descOf(key)
		t.bump(d, 1)
		m := d.mig.Load()
		if m == nil {
			return d.ix.Insert(key, value)
		}
		if err, ok := m.insert(d.ix, key, value); ok {
			return err
		}
		// Migration published a new layout under us: re-route and retry.
	}
}

// Update routes the in-place overwrite to its shard; migration-aware
// like Insert.
func (t *ALT) Update(key, value uint64) bool {
	g := t.ebr.Pin()
	defer g.Unpin()
	for {
		r := t.route.Load()
		fpRoute.Inject()
		d := r.descOf(key)
		t.bump(d, 1)
		m := d.mig.Load()
		if m == nil {
			return d.ix.Update(key, value)
		}
		if done, ok := m.update(d.ix, key, value); ok {
			return done
		}
	}
}

// Remove routes the deletion to its shard; migration-aware like Insert.
func (t *ALT) Remove(key uint64) bool {
	g := t.ebr.Pin()
	defer g.Unpin()
	for {
		r := t.route.Load()
		fpRoute.Inject()
		d := r.descOf(key)
		t.bump(d, 1)
		m := d.mig.Load()
		if m == nil {
			return d.ix.Remove(key)
		}
		if found, ok := m.remove(d.ix, key); ok {
			return found
		}
	}
}

// bump advances a shard's skew-monitor counter by n routed ops and, when
// the rebalance controller is armed, kicks an evaluation each time the
// counter crosses its op threshold — the "routed-op threshold" trigger
// that reacts to a traffic spike faster than the ticker alone.
func (t *ALT) bump(d *shardDesc, n int64) {
	c := d.ops.Add(n)
	if rb := t.rb; rb != nil && c&^rb.kickMask != (c-n)&^rb.kickMask {
		rb.kickNow()
	}
	// Barrier assist: while a migration waits for the pre-marker writers
	// to drain, routed traffic cranks the epoch so the advance doesn't
	// have to wait for the barrier goroutine's next timeslice. Writers
	// call this pinned in the current epoch, which never blocks the
	// previous bucket's advance.
	if t.barrierHelp.Load() != 0 && c&31 == 0 {
		t.ebr.TryAdvance()
	}
}

// MemoryUsage sums the shards plus the router itself.
func (t *ALT) MemoryUsage() uintptr {
	r := t.route.Load()
	total := uintptr(len(r.pad)*8) + uintptr(len(r.shards))*unsafeSizeofDesc
	for i := range r.shards {
		total += r.shards[i].ix.MemoryUsage()
	}
	return total
}

const unsafeSizeofDesc = 128 // shardDesc is padded to exactly two cache lines

// Quiesce drains every shard's retraining pipeline; see core.ALT.Quiesce
// for the contract. Holding the layout lock keeps a rebalance migration
// from replacing the routing mid-drain, so the state observed afterwards
// is a settled layout.
func (t *ALT) Quiesce() {
	t.layoutMu.Lock()
	defer t.layoutMu.Unlock()
	r := t.route.Load()
	for i := range r.shards {
		r.shards[i].ix.Quiesce()
	}
}

// Close stops the rebalance controller (waiting out any in-flight
// migration) and every shard's background retraining machinery. The data
// stays readable and writable; implements io.Closer like core.ALT.
func (t *ALT) Close() error {
	if t.rb != nil {
		t.rb.stopWait()
	}
	t.layoutMu.Lock()
	defer t.layoutMu.Unlock()
	r := t.route.Load()
	for i := range r.shards {
		_ = r.shards[i].ix.Close()
	}
	return nil
}
