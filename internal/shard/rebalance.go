package shard

import (
	"sync"
	"time"

	"altindex/internal/core"
	"altindex/internal/gpl"
)

// Rebalance controller: closes the skew-monitor loop. PR 4's router
// records per-shard routed-op counters (shard_ops_*, shard_imbalance_x100
// in StatsMap) but never acted on them; the controller watches those
// counters on a ticker — and on a routed-op threshold, so a traffic spike
// is noticed before the next tick — and when the max/mean imbalance stays
// above Options.RebalanceFactor for RebalanceWindows consecutive windows
// it splits the hot shard at a learned CDF boundary (an equal-depth cut
// of the shard's sampled resident keys). When the router budget is
// exhausted, or an adjacent pair of shards has gone cold, it merges
// instead, keeping the layout within MaxShards. The migrations themselves
// are stop-free (migrate.go).

const (
	defaultRebalInterval = 500 * time.Millisecond
	defaultRebalWindows  = 3
	defaultRebalMinOps   = 16384

	// kickThreshold is the routed-op stride at which a shard's counter
	// crossing kicks an out-of-band evaluation (power of two: the bump
	// hook masks rather than divides).
	kickThreshold = 1 << 14

	// splitSampleMax bounds the resident-key sample split boundaries are
	// computed from.
	splitSampleMax = 4096

	// defaultMinSplit is the Options.RebalanceMinSplit default: the
	// resident-key count where bulkload's derived error bound (n/1000)
	// reaches its floor of 16. Splitting below it cannot tighten a
	// shard's prediction windows.
	defaultMinSplit = 16384

	// maxSplitWays caps how many pieces one controller split produces.
	// A multi-way split costs the same single migration (one writer
	// barrier, one drain) as a binary one, so the controller carves a hot
	// shard to the ε floor in one step instead of a cascade.
	maxSplitWays = 8

	// coldFractionDiv: an adjacent shard pair is "cold" when its combined
	// window traffic is under a 1/coldFractionDiv fraction of the mean
	// per-shard traffic.
	coldFractionDiv = 4

	// mergeSlack is how far past its armed shard count the layout may
	// grow before the controller starts merging cold pairs back. Merges
	// are budget reclamation, not housekeeping: each one costs a full
	// migration (writer barrier included), so the layout gets room to
	// breathe across a few hot-range generations instead of the
	// controller churning a merge for every split.
	mergeSlack = 2 * maxSplitWays
)

// rebalancer runs the evaluation loop on its own goroutine. All mutable
// state (baseline counters, consecutive-window runs) is goroutine-local;
// the hot path only touches kickMask and the kick channel.
type rebalancer struct {
	t          *ALT
	factorX100 int64
	windows    int
	interval   time.Duration
	minOps     int64
	minSplit   int
	kickMask   int64

	// home is the shard count the controller was armed with. Merges only
	// reclaim layout the controller itself grew (ns > home): the
	// configured partition is the embedder's floor, and an index that
	// never split has nothing worth a migration to take back.
	home int

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// Evaluation state, owned by the run goroutine.
	lastR   *routing
	base    []int64
	cur     []int64
	hotRun  int
	coldRun int
}

// startRebalancer arms the controller when Options.RebalanceFactor asks
// for it. Factors <= 1 disable: max/mean can never fall below 1, so such
// a threshold would be always-on noise rather than a skew signal.
func (t *ALT) startRebalancer(opts core.Options) {
	if opts.RebalanceFactor <= 1 {
		return
	}
	rb := &rebalancer{
		t:          t,
		factorX100: int64(opts.RebalanceFactor * 100),
		windows:    opts.RebalanceWindows,
		interval:   opts.RebalanceInterval,
		minOps:     opts.RebalanceMinOps,
		minSplit:   opts.RebalanceMinSplit,
		kickMask:   kickThreshold - 1,
		home:       t.Shards(),
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if rb.windows <= 0 {
		rb.windows = defaultRebalWindows
	}
	if rb.interval <= 0 {
		rb.interval = defaultRebalInterval
	}
	if rb.minOps <= 0 {
		rb.minOps = defaultRebalMinOps
	}
	if rb.minSplit <= 0 {
		rb.minSplit = defaultMinSplit
	}
	t.rb = rb
	go rb.run()
}

// kickNow requests an out-of-band evaluation; cheap and non-blocking, so
// the write hot path can call it on every threshold crossing.
func (rb *rebalancer) kickNow() {
	select {
	case rb.kick <- struct{}{}:
	default:
	}
}

// stopWait shuts the controller down and waits for the loop (including
// any in-flight migration it is running) to finish. Idempotent.
func (rb *rebalancer) stopWait() {
	rb.once.Do(func() { close(rb.stop) })
	<-rb.done
}

func (rb *rebalancer) run() {
	defer close(rb.done)
	tick := time.NewTicker(rb.interval)
	defer tick.Stop()
	for {
		select {
		case <-rb.stop:
			return
		case <-tick.C:
		case <-rb.kick:
		}
		rb.eval()
	}
}

// snapshot re-baselines the counters against a new routing generation:
// after any layout change (ours or a Bulkload) the old deltas are
// meaningless, so the consecutive-window runs start over.
func (rb *rebalancer) snapshot(r *routing) {
	rb.lastR = r
	if cap(rb.base) < len(r.shards) {
		rb.base = make([]int64, len(r.shards))
		rb.cur = make([]int64, len(r.shards))
	}
	rb.base = rb.base[:len(r.shards)]
	rb.cur = rb.cur[:len(r.shards)]
	for i := range r.shards {
		rb.base[i] = r.shards[i].ops.Load()
	}
	rb.hotRun, rb.coldRun = 0, 0
}

// eval closes one monitoring window: per-shard op deltas since the
// baseline, imbalance vs the factor, and — after RebalanceWindows
// consecutive over-threshold windows — one split or merge. Windows with
// fewer than minOps routed ops don't count (and don't advance the
// baseline), so an idle index never rebalances on stale ratios.
func (rb *rebalancer) eval() {
	t := rb.t
	r := t.route.Load()
	if r != rb.lastR {
		rb.snapshot(r)
		return
	}
	ns := r.last + 1
	var total, max int64
	hot := 0
	for i := 0; i < ns; i++ {
		d := r.shards[i].ops.Load() - rb.base[i]
		if d < 0 {
			d = 0
		}
		rb.cur[i] = d
		total += d
		if d > max {
			max, hot = d, i
		}
	}
	if total < rb.minOps {
		return
	}
	for i := 0; i < ns; i++ {
		rb.base[i] += rb.cur[i]
	}

	mean := total / int64(ns)
	if mean == 0 {
		return
	}
	if max*100/mean > rb.factorX100 {
		rb.hotRun++
	} else {
		rb.hotRun = 0
	}

	// Coldest adjacent pair — the merge candidate both for housekeeping
	// and for freeing router budget when a split is needed at MaxShards.
	coldPair, coldSum := -1, int64(0)
	for i := 0; i+1 < ns; i++ {
		if s := rb.cur[i] + rb.cur[i+1]; coldPair < 0 || s < coldSum {
			coldPair, coldSum = i, s
		}
	}
	if ns > 2 && coldPair >= 0 && coldSum*coldFractionDiv < mean {
		rb.coldRun++
	} else {
		rb.coldRun = 0
	}

	// Resident-key counts gate both actions: splits below the ε floor buy
	// nothing (rb.minSplit), and merges are only worth a migration when
	// the pair is cheap to move — cold does not mean small, and moving
	// half the index to reclaim one router slot is how a controller loses
	// to its own churn.
	hotLen := r.shards[hot].ix.Len()
	var totalLen int
	for i := 0; i <= r.last; i++ {
		totalLen += r.shards[i].ix.Len()
	}
	pairCheap := func(p int) bool {
		return r.shards[p].ix.Len()+r.shards[p+1].ix.Len() <= totalLen/ns
	}

	switch {
	case rb.hotRun >= rb.windows:
		rb.hotRun = 0
		// Budget reclamation rides along with the split: under sustained
		// skew this branch wins every evaluation, so the standalone cold
		// path below would never run — yet a moving hot range keeps
		// abandoning fine shards behind itself. Once the layout has grown
		// mergeSlack past its armed size, merging the coldest adjacent
		// pair (when it is cold and cheap) reclaims router budget and
		// keeps the layout tracking the skew instead of monotonically
		// growing to MaxShards.
		if ns > rb.home+mergeSlack && coldPair >= 0 && coldPair != hot && coldPair+1 != hot &&
			coldSum*coldFractionDiv < mean && pairCheap(coldPair) {
			if t.MergeShards(coldPair) == nil {
				if coldPair+1 < hot {
					hot--
				}
				ns--
			}
		}
		switch {
		case hotLen < 2*rb.minSplit:
			// ε floor: every piece of a split must keep at least minSplit
			// resident keys. A hot shard this small already runs at the
			// minimum error bound; leave it alone.
		case ns < MaxShards:
			// One migration, carved straight to the ε floor: a multi-way
			// split costs the same barrier and drain as a binary one.
			ways := hotLen / rb.minSplit
			if ways > maxSplitWays {
				ways = maxSplitWays
			}
			if ways > MaxShards-ns+1 {
				ways = MaxShards - ns + 1
			}
			if ways < 2 {
				ways = 2
			}
			_ = t.splitWays(hot, ways)
		case coldPair >= 0 && coldPair != hot && coldPair+1 != hot && pairCheap(coldPair):
			// Budget exhausted and the ride-along merge didn't fire: free
			// a slot by merging the least-loaded pair if that is cheap;
			// the still-hot shard splits on a later window.
			_ = t.MergeShards(coldPair)
		}
	case rb.coldRun >= rb.windows:
		rb.coldRun = 0
		if ns > rb.home+mergeSlack && coldPair != hot && coldPair+1 != hot && pairCheap(coldPair) {
			_ = t.MergeShards(coldPair)
		}
	}
	// An action published a new routing; the next eval re-baselines via
	// the lastR identity check.
}

// splitBounds picks the learned CDF cuts for splitting a shard into up
// to `ways` pieces: equal-depth quantiles of its sampled resident keys,
// deduplicated to strictly ascending cuts above the smallest sample so
// every piece is non-empty. ok=false when the shard holds too few
// distinct keys for even one such cut.
func splitBounds(ix *core.ALT, ways int) ([]uint64, bool) {
	keys := gpl.SampleKeys(ix.ResidentKeys(splitSampleMax), splitSampleMax)
	if len(keys) < 4*ways {
		// Not enough sample mass for this fan-out; fall back to a binary
		// cut before giving up entirely.
		if ways <= 2 || len(keys) < 8 {
			return nil, false
		}
		return splitBounds(ix, 2)
	}
	b := gpl.EqualDepthBounds(keys, ways)
	out := b[:0]
	for _, c := range b {
		if c > keys[0] && (len(out) == 0 || c > out[len(out)-1]) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}
