//go:build failpoint

// Chaos scenario for stop-free boundary migration: every migration's
// drain is stretched (shard/rebalance/migrate) so concurrent writes pile
// into the redo log, and the publish is stretched under the migration
// mutex (shard/rebalance/publish) so redirected writers wedge against the
// router swap — the torn-router window the audit must prove empty.
package shard_test

import (
	"fmt"
	"testing"

	"altindex/internal/failpoint"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/shard"
	"altindex/internal/xrand"
)

func TestRebalanceChaosStretchedMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not -short")
	}
	const cycles = 200
	const (
		writers   = 4
		bulkKeys  = 1 << 12
		keyStride = 64
		opsPerW   = 4000
	)

	idx := loadShardedGrid(t, bulkKeys, keyStride)

	// Stretch both migration windows: each source drain pauses after the
	// writer barrier (writes now redirect through the redo log), and a
	// quarter of publishes stall holding the migration mutex.
	for site, spec := range map[string]string{
		"shard/rebalance/migrate": "delay(300us)",
		"shard/rebalance/publish": "25%delay(200us)",
	} {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	type finalState struct {
		val  uint64
		live bool
	}
	finals := make([]map[uint64]finalState, writers)
	stop := make(chan struct{})
	errc := make(chan error, writers+2)
	done := make(chan struct{}, writers)

	for w := 0; w < writers; w++ {
		finals[w] = make(map[uint64]finalState)
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := xrand.New(uint64(0xD00D*w + 3))
			mine := finals[w]
			for op := 0; op < opsPerW; op++ {
				gi := uint64(rng.Intn(bulkKeys*2))*uint64(writers) + uint64(w)
				k := gi*keyStride + 7
				v := uint64(op)<<8 | uint64(w)
				switch rng.Intn(10) {
				case 0:
					idx.Remove(k)
					mine[k] = finalState{}
				case 1, 2:
					batch := make([]index.KV, 0, 16)
					for j := uint64(0); j < 16; j++ {
						bk := (gi+j*uint64(writers))*keyStride + 7
						batch = append(batch, index.KV{Key: bk, Value: v + j})
					}
					if err := idx.InsertBatch(batch); err != nil {
						errc <- err
						return
					}
					for j, kv := range batch {
						mine[kv.Key] = finalState{val: v + uint64(j), live: true}
					}
				default:
					if err := idx.Insert(k, v); err != nil {
						errc <- err
						return
					}
					mine[k] = finalState{val: v, live: true}
				}
			}
		}(w)
	}

	// Reader: immutable sentinels must read exactly and scans must stay
	// strictly ascending across every stretched router swap.
	go func() {
		rng := xrand.New(0xCAFE)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := uint64(rng.Intn(bulkKeys))
			if v, ok := idx.Get(i*keyStride + 31); !ok || v != i*3+1 {
				errc <- fmt.Errorf("sentinel %d = (%d,%v), want %d", i*keyStride+31, v, ok, i*3+1)
				return
			}
			var prev uint64
			n := 0
			start := uint64(rng.Intn(bulkKeys)) * keyStride
			idx.Scan(start, 128, func(k, _ uint64) bool {
				if (n > 0 && k <= prev) || k < start {
					errc <- fmt.Errorf("scan order violation: %d after %d (start %d)", k, prev, start)
					return false
				}
				prev, n = k, n+1
				return true
			})
		}
	}()

	rng := xrand.New(0x1DEA)
	for c := 0; c < cycles; c++ {
		ns := idx.Shards()
		if c%2 == 0 && ns < shard.MaxShards {
			_ = idx.SplitShard(rng.Intn(ns)) // "too few keys" is acceptable
		} else if ns > 1 {
			if err := idx.MergeShards(rng.Intn(ns - 1)); err != nil {
				t.Fatalf("cycle %d: MergeShards: %v", c, err)
			}
		}
	}

	for w := 0; w < writers; w++ {
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-done:
		}
	}
	close(stop)
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if failpoint.Hits("shard/rebalance/migrate") == 0 {
		t.Fatal("migrate failpoint never fired: the drains ran unstretched")
	}
	if failpoint.Hits("shard/rebalance/publish") == 0 {
		t.Fatal("publish failpoint never fired: the publishes ran unstretched")
	}

	want := gridWant(bulkKeys, keyStride)
	for _, mine := range finals {
		for k, fs := range mine {
			if fs.live {
				want[k] = fs.val
			} else {
				delete(want, k)
			}
		}
	}
	for _, bad := range indextest.Audit(idx, want) {
		t.Error(bad)
	}
}
