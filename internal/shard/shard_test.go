package shard

import (
	"math/rand"
	"sort"
	"testing"

	"altindex/internal/core"
	"altindex/internal/index"
)

func pairsOf(keys []uint64) []index.KV {
	out := make([]index.KV, len(keys))
	for i, k := range keys {
		out[i] = index.KV{Key: k, Value: k * 3}
	}
	return out
}

func sortedKeys(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	m := map[uint64]struct{}{}
	for len(m) < n {
		m[r.Uint64()] = struct{}{}
	}
	keys := make([]uint64, 0, n)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TestShardRouterMatchesSearch checks the branch-free probe ladder against
// the reference upper-bound binary search for every shard count and a mix
// of random, boundary and extreme keys.
func TestShardRouterMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for s := 1; s <= MaxShards; s++ {
		bounds := make([]uint64, s-1)
		for i := range bounds {
			bounds[i] = rng.Uint64()
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		ix := New(core.Options{Shards: s})
		if got := ix.Shards(); got != s {
			t.Fatalf("Shards() = %d, want %d", got, s)
		}
		// Install the random bounds via the pinned-bounds constructor so
		// the probe array under test is arbitrary, not equal-width.
		ix.Close()
		ix2, err := NewWithBounds(core.Options{}, bounds)
		if err != nil {
			t.Fatal(err)
		}
		r := ix2.route.Load()
		probe := make([]uint64, 0, 2*s+64)
		for i := 0; i < 64; i++ {
			probe = append(probe, rng.Uint64())
		}
		probe = append(probe, 0, 1, ^uint64(0), ^uint64(0)-1)
		for _, b := range bounds {
			probe = append(probe, b, b-1, b+1)
		}
		for _, k := range probe {
			want := sort.Search(len(bounds), func(i int) bool { return bounds[i] > k })
			if want > r.last {
				want = r.last
			}
			if got := r.shardOf(k); got != want {
				t.Fatalf("s=%d shardOf(%d) = %d, want %d (bounds %v)", s, k, got, want, bounds)
			}
		}
		ix2.Close()
	}
}

// TestShardBulkloadBalance checks that CDF-quantile boundaries spread a
// skewed dataset evenly: after bulkloading, every shard holds within 20%
// of the mean key count.
func TestShardBulkloadBalance(t *testing.T) {
	// Clustered keys: a distribution equal-width bounds would hash to one
	// or two shards.
	var keys []uint64
	base := uint64(1) << 40
	for i := 0; i < 50000; i++ {
		keys = append(keys, base+uint64(i)*7)
	}
	for _, s := range []int{2, 5, 8} {
		ix := New(core.Options{Shards: s})
		if err := ix.Bulkload(pairsOf(keys)); err != nil {
			t.Fatal(err)
		}
		r := ix.route.Load()
		mean := len(keys) / s
		for i := range r.shards {
			n := r.shards[i].ix.Len()
			if n < mean*8/10 || n > mean*12/10 {
				t.Fatalf("s=%d shard %d holds %d keys, mean %d", s, i, n, mean)
			}
		}
		ix.Close()
	}
}

// TestShardBulkloadUnsortedRejected checks a bad load leaves prior
// contents untouched.
func TestShardBulkloadUnsortedRejected(t *testing.T) {
	ix := New(core.Options{Shards: 4})
	defer ix.Close()
	if err := ix.Bulkload(pairsOf([]uint64{10, 20, 30})); err != nil {
		t.Fatal(err)
	}
	if err := ix.Bulkload([]index.KV{{Key: 5, Value: 1}, {Key: 4, Value: 2}}); err != index.ErrUnsortedBulk {
		t.Fatalf("unsorted bulkload: err = %v, want ErrUnsortedBulk", err)
	}
	if ix.Len() != 3 {
		t.Fatalf("failed bulkload disturbed contents: Len = %d, want 3", ix.Len())
	}
	if v, ok := ix.Get(20); !ok || v != 60 {
		t.Fatalf("Get(20) = (%d,%v) after failed bulkload", v, ok)
	}
}

// TestShardScanStitch checks scans concatenate across shard boundaries in
// order, honor the budget, and stop early when the callback declines.
func TestShardScanStitch(t *testing.T) {
	keys := sortedKeys(20000, 4)
	ix := New(core.Options{Shards: 7})
	defer ix.Close()
	if err := ix.Bulkload(pairsOf(keys)); err != nil {
		t.Fatal(err)
	}
	starts := []uint64{0, keys[0], keys[len(keys)/2] + 1, keys[len(keys)-1], ^uint64(0)}
	for _, b := range ix.Bounds() {
		starts = append(starts, b-1, b, b+1)
	}
	for _, start := range starts {
		for _, n := range []int{1, 100, 5000} {
			var got []uint64
			ret := ix.Scan(start, n, func(k, v uint64) bool {
				if v != k*3 {
					t.Fatalf("Scan value mismatch at %d", k)
				}
				got = append(got, k)
				return true
			})
			if ret != len(got) {
				t.Fatalf("Scan returned %d, visited %d", ret, len(got))
			}
			first := sort.Search(len(keys), func(i int) bool { return keys[i] >= start })
			want := keys[first:]
			if len(want) > n {
				want = want[:n]
			}
			if len(got) != len(want) {
				t.Fatalf("Scan(%d,%d) visited %d keys, want %d", start, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Scan(%d,%d)[%d] = %d, want %d", start, n, i, got[i], want[i])
				}
			}
		}
	}
	// Early stop: callback declines after 3 pairs.
	seen := 0
	ix.Scan(0, 1000, func(uint64, uint64) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early-stop scan visited %d pairs, want 3", seen)
	}
}

// TestShardRange checks the iterator form agrees with Scan across shard
// boundaries.
func TestShardRange(t *testing.T) {
	keys := sortedKeys(3000, 5)
	ix := New(core.Options{Shards: 4})
	defer ix.Close()
	if err := ix.Bulkload(pairsOf(keys)); err != nil {
		t.Fatal(err)
	}
	i := 1000
	for k, v := range ix.Range(keys[1000]) {
		if k != keys[i] || v != k*3 {
			t.Fatalf("Range[%d] = (%d,%d), want (%d,%d)", i, k, v, keys[i], keys[i]*3)
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("Range visited %d keys, want %d", i-1000, len(keys)-1000)
	}
}

// TestShardStatsAggregation checks StatsMap sums counters, maxes the
// freeze high-water mark, and reports the skew monitor.
func TestShardStatsAggregation(t *testing.T) {
	keys := sortedKeys(8000, 6)
	ix := New(core.Options{Shards: 4})
	defer ix.Close()
	if err := ix.Bulkload(pairsOf(keys)); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:4000] {
		ix.Get(k)
	}
	st := ix.StatsMap()
	if st["shards"] != 4 {
		t.Fatalf("shards = %d, want 4", st["shards"])
	}
	if st["learned_keys"]+st["art_keys"] != int64(len(keys)) {
		t.Fatalf("layer keys sum to %d, want %d", st["learned_keys"]+st["art_keys"], len(keys))
	}
	var sum int64
	for i := 0; i < 4; i++ {
		sum += st[[...]string{"shard_ops_00", "shard_ops_01", "shard_ops_02", "shard_ops_03"}[i]]
	}
	if sum != 4000 || st["shard_ops_total"] != 4000 {
		t.Fatalf("per-shard ops sum %d, total %d, want 4000", sum, st["shard_ops_total"])
	}
	if st["shard_ops_max"] < st["shard_ops_mean"] {
		t.Fatal("shard_ops_max below mean")
	}
	if st["shard_imbalance_x100"] < 100 {
		t.Fatalf("imbalance ratio %d < 100", st["shard_imbalance_x100"])
	}
}

// TestShardNewWithBounds checks boundary validation and that pinned
// boundaries survive Bulkload (the snapshot-restore contract).
func TestShardNewWithBounds(t *testing.T) {
	if _, err := NewWithBounds(core.Options{}, []uint64{5, 4}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
	if _, err := NewWithBounds(core.Options{}, make([]uint64, MaxShards)); err == nil {
		t.Fatal("too many bounds accepted")
	}
	bounds := []uint64{1000, 2000, 3000}
	ix, err := NewWithBounds(core.Options{}, bounds)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// Keys deliberately clustered below the first pinned bound: quantile
	// recomputation would move the boundaries, pinning must not.
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := ix.Bulkload(pairsOf(keys)); err != nil {
		t.Fatal(err)
	}
	got := ix.Bounds()
	if len(got) != len(bounds) {
		t.Fatalf("Bounds() len %d, want %d", len(got), len(bounds))
	}
	for i := range bounds {
		if got[i] != bounds[i] {
			t.Fatalf("bound %d moved: %d != %d", i, got[i], bounds[i])
		}
	}
	if v, ok := ix.Get(499); !ok || v != 499*3 {
		t.Fatalf("Get(499) = (%d,%v)", v, ok)
	}
}

// TestShardBatchAcrossBoundaries checks the counting-sort split: batches
// spanning every shard, with duplicates (last-writer-wins) and sizes on
// both sides of the per-key and fan-out thresholds.
func TestShardBatchAcrossBoundaries(t *testing.T) {
	keys := sortedKeys(10000, 7)
	ix := New(core.Options{Shards: 7})
	defer ix.Close()
	if err := ix.Bulkload(pairsOf(keys)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, splitMin - 1, splitMin, 100, fanoutMin, fanoutMin + 13} {
		// Mixed present/absent lookups in random order.
		q := make([]uint64, n)
		for i := range q {
			if rng.Intn(2) == 0 {
				q[i] = keys[rng.Intn(len(keys))]
			} else {
				q[i] = rng.Uint64() | 1<<63
			}
		}
		vals := make([]uint64, n)
		found := make([]bool, n)
		ix.GetBatch(q, vals, found)
		for i, k := range q {
			wv, wok := ix.Get(k)
			if found[i] != wok || (wok && vals[i] != wv) {
				t.Fatalf("n=%d GetBatch[%d] key %d = (%d,%v), want (%d,%v)",
					n, i, k, vals[i], found[i], wv, wok)
			}
		}
		// Upserts with duplicate keys: the last write must win.
		pairs := make([]index.KV, n)
		for i := range pairs {
			pairs[i] = index.KV{Key: keys[rng.Intn(2000)], Value: uint64(i)}
		}
		if err := ix.InsertBatch(pairs); err != nil {
			t.Fatalf("n=%d InsertBatch: %v", n, err)
		}
		want := map[uint64]uint64{}
		for _, kv := range pairs {
			want[kv.Key] = kv.Value
		}
		for k, v := range want {
			if got, ok := ix.Get(k); !ok || got != v {
				t.Fatalf("n=%d after InsertBatch Get(%d) = (%d,%v), want %d", n, k, got, ok, v)
			}
		}
	}
}

// TestShardClampCounts checks out-of-range shard requests clamp instead of
// failing.
func TestShardClampCounts(t *testing.T) {
	for req, want := range map[int]int{-3: 1, 0: 1, 1: 1, 64: 64, 200: 64} {
		ix := New(core.Options{Shards: req})
		if got := ix.Shards(); got != want {
			t.Fatalf("Shards=%d clamped to %d, want %d", req, got, want)
		}
		ix.Close()
	}
}
