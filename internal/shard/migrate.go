package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/core"
	"altindex/internal/index"
)

// Boundary migration: replacing a contiguous run of shards [lo..hi] with
// a freshly bulkloaded set at new boundaries, without stopping reads.
//
// The protocol mirrors the retraining splice (internal/core/retrain.go):
// a long optimistic copy phase with writers redirected through a short
// lock, then a single atomic publish.
//
//  1. Install a migration marker on the source descriptors. Writers pin
//     the shared epoch domain across their route-load → apply window, so
//     one epoch barrier (writerBarrier) flushes every writer that could
//     still have read a nil marker — after it, every write to the
//     migrating range goes through the marker's apply-and-log path: the
//     op is applied to the (still live) source shard AND appended to a
//     redo log under one mutex, so log order equals apply order.
//  2. Stop the sources' background retraining (core.ALT.Close — the data
//     stays readable and writable), so the drain scan below can never
//     race a retraining freeze into a partial batch.
//  3. Drain each source with the zero-alloc batched scan into one sorted
//     pair slice, split it at the new boundaries, and bulkload the
//     replacement core.ALT instances. Ops that raced the scan are in the
//     redo log; replay is idempotent (Insert is an upsert, Remove
//     tolerates absence) and ordered, so applying them again converges.
//  4. Catch up: repeatedly swap out the redo log and replay it onto the
//     targets while writers keep running. When a round comes up empty
//     (or after a bounded number of rounds), hold the migration mutex,
//     replay the tail, publish the spliced router copy-on-write, and
//     mark the migration done — the "short publish lock": writers block
//     only for the tail replay + one pointer store.
//  5. Writers that arrive at a done migration re-route through the new
//     router and retry. The marker stays set forever, so no writer can
//     ever apply to a drained shard. The old routing and the source
//     shards retire onto the shared epoch domain's limbo, torn down only
//     after every reader that could still hold the old router unpins.

// drainBatch is the per-Scan budget of the migration drain; bounded
// batches keep the scan's pooled buffers small and re-read a fresh model
// table every round.
const drainBatch = 4096

// maxCatchUpRounds bounds the optimistic catch-up phase: if writers keep
// the redo log non-empty this long, the final round replays the tail
// under the publish lock instead of chasing convergence forever.
const maxCatchUpRounds = 8

// migOp is one logged write against a migrating range.
type migOp struct {
	key, val uint64
	del      bool
}

// migration is the redirect state shared by the source descriptors of
// one boundary migration.
type migration struct {
	mu   sync.Mutex
	log  []migOp
	done bool
}

// insert applies an upsert through the migration: under the mutex (so
// log order equals apply order) it writes the still-live source shard
// and appends the redo record. ok=false means the migration already
// published; the caller must re-route through the new router.
func (m *migration) insert(src *core.ALT, key, val uint64) (error, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return nil, false
	}
	err := src.Insert(key, val)
	if err == nil {
		m.log = append(m.log, migOp{key: key, val: val})
	}
	return err, true
}

func (m *migration) update(src *core.ALT, key, val uint64) (bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return false, false
	}
	hit := src.Update(key, val)
	if hit {
		// A successful Update is an upsert of a present key: replaying it
		// as a put preserves the final value.
		m.log = append(m.log, migOp{key: key, val: val})
	}
	return hit, true
}

func (m *migration) remove(src *core.ALT, key uint64) (bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return false, false
	}
	found := src.Remove(key)
	// Deletes are logged unconditionally: replay tolerates absence, and a
	// miss here may still need to erase a drained copy on the target.
	m.log = append(m.log, migOp{key: key, del: true})
	return found, true
}

// writerBarrier waits until every shard-level write that began before
// the migration markers were installed has finished: writers hold an
// epoch pin across route-load → apply, so once the epoch domain reclaims
// a no-op retired after the marker stores, no unredirected write can
// still be in flight.
func (t *ALT) writerBarrier() {
	var done atomic.Bool
	t.ebr.Retire(0, func() { done.Store(true) })
	// Ask the routed hot path to help crank the epoch (see bump): under a
	// saturated scheduler this goroutine's own attempts only run once per
	// scheduler round-trip, and the barrier would otherwise dominate the
	// whole migration's wall time.
	t.barrierHelp.Add(1)
	defer t.barrierHelp.Add(-1)
	for !done.Load() {
		if !t.ebr.Drain(1) {
			runtime.Gosched()
		}
	}
}

// boundsRoute routes key within a migration's target set: the number of
// new inner boundaries <= key.
func boundsRoute(inner []uint64, key uint64) int {
	return sort.Search(len(inner), func(i int) bool { return inner[i] > key })
}

// replayOps applies one swapped-out redo log chunk onto the targets, in
// log order.
func replayOps(ops []migOp, inner []uint64, targets []*core.ALT) {
	for _, op := range ops {
		tgt := targets[boundsRoute(inner, op.key)]
		if op.del {
			tgt.Remove(op.key)
		} else {
			_ = tgt.Insert(op.key, op.val)
		}
	}
}

// drainInto appends every pair of src (ascending) to buf via bounded
// scan batches and returns the extended slice. The source's retraining
// is already stopped, so no batch can be truncated by a freeze.
func drainInto(buf []index.KV, src *core.ALT) []index.KV {
	cur := uint64(0)
	for {
		n := 0
		var last uint64
		src.Scan(cur, drainBatch, func(k, v uint64) bool {
			last = k
			n++
			buf = append(buf, index.KV{Key: k, Value: v})
			return true
		})
		if n < drainBatch || last == ^uint64(0) {
			return buf
		}
		cur = last + 1
	}
}

// spliceRouting builds the post-migration router: r with shards [lo..hi]
// replaced by targets at the given inner boundaries. Surviving shards
// keep their core instances and their skew-monitor counts; replacement
// shards start fresh descriptors with nil migration markers.
func spliceRouting(r *routing, lo, hi int, inner []uint64, targets []*core.ALT) *routing {
	oldBounds := r.pad[:r.last]
	newLast := lo + len(inner) + (r.last - hi)
	nr := &routing{last: newLast}
	for i := range nr.pad {
		nr.pad[i] = ^uint64(0)
	}
	n := copy(nr.pad[:], oldBounds[:lo])
	n += copy(nr.pad[n:], inner)
	copy(nr.pad[n:], oldBounds[hi:])

	nr.shards = make([]shardDesc, newLast+1)
	for i := 0; i < lo; i++ {
		nr.shards[i].ix = r.shards[i].ix
		nr.shards[i].ops.Store(r.shards[i].ops.Load())
	}
	for j, tg := range targets {
		nr.shards[lo+j].ix = tg
	}
	for i := hi + 1; i <= r.last; i++ {
		ni := lo + len(targets) + (i - hi - 1)
		nr.shards[ni].ix = r.shards[i].ix
		nr.shards[ni].ops.Store(r.shards[i].ops.Load())
	}
	return nr
}

// reshard replaces shards [lo..hi] with len(inner)+1 shards at the given
// inner boundaries, migrating the resident keys without stopping reads
// (protocol at the top of this file). It returns the number of pairs
// moved. inner must be non-decreasing and lie within the replaced run's
// outer boundaries so the global boundary array stays non-decreasing.
func (t *ALT) reshard(lo, hi int, inner []uint64) (int, error) {
	t.layoutMu.Lock()
	r := t.route.Load()
	if lo < 0 || hi > r.last || lo > hi {
		t.layoutMu.Unlock()
		return 0, fmt.Errorf("shard: reshard [%d..%d] out of range (last %d)", lo, hi, r.last)
	}
	newCount := (r.last + 1) - (hi - lo + 1) + len(inner) + 1
	if newCount > MaxShards {
		t.layoutMu.Unlock()
		return 0, fmt.Errorf("shard: reshard would need %d shards (max %d)", newCount, MaxShards)
	}
	for i := 1; i < len(inner); i++ {
		if inner[i] < inner[i-1] {
			t.layoutMu.Unlock()
			return 0, index.ErrUnsortedBulk
		}
	}
	if len(inner) > 0 {
		if lo > 0 && inner[0] < r.pad[lo-1] {
			t.layoutMu.Unlock()
			return 0, index.ErrUnsortedBulk
		}
		if hi < r.last && inner[len(inner)-1] > r.pad[hi] {
			t.layoutMu.Unlock()
			return 0, index.ErrUnsortedBulk
		}
	}

	// 1. Redirect writers, then flush the ones that raced the markers.
	m := &migration{}
	srcs := make([]*core.ALT, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		r.shards[i].mig.Store(m)
		srcs = append(srcs, r.shards[i].ix)
	}
	t.writerBarrier()

	// 2. Freeze the sources' shape: no more retraining, so the drain scan
	// below is exhaustive. The shards stay readable and writable.
	for _, src := range srcs {
		_ = src.Close()
	}

	// 3. Drain and bulkload the replacements.
	var pairs []index.KV
	for _, src := range srcs {
		fpRebalMigrate.Inject()
		pairs = drainInto(pairs, src)
	}
	moved := len(pairs)
	nsh := len(inner) + 1
	targets := make([]*core.ALT, nsh)
	cut := 0
	for j := 0; j < nsh; j++ {
		end := len(pairs)
		if j < len(inner) {
			b := inner[j]
			end = cut + sort.Search(len(pairs)-cut, func(k int) bool { return pairs[cut+k].Key >= b })
		}
		targets[j] = core.New(t.opts)
		if err := targets[j].Bulkload(pairs[cut:end]); err != nil {
			// Drained pairs are sorted by construction; failure here means
			// a protocol bug, not bad input. Leave the old layout intact:
			// the sources are still live (writers keep applying through the
			// migration, which never publishes) — but the markers must come
			// off so writers stop paying the redirect.
			for i := lo; i <= hi; i++ {
				r.shards[i].mig.Store(nil)
			}
			t.layoutMu.Unlock()
			return 0, err
		}
		cut = end
	}

	// 4. Catch up on redirected writes, then publish under the short lock.
	nr := spliceRouting(r, lo, hi, inner, targets)
	for round := 0; ; round++ {
		m.mu.Lock()
		chunk := m.log
		m.log = nil
		if len(chunk) == 0 || round >= maxCatchUpRounds {
			replayOps(chunk, inner, targets) // tail, under the lock
			fpRebalPublish.Inject()
			t.route.Store(nr)
			m.done = true
			m.mu.Unlock()
			break
		}
		m.mu.Unlock()
		replayOps(chunk, inner, targets)
	}

	// 5. Retire the old router generation: the sources' teardown (already
	// initiated above) completes, and the routing itself stays reachable
	// for readers that loaded it before the publish, until every such
	// reader unpins.
	t.ebr.Retire(0, func() {
		for _, src := range srcs {
			_ = src.Close()
		}
	})
	t.layoutMu.Unlock()
	return moved, nil
}

// rebalanced records one completed migration in the stats counters and
// notifies the embedder's boundary-change hook (the WAL logging path).
func (t *ALT) rebalanced(kind int, moved int, took time.Duration) {
	switch {
	case kind > 0:
		t.rebSplits.Add(1)
	case kind < 0:
		t.rebMerges.Add(1)
	}
	t.rebMoved.Add(int64(moved))
	t.rebLastMs.Store(took.Milliseconds())
	t.rebTotalMs.Add(took.Milliseconds())
	if fn := t.opts.OnRebalance; fn != nil {
		fn(t.Bounds())
	}
}

// SplitShard splits shard s in two at an equal-depth boundary of its
// sampled resident keys, migrating without stopping reads. It fails when
// the router budget (MaxShards) is exhausted or the shard holds too few
// distinct keys to cut. Exported for tests and embedders; the rebalance
// controller uses the same path (with a wider fan-out).
func (t *ALT) SplitShard(s int) error { return t.splitWays(s, 2) }

// splitWays splits shard s into up to `ways` pieces at equal-depth
// boundaries of its sampled resident keys, in one migration: one writer
// barrier and one drain regardless of fan-out, which is why the
// controller carves a hot shard to the ε floor in a single step instead
// of a cascade of binary splits. The whole operation counts as one split
// in the stats.
func (t *ALT) splitWays(s, ways int) error {
	r := t.route.Load()
	if s < 0 || s > r.last {
		return fmt.Errorf("shard: split %d out of range (last %d)", s, r.last)
	}
	if ways < 2 {
		ways = 2
	}
	bs, ok := splitBounds(r.shards[s].ix, ways)
	if !ok {
		return fmt.Errorf("shard: shard %d has too few resident keys to split", s)
	}
	if r.last+1+len(bs) > MaxShards {
		return fmt.Errorf("shard: split would exceed %d shards", MaxShards)
	}
	start := time.Now()
	moved, err := t.reshard(s, s, bs)
	if err != nil {
		return err
	}
	t.rebalanced(+1, moved, time.Since(start))
	return nil
}

// MergeShards merges shards s and s+1 into one, migrating without
// stopping reads. Exported for tests and embedders; the rebalance
// controller uses the same path.
func (t *ALT) MergeShards(s int) error {
	r := t.route.Load()
	if s < 0 || s+1 > r.last {
		return fmt.Errorf("shard: merge %d,%d out of range (last %d)", s, s+1, r.last)
	}
	start := time.Now()
	moved, err := t.reshard(s, s+1, nil)
	if err != nil {
		return err
	}
	t.rebalanced(-1, moved, time.Since(start))
	return nil
}

// SetBounds migrates the whole index to the exact boundary layout given
// (len(bounds)+1 shards), regardless of the current shard count. Bounds
// must be non-decreasing. Used by snapshot/WAL recovery to reproduce a
// rebalanced layout, and by tests.
func (t *ALT) SetBounds(bounds []uint64) error {
	if len(bounds)+1 > MaxShards {
		return fmt.Errorf("shard: %d bounds exceed %d shards", len(bounds), MaxShards)
	}
	r := t.route.Load()
	start := time.Now()
	moved, err := t.reshard(0, r.last, bounds)
	if err != nil {
		return err
	}
	t.rebalanced(0, moved, time.Since(start))
	return nil
}
