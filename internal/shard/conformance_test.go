package shard_test

import (
	"fmt"
	"testing"

	"altindex/internal/core"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/shard"
)

// TestShardConformance runs the full cross-implementation suite (audit,
// churn invariants, batch semantics, concurrency) against the sharded
// front-end. S=1 exercises the single-shard delegation paths, S=4 the
// even split, and S=7 — deliberately prime — catches boundary-rounding
// bugs an even count masks (keys/S divides cleanly only when S is a
// power-of-two friend of the test sizes).
func TestShardConformance(t *testing.T) {
	for _, s := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("S=%d", s), func(t *testing.T) {
			indextest.Run(t, func() index.Concurrent {
				return shard.New(core.Options{Shards: s})
			})
		})
	}
}

// TestShardConformanceSmallErrorBound forces heavy ART-layer traffic in
// every shard (tight per-shard ε), the configuration that stresses the
// conflict paths behind the router.
func TestShardConformanceSmallErrorBound(t *testing.T) {
	indextest.Run(t, func() index.Concurrent {
		return shard.New(core.Options{Shards: 4, ErrorBound: 32})
	})
}
