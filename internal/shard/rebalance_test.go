package shard_test

import (
	"fmt"
	"testing"
	"time"

	"altindex/internal/core"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/shard"
	"altindex/internal/xrand"
)

func loadSharded(t *testing.T, shards int, n uint64, opts core.Options) (*shard.ALT, map[uint64]uint64) {
	t.Helper()
	opts.Shards = shards
	idx := shard.New(opts)
	t.Cleanup(func() { idx.Close() })
	pairs := make([]index.KV, 0, n)
	want := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		k, v := i*16+3, i^0xC0FFEE
		pairs = append(pairs, index.KV{Key: k, Value: v})
		want[k] = v
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	return idx, want
}

func TestSplitAndMergePreserveContents(t *testing.T) {
	idx, want := loadSharded(t, 4, 1<<13, core.Options{})

	if err := idx.SplitShard(1); err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if got := idx.Shards(); got != 5 {
		t.Fatalf("Shards() = %d after split, want 5", got)
	}
	bounds := idx.Bounds()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("bounds not monotone after split: %v", bounds)
		}
	}
	for _, bad := range indextest.Audit(idx, want) {
		t.Error(bad)
	}

	if err := idx.MergeShards(2); err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if got := idx.Shards(); got != 4 {
		t.Fatalf("Shards() = %d after merge, want 4", got)
	}
	for _, bad := range indextest.Audit(idx, want) {
		t.Error(bad)
	}

	sm := idx.StatsMap()
	if sm["rebalance_splits"] != 1 || sm["rebalance_merges"] != 1 {
		t.Errorf("rebalance counters = %d splits / %d merges, want 1/1",
			sm["rebalance_splits"], sm["rebalance_merges"])
	}
	if sm["rebalance_moved_keys"] == 0 {
		t.Error("rebalance_moved_keys = 0 after two migrations")
	}
}

func TestSetBoundsReproducesLayout(t *testing.T) {
	idx, want := loadSharded(t, 4, 1<<12, core.Options{})

	// A deliberately non-quantile layout: the kind a rebalanced index
	// snapshots and recovery must reproduce exactly.
	target := []uint64{100, 5000, 5100, 40000, 41000}
	if err := idx.SetBounds(target); err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	if got := idx.Shards(); got != len(target)+1 {
		t.Fatalf("Shards() = %d, want %d", got, len(target)+1)
	}
	got := idx.Bounds()
	for i, b := range target {
		if got[i] != b {
			t.Fatalf("Bounds() = %v, want %v", got, target)
		}
	}
	for _, bad := range indextest.Audit(idx, want) {
		t.Error(bad)
	}
}

// TestRebalanceHammer forces split/merge cycles while concurrent
// goroutines hammer Get/Insert/Scan — the ISSUE's chaos-audit shape, run
// here without failpoints so `go test -race` exercises it on every CI
// pass: no lost writes, no ghosts, no torn router.
func TestRebalanceHammer(t *testing.T) {
	cycles := 200
	if testing.Short() {
		cycles = 25
	}
	const (
		writers   = 4
		bulkKeys  = 1 << 12
		keyStride = 64
		opsPerW   = 6000
	)

	idx := loadShardedGrid(t, bulkKeys, keyStride)

	type finalState struct {
		val  uint64
		live bool
	}
	finals := make([]map[uint64]finalState, writers)
	stop := make(chan struct{})
	errc := make(chan error, writers+2)
	done := make(chan struct{}, writers)

	for w := 0; w < writers; w++ {
		finals[w] = make(map[uint64]finalState)
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := xrand.New(uint64(0xBEEF*w + 5))
			mine := finals[w]
			for op := 0; op < opsPerW; op++ {
				gi := uint64(rng.Intn(bulkKeys*2))*uint64(writers) + uint64(w)
				k := gi*keyStride + 7
				v := uint64(op)<<8 | uint64(w)
				switch rng.Intn(10) {
				case 0:
					idx.Remove(k)
					mine[k] = finalState{}
				case 1, 2:
					batch := make([]index.KV, 0, 16)
					for j := uint64(0); j < 16; j++ {
						bk := (gi+j*uint64(writers))*keyStride + 7
						batch = append(batch, index.KV{Key: bk, Value: v + j})
					}
					if err := idx.InsertBatch(batch); err != nil {
						errc <- err
						return
					}
					for j, kv := range batch {
						mine[kv.Key] = finalState{val: v + uint64(j), live: true}
					}
				default:
					if err := idx.Insert(k, v); err != nil {
						errc <- err
						return
					}
					mine[k] = finalState{val: v, live: true}
				}
			}
		}(w)
	}

	// Reader: sentinels at offset 31 are immutable; scans must stay
	// strictly ascending across every router swap.
	go func() {
		rng := xrand.New(0xFACE)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := uint64(rng.Intn(bulkKeys))
			if v, ok := idx.Get(i*keyStride + 31); !ok || v != i*3+1 {
				errc <- fmt.Errorf("sentinel %d = (%d,%v), want %d", i*keyStride+31, v, ok, i*3+1)
				return
			}
			var prev uint64
			n := 0
			start := uint64(rng.Intn(bulkKeys)) * keyStride
			idx.Scan(start, 128, func(k, _ uint64) bool {
				if (n > 0 && k <= prev) || k < start {
					errc <- fmt.Errorf("scan order violation: %d after %d (start %d)", k, prev, start)
					return false
				}
				prev, n = k, n+1
				return true
			})
		}
	}()

	// The forced split/merge churn: alternate growing and shrinking so the
	// shard count stays within budget across all cycles.
	rng := xrand.New(0x5EED)
	for c := 0; c < cycles; c++ {
		ns := idx.Shards()
		if c%2 == 0 && ns < shard.MaxShards {
			_ = idx.SplitShard(rng.Intn(ns)) // "too few keys" is acceptable
		} else if ns > 1 {
			if err := idx.MergeShards(rng.Intn(ns - 1)); err != nil {
				t.Fatalf("cycle %d: MergeShards: %v", c, err)
			}
		}
	}

	for w := 0; w < writers; w++ {
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-done:
		}
	}
	close(stop)
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	sm := idx.StatsMap()
	if sm["rebalance_splits"] == 0 || sm["rebalance_merges"] == 0 {
		t.Fatalf("hammer did not migrate: %d splits, %d merges",
			sm["rebalance_splits"], sm["rebalance_merges"])
	}

	want := gridWant(bulkKeys, keyStride)
	for _, mine := range finals {
		for k, fs := range mine {
			if fs.live {
				want[k] = fs.val
			} else {
				delete(want, k)
			}
		}
	}
	for _, bad := range indextest.Audit(idx, want) {
		t.Error(bad)
	}
}

// TestControllerSplitsHotShard arms the controller with an aggressive
// config and drives a narrow hot range: the skew loop must observe the
// imbalance and split the hot shard on its own.
func TestControllerSplitsHotShard(t *testing.T) {
	idx, want := loadSharded(t, 4, 1<<13, core.Options{
		RebalanceFactor:   1.5,
		RebalanceInterval: 2 * time.Millisecond,
		RebalanceWindows:  2,
		RebalanceMinOps:   512,
		// The loaded set is tiny (2048 keys per shard); drop the ε-floor
		// split gate accordingly or the controller would rightly refuse.
		RebalanceMinSplit: 256,
	})

	// Hammer one shard's range: keys in the first ~1/8th of the loaded set.
	rng := xrand.New(7)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 4096; i++ {
			k := uint64(rng.Intn(1<<10))*16 + 3
			idx.Get(k)
			if i%8 == 0 {
				if err := idx.Insert(k, uint64(i)); err != nil {
					t.Fatal(err)
				}
				want[k] = uint64(i)
			}
		}
		if idx.StatsMap()["rebalance_splits"] > 0 {
			break
		}
	}

	sm := idx.StatsMap()
	if sm["rebalance_splits"] == 0 {
		t.Fatalf("controller never split under sustained skew (shards=%d, imbalance=%d)",
			sm["shards"], sm["shard_imbalance_x100"])
	}
	// The ride-along cold merge may have reclaimed budget while the hot
	// shard split, so the shard count alone is not a reliable signal; the
	// refined layout is: the first boundary must now cut inside the
	// hammered range (the original first boundary sat at its top).
	if b := idx.Bounds(); len(b) == 0 || b[0] >= (1<<13/4)*16 {
		t.Fatalf("Bounds() = %v after controller split, want a cut inside the hot range", b)
	}
	for _, bad := range indextest.Audit(idx, want) {
		t.Error(bad)
	}
}

func loadShardedGrid(t *testing.T, bulkKeys, keyStride uint64) *shard.ALT {
	t.Helper()
	idx := shard.New(core.Options{Shards: 4, ErrorBound: 16, RetrainMinInserts: 192})
	t.Cleanup(func() { idx.Close() })
	var pairs []index.KV
	for i := uint64(0); i < bulkKeys; i++ {
		pairs = append(pairs,
			index.KV{Key: i*keyStride + 7, Value: i ^ 0xABCD},
			index.KV{Key: i*keyStride + 31, Value: i*3 + 1},
		)
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	return idx
}

func gridWant(bulkKeys, keyStride uint64) map[uint64]uint64 {
	want := make(map[uint64]uint64, 2*bulkKeys)
	for i := uint64(0); i < bulkKeys; i++ {
		want[i*keyStride+7] = i ^ 0xABCD
		want[i*keyStride+31] = i*3 + 1
	}
	return want
}

