//go:build failpoint

// Chaos scenario for the sharding boundary: a lookup stalled between
// loading the routing table and probing its target shard must stay correct
// while that shard's retrainer splices a new model table underneath it.
// The router holds no locks and pins no shard state, so the only thing
// protecting the wedged reader is the shard-local seqlock/publish protocol
// — which is exactly what this test stresses across the extra indirection.
package shard_test

import (
	"sync"
	"testing"

	"altindex/internal/core"
	"altindex/internal/failpoint"
	"altindex/internal/index"
	"altindex/internal/indextest"
	"altindex/internal/shard"
	"altindex/internal/xrand"
)

func TestShardChaosRouteRacingSplice(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not -short")
	}
	const (
		writers      = 4
		readers      = 3
		bulkKeys     = 1 << 13
		opsPerWriter = 1200
		keyStride    = 64
	)

	idx := shard.New(core.Options{Shards: 4, ErrorBound: 16, RetrainMinInserts: 192})
	t.Cleanup(func() { idx.Close() })

	// Grid keys i*stride+7 are writer-owned (writer = i mod writers);
	// i*stride+31 are immutable sentinels readers assert exactly mid-flight.
	var pairs []index.KV
	for i := uint64(0); i < bulkKeys; i++ {
		pairs = append(pairs,
			index.KV{Key: i*keyStride + 7, Value: i ^ 0xABCD},
			index.KV{Key: i*keyStride + 31, Value: i*3 + 1},
		)
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}

	// Wedge routed operations between router resolution and the shard
	// probe while every splice stalls holding the publish lock.
	for site, spec := range map[string]string{
		"shard/route":         "2%delay(50us)",
		"core/retrain/splice": "delay(200us)",
	} {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	type finalState struct {
		val  uint64
		live bool
	}
	finals := make([]map[uint64]finalState, writers)
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := xrand.New(uint64(0x9E37*w + 11))
			mine := make(map[uint64]finalState)
			finals[w] = mine
			for op := 0; op < opsPerWriter; op++ {
				gi := uint64(rng.Intn(bulkKeys*2))*uint64(writers) + uint64(w)
				off := uint64(7)
				if gi&1 == 1 {
					off = 13 // fresh off-grid keys: gap inserts + ART evictions
				}
				k := gi*keyStride + off
				v := uint64(op)<<16 | uint64(w)
				switch rng.Intn(10) {
				case 0, 1:
					idx.Remove(k)
					mine[k] = finalState{}
				case 2, 3: // batched insert spanning shard boundaries
					batch := make([]index.KV, 0, 16)
					for j := uint64(0); j < 16; j++ {
						bk := (gi + j*uint64(writers)) * keyStride
						batch = append(batch, index.KV{Key: bk + off, Value: v + j})
					}
					if err := idx.InsertBatch(batch); err != nil {
						t.Errorf("InsertBatch: %v", err)
						return
					}
					for j, kv := range batch {
						mine[kv.Key] = finalState{val: v + uint64(j), live: true}
					}
				default:
					if err := idx.Insert(k, v); err != nil {
						t.Errorf("Insert(%d): %v", k, err)
						return
					}
					mine[k] = finalState{val: v, live: true}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			rng := xrand.New(uint64(0xFEED + r))
			keys := make([]uint64, 128)
			vals := make([]uint64, 128)
			found := make([]bool, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Immutable sentinels must always read exactly, even with
				// the reader wedged at the route point mid-splice.
				for j := 0; j < 64; j++ {
					i := uint64(rng.Intn(bulkKeys))
					v, ok := idx.Get(i*keyStride + 31)
					if !ok || v != i*3+1 {
						t.Errorf("sentinel %d = (%d,%v), want %d", i*keyStride+31, v, ok, i*3+1)
						return
					}
				}
				// Stitched scans must stay strictly ascending across shard
				// boundaries mid-retrain.
				var prev uint64
				n := 0
				start := uint64(rng.Intn(bulkKeys)) * keyStride
				idx.Scan(start, 256, func(k, v uint64) bool {
					if n > 0 && k <= prev {
						t.Errorf("mid-flight scan order violation: %d after %d", k, prev)
						return false
					}
					if k < start {
						t.Errorf("scan yielded key %d below start %d", k, start)
						return false
					}
					prev = k
					n++
					return true
				})
				// Fan-out batched reads of sentinels agree with Get.
				for j := range keys {
					keys[j] = uint64(rng.Intn(bulkKeys))*keyStride + 31
				}
				idx.GetBatch(keys, vals, found)
				for j, k := range keys {
					if !found[j] || vals[j] != (k-31)/keyStride*3+1 {
						t.Errorf("GetBatch sentinel %d = (%d,%v)", k, vals[j], found[j])
						return
					}
				}
			}
		}(r)
	}

	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	failpoint.DisableAll()
	idx.Quiesce()

	for _, site := range []string{"shard/route", "core/retrain/splice"} {
		if failpoint.Hits(site) == 0 {
			t.Errorf("site %s never fired; scenario did not exercise its window", site)
		}
	}
	if idx.StatsMap()["retrains"] == 0 {
		t.Error("no retraining happened; chaos run did not stress the splice path")
	}

	want := make(map[uint64]uint64, 2*bulkKeys)
	for _, kv := range pairs {
		want[kv.Key] = kv.Value
	}
	for _, mine := range finals {
		for k, fs := range mine {
			if fs.live {
				want[k] = fs.val
			} else {
				delete(want, k)
			}
		}
	}
	for _, b := range indextest.Audit(idx, want) {
		t.Error(b)
	}
}
