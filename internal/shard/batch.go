package shard

import (
	"sync"

	"altindex/internal/index"
)

// splitMin is the batch size below which per-key routing beats the
// counting-sort split (mirrors core's getBatchMin).
const splitMin = 8

// fanoutMin is the batch size above which per-shard sub-batches run on
// their own goroutines instead of sequentially in shard order.
const fanoutMin = 2048

// splitScratch holds the shard-grouped staging buffers for one batch
// split: sid[i] is the shard of element i, cnt/start are the counting-sort
// histogram and group offsets, and keys/vals/found/pos (gets) or pairs
// (inserts) are the grouped payloads. Pooled so steady-state batches
// allocate nothing.
type splitScratch struct {
	sid   []uint8
	pos   []int32
	keys  []index.Key
	vals  []index.Value
	found []bool
	pairs []index.KV
	cnt   [MaxShards + 1]int32
	start [MaxShards + 1]int32
}

var splitPool = sync.Pool{New: func() any { return new(splitScratch) }}

// maxPooledSplit caps the staging capacity retained by the pool; larger
// one-off batches are allocated and dropped.
const maxPooledSplit = 1 << 16

func putSplit(sc *splitScratch) {
	if cap(sc.sid) > maxPooledSplit {
		return
	}
	splitPool.Put(sc)
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growKV(s []index.KV, n int) []index.KV {
	if cap(s) < n {
		return make([]index.KV, n)
	}
	return s[:n]
}

// splitByShard classifies n elements (via key(i)) into shard groups with a
// stable counting sort: after the call sc.sid holds per-element shards,
// sc.start[s]..sc.start[s+1] delimits shard s's group, and sc.cnt[s] is a
// scatter cursor positioned at each group's start. Returns the number of
// non-empty groups. O(n + S), no comparisons beyond the router's.
func (sc *splitScratch) splitByShard(r *routing, n int, key func(int) index.Key) int {
	ns := r.last + 1
	sc.sid = growU8(sc.sid, n)
	for i := 0; i <= ns; i++ {
		sc.cnt[i] = 0
	}
	for i := 0; i < n; i++ {
		s := uint8(r.shardOf(key(i)))
		sc.sid[i] = s
		sc.cnt[s]++
	}
	touched := 0
	off := int32(0)
	for s := 0; s < ns; s++ {
		if sc.cnt[s] > 0 {
			touched++
		}
		sc.start[s] = off
		off += sc.cnt[s]
		sc.cnt[s] = sc.start[s] // becomes the scatter cursor
	}
	sc.start[ns] = off
	return touched
}

// GetBatch implements index.Batcher: the batch is split by shard boundary
// in O(B + S), each shard's group runs through that shard's native grouped
// fast path, and results scatter back to the caller's positions. Groups
// fan out to goroutines for large batches touching several shards.
func (t *ALT) GetBatch(keys []index.Key, vals []index.Value, found []bool) {
	n := len(keys)
	if n == 0 {
		return
	}
	r := t.route.Load()
	fpRoute.Inject()
	if r.last == 0 {
		d := &r.shards[0]
		t.bump(d, int64(n))
		d.ix.GetBatch(keys, vals, found)
		return
	}
	if n < splitMin {
		for i, k := range keys {
			d := r.descOf(k)
			t.bump(d, 1)
			vals[i], found[i] = d.ix.Get(k)
		}
		return
	}

	sc := splitPool.Get().(*splitScratch)
	touched := sc.splitByShard(r, n, func(i int) index.Key { return keys[i] })
	sc.pos = growI32(sc.pos, n)
	sc.keys = growU64(sc.keys, n)
	sc.vals = growU64(sc.vals, n)
	sc.found = growBool(sc.found, n)
	for i, k := range keys {
		p := sc.cnt[sc.sid[i]]
		sc.cnt[sc.sid[i]] = p + 1
		sc.keys[p] = k
		sc.pos[p] = int32(i)
	}

	run := func(s int) {
		lo, hi := sc.start[s], sc.start[s+1]
		if lo == hi {
			return
		}
		d := &r.shards[s]
		t.bump(d, int64(hi-lo))
		d.ix.GetBatch(sc.keys[lo:hi], sc.vals[lo:hi], sc.found[lo:hi])
		for j := lo; j < hi; j++ {
			vals[sc.pos[j]] = sc.vals[j]
			found[sc.pos[j]] = sc.found[j]
		}
	}
	if n >= fanoutMin && touched > 1 {
		var wg sync.WaitGroup
		for s := 0; s <= r.last; s++ {
			if sc.start[s] == sc.start[s+1] {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				run(s)
			}(s)
		}
		wg.Wait()
	} else {
		for s := 0; s <= r.last; s++ {
			run(s)
		}
	}
	putSplit(sc)
}

// insertGroup applies one shard group, redirecting through the shard's
// migration (apply-and-log, see migrate.go) when one is in flight. Keys
// the migration rejects — it published a new layout mid-group — re-route
// through the per-key path. The caller must hold an epoch pin taken
// before the routing load, like every shard-level write.
func (t *ALT) insertGroup(d *shardDesc, pairs []index.KV) error {
	m := d.mig.Load()
	if m == nil {
		return d.ix.InsertBatch(pairs)
	}
	for _, kv := range pairs {
		err, ok := m.insert(d.ix, kv.Key, kv.Value)
		if !ok {
			err = t.Insert(kv.Key, kv.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch implements index.Batcher by splitting the batch across
// shards like GetBatch. The split is a stable counting sort, so duplicate
// keys — which always route to the same shard — keep their relative order
// and last-writer-wins is preserved (the migration redirect in
// insertGroup is per-key and in-order, so it preserves it too). On error,
// groups routed to other shards may already have been applied; the error
// returned is the first one in shard order (fan-out) or encounter order
// (sequential), which the Batcher contract permits.
func (t *ALT) InsertBatch(pairs []index.KV) error {
	n := len(pairs)
	if n == 0 {
		return nil
	}
	g := t.ebr.Pin()
	defer g.Unpin()
	r := t.route.Load()
	fpRoute.Inject()
	if r.last == 0 {
		d := &r.shards[0]
		t.bump(d, int64(n))
		return t.insertGroup(d, pairs)
	}
	if n < splitMin {
		for _, kv := range pairs {
			if err := t.Insert(kv.Key, kv.Value); err != nil {
				return err
			}
		}
		return nil
	}

	sc := splitPool.Get().(*splitScratch)
	touched := sc.splitByShard(r, n, func(i int) index.Key { return pairs[i].Key })
	sc.pairs = growKV(sc.pairs, n)
	for i, kv := range pairs {
		p := sc.cnt[sc.sid[i]]
		sc.cnt[sc.sid[i]] = p + 1
		sc.pairs[p] = kv
	}

	var firstErr error
	if n >= fanoutMin && touched > 1 {
		errs := make([]error, r.last+1)
		var wg sync.WaitGroup
		for s := 0; s <= r.last; s++ {
			lo, hi := sc.start[s], sc.start[s+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(s int, lo, hi int32) {
				defer wg.Done()
				d := &r.shards[s]
				t.bump(d, int64(hi-lo))
				errs[s] = t.insertGroup(d, sc.pairs[lo:hi])
			}(s, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	} else {
		for s := 0; s <= r.last; s++ {
			lo, hi := sc.start[s], sc.start[s+1]
			if lo == hi {
				continue
			}
			d := &r.shards[s]
			t.bump(d, int64(hi-lo))
			if err := t.insertGroup(d, sc.pairs[lo:hi]); err != nil {
				firstErr = err
				break
			}
		}
	}
	putSplit(sc)
	return firstErr
}
