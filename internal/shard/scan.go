package shard

import (
	"iter"

	"altindex/internal/index"
)

// ScanAppend appends up to max pairs with keys in [start, end) to dst in
// ascending key order (end == ^uint64(0) means unbounded, including key
// MaxUint64 — the index.RangeAppender contract). Shards own disjoint
// ascending key ranges, so the bounded sharded scan is pure concatenation
// of per-shard run-kernel scans; a shard whose exclusive upper boundary is
// at or past end finishes the window, so out-of-window shards are never
// visited.
func (t *ALT) ScanAppend(dst []index.KV, start, end uint64, max int) []index.KV {
	if max <= 0 || (end != ^uint64(0) && end <= start) {
		return dst
	}
	r := t.route.Load()
	fpRoute.Inject()
	base := len(dst)
	for s := r.shardOf(start); s <= r.last; s++ {
		d := &r.shards[s]
		d.ops.Add(1)
		dst = d.ix.ScanAppend(dst, start, end, max-(len(dst)-base))
		if len(dst)-base >= max {
			break
		}
		// Shard s ran dry below the budget. Its upper boundary bounds every
		// later shard's keys from below: past end, the window is done.
		if s < r.last && end != ^uint64(0) && r.pad[s] >= end {
			break
		}
	}
	return dst
}

// Scan visits up to n pairs with keys >= start in ascending order.
// Shards own disjoint ascending key ranges, so the sharded scan is pure
// concatenation — no merge: start's shard scans first, then each higher
// shard in turn until n pairs are visited, the callback stops the scan, or
// the keyspace is exhausted. Each per-shard scan runs that shard's native
// path with its pooled buffers, so the sharded scan adds no allocation.
func (t *ALT) Scan(start uint64, n int, fn func(uint64, uint64) bool) int {
	if n <= 0 {
		return 0
	}
	r := t.route.Load()
	fpRoute.Inject()
	total := 0
	stopped := false
	for s := r.shardOf(start); s <= r.last; s++ {
		d := &r.shards[s]
		d.ops.Add(1)
		got := d.ix.Scan(start, n-total, func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		total += got
		if stopped || total >= n {
			break
		}
		// The shard ran dry below the budget: continue in the next shard.
		// Its keys all sit at or above this shard's upper boundary, which
		// is >= start, so passing start through unchanged stays correct.
	}
	return total
}

// Range returns an iterator over pairs with keys >= start in ascending
// order, batching through Scan like core.ALT.Range.
func (t *ALT) Range(start uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		const batch = 256
		cur := start
		for {
			n := 0
			var last uint64
			stopped := false
			t.Scan(cur, batch, func(k, v uint64) bool {
				n++
				last = k
				if !yield(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped || n < batch || last == ^uint64(0) {
				return
			}
			cur = last + 1
		}
	}
}
