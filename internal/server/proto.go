package server

// The connection protocol loop. Two modes share one allocation-free
// dispatcher:
//
//   - pipelined (default): every complete request line already buffered is
//     parsed and dispatched before replies are flushed once per wakeup, so
//     a client pipelining N commands costs one write syscall per batch.
//     Runs of consecutive point commands (GET/SET/DEL) are additionally
//     grouped through the index's batched fast path — and, above the
//     coalescing gate, merged with other connections' runs (opsched).
//   - legacy: one reply flush per command, no grouping — the pre-pipelining
//     behavior, kept as the measured baseline and fallback.
//
// Invariants both modes preserve:
//
//   - replies are emitted in command order; a pending group is flushed
//     before any non-groupable command (or malformed group command)
//     produces a reply, so LEN/GET always observe earlier SETs of the
//     same connection (read-your-writes);
//   - a request line longer than maxLineBytes gets ERR TOOLONG and the
//     connection closes (the stream cannot resynchronize);
//   - every blocking read carries ReadTimeout, every flush WriteTimeout;
//   - a panicking dispatch is contained to its connection: the client
//     sees ERR INTERNAL and the socket closes, the process keeps serving.

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"altindex"
	"altindex/internal/netproto"
)

// connBufSize is the pooled per-connection buffer class, used for both the
// read window and the reply accumulator. A request line that does not fit
// grows the read window (unpooled) up to maxLineBytes.
const connBufSize = 64 * 1024

// outHighWater flushes the reply accumulator mid-batch once it holds this
// much, bounding reply memory for huge pipelines and keeping SCAN streams
// moving. It stays well under connBufSize so the accumulator never
// outgrows its pooled backing.
const outHighWater = 32 * 1024

// bufPool holds the 64KiB connection buffers. Fixed-size array pointers
// (not slices) so Get/Put never allocate interface boxes.
var bufPool = sync.Pool{New: func() any { return new([connBufSize]byte) }}

// Group kinds for pending point-command runs.
const (
	groupNone = iota
	groupGet
	groupSet
	groupDel
)

// connState is one connection's protocol state: pooled read/reply buffers,
// tokenizer scratch, and the pending point-command group. All scratch is
// reused across commands, so a warmed-up connection dispatches GET/SET/DEL
// with zero heap allocations.
type connState struct {
	srv  *Server
	conn connection

	inArr *[connBufSize]byte // pooled read backing; nil while idle-released
	in    []byte             // read window (inArr[:] or a grown big buffer)
	r, w  int                // in[r:w] holds unconsumed bytes

	outArr *[connBufSize]byte // pooled reply backing; nil while idle-released
	out    []byte             // accumulated replies
	failed bool               // a flush failed; the connection is dead

	fields [][]byte // tokenizer scratch, aliases in

	gKind  int           // pending group kind (groupNone when empty)
	gKeys  []uint64      // GET/DEL run keys
	gVals  []uint64      // GET results
	gFound []bool        // GET/DEL results
	gPairs []altindex.KV // SET run pairs; also MGET/MPUT arg scratch

	lastBlocked time.Duration // how long the previous socket read blocked
	one         [1]byte       // 1-byte park buffer for idle-released reads
}

// connection is the subset of net.Conn the protocol loop uses; tests
// substitute in-memory implementations.
type connection interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

func newConnState(s *Server, conn connection) *connState {
	cs := &connState{srv: s, conn: conn}
	cs.acquireBufs()
	return cs
}

func (cs *connState) acquireBufs() {
	cs.inArr = bufPool.Get().(*[connBufSize]byte)
	cs.in = cs.inArr[:]
	cs.outArr = bufPool.Get().(*[connBufSize]byte)
	cs.out = cs.outArr[:0]
}

// releaseBufs returns the pooled buffers; only legal when the read window
// is drained and the reply accumulator is flushed. A grown (big) read
// window is simply dropped for the GC.
func (cs *connState) releaseBufs() {
	if cs.inArr != nil {
		bufPool.Put(cs.inArr)
		cs.inArr = nil
	}
	cs.in = nil
	cs.r, cs.w = 0, 0
	if cs.outArr != nil {
		bufPool.Put(cs.outArr)
		cs.outArr = nil
	}
	cs.out = nil
}

func (cs *connState) release() { cs.releaseBufs() }

// nextLine returns the next complete request line (without its '\n') from
// the read window, or ok=false when none is buffered.
func (cs *connState) nextLine() (line []byte, ok bool) {
	for i := cs.r; i < cs.w; i++ {
		if cs.in[i] == '\n' {
			line = cs.in[cs.r:i]
			cs.r = i + 1
			return line, true
		}
	}
	return nil, false
}

// fill blocks for more request bytes. toolong reports a line past
// maxLineBytes (protocol violation; the caller replies and closes); a
// non-nil error is a dead, timed-out or shut-down connection.
//
// When the previous read blocked longer than IdleReleaseAfter and the
// window is drained, the connection first parks bufferless: both pooled
// 64KiB buffers go back to the pool and the wait happens on a 1-byte
// read, so an idle connection under the cap pins ~90 bytes instead of
// ~128KiB. Busy pipelined connections (fast previous read) skip this.
func (cs *connState) fill() (toolong bool, err error) {
	s := cs.srv
	if cs.r > 0 {
		// Compact the partial line (if any) to the front.
		copy(cs.in, cs.in[cs.r:cs.w])
		cs.w -= cs.r
		cs.r = 0
	}
	if cs.w == len(cs.in) {
		if len(cs.in) >= maxLineBytes {
			return true, nil
		}
		// The line outgrew the pooled window; move to a full-size buffer.
		big := make([]byte, maxLineBytes)
		copy(big, cs.in[:cs.w])
		cs.in = big
		if cs.inArr != nil {
			bufPool.Put(cs.inArr)
			cs.inArr = nil
		}
	}

	idle := s.cfg.IdleReleaseAfter
	if idle > 0 && cs.lastBlocked > idle && cs.w == 0 && len(cs.out) == 0 {
		cs.releaseBufs()
		s.net.bufReleases.Add(1)
		cs.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		start := time.Now()
		n, rerr := cs.conn.Read(cs.one[:])
		cs.lastBlocked = time.Since(start)
		cs.acquireBufs()
		if n > 0 {
			cs.in[0] = cs.one[0]
			cs.w = 1
			s.net.bytesIn.Add(1)
			return false, nil
		}
		return false, rerr
	}

	cs.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	start := time.Now()
	n, rerr := cs.conn.Read(cs.in[cs.w:])
	cs.lastBlocked = time.Since(start)
	if n > 0 {
		cs.w += n
		s.net.bytesIn.Add(int64(n))
		return false, nil
	}
	return false, rerr
}

// flush writes the accumulated replies under the write deadline. false
// means the client is not draining its socket (or is gone); the failure
// is sticky so mid-command emitters (SCAN) stop streaming.
func (cs *connState) flush() bool {
	if cs.failed {
		return false
	}
	if len(cs.out) == 0 {
		return true
	}
	cs.conn.SetWriteDeadline(time.Now().Add(cs.srv.cfg.WriteTimeout))
	n, err := cs.conn.Write(cs.out)
	cs.srv.net.flushes.Add(1)
	cs.srv.net.bytesOut.Add(int64(n))
	cs.out = cs.out[:0]
	if err != nil {
		cs.failed = true
		return false
	}
	return true
}

// budget flushes when the reply accumulator crosses the high-water mark.
func (cs *connState) budget() bool {
	if len(cs.out) >= outHighWater {
		return cs.flush()
	}
	return !cs.failed
}

// servePipelined is the default connection loop: drain every buffered
// request line, flush once, block for more.
func (s *Server) servePipelined(cs *connState) {
	for {
		select {
		case <-s.done:
			return
		default:
		}
		for {
			line, ok := cs.nextLine()
			if !ok {
				break
			}
			if !s.processLine(cs, line) {
				return
			}
			if !cs.budget() {
				return
			}
		}
		// The read window holds no complete line: settle the pending
		// group, flush everything, block for more input.
		if !s.flushGroup(cs) {
			cs.flush()
			return
		}
		if !cs.flush() {
			return
		}
		toolong, err := cs.fill()
		if toolong {
			cs.out = fmt.Appendf(cs.out, "ERR %s line exceeds %d bytes\n", errTooLong, maxLineBytes)
			cs.flush()
			return
		}
		if err != nil {
			return
		}
	}
}

// serveLegacy is the pre-pipelining loop: identical parsing and dispatch,
// but the pending group and the reply buffer are flushed after every
// command — one write syscall per request, no batching.
func (s *Server) serveLegacy(cs *connState) {
	for {
		select {
		case <-s.done:
			return
		default:
		}
		line, ok := cs.nextLine()
		if !ok {
			toolong, err := cs.fill()
			if toolong {
				cs.out = fmt.Appendf(cs.out, "ERR %s line exceeds %d bytes\n", errTooLong, maxLineBytes)
				cs.flush()
				return
			}
			if err != nil {
				return
			}
			continue
		}
		if !s.processLine(cs, line) {
			return
		}
		if !s.flushGroup(cs) {
			cs.flush()
			return
		}
		if !cs.flush() {
			return
		}
	}
}

// processLine tokenizes and dispatches one request line. false asks the
// caller to close the connection (QUIT, panic, dead socket).
func (s *Server) processLine(cs *connState, line []byte) bool {
	cs.fields = netproto.Fields(cs.fields[:0], line)
	if len(cs.fields) == 0 {
		return true
	}
	s.net.cmds.Add(1)
	if len(cs.fields) == 1 && netproto.EqFold(cs.fields[0], "QUIT") {
		if !s.flushGroup(cs) {
			cs.flush()
			return false
		}
		cs.out = append(cs.out, "BYE\n"...)
		cs.flush()
		return false
	}
	if !s.dispatchRecover(cs) {
		cs.flush()
		return false
	}
	return !cs.failed
}

// dispatchRecover contains a panicking handler to its own connection: the
// client gets a structured internal error and is disconnected, while every
// other connection (and the process) keeps serving. A pending group is
// discarded — its commands were never executed or acknowledged, and the
// closing connection tells the client so.
func (s *Server) dispatchRecover(cs *connState) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			cs.gKind = groupNone
			cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, p)
			ok = false
		}
	}()
	s.dispatch(cs)
	return true
}

// dispatch routes one tokenized command. Well-formed point commands join
// the pending group (their replies are deferred to the group's flush);
// everything else settles the group first so replies stay in command
// order, then executes directly.
func (s *Server) dispatch(cs *connState) {
	fpDispatch.Inject()
	f := cs.fields
	args := f[1:]
	switch {
	case netproto.EqFold(f[0], "GET") && len(args) == 1:
		if k, ok := netproto.ParseUint(args[0]); ok {
			s.group(cs, groupGet, k, 0)
			return
		}
	case netproto.EqFold(f[0], "SET") && len(args) == 2:
		k, ok1 := netproto.ParseUint(args[0])
		v, ok2 := netproto.ParseUint(args[1])
		if ok1 && ok2 {
			s.group(cs, groupSet, k, v)
			return
		}
	case netproto.EqFold(f[0], "DEL") && len(args) == 1:
		if k, ok := netproto.ParseUint(args[0]); ok {
			s.group(cs, groupDel, k, 0)
			return
		}
	}
	if !s.flushGroup(cs) {
		return
	}
	s.dispatchSlow(cs, f[0], args)
}

// group appends one point op to the pending run, flushing first on a kind
// switch (reply order + read-your-writes) or when the run is full.
func (s *Server) group(cs *connState, kind int, k, v uint64) {
	if cs.gKind != groupNone && (cs.gKind != kind || len(cs.gKeys)+len(cs.gPairs) >= maxBatch) {
		if !s.flushGroup(cs) {
			return
		}
	}
	cs.gKind = kind
	if kind == groupSet {
		cs.gPairs = append(cs.gPairs, altindex.KV{Key: k, Value: v})
	} else {
		cs.gKeys = append(cs.gKeys, k)
	}
}

// flushGroup executes the pending point-command run through the batched
// index fast path — via the coalescer, which merges it with other
// connections' runs when the gate is engaged — and emits its deferred
// replies in command order. false means the connection is dead (flush
// failure or contained panic) and must close.
func (s *Server) flushGroup(cs *connState) (ok bool) {
	if cs.gKind == groupNone {
		return !cs.failed
	}
	defer func() {
		if p := recover(); p != nil {
			cs.gKind = groupNone
			cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, p)
			ok = false
		}
	}()
	kind := cs.gKind
	cs.gKind = groupNone
	switch kind {
	case groupGet:
		n := len(cs.gKeys)
		cs.gVals = growU64(cs.gVals, n)
		cs.gFound = growBool(cs.gFound, n)
		err := s.co.Gets(cs.gKeys, cs.gVals[:n], cs.gFound[:n])
		for i := 0; i < n; i++ {
			if err != nil {
				cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			} else if cs.gFound[i] {
				cs.out = append(cs.out, "VALUE "...)
				cs.out = strconv.AppendUint(cs.out, cs.gVals[i], 10)
				cs.out = append(cs.out, '\n')
			} else {
				cs.out = append(cs.out, "NIL\n"...)
			}
			if !cs.budget() {
				cs.gKeys = cs.gKeys[:0]
				return false
			}
		}
		cs.gKeys = cs.gKeys[:0]
	case groupSet:
		err := s.co.Sets(cs.gPairs)
		for range cs.gPairs {
			if err != nil {
				cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			} else {
				cs.out = append(cs.out, "OK\n"...)
			}
			if !cs.budget() {
				cs.gPairs = cs.gPairs[:0]
				return false
			}
		}
		cs.gPairs = cs.gPairs[:0]
	case groupDel:
		n := len(cs.gKeys)
		cs.gFound = growBool(cs.gFound, n)
		err := s.co.Dels(cs.gKeys, cs.gFound[:n])
		for i := 0; i < n; i++ {
			if err != nil {
				cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			} else if cs.gFound[i] {
				cs.out = append(cs.out, "OK\n"...)
			} else {
				cs.out = append(cs.out, "NIL\n"...)
			}
			if !cs.budget() {
				cs.gKeys = cs.gKeys[:0]
				return false
			}
		}
		cs.gKeys = cs.gKeys[:0]
	}
	return !cs.failed
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// appendBadInt emits the structured BADINT reply for one non-uint64 token.
func (cs *connState) appendBadInt(tok []byte) {
	cs.out = netproto.AppendErrToken(cs.out, errBadInt, "", tok, "is not a uint64")
}
