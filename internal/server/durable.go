package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"altindex"
	"altindex/internal/failpoint"
	"altindex/internal/shard"
	"altindex/internal/snapio"
	"altindex/internal/wal"
)

// Durability layout: a durable altdb keyspace lives in one directory:
//
//	<dir>/base-<gen>.snap       full index snapshot (ALTIX format) for
//	                            generation gen; written by compaction
//	<dir>/delta-<gen>-<n>.snap  n-th incremental checkpoint of generation
//	                            gen: the keys dirtied since the previous
//	                            checkpoint, as set records and tombstones
//	<dir>/CHECKPOINT            snapio-framed JSON: {generation, deltas, lsn}
//	<dir>/wal/                  WAL segments (see internal/wal)
//
// Writes ack only after their redo record reaches the WAL's commit point.
// Incremental checkpoints are non-blocking: they drain the dirty-key set
// into a small delta file and truncate the log, without pausing writers.
// When the delta chain grows past MaxDeltas, compaction takes the write
// gate, saves a fresh full base under the next generation number and
// resets the chain. Base files are never overwritten in place — a crash
// mid-compaction leaves the previous generation's base + deltas + meta
// fully intact, because the CHECKPOINT meta flips generations atomically
// (snapio rename) only after the new base is durable.
//
// Recovery order is meta -> base -> deltas (in order) -> WAL replay above
// the meta's LSN. Each stage refuses on corruption rather than serving
// partial data. Replay is idempotent (set is an upsert, delete tolerates
// absence), so a crash between checkpoint publish and log truncation
// merely re-applies a prefix the checkpoint already covers.

// fpCkptPublish fires between writing a checkpoint's payload files and
// publishing its CHECKPOINT meta — the edge where a crash must leave the
// previous checkpoint generation intact and the new files ignored.
var fpCkptPublish = failpoint.New("altdb/checkpoint/publish")

// Redo record opcodes for the flat u64 -> u64 keyspace.
const (
	recSet  byte = 1 // [u64 key][u64 value]
	recDel  byte = 2 // [u64 key]
	recMput byte = 3 // [u32 n][n × (u64 key, u64 value)]
)

// Delta-file entry kinds.
const (
	deltaTombstone byte = 0 // [u64 key]
	deltaSet       byte = 1 // [u64 key][u64 value]
)

const ckptMetaName = "CHECKPOINT"

// durableConfig tunes the durable store; zero values select defaults.
type durableConfig struct {
	Dir string
	WAL wal.Options
	// CheckpointInterval is the cadence of automatic incremental
	// checkpoints (default 15s; negative disables the background loop —
	// used by tests that drive checkpoints explicitly).
	CheckpointInterval time.Duration
	// MaxDeltas is the delta-chain length that triggers compaction into a
	// fresh full base (default 8).
	MaxDeltas int
}

func (c durableConfig) withDefaults() durableConfig {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 15 * time.Second
	}
	if c.MaxDeltas == 0 {
		c.MaxDeltas = 8
	}
	return c
}

// ckptMeta is the CHECKPOINT file payload.
type ckptMeta struct {
	Generation int    `json:"generation"` // 0 = no base file yet
	Deltas     int    `json:"deltas"`     // delta files in this generation
	LSN        uint64 `json:"lsn"`        // state covers all records <= LSN

	// Bounds is the sharded index's boundary layout at checkpoint time
	// (empty for unsharded layouts). The altdb redo log carries only data
	// records, so without this a delta-only recovery would rebuild the
	// index at its configured boundaries and throw away whatever layout
	// the rebalance controller had converged to. Base snapshots carry the
	// layout themselves (ALTIX002); the meta copy covers the gap and may
	// be fresher than the base.
	Bounds []uint64 `json:"bounds,omitempty"`
}

// durableStore wraps the server's index with a write-ahead log and the
// incremental checkpoint machinery.
type durableStore struct {
	cfg durableConfig
	idx altindex.Index
	log *wal.Log

	// gate is held shared by every mutator and exclusively by compaction,
	// whose full-base save needs a quiescent index. stripes serialise
	// mutators per key so a key's apply and its log append are atomic
	// together — per-key log order equals apply order.
	gate    sync.RWMutex
	stripes [64]sync.Mutex

	// dirty is the set of keys mutated since the last checkpoint. A key is
	// marked before its record is appended, so at checkpoint time the
	// drained set covers every key with a record at or below LastSeq().
	dmu   sync.Mutex
	dirty map[uint64]struct{}

	// cmu serialises checkpoints/compactions; gen/deltas are the published
	// on-disk chain shape, guarded by cmu.
	cmu    sync.Mutex
	gen    int
	deltas int

	replayed int64
	lastCkpt atomic.Int64 // unix seconds of the last published checkpoint

	stop chan struct{}
	done chan struct{}
}

// openDurable recovers (or creates) a durable keyspace in cfg.Dir and
// arms logging and the background checkpoint loop.
func openDurable(cfg durableConfig, opts altindex.Options) (*durableStore, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	gcStaleTemps(cfg.Dir)

	var meta ckptMeta
	metaPath := filepath.Join(cfg.Dir, ckptMetaName)
	switch raw, err := snapio.ReadFile(metaPath); {
	case err == nil:
		if jerr := json.Unmarshal(raw, &meta); jerr != nil {
			return nil, fmt.Errorf("altdb: checkpoint meta: %w", jerr)
		}
	case errors.Is(err, os.ErrNotExist):
		// First boot.
	default:
		return nil, fmt.Errorf("altdb: checkpoint meta: %w", err)
	}

	idx := altindex.New(opts)
	if meta.Generation > 0 {
		loaded, err := altindex.Load(basePath(cfg.Dir, meta.Generation), opts)
		if err != nil {
			return nil, fmt.Errorf("altdb: recovery needs base generation %d it cannot read: %w",
				meta.Generation, err)
		}
		idx = loaded
	}
	d := &durableStore{
		cfg:    cfg,
		idx:    idx,
		dirty:  map[uint64]struct{}{},
		gen:    meta.Generation,
		deltas: meta.Deltas,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for n := 1; n <= meta.Deltas; n++ {
		if err := d.applyDelta(deltaPath(cfg.Dir, meta.Generation, n)); err != nil {
			return nil, fmt.Errorf("altdb: recovery: delta %d of generation %d: %w",
				n, meta.Generation, err)
		}
	}
	// Reproduce the checkpointed boundary layout before replaying the log
	// tail, so replayed writes land in their final shards. A base loaded
	// above usually carries these bounds already (the equality check makes
	// that a no-op); a server restarted unsharded skips it — the data is
	// unaffected either way.
	if len(meta.Bounds) > 0 {
		if sh, ok := idx.(*shard.ALT); ok && !slicesEqualU64(sh.Bounds(), meta.Bounds) {
			if err := sh.SetBounds(meta.Bounds); err != nil {
				return nil, fmt.Errorf("altdb: recovery: checkpointed shard bounds: %w", err)
			}
		}
	}
	wlog, err := wal.Open(filepath.Join(cfg.Dir, "wal"), cfg.WAL)
	if err != nil {
		return nil, err
	}
	replayed, err := wlog.Replay(meta.LSN, func(_ uint64, payload []byte) error {
		return d.applyRecord(payload)
	})
	if err != nil {
		wlog.Close()
		return nil, fmt.Errorf("altdb: replay: %w", err)
	}
	d.log = wlog
	d.replayed = int64(replayed)
	// Best-effort checkpoint age across restarts: the meta's mtime.
	d.lastCkpt.Store(time.Now().Unix())
	if fi, err := os.Stat(metaPath); err == nil {
		d.lastCkpt.Store(fi.ModTime().Unix())
	}
	if cfg.CheckpointInterval > 0 {
		go d.checkpointLoop()
	} else {
		close(d.done)
	}
	return d, nil
}

// gcStaleTemps removes snapio temp files a crash may have stranded. The
// atomic-rename protocol means a .tmp is never part of recovery state.
func gcStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// indexBounds reports a sharded index's current boundary layout, nil for
// unsharded layouts.
func indexBounds(ix altindex.Index) []uint64 {
	if sh, ok := ix.(*shard.ALT); ok {
		return sh.Bounds()
	}
	return nil
}

func slicesEqualU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func basePath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("base-%08d.snap", gen))
}

func deltaPath(dir string, gen, n int) string {
	return filepath.Join(dir, fmt.Sprintf("delta-%08d-%04d.snap", gen, n))
}

func (d *durableStore) stripe(k uint64) *sync.Mutex {
	return &d.stripes[(k*0x9e3779b97f4a7c15)>>58]
}

func (d *durableStore) markDirty(k uint64) {
	d.dmu.Lock()
	d.dirty[k] = struct{}{}
	d.dmu.Unlock()
}

// Set upserts one pair and returns after the redo record commits.
func (d *durableStore) Set(k, v uint64) error {
	seq, err := d.applySet(k, v)
	if err != nil {
		return err
	}
	return d.log.WaitDurable(seq)
}

func (d *durableStore) applySet(k, v uint64) (uint64, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	m := d.stripe(k)
	m.Lock()
	defer m.Unlock()
	if err := d.idx.Insert(k, v); err != nil {
		return 0, err
	}
	d.markDirty(k)
	return d.log.Append(encSet(k, v))
}

// Del removes one key; found reports whether it existed. The ack waits
// for the tombstone record only when state actually changed.
func (d *durableStore) Del(k uint64) (bool, error) {
	found, seq, err := d.applyDel(k)
	if err != nil || !found {
		return found, err
	}
	return true, d.log.WaitDurable(seq)
}

func (d *durableStore) applyDel(k uint64) (bool, uint64, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	m := d.stripe(k)
	m.Lock()
	defer m.Unlock()
	if !d.idx.Remove(k) {
		return false, 0, nil
	}
	d.markDirty(k)
	seq, err := d.log.Append(encDel(k))
	return true, seq, err
}

// Mput batch-upserts pairs as one redo record.
func (d *durableStore) Mput(pairs []altindex.KV) error {
	seq, err := d.applyMput(pairs)
	if err != nil {
		return err
	}
	return d.log.WaitDurable(seq)
}

func (d *durableStore) applyMput(pairs []altindex.KV) (uint64, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	// Lock every touched stripe in ascending order (deadlock-free against
	// single-stripe mutators) so the batch's apply+append is atomic per key.
	var touched [64]bool
	for _, p := range pairs {
		touched[(p.Key*0x9e3779b97f4a7c15)>>58] = true
	}
	for i := range touched {
		if touched[i] {
			d.stripes[i].Lock()
		}
	}
	defer func() {
		for i := range touched {
			if touched[i] {
				d.stripes[i].Unlock()
			}
		}
	}()
	if err := d.idx.InsertBatch(pairs); err != nil {
		return 0, err
	}
	for _, p := range pairs {
		d.markDirty(p.Key)
	}
	return d.log.Append(encMput(pairs))
}

// applyRecord applies one redo record during replay; idempotent. Every
// replayed key is marked dirty: a replayed record is state above the
// published checkpoint LSN, so this process's next incremental checkpoint
// must carry it in a delta. (Without the mark, the next checkpoint would
// advance the meta LSN past the record with no delta covering its key —
// and the recovery after that would lose it. The crash matrix found
// exactly this at the wal/truncate kill site.)
func (d *durableStore) applyRecord(payload []byte) error {
	if len(payload) < 1 {
		return errors.New("altdb: empty redo record")
	}
	op, rest := payload[0], payload[1:]
	switch op {
	case recSet:
		if len(rest) != 16 {
			return errors.New("altdb: malformed set record")
		}
		k := binary.LittleEndian.Uint64(rest)
		d.markDirty(k)
		return d.idx.Insert(k, binary.LittleEndian.Uint64(rest[8:]))
	case recDel:
		if len(rest) != 8 {
			return errors.New("altdb: malformed delete record")
		}
		k := binary.LittleEndian.Uint64(rest)
		d.markDirty(k)
		d.idx.Remove(k)
		return nil
	case recMput:
		if len(rest) < 4 {
			return errors.New("altdb: malformed mput record")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) != 16*n {
			return errors.New("altdb: malformed mput record")
		}
		pairs := make([]altindex.KV, n)
		for i := range pairs {
			pairs[i] = altindex.KV{
				Key:   binary.LittleEndian.Uint64(rest[16*i:]),
				Value: binary.LittleEndian.Uint64(rest[16*i+8:]),
			}
			d.markDirty(pairs[i].Key)
		}
		return d.idx.InsertBatch(pairs)
	}
	return fmt.Errorf("altdb: unknown redo opcode %d", op)
}

func encSet(k, v uint64) []byte {
	buf := make([]byte, 17)
	buf[0] = recSet
	binary.LittleEndian.PutUint64(buf[1:], k)
	binary.LittleEndian.PutUint64(buf[9:], v)
	return buf
}

func encDel(k uint64) []byte {
	buf := make([]byte, 9)
	buf[0] = recDel
	binary.LittleEndian.PutUint64(buf[1:], k)
	return buf
}

func encMput(pairs []altindex.KV) []byte {
	buf := make([]byte, 5+16*len(pairs))
	buf[0] = recMput
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(pairs)))
	for i, p := range pairs {
		binary.LittleEndian.PutUint64(buf[5+16*i:], p.Key)
		binary.LittleEndian.PutUint64(buf[5+16*i+8:], p.Value)
	}
	return buf
}

// checkpointLoop runs incremental checkpoints on the configured cadence
// and compacts when the delta chain grows long.
func (d *durableStore) checkpointLoop() {
	defer close(d.done)
	tick := time.NewTicker(d.cfg.CheckpointInterval)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			if err := d.Checkpoint(); err != nil {
				log.Printf("event=checkpoint_failed error=%q", err.Error())
			}
		}
	}
}

// Checkpoint publishes one incremental checkpoint: the dirty-key set as a
// delta file, the CHECKPOINT meta, then log truncation. Writers are not
// paused. When the delta chain reaches MaxDeltas, it compacts instead.
func (d *durableStore) Checkpoint() error {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	if d.deltas >= d.cfg.MaxDeltas {
		return d.compactLocked()
	}
	return d.deltaLocked()
}

// Compact forces a full-base compaction (used at shutdown, so a restart
// loads one base and replays nothing).
func (d *durableStore) Compact() error {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	return d.compactLocked()
}

func (d *durableStore) deltaLocked() error {
	// LastSeq is read BEFORE the dirty set is drained: a record at or
	// below this LSN had its key marked before its append, and the append
	// happened before this read, so the mark is in the set we drain. The
	// set may also hold keys from newer records — their delta values are
	// then at least as new as the log suffix that re-applies them, and
	// replay's idempotence makes that converge.
	lsn := d.log.LastSeq()
	d.dmu.Lock()
	dirty := d.dirty
	d.dirty = make(map[uint64]struct{}, 64)
	d.dmu.Unlock()

	if len(dirty) > 0 {
		n := d.deltas + 1
		if err := d.writeDelta(deltaPath(d.cfg.Dir, d.gen, n), dirty); err != nil {
			// The drained keys are not on disk yet; put them back so the
			// next checkpoint retries them (their log records still exist —
			// nothing was truncated).
			d.dmu.Lock()
			for k := range dirty {
				d.dirty[k] = struct{}{}
			}
			d.dmu.Unlock()
			return err
		}
		// The delta file is durable; even if the meta publish below fails,
		// a later successful meta (counting this file) replays it harmlessly.
		d.deltas = n
	}
	if err := fpCkptPublish.InjectErr(); err != nil {
		return err
	}
	if err := d.writeMeta(ckptMeta{Generation: d.gen, Deltas: d.deltas, LSN: lsn, Bounds: indexBounds(d.idx)}); err != nil {
		return err
	}
	d.lastCkpt.Store(time.Now().Unix())
	return d.log.TruncateBelow(lsn + 1)
}

// compactLocked saves a full base under the next generation number,
// flips the meta to it, and garbage-collects the previous generation. It
// holds the write gate: the base must be an exact cut of the log.
func (d *durableStore) compactLocked() error {
	d.gate.Lock()
	d.idx.Quiesce()
	// Writers are gated and every append happens under a stripe lock after
	// its apply, so the quiescent index is exactly the state at LastSeq.
	lsn := d.log.LastSeq()
	newGen := d.gen + 1
	err := altindex.Save(d.idx, basePath(d.cfg.Dir, newGen))
	d.gate.Unlock() // meta publish and gc don't need the gate
	if err != nil {
		return err
	}
	if err := fpCkptPublish.InjectErr(); err != nil {
		return err
	}
	if err := d.writeMeta(ckptMeta{Generation: newGen, Deltas: 0, LSN: lsn, Bounds: indexBounds(d.idx)}); err != nil {
		return err
	}
	oldGen, oldDeltas := d.gen, d.deltas
	d.gen, d.deltas = newGen, 0
	d.dmu.Lock()
	d.dirty = map[uint64]struct{}{} // the base covers every key
	d.dmu.Unlock()
	d.lastCkpt.Store(time.Now().Unix())
	terr := d.log.TruncateBelow(lsn + 1)
	// The old generation is unreachable from the published meta; removing
	// it is best-effort cleanup, not correctness.
	if oldGen > 0 {
		os.Remove(basePath(d.cfg.Dir, oldGen))
	}
	for n := 1; n <= oldDeltas; n++ {
		os.Remove(deltaPath(d.cfg.Dir, oldGen, n))
	}
	return terr
}

// writeDelta persists the dirty keys' current state: a set record for a
// live key, a tombstone for a deleted one. Keys are written sorted so the
// file is deterministic for a given state.
func (d *durableStore) writeDelta(path string, dirty map[uint64]struct{}) error {
	keys := make([]uint64, 0, len(dirty))
	for k := range dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return snapio.WriteFile(path, func(w io.Writer) error {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(keys)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		var rec [17]byte
		for _, k := range keys {
			if v, ok := d.idx.Get(k); ok {
				rec[0] = deltaSet
				binary.LittleEndian.PutUint64(rec[1:], k)
				binary.LittleEndian.PutUint64(rec[9:], v)
				if _, err := w.Write(rec[:17]); err != nil {
					return err
				}
			} else {
				rec[0] = deltaTombstone
				binary.LittleEndian.PutUint64(rec[1:], k)
				if _, err := w.Write(rec[:9]); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// applyDelta replays one delta file into the index during recovery.
func (d *durableStore) applyDelta(path string) error {
	raw, err := snapio.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 4 {
		return errors.New("truncated delta header")
	}
	n := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	for i := 0; i < n; i++ {
		if len(raw) < 9 {
			return errors.New("truncated delta entry")
		}
		kind := raw[0]
		k := binary.LittleEndian.Uint64(raw[1:])
		switch kind {
		case deltaSet:
			if len(raw) < 17 {
				return errors.New("truncated delta entry")
			}
			if err := d.idx.Insert(k, binary.LittleEndian.Uint64(raw[9:])); err != nil {
				return err
			}
			raw = raw[17:]
		case deltaTombstone:
			d.idx.Remove(k)
			raw = raw[9:]
		default:
			return fmt.Errorf("unknown delta entry kind %d", kind)
		}
	}
	if len(raw) != 0 {
		return errors.New("delta entries past declared count")
	}
	return nil
}

func (d *durableStore) writeMeta(meta ckptMeta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return snapio.WriteFile(filepath.Join(d.cfg.Dir, ckptMetaName), func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
}

// Stats surfaces the durability counters merged into the STATS reply.
func (d *durableStore) Stats() map[string]int64 {
	st := d.log.Stats()
	d.cmu.Lock()
	gen, deltas := d.gen, d.deltas
	d.cmu.Unlock()
	return map[string]int64{
		"wal_appends":           st.Appends,
		"wal_fsyncs":            st.Fsyncs,
		"wal_batches":           st.Batches,
		"wal_bytes":             st.Bytes,
		"wal_segments":          st.Segments,
		"replayed_records":      d.replayed,
		"truncated_tail_bytes":  st.TruncatedTailBytes,
		"last_checkpoint_age_s": time.Now().Unix() - d.lastCkpt.Load(),
		"checkpoint_generation": int64(gen),
		"checkpoint_deltas":     int64(deltas),
	}
}

// Close stops the checkpoint loop, compacts one final full checkpoint (so
// the next start loads a single base and replays nothing), and closes the
// log. A failed final checkpoint is reported but the log still closes —
// the WAL alone fully covers the un-checkpointed suffix.
func (d *durableStore) Close() error {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
	err := d.Compact()
	if cerr := d.log.Close(); cerr != nil && !errors.Is(cerr, wal.ErrClosed) {
		err = errors.Join(err, cerr)
	}
	return err
}
