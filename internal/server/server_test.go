package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// startTestServer runs the server on an ephemeral port.
func startTestServer(t *testing.T) net.Addr {
	t.Helper()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	return ln.Addr()
}

type client struct {
	conn net.Conn
	r    *bufio.Scanner
}

func dial(t *testing.T, addr net.Addr) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewScanner(conn)}
}

func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no reply to %q: %v", line, c.r.Err())
	}
	return c.r.Text()
}

// cmdMulti reads lines until END.
func (c *client) cmdMulti(t *testing.T, line string) []string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	var out []string
	for c.r.Scan() {
		l := c.r.Text()
		if l == "END" {
			return out
		}
		out = append(out, l)
	}
	t.Fatalf("stream ended before END: %v", c.r.Err())
	return nil
}

func TestProtocolBasics(t *testing.T) {
	addr := startTestServer(t)
	c := dial(t, addr)

	if got := c.cmd(t, "GET 5"); got != "NIL" {
		t.Fatalf("GET empty = %q", got)
	}
	if got := c.cmd(t, "SET 5 50"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if got := c.cmd(t, "GET 5"); got != "VALUE 50" {
		t.Fatalf("GET = %q", got)
	}
	if got := c.cmd(t, "SET 5 51"); got != "OK" {
		t.Fatal("overwrite")
	}
	if got := c.cmd(t, "GET 5"); got != "VALUE 51" {
		t.Fatalf("GET after overwrite = %q", got)
	}
	if got := c.cmd(t, "LEN"); got != "VALUE 1" {
		t.Fatalf("LEN = %q", got)
	}
	if got := c.cmd(t, "DEL 5"); got != "OK" {
		t.Fatalf("DEL = %q", got)
	}
	if got := c.cmd(t, "DEL 5"); got != "NIL" {
		t.Fatalf("double DEL = %q", got)
	}
	if got := c.cmd(t, "BOGUS"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("unknown command = %q", got)
	}
	if got := c.cmd(t, "SET x y"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad args = %q", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT = %q", got)
	}
}

func TestScanOverWire(t *testing.T) {
	addr := startTestServer(t)
	c := dial(t, addr)
	for k := 10; k <= 100; k += 10 {
		if got := c.cmd(t, fmt.Sprintf("SET %d %d", k, k*2)); got != "OK" {
			t.Fatal(got)
		}
	}
	rows := c.cmdMulti(t, "SCAN 35 4")
	want := []string{"PAIR 40 80", "PAIR 50 100", "PAIR 60 120", "PAIR 70 140"}
	if len(rows) != len(want) {
		t.Fatalf("scan rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, rows[i], want[i])
		}
	}
	stats := c.cmdMulti(t, "STATS")
	if len(stats) == 0 || !strings.HasPrefix(stats[0], "STAT ") {
		t.Fatalf("stats = %v", stats)
	}
}

func TestBatchedCommands(t *testing.T) {
	addr := startTestServer(t)
	c := dial(t, addr)

	if got := c.cmd(t, "MPUT 1 10 2 20 3 30"); got != "OK 3" {
		t.Fatalf("MPUT = %q", got)
	}
	rows := c.cmdMulti(t, "MGET 2 9 1 3")
	want := []string{"VALUE 20", "NIL", "VALUE 10", "VALUE 30"}
	if len(rows) != len(want) {
		t.Fatalf("MGET rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("MGET row %d = %q, want %q", i, rows[i], want[i])
		}
	}
	// Batched upsert overwrites.
	if got := c.cmd(t, "MPUT 2 21"); got != "OK 1" {
		t.Fatalf("MPUT upsert = %q", got)
	}
	if rows := c.cmdMulti(t, "MGET 2"); len(rows) != 1 || rows[0] != "VALUE 21" {
		t.Fatalf("MGET after upsert = %v", rows)
	}
	if got := c.cmd(t, "LEN"); got != "VALUE 3" {
		t.Fatalf("LEN = %q", got)
	}
	// Malformed requests.
	if got := c.cmd(t, "MPUT 1"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("odd MPUT = %q", got)
	}
	if got := c.cmd(t, "MGET"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("empty MGET = %q", got)
	}
	if got := c.cmd(t, "MGET x"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad MGET key = %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startTestServer(t)
	const clients = 8
	const perClient = 500
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewScanner(conn)
			for i := 0; i < perClient; i++ {
				k := cid*perClient + i + 1
				fmt.Fprintf(conn, "SET %d %d\n", k, k*3)
				if !r.Scan() || r.Text() != "OK" {
					errs <- fmt.Errorf("client %d: SET %d -> %q", cid, k, r.Text())
					return
				}
				fmt.Fprintf(conn, "GET %d\n", k)
				if !r.Scan() || r.Text() != fmt.Sprintf("VALUE %d", k*3) {
					errs <- fmt.Errorf("client %d: GET %d -> %q", cid, k, r.Text())
					return
				}
			}
			errs <- nil
		}(cid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Verify the total through a fresh connection.
	c := dial(t, addr)
	if got := c.cmd(t, "LEN"); got != fmt.Sprintf("VALUE %d", clients*perClient) {
		t.Fatalf("LEN = %q", got)
	}
}
