package server

// Slow-path command execution: multi-key requests, scans, stats, and the
// structured-error replies for malformed point commands. The caller
// (dispatch) has already settled the pending group, so these may reply
// immediately. Replies are appended with strconv, not fmt, on success
// paths; error paths may allocate.

import (
	"fmt"
	"sort"
	"strconv"

	"altindex"
	"altindex/internal/netproto"
)

func (s *Server) dispatchSlow(cs *connState, cmd []byte, args [][]byte) {
	switch {
	case netproto.EqFold(cmd, "SET"):
		if len(args) != 2 {
			cs.out = fmt.Appendf(cs.out, "ERR %s SET <key> <value>\n", errUsage)
			return
		}
		// The fast path rejected it, so one of the tokens is bad; report
		// the first offender, matching single-token parse order.
		if _, ok := netproto.ParseUint(args[0]); !ok {
			cs.appendBadInt(args[0])
			return
		}
		cs.appendBadInt(args[1])
	case netproto.EqFold(cmd, "GET"):
		if len(args) != 1 {
			cs.out = fmt.Appendf(cs.out, "ERR %s GET <key>\n", errUsage)
			return
		}
		cs.appendBadInt(args[0])
	case netproto.EqFold(cmd, "DEL"):
		if len(args) != 1 {
			cs.out = fmt.Appendf(cs.out, "ERR %s DEL <key>\n", errUsage)
			return
		}
		cs.appendBadInt(args[0])
	case netproto.EqFold(cmd, "MGET"):
		// Batched lookup through the index's native batch path: one
		// model-table load and amortized routing for the whole request —
		// and a single coalescer unit, so concurrent MGETs share rounds.
		if len(args) == 0 {
			cs.out = fmt.Appendf(cs.out, "ERR %s MGET <key> [key ...]\n", errUsage)
			return
		}
		if len(args) > maxBatch {
			cs.out = fmt.Appendf(cs.out, "ERR %s %d keys, max %d per MGET\n", errTooBig, len(args), maxBatch)
			return
		}
		keys := cs.gKeys[:0]
		for _, a := range args {
			k, ok := netproto.ParseUint(a)
			if !ok {
				cs.appendBadInt(a)
				return
			}
			keys = append(keys, k)
		}
		cs.gKeys = keys
		n := len(keys)
		cs.gVals = growU64(cs.gVals, n)
		cs.gFound = growBool(cs.gFound, n)
		err := s.co.Gets(keys, cs.gVals[:n], cs.gFound[:n])
		if err != nil {
			cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			cs.gKeys = cs.gKeys[:0]
			return
		}
		for i := 0; i < n; i++ {
			if cs.gFound[i] {
				cs.out = append(cs.out, "VALUE "...)
				cs.out = strconv.AppendUint(cs.out, cs.gVals[i], 10)
				cs.out = append(cs.out, '\n')
			} else {
				cs.out = append(cs.out, "NIL\n"...)
			}
			if !cs.budget() {
				cs.gKeys = cs.gKeys[:0]
				return
			}
		}
		cs.gKeys = cs.gKeys[:0]
		cs.out = append(cs.out, "END\n"...)
	case netproto.EqFold(cmd, "MPUT"):
		// Batched upsert via InsertBatch (one redo record in durable mode).
		if len(args) == 0 || len(args)%2 != 0 {
			cs.out = fmt.Appendf(cs.out, "ERR %s MPUT <key> <value> [key value ...]\n", errUsage)
			return
		}
		if len(args)/2 > maxBatch {
			cs.out = fmt.Appendf(cs.out, "ERR %s %d pairs, max %d per MPUT\n", errTooBig, len(args)/2, maxBatch)
			return
		}
		pairs := cs.gPairs[:0]
		for i := 0; i < len(args); i += 2 {
			k, ok := netproto.ParseUint(args[i])
			if !ok {
				cs.appendBadInt(args[i])
				return
			}
			v, ok := netproto.ParseUint(args[i+1])
			if !ok {
				cs.appendBadInt(args[i+1])
				return
			}
			pairs = append(pairs, altindex.KV{Key: k, Value: v})
		}
		cs.gPairs = pairs
		if err := s.co.Sets(pairs); err != nil {
			cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			cs.gPairs = cs.gPairs[:0]
			return
		}
		cs.out = append(cs.out, "OK "...)
		cs.out = strconv.AppendUint(cs.out, uint64(len(pairs)), 10)
		cs.out = append(cs.out, '\n')
		cs.gPairs = cs.gPairs[:0]
	case netproto.EqFold(cmd, "SCAN"):
		if len(args) != 2 {
			cs.out = fmt.Appendf(cs.out, "ERR %s SCAN <start> <n>\n", errUsage)
			return
		}
		start, ok := netproto.ParseUint(args[0])
		if !ok {
			cs.appendBadInt(args[0])
			return
		}
		n, err := strconv.Atoi(string(args[1]))
		if err != nil || n < 0 {
			cs.out = fmt.Appendf(cs.out, "ERR %s %q is not a row count\n", errBadInt, args[1])
			return
		}
		if n > 10000 {
			n = 10000 // per-request cap
		}
		s.idx.Scan(start, n, func(k, v uint64) bool {
			cs.out = append(cs.out, "PAIR "...)
			cs.out = strconv.AppendUint(cs.out, k, 10)
			cs.out = append(cs.out, ' ')
			cs.out = strconv.AppendUint(cs.out, v, 10)
			cs.out = append(cs.out, '\n')
			return cs.budget() // stop streaming into a dead socket
		})
		cs.out = append(cs.out, "END\n"...)
	case netproto.EqFold(cmd, "LEN"):
		cs.out = append(cs.out, "VALUE "...)
		cs.out = strconv.AppendUint(cs.out, uint64(s.idx.Len()), 10)
		cs.out = append(cs.out, '\n')
	case netproto.EqFold(cmd, "STATS"):
		st := s.idx.StatsMap()
		if s.dur != nil {
			for k, v := range s.dur.Stats() {
				st[k] = v
			}
		}
		for k, v := range s.net.snapshot() {
			st[k] = v
		}
		for k, v := range s.co.Stats() {
			st[k] = v
		}
		keys := make([]string, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cs.out = append(cs.out, "STAT "...)
			cs.out = append(cs.out, k...)
			cs.out = append(cs.out, ' ')
			cs.out = strconv.AppendInt(cs.out, st[k], 10)
			cs.out = append(cs.out, '\n')
		}
		cs.out = append(cs.out, "END\n"...)
	default:
		// Uppercase the echoed command name, matching the historical
		// strings.ToUpper-based reply.
		up := make([]byte, len(cmd))
		for i, c := range cmd {
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			up[i] = c
		}
		cs.out = fmt.Appendf(cs.out, "ERR %s command %q\n", errUnknown, up)
	}
}
