package server

// Slow-path command execution: multi-key requests, scans, stats, and the
// structured-error replies for malformed point commands. The caller
// (dispatch) has already settled the pending group, so these may reply
// immediately. Replies — including the usage/size-cap error lines — are
// appended with the netproto/strconv formatters, never fmt; only the
// %v-of-error internal failure paths still allocate through fmt.

import (
	"fmt"
	"sort"
	"strconv"

	"altindex"
	"altindex/internal/netproto"
)

// scanChunk bounds one ScanAppend pull per SCAN reply chunk: big enough to
// amortize the index's run collection, small enough that the reply buffer
// hits its high-water flush between chunks instead of ballooning.
const scanChunk = 512

func (s *Server) dispatchSlow(cs *connState, cmd []byte, args [][]byte) {
	switch {
	case netproto.EqFold(cmd, "SET"):
		if len(args) != 2 {
			cs.out = netproto.AppendErr(cs.out, errUsage, "SET <key> <value>")
			return
		}
		// The fast path rejected it, so one of the tokens is bad; report
		// the first offender, matching single-token parse order.
		if _, ok := netproto.ParseUint(args[0]); !ok {
			cs.appendBadInt(args[0])
			return
		}
		cs.appendBadInt(args[1])
	case netproto.EqFold(cmd, "GET"):
		if len(args) != 1 {
			cs.out = netproto.AppendErr(cs.out, errUsage, "GET <key>")
			return
		}
		cs.appendBadInt(args[0])
	case netproto.EqFold(cmd, "DEL"):
		if len(args) != 1 {
			cs.out = netproto.AppendErr(cs.out, errUsage, "DEL <key>")
			return
		}
		cs.appendBadInt(args[0])
	case netproto.EqFold(cmd, "MGET"):
		// Batched lookup through the index's native batch path: one
		// model-table load and amortized routing for the whole request —
		// and a single coalescer unit, so concurrent MGETs share rounds.
		if len(args) == 0 {
			cs.out = netproto.AppendErr(cs.out, errUsage, "MGET <key> [key ...]")
			return
		}
		if len(args) > maxBatch {
			cs.out = netproto.AppendErrLimit(cs.out, errTooBig, len(args), "keys", maxBatch, "MGET")
			return
		}
		keys := cs.gKeys[:0]
		for _, a := range args {
			k, ok := netproto.ParseUint(a)
			if !ok {
				cs.appendBadInt(a)
				return
			}
			keys = append(keys, k)
		}
		cs.gKeys = keys
		n := len(keys)
		cs.gVals = growU64(cs.gVals, n)
		cs.gFound = growBool(cs.gFound, n)
		err := s.co.Gets(keys, cs.gVals[:n], cs.gFound[:n])
		if err != nil {
			cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			cs.gKeys = cs.gKeys[:0]
			return
		}
		for i := 0; i < n; i++ {
			if cs.gFound[i] {
				cs.out = append(cs.out, "VALUE "...)
				cs.out = strconv.AppendUint(cs.out, cs.gVals[i], 10)
				cs.out = append(cs.out, '\n')
			} else {
				cs.out = append(cs.out, "NIL\n"...)
			}
			if !cs.budget() {
				cs.gKeys = cs.gKeys[:0]
				return
			}
		}
		cs.gKeys = cs.gKeys[:0]
		cs.out = append(cs.out, "END\n"...)
	case netproto.EqFold(cmd, "MPUT"):
		// Batched upsert via InsertBatch (one redo record in durable mode).
		if len(args) == 0 || len(args)%2 != 0 {
			cs.out = netproto.AppendErr(cs.out, errUsage, "MPUT <key> <value> [key value ...]")
			return
		}
		if len(args)/2 > maxBatch {
			cs.out = netproto.AppendErrLimit(cs.out, errTooBig, len(args)/2, "pairs", maxBatch, "MPUT")
			return
		}
		pairs := cs.gPairs[:0]
		for i := 0; i < len(args); i += 2 {
			k, ok := netproto.ParseUint(args[i])
			if !ok {
				cs.appendBadInt(args[i])
				return
			}
			v, ok := netproto.ParseUint(args[i+1])
			if !ok {
				cs.appendBadInt(args[i+1])
				return
			}
			pairs = append(pairs, altindex.KV{Key: k, Value: v})
		}
		cs.gPairs = pairs
		if err := s.co.Sets(pairs); err != nil {
			cs.out = fmt.Appendf(cs.out, "ERR %s %v\n", errInternal, err)
			cs.gPairs = cs.gPairs[:0]
			return
		}
		cs.out = append(cs.out, "OK "...)
		cs.out = strconv.AppendUint(cs.out, uint64(len(pairs)), 10)
		cs.out = append(cs.out, '\n')
		cs.gPairs = cs.gPairs[:0]
	case netproto.EqFold(cmd, "SCAN"):
		if len(args) != 2 {
			cs.out = netproto.AppendErr(cs.out, errUsage, "SCAN <start> <n>")
			return
		}
		start, ok := netproto.ParseUint(args[0])
		if !ok {
			cs.appendBadInt(args[0])
			return
		}
		n64, ok := netproto.ParseUint(args[1])
		if !ok {
			cs.out = netproto.AppendErrToken(cs.out, errBadInt, "", args[1], "is not a row count")
			return
		}
		n := 10000 // per-request cap
		if n64 < uint64(n) {
			n = int(n64)
		}
		// Stream the window in bounded run chunks: each chunk is one
		// ScanAppend pull into the reused pair scratch, formatted with the
		// netproto appenders into the pooled reply buffer; budget() flushes
		// at the high-water mark between pairs, so a 10k-row SCAN never
		// holds more than one flush window of reply bytes.
		pairs := cs.gPairs[:0]
		cur := start
		for remaining := n; remaining > 0; {
			chunk := remaining
			if chunk > scanChunk {
				chunk = scanChunk
			}
			pairs = s.idx.ScanAppend(pairs[:0], cur, ^uint64(0), chunk)
			for _, kv := range pairs {
				cs.out = netproto.AppendPair(cs.out, kv.Key, kv.Value)
				if !cs.budget() {
					cs.gPairs = pairs[:0]
					return // stop streaming into a dead socket
				}
			}
			remaining -= len(pairs)
			if len(pairs) < chunk || pairs[len(pairs)-1].Key == ^uint64(0) {
				break // keyspace exhausted
			}
			cur = pairs[len(pairs)-1].Key + 1
		}
		cs.gPairs = pairs[:0]
		cs.out = append(cs.out, "END\n"...)
	case netproto.EqFold(cmd, "LEN"):
		cs.out = append(cs.out, "VALUE "...)
		cs.out = strconv.AppendUint(cs.out, uint64(s.idx.Len()), 10)
		cs.out = append(cs.out, '\n')
	case netproto.EqFold(cmd, "STATS"):
		st := s.idx.StatsMap()
		if s.dur != nil {
			for k, v := range s.dur.Stats() {
				st[k] = v
			}
		}
		for k, v := range s.net.snapshot() {
			st[k] = v
		}
		for k, v := range s.co.Stats() {
			st[k] = v
		}
		keys := make([]string, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cs.out = append(cs.out, "STAT "...)
			cs.out = append(cs.out, k...)
			cs.out = append(cs.out, ' ')
			cs.out = strconv.AppendInt(cs.out, st[k], 10)
			cs.out = append(cs.out, '\n')
		}
		cs.out = append(cs.out, "END\n"...)
	default:
		// Uppercase the echoed command name, matching the historical
		// strings.ToUpper-based reply.
		up := make([]byte, len(cmd))
		for i, c := range cmd {
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			up[i] = c
		}
		cs.out = netproto.AppendErrToken(cs.out, errUnknown, "command", up, "")
	}
}
