package server

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"altindex/internal/failpoint"
	"altindex/internal/shard"
)

// startDurable runs a server backed by a WAL directory; checkpoints are
// driven explicitly by the tests (negative interval disables the loop).
func startDurable(t *testing.T, dir string, cfg Config) (*Server, net.Addr) {
	t.Helper()
	cfg.WALDir = dir
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = -1
	}
	srv, err := NewServerWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	return srv, ln.Addr()
}

// TestDurableServerRecoversWrites: acked SET/MPUT/DEL survive shutdown
// and a full restart, round-tripping through the WAL + checkpoint files.
func TestDurableServerRecoversWrites(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startDurable(t, dir, Config{})
	c := dial(t, addr)
	for k := 1; k <= 200; k++ {
		if got := c.cmd(t, fmt.Sprintf("SET %d %d", k, k*10)); got != "OK" {
			t.Fatalf("SET %d = %q", k, got)
		}
	}
	var sb strings.Builder
	sb.WriteString("MPUT")
	for k := 201; k <= 260; k++ {
		fmt.Fprintf(&sb, " %d %d", k, k*10)
	}
	if got := c.cmd(t, sb.String()); got != "OK 60" {
		t.Fatalf("MPUT = %q", got)
	}
	for k := 1; k <= 200; k += 7 {
		if got := c.cmd(t, fmt.Sprintf("DEL %d", k)); got != "OK" {
			t.Fatalf("DEL %d = %q", k, got)
		}
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	srv2, addr2 := startDurable(t, dir, Config{})
	defer srv2.Shutdown()
	c2 := dial(t, addr2)
	for k := 1; k <= 260; k++ {
		want := fmt.Sprintf("VALUE %d", k*10)
		if k <= 200 && (k-1)%7 == 0 {
			want = "NIL"
		}
		if got := c2.cmd(t, fmt.Sprintf("GET %d", k)); got != want {
			t.Fatalf("after restart GET %d = %q, want %q", k, got, want)
		}
	}
}

// TestDurableServerKillRecovery: a server killed without any shutdown
// (listener dropped, WAL left mid-generation) recovers every acked write
// from the log alone.
func TestDurableServerKillRecovery(t *testing.T) {
	dir := t.TempDir()
	_, addr := startDurable(t, dir, Config{})
	c := dial(t, addr)
	for k := 1; k <= 150; k++ {
		if got := c.cmd(t, fmt.Sprintf("SET %d %d", k, k+7)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	// No Shutdown: simulate the process dying by abandoning the server.
	// (The OS-level kill -9 version lives in the crash-matrix harness.)

	srv2, addr2 := startDurable(t, dir, Config{})
	defer srv2.Shutdown()
	c2 := dial(t, addr2)
	if got := c2.cmd(t, "LEN"); got != "VALUE 150" {
		t.Fatalf("LEN after recovery = %q", got)
	}
	st := stats(t, c2)
	if st["replayed_records"] != 150 {
		t.Fatalf("replayed_records = %d, want 150", st["replayed_records"])
	}
}

// TestDurableIncrementalCheckpoint: delta checkpoints truncate the log,
// bound replay, and compaction collapses the chain into a fresh base.
func TestDurableIncrementalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startDurable(t, dir, Config{CheckpointMaxDeltas: 3})
	c := dial(t, addr)
	for round := 0; round < 3; round++ {
		for k := 0; k < 50; k++ {
			key := round*50 + k
			if got := c.cmd(t, fmt.Sprintf("SET %d %d", key, key)); got != "OK" {
				t.Fatalf("SET = %q", got)
			}
		}
		if err := srv.dur.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := stats(t, c)
	if st["checkpoint_deltas"] != 3 {
		t.Fatalf("checkpoint_deltas = %d, want 3", st["checkpoint_deltas"])
	}
	// Fourth checkpoint hits MaxDeltas and compacts into generation 1.
	if got := c.cmd(t, "SET 999 999"); got != "OK" {
		t.Fatal(got)
	}
	if err := srv.dur.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = stats(t, c)
	if st["checkpoint_generation"] < 1 || st["checkpoint_deltas"] != 0 {
		t.Fatalf("after compaction: generation=%d deltas=%d, want gen>=1 deltas=0",
			st["checkpoint_generation"], st["checkpoint_deltas"])
	}

	// Kill (abandon) and recover: replay must cover only the tail after
	// the compaction.
	for k := 2000; k < 2010; k++ {
		if got := c.cmd(t, fmt.Sprintf("SET %d 1", k)); got != "OK" {
			t.Fatal(got)
		}
	}
	srv2, addr2 := startDurable(t, dir, Config{})
	defer srv2.Shutdown()
	c2 := dial(t, addr2)
	st2 := stats(t, c2)
	if st2["replayed_records"] != 10 {
		t.Fatalf("replayed_records after compaction = %d, want 10", st2["replayed_records"])
	}
	if got := c2.cmd(t, "LEN"); got != fmt.Sprintf("VALUE %d", 151+10) {
		t.Fatalf("LEN = %q", got)
	}
	if got := c2.cmd(t, "GET 999"); got != "VALUE 999" {
		t.Fatalf("GET 999 = %q", got)
	}
}

// TestDurableStatsSurface: the STATS reply carries the durability
// counters the operators (and the bench harness) read.
func TestDurableStatsSurface(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startDurable(t, dir, Config{})
	defer srv.Shutdown()
	c := dial(t, addr)
	for k := 0; k < 32; k++ {
		c.cmd(t, fmt.Sprintf("SET %d %d", k, k))
	}
	st := stats(t, c)
	for _, key := range []string{
		"wal_appends", "wal_fsyncs", "wal_bytes",
		"replayed_records", "truncated_tail_bytes", "last_checkpoint_age_s",
	} {
		if _, ok := st[key]; !ok {
			t.Fatalf("STATS missing %q (got %v)", key, st)
		}
	}
	if st["wal_appends"] != 32 {
		t.Fatalf("wal_appends = %d, want 32", st["wal_appends"])
	}
	if st["wal_bytes"] <= 0 {
		t.Fatal("wal_bytes not accounted")
	}
}

// TestDurableExclusiveWithSnapshot: the two persistence modes cannot be
// combined — misconfiguration is a startup error, not silent precedence.
func TestDurableExclusiveWithSnapshot(t *testing.T) {
	_, err := NewServerWith(Config{WALDir: t.TempDir(), SnapshotPath: "x.snap"})
	if err == nil {
		t.Fatal("WALDir+SnapshotPath accepted")
	}
}

// TestDurableGroupCommit: 8 concurrent writers under SyncAlways commit
// with measurably fewer fsyncs than appends — the group-commit effect.
// The wal/sync failpoint stretches each fsync so writers provably queue
// behind an in-flight group even when the host serializes the goroutines
// (a loaded 1-vCPU box can otherwise run the writers back-to-back and
// give every commit a private fsync). Cross-connection coalescing is
// disabled so every SET keeps its own redo record — the test isolates the
// WAL layer's amortization, not the op scheduler's (which would otherwise
// merge concurrent SETs into shared Mput records and shrink wal_appends).
func TestDurableGroupCommit(t *testing.T) {
	if err := failpoint.Enable("wal/sync", "delay(2ms)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("wal/sync")
	dir := t.TempDir()
	srv, addr := startDurable(t, dir, Config{WALSync: "always", CoalesceConns: -1})
	defer srv.Shutdown()
	const writers, per = 8, 100
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			cl := clientOf(conn)
			for i := 0; i < per; i++ {
				k := w*per + i
				if got, err := cl.cmdE(fmt.Sprintf("SET %d %d", k, k)); err != nil || got != "OK" {
					errs <- fmt.Errorf("SET = %q, %v", got, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, addr)
	st := stats(t, c)
	if st["wal_appends"] != writers*per {
		t.Fatalf("wal_appends = %d, want %d", st["wal_appends"], writers*per)
	}
	if st["wal_fsyncs"] >= st["wal_appends"] {
		t.Fatalf("no group commit: %d fsyncs for %d appends", st["wal_fsyncs"], st["wal_appends"])
	}
	t.Logf("group commit: %d appends amortized over %d fsyncs", st["wal_appends"], st["wal_fsyncs"])
}

// stats fetches and parses the STATS reply.
func stats(t *testing.T, c *client) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, line := range c.cmdMulti(t, "STATS") {
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "STAT" {
			t.Fatalf("bad STATS line %q", line)
		}
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		out[f[1]] = v
	}
	return out
}

// clientOf wraps a raw conn for goroutines that cannot call t.Fatal.
func clientOf(conn net.Conn) *lineClient {
	return &lineClient{conn: conn}
}

type lineClient struct {
	conn net.Conn
}

func (c *lineClient) cmdE(line string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", err
	}
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var out []byte
	one := make([]byte, 1)
	for {
		if _, err := c.conn.Read(one); err != nil {
			return "", err
		}
		if one[0] == '\n' {
			return string(out), nil
		}
		out = append(out, one[0])
	}
}

// TestDurableRebalancedLayoutRecovery: a boundary layout the rebalance
// controller converged to survives a kill even when recovery runs from
// delta checkpoints alone (no base snapshot). The altdb redo log carries
// only data records, so the layout rides in the checkpoint meta.
func TestDurableRebalancedLayoutRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startDurable(t, dir, Config{Shards: 4})
	c := dial(t, addr)
	for k := 1; k <= 400; k++ {
		if got := c.cmd(t, fmt.Sprintf("SET %d %d", k, k*3)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	// Reshape the layout the way the controller would (SetBounds is the
	// same migration path splits and merges use).
	sh, ok := srv.dur.idx.(*shard.ALT)
	if !ok {
		t.Fatalf("sharded config built %T", srv.dur.idx)
	}
	want := []uint64{100, 200, 300, 350, 380}
	if err := sh.SetBounds(want); err != nil {
		t.Fatal(err)
	}
	// Delta checkpoint only: generation stays 0, so recovery cannot get
	// the layout from a base snapshot.
	if err := srv.dur.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := stats(t, c)
	if st["checkpoint_generation"] != 0 {
		t.Fatalf("checkpoint_generation = %d, want 0", st["checkpoint_generation"])
	}
	// Abandon the server (no Shutdown) and recover.
	srv2, addr2 := startDurable(t, dir, Config{Shards: 4})
	defer srv2.Shutdown()
	c2 := dial(t, addr2)
	if got := c2.cmd(t, "LEN"); got != "VALUE 400" {
		t.Fatalf("LEN after recovery = %q", got)
	}
	sh2, ok := srv2.dur.idx.(*shard.ALT)
	if !ok {
		t.Fatalf("recovered index is %T", srv2.dur.idx)
	}
	if got := sh2.Bounds(); !slicesEqualU64(got, want) {
		t.Fatalf("recovered bounds = %v, want %v", got, want)
	}
	for k := 1; k <= 400; k += 13 {
		if got := c2.cmd(t, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("GET %d = %q after layout recovery", k, got)
		}
	}
}
