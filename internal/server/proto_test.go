package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptConn is a deterministic in-memory connection: Read returns the
// scripted input in exactly the chunk sizes given (forcing the protocol
// loop through every partial-line refill path), Write accumulates replies.
type scriptConn struct {
	chunks [][]byte
	i      int
	out    bytes.Buffer
}

func (c *scriptConn) Read(p []byte) (int, error) {
	if c.i >= len(c.chunks) {
		return 0, io.EOF
	}
	n := copy(p, c.chunks[c.i])
	if n < len(c.chunks[c.i]) {
		c.chunks[c.i] = c.chunks[c.i][n:]
	} else {
		c.i++
	}
	return n, nil
}

func (c *scriptConn) Write(p []byte) (int, error)      { return c.out.Write(p) }
func (c *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(time.Time) error { return nil }

// chunkBytes splits b into pseudo-random pieces (seeded; many of size
// 1-3, so lines split mid-token and mid-number).
func chunkBytes(b []byte, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	var chunks [][]byte
	for len(b) > 0 {
		n := 1 + rng.Intn(3)
		if rng.Intn(4) == 0 {
			n = 1 + rng.Intn(97)
		}
		if n > len(b) {
			n = len(b)
		}
		chunks = append(chunks, b[:n])
		b = b[n:]
	}
	return chunks
}

// conformanceStream exercises every command kind, case folding, separator
// layouts, structured errors and batching — everything except STATS
// (whose counters legitimately differ between loop modes).
func conformanceStream() []byte {
	cmds := []string{
		"SET 1 10",
		"get 1",
		"GeT 2",
		"SET 1 11",
		"GET 1",
		"DEL 1",
		"DEL 1",
		"set 3 30",
		"set 4 40",
		"set 5 50",
		"GET 3",
		"GET 4",
		"GET 99",
		"MPUT 6 60 7 70 8 80",
		"MGET 6 7 8 9",
		"mget 6",
		"LEN",
		"SCAN 0 100",
		"SCAN 4 2",
		"  SET   20   200  ",
		"\tGET\t20",
		"",
		"   ",
		"del 20",
		"SET x 1",
		"SET 1 x",
		"SET 1",
		"GET",
		"GET nope",
		"DEL nope",
		"MGET",
		"MGET 1 bad 3",
		"MPUT 1",
		"MPUT 1 2 3",
		"SCAN 0 many",
		"SCAN bad 3",
		"BOGUS 1 2",
		"fly",
		"SET 21 210",
		"GET 21",
		"DEL 3",
		"DEL 4",
		"DEL 5",
		"LEN",
		"QUIT",
	}
	// A long GET/SET run so run grouping actually kicks in mid-stream.
	var extra []string
	for i := 0; i < 40; i++ {
		extra = append(extra, fmt.Sprintf("SET %d %d", 1000+i, i))
	}
	for i := 0; i < 40; i++ {
		extra = append(extra, fmt.Sprintf("GET %d", 1000+i))
	}
	all := append(extra, cmds...)
	return []byte(strings.Join(all, "\n") + "\n")
}

// runScripted drives one fresh server's protocol loop over the scripted
// chunks and returns every reply byte.
func runScripted(t *testing.T, legacy bool, chunks [][]byte) []byte {
	t.Helper()
	srv, err := NewServerWith(Config{LegacyLoop: legacy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	sc := &scriptConn{chunks: chunks}
	cs := newConnState(srv, sc)
	defer cs.release()
	if legacy {
		srv.serveLegacy(cs)
	} else {
		srv.servePipelined(cs)
	}
	return sc.out.Bytes()
}

// TestPipelinedConformance: the same command stream — delivered whole, one
// command per write, or split at arbitrary byte boundaries (mid-token) —
// produces byte-identical replies in both loop modes. The one-command-per
// write legacy run over a real TCP socket is the baseline.
func TestPipelinedConformance(t *testing.T) {
	stream := conformanceStream()

	// Baseline: legacy loop over TCP, one write syscall per command.
	_, addr := startServerWith(t, Config{LegacyLoop: true})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		for _, line := range bytes.SplitAfter(stream, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if _, err := conn.Write(line); err != nil {
				return
			}
		}
	}()
	conn.SetReadDeadline(time.Now().Add(20 * time.Second))
	baseline, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("baseline read: %v", err)
	}
	if !bytes.Contains(baseline, []byte("VALUE 11\n")) || !bytes.Contains(baseline, []byte("BYE\n")) {
		t.Fatalf("baseline replies look wrong:\n%s", baseline)
	}

	variants := []struct {
		name   string
		legacy bool
		chunks [][]byte
	}{
		{"pipelined-one-write", false, [][]byte{stream}},
		{"pipelined-split-7", false, chunkBytes(stream, 7)},
		{"pipelined-split-1301", false, chunkBytes(stream, 1301)},
		{"legacy-split-7", true, chunkBytes(stream, 7)},
		{"legacy-one-write", true, [][]byte{stream}},
	}
	for _, v := range variants {
		// chunkBytes aliases the stream; copy so each run owns its input.
		chunks := make([][]byte, len(v.chunks))
		for i, c := range v.chunks {
			chunks[i] = append([]byte(nil), c...)
		}
		got := runScripted(t, v.legacy, chunks)
		if !bytes.Equal(got, baseline) {
			t.Errorf("%s: replies differ from baseline\n got: %q\nwant: %q", v.name, got, baseline)
		}
	}
}

// TestConformanceTooLong: an overlong line split across arbitrary chunk
// boundaries still yields the in-order replies of every prior command,
// then the structured TOOLONG error, then connection close — identically
// in both modes.
func TestConformanceTooLong(t *testing.T) {
	var sb bytes.Buffer
	sb.WriteString("SET 1 10\nGET 1\n")
	sb.WriteString("MGET ")
	for sb.Len() < maxLineBytes+100 {
		sb.WriteString("123456789 ")
	}
	sb.WriteString("\nGET 1\n") // after TOOLONG the stream is dead; must never be answered
	stream := sb.Bytes()

	want := fmt.Sprintf("OK\nVALUE 10\nERR %s line exceeds %d bytes\n", errTooLong, maxLineBytes)
	for _, mode := range []struct {
		name   string
		legacy bool
		seed   int64
	}{
		{"pipelined", false, 3}, {"legacy", true, 4}, {"pipelined-whole", false, -1},
	} {
		var chunks [][]byte
		if mode.seed < 0 {
			chunks = [][]byte{append([]byte(nil), stream...)}
		} else {
			for _, c := range chunkBytes(stream, mode.seed) {
				chunks = append(chunks, append([]byte(nil), c...))
			}
		}
		got := string(runScripted(t, mode.legacy, chunks))
		if got != want {
			t.Errorf("%s: got %q, want %q", mode.name, got, want)
		}
	}
}

// TestPipelinedFlushAmortization: a pipelined burst of N commands costs a
// small number of reply flushes, not one per command — the syscall
// amortization the pipelined loop exists for.
func TestPipelinedFlushAmortization(t *testing.T) {
	srv, addr := startServerWith(t, Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const depth = 64
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "SET %d %d\n", i+1, (i+1)*2)
	}
	base := srv.net.flushes.Load()
	if _, err := conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	r := newReplyReader(conn)
	for i := 0; i < depth; i++ {
		if line := r.line(t); line != "OK" {
			t.Fatalf("reply %d = %q", i, line)
		}
	}
	flushes := srv.net.flushes.Load() - base
	if flushes > depth/4 {
		t.Fatalf("burst of %d commands took %d flushes, want <= %d", depth, flushes, depth/4)
	}
	if got := srv.net.cmds.Load(); got < depth {
		t.Fatalf("net_cmds = %d, want >= %d", got, depth)
	}
	t.Logf("depth-%d burst: %d flushes (%.3f flushes/op)", depth, flushes, float64(flushes)/depth)
}

// TestPipelinedReadYourWrites: grouped writes are visible to every later
// command in the same burst (the group flushes on kind switch), and
// replies come back in command order.
func TestPipelinedReadYourWrites(t *testing.T) {
	_, addr := startServerWith(t, Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	burst := "SET 5 50\nSET 6 60\nGET 5\nLEN\nDEL 5\nGET 5\nGET 6\nQUIT\n"
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	want := "OK\nOK\nVALUE 50\nVALUE 2\nOK\nNIL\nVALUE 60\nBYE\n"
	if string(got) != want {
		t.Fatalf("burst replies:\n got %q\nwant %q", got, want)
	}
}

// TestDispatchZeroAlloc pins the point-command hot path — tokenize, group,
// batched execute, reply format, flush — at zero heap allocations per
// command once connection scratch is warm.
func TestDispatchZeroAlloc(t *testing.T) {
	srv, err := NewServerWith(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	for k := uint64(1); k <= 64; k++ {
		if err := srv.idx.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	sc := &scriptConn{}
	cs := newConnState(srv, sc)
	defer cs.release()

	set := []byte("SET 17 170")
	get := []byte("GET 17")
	del := []byte("DEL 9999999")
	cycle := func() {
		if !srv.processLine(cs, set) || !srv.processLine(cs, get) || !srv.processLine(cs, del) {
			t.Fatal("processLine failed")
		}
		if !srv.flushGroup(cs) || !cs.flush() {
			t.Fatal("flush failed")
		}
		sc.out.Reset()
	}
	cycle() // warm the scratch slices
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs > 0 {
		t.Fatalf("hot path allocates %.2f per 3-command cycle, want 0", allocs)
	}
}

// TestIdleBufferRelease: a connection whose reads block longer than
// IdleReleaseAfter parks bufferless — its pooled 64KiB read/reply buffers
// go back to the pool (net_buf_releases counts them) — and keeps working
// when traffic resumes.
func TestIdleBufferRelease(t *testing.T) {
	srv, addr := startServerWith(t, Config{IdleReleaseAfter: 5 * time.Millisecond})
	c := dial(t, addr)
	if got := c.cmd(t, "SET 1 10"); got != "OK" {
		t.Fatal(got)
	}
	time.Sleep(40 * time.Millisecond) // the next read blocks > IdleReleaseAfter
	if got := c.cmd(t, "GET 1"); got != "VALUE 10" {
		t.Fatalf("GET after idle = %q", got)
	}
	// The handler parks bufferless only when it next waits for input; poll
	// until the release is visible.
	deadline := time.Now().Add(5 * time.Second)
	for srv.net.bufReleases.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never released its pooled buffers")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the connection still serves correctly after reacquiring.
	if got := c.cmd(t, "GET 1"); got != "VALUE 10" {
		t.Fatalf("GET after buffer release = %q", got)
	}
}

// TestServerCoalescingGate: below CoalesceConns no cross-connection
// batches form; at or above it concurrent pipelined clients coalesce
// (batches > 0, mean batch > 1) with correct results throughout.
func TestServerCoalescingGate(t *testing.T) {
	srv, addr := startServerWith(t, Config{CoalesceConns: 3})

	// One connection: below the gate, direct calls only.
	c := dial(t, addr)
	if got := c.cmd(t, "SET 1 10"); got != "OK" {
		t.Fatal(got)
	}
	if st := srv.co.Stats(); st["coalesce_batches"] != 0 {
		t.Fatalf("coalescing engaged below gate: %v", st)
	}

	// Four concurrent pipelined clients: gate opens, rounds form.
	const clients, per = 4, 120
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := newReplyReader(conn)
			base := 1000 * (id + 1)
			for i := 0; i < per; i += 8 {
				var sb strings.Builder
				for j := 0; j < 8; j++ {
					fmt.Fprintf(&sb, "SET %d %d\n", base+i+j, (base+i+j)*3)
				}
				for j := 0; j < 8; j++ {
					fmt.Fprintf(&sb, "GET %d\n", base+i+j)
				}
				if _, err := io.WriteString(conn, sb.String()); err != nil {
					errs <- err
					return
				}
				for j := 0; j < 8; j++ {
					if line := r.line(nil); line != "OK" {
						errs <- fmt.Errorf("client %d: SET -> %q", id, line)
						return
					}
				}
				for j := 0; j < 8; j++ {
					want := fmt.Sprintf("VALUE %d", (base+i+j)*3)
					if line := r.line(nil); line != want {
						errs <- fmt.Errorf("client %d: GET -> %q, want %q", id, line, want)
						return
					}
				}
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := srv.co.Stats()
	if st["coalesce_batches"] == 0 {
		t.Fatalf("no coalesced rounds at %d concurrent conns (gate 3): %v", clients+1, st)
	}
	mean := float64(st["coalesce_ops"]) / float64(st["coalesce_batches"])
	if mean <= 1 {
		t.Fatalf("mean coalesced batch %.2f, want > 1", mean)
	}
	t.Logf("coalescing: %d rounds, %d ops, mean %.1f, p50 %d",
		st["coalesce_batches"], st["coalesce_ops"], mean, st["coalesce_p50_batch"])
}

// replyReader reads newline-terminated replies without over-buffering
// complexities; nil t makes line() return the error text instead of
// failing the test (for use inside goroutines).
type replyReader struct {
	conn net.Conn
	buf  []byte
}

func newReplyReader(conn net.Conn) *replyReader { return &replyReader{conn: conn} }

func (r *replyReader) line(t *testing.T) string {
	r.conn.SetReadDeadline(time.Now().Add(20 * time.Second))
	for {
		if i := bytes.IndexByte(r.buf, '\n'); i >= 0 {
			line := string(r.buf[:i])
			r.buf = r.buf[i+1:]
			return line
		}
		chunk := make([]byte, 4096)
		n, err := r.conn.Read(chunk)
		if n > 0 {
			r.buf = append(r.buf, chunk[:n]...)
			continue
		}
		if err != nil {
			if t != nil {
				t.Fatalf("reading reply: %v", err)
			}
			return "read error: " + err.Error()
		}
	}
}
