//go:build failpoint

package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"altindex"
	"altindex/internal/failpoint"
)

// TestPanicContainment: a handler that panics mid-dispatch must cost only
// its own connection — the client sees a structured INTERNAL error and a
// closed socket, every other connection keeps working, and the process
// survives.
func TestPanicContainment(t *testing.T) {
	defer failpoint.DisableAll()
	_, addr := startServerWith(t, Config{})

	bystander := dial(t, addr)
	if got := bystander.cmd(t, "SET 1 10"); got != "OK" {
		t.Fatal(got)
	}

	victim := dial(t, addr)
	if err := failpoint.Enable("altdb/dispatch", "1*panic"); err != nil {
		t.Fatal(err)
	}
	got := victim.cmd(t, "GET 1")
	if !strings.HasPrefix(got, "ERR "+errInternal) {
		t.Fatalf("panicking dispatch replied %q, want ERR %s ...", got, errInternal)
	}
	victim.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if victim.r.Scan() {
		t.Fatalf("victim connection stayed open after panic: %q", victim.r.Text())
	}

	// The bystander and fresh dials are unaffected (the 1* program has
	// exhausted and self-disarmed).
	if got := bystander.cmd(t, "GET 1"); got != "VALUE 10" {
		t.Fatalf("bystander after panic = %q", got)
	}
	fresh := dial(t, addr)
	if got := fresh.cmd(t, "LEN"); got != "VALUE 1" {
		t.Fatalf("fresh client after panic = %q", got)
	}
}

// TestShutdownSnapshotCrash: a crash injected into the shutdown snapshot's
// write sequence must surface from Shutdown and leave the previous
// checkpoint untouched — the server never replaces good data with a torn
// file on its way down.
func TestShutdownSnapshotCrash(t *testing.T) {
	defer failpoint.DisableAll()
	path := filepath.Join(t.TempDir(), "altdb.snap")

	// First generation: 50 keys, clean shutdown checkpoint.
	srv1, addr1 := startServerWith(t, Config{SnapshotPath: path})
	c1 := dial(t, addr1)
	for k := 1; k <= 50; k++ {
		if got := c1.cmd(t, fmt.Sprintf("SET %d %d", k, k)); got != "OK" {
			t.Fatal(got)
		}
	}
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Second generation: more data, but the shutdown snapshot crashes.
	srv2, addr2 := startServerWith(t, Config{SnapshotPath: path})
	c2 := dial(t, addr2)
	if got := c2.cmd(t, "SET 999 1"); got != "OK" {
		t.Fatal(got)
	}
	if err := failpoint.Enable("snapio/rename", "error(kill -9)"); err != nil {
		t.Fatal(err)
	}
	err := srv2.Shutdown()
	failpoint.Disable("snapio/rename")
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("crashed shutdown snapshot not surfaced: %v", err)
	}

	// The checkpoint on disk is still generation one, fully intact.
	idx, err := altindex.Load(path, altindex.Options{})
	if err != nil {
		t.Fatalf("checkpoint unloadable after crashed shutdown: %v", err)
	}
	if idx.Len() != 50 {
		t.Fatalf("checkpoint holds %d keys, want 50", idx.Len())
	}
	if _, ok := idx.Get(999); ok {
		t.Fatal("crashed shutdown leaked generation-two data")
	}
}
