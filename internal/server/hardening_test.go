package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"altindex"
)

// startServerWith runs a configured server on an ephemeral port.
func startServerWith(t *testing.T, cfg Config) (*Server, net.Addr) {
	t.Helper()
	srv, err := NewServerWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	return srv, ln.Addr()
}

// TestStructuredErrors pins the machine-parseable ERR grammar: the second
// token is a stable code, so clients switch on it instead of matching prose.
func TestStructuredErrors(t *testing.T) {
	_, addr := startServerWith(t, Config{})
	c := dial(t, addr)

	var big strings.Builder
	big.WriteString("MGET")
	for i := 0; i <= maxBatch; i++ {
		fmt.Fprintf(&big, " %d", i)
	}
	for _, tc := range []struct {
		line, code string
	}{
		{"SET x 1", errBadInt},
		{"SET 1 x", errBadInt},
		{"MGET 1 nope 3", errBadInt},
		{"SCAN 0 many", errBadInt},
		{"MPUT 1 2 3", errUsage},
		{"SET 1", errUsage},
		{"FLY 1", errUnknown},
		{big.String(), errTooBig},
	} {
		got := c.cmd(t, tc.line)
		fields := strings.Fields(got)
		if len(fields) < 2 || fields[0] != "ERR" || fields[1] != tc.code {
			t.Errorf("%.40q -> %.60q, want ERR %s ...", tc.line, got, tc.code)
		}
	}
	// The connection is still usable after every structured error.
	if got := c.cmd(t, "SET 7 70"); got != "OK" {
		t.Fatalf("SET after errors = %q", got)
	}

	// An oversized MPUT is also refused with TOOBIG, and the max-size one
	// is accepted — the scanner buffer must fit it.
	var mput strings.Builder
	mput.WriteString("MPUT")
	for i := 0; i < maxBatch; i++ {
		fmt.Fprintf(&mput, " %d %d", 1e12+i, i)
	}
	if got := c.cmd(t, mput.String()); got != fmt.Sprintf("OK %d", maxBatch) {
		t.Fatalf("max-size MPUT = %.60q", got)
	}
	fmt.Fprintf(&mput, " %d %d", int64(1e13), 1)
	if got := c.cmd(t, mput.String()); !strings.HasPrefix(got, "ERR "+errTooBig) {
		t.Fatalf("oversized MPUT = %.60q", got)
	}
}

// TestLineTooLong: a request line past the scanner's cap gets a structured
// TOOLONG reply and the connection is dropped (the stream cannot resync).
func TestLineTooLong(t *testing.T) {
	_, addr := startServerWith(t, Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := strings.Repeat("a", maxLineBytes+16)
	if _, err := fmt.Fprintf(conn, "%s\n", junk); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewScanner(conn)
	if !r.Scan() {
		t.Fatalf("no TOOLONG reply: %v", r.Err())
	}
	if got := r.Text(); !strings.HasPrefix(got, "ERR "+errTooLong) {
		t.Fatalf("reply = %q, want ERR %s ...", got, errTooLong)
	}
	if r.Scan() {
		t.Fatalf("connection stayed open after TOOLONG: %q", r.Text())
	}
}

// TestConnectionCapBackpressure: with MaxConns slots busy, 2× the cap of
// extra dials must neither error nor be served — they wait in the accept
// backlog — and all of them are served as slots free up.
func TestConnectionCapBackpressure(t *testing.T) {
	const cap = 2
	_, addr := startServerWith(t, Config{MaxConns: cap})

	// Fill every slot with an active client.
	holders := make([]*client, cap)
	for i := range holders {
		holders[i] = dial(t, addr)
		if got := holders[i].cmd(t, "LEN"); got != "VALUE 0" {
			t.Fatalf("holder %d: %q", i, got)
		}
	}

	// 2× the cap of further dials: TCP connects (backlog) but none get a
	// handler while the slots are held.
	waiters := make([]net.Conn, 2*cap)
	for i := range waiters {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatalf("backlogged dial %d refused: %v", i, err)
		}
		defer conn.Close()
		waiters[i] = conn
		// Send now; the reply arrives once a slot frees. QUIT closes the
		// server side afterwards, freeing the slot for the next waiter.
		fmt.Fprintf(conn, "LEN\nQUIT\n")
	}
	// Probe with a raw read (a Scanner would be poisoned by the expected
	// timeout): no byte may arrive while every slot is held.
	waiters[0].SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, err := waiters[0].Read(make([]byte, 1)); err == nil || n > 0 {
		t.Fatalf("waiter served while all slots busy (n=%d, err=%v)", n, err)
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("probe read: %v, want deadline timeout", err)
	}

	// Release the held slots; every waiter must now be served in turn.
	for _, h := range holders {
		h.cmd(t, "QUIT")
	}
	for i, conn := range waiters {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewScanner(conn)
		if !r.Scan() || r.Text() != "VALUE 0" {
			t.Fatalf("waiter %d reply = %q (%v)", i, r.Text(), r.Err())
		}
		if !r.Scan() || r.Text() != "BYE" {
			t.Fatalf("waiter %d BYE = %q (%v)", i, r.Text(), r.Err())
		}
	}
}

// TestStalledReader: a client that stops draining its socket while the
// server streams a large response must be disconnected by the write
// deadline instead of pinning the handler forever — and the server must
// keep serving other clients throughout.
func TestStalledReader(t *testing.T) {
	_, addr := startServerWith(t, Config{WriteTimeout: 150 * time.Millisecond})

	seed := dial(t, addr)
	var mput strings.Builder
	for base := 0; base < 12000; base += 4000 {
		mput.Reset()
		mput.WriteString("MPUT")
		for i := 0; i < 4000; i++ {
			fmt.Fprintf(&mput, " %d %d", base+i+1, i)
		}
		if got := seed.cmd(t, mput.String()); !strings.HasPrefix(got, "OK") {
			t.Fatalf("seed: %q", got)
		}
	}

	stalled, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096) // shrink the client-side sink so the server's writes actually block
	}
	// Ask for far more data than the socket buffers can hold, then stall.
	for i := 0; i < 64; i++ {
		fmt.Fprintf(stalled, "SCAN 0 10000\n")
	}
	time.Sleep(600 * time.Millisecond) // several write-deadline periods

	// A fresh client is served while the stalled one is being evicted.
	live := dial(t, addr)
	if got := live.cmd(t, "LEN"); got != "VALUE 12000" {
		t.Fatalf("live client during stall: %q", got)
	}

	// Draining the stalled connection must end with the server having
	// closed it — a clean EOF, or a RST if it closed while our receive
	// buffer still held data. Only a timeout (socket still open, handler
	// still pinned) is a failure.
	stalled.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.Copy(io.Discard, stalled); errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled conn still open after write deadline: %v", err)
	}
}

// TestGracefulShutdownSnapshot: Shutdown drains in-flight connections and
// writes every acknowledged write to the configured snapshot, which the
// next server start loads.
func TestGracefulShutdownSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "altdb.snap")
	srv, addr := startServerWith(t, Config{SnapshotPath: path})

	c := dial(t, addr)
	for k := 1; k <= 200; k++ {
		if got := c.cmd(t, fmt.Sprintf("SET %d %d", k, k*5)); got != "OK" {
			t.Fatalf("SET %d = %q", k, got)
		}
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	idx, err := altindex.Load(path, altindex.Options{})
	if err != nil {
		t.Fatalf("shutdown snapshot unloadable: %v", err)
	}
	if idx.Len() != 200 {
		t.Fatalf("snapshot holds %d keys, want 200", idx.Len())
	}
	for k := uint64(1); k <= 200; k++ {
		if v, ok := idx.Get(k); !ok || v != k*5 {
			t.Fatalf("snapshot key %d = (%d,%v)", k, v, ok)
		}
	}

	// A new server over the same path serves the snapshotted data.
	_, addr2 := startServerWith(t, Config{SnapshotPath: path})
	c2 := dial(t, addr2)
	if got := c2.cmd(t, "GET 17"); got != "VALUE 85" {
		t.Fatalf("restarted GET = %q", got)
	}
	if got := c2.cmd(t, "LEN"); got != "VALUE 200" {
		t.Fatalf("restarted LEN = %q", got)
	}
}

// TestStartupRefusesCorruptSnapshot: serving silently-empty data over a
// corrupt snapshot would be a stale-read machine; startup must fail loudly.
func TestStartupRefusesCorruptSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.snap")
	srv, addr := startServerWith(t, Config{SnapshotPath: path})
	c := dial(t, addr)
	if got := c.cmd(t, "SET 1 1"); got != "OK" {
		t.Fatal(got)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServerWith(Config{SnapshotPath: path}); !errors.Is(err, altindex.ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot at startup: %v, want ErrBadSnapshot", err)
	}
}
