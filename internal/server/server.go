// Package server implements the altdb protocol engine: a tiny in-memory
// key/value database over TCP with ALT-index underneath, hardened for
// unattended operation and (optionally) fully durable via a write-ahead
// log with incremental checkpoints.
//
// The network hot path is pipelined: a connection's handler parses and
// dispatches every complete request line already buffered before flushing
// replies once per wakeup, so a client that pipelines N requests pays one
// write syscall per batch instead of one per command. Runs of consecutive
// point commands (GET/SET/DEL) are grouped through the index's batched
// fast path, and above a configurable connection count the groups of all
// connections coalesce into shared batches (see internal/opsched).
package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"altindex"
	"altindex/internal/failpoint"
	"altindex/internal/opsched"
	"altindex/internal/wal"
)

// maxBatch caps the number of keys one MGET/MPUT request may carry, and
// the size of one grouped point-command run.
const maxBatch = 4096

// maxLineBytes sizes the per-connection line buffer for the largest legal
// request: an MPUT with maxBatch pairs of 20-digit uint64s plus separators.
// Longer lines are a protocol violation answered with ERR TOOLONG.
const maxLineBytes = 2*maxBatch*21 + 64

// ErrServerClosed is returned by Serve after Shutdown stops the listener.
var ErrServerClosed = errors.New("altdb: server closed")

// fpDispatch fires on every dispatched command; armed with panic it
// simulates a handler crash inside one connection's goroutine, which the
// per-connection recovery must contain without taking down the process.
var fpDispatch = failpoint.New("altdb/dispatch")

// Structured error codes: every ERR reply is "ERR <CODE> <detail...>", so
// clients can switch on the second token instead of parsing prose.
const (
	errUsage    = "USAGE"    // wrong argument shape for the command
	errBadInt   = "BADINT"   // a key/value token is not a uint64
	errTooBig   = "TOOBIG"   // batch exceeds maxBatch
	errTooLong  = "TOOLONG"  // request line exceeds maxLineBytes
	errUnknown  = "UNKNOWN"  // unrecognized command
	errInternal = "INTERNAL" // handler panic or engine failure
)

// Config tunes the server's robustness envelope. Zero values select
// production defaults (see withDefaults).
type Config struct {
	// MaxConns caps concurrently served connections. Excess dials queue
	// in the kernel accept backlog — backpressure, not errors — until a
	// slot frees.
	MaxConns int
	// ReadTimeout bounds the wait for the next request line; an idle or
	// stalled-writer client is disconnected when it expires.
	ReadTimeout time.Duration
	// WriteTimeout bounds flushing one reply batch; a client that stops
	// reading its replies (stalled reader) is disconnected when it expires.
	WriteTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight handlers.
	DrainTimeout time.Duration
	// LegacyLoop selects the pre-pipelining connection loop: one reply
	// flush per command and no point-command grouping. It shares the
	// allocation-free dispatcher with the pipelined loop and exists as
	// the measured baseline for the net-path benchmarks (and as a
	// fallback switch).
	LegacyLoop bool
	// CoalesceConns is the live-connection count at or above which point
	// ops from different connections coalesce into shared index batches
	// (0 = 8; negative disables coalescing). Below the gate every command
	// keeps direct-call latency.
	CoalesceConns int
	// IdleReleaseAfter is how long a connection's previous read blocked
	// before its pooled 64KiB buffers are returned while it parks on the
	// next read (0 = 100ms; negative disables idle release). Busy
	// pipelined connections never hit this.
	IdleReleaseAfter time.Duration
	// SnapshotPath, when set, is loaded at startup (if present) and
	// written on graceful shutdown, via the crash-safe snapshot cycle.
	SnapshotPath string
	// Shards range-partitions the keyspace across this many independent
	// index shards behind a learned boundary router. Zero (or one) keeps
	// the single-instance layout. A sharded snapshot restores its saved
	// boundary layout exactly (rebalanced layouts included); an unsharded
	// one is remapped into the requested layout.
	Shards int
	// RebalanceFactor arms the adaptive shard rebalancer (sharded layouts
	// only): when the max/mean routed-op imbalance stays above this factor
	// the hot shard is split at a learned CDF boundary (or cold shards
	// merged) online, without stopping reads. Zero disables. Progress is
	// visible in STATS as rebalance_splits/rebalance_merges/
	// rebalance_moved_keys/rebalance_last_ms.
	RebalanceFactor float64
	// RebalanceInterval overrides the rebalancer's evaluation cadence
	// (0 = 500ms default).
	RebalanceInterval time.Duration
	// WALDir, when set, makes the keyspace durable: every write commits to
	// a write-ahead log before it is acknowledged, incremental checkpoints
	// bound recovery time, and startup recovers base + deltas + log.
	// Mutually exclusive with SnapshotPath (one persistence mode).
	WALDir string
	// WALSync selects the commit point ("always" fsyncs before acking —
	// survives power loss; "interval"/"none" ack after the write reaches
	// the OS — survives process crashes, not power loss).
	WALSync string
	// WALSegmentBytes caps one WAL segment file (0 = 64 MiB default).
	WALSegmentBytes int64
	// CheckpointInterval is the incremental-checkpoint cadence (0 = 15s;
	// negative disables the background loop).
	CheckpointInterval time.Duration
	// CheckpointMaxDeltas is the delta-chain length that triggers
	// compaction into a fresh base (0 = 8).
	CheckpointMaxDeltas int
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.IdleReleaseAfter == 0 {
		c.IdleReleaseAfter = 100 * time.Millisecond
	}
	return c
}

// netStats are the wire-level counters surfaced in STATS: they make the
// pipelining and coalescing effects observable (flushes/op, bytes moved,
// idle buffer releases) without a profiler.
type netStats struct {
	cmds        atomic.Int64 // dispatched commands (non-empty lines)
	flushes     atomic.Int64 // reply write syscalls
	bytesIn     atomic.Int64 // bytes read off client sockets
	bytesOut    atomic.Int64 // reply bytes written
	bufReleases atomic.Int64 // idle-park buffer returns to the pool
}

func (n *netStats) snapshot() map[string]int64 {
	return map[string]int64{
		"net_cmds":         n.cmds.Load(),
		"net_flushes":      n.flushes.Load(),
		"net_bytes_in":     n.bytesIn.Load(),
		"net_bytes_out":    n.bytesOut.Load(),
		"net_buf_releases": n.bufReleases.Load(),
	}
}

// Server is the altdb protocol engine: a single keyspace on one ALT-index.
// Exposed as a package (rather than inline in the altdb main) so tests
// and the net-path bench harness can drive it over a real connection.
type Server struct {
	cfg Config
	idx altindex.Index
	dur *durableStore // non-nil when cfg.WALDir is set; owns idx's durability
	co  *opsched.Coalescer
	sem chan struct{} // connection slots; acquired before Accept
	net netStats

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	ln    net.Listener

	done     chan struct{}
	shutOnce sync.Once
	handlers sync.WaitGroup
}

// NewServer builds an empty database with default robustness settings. The
// index trains its learned layer automatically as data arrives.
func NewServer() (*Server, error) {
	return NewServerWith(Config{})
}

// NewServerWith builds a server with cfg. If cfg.SnapshotPath names an
// existing snapshot it is loaded; a corrupt snapshot is a startup error
// (refusing to serve silently-empty data), a missing one starts fresh.
func NewServerWith(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	opts := altindex.Options{
		Shards:            cfg.Shards,
		RebalanceFactor:   cfg.RebalanceFactor,
		RebalanceInterval: cfg.RebalanceInterval,
	}
	idx := altindex.New(opts)
	var dur *durableStore
	switch {
	case cfg.WALDir != "" && cfg.SnapshotPath != "":
		return nil, errors.New("altdb: -wal-dir and -snapshot are mutually exclusive persistence modes")
	case cfg.WALDir != "":
		sync := wal.SyncAlways
		if cfg.WALSync != "" {
			parsed, err := wal.ParseSyncPolicy(cfg.WALSync)
			if err != nil {
				return nil, err
			}
			sync = parsed
		}
		opened, err := openDurable(durableConfig{
			Dir:                cfg.WALDir,
			WAL:                wal.Options{Sync: sync, SegmentBytes: cfg.WALSegmentBytes},
			CheckpointInterval: cfg.CheckpointInterval,
			MaxDeltas:          cfg.CheckpointMaxDeltas,
		}, opts)
		if err != nil {
			return nil, err
		}
		dur = opened
		idx = opened.idx
	case cfg.SnapshotPath != "":
		loaded, err := altindex.Load(cfg.SnapshotPath, opts)
		switch {
		case err == nil:
			idx = loaded
		case errors.Is(err, os.ErrNotExist):
			// First boot: no snapshot yet.
		default:
			return nil, fmt.Errorf("altdb: snapshot %s: %w", cfg.SnapshotPath, err)
		}
	}
	s := &Server{
		cfg:   cfg,
		idx:   idx,
		dur:   dur,
		sem:   make(chan struct{}, cfg.MaxConns),
		conns: map[net.Conn]struct{}{},
		done:  make(chan struct{}),
	}
	s.co = opsched.New(backend{s}, opsched.Options{GateConns: cfg.CoalesceConns, MaxBatch: maxBatch})
	return s, nil
}

// backend adapts the server's mutation routing (durable or direct) to the
// coalescer's sink interface. SetBatch maps to the durable store's Mput in
// durable mode, so every coalesced write acks after its group's redo
// record commits.
type backend struct{ s *Server }

func (b backend) GetBatch(keys, vals []uint64, found []bool) { b.s.idx.GetBatch(keys, vals, found) }
func (b backend) SetBatch(pairs []altindex.KV) error         { return b.s.mput(pairs) }
func (b backend) Del(k uint64) (bool, error)                 { return b.s.del(k) }

// Serve accepts connections until the listener closes or Shutdown is
// called. A connection slot is acquired before Accept, so when MaxConns
// handlers are busy the server stops accepting and excess dials wait in
// the listen backlog instead of spawning unbounded goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.done:
			return ErrServerClosed
		}
		conn, err := ln.Accept()
		if err != nil {
			<-s.sem
			select {
			case <-s.done:
				return ErrServerClosed
			default:
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

// Shutdown stops accepting, nudges blocked readers off their sockets,
// waits up to DrainTimeout for in-flight handlers, and finally writes the
// shutdown snapshot (if configured) — so every acknowledged write is in
// it. It returns ErrServerClosed-joined errors from a timed-out drain or
// a failed snapshot.
func (s *Server) Shutdown() error {
	s.shutOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock handlers parked in a read: an immediate read deadline makes
	// the pending read fail while completed replies stay flushed. Writes
	// keep their own (fresh) deadline, so an in-flight reply finishes.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
		err = fmt.Errorf("altdb: %d connections still draining after %v",
			len(s.snapshotConns()), s.cfg.DrainTimeout)
	}
	// Stop the coalescer's drainers; a handler that outlived the drain
	// timeout falls back to direct index calls (opsched close semantics),
	// so this is safe even on a timed-out drain.
	s.co.Close()
	if s.dur != nil {
		// Final full checkpoint + log close: every acknowledged write is
		// already in the WAL, so even a failed checkpoint loses nothing —
		// but a clean one makes the next start replay-free.
		if derr := s.dur.Close(); derr != nil {
			err = errors.Join(err, fmt.Errorf("altdb: shutdown checkpoint: %w", derr))
		}
	} else if s.cfg.SnapshotPath != "" {
		// Writers are drained; settle any in-flight background retraining
		// so the snapshot scan never has to wait out a freeze window.
		s.idx.Quiesce()
		if serr := altindex.Save(s.idx, s.cfg.SnapshotPath); serr != nil {
			err = errors.Join(err, fmt.Errorf("altdb: shutdown snapshot: %w", serr))
		}
	}
	return err
}

// Preload bulk-upserts pairs through the server's normal write routing
// (durable or direct), bypassing the wire protocol. Benchmark harnesses
// use it to seed the keyspace before measurement.
func (s *Server) Preload(pairs []altindex.KV) error {
	for off := 0; off < len(pairs); off += maxBatch {
		end := off + maxBatch
		if end > len(pairs) {
			end = len(pairs)
		}
		if err := s.mput(pairs[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// put, del and mput route mutations through the durable store when one is
// configured (ack after commit) and straight to the index otherwise.
func (s *Server) put(k, v uint64) error {
	if s.dur != nil {
		return s.dur.Set(k, v)
	}
	return s.idx.Insert(k, v)
}

func (s *Server) del(k uint64) (bool, error) {
	if s.dur != nil {
		return s.dur.Del(k)
	}
	return s.idx.Remove(k), nil
}

func (s *Server) mput(pairs []altindex.KV) error {
	if s.dur != nil {
		return s.dur.Mput(pairs)
	}
	return s.idx.InsertBatch(pairs)
}

func (s *Server) snapshotConns() []net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// handle runs one connection's protocol loop (see proto.go) and releases
// its slot, socket and pooled buffers on the way out.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		<-s.sem
		s.handlers.Done()
	}()
	s.co.ConnOpened()
	defer s.co.ConnClosed()

	cs := newConnState(s, conn)
	defer cs.release()
	if s.cfg.LegacyLoop {
		s.serveLegacy(cs)
		return
	}
	s.servePipelined(cs)
}
