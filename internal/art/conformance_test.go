package art_test

import (
	"testing"

	"altindex/internal/art"
	"altindex/internal/index"
	"altindex/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func() index.Concurrent { return art.New(nil) })
}
