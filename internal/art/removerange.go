package art

import "altindex/internal/index"

// RemoveRange deletes every key in [lo, hi] (both inclusive), appends the
// removed pairs to dst in ascending key order and returns the extended
// slice. One traversal does the work of N Remove calls: subtrees entirely
// inside the window are unlinked wholesale and their leaves harvested,
// instead of paying a root-to-leaf descent per key.
//
// Locking discipline. The traversal uses pessimistic lock coupling — at
// most a parent/child pair of write locks is held at a time, acquired
// top-down like every other writer, so it cannot deadlock against inserts,
// removes or other RemoveRange calls. Under a locked parent the in-window
// children are classified: covered subtrees are unlinked (and consumed
// after the parent lock is released), boundary children that only partly
// overlap are locked before the parent is released and then recursed into.
// Every node of an unlinked subtree is write-locked and marked obsolete
// before its leaves are emitted, so a writer that raced past the unlink
// point either completed its mutation first (and is observed) or restarts
// from the root and finds the subtree gone.
//
// Concurrency semantics: keys removed are exactly the in-window keys
// present at each subtree's unlink instant. A concurrent in-window insert
// may land after its subtree was processed and survive (it linearizes
// after the removal); a concurrent in-window update may be emitted with
// either value. Callers that need an exact cut — ALT retraining — must
// first block in-window writers (the model freeze does exactly that).
func (t *Tree) RemoveRange(lo, hi uint64, dst []index.KV) []index.KV {
	if hi < lo {
		return dst
	}
	for {
		root := t.root.Load()
		if root == nil {
			return dst
		}
		v, ok := root.readLockOrRestart()
		if !ok {
			continue // stale root pointer; reload
		}
		if !root.upgradeToWriteLockOrRestart(v) {
			continue
		}
		if t.root.Load() != root {
			root.writeUnlock()
			continue
		}
		if root.kind == kindLeaf {
			if root.key >= lo && root.key <= hi {
				t.root.Store(nil)
				dst = append(dst, index.KV{Key: root.key, Value: root.value.Load()})
				t.size.Add(-1)
				root.writeUnlockObsolete()
			} else {
				root.writeUnlock()
			}
			return dst
		}
		acc, depth := nodeSpan(root, 0, 0)
		switch sMax := spanMax(acc, depth); {
		case sMax < lo || acc > hi:
			root.writeUnlock()
			return dst
		case acc >= lo && sMax <= hi:
			t.root.Store(nil)
			return t.consumeSubtree(root, dst)
		default:
			return t.removeRangeIn(root, acc, depth, lo, hi, dst)
		}
	}
}

// nodeSpan folds n's compressed-path prefix into acc (the key bytes fixed
// by the path above n, high-aligned) and returns the extended accumulator
// plus the total number of fixed bytes. Caller holds n's write lock, so
// the reads are stable.
func nodeSpan(n *Node, acc uint64, depth int) (uint64, int) {
	pl, _, _ := n.loadMeta()
	pw := n.prefixW.Load()
	for i := 0; i < pl && depth+i < 8; i++ {
		acc |= uint64(byte(pw>>(8*i))) << (56 - 8*(depth+i))
	}
	return acc, depth + pl
}

// spanMax returns the largest key reachable under a node whose first
// nbytes key bytes are fixed in acc.
func spanMax(acc uint64, nbytes int) uint64 {
	if nbytes >= 8 {
		return acc
	}
	return acc | (uint64(1)<<(64-8*nbytes) - 1)
}

// lockNode spin-acquires n's write lock. The caller guarantees n cannot be
// unlinked meanwhile (it holds n's parent lock, or n is already detached),
// so obsolescence cannot race in and the spin always terminates.
func lockNode(n *Node) {
	for spins := 0; ; spins++ {
		v := n.version.Load()
		if !isLocked(v) && n.upgradeToWriteLockOrRestart(v) {
			return
		}
		spinWait(spins)
	}
}

// snapshotChildren copies n's child entries in ascending byte order.
// Caller holds n's write lock.
func snapshotChildren(n *Node, bs *[256]byte, cs *[256]*Node) int {
	cnt := 0
	switch n.kind {
	case kind4, kind16:
		for i := 0; i < n.numChildren(); i++ {
			bs[cnt], cs[cnt] = n.keyAt(i), n.children[i].Load()
			cnt++
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := int(n.keyAt(b)); idx != 0 {
				bs[cnt], cs[cnt] = byte(b), n.children[idx-1].Load()
				cnt++
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				bs[cnt], cs[cnt] = byte(b), c
				cnt++
			}
		}
	}
	return cnt
}

// rrAction is one classified overlapping child, processed after the parent
// lock is dropped. The node is write-locked; detached ones (leaf, full)
// are already unlinked from the parent.
type rrAction struct {
	node  *Node
	acc   uint64 // partial only: fixed bytes incl. the node's own prefix
	depth int    // partial only: count of fixed bytes
	kind  uint8  // rrLeaf | rrFull | rrPartial
}

const (
	rrLeaf uint8 = iota
	rrFull
	rrPartial
)

// removeRangeIn processes an inner node that partially overlaps [lo, hi].
// n is write-locked and linked; acc/depth include n's prefix. Under n's
// lock it unlinks fully-covered children and locks the (at most two)
// boundary children, then releases n before the expensive part — consuming
// detached subtrees and recursing into boundaries — so n's out-of-window
// children stay reachable throughout. Releases n's lock; emission stays in
// ascending order because children are classified and processed in byte
// order.
func (t *Tree) removeRangeIn(n *Node, acc uint64, depth int, lo, hi uint64, dst []index.KV) []index.KV {
	if depth > 7 {
		n.writeUnlock()
		return dst
	}
	var bs [256]byte
	var cs [256]*Node
	cnt := snapshotChildren(n, &bs, &cs)

	var acts []rrAction
	for i := 0; i < cnt; i++ {
		c := cs[i]
		if c == nil {
			continue
		}
		childAcc := acc | uint64(bs[i])<<(56-8*depth)
		if subtreeMax(childAcc, depth) < lo {
			continue // whole subtree below the window
		}
		if childAcc > hi {
			break // this and all later subtrees are above the window
		}
		lockNode(c)
		if c.kind == kindLeaf {
			if c.key >= lo && c.key <= hi {
				n.removeChild(bs[i])
				acts = append(acts, rrAction{node: c, kind: rrLeaf})
			} else {
				c.writeUnlock()
			}
			continue
		}
		cAcc, cDepth := nodeSpan(c, childAcc, depth+1)
		switch cMax := spanMax(cAcc, cDepth); {
		case cMax < lo || cAcc > hi:
			c.writeUnlock() // prefix steers the subtree outside the window
		case cAcc >= lo && cMax <= hi:
			n.removeChild(bs[i])
			acts = append(acts, rrAction{node: c, kind: rrFull})
		default:
			acts = append(acts, rrAction{node: c, acc: cAcc, depth: cDepth, kind: rrPartial})
		}
	}
	n.writeUnlock()

	for _, a := range acts {
		switch a.kind {
		case rrLeaf:
			dst = append(dst, index.KV{Key: a.node.key, Value: a.node.value.Load()})
			t.size.Add(-1)
			a.node.writeUnlockObsolete()
		case rrFull:
			dst = t.consumeSubtree(a.node, dst)
		default:
			dst = t.removeRangeIn(a.node, a.acc, a.depth, lo, hi, dst)
		}
	}
	return dst
}

// consumeSubtree harvests a detached subtree: n is write-locked and
// unlinked. Every node is marked obsolete under its lock — not just freed —
// because writers that entered the subtree before the unlink can still
// complete mutations into it; obsoleting each node forces them to restart
// against the live tree, and locking each node first means any mutation
// that did complete is observed here. Leaves are emitted in order.
func (t *Tree) consumeSubtree(n *Node, dst []index.KV) []index.KV {
	if n.kind == kindLeaf {
		dst = append(dst, index.KV{Key: n.key, Value: n.value.Load()})
		t.size.Add(-1)
		n.writeUnlockObsolete()
		return dst
	}
	var bs [256]byte
	var cs [256]*Node
	cnt := snapshotChildren(n, &bs, &cs)
	n.writeUnlockObsolete()
	for i := 0; i < cnt; i++ {
		if cs[i] == nil {
			continue
		}
		lockNode(cs[i])
		dst = t.consumeSubtree(cs[i], dst)
	}
	return dst
}
