package art

import (
	"sync"

	"altindex/internal/index"
)

// Scan visits up to max pairs with keys >= start in ascending key order and
// returns the number visited. Results are collected under optimistic
// version validation and the whole scan restarts on a conflict (bounded
// retries, after which the best-effort result is emitted); within one
// successful collection the result is a consistent ordered snapshot of each
// visited node.
func (t *Tree) Scan(start uint64, max int, fn func(uint64, uint64) bool) int {
	return t.ScanRange(start, ^uint64(0), max, fn)
}

// ScanRange is Scan bounded above: it visits keys in [start, end]
// (end inclusive), pruning subtrees outside the window on both sides.
func (t *Tree) ScanRange(start, end uint64, max int, fn func(uint64, uint64) bool) int {
	bp := scanPool.Get().(*[]index.KV)
	buf := t.AppendRange((*bp)[:0], start, end, max)
	n := 0
	for _, kv := range buf {
		n++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	if cap(buf) <= maxPooledScan {
		*bp = buf
	}
	scanPool.Put(bp)
	return n
}

// scanPool recycles result buffers across scans so repeated scans are
// allocation-free. Buffers that grew past maxPooledScan entries are not
// retained, bounding the memory the pool can pin.
var scanPool = sync.Pool{New: func() any { return new([]index.KV) }}

const maxPooledScan = 1 << 16

// AppendRange appends up to max in-window pairs in ascending key order to
// dst and returns the extended slice. It is the allocation-free core of
// ScanRange: callers that keep dst alive across scans amortize the result
// buffer away entirely.
func (t *Tree) AppendRange(dst []index.KV, start, end uint64, max int) []index.KV {
	if max <= 0 || end < start {
		return dst
	}
	base := len(dst)
	for attempt := 0; attempt < 8; attempt++ {
		dst = dst[:base]
		if t.collect(t.root.Load(), 0, 0, start, end, base+max, &dst) {
			break
		}
	}
	return dst
}

// collect appends in-order pairs >= start from n's subtree. acc carries the
// key bytes fixed by the path so far (high-aligned); depth is the number of
// fixed bytes. Returns false on a version conflict.
func (t *Tree) collect(n *Node, acc uint64, depth int, start, end uint64, max int, out *[]index.KV) bool {
	if n == nil || len(*out) >= max {
		return true
	}
	if n.kind == kindLeaf {
		k := n.key
		val := n.value.Load()
		if k >= start && k <= end {
			*out = append(*out, index.KV{Key: k, Value: val})
		}
		return true
	}
	v, okv := n.readLockOrRestart()
	if !okv {
		return false
	}
	pl, _, _ := n.loadMeta()
	pw := n.prefixW.Load()
	for i := 0; i < pl && depth+i < 8; i++ {
		acc |= uint64(byte(pw>>(8*i))) << (56 - 8*(depth+i))
	}
	depth += pl
	// Snapshot the ordered child list before validating.
	var bs [256]byte
	var cs [256]*Node
	cnt := 0
	switch n.kind {
	case kind4, kind16:
		m := n.numChildren()
		if m > len(n.children) {
			m = len(n.children) // torn read; validation below rejects
		}
		for i := 0; i < m; i++ {
			bs[cnt], cs[cnt] = n.keyAt(i), n.children[i].Load()
			cnt++
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := int(n.keyAt(b)); idx != 0 && idx <= len(n.children) {
				bs[cnt], cs[cnt] = byte(b), n.children[idx-1].Load()
				cnt++
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				bs[cnt], cs[cnt] = byte(b), c
				cnt++
			}
		}
	}
	if !n.checkOrRestart(v) {
		return false
	}
	if depth > 7 {
		return true
	}
	for i := 0; i < cnt; i++ {
		if len(*out) >= max {
			return true
		}
		if cs[i] == nil {
			continue
		}
		childAcc := acc | uint64(bs[i])<<(56-8*depth)
		if subtreeMax(childAcc, depth) < start {
			continue // whole subtree below the scan start
		}
		if childAcc > end {
			break // this and all later subtrees are above the window
		}
		if !t.collect(cs[i], childAcc, depth+1, start, end, max, out) {
			return false
		}
	}
	return true
}

// subtreeMax returns the largest key a subtree rooted after consuming
// depth+1 bytes (held in acc) can contain.
func subtreeMax(acc uint64, depth int) uint64 {
	bitsFixed := 8 * (depth + 1)
	if bitsFixed >= 64 {
		return acc
	}
	return acc | (uint64(1)<<(64-bitsFixed) - 1)
}
