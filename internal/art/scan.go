package art

import (
	"sync"

	"altindex/internal/index"
)

// Scan visits up to max pairs with keys >= start in ascending key order and
// returns the number visited. Results are collected under optimistic
// version validation and the whole scan restarts on a conflict (bounded
// retries, after which the best-effort result is emitted); within one
// successful collection the result is a consistent ordered snapshot of each
// visited node.
func (t *Tree) Scan(start uint64, max int, fn func(uint64, uint64) bool) int {
	return t.ScanRange(start, ^uint64(0), max, fn)
}

// ScanRange is Scan bounded above: it visits keys in [start, end]
// (end inclusive), pruning subtrees outside the window on both sides.
func (t *Tree) ScanRange(start, end uint64, max int, fn func(uint64, uint64) bool) int {
	bp := scanPool.Get().(*[]index.KV)
	buf := t.AppendRange((*bp)[:0], start, end, max)
	n := 0
	for _, kv := range buf {
		n++
		if !fn(kv.Key, kv.Value) {
			break
		}
	}
	if cap(buf) <= maxPooledScan {
		*bp = buf
	}
	scanPool.Put(bp)
	return n
}

// scanPool recycles result buffers across scans so repeated scans are
// allocation-free. Buffers that grew past maxPooledScan entries are not
// retained, bounding the memory the pool can pin.
var scanPool = sync.Pool{New: func() any { return new([]index.KV) }}

const maxPooledScan = 1 << 16

// AppendRange appends up to max in-window pairs in ascending key order to
// dst and returns the extended slice. It is the allocation-free core of
// ScanRange: callers that keep dst alive across scans amortize the result
// buffer away entirely.
//
// Collection runs through the bulk collector: one pooled scratch carries a
// per-level child snapshot for the whole descent, so a node visit writes
// only the entries it actually has instead of zero-initialising a
// 256-wide snapshot on every call (the dominant cost of the legacy
// collector on range-scan hot paths).
func (t *Tree) AppendRange(dst []index.KV, start, end uint64, max int) []index.KV {
	if max <= 0 || end < start {
		return dst
	}
	sc := rangeScratchPool.Get().(*rangeScratch)
	base := len(dst)
	for attempt := 0; attempt < 8; attempt++ {
		dst = dst[:base]
		if t.collectFast(t.root.Load(), 0, 0, 0, start, end, base+max, &dst, sc) {
			break
		}
	}
	rangeScratchPool.Put(sc)
	return dst
}

// AppendRangeLegacy is AppendRange running through the pre-kernel
// recursive collector (fresh 256-wide snapshots per node). It is kept
// bit-for-bit as the measured baseline of the scan-path experiment — the
// ALT per-slot engine (core.Options.DisableScanKernel) reads the ART
// layer through it so the benchmark's baseline cell reproduces the
// pre-kernel scan stack end to end. Not for new callers.
func (t *Tree) AppendRangeLegacy(dst []index.KV, start, end uint64, max int) []index.KV {
	if max <= 0 || end < start {
		return dst
	}
	base := len(dst)
	for attempt := 0; attempt < 8; attempt++ {
		dst = dst[:base]
		if t.collect(t.root.Load(), 0, 0, start, end, base+max, &dst) {
			break
		}
	}
	return dst
}

// rangeScratch holds one child-list snapshot per tree level for the bulk
// collector. A level's snapshot stays live while its children are being
// descended into, so levels cannot share storage; uint64 keys bound the
// descent at 9 levels (8 key bytes plus the root). Only the first cnt
// entries written by a visit are ever read back, so recycled scratches
// need no clearing — that is the point.
type rangeScratch struct {
	levels [9]struct {
		bs [256]byte
		cs [256]*Node
	}
}

var rangeScratchPool = sync.Pool{New: func() any { return new(rangeScratch) }}

// collectFast is the bulk collector behind AppendRange: identical
// traversal, pruning and validation discipline to collect, but the child
// snapshot lands in the caller-owned scratch level instead of fresh stack
// arrays, so a visit costs writes proportional to the node's fanout
// rather than a fixed 2.3KB zero-fill. lvl is the recursion depth indexing
// the scratch (distinct from depth, which counts fixed key bytes and also
// advances over compressed prefixes).
func (t *Tree) collectFast(n *Node, acc uint64, depth, lvl int, start, end uint64, max int, out *[]index.KV, sc *rangeScratch) bool {
	if n == nil || len(*out) >= max {
		return true
	}
	if n.kind == kindLeaf {
		k := n.key
		val := n.value.Load()
		if k >= start && k <= end {
			*out = append(*out, index.KV{Key: k, Value: val})
		}
		return true
	}
	v, okv := n.readLockOrRestart()
	if !okv {
		return false
	}
	pl, _, _ := n.loadMeta()
	pw := n.prefixW.Load()
	for i := 0; i < pl && depth+i < 8; i++ {
		acc |= uint64(byte(pw>>(8*i))) << (56 - 8*(depth+i))
	}
	depth += pl
	// Snapshot the ordered child list into this level's scratch before
	// validating. Wide nodes (48/256) snapshot only the child bytes whose
	// subtrees can intersect [start, end]: near the root the window spans a
	// byte or two out of 256, so this collapses the snapshot loop from 256
	// probes to the handful the descent will actually visit.
	lev := &sc.levels[lvl]
	cnt := 0
	if depth <= 7 {
		switch n.kind {
		case kind4, kind16:
			m := n.numChildren()
			if m > len(n.children) {
				m = len(n.children) // torn read; validation below rejects
			}
			for i := 0; i < m; i++ {
				lev.bs[cnt], lev.cs[cnt] = n.keyAt(i), n.children[i].Load()
				cnt++
			}
		case kind48:
			lo, hi := windowBytes(acc, depth, start, end)
			for b := lo; b <= hi; b++ {
				if idx := int(n.keyAt(b)); idx != 0 && idx <= len(n.children) {
					lev.bs[cnt], lev.cs[cnt] = byte(b), n.children[idx-1].Load()
					cnt++
				}
			}
		case kind256:
			lo, hi := windowBytes(acc, depth, start, end)
			for b := lo; b <= hi; b++ {
				if c := n.children[b].Load(); c != nil {
					lev.bs[cnt], lev.cs[cnt] = byte(b), c
					cnt++
				}
			}
		}
	}
	if !n.checkOrRestart(v) {
		return false
	}
	if depth > 7 {
		return true
	}
	for i := 0; i < cnt; i++ {
		if len(*out) >= max {
			return true
		}
		c := lev.cs[i]
		if c == nil {
			continue
		}
		childAcc := acc | uint64(lev.bs[i])<<(56-8*depth)
		if subtreeMax(childAcc, depth) < start {
			continue // whole subtree below the scan start
		}
		if childAcc > end {
			break // this and all later subtrees are above the window
		}
		if !t.collectFast(c, childAcc, depth+1, lvl+1, start, end, max, out, sc) {
			return false
		}
	}
	return true
}

// collect appends in-order pairs >= start from n's subtree. acc carries the
// key bytes fixed by the path so far (high-aligned); depth is the number of
// fixed bytes. Returns false on a version conflict.
func (t *Tree) collect(n *Node, acc uint64, depth int, start, end uint64, max int, out *[]index.KV) bool {
	if n == nil || len(*out) >= max {
		return true
	}
	if n.kind == kindLeaf {
		k := n.key
		val := n.value.Load()
		if k >= start && k <= end {
			*out = append(*out, index.KV{Key: k, Value: val})
		}
		return true
	}
	v, okv := n.readLockOrRestart()
	if !okv {
		return false
	}
	pl, _, _ := n.loadMeta()
	pw := n.prefixW.Load()
	for i := 0; i < pl && depth+i < 8; i++ {
		acc |= uint64(byte(pw>>(8*i))) << (56 - 8*(depth+i))
	}
	depth += pl
	// Snapshot the ordered child list before validating.
	var bs [256]byte
	var cs [256]*Node
	cnt := 0
	switch n.kind {
	case kind4, kind16:
		m := n.numChildren()
		if m > len(n.children) {
			m = len(n.children) // torn read; validation below rejects
		}
		for i := 0; i < m; i++ {
			bs[cnt], cs[cnt] = n.keyAt(i), n.children[i].Load()
			cnt++
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := int(n.keyAt(b)); idx != 0 && idx <= len(n.children) {
				bs[cnt], cs[cnt] = byte(b), n.children[idx-1].Load()
				cnt++
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				bs[cnt], cs[cnt] = byte(b), c
				cnt++
			}
		}
	}
	if !n.checkOrRestart(v) {
		return false
	}
	if depth > 7 {
		return true
	}
	for i := 0; i < cnt; i++ {
		if len(*out) >= max {
			return true
		}
		if cs[i] == nil {
			continue
		}
		childAcc := acc | uint64(bs[i])<<(56-8*depth)
		if subtreeMax(childAcc, depth) < start {
			continue // whole subtree below the scan start
		}
		if childAcc > end {
			break // this and all later subtrees are above the window
		}
		if !t.collect(cs[i], childAcc, depth+1, start, end, max, out) {
			return false
		}
	}
	return true
}

// windowBytes returns the inclusive child-byte range [lo, hi] at the given
// depth whose subtrees can intersect [start, end], given that acc carries
// the depth key bytes fixed by the path. Returns lo > hi when the whole
// node lies outside the window (the path's fixed bytes already diverge
// from it). Relies on Go's defined shift semantics: at depth 0 the
// shift+8 == 64 right-shifts yield 0, so the upper-byte comparison is
// trivially equal and the bounds come straight from start and end.
func windowBytes(acc uint64, depth int, start, end uint64) (int, int) {
	shift := uint(56 - 8*depth)
	lo, hi := 0, 255
	au, su, eu := acc>>(shift+8), start>>(shift+8), end>>(shift+8)
	if au == su {
		lo = int(start >> shift & 0xff)
	} else if au < su {
		return 1, 0 // every key here is below start
	}
	if au == eu {
		hi = int(end >> shift & 0xff)
	} else if au > eu {
		return 1, 0 // every key here is above end
	}
	return lo, hi
}

// subtreeMax returns the largest key a subtree rooted after consuming
// depth+1 bytes (held in acc) can contain.
func subtreeMax(acc uint64, depth int) uint64 {
	bitsFixed := 8 * (depth + 1)
	if bitsFixed >= 64 {
		return acc
	}
	return acc | (uint64(1)<<(64-bitsFixed) - 1)
}
