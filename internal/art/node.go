// Package art implements an Adaptive Radix Tree (Leis et al., ICDE 2013)
// over fixed-width 8-byte keys with the optimistic lock coupling
// concurrency scheme of "The ART of Practical Synchronization" (DaMoN
// 2016) — the same synchronization the ALT-index paper adopts for its
// ART-OPT layer (§III-E).
//
// Beyond the baseline tree, the package provides the extensions ALT-index
// needs: a per-node matched-prefix level (the paper's match_level), lookups
// that start from an intermediate node (fast-pointer entry points), a
// lowest-common-ancestor walk used to build fast pointers, and
// structure-modification hooks that fire when a node is replaced (node
// expansion, case ②) or re-parented (prefix extraction, case ①) so the
// fast pointer buffer can repair its entries.
//
// Because optimistic readers examine fields that writers mutate under the
// node lock, every shared mutable field is stored in atomic words (byte
// arrays are packed 8-per-uint64); readers then validate the node version.
// This keeps the structure correct under the Go memory model and clean
// under the race detector.
package art

import (
	"sync/atomic"
	"unsafe"
)

// Node kinds. kindLeaf nodes carry the full key and value; inner kinds
// follow the classic ART node sizing.
const (
	kindLeaf uint8 = iota
	kind4
	kind16
	kind48
	kind256
)

// Node is an ART node. Mutations happen under the node's optimistic version
// lock; readers validate the version after reading. The type is exported
// (opaquely) because ALT-index's fast pointer buffer references
// intermediate nodes.
type Node struct {
	// version encodes the optimistic lock: bit 0 = obsolete,
	// bit 1 = locked, bits 2.. = update counter.
	version atomic.Uint64

	// meta packs prefixLen (bits 0-7), depth (bits 8-15) and nChildren
	// (bits 16-31). depth is the number of key bytes consumed before
	// this node's prefix begins — the paper's match_level.
	meta atomic.Uint64

	// prefixW packs up to 8 compressed-path bytes; byte i lives at bits
	// 8i..8i+7.
	prefixW atomic.Uint64

	// pathHi holds the Depth() key bytes consumed on the path from the
	// root to this node (high-aligned). It lets fast-pointer entry
	// points verify in O(1) that a key lies in this subtree.
	pathHi atomic.Uint64

	kind uint8 // immutable after construction

	// fpIndex is the fast-pointer-buffer slot referencing this node, or
	// -1. Maintained by the owning tree's SMO hooks.
	fpIndex atomic.Int32

	// Leaf payload (kindLeaf only). key is immutable.
	key   uint64
	value atomic.Uint64

	// Inner-node child storage. Layout by kind:
	//   kind4/16:  keyAt(0..n-1) sorted child bytes, children parallel.
	//   kind48:    keyAt(b) for b in 0..255 is 0 when empty, else
	//              slot+1 into children (48 slots).
	//   kind256:   children indexed directly by key byte.
	keysW    []atomic.Uint64
	children []atomic.Pointer[Node]
}

// --- packed metadata -----------------------------------------------------

func (n *Node) loadMeta() (prefixLen, depth, nChildren int) {
	m := n.meta.Load()
	return int(m & 0xff), int(m >> 8 & 0xff), int(m >> 16 & 0xffff)
}

func (n *Node) storeMeta(prefixLen, depth, nChildren int) {
	n.meta.Store(uint64(prefixLen) | uint64(depth)<<8 | uint64(nChildren)<<16)
}

func (n *Node) numChildren() int { return int(n.meta.Load() >> 16 & 0xffff) }

func (n *Node) setNumChildren(c int) {
	m := n.meta.Load()
	n.meta.Store(m&0xffff | uint64(c)<<16)
}

// Depth returns the node's match_level: the number of key bytes already
// consumed when a lookup reaches this node.
func (n *Node) Depth() int { return int(n.meta.Load() >> 8 & 0xff) }

// maskFor returns a mask selecting the high `depth` bytes of a key.
func maskFor(depth int) uint64 {
	switch {
	case depth <= 0:
		return 0
	case depth >= 8:
		return ^uint64(0)
	default:
		return ^uint64(0) << (64 - 8*depth)
	}
}

// coversKey reports whether key shares the node's root path, i.e. the key
// lies inside this node's subtree. Read under a version snapshot for a
// stable answer.
func (n *Node) coversKey(key uint64) bool {
	depth := n.Depth()
	if depth == 0 {
		return true
	}
	m := maskFor(depth)
	return key&m == n.pathHi.Load()&m
}

// Leaf reports whether n is a leaf and, if so, its key.
func (n *Node) Leaf() (uint64, bool) { return n.key, n.kind == kindLeaf }

// FPIndex returns the fast-pointer-buffer slot referencing this node, or -1.
func (n *Node) FPIndex() int32 { return n.fpIndex.Load() }

// SetFPIndex records the fast-pointer-buffer slot referencing this node.
func (n *Node) SetFPIndex(i int32) { n.fpIndex.Store(i) }

func newLeaf(key, value uint64) *Node {
	n := &Node{kind: kindLeaf, key: key}
	n.value.Store(value)
	n.fpIndex.Store(-1)
	return n
}

func newInner(kind uint8, depth int) *Node {
	n := &Node{kind: kind}
	n.fpIndex.Store(-1)
	n.storeMeta(0, depth, 0)
	switch kind {
	case kind4:
		n.keysW = make([]atomic.Uint64, 1)
		n.children = make([]atomic.Pointer[Node], 4)
	case kind16:
		n.keysW = make([]atomic.Uint64, 2)
		n.children = make([]atomic.Pointer[Node], 16)
	case kind48:
		n.keysW = make([]atomic.Uint64, 32)
		n.children = make([]atomic.Pointer[Node], 48)
	case kind256:
		n.children = make([]atomic.Pointer[Node], 256)
	}
	return n
}

// keyAt returns packed key byte i. Safe for optimistic readers.
func (n *Node) keyAt(i int) byte {
	return byte(n.keysW[i>>3].Load() >> (8 * (i & 7)))
}

// setKeyAt stores packed key byte i. Caller holds the write lock.
func (n *Node) setKeyAt(i int, b byte) {
	idx, sh := i>>3, 8*(i&7)
	w := n.keysW[idx].Load()
	n.keysW[idx].Store(w&^(uint64(0xff)<<sh) | uint64(b)<<sh)
}

// --- optimistic version lock ---------------------------------------------

const (
	obsoleteBit = uint64(1)
	lockBit     = uint64(2)
)

func isLocked(v uint64) bool   { return v&lockBit != 0 }
func isObsolete(v uint64) bool { return v&obsoleteBit != 0 }

// readLockOrRestart returns a stable version snapshot, spinning past
// writers. ok is false if the node is obsolete (caller must restart).
func (n *Node) readLockOrRestart() (v uint64, ok bool) {
	for spins := 0; ; spins++ {
		v = n.version.Load()
		if isLocked(v) {
			spinWait(spins)
			continue
		}
		if isObsolete(v) {
			return 0, false
		}
		return v, true
	}
}

// checkOrRestart revalidates a version snapshot.
func (n *Node) checkOrRestart(v uint64) bool { return n.version.Load() == v }

// upgradeToWriteLockOrRestart atomically acquires the write lock iff the
// version still equals v.
func (n *Node) upgradeToWriteLockOrRestart(v uint64) bool {
	return n.version.CompareAndSwap(v, v+lockBit)
}

// writeUnlock releases the write lock, bumping the version.
func (n *Node) writeUnlock() { n.version.Add(lockBit) }

// writeUnlockObsolete releases the lock and marks the node obsolete (it has
// been replaced; readers holding a reference must restart).
func (n *Node) writeUnlockObsolete() { n.version.Add(lockBit + obsoleteBit) }

func spinWait(spins int) {
	if spins > 16 {
		osYield()
		return
	}
	for i := 0; i < 4<<uint(spins&7); i++ {
		_ = spinSink.Load()
	}
}

var spinSink atomic.Uint64

// --- child access (caller holds a version snapshot or the lock) -----------

// keyByte returns the depth-th big-endian byte of k. Depths past the key
// width return 0; that can only be asked for under a torn optimistic read,
// which the caller's version validation will reject.
func keyByte(k uint64, depth int) byte {
	if depth < 0 || depth > 7 {
		return 0
	}
	return byte(k >> (56 - 8*depth))
}

// findChild returns the child for byte b, or nil. Safe to call during
// optimistic reads (caller validates the version afterwards).
func (n *Node) findChild(b byte) *Node {
	switch n.kind {
	case kind4, kind16:
		cnt := n.numChildren()
		if cnt > len(n.children) {
			cnt = len(n.children)
		}
		for i := 0; i < cnt; i++ {
			if n.keyAt(i) == b {
				return n.children[i].Load()
			}
		}
	case kind48:
		if idx := int(n.keyAt(int(b))); idx != 0 && idx <= len(n.children) {
			return n.children[idx-1].Load()
		}
	case kind256:
		return n.children[b].Load()
	}
	return nil
}

// full reports whether an insert requires growing the node.
func (n *Node) full() bool {
	switch n.kind {
	case kind4:
		return n.numChildren() >= 4
	case kind16:
		return n.numChildren() >= 16
	case kind48:
		return n.numChildren() >= 48
	default:
		return false
	}
}

// addChild inserts (b -> child). Caller holds the write lock and has
// ensured capacity. kind4/16 keep keys sorted so scans are ordered.
func (n *Node) addChild(b byte, child *Node) {
	switch n.kind {
	case kind4, kind16:
		cnt := n.numChildren()
		pos := 0
		for pos < cnt && n.keyAt(pos) < b {
			pos++
		}
		for i := cnt; i > pos; i-- {
			n.setKeyAt(i, n.keyAt(i-1))
			n.children[i].Store(n.children[i-1].Load())
		}
		n.setKeyAt(pos, b)
		n.children[pos].Store(child)
		n.setNumChildren(cnt + 1)
	case kind48:
		for slot := range n.children {
			if n.children[slot].Load() == nil {
				n.children[slot].Store(child)
				n.setKeyAt(int(b), byte(slot+1))
				n.setNumChildren(n.numChildren() + 1)
				return
			}
		}
		panic("art: addChild on full node48")
	case kind256:
		n.children[b].Store(child)
		n.setNumChildren(n.numChildren() + 1)
	default:
		panic("art: addChild on leaf")
	}
}

// replaceChild overwrites the child for byte b. Caller holds the write lock.
func (n *Node) replaceChild(b byte, child *Node) {
	switch n.kind {
	case kind4, kind16:
		cnt := n.numChildren()
		for i := 0; i < cnt; i++ {
			if n.keyAt(i) == b {
				n.children[i].Store(child)
				return
			}
		}
		panic("art: replaceChild missing byte")
	case kind48:
		idx := int(n.keyAt(int(b)))
		if idx == 0 {
			panic("art: replaceChild missing byte")
		}
		n.children[idx-1].Store(child)
	case kind256:
		n.children[b].Store(child)
	default:
		panic("art: replaceChild on leaf")
	}
}

// removeChild deletes the entry for byte b. Caller holds the write lock.
func (n *Node) removeChild(b byte) {
	switch n.kind {
	case kind4, kind16:
		cnt := n.numChildren()
		for i := 0; i < cnt; i++ {
			if n.keyAt(i) == b {
				for j := i; j < cnt-1; j++ {
					n.setKeyAt(j, n.keyAt(j+1))
					n.children[j].Store(n.children[j+1].Load())
				}
				n.children[cnt-1].Store(nil)
				n.setNumChildren(cnt - 1)
				return
			}
		}
	case kind48:
		if idx := int(n.keyAt(int(b))); idx != 0 {
			n.children[idx-1].Store(nil)
			n.setKeyAt(int(b), 0)
			n.setNumChildren(n.numChildren() - 1)
		}
	case kind256:
		if n.children[b].Load() != nil {
			n.children[b].Store(nil)
			n.setNumChildren(n.numChildren() - 1)
		}
	}
}

// grow returns a copy of n with the next larger kind. Caller holds n's
// write lock; the copy is private until published.
func (n *Node) grow() *Node {
	pl, depth, _ := n.loadMeta()
	var big *Node
	switch n.kind {
	case kind4:
		big = newInner(kind16, depth)
	case kind16:
		big = newInner(kind48, depth)
	case kind48:
		big = newInner(kind256, depth)
	default:
		panic("art: grow on max-size node")
	}
	big.prefixW.Store(n.prefixW.Load())
	big.pathHi.Store(n.pathHi.Load())
	switch n.kind {
	case kind4, kind16:
		for i := 0; i < n.numChildren(); i++ {
			big.addChild(n.keyAt(i), n.children[i].Load())
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := int(n.keyAt(b)); idx != 0 {
				big.addChild(byte(b), n.children[idx-1].Load())
			}
		}
	}
	// addChild maintained nChildren; restore prefixLen/depth.
	big.storeMeta(pl, depth, big.numChildren())
	return big
}

// shrinkThreshold returns the child count at which the node should
// downgrade to the next smaller kind (with hysteresis below the smaller
// kind's capacity so borderline nodes don't oscillate), or 0 if the node
// never shrinks.
func (n *Node) shrinkThreshold() int {
	switch n.kind {
	case kind16:
		return 3 // fits node4 with slack
	case kind48:
		return 12 // fits node16 with slack
	case kind256:
		return 36 // fits node48 with slack
	default:
		return 0
	}
}

// shrink returns a copy of n with the next smaller kind. Caller holds n's
// write lock and has checked numChildren() fits.
func (n *Node) shrink() *Node {
	pl, depth, _ := n.loadMeta()
	var small *Node
	switch n.kind {
	case kind16:
		small = newInner(kind4, depth)
	case kind48:
		small = newInner(kind16, depth)
	case kind256:
		small = newInner(kind48, depth)
	default:
		panic("art: shrink on min-size node")
	}
	small.prefixW.Store(n.prefixW.Load())
	small.pathHi.Store(n.pathHi.Load())
	switch n.kind {
	case kind16:
		for i := 0; i < n.numChildren(); i++ {
			small.addChild(n.keyAt(i), n.children[i].Load())
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := int(n.keyAt(b)); idx != 0 {
				small.addChild(byte(b), n.children[idx-1].Load())
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				small.addChild(byte(b), c)
			}
		}
	}
	small.storeMeta(pl, depth, small.numChildren())
	return small
}

// byteSize approximates the node's heap footprint.
func (n *Node) byteSize() uintptr {
	const base = unsafe.Sizeof(Node{})
	return base + uintptr(len(n.keysW))*8 + uintptr(len(n.children))*unsafe.Sizeof(atomic.Pointer[Node]{})
}
