package art

import (
	"testing"
	"testing/quick"
)

func TestKeyByte(t *testing.T) {
	k := uint64(0x0102030405060708)
	for i, want := range []byte{1, 2, 3, 4, 5, 6, 7, 8} {
		if got := keyByte(k, i); got != want {
			t.Fatalf("keyByte(%d) = %#x, want %#x", i, got, want)
		}
	}
	if keyByte(k, 8) != 0 || keyByte(k, -1) != 0 {
		t.Fatal("out-of-range depths must return 0")
	}
}

func TestPackedKeyBytes(t *testing.T) {
	n := newInner(kind48, 0)
	for i := 0; i < 256; i++ {
		n.setKeyAt(i, byte(255-i))
	}
	for i := 0; i < 256; i++ {
		if got := n.keyAt(i); got != byte(255-i) {
			t.Fatalf("keyAt(%d) = %d, want %d", i, got, 255-i)
		}
	}
	// Overwrites must not disturb neighbours.
	n.setKeyAt(8, 0xAA)
	if n.keyAt(7) != 255-7 || n.keyAt(9) != 255-9 || n.keyAt(8) != 0xAA {
		t.Fatal("setKeyAt disturbed neighbours")
	}
}

func TestMetaPacking(t *testing.T) {
	n := newInner(kind4, 3)
	n.storeMeta(5, 3, 2)
	pl, d, nc := n.loadMeta()
	if pl != 5 || d != 3 || nc != 2 {
		t.Fatalf("meta roundtrip: %d %d %d", pl, d, nc)
	}
	n.setNumChildren(4)
	if pl, d, nc = n.loadMeta(); pl != 5 || d != 3 || nc != 4 {
		t.Fatal("setNumChildren disturbed other fields")
	}
	if n.Depth() != 3 {
		t.Fatal("Depth accessor")
	}
}

func TestAddFindRemoveChildAllKinds(t *testing.T) {
	for _, kind := range []uint8{kind4, kind16, kind48, kind256} {
		n := newInner(kind, 0)
		capacity := map[uint8]int{kind4: 4, kind16: 16, kind48: 48, kind256: 256}[kind]
		// Add children with descending bytes to exercise sorted insert.
		for i := 0; i < capacity; i++ {
			b := byte(255 - i)
			n.addChild(b, newLeaf(uint64(b), uint64(b)))
		}
		if n.numChildren() != capacity {
			t.Fatalf("kind %d: %d children, want %d", kind, n.numChildren(), capacity)
		}
		if kind != kind256 && !n.full() {
			t.Fatalf("kind %d should be full", kind)
		}
		for i := 0; i < capacity; i++ {
			b := byte(255 - i)
			c := n.findChild(b)
			if c == nil || c.key != uint64(b) {
				t.Fatalf("kind %d: findChild(%d) wrong", kind, b)
			}
		}
		if n.findChild(byte(255-capacity)) != nil && capacity < 256 {
			t.Fatalf("kind %d: phantom child", kind)
		}
		// Replace and remove.
		n.replaceChild(255, newLeaf(999, 999))
		if n.findChild(255).key != 999 {
			t.Fatalf("kind %d: replaceChild failed", kind)
		}
		n.removeChild(255)
		if n.findChild(255) != nil {
			t.Fatalf("kind %d: removeChild failed", kind)
		}
		if n.numChildren() != capacity-1 {
			t.Fatalf("kind %d: count after remove", kind)
		}
		// Re-add into the freed space.
		n.addChild(255, newLeaf(1, 1))
		if n.findChild(255) == nil {
			t.Fatalf("kind %d: re-add failed", kind)
		}
	}
}

func TestGrowPreservesChildren(t *testing.T) {
	for _, kind := range []uint8{kind4, kind16, kind48} {
		n := newInner(kind, 2)
		n.storeMeta(3, 2, 0)
		n.prefixW.Store(0x030201)
		n.pathHi.Store(0xAABB << 48)
		capacity := map[uint8]int{kind4: 4, kind16: 16, kind48: 48}[kind]
		for i := 0; i < capacity; i++ {
			n.addChild(byte(i*5), newLeaf(uint64(i), uint64(i)))
		}
		big := n.grow()
		if big.kind != map[uint8]uint8{kind4: kind16, kind16: kind48, kind48: kind256}[kind] {
			t.Fatalf("grow kind %d -> %d", kind, big.kind)
		}
		pl, d, nc := big.loadMeta()
		if pl != 3 || d != 2 || nc != capacity {
			t.Fatalf("grow meta: %d %d %d", pl, d, nc)
		}
		if big.prefixW.Load() != 0x030201 || big.pathHi.Load() != 0xAABB<<48 {
			t.Fatal("grow lost prefix/path")
		}
		for i := 0; i < capacity; i++ {
			c := big.findChild(byte(i * 5))
			if c == nil || c.key != uint64(i) {
				t.Fatalf("grow lost child %d", i)
			}
		}
	}
}

func TestVersionLockProtocol(t *testing.T) {
	n := newLeaf(1, 1)
	v, ok := n.readLockOrRestart()
	if !ok {
		t.Fatal("fresh node unreadable")
	}
	if !n.checkOrRestart(v) {
		t.Fatal("immediate recheck failed")
	}
	if !n.upgradeToWriteLockOrRestart(v) {
		t.Fatal("upgrade failed")
	}
	if n.upgradeToWriteLockOrRestart(v) {
		t.Fatal("double upgrade")
	}
	if n.checkOrRestart(v) {
		t.Fatal("locked node passed recheck")
	}
	n.writeUnlock()
	v2, ok := n.readLockOrRestart()
	if !ok || v2 == v {
		t.Fatal("version did not advance")
	}
	// Obsolete marking.
	if !n.upgradeToWriteLockOrRestart(v2) {
		t.Fatal("second upgrade failed")
	}
	n.writeUnlockObsolete()
	if _, ok := n.readLockOrRestart(); ok {
		t.Fatal("obsolete node readable")
	}
}

func TestMaskForAndCovers(t *testing.T) {
	if maskFor(0) != 0 || maskFor(8) != ^uint64(0) || maskFor(9) != ^uint64(0) {
		t.Fatal("mask edges")
	}
	if maskFor(2) != 0xFFFF<<48 {
		t.Fatalf("maskFor(2) = %#x", maskFor(2))
	}
	n := newInner(kind4, 2)
	n.pathHi.Store(0x1122 << 48)
	if !n.coversKey(0x1122334455667788) {
		t.Fatal("matching key not covered")
	}
	if n.coversKey(0x1123334455667788) {
		t.Fatal("mismatching key covered")
	}
	root := newInner(kind4, 0)
	if !root.coversKey(0xDEADBEEF) {
		t.Fatal("depth-0 node must cover everything")
	}
}

func TestSubtreeMax(t *testing.T) {
	// After fixing byte 0 = 0xAB, the subtree max is 0xABFFFF....
	if got := subtreeMax(0xAB<<56, 0); got != 0xAB<<56|(uint64(1)<<56-1) {
		t.Fatalf("subtreeMax = %#x", got)
	}
	if got := subtreeMax(42, 7); got != 42 {
		t.Fatalf("deepest subtreeMax = %d", got)
	}
}

func TestQuickPackedBytesRoundtrip(t *testing.T) {
	f := func(vals []byte) bool {
		if len(vals) > 256 {
			vals = vals[:256]
		}
		n := newInner(kind48, 0)
		for i, b := range vals {
			n.setKeyAt(i, b)
		}
		for i, b := range vals {
			if n.keyAt(i) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
