package art

import "runtime"

// osYield parks the spinning goroutine briefly once a lock has been held
// longer than a short spin; under GOMAXPROCS oversubscription this lets the
// lock holder run.
func osYield() { runtime.Gosched() }
