package art

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"altindex/internal/dataset"
	"altindex/internal/index"
)

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Remove(42) {
		t.Fatal("Remove on empty tree returned true")
	}
	if tr.Update(42, 1) {
		t.Fatal("Update on empty tree returned true")
	}
	if n := tr.Scan(0, 10, func(uint64, uint64) bool { return true }); n != 0 {
		t.Fatalf("Scan on empty tree visited %d", n)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestSingleKey(t *testing.T) {
	tr := New(nil)
	if err := tr.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = %d,%v", v, ok)
	}
	if _, ok := tr.Get(8); ok {
		t.Fatal("Get(8) found phantom key")
	}
	if !tr.Update(7, 71) {
		t.Fatal("Update(7) failed")
	}
	if v, _ := tr.Get(7); v != 71 {
		t.Fatalf("after update Get(7) = %d", v)
	}
	if !tr.Remove(7) {
		t.Fatal("Remove(7) failed")
	}
	if _, ok := tr.Get(7); ok {
		t.Fatal("key present after remove")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after remove", tr.Len())
	}
}

func TestUpsertOverwrites(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 3; i++ {
		if err := tr.Insert(100, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := tr.Get(100); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestZeroAndMaxKeys(t *testing.T) {
	tr := New(nil)
	keys := []uint64{0, 1, 1 << 63, ^uint64(0), ^uint64(0) - 1}
	for _, k := range keys {
		if err := tr.Insert(k, k^0xff); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if v, ok := tr.Get(k); !ok || v != k^0xff {
			t.Fatalf("Get(%#x) = %d,%v", k, v, ok)
		}
	}
}

func TestInsertGetManyDistributions(t *testing.T) {
	for _, name := range dataset.AllNames() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			keys := dataset.Generate(name, 20000, 1)
			tr := New(nil)
			// Insert in shuffled order to exercise all SMO paths.
			perm := rand.New(rand.NewSource(7)).Perm(len(keys))
			for _, i := range perm {
				if err := tr.Insert(keys[i], keys[i]+1); err != nil {
					t.Fatal(err)
				}
			}
			if tr.Len() != len(keys) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
			}
			for _, k := range keys {
				if v, ok := tr.Get(k); !ok || v != k+1 {
					t.Fatalf("Get(%d) = %d,%v", k, v, ok)
				}
			}
			// Probe absent keys (midpoints of gaps).
			for i := 1; i < len(keys); i += 97 {
				if gap := keys[i] - keys[i-1]; gap > 1 {
					probe := keys[i-1] + gap/2
					if probe != keys[i-1] && probe != keys[i] {
						if _, ok := tr.Get(probe); ok {
							t.Fatalf("phantom key %d", probe)
						}
					}
				}
			}
		})
	}
}

func TestBulkloadRejectsUnsorted(t *testing.T) {
	tr := New(nil)
	err := tr.Bulkload([]index.KV{{Key: 5, Value: 1}, {Key: 3, Value: 2}})
	if err != index.ErrUnsortedBulk {
		t.Fatalf("err = %v, want ErrUnsortedBulk", err)
	}
	tr = New(nil)
	err = tr.Bulkload([]index.KV{{Key: 5, Value: 1}, {Key: 5, Value: 2}})
	if err != index.ErrUnsortedBulk {
		t.Fatalf("duplicate err = %v, want ErrUnsortedBulk", err)
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 5000, 3)
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	// Full scan must return every key in order.
	var got []uint64
	tr.Scan(0, len(keys)+10, func(k, v uint64) bool {
		got = append(got, k)
		if v != dataset.ValueFor(k) {
			t.Fatalf("value mismatch at %d", k)
		}
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan visited %d, want %d", len(got), len(keys))
	}
	for i, k := range got {
		if k != keys[i] {
			t.Fatalf("scan order broken at %d: got %d want %d", i, k, keys[i])
		}
	}
	// Bounded scans from arbitrary starts.
	for trial := 0; trial < 50; trial++ {
		start := keys[(trial*97)%len(keys)] + uint64(trial%3)
		limit := 1 + trial%17
		first := sort.Search(len(keys), func(i int) bool { return keys[i] >= start })
		want := len(keys) - first
		if want > limit {
			want = limit
		}
		var scanned []uint64
		n := tr.Scan(start, limit, func(k, v uint64) bool {
			scanned = append(scanned, k)
			return true
		})
		if n != want {
			t.Fatalf("Scan(%d,%d) visited %d, want %d", start, limit, n, want)
		}
		for i, k := range scanned {
			if k != keys[first+i] {
				t.Fatalf("Scan(%d) item %d = %d, want %d", start, i, k, keys[first+i])
			}
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New(nil)
	for k := uint64(1); k <= 100; k++ {
		_ = tr.Insert(k, k)
	}
	count := 0
	n := tr.Scan(0, 100, func(k, v uint64) bool {
		count++
		return count < 5
	})
	if n != 5 || count != 5 {
		t.Fatalf("early stop: n=%d count=%d", n, count)
	}
}

func TestRemoveMixed(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 8000, 9)
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	// Remove every third key.
	removed := map[uint64]bool{}
	for i := 0; i < len(keys); i += 3 {
		if !tr.Remove(keys[i]) {
			t.Fatalf("Remove(%d) = false", keys[i])
		}
		removed[keys[i]] = true
	}
	for _, k := range keys {
		v, ok := tr.Get(k)
		if removed[k] && ok {
			t.Fatalf("removed key %d still present", k)
		}
		if !removed[k] && (!ok || v != dataset.ValueFor(k)) {
			t.Fatalf("surviving key %d lost (%d,%v)", k, v, ok)
		}
	}
	if want := len(keys) - len(removed); tr.Len() != want {
		t.Fatalf("Len = %d, want %d", tr.Len(), want)
	}
	// Reinsert removed keys.
	for k := range removed {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len after reinsert = %d, want %d", tr.Len(), len(keys))
	}
}

// TestQuickVersusMap drives random operation sequences against a reference
// map and checks observational equivalence.
func TestQuickVersusMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := New(nil)
		ref := map[uint64]uint64{}
		r := rand.New(rand.NewSource(seed))
		for _, o := range ops {
			k := uint64(o%512) * 0x0101010101
			switch r.Intn(4) {
			case 0:
				v := r.Uint64()
				_ = tr.Insert(k, v)
				ref[k] = v
			case 1:
				got, ok := tr.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				if tr.Remove(k) != (func() bool { _, ok := ref[k]; return ok })() {
					return false
				}
				delete(ref, k)
			case 3:
				v := r.Uint64()
				_, wok := ref[k]
				if tr.Update(k, v) != wok {
					return false
				}
				if wok {
					ref[k] = v
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := tr.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLowestCommonNodeCoversRange(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 3000, 5)
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		i := (trial * 13) % (len(keys) - 10)
		a, b := keys[i], keys[i+9]
		n := tr.LowestCommonNode(a, b)
		if n == nil {
			t.Fatalf("LCA(%d,%d) = nil", a, b)
		}
		// Every key in [a,b] must be findable starting at the LCA.
		for j := i; j <= i+9; j++ {
			v, found, _ := tr.GetFrom(n, keys[j])
			if !found || v != dataset.ValueFor(keys[j]) {
				t.Fatalf("GetFrom(LCA) missed key %d (trial %d)", keys[j], trial)
			}
		}
	}
}

func TestGetFromShortensPath(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 20000, 11)
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	i := len(keys) / 2
	a, b := keys[i], keys[i+50]
	n := tr.LowestCommonNode(a, b)
	if n == nil || n == tr.Root() {
		t.Skip("LCA did not descend below root for this data")
	}
	_, found, fromLCA := tr.GetFrom(n, keys[i+25])
	if !found {
		t.Fatal("GetFrom missed")
	}
	_, found, fromRoot := tr.GetFrom(nil, keys[i+25])
	if !found {
		t.Fatal("root Get missed")
	}
	if fromLCA > fromRoot {
		t.Fatalf("LCA path %d longer than root path %d", fromLCA, fromRoot)
	}
}

type recordingHooks struct {
	mu       sync.Mutex
	replaced int
}

func (h *recordingHooks) OnReplace(old, new *Node) {
	h.mu.Lock()
	h.replaced++
	h.mu.Unlock()
}

func TestSMOHooksFire(t *testing.T) {
	h := &recordingHooks{}
	tr := New(h)
	// Dense keys under one parent force node4 -> node16 -> node48 ->
	// node256 expansions.
	for k := uint64(0); k < 256; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if h.replaced < 3 {
		t.Fatalf("expected >=3 expansion hooks, got %d", h.replaced)
	}
	// A far-away key forces prefix extraction at the root.
	before := h.replaced
	if err := tr.Insert(1<<56, 1); err != nil {
		t.Fatal(err)
	}
	if h.replaced <= before {
		t.Fatalf("prefix extraction did not fire hook (%d -> %d)", before, h.replaced)
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 30000, 21)
	loaded := keys[:len(keys)/2]
	pending := keys[len(keys)/2:]
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(loaded)); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := w; i < len(pending); i += workers {
				if err := tr.Insert(pending[i], dataset.ValueFor(pending[i])); err != nil {
					t.Error(err)
					return
				}
				k := loaded[r.Intn(len(loaded))]
				if v, ok := tr.Get(k); !ok || v != dataset.ValueFor(k) {
					t.Errorf("concurrent Get(%d) = %d,%v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for _, k := range keys {
		if v, ok := tr.Get(k); !ok || v != dataset.ValueFor(k) {
			t.Fatalf("post-stress Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	keys := dataset.Generate(dataset.FB, 20000, 31)
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 4000; i++ {
				k := keys[r.Intn(len(keys))]
				switch r.Intn(4) {
				case 0:
					tr.Get(k)
				case 1:
					_ = tr.Insert(k, r.Uint64())
				case 2:
					tr.Remove(k)
				case 3:
					tr.Scan(k, 20, func(a, b uint64) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	// Tree must still be internally consistent: a full scan is sorted
	// and Len matches.
	var prev uint64
	count := 0
	tr.Scan(0, len(keys)+1, func(k, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan out of order after stress: %d <= %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != tr.Len() {
		t.Fatalf("scan count %d != Len %d", count, tr.Len())
	}
}

func TestMemoryUsagePositive(t *testing.T) {
	tr := New(nil)
	for k := uint64(0); k < 1000; k++ {
		_ = tr.Insert(k*7919, k)
	}
	if m := tr.MemoryUsage(); m < 1000*16 {
		t.Fatalf("MemoryUsage = %d, implausibly small", m)
	}
}

func TestPutFrom(t *testing.T) {
	keys := dataset.Generate(dataset.OSM, 20000, 41)
	tr := New(nil)
	if err := tr.Bulkload(dataset.Pairs(keys)); err != nil {
		t.Fatal(err)
	}
	i := len(keys) / 3
	a, b := keys[i], keys[i+100]
	lca := tr.LowestCommonNode(a, b)
	if lca == nil {
		t.Fatal("no LCA")
	}
	// Insert fresh keys strictly inside [a,b] via the LCA entry point.
	var fresh []uint64
	for j := i; j < i+100; j++ {
		if keys[j+1]-keys[j] > 2 {
			fresh = append(fresh, keys[j]+1)
		}
	}
	if len(fresh) == 0 {
		t.Skip("no gaps in range")
	}
	for _, k := range fresh {
		if !tr.PutFrom(lca, k, k^0xabc) {
			t.Fatalf("PutFrom(%d) reported existing key", k)
		}
	}
	for _, k := range fresh {
		if v, ok := tr.Get(k); !ok || v != k^0xabc {
			t.Fatalf("PutFrom key %d lost (%d,%v)", k, v, ok)
		}
	}
	// Upsert through the entry point too.
	if tr.PutFrom(lca, fresh[0], 7) {
		t.Fatal("PutFrom upsert reported new key")
	}
	if v, _ := tr.Get(fresh[0]); v != 7 {
		t.Fatal("PutFrom upsert lost")
	}
	// And a PutFrom outside the subtree must still land correctly via the
	// root fallback.
	outside := keys[len(keys)-1] + 12345
	tr.PutFrom(lca, outside, 99)
	if v, ok := tr.Get(outside); !ok || v != 99 {
		t.Fatal("root fallback failed")
	}
}

func TestShrinkOnDelete(t *testing.T) {
	tr := New(nil)
	// 200 dense keys under one parent drive it to node256.
	for k := uint64(0); k < 200; k++ {
		_ = tr.Insert(k, k)
	}
	memBefore := tr.MemoryUsage()
	// Delete down to a handful of keys; the node should downgrade.
	for k := uint64(0); k < 198; k++ {
		if !tr.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	memAfter := tr.MemoryUsage()
	if memAfter >= memBefore/2 {
		t.Fatalf("no shrink: %d -> %d bytes", memBefore, memAfter)
	}
	// Survivors intact and ordered.
	var got []uint64
	tr.Scan(0, 10, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 198 || got[1] != 199 {
		t.Fatalf("survivors = %v", got)
	}
	// Regrowing after shrink works.
	for k := uint64(0); k < 200; k++ {
		_ = tr.Insert(k, k+1)
	}
	for k := uint64(0); k < 200; k++ {
		if v, ok := tr.Get(k); !ok || v != k+1 {
			t.Fatalf("Get(%d) = (%d,%v) after regrow", k, v, ok)
		}
	}
}

func TestShrinkKeepsFastPointerCoverage(t *testing.T) {
	h := &recordingHooks{}
	tr := New(h)
	for k := uint64(0); k < 100; k++ {
		_ = tr.Insert(k, k)
	}
	lca := tr.LowestCommonNode(10, 90)
	if lca == nil {
		t.Skip("no inner node")
	}
	lca.SetFPIndex(0) // pretend a fast pointer references it
	before := h.replaced
	for k := uint64(0); k < 95; k++ {
		tr.Remove(k)
	}
	// Shrinks fire OnReplace so a real buffer would be repaired.
	if h.replaced <= before {
		t.Log("no shrink hook fired (node may not have been the LCA); acceptable")
	}
	for k := uint64(95); k < 100; k++ {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("survivor %d lost", k)
		}
	}
}
