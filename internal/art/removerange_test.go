package art

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"altindex/internal/index"
)

// removeRangeRef removes [lo,hi] from a reference map and returns the
// removed pairs in ascending key order.
func removeRangeRef(ref map[uint64]uint64, lo, hi uint64) []index.KV {
	var out []index.KV
	for k, v := range ref {
		if k >= lo && k <= hi {
			out = append(out, index.KV{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for _, kv := range out {
		delete(ref, kv.Key)
	}
	return out
}

// checkAgainstRef audits tree contents against the reference map.
func checkAgainstRef(t *testing.T, tr *Tree, ref map[uint64]uint64) {
	t.Helper()
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d,%v), want %d", k, got, ok, v)
		}
	}
	var keys []uint64
	seen := 0
	tr.Scan(0, len(ref)+8, func(k, v uint64) bool {
		if wv, ok := ref[k]; !ok {
			t.Fatalf("scan ghost key %d", k)
		} else if wv != v {
			t.Fatalf("scan value mismatch at %d: %d want %d", k, v, wv)
		}
		keys = append(keys, k)
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("scan visited %d keys, want %d", seen, len(ref))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan order violation: %d after %d", keys[i], keys[i-1])
		}
	}
}

func TestRemoveRange(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA17))
	// Key mix that exercises every node kind and prefix compression:
	// dense runs (node256 fan-out), sparse clusters sharing long prefixes
	// (compressed paths), and keys near the uint64 extremes.
	var all []uint64
	for i := uint64(0); i < 2000; i++ {
		all = append(all, i*3)
	}
	for i := uint64(0); i < 500; i++ {
		all = append(all, 0xDEAD_0000_0000+i*17)
	}
	for i := 0; i < 1500; i++ {
		all = append(all, rng.Uint64())
	}
	all = append(all, 0, 1, ^uint64(0), ^uint64(0)-1)

	windows := []struct{ lo, hi uint64 }{
		{100, 100},                         // single key window
		{0, 2999},                          // dense prefix of the grid
		{1500, 0xDEAD_0000_0100},           // spans grid tail + cluster head
		{0xDEAD_0000_0000, ^uint64(0)},     // everything from the cluster up
		{5, 4},                             // inverted: no-op
		{2999*3 + 1, 0xDEAD_0000_0000 - 1}, // likely-sparse middle band
		{0, ^uint64(0)},                    // full wipe
	}

	for wi, w := range windows {
		tr := New(nil)
		ref := make(map[uint64]uint64, len(all))
		for _, k := range all {
			v := k ^ 0x5A5A
			tr.Put(k, v)
			ref[k] = v
		}
		got := tr.RemoveRange(w.lo, w.hi, nil)
		want := removeRangeRef(ref, w.lo, w.hi)
		if len(got) != len(want) {
			t.Fatalf("window %d [%d,%d]: removed %d pairs, want %d", wi, w.lo, w.hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("window %d: removed[%d] = %+v, want %+v", wi, i, got[i], want[i])
			}
		}
		checkAgainstRef(t, tr, ref)
	}
}

func TestRemoveRangeIncremental(t *testing.T) {
	// Many successive removals against one tree, reference-checked after
	// each, so shapes produced by earlier removals are re-exercised.
	rng := rand.New(rand.NewSource(0xBEEF))
	tr := New(nil)
	ref := make(map[uint64]uint64)
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(1 << 20))
		tr.Put(k, k+1)
		ref[k] = k + 1
	}
	for step := 0; step < 40 && len(ref) > 0; step++ {
		lo := uint64(rng.Intn(1 << 20))
		hi := lo + uint64(rng.Intn(1<<15))
		got := tr.RemoveRange(lo, hi, nil)
		want := removeRangeRef(ref, lo, hi)
		if len(got) != len(want) {
			t.Fatalf("step %d [%d,%d]: removed %d, want %d", step, lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: removed[%d] = %+v, want %+v", step, i, got[i], want[i])
			}
		}
		// Reinsert a few keys so later windows hit rebuilt regions.
		for j := 0; j < 50; j++ {
			k := uint64(rng.Intn(1 << 20))
			tr.Put(k, k+1)
			ref[k] = k + 1
		}
	}
	checkAgainstRef(t, tr, ref)
}

func TestRemoveRangeEdges(t *testing.T) {
	tr := New(nil)
	if out := tr.RemoveRange(0, ^uint64(0), nil); len(out) != 0 {
		t.Fatalf("empty tree removed %d pairs", len(out))
	}
	tr.Put(42, 1)
	if out := tr.RemoveRange(43, 100, nil); len(out) != 0 || tr.Len() != 1 {
		t.Fatalf("leaf root outside window: removed %d, len %d", len(out), tr.Len())
	}
	if out := tr.RemoveRange(40, 44, nil); len(out) != 1 || out[0].Key != 42 || tr.Len() != 0 {
		t.Fatalf("leaf root inside window: removed %v, len %d", out, tr.Len())
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("removed leaf root still readable")
	}
	// dst is appended to, not replaced.
	tr.Put(7, 70)
	pre := []index.KV{{Key: 1, Value: 2}}
	out := tr.RemoveRange(0, 10, pre)
	if len(out) != 2 || out[0].Key != 1 || out[1].Key != 7 {
		t.Fatalf("dst append broken: %v", out)
	}
}

// TestRemoveRangeConcurrentOutside runs RemoveRange while writers churn
// keys strictly outside the window: the removal must be exact for the
// window and the outside churn must survive untouched. Run with -race.
func TestRemoveRangeConcurrentOutside(t *testing.T) {
	const (
		loWin   = uint64(1 << 20)
		hiWin   = uint64(1<<21) - 1
		inside  = 4000
		writers = 4
	)
	tr := New(nil)
	insideWant := make(map[uint64]uint64, inside)
	rng := rand.New(rand.NewSource(0xC0DE))
	for i := 0; i < inside; i++ {
		k := loWin + uint64(rng.Intn(int(hiWin-loWin)))
		tr.Put(k, k^0xFF)
		insideWant[k] = k ^ 0xFF
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 99))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Below and above the window, never inside.
				k := uint64(r.Intn(1 << 19))
				if i&1 == 1 {
					k += 1 << 22
				}
				if i%3 == 0 {
					tr.Remove(k)
				} else {
					tr.Put(k, k)
				}
			}
		}(w)
	}

	var removed []index.KV
	for i := 0; i < 20; i++ {
		removed = tr.RemoveRange(loWin, hiWin, removed)
	}
	close(stop)
	wg.Wait()

	if len(removed) != len(insideWant) {
		t.Fatalf("removed %d in-window pairs, want %d", len(removed), len(insideWant))
	}
	for i, kv := range removed {
		if i > 0 && kv.Key <= removed[i-1].Key {
			t.Fatalf("removal emission out of order: %d after %d", kv.Key, removed[i-1].Key)
		}
		if want, ok := insideWant[kv.Key]; !ok || want != kv.Value {
			t.Fatalf("removed unexpected pair %+v", kv)
		}
	}
	for k := range insideWant {
		if _, ok := tr.Get(k); ok {
			t.Fatalf("in-window key %d survived RemoveRange", k)
		}
	}
	// Outside keys that exist must still scan in order.
	var prev uint64
	n := 0
	tr.Scan(0, 1<<30, func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("post-removal scan order violation: %d after %d", k, prev)
		}
		if k >= loWin && k <= hiWin {
			t.Fatalf("ghost in-window key %d in scan", k)
		}
		prev = k
		n++
		return true
	})
}

// TestRemoveRangeConcurrentOverlap races in-window writers against
// RemoveRange. Exactness is impossible (documented semantics: a racing
// insert may survive), but the tree must stay structurally consistent:
// every surviving key readable and scannable in order, Len agreeing with a
// full scan, no torn values. Run with -race.
func TestRemoveRangeConcurrentOverlap(t *testing.T) {
	const writers = 4
	tr := New(nil)
	for i := uint64(0); i < 8000; i++ {
		tr.Put(i*7, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(r.Intn(8000)) * 7
				switch r.Intn(3) {
				case 0:
					tr.Remove(k)
				default:
					tr.Put(k, k|1)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		lo := uint64(i%10) * 5000
		tr.RemoveRange(lo, lo+4999, nil)
	}
	close(stop)
	wg.Wait()

	n := 0
	var prev uint64
	tr.Scan(0, 1<<30, func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("scan order violation: %d after %d", k, prev)
		}
		if got, ok := tr.Get(k); !ok || got != v {
			t.Fatalf("scanned key %d unreadable: (%d,%v) want %d", k, got, ok, v)
		}
		prev = k
		n++
		return true
	})
	if tr.Len() != n {
		t.Fatalf("Len = %d but scan found %d", tr.Len(), n)
	}
}
