package art

import (
	"sync/atomic"

	"altindex/internal/index"
)

// SMOHooks receives structure-modification callbacks. The callbacks run
// while the affected nodes are write-locked, so implementations must be
// short and must not re-enter the tree.
type SMOHooks interface {
	// OnReplace reports that old is being replaced by new as the entry
	// point of its subtree: either a node expansion (the paper's case ②,
	// new is a larger copy of old) or a prefix extraction (case ①, new
	// is the freshly created parent of old). A fast pointer that led to
	// old must now lead to new.
	OnReplace(old, new *Node)
}

// Tree is a concurrent ART over 8-byte keys implementing index.Concurrent.
type Tree struct {
	root  atomic.Pointer[Node]
	size  atomic.Int64
	hooks SMOHooks
}

// New returns an empty tree. hooks may be nil.
func New(hooks SMOHooks) *Tree { return &Tree{hooks: hooks} }

// Name implements index.Concurrent.
func (t *Tree) Name() string { return "ART" }

// Len returns the number of live keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Root returns the current root node (possibly nil). Exposed for the
// fast-pointer construction walk.
func (t *Tree) Root() *Node { return t.root.Load() }

func (t *Tree) onReplace(old, new *Node) {
	if t.hooks != nil {
		t.hooks.OnReplace(old, new)
	}
}

// prefixMismatch returns the index of the first of n's pl prefix bytes that
// differs from key's bytes starting at depth, or -1 if they all match.
// Safe for optimistic readers.
func prefixMismatch(n *Node, key uint64, depth, pl int) int {
	w := n.prefixW.Load()
	for i := 0; i < pl; i++ {
		if byte(w>>(8*i)) != keyByte(key, depth+i) {
			return i
		}
	}
	return -1
}

// Bulkload implements index.Concurrent by inserting the pairs, which must
// be strictly ascending. Sorted insertion builds a well-shaped radix tree
// without a dedicated bulk path.
func (t *Tree) Bulkload(pairs []index.KV) error {
	var prev uint64
	for i, kv := range pairs {
		if i > 0 && kv.Key <= prev {
			return index.ErrUnsortedBulk
		}
		prev = kv.Key
		if err := t.Insert(kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value stored for key.
func (t *Tree) Get(key uint64) (uint64, bool) {
	for {
		val, found, _, ok := t.tryGet(nil, key)
		if ok {
			return val, found
		}
	}
}

// GetFrom looks key up starting at start, an intermediate node reached via
// a fast pointer whose Depth() key bytes are already matched. It returns
// the number of nodes traversed (the paper's "lookup length", Fig 10a).
// If start keeps failing validation (obsolete or hot), the lookup falls
// back to a root traversal.
func (t *Tree) GetFrom(start *Node, key uint64) (val uint64, found bool, pathLen int) {
	if start != nil && !t.entryCovers(start, key) {
		start = nil
	}
	for attempt := 0; ; attempt++ {
		val, found, pathLen, ok := t.tryGet(start, key)
		if ok {
			return val, found, pathLen
		}
		if start != nil && attempt >= 2 {
			start = nil
		}
	}
}

// entryCovers verifies, under a version snapshot, that key lies inside
// start's subtree. Conservative: instability reads as "not covered", which
// merely costs a root traversal.
func (t *Tree) entryCovers(start *Node, key uint64) bool {
	v, ok := start.readLockOrRestart()
	if !ok {
		return false
	}
	covered := start.coversKey(key)
	return covered && start.checkOrRestart(v)
}

// tryGet is one optimistic lookup attempt; ok=false means restart.
func (t *Tree) tryGet(start *Node, key uint64) (val uint64, found bool, pathLen int, ok bool) {
	cur := start
	depth := 0
	if cur != nil {
		depth = cur.Depth()
	} else {
		cur = t.root.Load()
	}
	if cur == nil {
		return 0, false, 0, true
	}
	v, okv := cur.readLockOrRestart()
	if !okv {
		return 0, false, 0, false
	}
	for {
		pathLen++
		if cur.kind == kindLeaf {
			k := cur.key
			val = cur.value.Load()
			if !cur.checkOrRestart(v) {
				return 0, false, 0, false
			}
			return val, k == key, pathLen, true
		}
		pl, _, _ := cur.loadMeta()
		if prefixMismatch(cur, key, depth, pl) >= 0 {
			if !cur.checkOrRestart(v) {
				return 0, false, 0, false
			}
			return 0, false, pathLen, true
		}
		depth += pl
		next := cur.findChild(keyByte(key, depth))
		if !cur.checkOrRestart(v) {
			return 0, false, 0, false
		}
		if next == nil {
			return 0, false, pathLen, true
		}
		nv, okn := next.readLockOrRestart()
		if !okn || !cur.checkOrRestart(v) {
			return 0, false, 0, false
		}
		cur, v = next, nv
		depth++
	}
}

// Insert stores key/value, overwriting an existing key (upsert).
func (t *Tree) Insert(key, value uint64) error {
	t.Put(key, value)
	return nil
}

// Put stores key/value and reports whether a new key was added (false for
// an in-place overwrite of an existing key).
func (t *Tree) Put(key, value uint64) (added bool) {
	for {
		done, added, _ := t.tryInsert(nil, key, value)
		if done {
			return added
		}
	}
}

// PutFrom inserts starting at an intermediate node reached via a fast
// pointer (§III-C3: "insertion is similar to the lookup"). When the
// required structure modification sits at the entry node itself — whose
// parent is unknown here — or the entry keeps failing validation, the
// insert falls back to a root traversal.
func (t *Tree) PutFrom(start *Node, key, value uint64) (added bool) {
	if start != nil && !t.entryCovers(start, key) {
		start = nil
	}
	for attempt := 0; start != nil && attempt < 3; attempt++ {
		done, added, needRoot := t.tryInsert(start, key, value)
		if done {
			return added
		}
		if needRoot {
			break
		}
	}
	return t.Put(key, value)
}

// Update overwrites the value of an existing key.
func (t *Tree) Update(key, value uint64) bool {
	for {
		if done, found := t.tryUpdate(key, value); done {
			return found
		}
	}
}

func (t *Tree) tryUpdate(key, value uint64) (done, found bool) {
	cur := t.root.Load()
	if cur == nil {
		return true, false
	}
	v, okv := cur.readLockOrRestart()
	if !okv {
		return false, false
	}
	depth := 0
	for {
		if cur.kind == kindLeaf {
			if !cur.checkOrRestart(v) {
				return false, false
			}
			if cur.key != key {
				return true, false
			}
			// The value is a single atomic word; a racing remove makes
			// this store land on a dead leaf, which linearizes as
			// update-before-remove.
			cur.value.Store(value)
			return true, true
		}
		pl, _, _ := cur.loadMeta()
		if prefixMismatch(cur, key, depth, pl) >= 0 {
			if !cur.checkOrRestart(v) {
				return false, false
			}
			return true, false
		}
		depth += pl
		next := cur.findChild(keyByte(key, depth))
		if !cur.checkOrRestart(v) {
			return false, false
		}
		if next == nil {
			return true, false
		}
		nv, okn := next.readLockOrRestart()
		if !okn || !cur.checkOrRestart(v) {
			return false, false
		}
		cur, v = next, nv
		depth++
	}
}

// tryInsert is one lock-coupled insert attempt; done=false means restart,
// and needRoot=true additionally means the caller entered at an
// intermediate node but the modification requires that node's parent.
func (t *Tree) tryInsert(start *Node, key, value uint64) (done, added, needRoot bool) {
	cur := start
	depth := 0
	if cur != nil {
		depth = cur.Depth()
	} else {
		cur = t.root.Load()
		if cur == nil {
			if t.root.CompareAndSwap(nil, newLeaf(key, value)) {
				t.size.Add(1)
				return true, true, false
			}
			return false, false, false
		}
	}
	v, okv := cur.readLockOrRestart()
	if !okv {
		return false, false, start != nil
	}
	var parent *Node
	var pv uint64
	var parentByte byte
	for {
		if cur.kind == kindLeaf {
			if cur.key == key {
				if !cur.checkOrRestart(v) {
					return false, false, false
				}
				cur.value.Store(value) // upsert in place
				return true, false, false
			}
			// Split the leaf under a new Node4 holding the common
			// path bytes of both keys below depth.
			if parent != nil && !parent.upgradeToWriteLockOrRestart(pv) {
				return false, false, false
			}
			if !cur.upgradeToWriteLockOrRestart(v) {
				if parent != nil {
					parent.writeUnlock()
				}
				return false, false, false
			}
			if parent == nil {
				if start != nil {
					cur.writeUnlock()
					return false, false, true // need the entry's parent
				}
				if t.root.Load() != cur {
					cur.writeUnlock()
					return false, false, false
				}
			}
			n4 := newInner(kind4, depth)
			n4.pathHi.Store(key & maskFor(depth))
			var pw uint64
			i := depth
			for i < 8 && keyByte(cur.key, i) == keyByte(key, i) {
				pw |= uint64(keyByte(key, i)) << (8 * (i - depth))
				i++
			}
			n4.prefixW.Store(pw)
			n4.storeMeta(i-depth, depth, 0)
			n4.addChild(keyByte(cur.key, i), cur)
			n4.addChild(keyByte(key, i), newLeaf(key, value))
			if parent == nil {
				t.root.Store(n4)
			} else {
				parent.replaceChild(parentByte, n4)
				parent.writeUnlock()
			}
			cur.writeUnlock()
			t.size.Add(1)
			return true, true, false
		}
		// Prefix check; a mismatch triggers prefix extraction (case ①).
		pl, _, _ := cur.loadMeta()
		mismatch := prefixMismatch(cur, key, depth, pl)
		if mismatch >= 0 {
			if parent != nil && !parent.upgradeToWriteLockOrRestart(pv) {
				return false, false, false
			}
			if !cur.upgradeToWriteLockOrRestart(v) {
				if parent != nil {
					parent.writeUnlock()
				}
				return false, false, false
			}
			if parent == nil {
				if start != nil {
					cur.writeUnlock()
					return false, false, true // need the entry's parent
				}
				if t.root.Load() != cur {
					cur.writeUnlock()
					return false, false, false
				}
			}
			oldW := cur.prefixW.Load()
			oldByte := byte(oldW >> (8 * mismatch))
			np := newInner(kind4, depth)
			np.pathHi.Store(key & maskFor(depth))
			if mismatch > 0 {
				np.prefixW.Store(oldW & (uint64(1)<<(8*mismatch) - 1))
			}
			np.storeMeta(mismatch, depth, 0)
			// Trim cur's prefix: mismatch bytes moved into np plus one
			// byte consumed as cur's child byte under np. cur's root
			// path grows by the extracted bytes.
			hi := cur.pathHi.Load() & maskFor(depth)
			for i := 0; i <= mismatch; i++ {
				hi |= uint64(byte(oldW>>(8*i))) << (56 - 8*(depth+i))
			}
			cur.pathHi.Store(hi)
			cur.prefixW.Store(oldW >> (8 * (mismatch + 1)))
			cur.storeMeta(pl-mismatch-1, depth+mismatch+1, cur.numChildren())
			np.addChild(oldByte, cur)
			np.addChild(keyByte(key, depth+mismatch), newLeaf(key, value))
			// Case ①: a fast pointer to cur must move to the extracted
			// parent so it keeps covering the whole key range.
			t.onReplace(cur, np)
			if parent == nil {
				t.root.Store(np)
			} else {
				parent.replaceChild(parentByte, np)
				parent.writeUnlock()
			}
			cur.writeUnlock()
			t.size.Add(1)
			return true, true, false
		}
		depth += pl
		b := keyByte(key, depth)
		next := cur.findChild(b)
		if !cur.checkOrRestart(v) {
			return false, false, false
		}
		if next == nil {
			if cur.full() {
				// Node expansion (case ②): grow into a larger copy and
				// swap it into the parent; cur becomes obsolete.
				if parent != nil && !parent.upgradeToWriteLockOrRestart(pv) {
					return false, false, false
				}
				if !cur.upgradeToWriteLockOrRestart(v) {
					if parent != nil {
						parent.writeUnlock()
					}
					return false, false, false
				}
				if parent == nil && t.root.Load() != cur {
					cur.writeUnlock()
					return false, false, false
				}
				big := cur.grow()
				big.addChild(b, newLeaf(key, value))
				t.onReplace(cur, big)
				if parent == nil {
					t.root.Store(big)
				} else {
					parent.replaceChild(parentByte, big)
					parent.writeUnlock()
				}
				cur.writeUnlockObsolete()
				t.size.Add(1)
				return true, true, false
			}
			if !cur.upgradeToWriteLockOrRestart(v) {
				return false, false, false
			}
			cur.addChild(b, newLeaf(key, value))
			cur.writeUnlock()
			t.size.Add(1)
			return true, true, false
		}
		nv, okn := next.readLockOrRestart()
		if !okn || !cur.checkOrRestart(v) {
			return false, false, false
		}
		parent, pv, parentByte = cur, v, b
		cur, v = next, nv
		depth++
	}
}

// Remove deletes key, reporting whether it was present. Inner nodes are not
// collapsed on removal (no kind downgrades); the tree stays correct, at a
// small memory cost after heavy deletion.
func (t *Tree) Remove(key uint64) bool {
	for {
		if done, removed := t.tryRemove(key); done {
			return removed
		}
	}
}

func (t *Tree) tryRemove(key uint64) (done, removed bool) {
	cur := t.root.Load()
	if cur == nil {
		return true, false
	}
	v, okv := cur.readLockOrRestart()
	if !okv {
		return false, false
	}
	var parent, gp *Node
	var pv, gpv uint64
	var parentByte, gpByte byte
	depth := 0
	for {
		if cur.kind == kindLeaf {
			if cur.key != key {
				if !cur.checkOrRestart(v) {
					return false, false
				}
				return true, false
			}
			if parent == nil {
				if !cur.upgradeToWriteLockOrRestart(v) {
					return false, false
				}
				if t.root.Load() != cur {
					cur.writeUnlock()
					return false, false
				}
				t.root.Store(nil)
				cur.writeUnlockObsolete()
				t.size.Add(-1)
				return true, true
			}
			if !parent.upgradeToWriteLockOrRestart(pv) {
				return false, false
			}
			if !cur.upgradeToWriteLockOrRestart(v) {
				parent.writeUnlock()
				return false, false
			}
			parent.removeChild(parentByte)
			cur.writeUnlockObsolete()
			t.size.Add(-1)
			// Opportunistic node downgrade: if the parent has shrunk
			// well below the next smaller kind's capacity, replace it
			// with a compact copy. Skipped (not retried) when the
			// grandparent can't be locked — shrinkThreshold's
			// hysteresis lets a later removal try again.
			if th := parent.shrinkThreshold(); th > 0 && parent.numChildren() < th {
				if gp == nil {
					if t.root.Load() == parent {
						small := parent.shrink()
						t.onReplace(parent, small)
						t.root.Store(small)
						parent.writeUnlockObsolete()
						return true, true
					}
				} else if gp.upgradeToWriteLockOrRestart(gpv) {
					small := parent.shrink()
					t.onReplace(parent, small)
					gp.replaceChild(gpByte, small)
					gp.writeUnlock()
					parent.writeUnlockObsolete()
					return true, true
				}
			}
			parent.writeUnlock()
			return true, true
		}
		pl, _, _ := cur.loadMeta()
		if prefixMismatch(cur, key, depth, pl) >= 0 {
			if !cur.checkOrRestart(v) {
				return false, false
			}
			return true, false
		}
		depth += pl
		b := keyByte(key, depth)
		next := cur.findChild(b)
		if !cur.checkOrRestart(v) {
			return false, false
		}
		if next == nil {
			return true, false
		}
		nv, okn := next.readLockOrRestart()
		if !okn || !cur.checkOrRestart(v) {
			return false, false
		}
		gp, gpv, gpByte = parent, pv, parentByte
		parent, pv, parentByte = cur, v, b
		cur, v = next, nv
		depth++
	}
}

// LowestCommonNode returns the deepest inner node on the common root path
// of keys a and b (a <= b): the "maximum corresponding prefix node" of the
// fast-pointer construction (§III-C1). Every key in [a,b] present now or
// inserted later reaches this node (structure modifications that replace it
// fire the SMO hook). Returns nil if the tree is empty or a bare leaf.
func (t *Tree) LowestCommonNode(a, b uint64) *Node {
	cur := t.root.Load()
	var last *Node // deepest node known to cover the whole range
	depth := 0
	for cur != nil && cur.kind != kindLeaf {
		v, okv := cur.readLockOrRestart()
		if !okv {
			return last
		}
		pl, _, _ := cur.loadMeta()
		match := prefixMismatch(cur, a, depth, pl) < 0 &&
			prefixMismatch(cur, b, depth, pl) < 0
		depth += pl
		var next *Node
		sameChild := false
		var ba byte
		if match && depth < 8 {
			var bb byte
			ba, bb = keyByte(a, depth), keyByte(b, depth)
			if ba == bb {
				sameChild = true
				next = cur.findChild(ba)
			}
		}
		if !cur.checkOrRestart(v) {
			return last
		}
		if !match {
			// The keys diverge inside cur's compressed prefix, so cur's
			// subtree excludes part of [a,b]; only the parent covers it.
			return last
		}
		last = cur
		if !sameChild || next == nil {
			// Divergence at the child byte (or the common path ends
			// here): cur covers every key in [a,b].
			return cur
		}
		cur = next
		depth++
	}
	return last
}

// MemoryUsage approximates retained heap bytes. Intended for quiescent
// measurement (no concurrent writers).
func (t *Tree) MemoryUsage() uintptr { return memWalk(t.root.Load()) }

func memWalk(n *Node) uintptr {
	if n == nil {
		return 0
	}
	total := n.byteSize()
	switch n.kind {
	case kind4, kind16:
		for i := 0; i < n.numChildren(); i++ {
			total += memWalk(n.children[i].Load())
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := int(n.keyAt(b)); idx != 0 {
				total += memWalk(n.children[idx-1].Load())
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			total += memWalk(n.children[b].Load())
		}
	}
	return total
}
