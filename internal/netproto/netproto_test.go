package netproto

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestFields(t *testing.T) {
	scratch := make([][]byte, 0, 8)
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"GET 5", []string{"GET", "5"}},
		{"  SET   1\t2  ", []string{"SET", "1", "2"}},
		{"LEN\r", []string{"LEN"}},
		{"a \t b\r", []string{"a", "b"}},
		{"MPUT 1 2 3 4", []string{"MPUT", "1", "2", "3", "4"}},
	}
	for _, tc := range cases {
		got := Fields(scratch[:0], []byte(tc.in))
		if len(got) != len(tc.want) {
			t.Fatalf("Fields(%q) = %d fields, want %d", tc.in, len(got), len(tc.want))
		}
		for i := range got {
			if string(got[i]) != tc.want[i] {
				t.Fatalf("Fields(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

// TestFieldsMatchesStrings cross-checks against strings.Fields over a
// grab bag of separator layouts.
func TestFieldsMatchesStrings(t *testing.T) {
	scratch := make([][]byte, 0, 16)
	for _, in := range []string{
		"GET 1", " GET  2 ", "\tSET 3 4\t", "a b c d e f", "x", " ", "",
		"MGET 1 2 3\r", "cmd\targ1 \t arg2",
	} {
		want := strings.Fields(strings.TrimSuffix(in, "\r"))
		got := Fields(scratch[:0], []byte(in))
		if len(got) != len(want) {
			t.Fatalf("Fields(%q): %d fields, strings.Fields: %d", in, len(got), len(want))
		}
		for i := range got {
			if string(got[i]) != want[i] {
				t.Fatalf("Fields(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestEqFold(t *testing.T) {
	for _, tc := range []struct {
		tok   string
		upper string
		want  bool
	}{
		{"GET", "GET", true},
		{"get", "GET", true},
		{"GeT", "GET", true},
		{"GETS", "GET", false},
		{"GE", "GET", false},
		{"MPUT", "MGET", false},
		{"", "GET", false},
		// Byte 0x27 is '\'' — folding must not alias it onto 'G' (0x47).
		{"\x27ET", "GET", false},
	} {
		if got := EqFold([]byte(tc.tok), tc.upper); got != tc.want {
			t.Errorf("EqFold(%q, %q) = %v, want %v", tc.tok, tc.upper, got, tc.want)
		}
	}
}

func TestParseUint(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"7", 7, true},
		{"18446744073709551615", math.MaxUint64, true},
		{"18446744073709551616", 0, false}, // overflow by one
		{"99999999999999999999999", 0, false},
		{"", 0, false},
		{"-1", 0, false},
		{"1x", 0, false},
		{" 1", 0, false},
	} {
		got, ok := ParseUint([]byte(tc.in))
		if ok != tc.ok || got != tc.want {
			t.Errorf("ParseUint(%q) = (%d, %v), want (%d, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	// Differential sweep against strconv.
	for i := 0; i < 2000; i++ {
		v := uint64(i) * 0x9e3779b97f4a7c15
		s := strconv.FormatUint(v, 10)
		got, ok := ParseUint([]byte(s))
		if !ok || got != v {
			t.Fatalf("ParseUint(%q) = (%d, %v), want %d", s, got, ok, v)
		}
	}
}

// TestZeroAlloc pins the whole tokenize+match+parse cycle at zero
// allocations — the property the pipelined dispatcher is built on.
func TestZeroAlloc(t *testing.T) {
	line := []byte("SET 123456789 987654321")
	scratch := make([][]byte, 0, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		f := Fields(scratch[:0], line)
		if len(f) != 3 || !EqFold(f[0], "SET") {
			t.Fatal("bad tokenize")
		}
		if _, ok := ParseUint(f[1]); !ok {
			t.Fatal("bad parse")
		}
		if _, ok := ParseUint(f[2]); !ok {
			t.Fatal("bad parse")
		}
	})
	if allocs != 0 {
		t.Fatalf("tokenize+parse allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkTokenize(b *testing.B) {
	line := []byte("set 123456789 987654321")
	scratch := make([][]byte, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := Fields(scratch[:0], line)
		if !EqFold(f[0], "SET") {
			b.Fatal("mismatch")
		}
	}
}

func FuzzParseUint(f *testing.F) {
	f.Add("0")
	f.Add("18446744073709551615")
	f.Add("18446744073709551616")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		got, ok := ParseUint([]byte(s))
		want, err := strconv.ParseUint(s, 10, 64)
		// strconv accepts "+1" and underscores? (no underscores in base-10
		// ParseUint without 0 prefix, but "+1" yes) — our grammar is digits
		// only, so only compare when strconv's input is pure digits.
		pure := s != "" && len(s) <= 20 && !bytes.ContainsFunc([]byte(s), func(r rune) bool { return r < '0' || r > '9' })
		if pure {
			if err != nil && ok {
				t.Fatalf("ParseUint(%q) ok, strconv errs: %v", s, err)
			}
			if err == nil && (!ok || got != want) {
				t.Fatalf("ParseUint(%q) = (%d,%v), strconv %d", s, got, ok, want)
			}
		} else if ok {
			// Non-pure inputs must be rejected.
			if _, err := strconv.ParseUint(s, 10, 64); err == nil && len(s) <= 20 {
				t.Fatalf("ParseUint(%q) accepted, input not pure digits", s)
			}
			t.Fatalf("ParseUint(%q) = %d accepted non-digit input", s, got)
		}
	})
}

func ExampleFields() {
	f := Fields(nil, []byte("set 1 10"))
	fmt.Println(len(f), string(f[0]))
	// Output: 3 set
}
