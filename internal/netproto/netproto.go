// Package netproto holds the allocation-free building blocks of the altdb
// wire protocol: an in-place byte-slice tokenizer, ASCII case-insensitive
// command matching, and uint64 parsing over raw bytes. The server's
// pipelined dispatcher and the TCP load generator share these so neither
// side allocates per command on the hot path.
//
// The protocol itself is line-oriented: one command per '\n'-terminated
// line, fields separated by runs of spaces/tabs, replies single lines
// (or END-terminated blocks). These helpers never retain or mutate their
// inputs; returned sub-slices alias the input line.
package netproto

// Fields splits line into whitespace-separated fields, appending the
// sub-slices to dst (pass dst[:0] of a reused scratch to stay
// allocation-free). Separators are runs of spaces and tabs; a trailing
// '\r' (CRLF clients) is stripped from the line first. The returned
// fields alias line.
func Fields(dst [][]byte, line []byte) [][]byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	i, n := 0, len(line)
	for i < n {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i == n {
			break
		}
		start := i
		for i < n && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

// EqFold reports whether tok equals upper under ASCII case folding.
// upper must be an all-uppercase literal ("GET", "MPUT", ...); only
// ASCII letters fold, so binary junk never aliases a command name.
func EqFold(tok []byte, upper string) bool {
	if len(tok) != len(upper) {
		return false
	}
	for i := 0; i < len(upper); i++ {
		c := tok[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// ParseUint parses tok as a decimal uint64, rejecting empty tokens,
// non-digits, and overflow — the allocation-free strconv.ParseUint of
// the hot path.
func ParseUint(tok []byte) (uint64, bool) {
	if len(tok) == 0 || len(tok) > 20 {
		return 0, false
	}
	var v uint64
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}
